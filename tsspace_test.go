// Tests for the public session-based SDK: construction options, typed
// errors, pid-lease recycling and one-shot budget accounting.
package tsspace_test

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"tsspace"
)

func mustNew(t *testing.T, opts ...tsspace.Option) *tsspace.Object {
	t.Helper()
	obj, err := tsspace.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { obj.Close() })
	return obj
}

func TestNewDefaultsAndOptions(t *testing.T) {
	obj := mustNew(t)
	if obj.Algorithm() != "collect" || obj.Procs() != 16 || obj.OneShot() {
		t.Errorf("defaults: alg=%q procs=%d oneShot=%v, want collect/16/long-lived",
			obj.Algorithm(), obj.Procs(), obj.OneShot())
	}
	if _, metered := obj.Usage(); metered {
		t.Error("metering must default off")
	}

	sq := mustNew(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(9), tsspace.WithSharded(), tsspace.WithMetering())
	if sq.Algorithm() != "sqrt" || sq.Procs() != 9 || !sq.OneShot() {
		t.Errorf("sqrt object: alg=%q procs=%d oneShot=%v", sq.Algorithm(), sq.Procs(), sq.OneShot())
	}
	if sq.Registers() != 6 { // ⌈2√9⌉
		t.Errorf("sqrt Registers = %d, want 6", sq.Registers())
	}
	if u, metered := sq.Usage(); !metered || u.Registers != 6 {
		t.Errorf("Usage = (%+v, %v), want metered with 6 registers", u, metered)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := tsspace.New(tsspace.WithAlgorithm("nope")); !errors.Is(err, tsspace.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: err = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := tsspace.New(tsspace.WithAlgorithm("")); err == nil {
		t.Error("empty algorithm name accepted")
	}
	if _, err := tsspace.New(tsspace.WithProcs(0)); err == nil {
		t.Error("WithProcs(0) accepted")
	}
	// dense needs n ≥ 2: the registry's MinProcs must turn the constructor
	// panic into an error.
	if _, err := tsspace.New(tsspace.WithAlgorithm("dense"), tsspace.WithProcs(1)); err == nil {
		t.Error("dense with 1 process accepted")
	}
}

func TestCatalogMatchesRegistry(t *testing.T) {
	names := tsspace.Algorithms()
	if !slices.Contains(names, "collect") || !slices.Contains(names, "sqrt") {
		t.Fatalf("Algorithms() = %v, missing core entries", names)
	}
	if slices.Contains(names, "collect-stale-scan") {
		t.Error("Algorithms() lists a mutant")
	}
	cat := tsspace.Catalog()
	if len(cat) != len(names) {
		t.Fatalf("Catalog has %d entries, Algorithms %d", len(cat), len(names))
	}
	for _, e := range cat {
		if e.Summary == "" {
			t.Errorf("catalog entry %q has no summary", e.Name)
		}
	}
}

func TestSessionLifecycleAndTypedErrors(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(2))

	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fw, _ := s.Compare(ctx, t1, t2); !fw {
		t.Errorf("sequential calls not ordered: %v vs %v", t1, t2)
	}
	if bw, _ := s.Compare(ctx, t2, t1); bw {
		t.Errorf("reverse compare true: %v vs %v", t2, t1)
	}
	if s.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", s.Calls())
	}
	if err := s.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := s.Detach(); err != nil {
		t.Errorf("second Detach = %v, want idempotent nil", err)
	}
	if _, err := s.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
		t.Errorf("GetTS after Detach = %v, want ErrDetached", err)
	}

	st := obj.Stats()
	if st.Calls != 2 || st.Attaches != 1 || st.ActiveSessions != 0 {
		t.Errorf("Stats = %+v, want 2 calls / 1 attach / 0 active", st)
	}
}

// Sequence numbers persist across leases: the second lease of a pid must
// continue that pid's call history, not restart it (the implementation
// contract requires seq to count all previous calls by the process).
func TestSeqPersistsAcrossLeases(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(1))
	var last tsspace.Timestamp
	for lease := 0; lease < 3; lease++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if s.Pid() != 0 {
			t.Fatalf("lease %d got pid %d from a 1-proc object", lease, s.Pid())
		}
		ts, err := s.GetTS(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if lease > 0 && !obj.Compare(last, ts) {
			t.Errorf("lease %d: %v not after %v", lease, ts, last)
		}
		last = ts
		s.Detach()
	}
}

func TestGetTSBatchFillsAndOrders(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(4))
	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()

	// A single call interleaved with batches keeps one sequence: batch
	// timestamps continue where GetTS left off.
	first, err := s.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]tsspace.Timestamp, 5)
	n, err := s.GetTSBatch(ctx, buf)
	if err != nil || n != 5 {
		t.Fatalf("GetTSBatch = (%d, %v), want (5, nil)", n, err)
	}
	stream := append([]tsspace.Timestamp{first}, buf...)
	for i := 0; i+1 < len(stream); i++ {
		if !obj.Compare(stream[i], stream[i+1]) || obj.Compare(stream[i+1], stream[i]) {
			t.Errorf("stream[%d] %v vs stream[%d] %v not strictly ordered", i, stream[i], i+1, stream[i+1])
		}
	}
	if s.Calls() != 6 {
		t.Errorf("Calls = %d, want 6", s.Calls())
	}
	if st := obj.Stats(); st.Calls != 6 {
		t.Errorf("object Calls = %d, want 6", st.Calls)
	}

	// An empty dst is a no-op, not an error.
	if n, err := s.GetTSBatch(ctx, nil); n != 0 || err != nil {
		t.Errorf("empty batch = (%d, %v), want (0, nil)", n, err)
	}
}

func TestGetTSBatchTypedErrors(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(2))
	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s.Detach()
	if _, err := s.GetTSBatch(ctx, make([]tsspace.Timestamp, 2)); !errors.Is(err, tsspace.ErrDetached) {
		t.Errorf("batch on detached session = %v, want ErrDetached", err)
	}

	// One-shot: a batch of 3 issues the process's single timestamp and
	// reports the typed one-shot error for the rest.
	oneShot := mustNew(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(4))
	so, err := oneShot.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer so.Detach()
	buf := make([]tsspace.Timestamp, 3)
	n, err := so.GetTSBatch(ctx, buf)
	if n != 1 || !errors.Is(err, tsspace.ErrOneShot) {
		t.Errorf("one-shot batch = (%d, %v), want (1, ErrOneShot)", n, err)
	}
}

// The acceptance bar of the v2 redesign: a batch on a scalar long-lived
// object performs zero allocations — the SDK adds none (caller-owned dst,
// amortized guards) and the scalar register arrays add none (one atomic
// word per register, no boxing).
func TestGetTSBatchZeroAllocs(t *testing.T) {
	ctx := context.Background()
	for _, opts := range [][]tsspace.Option{
		{tsspace.WithProcs(8)},
		{tsspace.WithProcs(8), tsspace.WithSharded()},
		{tsspace.WithAlgorithm("dense"), tsspace.WithProcs(8)},
	} {
		obj := mustNew(t, opts...)
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]tsspace.Timestamp, 16)
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := s.GetTSBatch(ctx, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: GetTSBatch allocated %.1f objects per batch, want 0", obj.Algorithm(), allocs)
		}
		s.Detach()
	}
}

func TestAttachBlocksUntilDetachOrContext(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(1))
	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// With the only pid leased, Attach must respect context cancellation.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := obj.Attach(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Attach on drained pool = %v, want DeadlineExceeded", err)
	}

	// And it must wake up when the pid is recycled.
	done := make(chan *tsspace.Session)
	go func() {
		s2, err := obj.Attach(ctx)
		if err != nil {
			t.Error(err)
		}
		done <- s2
	}()
	time.Sleep(10 * time.Millisecond)
	s.Detach()
	select {
	case s2 := <-done:
		if s2.Pid() != 0 {
			t.Errorf("recycled pid = %d, want 0", s2.Pid())
		}
		s2.Detach()
	case <-time.After(5 * time.Second):
		t.Fatal("Attach did not wake up after Detach")
	}
}

func TestOneShotBudgetAndExhaustion(t *testing.T) {
	ctx := context.Background()
	const procs = 4
	obj := mustNew(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(procs))

	// A session that never calls GetTS recycles its pid without spending
	// budget.
	idle, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	idle.Detach()

	var prev tsspace.Timestamp
	for i := 0; i < procs; i++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		ts, err := s.GetTS(ctx)
		if err != nil {
			t.Fatalf("getTS %d: %v", i, err)
		}
		if i > 0 && !obj.Compare(prev, ts) {
			t.Errorf("timestamp %d (%v) not after %v", i, ts, prev)
		}
		prev = ts
		// A second timestamp on a one-shot session is a typed error and
		// must not consume anything.
		if _, err := s.GetTS(ctx); !errors.Is(err, tsspace.ErrOneShot) {
			t.Errorf("second GetTS = %v, want ErrOneShot", err)
		}
		s.Detach()
	}
	if _, err := obj.Attach(ctx); !errors.Is(err, tsspace.ErrExhausted) {
		t.Errorf("Attach after %d one-shot calls = %v, want ErrExhausted", procs, err)
	}
}

func TestCloseWakesAndFails(t *testing.T) {
	ctx := context.Background()
	obj, err := tsspace.New(tsspace.WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error)
	go func() {
		_, err := obj.Attach(ctx) // blocks: pool drained
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Errorf("second Close = %v, want idempotent nil", err)
	}
	select {
	case err := <-waiter:
		if !errors.Is(err, tsspace.ErrClosed) {
			t.Errorf("blocked Attach after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Attach not woken by Close")
	}
	if _, err := s.GetTS(ctx); !errors.Is(err, tsspace.ErrClosed) {
		t.Errorf("GetTS after Close = %v, want ErrClosed", err)
	}
	if _, err := obj.Attach(ctx); !errors.Is(err, tsspace.ErrClosed) {
		t.Errorf("Attach after Close = %v, want ErrClosed", err)
	}
}

func TestMeteredUsageTracksSpace(t *testing.T) {
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(4), tsspace.WithMetering())
	for i := 0; i < 4; i++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.GetTS(ctx); err != nil {
			t.Fatal(err)
		}
		s.Detach()
	}
	u, metered := obj.Usage()
	if !metered {
		t.Fatal("metering on but Usage reports unmetered")
	}
	// collect: every pid writes its own register once; each call scans all.
	if u.Registers != 4 || u.Written != 4 || u.Writes != 4 || u.Reads != 16 {
		t.Errorf("Usage = %+v, want 4 registers, 4 written, 4 writes, 16 reads", u)
	}
	if len(u.WrittenSet) != 4 || len(u.WriteCounts) != 4 {
		t.Errorf("Usage sets: written %v, counts %v", u.WrittenSet, u.WriteCounts)
	}
}
