module tsspace

go 1.24
