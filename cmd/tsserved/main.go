// Command tsserved serves a tsspace timestamp object over HTTP/JSON: the
// paper's getTS()/compare() object as a network service. Logical clients
// need no process ids, sequence numbers or shared memory — they POST
// /getts and get back a batch of timestamps; the daemon's SDK object maps
// any number of concurrent requests onto the configured n paper-processes
// through session leasing.
//
// Endpoints: wire v2 sessions (POST /session, POST /session/{id}/getts,
// DELETE /session/{id}), POST /getts (deprecated single-request shim),
// POST /compare, GET /healthz, GET /metrics (space report + throughput),
// GET /metrics/prometheus (the same registry in text exposition format).
// The namespace broker rides on top: GET /catalog lists the servable
// algorithms, PUT/DELETE /ns/{name} provision and deprovision named
// Objects, and every session endpoint replicates under /ns/{name}/... —
// one daemon, many isolated timestamp services (see tsspace/tsserve).
// With -binary-addr the daemon additionally serves wire v3 — the same
// session space over a persistent-connection binary protocol. With
// -debug-addr it serves an operator-only debug listener: net/http/pprof,
// expvar, and GET /debug/events, the flight recorder's JSON-lines dump
// of recent attach/detach/reap/crash/error/slow-op events. See
// tsspace/tsserve.
//
// Usage:
//
//	tsserved [-addr :8037] [-binary-addr :8038] [-debug-addr 127.0.0.1:8039]
//	         [-alg collect] [-procs 64] [-sharded] [-unmetered]
//	         [-maxbatch 1024] [-session-ttl 60s]
//	tsserved -algs                 list the servable algorithms
//	tsserved -smoke URL            run the end-to-end smoke check against
//	                               a running daemon and exit 0/1; with
//	                               -smoke-binary HOST:PORT the check also
//	                               drives the daemon's binary listener
//
// The smoke mode is the CI gate: it leases a wire-v2 session, pipelines
// batches on it, asserts the happens-before order across them via
// /compare round trips (both directions), checks the deprecated
// single-request shim agrees, and checks /metrics counted the traffic.
// The binary leg leases a wire-v3 session the same way and asserts its
// timestamps order against the HTTP-issued stream — cross-transport
// happens-before on one shared object. The namespace leg provisions two
// namespaces through the broker, binds into them over both transports,
// and asserts register isolation, namespace-labeled metrics in both
// /metrics views, and typed quota/unknown-namespace errors.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"tsspace"
	"tsspace/internal/obs"
	"tsspace/tsserve"
)

func main() {
	addr := flag.String("addr", ":8037", "listen address")
	binAddr := flag.String("binary-addr", "", "wire-v3 binary listen address (e.g. :8038); empty serves HTTP only")
	debugAddr := flag.String("debug-addr", "", "debug listen address (e.g. 127.0.0.1:8039) serving net/http/pprof, expvar, and GET /debug/events (flight-recorder dump); empty disables")
	alg := flag.String("alg", "collect", "algorithm: one of "+strings.Join(tsspace.Algorithms(), " | "))
	procs := flag.Int("procs", 64, "paper-processes n: the object's concurrency level (and, for one-shot algorithms, the total timestamp budget)")
	sharded := flag.Bool("sharded", false, "cache-line-padded register array")
	unmetered := flag.Bool("unmetered", false, "drop space metering from the register path (disables the /metrics space section)")
	maxBatch := flag.Int("maxbatch", 1024, "largest getts batch (v1 or session-scoped)")
	sessionTTL := flag.Duration("session-ttl", 60*time.Second, "idle time before a wire session's lease is reaped and its pid recycled")
	algs := flag.Bool("algs", false, "list the servable algorithms and exit")
	smoke := flag.String("smoke", "", "run the smoke check against the daemon at this URL and exit")
	smokeBin := flag.String("smoke-binary", "", "with -smoke: also drive the daemon's binary listener at this host:port")
	flag.Parse()

	if *algs {
		for _, e := range tsspace.Catalog() {
			fmt.Printf("%-10s %s\n", e.Name, e.Summary)
		}
		return
	}
	if *smoke != "" {
		if err := runSmoke(*smoke, *smokeBin); err != nil {
			fmt.Fprintf(os.Stderr, "tsserved: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tsserved smoke ok")
		return
	}
	if *smokeBin != "" {
		fmt.Fprintln(os.Stderr, "tsserved: -smoke-binary is a smoke-mode flag; pass -smoke URL too")
		os.Exit(2)
	}

	opts := []tsspace.Option{tsspace.WithAlgorithm(*alg), tsspace.WithProcs(*procs)}
	if *sharded {
		opts = append(opts, tsspace.WithSharded())
	}
	if !*unmetered {
		opts = append(opts, tsspace.WithMetering())
	}
	obj, err := tsspace.New(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsserved: %v\n", err)
		os.Exit(2)
	}
	defer obj.Close()

	front := tsserve.NewServer(obj, tsserve.ServerConfig{MaxBatch: *maxBatch, SessionTTL: *sessionTTL})
	defer front.Close()
	srv := &http.Server{
		Addr:    *addr,
		Handler: front,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	kind := "long-lived"
	if obj.OneShot() {
		kind = "one-shot"
	}
	log.Printf("tsserved: serving %s (%s) on %s: n=%d processes, %d registers",
		obj.Algorithm(), kind, *addr, obj.Procs(), obj.Registers())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// The debug surface lives on its own listener (bind it to loopback:
	// pprof and the flight recorder are operator tools, not service API)
	// and rides through the drain: it stays up while in-flight requests
	// finish — exactly when /debug/events is most interesting — and is
	// closed after the main listener has drained. A second signal still
	// kills the process immediately via the restored default handler.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dmux.Handle("GET /debug/events", front.EventsHandler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		log.Printf("tsserved: debug listener (pprof, expvar, /debug/events) on %s", *debugAddr)
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errCh <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	if *binAddr != "" {
		ln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsserved: binary listener: %v\n", err)
			os.Exit(1)
		}
		log.Printf("tsserved: wire-v3 binary listener on %s", ln.Addr())
		go func() {
			if err := front.ServeBinary(ln); err != nil {
				errCh <- fmt.Errorf("binary listener: %w", err)
			}
		}()
	}

	select {
	case err := <-errCh:
		// The listener died on its own (bad address, port taken).
		fmt.Fprintf(os.Stderr, "tsserved: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		// SIGINT/SIGTERM: stop accepting, drain in-flight batches (a /getts
		// batch keeps its session leased until the last timestamp is
		// issued), then exit cleanly so load runs against a local daemon
		// always end with complete responses.
		stop() // a second signal kills immediately
		log.Printf("tsserved: signal received, draining in-flight requests (%s timeout)", shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("tsserved: drain incomplete: %v", err)
			_ = srv.Close()
			if debugSrv != nil {
				_ = debugSrv.Close()
			}
			os.Exit(1)
		}
		<-errCh // ListenAndServe has returned http.ErrServerClosed
		if debugSrv != nil {
			// The debug surface outlives the drain so a stuck drain can be
			// profiled; once the main listener is down, close it too.
			_ = debugSrv.Close()
		}
		log.Printf("tsserved: drained, bye")
	}
}

// shutdownTimeout bounds the drain: in-flight requests get this long to
// complete before the daemon gives up and closes their connections.
const shutdownTimeout = 5 * time.Second

// runSmoke drives a wire-v2 session (two pipelined batches on one lease),
// the deprecated single-request shim, and the /compare endpoint through a
// running daemon, asserting the happens-before property across the whole
// stream with round trips in both directions. With binAddr it appends a
// wire-v3 leg: a binary session's batch must order after every
// HTTP-issued timestamp, and the /metrics binary counters must have
// moved — the two transports demonstrably share one object.
func runSmoke(url, binAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := tsserve.NewClient(url, nil)

	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q", h.Status)
	}

	// One-shot objects serve batches of one; take the stream as separate
	// single-call requests then — each completed request happens-before the
	// next. Their budget is n total timestamps, so cap the smoke stream at
	// what the daemon has left (the metrics report how many calls it
	// already served).
	want := 8
	var batch []tsspace.Timestamp
	if h.OneShot && binAddr != "" {
		return fmt.Errorf("-smoke-binary needs a long-lived daemon (the one-shot smoke stream has no budget for a binary leg)")
	}
	if h.OneShot {
		m, err := c.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if remaining := h.Procs - int(m.Calls); remaining < want {
			want = remaining
		}
		if want < 2 {
			return fmt.Errorf("one-shot budget nearly spent (%d of %d calls served): too few timestamps left to order", m.Calls, h.Procs)
		}
		for i := 0; i < want; i++ {
			one, err := c.GetTS(ctx, 1)
			if err != nil {
				return fmt.Errorf("getts %d: %w", i, err)
			}
			batch = append(batch, one...)
		}
	} else {
		// Wire v2: one lease, two pipelined batches (ordered within and
		// across batches), explicit detach — then the deprecated shim
		// appends two more, which must order after the detached session's.
		sess, err := c.Attach(ctx)
		if err != nil {
			return fmt.Errorf("session attach: %w", err)
		}
		buf := make([]tsspace.Timestamp, 3)
		for b := 0; b < 2; b++ {
			n, err := sess.GetTSBatch(ctx, buf)
			if err != nil {
				return fmt.Errorf("session batch %d: %w", b, err)
			}
			batch = append(batch, buf[:n]...)
		}
		if err := sess.Detach(); err != nil {
			return fmt.Errorf("session detach: %w", err)
		}
		if _, err := sess.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
			return fmt.Errorf("getts on a detached session = %v, want ErrDetached", err)
		}
		shim, err := c.GetTS(ctx, 2)
		if err != nil {
			return fmt.Errorf("deprecated /getts shim: %w", err)
		}
		batch = append(batch, shim...)

		// Wire-v3 leg: a binary session's batch must order after every
		// timestamp issued over HTTP — both transports lease from one object.
		if binAddr != "" {
			bc := tsserve.NewBinaryClient(binAddr)
			defer bc.Close()
			bs, err := bc.Attach(ctx)
			if err != nil {
				return fmt.Errorf("binary attach at %s: %w", binAddr, err)
			}
			n, err := bs.GetTSBatch(ctx, buf)
			if err != nil {
				return fmt.Errorf("binary batch: %w", err)
			}
			batch = append(batch, buf[:n]...)
			want += n
			if err := bs.Detach(); err != nil {
				return fmt.Errorf("binary detach: %w", err)
			}
			if _, err := bs.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
				return fmt.Errorf("binary getts on a detached session = %v, want ErrDetached", err)
			}
			// One compare frame too, so every frame type is exercised.
			if before, err := bc.Compare(ctx, batch[0], batch[len(batch)-1]); err != nil || !before {
				return fmt.Errorf("binary compare(first, last) = (%v, %v), want (true, nil)", before, err)
			}
		}

		// Namespace broker leg: catalog → provision → bind → getts →
		// deprovision, over both transports, with isolation and typed-error
		// checks along the way.
		if err := smokeNamespaces(ctx, c, binAddr); err != nil {
			return fmt.Errorf("namespace leg: %w", err)
		}
	}
	if len(batch) != want {
		return fmt.Errorf("got %d timestamps, want %d", len(batch), want)
	}

	// Every pair, both directions: i < j must compare before, never after.
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			before, err := c.Compare(ctx, batch[i], batch[j])
			if err != nil {
				return fmt.Errorf("compare(%d, %d): %w", i, j, err)
			}
			after, err := c.Compare(ctx, batch[j], batch[i])
			if err != nil {
				return fmt.Errorf("compare(%d, %d): %w", j, i, err)
			}
			if !before || after {
				return fmt.Errorf("happens-before violated: ts[%d]=%v vs ts[%d]=%v (before=%v after=%v)",
					i, batch[i], j, batch[j], before, after)
			}
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if int(m.Calls) < want {
		return fmt.Errorf("metrics counted %d calls, want ≥ %d", m.Calls, want)
	}
	if binAddr != "" {
		if m.BinaryFrames == 0 || m.BinaryBytesIn == 0 || m.BinaryBytesOut == 0 {
			return fmt.Errorf("binary leg ran but /metrics counted no binary traffic: frames=%d in=%d out=%d",
				m.BinaryFrames, m.BinaryBytesIn, m.BinaryBytesOut)
		}
		fmt.Printf("smoke: wire-v3 leg ok: %d frames, %d bytes in, %d bytes out\n",
			m.BinaryFrames, m.BinaryBytesIn, m.BinaryBytesOut)
	}
	if err := checkPrometheus(ctx, url); err != nil {
		return fmt.Errorf("prometheus exposition: %w", err)
	}
	fmt.Printf("smoke: %s n=%d: %d timestamps strictly ordered (%d compare round trips); %d calls served\n",
		h.Algorithm, h.Procs, len(batch), len(batch)*(len(batch)-1), m.Calls)
	return nil
}

// smokeNamespaces drives the broker lifecycle end to end: the catalog
// must mirror the SDK registry; two namespaces are provisioned (one
// with a 2-session quota), bound into over HTTP — and over wire v3 when
// a binary address is given — and driven; both /metrics views must
// report them with isolated per-namespace counters; typed errors must
// come back for quota exhaustion, unknown namespaces and double
// deprovision.
func smokeNamespaces(ctx context.Context, c *tsserve.Client, binAddr string) error {
	// Catalog ≡ registry: same names, same order.
	catalog, err := c.Catalog(ctx)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.Name
	}
	if want := tsspace.Algorithms(); !slices.Equal(names, want) {
		return fmt.Errorf("catalog lists %v, registry has %v", names, want)
	}

	const nsA, nsB = "smoke-a", "smoke-b"
	for _, ns := range []string{nsA, nsB} { // clean slate on a reused daemon
		if _, err := c.DeprovisionNamespace(ctx, ns); err != nil && !errors.Is(err, tsserve.ErrUnknownNamespace) {
			return fmt.Errorf("pre-clean %s: %w", ns, err)
		}
	}
	if _, err := c.ProvisionNamespace(ctx, nsA, tsserve.ProvisionRequest{Procs: 8, MaxSessions: 2}); err != nil {
		return fmt.Errorf("provision %s: %w", nsA, err)
	}
	if _, err := c.ProvisionNamespace(ctx, nsB, tsserve.ProvisionRequest{Procs: 8}); err != nil {
		return fmt.Errorf("provision %s: %w", nsB, err)
	}

	// HTTP bind into smoke-a: namespace-scoped attach, a batch, and the
	// scoped health report.
	ca := c.Namespace(nsA)
	if h, err := ca.Health(ctx); err != nil || h.Namespace != nsA {
		return fmt.Errorf("scoped healthz = (%+v, %v), want namespace %q", h, err, nsA)
	}
	sa, err := ca.Attach(ctx)
	if err != nil {
		return fmt.Errorf("attach %s: %w", nsA, err)
	}
	buf := make([]tsspace.Timestamp, 4)
	if _, err := sa.GetTSBatch(ctx, buf); err != nil {
		return fmt.Errorf("getts in %s: %w", nsA, err)
	}
	// Quota: the second lease fits, the third must answer the typed
	// quota error.
	sa2, err := ca.Attach(ctx)
	if err != nil {
		return fmt.Errorf("second attach in %s: %w", nsA, err)
	}
	if _, err := ca.Attach(ctx); !errors.Is(err, tsserve.ErrQuota) {
		return fmt.Errorf("third attach in quota-2 %s = %v, want ErrQuota", nsA, err)
	}
	if err := sa2.Detach(); err != nil {
		return fmt.Errorf("detach in %s: %w", nsA, err)
	}

	// Bind into smoke-b over wire v3 when the listener is up (the
	// attach_ns frame), over HTTP otherwise.
	var sb tsspace.SessionAPI
	if binAddr != "" {
		bc := tsserve.NewBinaryClient(binAddr)
		defer bc.Close()
		if sb, err = bc.AttachNamespace(ctx, nsB); err != nil {
			return fmt.Errorf("binary attach_ns %s: %w", nsB, err)
		}
		if _, err := bc.AttachNamespace(ctx, "smoke-missing"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
			return fmt.Errorf("binary attach_ns to unknown namespace = %v, want ErrUnknownNamespace", err)
		}
	} else if sb, err = c.Namespace(nsB).Attach(ctx); err != nil {
		return fmt.Errorf("attach %s: %w", nsB, err)
	}
	if _, err := sb.GetTSBatch(ctx, buf[:2]); err != nil {
		return fmt.Errorf("getts in %s: %w", nsB, err)
	}

	// Unknown namespace over HTTP: typed error plus its own counter.
	if _, err := c.Namespace("smoke-missing").Attach(ctx); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		return fmt.Errorf("attach to unknown namespace = %v, want ErrUnknownNamespace", err)
	}

	// Both /metrics views must report the namespaces, isolated: JSON
	// first.
	m, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if m.UnknownNamespaces == 0 {
		return fmt.Errorf("unknown-namespace rejections not counted")
	}
	byName := make(map[string]tsserve.NamespaceMetrics, len(m.Namespaces))
	for _, nm := range m.Namespaces {
		byName[nm.Name] = nm
	}
	ma, okA := byName[nsA]
	mb, okB := byName[nsB]
	if !okA || !okB {
		return fmt.Errorf("metrics namespaces section %v missing %s or %s", m.Namespaces, nsA, nsB)
	}
	if ma.Calls != 4 || mb.Calls != 2 {
		return fmt.Errorf("per-namespace calls (%d, %d), want (4, 2) — cross-namespace bleed?", ma.Calls, mb.Calls)
	}
	if ma.QuotaRejections != 1 || ma.MaxSessions != 2 {
		return fmt.Errorf("%s quota book = %d rejections / cap %d, want 1 / 2", nsA, ma.QuotaRejections, ma.MaxSessions)
	}
	// Isolation shows in the op counters: the two namespaces took a
	// different number of calls, so a meter shared between them would
	// report identical read/write totals under both names.
	if ma.Space == nil || mb.Space == nil || ma.Space.Written == 0 ||
		(ma.Space.Reads == mb.Space.Reads && ma.Space.Writes == mb.Space.Writes) {
		return fmt.Errorf("per-namespace space gauges missing or shared: %v vs %v", ma.Space, mb.Space)
	}

	// Prometheus view, scraped while the namespaces are live: the
	// register-space family must carry their labels.
	if err := checkNamespaceLabels(ctx, c.BaseURL(), nsA, nsB); err != nil {
		return err
	}

	// Session-scoped routes enforce the binding: smoke-a's live lease
	// must be invisible through smoke-b's routes (capability ids are
	// namespace-checked on HTTP).
	crossReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL()+"/ns/"+nsB+"/session/"+sa.ID()+"/getts", strings.NewReader(`{"count":1}`))
	if err != nil {
		return err
	}
	crossReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(crossReq)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("cross-namespace getts = %d, want 404 (session leaked across namespaces)", resp.StatusCode)
	}

	// Teardown: deprovision releases smoke-a's still-live lease;
	// deprovisioning again answers the typed unknown-namespace error.
	if err := sb.Detach(); err != nil {
		return fmt.Errorf("detach in %s: %w", nsB, err)
	}
	depA, err := c.DeprovisionNamespace(ctx, nsA)
	if err != nil {
		return fmt.Errorf("deprovision %s: %w", nsA, err)
	}
	if depA.ReleasedSessions != 1 {
		return fmt.Errorf("deprovision %s released %d sessions, want 1 (the undetached lease)", nsA, depA.ReleasedSessions)
	}
	if _, err := c.DeprovisionNamespace(ctx, nsB); err != nil {
		return fmt.Errorf("deprovision %s: %w", nsB, err)
	}
	if _, err := c.DeprovisionNamespace(ctx, nsA); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		return fmt.Errorf("double deprovision = %v, want ErrUnknownNamespace", err)
	}
	// The scoped route resolves the namespace before the lease, so an op
	// on a deprovisioned namespace's (force-released) session reports the
	// namespace as unknown — strictly more informative than a bare
	// unknown-session.
	if _, err := sa.GetTS(ctx); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		return fmt.Errorf("getts on a deprovisioned namespace's lease = %v, want ErrUnknownNamespace", err)
	}
	fmt.Printf("smoke: namespace leg ok: catalog %d algorithms; %s and %s provisioned, isolated (%d+%d calls), quota and unknown-namespace errors typed\n",
		len(catalog), nsA, nsB, ma.Calls, mb.Calls)
	return nil
}

// checkNamespaceLabels scrapes the exposition and asserts the
// namespace-labeled series are present for both live namespaces.
func checkNamespaceLabels(ctx context.Context, url string, nss ...string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(url, "/")+"/metrics/prometheus", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	families, err := obs.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	for _, fam := range []string{"tsspace_registers_used", "tsserve_ns_sessions", "tsserve_ns_calls_total"} {
		f, ok := families[fam]
		if !ok {
			return fmt.Errorf("family %s missing while namespaces live", fam)
		}
		for _, ns := range nss {
			if !slices.Contains(f.Labels, `namespace="`+ns+`"`) {
				return fmt.Errorf("family %s has no namespace=%q sample (labels: %v)", fam, ns, f.Labels)
			}
		}
	}
	return nil
}

// requiredFamilies are the metric families every daemon must expose on
// GET /metrics/prometheus; the smoke (and so CI) fails when one is
// missing or the exposition is malformed.
var requiredFamilies = []string{
	"tsserve_calls_total",
	"tsserve_attaches_total",
	"tsserve_batches_total",
	"tsserve_active_sessions",
	"tsserve_wire_sessions",
	"tsserve_uptime_seconds",
	"tsserve_getts_latency_ns",
	"tsserve_ns_sessions",
	"tsserve_unknown_namespaces_total",
	"tsspace_registers_total",
}

// checkPrometheus scrapes GET /metrics/prometheus and validates it: the
// exposition must parse strictly (obs.ParseExposition enforces the
// metric-name charset, HELP/TYPE placement and cumulative histogram
// buckets), and every required family must be present.
func checkPrometheus(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(url, "/")+"/metrics/prometheus", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	families, err := obs.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("malformed: %w", err)
	}
	for _, name := range requiredFamilies {
		if _, ok := families[name]; !ok {
			return fmt.Errorf("required family %s missing (got %d families)", name, len(families))
		}
	}
	if calls := families["tsserve_calls_total"]; calls.Samples != 1 {
		return fmt.Errorf("tsserve_calls_total has %d samples, want 1", calls.Samples)
	}
	fmt.Printf("smoke: prometheus exposition ok: %d families, %d required present\n",
		len(families), len(requiredFamilies))
	return nil
}
