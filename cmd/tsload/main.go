// Command tsload drives paper-shaped workloads against timestamp objects
// and records the repository's perf trajectory as machine-readable
// BENCH_<scenario>.json files: throughput, p50/p90/p99/p999 latency, the
// register-space report and driver-side allocation rates, per
// (mix × target × algorithm) row.
//
// Each scenario is one of the built-in mixes (steady, churn, burst,
// compare — see tsspace/tsload); each algorithm comes from the registry
// (every non-mutant implementation by default); each row runs against the
// in-process SDK and against tsserve over HTTP, so the delta between the
// two prices the wire.
//
// Usage:
//
//	tsload [-scenarios all] [-algs all] [-targets inproc,http]
//	       [-procs 64] [-oneshot-procs 4096] [-workers 16]
//	       [-rate 0] [-duration 2s] [-warmup 300ms] [-maxops 0]
//	       [-seed 1] [-out .] [-url http://...]
//	tsload -mixes               list the workload mixes
//	tsload -smoke               short closed-loop sweep (all mixes, both
//	                            targets, collect + sqrt) gated on zero
//	                            errors and zero happens-before violations;
//	                            writes BENCH_smoke.json
//
// Without -url, HTTP rows self-host a tsserved-equivalent server on a
// loopback listener per run, so every algorithm gets a fresh daemon (and a
// fresh one-shot budget). With -url, HTTP rows run against that external
// daemon instead — only for the algorithm it serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"time"

	"tsspace"
	"tsspace/internal/timestamp"
	"tsspace/tsload"
	"tsspace/tsserve"
)

type options struct {
	procs        int
	oneshotProcs int
	workers      int
	rate         float64
	duration     time.Duration
	warmup       time.Duration
	maxOps       uint64
	seed         int64
	url          string
	hc           *http.Client // shared by every http row of the sweep
}

func main() {
	scenarios := flag.String("scenarios", "all", "comma-separated mix names, or all: "+strings.Join(tsload.MixNames(), " | "))
	algs := flag.String("algs", "all", "comma-separated algorithm names, or all: "+strings.Join(tsspace.Algorithms(), " | "))
	targets := flag.String("targets", "inproc,http", "comma-separated backends: inproc | http")
	procs := flag.Int("procs", 64, "paper-processes n for long-lived objects")
	oneshotProcs := flag.Int("oneshot-procs", 4096, "paper-processes n (= timestamp budget M) for one-shot objects")
	workers := flag.Int("workers", 16, "closed-loop concurrency / open-loop in-flight bound")
	rate := flag.Float64("rate", 0, "open-loop arrivals per second; 0 = closed loop")
	duration := flag.Duration("duration", 2*time.Second, "measure window per run")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "warmup before the measure window")
	maxOps := flag.Uint64("maxops", 0, "end a run after this many measured ops; 0 = time-bounded")
	seed := flag.Int64("seed", 1, "base seed of the per-worker RNGs")
	out := flag.String("out", ".", "directory for BENCH_<scenario>.json")
	url := flag.String("url", "", "external tsserved base URL for http rows (default: self-host per run)")
	mixes := flag.Bool("mixes", false, "list the workload mixes and exit")
	smoke := flag.Bool("smoke", false, "short gated sweep writing BENCH_smoke.json")
	flag.Parse()

	if *mixes {
		for _, m := range tsload.Mixes() {
			fmt.Printf("%-8s %s\n", m.Name, m.Summary)
		}
		return
	}

	opt := options{
		procs: *procs, oneshotProcs: *oneshotProcs, workers: *workers,
		rate: *rate, duration: *duration, warmup: *warmup,
		maxOps: *maxOps, seed: *seed, url: *url,
	}
	opt.hc = newHTTPClient(opt.workers)
	ctx := context.Background()

	if opt.url != "" {
		// An external daemon is shared by every http row of the sweep; a
		// one-shot daemon has a single M-timestamp budget, so every row
		// after the first measures an already-spent object. The smoke gate
		// would fail spuriously on that — refuse; plain sweeps get a
		// warning, since running one row to exhaustion is legitimate.
		t, err := tsload.NewHTTP(ctx, opt.url, opt.hc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(2)
		}
		if t.OneShot() {
			if *smoke {
				fmt.Fprintf(os.Stderr, "tsload: smoke needs a long-lived daemon, but %s serves one-shot %q "+
					"(its single budget would be shared by every smoke row); spawn e.g. -alg collect, or drop -url\n",
					opt.url, t.Algorithm())
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "tsload: warning: daemon at %s serves one-shot %q — its single M-timestamp "+
				"budget is shared by every http row of this sweep; rows after exhaustion will be empty\n",
				opt.url, t.Algorithm())
		}
	}

	if *smoke {
		if err := runSmoke(ctx, *out, opt); err != nil {
			fmt.Fprintf(os.Stderr, "tsload: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tsload smoke ok")
		return
	}

	mixList, err := parseMixes(*scenarios)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	algList, err := parseAlgs(*algs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	targetList := strings.Split(*targets, ",")
	for i, tgt := range targetList {
		targetList[i] = strings.TrimSpace(tgt)
		if targetList[i] != "inproc" && targetList[i] != "http" {
			fmt.Fprintf(os.Stderr, "tsload: unknown target %q (want inproc or http)\n", tgt)
			os.Exit(2)
		}
	}

	for _, mix := range mixList {
		results, err := sweep(ctx, mix, algList, targetList, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(1)
		}
		path, err := writeBench(*out, mix.Name, results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(results))
	}
}

func parseMixes(s string) ([]tsload.Mix, error) {
	if s == "all" {
		return tsload.Mixes(), nil
	}
	var out []tsload.Mix
	for _, name := range strings.Split(s, ",") {
		m, ok := tsload.LookupMix(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown mix %q (have %v)", name, tsload.MixNames())
		}
		out = append(out, m)
	}
	return out, nil
}

func parseAlgs(s string) ([]string, error) {
	if s == "all" {
		return tsspace.Algorithms(), nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if _, ok := timestamp.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown algorithm %q (have %v)", name, timestamp.AllNames())
		}
		out = append(out, name)
	}
	return out, nil
}

// isOneShot consults the registry's declared flag.
func isOneShot(alg string) bool {
	info, ok := timestamp.Lookup(alg)
	return ok && info.OneShot
}

// newHTTPClient builds the one client a whole sweep shares: every row has
// identical transport needs, and reusing the pool avoids piling up idle
// keep-alive connections row after row.
func newHTTPClient(workers int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * workers,
		MaxIdleConnsPerHost: 4 * workers,
	}}
}

// sweep runs one mix across algorithms × targets and collects the rows.
func sweep(ctx context.Context, mix tsload.Mix, algs, targets []string, opt options) ([]tsload.Result, error) {
	var results []tsload.Result
	for _, alg := range algs {
		for _, tgt := range targets {
			res, skip, err := runOne(ctx, mix, alg, tgt, opt)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", mix.Name, tgt, alg, err)
			}
			if skip {
				continue
			}
			fmt.Println(row(res))
			results = append(results, res)
		}
	}
	return results, nil
}

// runOne builds a fresh target for (alg, kind) and drives mix against it.
// skip is true for http rows against an external daemon serving a
// different algorithm.
func runOne(ctx context.Context, mix tsload.Mix, alg, kind string, opt options) (tsload.Result, bool, error) {
	procs := opt.procs
	if isOneShot(alg) {
		procs = opt.oneshotProcs
	}

	var target tsload.Target
	switch kind {
	case "inproc":
		obj, err := tsspace.New(tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering())
		if err != nil {
			return tsload.Result{}, false, err
		}
		t := tsload.NewInProc(obj)
		defer t.Close()
		target = t
	case "http":
		hc := opt.hc
		if opt.url != "" {
			t, err := tsload.NewHTTP(ctx, opt.url, hc)
			if err != nil {
				return tsload.Result{}, false, err
			}
			if t.Algorithm() != alg {
				return tsload.Result{}, true, nil // daemon serves another algorithm
			}
			target = t
		} else {
			t, stop, err := selfHost(ctx, alg, procs, hc)
			if err != nil {
				return tsload.Result{}, false, err
			}
			defer stop()
			target = t
		}
	default:
		return tsload.Result{}, false, fmt.Errorf("unknown target kind %q", kind)
	}

	res, err := tsload.Run(ctx, tsload.Config{
		Mix:      mix,
		Target:   target,
		Workers:  opt.workers,
		Rate:     opt.rate,
		Warmup:   opt.warmup,
		Duration: opt.duration,
		Seed:     opt.seed,
		MaxOps:   opt.maxOps,
	})
	return res, false, err
}

// selfHost serves a fresh metered object over a loopback listener — a
// per-run tsserved — and returns the target plus its teardown.
func selfHost(ctx context.Context, alg string, procs int, hc *http.Client) (tsload.Target, func(), error) {
	obj, err := tsspace.New(tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering())
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		obj.Close()
		return nil, nil, err
	}
	srv := &http.Server{Handler: tsserve.NewServer(obj, tsserve.ServerConfig{})}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		obj.Close()
	}
	target, err := tsload.NewHTTP(ctx, "http://"+ln.Addr().String(), hc)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return target, stop, nil
}

func writeBench(dir, scenario string, results []tsload.Result) (string, error) {
	return tsload.WriteBench(dir, tsload.BenchReport{
		Paper:       "conf_podc_HelmiHPW11",
		Scenario:    scenario,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        tsload.CurrentHost(),
		Results:     results,
	})
}

// row renders one result as a log line.
func row(r tsload.Result) string {
	flags := ""
	if r.BudgetSpent {
		flags = " budget-spent"
	}
	if r.Errors > 0 {
		flags += fmt.Sprintf(" errors=%d", r.Errors)
	}
	if r.HBViolations > 0 {
		flags += fmt.Sprintf(" HB-VIOLATIONS=%d", r.HBViolations)
	}
	return fmt.Sprintf("%-8s %-6s %-10s %10.0f ops/s  p50=%-8s p99=%-8s p999=%-8s max=%-8s n=%d%s",
		r.Mix, r.Target, r.Algorithm, r.Throughput,
		time.Duration(r.LatencyNs.P50), time.Duration(r.LatencyNs.P99),
		time.Duration(r.LatencyNs.P999), time.Duration(r.LatencyNs.Max),
		r.Ops, flags)
}

// runSmoke is the CI gate: a short ops-bounded closed-loop sweep of every
// mix against both targets for a long-lived and a one-shot algorithm,
// failing on any error, any happens-before violation, or an empty row.
// All rows land in one BENCH_smoke.json.
func runSmoke(ctx context.Context, out string, opt options) error {
	opt.workers = 4
	opt.rate = 0
	opt.duration = 2 * time.Second
	opt.warmup = 50 * time.Millisecond
	opt.maxOps = 1200
	opt.oneshotProcs = 2048

	algs := []string{"collect", "sqrt"}
	if opt.url != "" {
		// The external daemon's algorithm joins the roster, so the spawned
		// tsserved is exercised no matter what it serves.
		t, err := tsload.NewHTTP(ctx, opt.url, opt.hc)
		if err != nil {
			return err
		}
		algs = append(algs, t.Algorithm())
		sort.Strings(algs)
		algs = slices.Compact(algs)
	}

	var results []tsload.Result
	for _, mix := range tsload.Mixes() {
		rows, err := sweep(ctx, mix, algs, []string{"inproc", "http"}, opt)
		if err != nil {
			return err
		}
		results = append(results, rows...)
	}

	path, err := writeBench(out, "smoke", results)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(results))

	seen := map[string]bool{}
	for _, r := range results {
		if r.Errors > 0 {
			return fmt.Errorf("%s/%s/%s: %d op errors", r.Mix, r.Target, r.Algorithm, r.Errors)
		}
		if r.HBViolations > 0 {
			return fmt.Errorf("%s/%s/%s: %d happens-before violations", r.Mix, r.Target, r.Algorithm, r.HBViolations)
		}
		if r.Ops == 0 {
			return fmt.Errorf("%s/%s/%s: no measured ops", r.Mix, r.Target, r.Algorithm)
		}
		if r.LatencyNs.P50 > r.LatencyNs.P99 || r.LatencyNs.P99 > r.LatencyNs.P999 {
			return fmt.Errorf("%s/%s/%s: percentiles not monotone: %v", r.Mix, r.Target, r.Algorithm, r.LatencyNs)
		}
		seen[r.Target] = true
	}
	if !seen["inproc"] || !seen["http"] {
		return fmt.Errorf("smoke must cover both targets, saw %v", seen)
	}
	return nil
}
