// Command tsload drives paper-shaped workloads against timestamp objects
// and records the repository's perf trajectory as machine-readable
// BENCH_<scenario>.json files: throughput, p50/p90/p99/p999 latency, the
// register-space report and driver-side allocation rates, per
// (mix × target × algorithm) row.
//
// Each scenario is one of the built-in mixes (steady, churn, burst,
// compare, crash, tenants, storm — see tsspace/tsload); each algorithm
// comes from the registry
// (every non-mutant implementation by default); each row runs against the
// in-process SDK and against tsserve over HTTP, so the delta between the
// two prices the wire.
//
// Usage:
//
//	tsload [-scenarios all] [-algs all] [-targets inproc,http,binary]
//	       [-batch 1] [-procs 64] [-oneshot-procs 4096] [-workers 16]
//	       [-rate 0] [-duration 2s] [-warmup 300ms] [-maxops 0]
//	       [-seed 1] [-progress 0] [-out .] [-url http://...]
//	       [-binary-url host:port] [-cpuprofile f] [-memprofile f]
//	tsload -mixes               list the workload mixes
//	tsload -smoke               short closed-loop sweep (all mixes, all
//	                            three transports, collect + sqrt; plus a
//	                            batch-size sweep 1/16/256 over wire v2,
//	                            wire v3 and in process, and a
//	                            shim-vs-batch=1 equivalence leg) gated on
//	                            zero unexpected errors and zero
//	                            happens-before violations (the crash mix
//	                            provokes ErrDetached by design; those are
//	                            counted as expected); writes
//	                            BENCH_smoke.json
//
// -batch takes a comma-separated list of batch sizes (timestamps per getTS
// op via SessionAPI.GetTSBatch) and multiplies the sweep, so one run
// prices batch=1 vs 16 vs 256 on every side of the wire. The http target
// speaks wire v2 (one session leased per worker, batches pipelined on it);
// the binary target speaks wire v3 (the same lease over a persistent
// binary connection — see tsspace/tsserve); the http-shim target drives
// the deprecated single-request /getts endpoint for comparison.
//
// Without -url, wire rows self-host a tsserved-equivalent server (HTTP
// and binary listeners) on loopback per run, so every algorithm gets a
// fresh daemon (and a fresh one-shot budget). With -url, http rows run
// against that external daemon instead — only for the algorithm it
// serves; binary rows join them when -binary-url names its binary
// listener, and self-host otherwise.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run
// (driver side: the client encoding/decoding paths under load), for
// chasing allocations or cycles out of the transports.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"tsspace"
	"tsspace/internal/timestamp"
	"tsspace/tsload"
	"tsspace/tsserve"
)

type options struct {
	procs        int
	oneshotProcs int
	workers      int
	rate         float64
	duration     time.Duration
	warmup       time.Duration
	maxOps       uint64
	seed         int64
	progress     time.Duration // live Progress snapshot interval; 0 = off
	url          string
	binURL       string       // external daemon's binary listener, beside url
	hc           *http.Client // shared by every http row of the sweep
}

func main() {
	scenarios := flag.String("scenarios", "all", "comma-separated mix names, or all: "+strings.Join(tsload.MixNames(), " | "))
	algs := flag.String("algs", "all", "comma-separated algorithm names, or all: "+strings.Join(tsspace.Algorithms(), " | "))
	targets := flag.String("targets", "inproc,http,binary", "comma-separated backends: inproc | http | http-shim | binary")
	batches := flag.String("batch", "1", "comma-separated batch sizes (timestamps per getTS op); multiplies the sweep")
	procs := flag.Int("procs", 64, "paper-processes n for long-lived objects")
	oneshotProcs := flag.Int("oneshot-procs", 4096, "paper-processes n (= timestamp budget M) for one-shot objects")
	workers := flag.Int("workers", 16, "closed-loop concurrency / open-loop in-flight bound")
	rate := flag.Float64("rate", 0, "open-loop arrivals per second; 0 = closed loop")
	duration := flag.Duration("duration", 2*time.Second, "measure window per run")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "warmup before the measure window")
	maxOps := flag.Uint64("maxops", 0, "end a run after this many measured ops; 0 = time-bounded")
	seed := flag.Int64("seed", 1, "base seed of the per-worker RNGs")
	progress := flag.Duration("progress", 0, "print a live progress line (per-mix throughput, p50/p99, error counts) to stderr at this interval; 0 disables")
	out := flag.String("out", ".", "directory for BENCH_<scenario>.json")
	url := flag.String("url", "", "external tsserved base URL for http rows (default: self-host per run)")
	binURL := flag.String("binary-url", "", "external tsserved binary listener (host:port) for binary rows; needs -url for the control plane")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	mixes := flag.Bool("mixes", false, "list the workload mixes and exit")
	smoke := flag.Bool("smoke", false, "short gated sweep writing BENCH_smoke.json")
	flag.Parse()

	if *mixes {
		for _, m := range tsload.Mixes() {
			fmt.Printf("%-8s %s\n", m.Name, m.Summary)
		}
		return
	}

	opt := options{
		procs: *procs, oneshotProcs: *oneshotProcs, workers: *workers,
		rate: *rate, duration: *duration, warmup: *warmup,
		maxOps: *maxOps, seed: *seed, progress: *progress,
		url: *url, binURL: *binURL,
	}
	opt.hc = newHTTPClient(opt.workers)
	ctx := context.Background()

	if opt.binURL != "" && opt.url == "" {
		fmt.Fprintln(os.Stderr, "tsload: -binary-url needs -url: the binary protocol is the data plane only; health and metrics stay on HTTP")
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if opt.url != "" {
		// An external daemon is shared by every http row of the sweep; a
		// one-shot daemon has a single M-timestamp budget, so every row
		// after the first measures an already-spent object. The smoke gate
		// would fail spuriously on that — refuse; plain sweeps get a
		// warning, since running one row to exhaustion is legitimate.
		t, err := tsload.NewHTTP(ctx, opt.url, opt.hc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(2)
		}
		if t.OneShot() {
			if *smoke {
				fmt.Fprintf(os.Stderr, "tsload: smoke needs a long-lived daemon, but %s serves one-shot %q "+
					"(its single budget would be shared by every smoke row); spawn e.g. -alg collect, or drop -url\n",
					opt.url, t.Algorithm())
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "tsload: warning: daemon at %s serves one-shot %q — its single M-timestamp "+
				"budget is shared by every http row of this sweep; rows after exhaustion will be empty\n",
				opt.url, t.Algorithm())
		}
	}

	if *smoke {
		if err := runSmoke(ctx, *out, opt); err != nil {
			fmt.Fprintf(os.Stderr, "tsload: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tsload smoke ok")
		return
	}

	mixList, err := parseMixes(*scenarios)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	algList, err := parseAlgs(*algs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	batchList, err := parseBatches(*batches)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
		os.Exit(2)
	}
	targetList := strings.Split(*targets, ",")
	for i, tgt := range targetList {
		targetList[i] = strings.TrimSpace(tgt)
		switch targetList[i] {
		case "inproc", "http", "http-shim", "binary":
		default:
			fmt.Fprintf(os.Stderr, "tsload: unknown target %q (want inproc, http, http-shim or binary)\n", tgt)
			os.Exit(2)
		}
	}

	for _, mix := range mixList {
		results, err := sweep(ctx, mix, algList, targetList, batchList, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(1)
		}
		path, err := writeBench(*out, mix.Name, results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(results))
	}
}

func parseMixes(s string) ([]tsload.Mix, error) {
	if s == "all" {
		return tsload.Mixes(), nil
	}
	var out []tsload.Mix
	for _, name := range strings.Split(s, ",") {
		m, ok := tsload.LookupMix(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown mix %q (have %v)", name, tsload.MixNames())
		}
		out = append(out, m)
	}
	return out, nil
}

func parseAlgs(s string) ([]string, error) {
	if s == "all" {
		return tsspace.Algorithms(), nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if _, ok := timestamp.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown algorithm %q (have %v)", name, timestamp.AllNames())
		}
		out = append(out, name)
	}
	return out, nil
}

// parseBatches parses the -batch list of getTS batch sizes.
func parseBatches(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 1 {
			return nil, fmt.Errorf("bad batch size %q (want positive integers)", part)
		}
		out = append(out, b)
	}
	return out, nil
}

// startProfiles starts the optional pprof capture and returns the
// function that flushes it: CPU sampling runs for the whole process, the
// heap profile is snapped (after a GC, so it shows live retention) on the
// way out.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsload: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tsload: memprofile: %v\n", err)
			}
		}
	}, nil
}

// isOneShot consults the registry's declared flag.
func isOneShot(alg string) bool {
	info, ok := timestamp.Lookup(alg)
	return ok && info.OneShot
}

// newHTTPClient builds the one client a whole sweep shares: every row has
// identical transport needs, and reusing the pool avoids piling up idle
// keep-alive connections row after row.
func newHTTPClient(workers int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * workers,
		MaxIdleConnsPerHost: 4 * workers,
	}}
}

// sweep runs one mix across algorithms × targets × batch sizes and
// collects the rows. One-shot algorithms skip batch sizes > 1 (the driver
// would force them to 1 anyway, duplicating the batch=1 row).
func sweep(ctx context.Context, mix tsload.Mix, algs, targets []string, batches []int, opt options) ([]tsload.Result, error) {
	var results []tsload.Result
	for _, alg := range algs {
		for _, tgt := range targets {
			for _, batch := range batches {
				if batch > 1 && isOneShot(alg) {
					continue
				}
				res, skip, err := runOne(ctx, mix.WithBatch(batch), alg, tgt, opt)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s/batch=%d: %w", mix.Name, tgt, alg, batch, err)
				}
				if skip {
					continue
				}
				fmt.Println(row(res))
				results = append(results, res)
			}
		}
	}
	return results, nil
}

// crashTTL is the session TTL armed on targets the crash mix runs
// against: short enough that abandoned pids circulate many times inside a
// smoke window, long enough that a live worker's inter-op pause never
// trips it.
const crashTTL = 100 * time.Millisecond

// runOne builds a fresh target for (alg, kind) and drives mix against it.
// skip is true for http rows against an external daemon serving a
// different algorithm, and for crash-mix rows against any external daemon
// (its 60s default TTL would let the abandoned pids wedge the namespace
// for the whole run — crashing a shared daemon's leases is not this
// driver's call to make).
func runOne(ctx context.Context, mix tsload.Mix, alg, kind string, opt options) (tsload.Result, bool, error) {
	procs := opt.procs
	if isOneShot(alg) {
		procs = opt.oneshotProcs
	}
	if mix.AbandonFrac > 0 && kind != "inproc" && opt.url != "" {
		return tsload.Result{}, true, nil
	}
	if mix.Namespaces > 0 {
		// The shim target has no namespace surface; and provisioning (and
		// force-deprovisioning) namespaces on a shared external daemon is
		// not this driver's call to make — multi-tenant rows self-host.
		if kind == "http-shim" || (kind != "inproc" && opt.url != "") {
			return tsload.Result{}, true, nil
		}
	}
	var ttl time.Duration
	if mix.AbandonFrac > 0 {
		ttl = crashTTL
	}

	var target tsload.Target
	switch kind {
	case "inproc":
		objOpts := []tsspace.Option{tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering()}
		if ttl > 0 {
			objOpts = append(objOpts, tsspace.WithSessionTTL(ttl))
		}
		obj, err := tsspace.New(objOpts...)
		if err != nil {
			return tsload.Result{}, false, err
		}
		t := tsload.NewInProc(obj)
		defer t.Close()
		target = t
	case "http", "http-shim":
		newTarget := tsload.NewHTTP
		if kind == "http-shim" {
			newTarget = tsload.NewHTTPShim
		}
		baseURL := opt.url
		if baseURL == "" {
			hosted, stop, err := selfHost(alg, procs, ttl)
			if err != nil {
				return tsload.Result{}, false, err
			}
			defer stop()
			baseURL = hosted.baseURL
		}
		t, err := newTarget(ctx, baseURL, opt.hc)
		if err != nil {
			return tsload.Result{}, false, err
		}
		if t.Algorithm() != alg {
			return tsload.Result{}, true, nil // external daemon serves another algorithm
		}
		target = t
	case "binary":
		// External only when both planes are named (-url carries health and
		// metrics, -binary-url the data plane); otherwise self-host, so a
		// binary row never silently degrades to a different daemon than the
		// caller asked for.
		baseURL, binAddr := opt.url, opt.binURL
		if binAddr == "" {
			hosted, stop, err := selfHost(alg, procs, ttl)
			if err != nil {
				return tsload.Result{}, false, err
			}
			defer stop()
			baseURL, binAddr = hosted.baseURL, hosted.binAddr
		}
		t, err := tsload.NewBinary(ctx, baseURL, binAddr, opt.hc)
		if err != nil {
			return tsload.Result{}, false, err
		}
		defer t.Close()
		if t.Algorithm() != alg {
			return tsload.Result{}, true, nil // external daemon serves another algorithm
		}
		target = t
	default:
		return tsload.Result{}, false, fmt.Errorf("unknown target kind %q", kind)
	}

	cfg := tsload.Config{
		Mix:      mix,
		Target:   target,
		Workers:  opt.workers,
		Rate:     opt.rate,
		Warmup:   opt.warmup,
		Duration: opt.duration,
		Seed:     opt.seed,
		MaxOps:   opt.maxOps,
	}
	if opt.progress > 0 {
		cfg.ProgressEvery = opt.progress
		cfg.OnProgress = printProgress
	}
	res, err := tsload.Run(ctx, cfg)
	return res, false, err
}

// printProgress renders one live snapshot as a stderr line, so long runs
// show their per-mix throughput, tail latency and error counts while the
// BENCH rows are still cooking. stderr keeps the stdout row/JSON stream
// clean for pipelines.
func printProgress(p tsload.Progress) {
	line := fmt.Sprintf("progress: %-8s %-9s %-7s t=%-8s ops=%-9d %10.0f ops/s  p50=%-8s p99=%-8s",
		p.Mix, p.Target, p.Phase, p.Elapsed.Round(time.Millisecond), p.Ops, p.Throughput,
		time.Duration(p.P50Ns), time.Duration(p.P99Ns))
	if p.Errors > 0 {
		line += fmt.Sprintf(" errs=%d", p.Errors)
	}
	if p.Abandoned > 0 {
		line += fmt.Sprintf(" abandoned=%d", p.Abandoned)
	}
	if p.Dropped > 0 {
		line += fmt.Sprintf(" dropped=%d", p.Dropped)
	}
	fmt.Fprintln(os.Stderr, line)
}

// hosted names the two planes of a self-hosted daemon.
type hosted struct {
	baseURL string // HTTP listener: wire v2 + control plane
	binAddr string // wire-v3 binary listener
}

// selfHost serves a fresh metered object over loopback listeners — a
// per-run tsserved with both its HTTP front end and its wire-v3 binary
// listener — and returns their addresses plus the teardown. A non-zero
// ttl arms the daemon's wire-session reaper with it (crash-mix rows need
// abandoned leases back quickly); zero keeps tsserve's default.
func selfHost(alg string, procs int, ttl time.Duration) (hosted, func(), error) {
	obj, err := tsspace.New(tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering())
	if err != nil {
		return hosted{}, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		obj.Close()
		return hosted{}, nil, err
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		obj.Close()
		return hosted{}, nil, err
	}
	h := tsserve.NewServer(obj, tsserve.ServerConfig{SessionTTL: ttl})
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	go func() { _ = h.ServeBinary(binLn) }()
	stop := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		h.Close()
		obj.Close()
	}
	return hosted{baseURL: "http://" + ln.Addr().String(), binAddr: binLn.Addr().String()}, stop, nil
}

func writeBench(dir, scenario string, results []tsload.Result) (string, error) {
	return tsload.WriteBench(dir, tsload.BenchReport{
		Paper:       "conf_podc_HelmiHPW11",
		Scenario:    scenario,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        tsload.CurrentHost(),
		Results:     results,
	})
}

// row renders one result as a log line.
func row(r tsload.Result) string {
	flags := ""
	if r.BatchSize > 1 {
		flags = fmt.Sprintf(" batch=%d (%d ts)", r.BatchSize, r.Timestamps)
	}
	if r.BudgetSpent {
		flags += " budget-spent"
	}
	if r.Abandoned > 0 {
		flags += fmt.Sprintf(" abandoned=%d expected-errors=%d", r.Abandoned, r.ExpectedErrors)
	}
	if r.Namespaces > 0 {
		flags += fmt.Sprintf(" ns=%d", r.Namespaces)
		if r.ExpectedErrors > 0 && r.Abandoned == 0 {
			flags += fmt.Sprintf(" quota-rejections=%d", r.ExpectedErrors)
		}
	}
	if r.UnexpectedErrors > 0 {
		flags += fmt.Sprintf(" ERRORS=%d", r.UnexpectedErrors)
	}
	if r.HBViolations > 0 {
		flags += fmt.Sprintf(" HB-VIOLATIONS=%d", r.HBViolations)
	}
	return fmt.Sprintf("%-8s %-9s %-10s %10.0f ops/s  p50=%-8s p99=%-8s p999=%-8s max=%-8s n=%d%s",
		r.Mix, r.Target, r.Algorithm, r.Throughput,
		time.Duration(r.LatencyNs.P50), time.Duration(r.LatencyNs.P99),
		time.Duration(r.LatencyNs.P999), time.Duration(r.LatencyNs.Max),
		r.Ops, flags)
}

// runSmoke is the CI gate: a short ops-bounded closed-loop sweep of every
// mix against all three transports for a long-lived and a one-shot
// algorithm, plus a batch-size leg (1/16/256 in process, over wire v2 and
// over wire v3) and a deprecated-shim leg whose batch-of-1 behaviour must
// be equivalent to wire v2's. It fails on any *unexpected* error, any
// happens-before violation, an empty row, or a batch row whose timestamp
// accounting does not match its batch size — gating on total errors would
// reject the crash mix's fault injection, whose whole point is provoking
// ErrDetached (counted as ExpectedErrors) while happens-before holds. The
// crash rows additionally must have abandoned at least one lease, or the
// injection silently did not run; namespace rows must partition their
// getTS ops across the provisioned namespaces, the storm mix must have
// provoked at least one quota rejection, and at least one row must have
// run multi-tenant. All rows land in one BENCH_smoke.json.
func runSmoke(ctx context.Context, out string, opt options) error {
	opt.workers = 4
	opt.rate = 0
	opt.duration = 2 * time.Second
	opt.warmup = 50 * time.Millisecond
	opt.maxOps = 1200
	opt.oneshotProcs = 2048

	algs := []string{"collect", "sqrt"}
	batchAlg := "collect" // the long-lived algorithm of the batch and shim legs
	if opt.url != "" {
		// The external daemon's algorithm joins the roster, so the spawned
		// tsserved is exercised no matter what it serves. It is known
		// long-lived here (main refuses one-shot daemons for smoke), so the
		// batch legs run against it too.
		t, err := tsload.NewHTTP(ctx, opt.url, opt.hc)
		if err != nil {
			return err
		}
		algs = append(algs, t.Algorithm())
		sort.Strings(algs)
		algs = slices.Compact(algs)
		batchAlg = t.Algorithm()
	}

	var results []tsload.Result
	for _, mix := range tsload.Mixes() {
		rows, err := sweep(ctx, mix, algs, []string{"inproc", "http", "binary"}, []int{1}, opt)
		if err != nil {
			return err
		}
		results = append(results, rows...)
	}

	// Batch-size leg: the steady mix at 16 and 256 timestamps per op, in
	// process and over both wires (batch=1 is already covered above).
	steady, _ := tsload.LookupMix("steady")
	batchRows, err := sweep(ctx, steady, []string{batchAlg}, []string{"inproc", "http", "binary"}, []int{16, 256}, opt)
	if err != nil {
		return err
	}
	results = append(results, batchRows...)

	// Shim leg: the deprecated single-request endpoint at batch 1, to hold
	// against the wire-v2 batch=1 row below.
	shimRows, err := sweep(ctx, steady, []string{batchAlg}, []string{"http-shim"}, []int{1}, opt)
	if err != nil {
		return err
	}
	results = append(results, shimRows...)

	path, err := writeBench(out, "smoke", results)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(results))

	seen := map[string]bool{}
	crashRows, multiNSRows := 0, 0
	var stormRejections uint64
	for _, r := range results {
		if r.UnexpectedErrors > 0 {
			return fmt.Errorf("%s/%s/%s: %d unexpected op errors (%d expected)",
				r.Mix, r.Target, r.Algorithm, r.UnexpectedErrors, r.ExpectedErrors)
		}
		if r.HBViolations > 0 {
			return fmt.Errorf("%s/%s/%s: %d happens-before violations", r.Mix, r.Target, r.Algorithm, r.HBViolations)
		}
		if r.Mix == "crash" {
			crashRows++
			if r.Abandoned == 0 {
				return fmt.Errorf("%s/%s/%s: crash mix abandoned no leases — the fault injection did not run",
					r.Mix, r.Target, r.Algorithm)
			}
		}
		if r.Namespaces > 0 {
			if r.Namespaces >= 2 {
				multiNSRows++
			}
			// Every measured getTS op ran against exactly one provisioned
			// namespace, so the per-namespace op counts must partition them.
			var nsOps uint64
			for _, v := range r.NamespaceOps {
				nsOps += v
			}
			if len(r.NamespaceOps) != r.Namespaces || nsOps != r.GetTSOps {
				return fmt.Errorf("%s/%s/%s: namespace ops %v do not partition %d getTS ops",
					r.Mix, r.Target, r.Algorithm, r.NamespaceOps, r.GetTSOps)
			}
		}
		if r.Mix == "storm" {
			stormRejections += r.ExpectedErrors
		}
		if r.Ops == 0 {
			return fmt.Errorf("%s/%s/%s: no measured ops", r.Mix, r.Target, r.Algorithm)
		}
		if r.LatencyNs.P50 > r.LatencyNs.P99 || r.LatencyNs.P99 > r.LatencyNs.P999 {
			return fmt.Errorf("%s/%s/%s: percentiles not monotone: %v", r.Mix, r.Target, r.Algorithm, r.LatencyNs)
		}
		// A measured getTS op only records after a full, error-free batch,
		// so the timestamp count must be exactly ops × batch.
		if r.Timestamps != r.GetTSOps*uint64(r.BatchSize) {
			return fmt.Errorf("%s/%s/%s: %d timestamps from %d getTS ops at batch %d",
				r.Mix, r.Target, r.Algorithm, r.Timestamps, r.GetTSOps, r.BatchSize)
		}
		seen[r.Target] = true
	}
	if !seen["inproc"] || !seen["http"] || !seen["binary"] || !seen["http-shim"] {
		return fmt.Errorf("smoke must cover inproc, http, binary and http-shim, saw %v", seen)
	}
	if crashRows == 0 {
		return fmt.Errorf("smoke ran no crash-mix rows")
	}
	if multiNSRows == 0 {
		return fmt.Errorf("smoke ran no multi-namespace rows")
	}
	if stormRejections == 0 {
		// Per-transport counts are timing-dependent (in-process leases are
		// microseconds wide), but across all storm rows the 2-slot quota
		// must have turned at least one attach away.
		return fmt.Errorf("smoke attach storms provoked no quota rejections — the quota never bit")
	}
	return checkShimEquivalence(results, batchAlg)
}

// checkShimEquivalence holds the deprecated single-request shim against
// wire v2 at batch 1: same steady mix, same algorithm, same gates — and
// identical single-call semantics (every getTS op yields exactly one
// timestamp on both paths). Latencies are not compared; the shim pays an
// extra server-side attach per op by design, and pricing that is the
// point of keeping both rows.
func checkShimEquivalence(results []tsload.Result, alg string) error {
	find := func(target string) *tsload.Result {
		for i := range results {
			r := &results[i]
			if r.Mix == "steady" && r.Target == target && r.Algorithm == alg && r.BatchSize == 1 {
				return r
			}
		}
		return nil
	}
	shim, v2 := find("http-shim"), find("http")
	if shim == nil || v2 == nil {
		return fmt.Errorf("shim equivalence: missing steady batch=1 rows (shim %v, v2 %v)", shim != nil, v2 != nil)
	}
	for _, r := range []*tsload.Result{shim, v2} {
		if r.Timestamps != r.GetTSOps {
			return fmt.Errorf("shim equivalence: %s issued %d timestamps over %d single-call ops", r.Target, r.Timestamps, r.GetTSOps)
		}
	}
	if shim.Procs != v2.Procs || shim.Algorithm != v2.Algorithm {
		return fmt.Errorf("shim equivalence: rows describe different objects: %s/%d vs %s/%d",
			shim.Algorithm, shim.Procs, v2.Algorithm, v2.Procs)
	}
	fmt.Printf("shim ≡ batch=1: %d vs %d single-call ops, both clean\n", shim.Ops, v2.Ops)
	return nil
}
