package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/lowerbound"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
)

// crashCheck runs the torn-write conformance legs: every simulable
// registry algorithm (mutants included) goes through the systematic
// crash sweep — one injected crash per victim, per crash point, per
// torn-write outcome — at each -exploren process count, plus a seeded
// crash-fuzz pass. Correct algorithms must survive every leg; the
// crash-checkpoint mutant must be caught with a replayable witness (it is
// indistinguishable from collect without fault injection, so this leg is
// the proof the harness actually bites). Other mutants are reported as
// caught or survived without failing the run: their bugs are
// interleaving bugs, not crash bugs, and their own legs live in the
// crash-free modes.
func crashCheck(cfg modelCheckConfig, ns []int) bool {
	failed := false
	for _, name := range timestamp.AllNames() {
		fam, _ := timestamp.Lookup(name)
		probe := fam.New(fam.MinProcs)
		if !engine.Simulable[timestamp.Timestamp](probe) {
			fmt.Printf("skip  %-22s not simulable: no crash legs\n", name)
			continue
		}
		caught := false
		for _, n := range ns {
			if n < fam.MinProcs {
				continue
			}
			mkAlg := func() engine.Algorithm[timestamp.Timestamp] { return fam.New(n) }
			alg := mkAlg()
			var wl engine.Workload = engine.LongLived{CallsPerProc: fam.ExploreCalls}
			if alg.OneShot() {
				wl = engine.OneShot{}
			}
			c := engine.Config[timestamp.Timestamp]{
				Alg: alg, World: engine.Simulated, N: n, Workload: wl, Seed: cfg.seed,
			}
			runs, err := engine.CrashSweep(c, engine.CrashSweepOptions[timestamp.Timestamp]{
				Shrink: cfg.shrink, NewAlg: mkAlg,
			})
			what := fmt.Sprintf("crash sweep n=%d (%d executions)", n, runs)
			if err == nil {
				rep, ferr := engine.CrashFuzz(c, engine.CrashFuzzOptions[timestamp.Timestamp]{
					Count: 50, Crashes: 2, Shrink: cfg.shrink, NewAlg: mkAlg,
				})
				what = fmt.Sprintf("%s + crash fuzz (%d schedules)", what, rep.Schedules)
				err = ferr
			}
			if fam.Mutant {
				if err != nil {
					caught = true
					fmt.Printf("ok    %-22s %s: mutant caught: %v\n", name, what, err)
					writeCrashCex(cfg.cexDir, name, n, fam.ExploreCalls, err)
					break
				}
				fmt.Printf("info  %-22s %s: mutant not caught by crash legs\n", name, what)
				continue
			}
			reportLine(&failed, name, what, err)
			writeCrashCex(cfg.cexDir, name, n, fam.ExploreCalls, err)
		}
		if fam.Name == "collect-crash-memo" && !caught {
			fmt.Printf("FAIL  %-22s crash-checkpoint mutant NOT caught — fault injection is not biting\n", name)
			failed = true
		}
	}
	return failed
}

// confront runs the live lower-bound adversaries against every simulable
// correct algorithm at the -confrontn process counts and prints the
// measured-coverage-vs-certificate table. The executions are
// happens-before-checked (an adversary that breaks the algorithm instead
// of covering it proves nothing). The coverage assertion is enforced on
// collect — the canonical n-register implementation whose covering
// structure the constructions are stated against; other algorithms'
// margins are reported for the record (the theorems promise a winning
// adversary exists, not that this greedy one wins against every
// register layout).
func confront(cfg modelCheckConfig, ns []int) bool {
	failed := false
	fmt.Printf("%-22s %4s %9s %4s %8s %12s %7s %7s\n",
		"algorithm", "n", "adversary", "m", "covered", "certificate", "margin", "steps")
	for _, fam := range families {
		probe := fam.New(fam.MinProcs)
		if !engine.Simulable[timestamp.Timestamp](probe) {
			continue
		}
		for _, n := range ns {
			if n < fam.MinProcs {
				continue
			}
			var rec *hbcheck.Recorder[timestamp.Timestamp]
			factory := func(wl engine.Workload) sched.Factory {
				return func() *sched.System {
					sys, r, _ := engine.NewSimSystem(engine.Config[timestamp.Timestamp]{
						Alg: fam.New(n), World: engine.Simulated, N: n, Workload: wl, Seed: cfg.seed,
					})
					rec = r
					return sys
				}
			}
			compare := fam.New(n).Compare
			enforce := fam.Name == "collect"

			reports := []*lowerbound.LiveReport{}
			one, err := lowerbound.LiveOneShot(factory(engine.OneShot{}))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tscheck: %s n=%d: %v\n", fam.Name, n, err)
				failed = true
				continue
			}
			if herr := hbcheck.CheckRecorder(rec, compare); herr != nil {
				fmt.Fprintf(os.Stderr, "tscheck: %s n=%d: adversary execution violates happens-before: %v\n", fam.Name, n, herr)
				failed = true
			}
			reports = append(reports, one)

			if !probe.OneShot() {
				const rounds = 3
				ll, err := lowerbound.LiveLongLived(factory(engine.LongLived{CallsPerProc: rounds + 1}), rounds)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tscheck: %s n=%d: %v\n", fam.Name, n, err)
					failed = true
					continue
				}
				if herr := hbcheck.CheckRecorder(rec, compare); herr != nil {
					fmt.Fprintf(os.Stderr, "tscheck: %s n=%d: adversary execution violates happens-before: %v\n", fam.Name, n, herr)
					failed = true
				}
				reports = append(reports, ll)
			}

			for _, rep := range reports {
				verdict := ""
				if rep.Margin < 0 {
					if enforce {
						verdict = "  FAIL: below certificate"
						failed = true
					} else {
						verdict = "  (below certificate; informational)"
					}
				}
				fmt.Printf("%-22s %4d %9s %4d %8d %12d %+7d %7d%s\n",
					fam.Name, n, shortAdversary(rep.Adversary), rep.M,
					rep.MaxCovered, rep.Certificate, rep.Margin, rep.Steps, verdict)
			}
		}
	}
	return failed
}

func shortAdversary(name string) string {
	switch name {
	case "live-one-shot-cover":
		return "one-shot"
	case "live-clone-and-cover":
		return "longlived"
	}
	return name
}

// writeCrashCex persists a crash-schedule counterexample as a replayable
// artifact in the crash witness format (x/X tokens; cmd/tstrace replays
// it through the fault-injection harness).
func writeCrashCex(dir, alg string, n, calls int, err error) {
	cex, ok := err.(*engine.Counterexample)
	if dir == "" || !ok {
		return
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		fmt.Fprintf(os.Stderr, "tscheck: %v\n", mkErr)
		return
	}
	text := sched.FormatCrashSchedule(cex.Schedule)
	path := filepath.Join(dir, fmt.Sprintf("%s-crash-n%d.schedule", alg, n))
	body := fmt.Sprintf("# tscheck crash counterexample: %s n=%d calls=%d (%d entries)\n# %v\n# replay: go run ./cmd/tstrace -alg %s -n %d -calls %d -schedule %s\n%s\n",
		alg, n, calls, cex.Steps, cex.Err, alg, n, calls, text, text)
	if wErr := os.WriteFile(path, []byte(body), 0o644); wErr != nil {
		fmt.Fprintf(os.Stderr, "tscheck: %v\n", wErr)
		return
	}
	fmt.Printf("      crash counterexample written to %s\n", path)
}
