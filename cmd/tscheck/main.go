// Command tscheck model-checks and stress-tests every timestamp
// implementation against the happens-before specification (§2).
//
// The default run is the classic suite: capped exhaustive interleavings
// for 2 processes, sampled random schedules, real-goroutine runs, and the
// engine's scenario workloads, all validated by the happens-before
// checker.
//
// The model-checking modes replace the capped DFS with the
// partial-order-reduced explorer in internal/mc and the unified
// conformance driver in internal/engine:
//
//	tscheck -explore              exhaustive POR exploration of every
//	                              algorithm at the -exploren process counts,
//	                              checked by the causal (class-wide) verifier
//	tscheck -explore -por=false   same coverage via naive DFS (the baseline)
//	tscheck -explore -compare     print the E11 reduction table (POR vs naive)
//	tscheck -fuzz 200             seeded random-schedule fuzzing at -fuzzn
//	tscheck -mutant               demonstrate the checker catching the
//	                              stale-scan mutant with a shrunk witness
//	tscheck -crash                torn-write conformance: crash sweep +
//	                              crash fuzz over every registry algorithm
//	                              (the crash-checkpoint mutant must be caught)
//	tscheck -confront             run the live lower-bound adversaries and
//	                              print the coverage-vs-certificate table
//	                              for the -confrontn process counts
//	tscheck -cexdir DIR           write failing schedules as replayable
//	                              artifacts (see cmd/tstrace -schedule)
//
// Any failing schedule is shrunk (unless -shrink=false) to a 1-minimal
// counterexample and serialized so the violating pair is back to back.
//
// Usage:
//
//	tscheck [-n 4] [-visits 2000] [-samples 100] [-reps 20] [-sharded]
//	        [-explore] [-exploren 2,3] [-por] [-compare] [-fuzz N]
//	        [-fuzzn 8] [-shrink] [-mutant] [-cexdir DIR] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tsspace/internal/engine"
	"tsspace/internal/report"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all" // self-registering algorithm catalog
)

// families is the conformance roster: every correct implementation in the
// registry, with its exploration metadata (minimum process count, call
// depth) carried by the registration itself.
var families = timestamp.All()

func main() {
	n := flag.Int("n", 4, "processes for sampled and concurrent runs")
	visits := flag.Int("visits", 2000, "cap on exhaustive interleavings (classic suite, 2 processes)")
	samples := flag.Int("samples", 100, "random schedules per algorithm (classic suite)")
	reps := flag.Int("reps", 20, "real-concurrency repetitions per algorithm")
	seed := flag.Int64("seed", 42, "schedule sampling seed")
	sharded := flag.Bool("sharded", false, "use the cache-line-padded register array for concurrent runs")
	explore := flag.Bool("explore", false, "exhaustive model checking of every algorithm (internal/mc)")
	exploreNs := flag.String("exploren", "2,3", "process counts for -explore")
	por := flag.Bool("por", true, "partial-order reduction (sleep sets + state hashing) for -explore")
	compare := flag.Bool("compare", false, "with -explore: also run the naive DFS and print the E11 reduction table")
	fuzz := flag.Int("fuzz", 0, "seeded random schedules per algorithm (0 = off)")
	fuzzN := flag.Int("fuzzn", 8, "processes for -fuzz")
	shrink := flag.Bool("shrink", true, "shrink failing schedules to minimal counterexamples")
	mutantDemo := flag.Bool("mutant", false, "verify the checker catches the stale-scan mutant")
	crash := flag.Bool("crash", false, "torn-write conformance: crash sweep + crash fuzz over the registry (mutants included)")
	confrontMode := flag.Bool("confront", false, "run the live lower-bound adversaries and print the coverage-vs-certificate table")
	confrontNs := flag.String("confrontn", "8,16,32,64", "process counts for -confront")
	cexDir := flag.String("cexdir", "", "directory for counterexample artifacts")
	flag.Parse()

	if *explore || *fuzz > 0 || *mutantDemo || *crash || *confrontMode {
		os.Exit(modelCheck(modelCheckConfig{
			exploreNs: *exploreNs, explore: *explore, por: *por, compare: *compare,
			fuzz: *fuzz, fuzzN: *fuzzN, shrink: *shrink, mutant: *mutantDemo,
			crash: *crash, confront: *confrontMode, confrontNs: *confrontNs,
			cexDir: *cexDir, seed: *seed,
		}))
	}
	classic(*n, *visits, *samples, *reps, *seed, *sharded)
}

type modelCheckConfig struct {
	exploreNs             string
	explore, por, compare bool
	fuzz, fuzzN           int
	shrink, mutant        bool
	crash, confront       bool
	confrontNs            string
	cexDir                string
	seed                  int64
}

// modelCheck runs the explore/fuzz/mutant modes and returns the exit code.
func modelCheck(cfg modelCheckConfig) int {
	failed := false
	ns, err := sched.ParseSchedule(cfg.exploreNs) // same comma-separated int format
	if err != nil || len(ns) == 0 {
		fmt.Fprintf(os.Stderr, "tscheck: bad -exploren %q\n", cfg.exploreNs)
		return 2
	}

	var tableRows []report.ExplorationRow
	exploreLegs := 0
	for _, fam := range families {
		if cfg.explore {
			for _, en := range ns {
				if en < fam.MinProcs {
					continue
				}
				exploreLegs++
				calls := fam.ExploreCalls
				if en > 2 {
					calls = 1 // long-lived call programs explode beyond n=2
				}
				spec := engine.ConformanceSpec[timestamp.Timestamp]{
					New:          func(n int) engine.Algorithm[timestamp.Timestamp] { return fam.New(n) },
					ExhaustiveNs: []int{en},
					Calls:        calls,
					MaxVisits:    exploreCap,
					FuzzCount:    20, // atomic substitute for non-simulable algorithms
					Seed:         cfg.seed,
					POR:          cfg.por,
					Shrink:       cfg.shrink,
				}
				for _, res := range engine.Conformance(spec) {
					what := fmt.Sprintf("explore %d×%d: %s", res.N, res.Calls, describe(res))
					if capped(res) {
						// A capped exploration is a smoke pass, not an
						// exhaustive one; say so rather than overclaim.
						what += " — VISIT CAP REACHED, not exhaustive"
					}
					reportLine(&failed, res.Alg, what, res.Err)
					writeCex(cfg.cexDir, res.Alg, res.N, res.Calls, res.Err)
					if cfg.compare && res.Err == nil && res.Skipped == "" && !capped(res) {
						tableRows = append(tableRows, compareRow(fam, res))
					}
				}
			}
		}
		if cfg.fuzz > 0 {
			alg := fam.New(cfg.fuzzN)
			calls := fam.ExploreCalls
			if alg.OneShot() {
				calls = 1
			}
			var wl engine.Workload = engine.OneShot{}
			if calls > 1 {
				wl = engine.LongLived{CallsPerProc: calls}
			}
			rep, err := engine.Fuzz(engine.Config[timestamp.Timestamp]{
				Alg: alg, World: engine.Simulated, N: cfg.fuzzN, Workload: wl, Seed: cfg.seed,
			}, engine.FuzzOptions[timestamp.Timestamp]{
				Count:  cfg.fuzz,
				Shrink: cfg.shrink,
				NewAlg: func() engine.Algorithm[timestamp.Timestamp] { return fam.New(cfg.fuzzN) },
			})
			what := fmt.Sprintf("fuzz %d×%d: %d %s schedules", cfg.fuzzN, calls, rep.Schedules, rep.World)
			reportLine(&failed, alg.Name(), what, err)
			writeCex(cfg.cexDir, alg.Name(), cfg.fuzzN, calls, err)
		}
	}

	if cfg.explore && exploreLegs == 0 {
		fmt.Fprintf(os.Stderr, "tscheck: -exploren %q selected no algorithm (all below the minimum process counts)\n", cfg.exploreNs)
		return 2
	}
	if cfg.mutant {
		failed = !mutantCaught(cfg) || failed
	}
	if cfg.crash {
		failed = crashCheck(cfg, ns) || failed
	}
	if cfg.confront {
		cns, err := sched.ParseSchedule(cfg.confrontNs)
		if err != nil || len(cns) == 0 {
			fmt.Fprintf(os.Stderr, "tscheck: bad -confrontn %q\n", cfg.confrontNs)
			return 2
		}
		failed = confront(cfg, cns) || failed
	}
	if len(tableRows) > 0 {
		fmt.Println()
		fmt.Print(report.FormatExploration(tableRows))
	}
	if failed {
		return 1
	}
	fmt.Println("\nall checks passed")
	return 0
}

func describe(res engine.ConformanceResult) string {
	if res.Skipped != "" {
		return fmt.Sprintf("%s (%d atomic runs)", res.Skipped, res.Schedules)
	}
	return res.Stats.String()
}

// exploreCap is the visit budget per exploration cell. Reaching it means
// the cell was NOT explored exhaustively; tscheck flags such legs and
// keeps them out of the E11 table.
const exploreCap = 200_000

func capped(res engine.ConformanceResult) bool {
	return res.Skipped == "" && res.Stats.Visited >= exploreCap
}

// compareRow re-runs the cell through the naive DFS for the E11 table.
func compareRow(fam timestamp.Info, res engine.ConformanceResult) report.ExplorationRow {
	row := report.ExplorationRow{Alg: res.Alg, N: res.N, Calls: res.Calls, Naive: -1, Stats: res.Stats}
	var wl engine.Workload = engine.OneShot{}
	if res.Calls > 1 {
		wl = engine.LongLived{CallsPerProc: res.Calls}
	}
	naive, err := engine.Explore(engine.Config[timestamp.Timestamp]{
		Alg: fam.New(res.N), World: engine.Simulated, N: res.N, Workload: wl,
	}, exploreCap, 100_000)
	if err == nil && naive < exploreCap {
		// A capped naive count would fabricate the reduction percentage;
		// leave the baseline cell as "-" instead.
		row.Naive = naive
	}
	return row
}

// mutantCaught runs the stale-scan mutant through exhaustive exploration
// and reports whether the checker produced a shrunk counterexample — the
// validation that the conformance machinery actually rejects broken
// objects.
func mutantCaught(cfg modelCheckConfig) bool {
	const n = 2
	newMutant := func() engine.Algorithm[timestamp.Timestamp] { return timestamp.MustNew("collect-stale-scan", n) }
	_, err := engine.Exhaustive(engine.Config[timestamp.Timestamp]{
		Alg: newMutant(), World: engine.Simulated, N: n,
		Workload: engine.LongLived{CallsPerProc: 2},
	}, engine.ExhaustiveOptions[timestamp.Timestamp]{
		POR: cfg.por, Shrink: cfg.shrink, NewAlg: newMutant,
	})
	cex, ok := err.(*engine.Counterexample)
	if !ok {
		fmt.Printf("FAIL  %-18s mutant NOT caught (err = %v)\n", "collect-stale-scan", err)
		return false
	}
	fmt.Printf("ok    %-18s mutant caught: %d-step witness %v\n      %v\n",
		"collect-stale-scan", cex.Steps, cex.Schedule, cex.Err)
	writeCex(cfg.cexDir, "collect-stale-scan", n, 2, cex)
	return true
}

// writeCex persists a counterexample as a replayable artifact.
func writeCex(dir, alg string, n, calls int, err error) {
	cex, ok := err.(*engine.Counterexample)
	if dir == "" || !ok {
		return
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		fmt.Fprintf(os.Stderr, "tscheck: %v\n", mkErr)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-n%d.schedule", alg, n))
	body := fmt.Sprintf("# tscheck counterexample: %s n=%d calls=%d (%d steps)\n# %v\n# replay: go run ./cmd/tstrace -alg %s -n %d -calls %d -schedule %s\n%s\n",
		alg, n, calls, cex.Steps, cex.Err, alg, n, calls,
		sched.FormatSchedule(cex.Schedule), sched.FormatSchedule(cex.Schedule))
	if wErr := os.WriteFile(path, []byte(body), 0o644); wErr != nil {
		fmt.Fprintf(os.Stderr, "tscheck: %v\n", wErr)
		return
	}
	fmt.Printf("      counterexample written to %s\n", path)
}

// classic is the original tscheck suite, rostered from the registry.
func classic(n, visits, samples, reps int, seed int64, sharded bool) {
	failed := false
	for _, fam := range timestamp.All() {
		if n < fam.MinProcs {
			fmt.Printf("skip  %-18s needs ≥ %d processes, -n is %d\n", fam.Name, fam.MinProcs, n)
			continue
		}
		alg := fam.New(n)
		simulable := engine.Simulable[timestamp.Timestamp](alg)
		calls := 2
		if alg.OneShot() {
			calls = 1
		}
		cfg := func(world engine.World, wl engine.Workload) engine.Config[timestamp.Timestamp] {
			return engine.Config[timestamp.Timestamp]{
				Alg: alg, World: world, N: n, Workload: wl, Seed: seed, Sharded: sharded,
			}
		}

		if simulable {
			small := cfg(engine.Simulated, engine.OneShot{})
			small.N = 2
			visited, err := engine.Explore(small, visits, 100_000)
			reportLine(&failed, alg.Name(), fmt.Sprintf("exhaustive 2×1 (%d interleavings)", visited), err)

			err = engine.Sample(cfg(engine.Simulated, engine.LongLived{CallsPerProc: calls}), samples)
			reportLine(&failed, alg.Name(), fmt.Sprintf("sampled %d×%d ×%d schedules", n, calls, samples), err)

			// The engine's scenario workloads, one sim run each: phased
			// batches and mixed churn (processes join and leave mid-run).
			for _, wl := range []engine.Workload{
				engine.Phased{GroupSize: 2, CallsPerProc: calls},
				engine.Churn{Width: (n + 1) / 2, CallsPerProc: calls},
			} {
				rep, err := engine.Run(cfg(engine.Simulated, wl))
				if err == nil {
					err = rep.Verify(alg.Compare)
				}
				reportLine(&failed, alg.Name(), fmt.Sprintf("%s %d×%d", wl.Kind(), n, calls), err)
			}
		} else {
			fmt.Printf("skip  %-18s not simulable: no scheduler legs, concurrent runs only\n", alg.Name())
		}

		var concErr error
		for r := 0; r < reps && concErr == nil; r++ {
			var rep *engine.Report[timestamp.Timestamp]
			rep, concErr = engine.Run(cfg(engine.Atomic, engine.LongLived{CallsPerProc: calls}))
			if concErr == nil {
				concErr = rep.Verify(alg.Compare)
			}
		}
		reportLine(&failed, alg.Name(), fmt.Sprintf("concurrent %d×%d ×%d runs", n, calls, reps), concErr)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func reportLine(failed *bool, alg, what string, err error) {
	status := "ok  "
	if err != nil {
		status = "FAIL"
		*failed = true
	}
	fmt.Printf("%s  %-18s %s", status, alg, what)
	if err != nil {
		fmt.Printf(": %v", err)
	}
	fmt.Println()
}
