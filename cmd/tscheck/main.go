// Command tscheck model-checks and stress-tests every timestamp
// implementation against the happens-before specification (§2): exhaustive
// interleavings for small systems, sampled random schedules through the
// deterministic scheduler, real-goroutine runs, and the engine's scenario
// workloads (phased batches, mixed churn), all validated by the
// happens-before checker.
//
// Usage:
//
//	tscheck [-n 4] [-visits 2000] [-samples 100] [-reps 20] [-sharded]
package main

import (
	"flag"
	"fmt"
	"os"

	"tsspace/internal/engine"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	n := flag.Int("n", 4, "processes for sampled and concurrent runs")
	visits := flag.Int("visits", 2000, "cap on exhaustive interleavings (2 processes)")
	samples := flag.Int("samples", 100, "random schedules per algorithm")
	reps := flag.Int("reps", 20, "real-concurrency repetitions per algorithm")
	seed := flag.Int64("seed", 42, "schedule sampling seed")
	sharded := flag.Bool("sharded", false, "use the cache-line-padded register array for concurrent runs")
	flag.Parse()

	algs := []timestamp.Algorithm{
		collect.New(*n), dense.New(*n), simple.New(*n), sqrt.New(*n),
	}
	failed := false
	for _, alg := range algs {
		calls := 2
		if alg.OneShot() {
			calls = 1
		}
		cfg := func(world engine.World, wl engine.Workload) engine.Config[timestamp.Timestamp] {
			return engine.Config[timestamp.Timestamp]{
				Alg: alg, World: world, N: *n, Workload: wl, Seed: *seed, Sharded: *sharded,
			}
		}

		small := cfg(engine.Simulated, engine.OneShot{})
		small.N = 2
		visited, err := engine.Explore(small, *visits, 100_000)
		report(&failed, alg.Name(), fmt.Sprintf("exhaustive 2×1 (%d interleavings)", visited), err)

		err = engine.Sample(cfg(engine.Simulated, engine.LongLived{CallsPerProc: calls}), *samples)
		report(&failed, alg.Name(), fmt.Sprintf("sampled %d×%d ×%d schedules", *n, calls, *samples), err)

		// The engine's scenario workloads, one sim run each: phased batches
		// and mixed churn (processes join and leave mid-run).
		for _, wl := range []engine.Workload{
			engine.Phased{GroupSize: 2, CallsPerProc: calls},
			engine.Churn{Width: (*n + 1) / 2, CallsPerProc: calls},
		} {
			rep, err := engine.Run(cfg(engine.Simulated, wl))
			if err == nil {
				err = rep.Verify(alg.Compare)
			}
			report(&failed, alg.Name(), fmt.Sprintf("%s %d×%d", wl.Kind(), *n, calls), err)
		}

		var concErr error
		for r := 0; r < *reps && concErr == nil; r++ {
			var rep *engine.Report[timestamp.Timestamp]
			rep, concErr = engine.Run(cfg(engine.Atomic, engine.LongLived{CallsPerProc: calls}))
			if concErr == nil {
				concErr = rep.Verify(alg.Compare)
			}
		}
		report(&failed, alg.Name(), fmt.Sprintf("concurrent %d×%d ×%d runs", *n, calls, *reps), concErr)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func report(failed *bool, alg, what string, err error) {
	status := "ok  "
	if err != nil {
		status = "FAIL"
		*failed = true
	}
	fmt.Printf("%s  %-8s %s", status, alg, what)
	if err != nil {
		fmt.Printf(": %v", err)
	}
	fmt.Println()
}
