// Command tstrace runs a timestamp implementation under a seeded random
// schedule in the deterministic scheduler and prints the execution as a
// per-process timeline plus the returned timestamps — the visual form of
// the executions the paper's proofs manipulate.
//
// Usage:
//
//	tstrace [-alg sqrt|simple|collect|dense] [-n 4] [-calls 1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"tsspace/internal/hbcheck"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	algName := flag.String("alg", "sqrt", "algorithm: sqrt | simple | collect | dense")
	n := flag.Int("n", 4, "processes")
	calls := flag.Int("calls", 1, "getTS calls per process (long-lived algorithms only)")
	seed := flag.Int64("seed", 1, "schedule seed")
	flag.Parse()

	var alg timestamp.Algorithm
	switch *algName {
	case "sqrt":
		alg = sqrt.New(*n)
	case "simple":
		alg = simple.New(*n)
	case "collect":
		alg = collect.New(*n)
	case "dense":
		alg = dense.New(*n)
	default:
		fmt.Fprintf(os.Stderr, "tstrace: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if alg.OneShot() {
		*calls = 1
	}

	var (
		finalSys *sched.System
		finalRec *hbcheck.Recorder[timestamp.Timestamp]
	)
	factory := func() *sched.System {
		sys, rec := timestamp.NewSimSystem(alg, *n, *calls)
		finalSys, finalRec = sys, rec
		return sys
	}
	err := sched.Sample(factory, 1, *seed, func(sys *sched.System, schedule []int) error {
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, n=%d, %d call(s) per process, seed %d — %d steps\n\n",
		alg.Name(), *n, *calls, *seed, finalSys.Steps())
	fmt.Println(sched.RenderTrace(finalSys.Trace(), *n))

	fmt.Println("timestamps returned:")
	for _, ev := range finalRec.Events() {
		fmt.Printf("  p%d.getTS#%d → %v\n", ev.Pid, ev.Seq, ev.Val)
	}
	if err := hbcheck.CheckRecorder(finalRec, alg.Compare); err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nhappens-before property verified ✓")
}
