// Command tstrace runs a timestamp implementation under the deterministic
// scheduler and prints the execution as a per-process timeline plus the
// returned timestamps — the visual form of the executions the paper's
// proofs manipulate. The schedule comes from one of the engine's
// workloads: a seeded random maximal interleaving (default), phased
// batches, mixed churn, or an explicit adversarial schedule.
//
// Usage:
//
//	tstrace [-alg sqrt|simple|collect|dense|collect-stale-scan] [-n 4] [-calls 1] [-seed 1]
//	        [-workload random|phased|churn] [-group 2] [-width 2]
//	        [-schedule 0,1,0,2,...]
package main

import (
	"flag"
	"fmt"
	"os"

	"tsspace/internal/engine"
	"tsspace/internal/report"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/mutant"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	algName := flag.String("alg", "sqrt", "algorithm: sqrt | simple | collect | dense")
	n := flag.Int("n", 4, "processes")
	calls := flag.Int("calls", 1, "getTS calls per process (long-lived algorithms only)")
	seed := flag.Int64("seed", 1, "schedule seed")
	workload := flag.String("workload", "random", "schedule shape: random | phased | churn")
	group := flag.Int("group", 2, "batch size for -workload phased")
	width := flag.Int("width", 2, "live-process window for -workload churn")
	schedule := flag.String("schedule", "", "explicit comma-separated schedule (overrides -workload)")
	flag.Parse()

	var alg timestamp.Algorithm
	switch *algName {
	case "sqrt":
		alg = sqrt.New(*n)
	case "simple":
		alg = simple.New(*n)
	case "collect":
		alg = collect.New(*n)
	case "dense":
		alg = dense.New(*n)
	case "collect-stale-scan":
		// The deliberately broken mutant, so counterexample artifacts from
		// tscheck -cexdir replay verbatim (the run exits 1 with the
		// violation).
		alg = mutant.NewStaleScan(*n)
	default:
		fmt.Fprintf(os.Stderr, "tstrace: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if alg.OneShot() {
		*calls = 1
	}

	var wl engine.Workload
	switch {
	case *schedule != "":
		steps, err := sched.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
			os.Exit(2)
		}
		wl = engine.Adversarial{Schedule: steps, CallsPerProc: *calls}
	case *workload == "random":
		wl = engine.LongLived{CallsPerProc: *calls}
	case *workload == "phased":
		wl = engine.Phased{GroupSize: *group, CallsPerProc: *calls}
	case *workload == "churn":
		wl = engine.Churn{Width: *width, CallsPerProc: *calls}
	default:
		fmt.Fprintf(os.Stderr, "tstrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        *n,
		Workload: wl,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, n=%d, %d call(s) per process, %s, seed %d — %d steps\n\n",
		rep.Alg, rep.N, *calls, rep.Workload, *seed, rep.Steps)
	fmt.Println(sched.RenderTrace(rep.Trace, *n))

	fmt.Println("timestamps returned:")
	for _, ev := range rep.Events {
		fmt.Printf("  p%d.getTS#%d → %v\n", ev.Pid, ev.Seq, ev.Val)
	}
	if err := rep.Verify(alg.Compare); err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nhappens-before property verified ✓")
	fmt.Println(report.Summary(rep))
}
