// Command tstrace runs a timestamp implementation under the deterministic
// scheduler and prints the execution as a per-process timeline plus the
// returned timestamps — the visual form of the executions the paper's
// proofs manipulate. The schedule comes from one of the engine's
// workloads: a seeded random maximal interleaving (default), phased
// batches, mixed churn, or an explicit adversarial schedule.
//
// The -alg flag accepts any name in the algorithm registry, mutants
// included, so counterexample artifacts from tscheck -cexdir replay
// verbatim (such runs exit 1 with the violation). -algs lists the catalog.
//
// Usage:
//
//	tstrace [-alg sqrt] [-n 4] [-calls 1] [-seed 1]
//	        [-workload random|phased|churn] [-group 2] [-width 2]
//	        [-schedule 0,1,0,2,...]
//	tstrace -algs
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"tsspace/internal/engine"
	"tsspace/internal/report"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all" // self-registering algorithm catalog
)

func main() {
	algName := flag.String("alg", "sqrt", "algorithm: one of "+strings.Join(timestamp.Names(), " | ")+" (or a registered mutant)")
	n := flag.Int("n", 4, "processes")
	calls := flag.Int("calls", 1, "getTS calls per process (long-lived algorithms only)")
	seed := flag.Int64("seed", 1, "schedule seed")
	workload := flag.String("workload", "random", "schedule shape: random | phased | churn")
	group := flag.Int("group", 2, "batch size for -workload phased")
	width := flag.Int("width", 2, "live-process window for -workload churn")
	schedule := flag.String("schedule", "", "explicit comma-separated schedule (overrides -workload)")
	algs := flag.Bool("algs", false, "list the registered algorithms (mutants marked) and exit")
	flag.Parse()

	if *algs {
		for _, name := range timestamp.AllNames() {
			info, _ := timestamp.Lookup(name)
			mark := " "
			if info.Mutant {
				mark = "!"
			}
			fmt.Printf("%s %-22s %s\n", mark, info.Name, info.Summary)
		}
		return
	}

	info, ok := timestamp.Lookup(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tstrace: unknown algorithm %q (have %v)\n", *algName, timestamp.AllNames())
		os.Exit(2)
	}
	if *n < info.MinProcs {
		fmt.Fprintf(os.Stderr, "tstrace: %s needs at least %d processes, -n is %d\n", info.Name, info.MinProcs, *n)
		os.Exit(2)
	}
	alg := info.New(*n)
	if !engine.Simulable[timestamp.Timestamp](alg) {
		fmt.Fprintf(os.Stderr, "tstrace: %s cannot run under the deterministic scheduler\n", info.Name)
		os.Exit(2)
	}
	if alg.OneShot() {
		*calls = 1
	}

	var wl engine.Workload
	switch {
	case *schedule != "":
		steps, err := sched.ParseCrashSchedule(*schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
			os.Exit(2)
		}
		if hasCrashEntry(steps) {
			os.Exit(crashReplay(alg, *n, *calls, *seed, steps))
		}
		wl = engine.Adversarial{Schedule: steps, CallsPerProc: *calls}
	case *workload == "random":
		wl = engine.LongLived{CallsPerProc: *calls}
	case *workload == "phased":
		wl = engine.Phased{GroupSize: *group, CallsPerProc: *calls}
	case *workload == "churn":
		wl = engine.Churn{Width: *width, CallsPerProc: *calls}
	default:
		fmt.Fprintf(os.Stderr, "tstrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        *n,
		Workload: wl,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s, n=%d, %d call(s) per process, %s, seed %d — %d steps\n\n",
		rep.Alg, rep.N, *calls, rep.Workload, *seed, rep.Steps)
	fmt.Println(sched.RenderTrace(rep.Trace, *n))

	fmt.Println("timestamps returned:")
	for _, ev := range rep.Events {
		fmt.Printf("  p%d.getTS#%d → %v\n", ev.Pid, ev.Seq, ev.Val)
	}
	if err := rep.Verify(alg.Compare); err != nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nhappens-before property verified ✓")
	fmt.Println(report.Summary(rep))
}

// hasCrashEntry reports whether a parsed schedule contains crash points
// (the x<pid>/X<pid> tokens of tscheck's crash-mode witnesses).
func hasCrashEntry(entries []int) bool {
	for _, e := range entries {
		if _, _, isCrash := sched.DecodeCrash(e); isCrash {
			return true
		}
	}
	return false
}

// crashReplay replays a crash-schedule witness through the engine's
// fault-injection harness and renders the 2n-incarnation trace (scheduler
// pid n+p is the recovery incarnation of paper process p). It returns the
// process exit code: 1 when the witness reproduces a violation.
func crashReplay(alg engine.Algorithm[timestamp.Timestamp], n, calls int, seed int64, entries []int) int {
	var wl engine.Workload = engine.LongLived{CallsPerProc: calls}
	if alg.OneShot() {
		wl = engine.OneShot{}
	}
	rep, err := engine.ReplayCrashSchedule(engine.Config[timestamp.Timestamp]{
		Alg: alg, World: engine.Simulated, N: n, Workload: wl, Seed: seed,
	}, entries)
	if rep == nil {
		fmt.Fprintf(os.Stderr, "tstrace: %v\n", err)
		return 2
	}

	fmt.Printf("%s, n=%d (+%d recovery incarnations), %d call(s) per process, %s — %d steps\n\n",
		rep.Alg, n, n, calls, rep.Workload, rep.Steps)
	fmt.Println(sched.RenderTrace(rep.Trace, 2*n))

	fmt.Println("timestamps returned (pids ≥ n are recovery incarnations):")
	for _, ev := range rep.Events {
		fmt.Printf("  p%d.getTS#%d → %v\n", ev.Pid, ev.Seq, ev.Val)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "\ntstrace: %v\n", err)
		return 1
	}
	fmt.Println("\nhappens-before property verified ✓")
	return 0
}
