package main

import (
	"testing"

	"tsspace/cmd/tslint/internal/checks"
	"tsspace/cmd/tslint/internal/lint"
)

// TestRepoClean runs the full analyzer suite against the repository
// itself: the tree must come up finding-free, so `go test ./...` catches
// a lint regression even where CI's explicit tslint step is not wired.
func TestRepoClean(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, checks.All(), checks.Names())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
