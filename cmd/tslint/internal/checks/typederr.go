package checks

import (
	"go/ast"
	"go/constant"
	"strings"

	"tsspace/cmd/tslint/internal/lint"
)

// TypedErr keeps the public error surface of the SDK packages (tsspace,
// tsserve, tsload) programmable: exported functions must not mint
// anonymous error values. A fmt.Errorf without %w produces an error no
// caller can errors.Is/As against, and an errors.New inside a function
// body creates a new identity per call instead of a package-level
// sentinel. Root errors that genuinely have no sentinel to wrap opt out
// with //tslint:allow typederr <reason>.
var TypedErr = &lint.Analyzer{
	Name: "typederr",
	Doc:  "exported SDK functions must return wrapped (%w) or sentinel errors, not anonymous ones",
	Run:  runTypedErr,
}

// typedErrPackages are the public packages under the contract, matched by
// package name + final import path element (so fixtures and forks match,
// but cmd/tsload's main package does not).
var typedErrPackages = map[string]bool{
	"tsspace": true,
	"tsserve": true,
	"tsload":  true,
}

func runTypedErr(pass *lint.Pass) error {
	name := pass.Pkg.Name()
	if !typedErrPackages[name] {
		return nil
	}
	if path := pass.Path; path != name && !strings.HasSuffix(path, "/"+name) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !exportedFuncDecl(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				switch {
				case isPkgFunc(callee, "errors", "New"):
					pass.Reportf(call.Pos(), "errors.New in exported %s mints a fresh error identity per call: declare a package-level sentinel", fn.Name.Name)
				case isPkgFunc(callee, "fmt", "Errorf"):
					if len(call.Args) == 0 {
						return true
					}
					tv, ok := pass.TypesInfo.Types[call.Args[0]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						return true // non-constant format: cannot judge statically
					}
					if !strings.Contains(constant.StringVal(tv.Value), "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w in exported %s: callers cannot errors.Is/As the result — wrap a sentinel", fn.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}
