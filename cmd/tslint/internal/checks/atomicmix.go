package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tsspace/cmd/tslint/internal/lint"
)

// AtomicMix flags fields with a split personality: a field that is
// accessed through sync/atomic — either a typed atomic (atomic.Uint64 and
// friends) or a plain word whose address is passed to the atomic
// functions — must never also be read or written plainly. Mixed access is
// a data race the race detector only catches when both sides actually
// collide in a run; statically the field either belongs to the atomic
// API or it does not. Constructors (New*/init) are exempt: before the
// value escapes, plain initialization is unobservable.
var AtomicMix = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed through sync/atomic must not also be accessed plainly outside constructors",
	Run:  runAtomicMix,
}

var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicMix(pass *lint.Pass) error {
	info := pass.TypesInfo

	// Fields of a typed atomic (the type itself is the atomic API).
	typedFields := make(map[*types.Var]bool)
	// Plain fields used via &f with the sync/atomic functions somewhere
	// in this package.
	rawFields := make(map[*types.Var]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, name := range field.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if tn, ok := namedIn(v.Type(), "sync/atomic"); ok && atomicTypeNames[tn] {
							typedFields[v] = true
						}
					}
				}
			case *ast.CallExpr:
				callee := calleeFunc(info, n)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range n.Args {
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
							if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
								if v, ok := s.Obj().(*types.Var); ok {
									rawFields[v] = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	if len(typedFields) == 0 && len(rawFields) == 0 {
		return nil
	}

	qual := types.RelativeTo(pass.Pkg)
	fieldName := func(sel *ast.SelectorExpr) string {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			return types.TypeString(tv.Type, qual) + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if fn.Recv == nil && (strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init") {
				continue // constructors may initialize plainly before the value escapes
			}
			checkAtomicMixFunc(pass, fn, typedFields, rawFields, fieldName)
		}
	}
	return nil
}

// checkAtomicMixFunc walks one function body with a parent stack, flagging
// disallowed plain uses of atomic fields.
func checkAtomicMixFunc(pass *lint.Pass, fn *ast.FuncDecl, typedFields, rawFields map[*types.Var]bool, fieldName func(*ast.SelectorExpr) string) {
	info := pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch {
		case typedFields[v]:
			// Fine: receiver of a method selection (s.calls.Add(1)) or
			// explicit address-of for delegation (&s.calls).
			if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
				return true
			}
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
				return true
			}
			pass.Reportf(sel.Pos(), "atomic field %s used without its atomic API: copying or reassigning a typed atomic races with concurrent Load/Store", fieldName(sel))
		case rawFields[v]:
			// Fine only as &f directly inside a sync/atomic call.
			if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && len(stack) >= 3 {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok {
					if callee := calleeFunc(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "sync/atomic" {
						return true
					}
				}
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package: plain access outside constructors is a data race", fieldName(sel))
		}
		return true
	})
}
