package checks_test

import (
	"testing"

	"tsspace/cmd/tslint/internal/checks"
	"tsspace/cmd/tslint/internal/lint"
)

// testFixture runs one analyzer over its testdata/src/<name> fixture
// packages and matches findings against the // want comments.
func testFixture(t *testing.T, a *lint.Analyzer) {
	t.Helper()
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.FixtureDirs(root, a.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under cmd/tslint/testdata/src/%s", a.Name)
	}
	lint.Fixture(t, a, checks.Names(), dirs...)
}

func TestRegisterAccessFixtures(t *testing.T) { testFixture(t, checks.RegisterAccess) }
func TestHotpathFixtures(t *testing.T)        { testFixture(t, checks.Hotpath) }
func TestTypedErrFixtures(t *testing.T)       { testFixture(t, checks.TypedErr) }
func TestRegistryInitFixtures(t *testing.T)   { testFixture(t, checks.RegistryInit) }
func TestAtomicMixFixtures(t *testing.T)      { testFixture(t, checks.AtomicMix) }
func TestCopyLocksFixtures(t *testing.T)      { testFixture(t, checks.CopyLocks) }
func TestNilnessFixtures(t *testing.T)        { testFixture(t, checks.Nilness) }
func TestUnusedWriteFixtures(t *testing.T)    { testFixture(t, checks.UnusedWrite) }
