package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"tsspace/cmd/tslint/internal/lint"
)

// Nilness is the curated lite port of the stock nilness pass, without the
// SSA machinery: inside the then-branch of `if x == nil`, x is known nil,
// so dereferencing it (field selection or indexing through a nil pointer,
// calling a method on a nil interface) is a guaranteed panic. The branch
// is skipped entirely if it reassigns x, and closures are not entered —
// the check only fires where the panic is certain.
var Nilness = &lint.Analyzer{
	Name: "nilness",
	Doc:  "a value compared equal to nil must not be dereferenced in the guarded branch",
	Run:  runNilness,
}

func runNilness(pass *lint.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
			if !ok || cond.Op != token.EQL {
				return true
			}
			var x *ast.Ident
			if id, ok := ast.Unparen(cond.X).(*ast.Ident); ok && isNilExpr(info, cond.Y) {
				x = id
			} else if id, ok := ast.Unparen(cond.Y).(*ast.Ident); ok && isNilExpr(info, cond.X) {
				x = id
			}
			if x == nil {
				return true
			}
			obj := info.Uses[x]
			if obj == nil {
				return true
			}
			t := obj.Type()
			isPtr := false
			switch t.Underlying().(type) {
			case *types.Pointer:
				isPtr = true
			case *types.Interface:
			default:
				return true // maps/slices/chans: nil reads are defined
			}
			if branchReassigns(info, ifs.Body, obj) {
				return true
			}
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.StarExpr:
					if isPtr && usesObj(info, m.X, obj) {
						pass.Reportf(m.Pos(), "dereference of %s, which is nil on this branch", x.Name)
					}
				case *ast.IndexExpr:
					if isPtr && usesObj(info, m.X, obj) {
						pass.Reportf(m.Pos(), "index through %s, which is nil on this branch", x.Name)
					}
				case *ast.SelectorExpr:
					if !usesObj(info, m.X, obj) {
						return true
					}
					if isPtr {
						// Selecting a field through a nil pointer panics;
						// method values/calls may too, but a method with a
						// pointer receiver can legally handle nil — only
						// flag field selections.
						if s, ok := info.Selections[m]; ok && s.Kind() == types.FieldVal {
							pass.Reportf(m.Pos(), "field access through %s, which is nil on this branch", x.Name)
						}
					} else {
						// Any method call on a nil interface panics.
						if s, ok := info.Selections[m]; ok && s.Kind() == types.MethodVal {
							pass.Reportf(m.Pos(), "method call on %s, which is a nil interface on this branch", x.Name)
						}
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// branchReassigns reports whether body assigns to obj anywhere (in which
// case the nil fact no longer holds for the whole branch and the lite
// analysis backs off).
func branchReassigns(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if usesObj(info, lhs, obj) {
					found = true
				}
			}
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND && usesObj(info, u.X, obj) {
			found = true // address taken: anything may write it
		}
		return !found
	})
	return found
}
