package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"tsspace/cmd/tslint/internal/lint"
)

// Hotpath protects the committed 0 allocs/op trajectory (PR 5/6): every
// function reachable inside its package from a //tslint:hotpath-annotated
// root — Session.GetTS/GetTSBatch, the scalar register arrays, the binary
// codec steady state — must not call into fmt, allocate (make, new,
// closures, heap-escaping or slice/map composite literals), box concrete
// values into interfaces, or acquire sync mutexes. Cold branches that are
// provably off the steady state (panic-on-misuse formatting, error-frame
// decoding) opt out per line with //tslint:allow hotpath <reason>.
//
// Reachability is intra-package: calls that leave the package are checked
// against the deny list (fmt, mutexes) but not followed, so cross-package
// hot callees carry their own //tslint:hotpath annotation.
var Hotpath = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "functions reachable from //tslint:hotpath roots must not allocate, box, call fmt, or lock",
	Run:  runHotpath,
}

var mutexLockNames = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
}

func runHotpath(pass *lint.Pass) error {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fn
			if lint.HotpathRoot(fn) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Intra-package BFS from the annotated roots; the first root to reach
	// a function names it in diagnostics.
	reachedVia := make(map[*types.Func]string)
	var queue []*types.Func
	for _, fn := range roots {
		obj := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if _, dup := reachedVia[obj]; !dup {
			reachedVia[obj] = declName(fn)
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		body := decls[obj].Body
		ast.Inspect(body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures are flagged as allocations, not traversed
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if _, local := decls[callee]; local {
				if _, seen := reachedVia[callee]; !seen {
					reachedVia[callee] = reachedVia[obj]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for obj, root := range reachedVia {
		checkHotFunc(pass, decls[obj], root)
	}
	return nil
}

// declName renders a FuncDecl as Name or RecvType.Name for diagnostics.
func declName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fn.Name.Name
		default:
			return fn.Name.Name
		}
	}
}

func checkHotFunc(pass *lint.Pass, fn *ast.FuncDecl, root string) {
	info := pass.TypesInfo
	sig := info.Defs[fn.Name].(*types.Func).Signature()
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "hot path (via %s): "+format, append([]any{root}, args...)...)
	}
	qual := types.RelativeTo(pass.Pkg)
	boxCheck := func(dst types.Type, src ast.Expr) {
		if dst == nil || !types.IsInterface(dst) {
			return
		}
		tv, ok := info.Types[src]
		if !ok || tv.IsNil() || tv.Type == nil || types.IsInterface(tv.Type) {
			return
		}
		report(src.Pos(), "boxes %s into %s (allocates)", types.TypeString(tv.Type, qual), types.TypeString(dst, qual))
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "allocates a closure")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(lit.Pos(), "heap-escaping composite literal")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "allocates a slice literal")
				case *types.Map:
					report(n.Pos(), "allocates a map literal")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if tv, ok := info.Types[lhs]; ok {
						boxCheck(tv.Type, n.Rhs[i])
					}
				}
			}
		case *ast.ReturnStmt:
			results := sig.Results()
			if len(n.Results) == results.Len() {
				for i, res := range n.Results {
					boxCheck(results.At(i).Type(), res)
				}
			}
		case *ast.CallExpr:
			// Conversions: T(x) with T an interface type boxes x.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if len(n.Args) == 1 {
					boxCheck(tv.Type, n.Args[0])
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(n.Pos(), "allocates with make")
					case "new":
						report(n.Pos(), "allocates with new")
					}
					return true
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				// A call of a function-typed value: still check boxing
				// against its signature if known.
				if tv, ok := info.Types[n.Fun]; ok {
					if s, ok := tv.Type.Underlying().(*types.Signature); ok {
						checkCallBoxing(n, s, boxCheck)
					}
				}
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				report(n.Pos(), "calls fmt.%s (formats and allocates)", callee.Name())
			}
			if csig := callee.Signature(); csig != nil {
				if recv := csig.Recv(); recv != nil && mutexLockNames[callee.Name()] {
					if name, ok := namedIn(recv.Type(), "sync"); ok && (name == "Mutex" || name == "RWMutex") {
						report(n.Pos(), "acquires sync.%s.%s", name, callee.Name())
					}
				}
				checkCallBoxing(n, csig, boxCheck)
			}
		}
		return true
	})
}

// checkCallBoxing applies boxCheck to every argument position of a call,
// honoring variadics (an explicit ... spread passes the slice through
// unboxed).
func checkCallBoxing(call *ast.CallExpr, sig *types.Signature, boxCheck func(types.Type, ast.Expr)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			dst = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				dst = slice.Elem()
			}
		}
		if dst != nil {
			boxCheck(dst, arg)
		}
	}
}
