// Package checks implements the tslint analyzer suite: five
// project-specific analyzers enforcing the repo's concurrency, hot-path
// and registry invariants, plus three curated lite ports of the stock
// x/tools passes (copylocks, nilness, unusedwrite) scoped to the
// patterns this codebase actually exhibits.
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"tsspace/cmd/tslint/internal/lint"
)

// All returns the full tslint suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		RegisterAccess,
		Hotpath,
		TypedErr,
		RegistryInit,
		AtomicMix,
		CopyLocks,
		Nilness,
		UnusedWrite,
	}
}

// Names returns the names of the full suite: the valid //tslint:allow
// targets.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(list string) ([]*lint.Analyzer, bool) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}

// inTimestampTree reports whether path is a package strictly below
// internal/timestamp — an algorithm implementation package. The registry
// root itself (internal/timestamp) is harness, not algorithm, and is
// exempt. Matching on the path infix (not a module-qualified prefix)
// lets the analysistest fixtures under testdata/src mirror the layout.
func inTimestampTree(path string) bool {
	return strings.Contains(path, "internal/timestamp/")
}

// hasPathSegment reports whether one element of the import path equals
// seg exactly.
func hasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the function or method it
// statically invokes, or nil (builtins, conversions, calls of function
// values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function from the package
// whose import path is pkgPath or ends in "/"+pkgPath.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	p := fn.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// namedIn reports whether t is (after pointer indirection) a named type
// declared in the package whose import path is pkgPath or ends in
// "/"+pkgPath, returning its name.
func namedIn(t types.Type, pkgPath string) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if p := named.Obj().Pkg().Path(); p != pkgPath && !strings.HasSuffix(p, "/"+pkgPath) {
		return "", false
	}
	return named.Obj().Name(), true
}

// exportedFuncDecl reports whether fn is part of the package's exported
// API: an exported top-level function, or an exported method on an
// exported receiver type.
func exportedFuncDecl(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// firstFile returns the package file with the lexically smallest name:
// the deterministic anchor for package-level diagnostics.
func firstFile(pass *lint.Pass) *ast.File {
	best := pass.Files[0]
	bestName := pass.Fset.Position(best.Package).Filename
	for _, f := range pass.Files[1:] {
		if name := pass.Fset.Position(f.Package).Filename; name < bestName {
			best, bestName = f, name
		}
	}
	return best
}
