package checks

import (
	"go/ast"
	"go/token"
	"strconv"

	"tsspace/cmd/tslint/internal/lint"
)

// RegisterAccess enforces the paper's instrumentation boundary: algorithm
// packages under internal/timestamp/... may not reach shared state behind
// the scheduler's back. The per-register operation accounting (and the
// model checker's interception of every step) is exact only if every
// shared access goes through internal/register, so these packages may not
// import sync, sync/atomic or time, and may not use channels or start
// goroutines. Deliberate exceptions (the fas swap-object contrast, mutant
// instance-local caches) opt out per line with
// //tslint:allow registeraccess <reason>.
var RegisterAccess = &lint.Analyzer{
	Name: "registeraccess",
	Doc:  "timestamp algorithm packages must touch shared state only through internal/register",
	Run:  runRegisterAccess,
}

var registerAccessBannedImports = map[string]string{
	"sync":        "locks and waitgroups bypass the scheduler's step interception",
	"sync/atomic": "raw atomics bypass the per-register operation accounting",
	"time":        "real time is invisible to the deterministic scheduler",
}

func runRegisterAccess(pass *lint.Pass) error {
	if !inTimestampTree(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := registerAccessBannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "timestamp package imports %q: %s; shared state must go through internal/register", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "timestamp package starts a goroutine: processes are scheduled by the harness, not spawned by algorithms")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "timestamp package sends on a channel: inter-process communication must go through internal/register")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "timestamp package receives from a channel: inter-process communication must go through internal/register")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "timestamp package uses select: inter-process communication must go through internal/register")
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "timestamp package declares a channel type: inter-process communication must go through internal/register")
			}
			return true
		})
	}
	return nil
}
