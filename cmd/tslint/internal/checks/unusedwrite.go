package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"tsspace/cmd/tslint/internal/lint"
)

// UnusedWrite is the curated lite port of the stock unusedwrite pass: a
// write to a field of a by-value receiver or by-value struct parameter
// mutates a function-local copy, so if the copy is never read afterwards
// the write is lost — almost always a missing pointer receiver. The lite
// port stays sound without SSA by backing off inside loops and whenever
// the variable is captured by a closure or has its address taken.
var UnusedWrite = &lint.Analyzer{
	Name: "unusedwrite",
	Doc:  "a field write through a by-value receiver or parameter that is never read again is lost",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *lint.Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// By-value struct receiver and parameters.
			copies := make(map[types.Object]string)
			addGroup := func(fl *ast.FieldList, what string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					for _, name := range field.Names {
						obj := info.Defs[name]
						if obj == nil {
							continue
						}
						if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
							copies[obj] = what
						}
					}
				}
			}
			addGroup(fn.Recv, "receiver")
			addGroup(fn.Type.Params, "parameter")
			if len(copies) == 0 {
				continue
			}
			checkUnusedWrites(pass, fn, copies)
		}
	}
	return nil
}

func checkUnusedWrites(pass *lint.Pass, fn *ast.FuncDecl, copies map[types.Object]string) {
	info := pass.TypesInfo

	// Back off for any variable that is captured, aliased, or written
	// inside a loop — position-based "read after write" is unsound there.
	disqualified := make(map[types.Object]bool)
	var loopDepth, closureDepth int
	type write struct {
		obj  types.Object
		what string
		pos  token.Pos
		end  token.Pos
		name string
	}
	var writes []write

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			for _, child := range childNodes(n) {
				ast.Inspect(child, walk)
			}
			loopDepth--
			return false
		case *ast.FuncLit:
			closureDepth++
			ast.Inspect(n.Body, walk)
			closureDepth--
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := baseObj(info, n.X); obj != nil {
					disqualified[obj] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				what, tracked := copies[obj]
				if !tracked {
					continue
				}
				if loopDepth > 0 || closureDepth > 0 {
					disqualified[obj] = true
					continue
				}
				if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
					continue
				}
				writes = append(writes, write{obj: obj, what: what, pos: sel.Pos(), end: n.End(), name: id.Name + "." + sel.Sel.Name})
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	for obj := range copies {
		if closureUses(info, fn.Body, obj) {
			disqualified[obj] = true
		}
	}

	for _, w := range writes {
		if disqualified[w.obj] {
			continue
		}
		if readAfter(info, fn.Body, w.obj, w.end) {
			continue
		}
		pass.Reportf(w.pos, "write to %s is lost: %s %s is a by-value copy never read afterwards (use a pointer %s)", w.name, w.what, w.obj.Name(), w.what)
	}
}

// childNodes returns the direct child nodes of a loop statement so its
// body is walked with the loop depth raised.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		out = append(out, n.Body)
	case *ast.RangeStmt:
		if n.X != nil {
			out = append(out, n.X)
		}
		out = append(out, n.Body)
	}
	return out
}

// baseObj resolves the root identifier of a selector chain (x, x.f, x.f.g).
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// closureUses reports whether any closure in body references obj.
func closureUses(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return !found
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// readAfter reports whether obj is referenced anywhere after end.
func readAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, end token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && id.Pos() > end {
			found = true
		}
		return !found
	})
	return found
}
