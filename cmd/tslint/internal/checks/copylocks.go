package checks

import (
	"go/ast"
	"go/types"

	"tsspace/cmd/tslint/internal/lint"
)

// CopyLocks is the curated lite port of the stock copylocks pass: values
// whose type (transitively) contains a sync lock or a typed atomic must
// not be copied — a copied mutex is a second, independent lock guarding
// the same data, and a copied atomic tears the protocol. The lite port
// covers the shapes that matter here: by-value receivers/params/results,
// assignments that copy an existing lock-bearing value, and range loops
// whose value variable copies lock-bearing elements.
var CopyLocks = &lint.Analyzer{
	Name: "copylocks",
	Doc:  "values containing sync locks or typed atomics must not be copied",
	Run:  runCopyLocks,
}

var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether a value of type t embeds a lock (or typed
// atomic) by value.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if name, ok := namedIn(t, "sync"); ok && lockTypeNames[name] {
		// namedIn strips one pointer level; only the value form locks.
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
	}
	if name, ok := namedIn(t, "sync/atomic"); ok && atomicTypeNames[name] {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

func runCopyLocks(pass *lint.Pass) error {
	info := pass.TypesInfo
	exprType := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	// copiesLock reports whether evaluating e as an rvalue copies a
	// lock-bearing value: reads of existing storage do, while fresh
	// values (composite literals, function results) are first homes.
	copiesLock := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
			return false
		}
		t := exprType(e)
		return t != nil && containsLock(t)
	}

	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if t := exprType(field.Type); t != nil && containsLock(t) {
				pass.Reportf(field.Type.Pos(), "%s passes a lock by value: %s contains a sync lock or typed atomic", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if copiesLock(rhs) {
						pass.Reportf(rhs.Pos(), "assignment copies a lock-bearing value")
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				t := exprType(n.Value)
				if id, ok := n.Value.(*ast.Ident); ok {
					if id.Name == "_" {
						return true
					}
					// A `:=`-defined value variable has no Types
					// entry; resolve it through its object instead.
					if t == nil {
						if obj := info.ObjectOf(id); obj != nil {
							t = obj.Type()
						}
					}
				}
				if t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range value copies a lock-bearing element: iterate by index instead")
				}
			case *ast.CallExpr:
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversions do not copy through this check
				}
				for _, arg := range n.Args {
					if copiesLock(arg) {
						pass.Reportf(arg.Pos(), "call copies a lock-bearing value into an argument")
					}
				}
			}
			return true
		})
	}
	return nil
}
