package checks

import (
	"go/ast"
	"go/constant"
	"go/types"

	"tsspace/cmd/tslint/internal/lint"
)

// RegistryInit enforces the catalog contract of internal/timestamp: every
// package that defines a timestamp algorithm self-registers from init()
// (so blank-importing the catalog really yields the full roster), and the
// registered Info literal is coherent — a non-empty Name and Summary,
// Mutant set exactly on packages in the mutant tree, and OneShot agreeing
// with what the package's OneShot() methods constantly return. An
// incoherent OneShot would make consumers plan call budgets that the
// constructed object rejects; a missing Mutant would let a deliberately
// broken implementation into the default conformance roster.
var RegistryInit = &lint.Analyzer{
	Name: "registryinit",
	Doc:  "timestamp algorithm packages must Register from init() with coherent Info metadata",
	Run:  runRegistryInit,
}

func runRegistryInit(pass *lint.Pass) error {
	if !inTimestampTree(pass.Path) {
		return nil
	}
	isMutantPkg := hasPathSegment(pass.Path, "mutant")

	// Algorithm implementations declared here: named non-interface types
	// whose method set carries the timestamp.Algorithm trio.
	algTypes := 0
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		if ms.Lookup(pass.Pkg, "GetTS") != nil &&
			ms.Lookup(pass.Pkg, "Registers") != nil &&
			ms.Lookup(pass.Pkg, "OneShot") != nil {
			algTypes++
		}
	}

	// The constant every OneShot() method in the package returns, when
	// they all agree (mixed packages cannot be checked against a single
	// Info literal and are skipped).
	oneShotConst, oneShotKnown, oneShotMixed := false, false, false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != "OneShot" || fn.Body == nil {
				continue
			}
			if len(fn.Body.List) != 1 {
				continue
			}
			ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			tv, ok := pass.TypesInfo.Types[ret.Results[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
				continue
			}
			v := constant.BoolVal(tv.Value)
			if oneShotKnown && v != oneShotConst {
				oneShotMixed = true
			}
			oneShotConst, oneShotKnown = v, true
		}
	}

	registeredFromInit := false
	registrations, mutantRegistrations := 0, 0
	var firstMutantLit ast.Expr
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inInit := fn.Recv == nil && fn.Name.Name == "init"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.TypesInfo, call)
				if !isPkgFunc(callee, "internal/timestamp", "Register") {
					return true
				}
				if inInit {
					registeredFromInit = true
				} else {
					pass.Reportf(call.Pos(), "timestamp.Register outside init(): registration must happen at import time so blank-importing the catalog yields the full roster")
				}
				registrations++
				if mutant, lit := checkInfoLiteral(pass, call, isMutantPkg, oneShotConst, oneShotKnown && !oneShotMixed); mutant {
					mutantRegistrations++
					if firstMutantLit == nil {
						firstMutantLit = lit
					}
				}
				return true
			})
		}
	}

	if algTypes > 0 && !isMutantPkg && !registeredFromInit {
		pass.Reportf(firstFile(pass).Package, "package %s defines a timestamp algorithm but no init() calls timestamp.Register: it is invisible to the catalog, the conformance sweeps and the SDK", pass.Pkg.Name())
	}
	if !isMutantPkg && registrations > 0 && mutantRegistrations == registrations {
		pass.Reportf(firstMutantLit.Pos(), "package registers only Mutant implementations: deliberately broken packages live under internal/timestamp/mutant (broken variants may ride along with a rostered sibling)")
	}
	return nil
}

// checkInfoLiteral validates the timestamp.Info composite literal passed
// to Register, when the argument is written as one. It reports whether
// the literal declares a mutant, and the literal itself.
func checkInfoLiteral(pass *lint.Pass, call *ast.CallExpr, isMutantPkg, oneShotWant, oneShotChecked bool) (bool, ast.Expr) {
	if len(call.Args) != 1 {
		return false, nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		return false, nil
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false, nil
	}
	if name, ok := namedIn(tv.Type, "internal/timestamp"); !ok || name != "Info" {
		return false, nil
	}

	fields := make(map[string]ast.Expr)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok {
			fields[key.Name] = kv.Value
		}
	}

	boolField := func(name string) bool {
		v, ok := fields[name]
		if !ok {
			return false
		}
		tv, ok := pass.TypesInfo.Types[v]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
			return false
		}
		return constant.BoolVal(tv.Value)
	}
	stringFieldEmpty := func(name string) (present, empty bool) {
		v, ok := fields[name]
		if !ok {
			return false, false
		}
		tv, ok := pass.TypesInfo.Types[v]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true, false
		}
		return true, constant.StringVal(tv.Value) == ""
	}

	if present, empty := stringFieldEmpty("Name"); !present {
		pass.Reportf(lit.Pos(), "Info.Name is missing: Register panics on an empty name at import time")
	} else if empty {
		pass.Reportf(fields["Name"].Pos(), "Info.Name is empty: Register panics on an empty name at import time")
	}
	if present, empty := stringFieldEmpty("Summary"); !present || empty {
		pass.Reportf(lit.Pos(), "Info.Summary is empty: flag help and /healthz would show a blank description")
	}
	if _, ok := fields["New"]; !ok {
		pass.Reportf(lit.Pos(), "Info.New is missing: Register panics on a nil constructor at import time")
	}

	mutant := boolField("Mutant")
	if isMutantPkg && !mutant {
		pass.Reportf(lit.Pos(), "Info in a mutant package must set Mutant: true, or the broken implementation joins the default conformance roster")
	}

	// OneShot coherence is only checked against the primary (non-mutant)
	// registration: broken variants may deliberately differ.
	if oneShotChecked && !mutant {
		if got := boolField("OneShot"); got != oneShotWant {
			pass.Reportf(lit.Pos(), "Info.OneShot is %v but the package's OneShot() methods return %v: consumers would plan call budgets the object rejects", got, oneShotWant)
		}
	}
	return mutant, lit
}
