package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one surviving diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Position.Filename, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
}

// MetaAnalyzer is the Finding.Analyzer name for problems with the
// //tslint:allow annotations themselves. Those findings cannot be
// suppressed.
const MetaAnalyzer = "tslint"

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. A diagnostic is suppressed when a
// //tslint:allow annotation for its analyzer sits on the same line or the
// line directly above; known lists every valid annotation target (usually
// the full suite even when running a subset, so an allow for an analyzer
// that exists but is not running is tolerated rather than reported as
// unknown). Unknown-analyzer, reasonless and unused annotations are
// reported under the MetaAnalyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer, known []string) ([]Finding, error) {
	knownSet := make(map[string]bool, len(known))
	for _, name := range known {
		knownSet[name] = true
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		// allowsAt indexes annotations by (file, line, analyzer).
		type key struct {
			file     string
			line     int
			analyzer string
		}
		allowsAt := make(map[key]*Allow)
		var allows []*Allow
		for _, f := range pkg.Files {
			for _, a := range ParseAllows(pkg.Fset, f) {
				allows = append(allows, a)
				if a.Analyzer != "" && a.Reason != "" {
					allowsAt[key{a.File, a.Line, a.Analyzer}] = a
				}
			}
		}

		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for _, line := range []int{pos.Line, pos.Line - 1} {
					if allow, ok := allowsAt[key{pos.Filename, line, a.Name}]; ok {
						allow.Used = true
						return
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.Path, err)
			}
		}

		for _, allow := range allows {
			pos := pkg.Fset.Position(allow.Pos)
			switch {
			case allow.Analyzer == "" || !knownSet[allow.Analyzer]:
				findings = append(findings, Finding{
					Analyzer: MetaAnalyzer,
					Position: pos,
					Message:  fmt.Sprintf("//tslint:allow names unknown analyzer %q (known: %v)", allow.Analyzer, known),
				})
			case allow.Reason == "":
				findings = append(findings, Finding{
					Analyzer: MetaAnalyzer,
					Position: pos,
					Message:  fmt.Sprintf("//tslint:allow %s needs a non-empty reason", allow.Analyzer),
				})
			case running[allow.Analyzer] && !allow.Used:
				findings = append(findings, Finding{
					Analyzer: MetaAnalyzer,
					Position: pos,
					Message:  fmt.Sprintf("//tslint:allow %s suppresses nothing and should be removed", allow.Analyzer),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
