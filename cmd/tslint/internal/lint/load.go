package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns with the go command (run in dir) and returns the
// matched packages, parsed with comments and fully type-checked. Imports
// are satisfied from compiler export data (`go list -deps -export`), so
// loading N packages type-checks N bodies, not the transitive closure
// from source. Test files are not loaded: tslint checks shipping code.
//
// Any parse or type error fails the load — the tree (and every fixture)
// must compile before it can be linted.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  t.Name,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
