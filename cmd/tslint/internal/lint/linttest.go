package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// ModuleRoot walks up from dir to the directory containing go.mod: the
// working directory for go list and the anchor for fixture patterns.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// expectation is one `// want "regexp"` annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Fixture runs one analyzer over fixture packages (patterns relative to
// the module root) in the style of x/tools' analysistest: every surviving
// finding must match a `// want "regexp"` comment on its line, and every
// want comment must be matched by a finding. known lists the full
// analyzer suite so fixtures can carry //tslint:allow annotations for
// analyzers other than the one under test.
func Fixture(t *testing.T, analyzer *Analyzer, known []string, patterns ...string) {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	findings, err := Run(pkgs, []*Analyzer{analyzer}, known)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg.Fset, f)...)
		}
	}

	for _, finding := range findings {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != finding.Position.Filename || w.line != finding.Position.Line {
				continue
			}
			if w.re.MatchString(finding.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", finding)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `// want %s`", w.file, w.line, w.raw)
		}
	}
}

// FixtureDirs lists the fixture packages of one analyzer: every
// directory under cmd/tslint/testdata/src/<name> holding Go files, as
// ./-relative go list patterns. Explicit directories are required —
// wildcard patterns never descend into testdata.
func FixtureDirs(root, name string) ([]string, error) {
	base := filepath.Join(root, "cmd", "tslint", "testdata", "src", name)
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pattern := "./" + filepath.ToSlash(rel)
		if !seen[pattern] {
			seen[pattern] = true
			dirs = append(dirs, pattern)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseWants extracts `// want "regexp" ["regexp" ...]` comments. Block
// form (`/* want ... */`) is accepted too, for lines whose trailing line
// comment is already spoken for by a //tslint:allow annotation.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if strings.HasPrefix(text, "/*") {
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			} else {
				text = strings.TrimPrefix(text, "//")
			}
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
			for rest != "" {
				quoted, err := strconv.QuotedPrefix(rest)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
				}
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: quoted})
				rest = strings.TrimSpace(rest[len(quoted):])
			}
		}
	}
	return wants
}
