// Package lint is a self-contained, stdlib-only analysis framework in the
// shape of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The module
// vendors no third-party code (the container builds offline), so instead
// of importing x/tools the package re-implements the small slice of it the
// tslint suite needs — the Analyzer/Pass contract, a `go list -export`
// driven loader, and an analysistest-style fixture harness — with the same
// field names, so a future PR can swap the real framework in mechanically.
//
// Two comment directives tie analyzers to source:
//
//	//tslint:hotpath
//	    in a function's doc comment marks it as a hot-path root: the
//	    hotpath analyzer checks everything reachable from it inside the
//	    package.
//
//	//tslint:allow <analyzer> <reason>
//	    on (or immediately above) the offending line suppresses that
//	    analyzer's diagnostics for the line. The reason is mandatory:
//	    an allow without one, naming an unknown analyzer, or matching no
//	    diagnostic is itself reported (as analyzer "tslint"), so stale
//	    opt-outs rot loudly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tslint:allow annotations.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.Run and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path ("tsspace/internal/register").
	Path string
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the package's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

const (
	allowPrefix   = "//tslint:allow"
	hotpathMarker = "//tslint:hotpath"
)

// An Allow is one parsed //tslint:allow annotation.
type Allow struct {
	Pos      token.Pos
	Line     int // line the annotation is written on
	File     string
	Analyzer string
	Reason   string
	Used     bool // set by the runner when it suppresses a diagnostic
}

// ParseAllows extracts every //tslint:allow annotation from a file.
// Malformed annotations (no analyzer name, empty reason) are returned
// too, with the missing parts empty — the runner turns those into
// diagnostics rather than silently honoring or dropping them.
func ParseAllows(fset *token.FileSet, f *ast.File) []*Allow {
	var allows []*Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //tslint:allowfoo — not ours
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			a := &Allow{Pos: c.Pos(), Line: pos.Line, File: pos.Filename}
			if len(fields) > 0 {
				a.Analyzer = fields[0]
			}
			if len(fields) > 1 {
				a.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			allows = append(allows, a)
		}
	}
	return allows
}

// HotpathRoot reports whether fn is marked as a hot-path root via a
// //tslint:hotpath line in its doc comment.
func HotpathRoot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}
