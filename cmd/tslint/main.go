// Command tslint is the repo's static-analysis gate: a multichecker in
// the shape of golang.org/x/tools/go/analysis (self-contained — the
// container builds offline) enforcing the invariants the tests cannot
// see at runtime:
//
//	registeraccess  algorithm packages touch shared state only through
//	                internal/register (the paper's per-register op
//	                accounting stays exact)
//	hotpath         //tslint:hotpath roots stay 0 allocs/op: no fmt, no
//	                make/new/closures, no interface boxing, no mutexes
//	typederr        exported SDK errors wrap sentinels (%w), never
//	                anonymous fmt.Errorf/errors.New values
//	registryinit    every algorithm package self-registers from init()
//	                with coherent Info (OneShot/Mutant)
//	atomicmix       a field accessed through sync/atomic is never also
//	                accessed plainly outside constructors
//
// plus curated lite ports of the stock copylocks, nilness and
// unusedwrite passes.
//
// Usage:
//
//	go run ./cmd/tslint ./...
//	go run ./cmd/tslint -analyzers hotpath,typederr ./tsserve
//	go run ./cmd/tslint -list
//
// Intentional violations are annotated in source:
//
//	//tslint:allow <analyzer> <reason>
//
// on (or directly above) the offending line; the reason is mandatory and
// unused or malformed annotations are themselves diagnostics. Exit status
// is 1 when any finding survives, so CI runs it as a blocking step.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tsspace/cmd/tslint/internal/checks"
	"tsspace/cmd/tslint/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tslint [-list] [-analyzers a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range checks.All() {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	suite := checks.All()
	if *only != "" {
		var ok bool
		suite, ok = checks.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "tslint: unknown analyzer in -analyzers %q (known: %s)\n", *only, strings.Join(checks.Names(), ", "))
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tslint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, suite, checks.Names())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tslint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
