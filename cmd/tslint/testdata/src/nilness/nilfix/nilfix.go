// Package nilfix dereferences values inside the branch that proved them
// nil. tslint fixture for the nilness analyzer.
package nilfix

// Node is a list cell.
type Node struct {
	Next *Node
	V    int
}

// Summer is a tiny interface.
type Summer interface{ Sum() int }

// Broken reads a field through a pointer known to be nil.
func Broken(n *Node) int {
	if n == nil {
		return n.V // want `field access through n, which is nil on this branch`
	}
	return 0
}

// BrokenStar dereferences explicitly.
func BrokenStar(p *int) int {
	if nil == p {
		return *p // want `dereference of p, which is nil on this branch`
	}
	return *p
}

// BrokenIface calls a method on an interface known to be nil.
func BrokenIface(s Summer) int {
	if s == nil {
		return s.Sum() // want `method call on s, which is a nil interface on this branch`
	}
	return s.Sum()
}

// Fixed reassigns inside the branch: the analysis backs off.
func Fixed(n *Node) int {
	if n == nil {
		n = &Node{}
		return n.V
	}
	return n.V
}
