// Package uw writes to by-value copies that are never read again.
// tslint fixture for the unusedwrite analyzer.
package uw

// Conf is a small plain struct.
type Conf struct {
	N int
	S string
}

// SetN writes through a by-value receiver: the caller never sees it.
func (c Conf) SetN(n int) {
	c.N = n // want `write to c\.N is lost`
}

// Normalize writes a parameter copy it never reads again.
func Normalize(c Conf) int {
	before := c.N
	c.S = "normalized" // want `write to c\.S is lost`
	return before
}

// Renamed writes the copy but returns it: the write is observed.
func Renamed(c Conf) Conf {
	c.S = "renamed"
	return c
}
