// Package tsserve is the typederr fixture: it reuses the real package
// name and final path element so the analyzer's SDK-package scope
// matches it exactly like the real tsserve.
package tsserve

import (
	"errors"
	"fmt"
)

// ErrBase is the sentinel the good wrappers use.
var ErrBase = errors.New("tsserve: base failure")

// Bad mints anonymous error values in both forbidden ways.
func Bad(n int) error {
	if n < 0 {
		return errors.New("tsserve: negative") // want `errors.New in exported Bad`
	}
	return fmt.Errorf("tsserve: odd %d", n) // want `fmt\.Errorf without %w in exported Bad`
}

// Good wraps the package sentinel: callers can errors.Is against it.
func Good(n int) error {
	return fmt.Errorf("%w: %d", ErrBase, n)
}

// quiet is unexported and therefore out of contract.
func quiet(n int) error {
	return fmt.Errorf("tsserve: quiet %d", n)
}

var _ = quiet
