// Package hot exercises the hotpath analyzer: Bump is an annotated root,
// trace is reachable from it, cold is not, and grow shows the per-line
// opt-out. tslint fixture.
package hot

import (
	"fmt"
	"sync"
)

// Counter is a tiny hot object.
type Counter struct {
	mu sync.Mutex
	n  int64
	f  func() int64
}

// Bump is the steady-state operation.
//
//tslint:hotpath
func (c *Counter) Bump(k int64) int64 {
	c.n += k
	return c.trace(k)
}

// trace is reachable from Bump inside the package, so it is hot too.
func (c *Counter) trace(k int64) int64 {
	fmt.Println("bump", k)          // want `calls fmt\.Println` `boxes string into any` `boxes int64 into any`
	c.mu.Lock()                     // want `acquires sync\.Mutex\.Lock`
	buf := make([]int64, 8)         // want `allocates with make`
	c.f = func() int64 { return k } // want `allocates a closure`
	c.mu.Unlock()                   // want `acquires sync\.Mutex\.Unlock`
	return buf[0] + c.n
}

// cold is not reachable from any root: anything goes here.
func (c *Counter) cold() string {
	return fmt.Sprintf("%d", c.n)
}

// grow is a root whose single allocation is deliberately annotated.
//
//tslint:hotpath
func (c *Counter) grow(n int) []int64 {
	return make([]int64, n) //tslint:allow hotpath fixture: growth path amortizes to zero over the steady state
}
