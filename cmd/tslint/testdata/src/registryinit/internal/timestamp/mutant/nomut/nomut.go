// Package nomut sits in the mutant tree but forgets Mutant: true, which
// would let a deliberately broken implementation into the default
// conformance roster. tslint fixture for the registryinit analyzer.
package nomut

import "tsspace/internal/timestamp"

func newAlg(n int) timestamp.Algorithm { return nil }

func init() {
	timestamp.Register(timestamp.Info{ // want `Info in a mutant package must set Mutant: true`
		Name:    "tslint-fixture-nomut",
		Summary: "fixture",
		New:     newAlg,
	})
}
