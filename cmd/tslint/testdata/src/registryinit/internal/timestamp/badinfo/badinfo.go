// Package badinfo registers incoherent Info literals: missing metadata,
// an empty name, a OneShot flag disagreeing with the methods, and a
// registration outside init(). tslint fixture for the registryinit
// analyzer.
package badinfo

import "tsspace/internal/timestamp"

// Alg carries the timestamp.Algorithm method trio so the analyzer treats
// badinfo as an algorithm-defining package.
type Alg struct{}

// GetTS is a stub.
func (a *Alg) GetTS() int { return 0 }

// Registers is a stub.
func (a *Alg) Registers() int { return 0 }

// OneShot reports the constant the Info literals must agree with.
func (a *Alg) OneShot() bool { return true }

func newAlg(n int) timestamp.Algorithm { return nil }

func init() {
	timestamp.Register(timestamp.Info{ // want `Info\.Summary is empty` `Info\.New is missing` `Info\.OneShot is false but the package's OneShot\(\) methods return true`
		Name: "tslint-fixture-bare",
	})
	timestamp.Register(timestamp.Info{
		Name:    "", // want `Info\.Name is empty`
		Summary: "fixture",
		New:     newAlg,
		OneShot: true,
	})
}

// RegisterLate registers after import time: blank importers of the
// catalog never see it.
func RegisterLate() {
	timestamp.Register(timestamp.Info{ // want `timestamp\.Register outside init\(\)`
		Name:    "tslint-fixture-late",
		Summary: "fixture",
		New:     newAlg,
		OneShot: true,
	})
}
