// Package onlymut lives outside the mutant tree but registers nothing
// except a broken variant. tslint fixture for the registryinit analyzer.
package onlymut

import "tsspace/internal/timestamp"

func newAlg(n int) timestamp.Algorithm { return nil }

func init() {
	timestamp.Register(timestamp.Info{ // want `package registers only Mutant implementations`
		Name:    "tslint-fixture-onlymut",
		Summary: "fixture",
		New:     newAlg,
		Mutant:  true,
	})
}
