// Package noreg defines a type carrying the timestamp.Algorithm method
// trio but never registers it: invisible to the catalog. tslint fixture
// for the registryinit analyzer.
package noreg // want `defines a timestamp algorithm but no init\(\) calls timestamp\.Register`

// Alg looks like an algorithm implementation.
type Alg struct{}

// GetTS is a stub.
func (a *Alg) GetTS() int { return 0 }

// Registers is a stub.
func (a *Alg) Registers() int { return 0 }

// OneShot is a stub.
func (a *Alg) OneShot() bool { return false }
