// Package atomix mixes atomic and plain access to the same fields.
// tslint fixture for the atomicmix analyzer.
package atomix

import "sync/atomic"

// Counter has a typed atomic and a raw word driven through the atomic
// functions elsewhere in the package.
type Counter struct {
	typed atomic.Int64
	raw   int64
}

// NewCounter may initialize plainly: the value has not escaped yet.
func NewCounter() *Counter {
	var c Counter
	c.raw = 1
	return &c
}

// Add uses both fields through their atomic APIs: fine.
func (c *Counter) Add() {
	c.typed.Add(1)
	atomic.AddInt64(&c.raw, 1)
}

// Peek reads both fields plainly: a data race on each.
func (c *Counter) Peek() int64 {
	t := c.typed // want `typed used without its atomic API`
	_ = t
	return c.raw // want `raw is accessed with sync/atomic elsewhere`
}
