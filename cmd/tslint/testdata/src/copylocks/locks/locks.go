// Package locks copies values that embed a mutex by value. tslint
// fixture for the copylocks analyzer.
package locks

import "sync"

// Guarded embeds a mutex by value.
type Guarded struct {
	Mu sync.Mutex
	N  int
}

// ByValue copies its receiver, splitting the lock in two.
func (g Guarded) ByValue() int { return g.N } // want `receiver passes a lock by value`

// Take copies its parameter.
func Take(g Guarded) int { return g.N } // want `parameter passes a lock by value`

// Fresh hands the caller a copy of a lock-bearing value.
func Fresh() Guarded { // want `result passes a lock by value`
	return Guarded{}
}

// Snapshot copies lock-bearing storage three different ways.
func Snapshot(src *Guarded) int {
	g := *src // want `assignment copies a lock-bearing value`
	sum := g.N
	all := []Guarded{{N: 1}}
	for _, v := range all { // want `range value copies a lock-bearing element`
		sum += v.N
	}
	return sum + Take(*src) // want `call copies a lock-bearing value into an argument`
}
