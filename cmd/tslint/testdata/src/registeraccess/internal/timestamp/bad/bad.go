// Package bad trips every register-access rule: banned imports, channel
// use and goroutine creation inside the instrumented algorithm tree.
// tslint fixture for the registeraccess analyzer.
package bad

import (
	"sync"        // want `imports "sync"`
	"sync/atomic" // want `imports "sync/atomic"`
	"time"        // want `imports "time"`
)

// Gate shares state behind the scheduler's back.
type Gate struct {
	mu   sync.Mutex
	n    int64
	wake chan struct{} // want `declares a channel type`
}

// Bump takes steps the harness cannot intercept.
func (g *Gate) Bump() {
	g.mu.Lock()
	atomic.AddInt64(&g.n, 1)
	g.mu.Unlock()
	time.Sleep(time.Microsecond)
	go g.notify() // want `starts a goroutine`
}

func (g *Gate) notify() {
	g.wake <- struct{}{} // want `sends on a channel`
	select {             // want `uses select`
	case <-g.wake: // want `receives from a channel`
	default:
	}
}
