// Package allowed exercises the //tslint:allow opt-out and the meta
// diagnostics for malformed annotations. tslint fixture for the
// registeraccess analyzer.
package allowed

import (
	"sync" //tslint:allow registeraccess fixture: instance-local lock outside the paper's register accounting
)

// Memo is harness-side bookkeeping of the kind the opt-out exists for.
type Memo struct {
	mu sync.Mutex
	n  int
}

// Bump is ordinary mutex use, suppressed at the import above.
func (m *Memo) Bump() {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
}

var _ int /* want `names unknown analyzer "bogus"` */ //tslint:allow bogus no such analyzer

var _ int /* want `needs a non-empty reason` */ //tslint:allow registeraccess

var _ int /* want `suppresses nothing` */ //tslint:allow registeraccess fixture: nothing on this line violates anything
