package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tsspace/cmd/tslint/internal/checks"
	"tsspace/cmd/tslint/internal/lint"
)

var updateLint = flag.Bool("update-lint", false, "rewrite testdata/diagnostics.golden from the current fixture diagnostics")

// TestGoldenDiagnostics pins the full diagnostic output of every analyzer
// over its fixture packages — message wording included — so a refactor
// that silently changes or drops diagnostics shows up as a diff.
// Regenerate with: go test ./cmd/tslint -run TestGoldenDiagnostics -update-lint
func TestGoldenDiagnostics(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, a := range checks.All() {
		dirs, err := lint.FixtureDirs(root, a.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) == 0 {
			t.Fatalf("no fixture packages under cmd/tslint/testdata/src/%s", a.Name)
		}
		pkgs, err := lint.Load(root, dirs...)
		if err != nil {
			t.Fatalf("loading %s fixtures: %v", a.Name, err)
		}
		findings, err := lint.Run(pkgs, []*lint.Analyzer{a}, checks.Names())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "# %s\n", a.Name)
		for _, f := range findings {
			rel, err := filepath.Rel(root, f.Position.Filename)
			if err != nil {
				rel = f.Position.Filename
			}
			fmt.Fprintf(&buf, "%s:%d:%d: %s (%s)\n",
				filepath.ToSlash(rel), f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
		}
	}

	golden := filepath.Join("testdata", "diagnostics.golden")
	if *updateLint {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-lint)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("fixture diagnostics changed.\n--- want (%s)\n%s\n--- got\n%s\nregenerate with: go test ./cmd/tslint -run TestGoldenDiagnostics -update-lint",
			golden, want, buf.Bytes())
	}
}
