// Command tsspace prints the space-complexity tables of the reproduction
// (experiments E3, E4, E8): for a range of process counts it reports the
// register budgets and measured register usage of every implementation
// next to the paper's lower bounds.
//
// Usage:
//
//	tsspace [-n 16,64,256,1024] [-measure] [-advcap 2048]
//
// With -measure each algorithm is additionally run concurrently (real
// goroutines) and the distinct registers actually written are reported;
// adversarial schedules run through the deterministic scheduler for
// n ≤ advcap.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tsspace/internal/report"
)

func main() {
	ns := flag.String("n", "16,64,256,1024,4096", "comma-separated process counts")
	measure := flag.Bool("measure", true, "run the algorithms and measure registers written")
	advCap := flag.Int("advcap", 2048, "run adversarial schedules only for n up to this size")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "tsspace: bad n %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	budgets := report.Budgets(sizes)
	for _, r := range budgets {
		if err := r.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "tsspace: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println(report.FormatBudgets(budgets))

	if !*measure {
		return
	}
	rows, err := report.Measured(sizes, *advCap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsspace: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rows {
		if err := r.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "tsspace: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println(report.FormatMeasured(rows))
	fmt.Println("Shape checks: sqrt column grows as Θ(√n) and stays below its budget;")
	fmt.Println("collect/dense/simple grow linearly; the one-shot/long-lived gap widens with n.")
}
