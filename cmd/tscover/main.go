// Command tscover replays the lower-bound constructions of the paper
// (experiments E1, E2, E5, E6) and renders the Figure 1 / Figure 2 grids.
// Every replay goes through internal/engine, which validates the paper's
// bound on each construction centrally.
//
// Usage:
//
//	tscover -construct oneshot  -n 200  [-policy lowest-first] [-steps]
//	tscover -construct longlived -n 60  [-policy first-fit]
//	tscover -fig 1 -n 200
//	tscover -fig 2
//	tscover -phases -n 36 [-seed 3]    # E7: traced phase accounting
package main

import (
	"flag"
	"fmt"
	"os"

	"tsspace/internal/engine"
	"tsspace/internal/lowerbound"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	construct := flag.String("construct", "", "replay a construction: oneshot | longlived")
	fig := flag.Int("fig", 0, "render a figure: 1 | 2")
	n := flag.Int("n", 200, "number of processes")
	policyName := flag.String("policy", "lowest-first", "placement policy: lowest-first | highest-first | first-fit | random")
	seed := flag.Int64("seed", 1, "seed for the random policy / schedule")
	steps := flag.Bool("steps", false, "print every construction step")
	phasesMode := flag.Bool("phases", false, "trace Algorithm 4's phases on a batched random schedule (E7)")
	flag.Parse()

	switch {
	case *phasesMode:
		phases(*n, *seed)
	case *fig == 1:
		figure1(*n, pick(*policyName, *seed))
	case *fig == 2:
		figure2()
	case *construct == "oneshot":
		oneshot(*n, pick(*policyName, *seed), *steps)
	case *construct == "longlived":
		longlived(*n, pick(*policyName, *seed), *steps)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// phases runs n one-shot getTS calls on the engine's phased workload
// (batches of 3) with the phase tracer and prints the §6.3 accounting
// (experiment E7).
func phases(n int, seed int64) {
	alg := sqrt.New(n)
	tracer := &sqrt.ChronoTracer{}
	alg.SetTracer(tracer)
	run, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.Phased{GroupSize: 3},
		Seed:     seed,
	})
	if err != nil {
		fail(err)
	}
	if err := run.Verify(alg.Compare); err != nil {
		fail(err)
	}
	rep, err := sqrt.AnalyzePhases(tracer.Events())
	if err != nil {
		fail(err)
	}
	if err := sqrt.VerifyCompletedPhases(rep); err != nil {
		fail(err)
	}
	fmt.Printf("Algorithm 4, M=%d calls, batched random schedule (seed %d):\n\n", n, seed)
	fmt.Println("phase  writes  invalidation writes   (Claim 6.10: completed phase ϕ has exactly ϕ)")
	for _, st := range rep.PerPhase {
		fmt.Printf("%5d  %6d  %19d\n", st.Phase, st.Writes, st.Invalidations)
	}
	fmt.Printf("\ntotal invalidation writes %d ≤ 2M = %d (Claim 6.13); %d phases, budget ⌈2√M⌉ = %d\n",
		rep.InvalidationWrites, 2*n, rep.Phases, alg.Registers())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tscover: %v\n", err)
	os.Exit(1)
}

func pick(name string, seed int64) lowerbound.Policy {
	for _, p := range lowerbound.Policies(seed) {
		if p.Name() == name {
			return p
		}
	}
	fmt.Fprintf(os.Stderr, "tscover: unknown policy %q\n", name)
	os.Exit(2)
	return nil
}

func oneshot(n int, pol lowerbound.Policy, steps bool) {
	rep, err := engine.OneShotCover(n, pol)
	if err != nil {
		fail(err)
	}
	fmt.Printf("Theorem 1.2 construction: n=%d processes, m=⌊√2n⌋=%d registers, policy %s\n\n",
		n, rep.M, pol.Name())
	if steps {
		for _, st := range rep.Steps {
			fmt.Printf("step %d: case %d, %d block writes, %d placements, ν=%d → j=%d ℓ=%d (idle %d)\n",
				st.K, st.Case, st.BlockWrites, st.Placed, st.Nu, st.J, st.L, st.Idle)
		}
		fmt.Println()
	}
	last := rep.Steps[len(rep.Steps)-1]
	fmt.Println(lowerbound.Grid(last.Ordered(), last.L))
	fmt.Printf("final: j=%d registers covered (ℓ=%d, Case 2 occurred %d times ≤ log₂n)\n",
		rep.FinalJ, rep.FinalL, rep.Case2Count)
	fmt.Printf("Theorem 1.2 bound: ≥ m − log₂n − 2 = %d   ✓ (covered total: %d)\n",
		rep.Bound, rep.Covered())
}

func longlived(n int, pol lowerbound.Policy, steps bool) {
	rep, err := engine.LongLivedCover(n, pol)
	if err != nil {
		fail(err)
	}
	fmt.Printf("Theorem 1.1 construction: n=%d processes, policy %s\n\n", n, pol.Name())
	if steps {
		for _, st := range rep.Steps {
			fmt.Printf("step %d: +cover r%d (R3 had %d registers → %d block writers); sig sum %d\n",
				st.K, st.Register, st.R3Size, st.BlockWrite, st.Signature.Sum())
		}
		fmt.Println()
	}
	fmt.Printf("(3,%d)-configuration reached with %d fresh processes;\n", rep.K, rep.ProcessesUsed)
	fmt.Printf("registers covered: %d ≥ ⌊n/6⌋ = %d  ✓\n", rep.Covered, rep.Bound)
	fmt.Printf("signature space 4^m = %d bounds the Lemma 3.1 pigeonhole\n", rep.SignatureSpace)
}

func figure1(n int, pol lowerbound.Policy) {
	rep, err := engine.OneShotCover(n, pol)
	if err != nil {
		fail(err)
	}
	first := rep.Steps[0]
	fmt.Printf("Figure 1 — configuration C1 (n=%d, m=%d): column j=%d reaches the diagonal,\n", n, rep.M, first.J)
	fmt.Printf("so j registers are each covered by ≥ m−j processes.\n\n")
	fmt.Println(lowerbound.Grid(first.Ordered(), rep.M))
}

func figure2() {
	// The scripted Case 1 / Case 2 pair from the test suite: n=32, m=8.
	script := &lowerbound.Scripted{
		Moves: []int{
			0, 0, 0, 0, 0, 0,
			1, 1, 1, 1, 1, 1,
			2, 2, 2, 2,
			3, 3, 3,
			4, 4,
			2,
		},
		Fallback: lowerbound.HighestFirst{},
	}
	rep, err := engine.OneShotCoverQ(32, script, true)
	if err != nil {
		fail(err)
	}
	fmt.Println("Figure 2 — block-write step outcomes (n=32, m=8, scripted adversary)")
	for _, st := range rep.Steps {
		label := "Case 1: earlier columns keep height ≥ ℓ−j′"
		if st.Case == 2 {
			label = "Case 2: diagonal reached at column j+1 after two block writes; ℓ decreases"
		}
		fmt.Printf("\nstep %d (%s): bw=%d placed=%d ν=%d → j=%d ℓ=%d\n%s",
			st.K, label, st.BlockWrites, st.Placed, st.Nu, st.J, st.L,
			lowerbound.Grid(st.Ordered(), st.L))
	}
}
