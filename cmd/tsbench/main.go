// Command tsbench diffs two BENCH_*.json perf-trajectory files (see
// cmd/tsload): a committed baseline against a fresh run. Rows are matched
// by (mix, target, algorithm, batch size) and compared on throughput, p99
// latency and driver allocations per op, with a relative noise tolerance
// so an unloaded laptop and a noisy CI runner do not page anyone.
//
// Usage:
//
//	tsbench [-tolerance 0.30] [-gate] baseline.json current.json
//
// Rows only one file has are reported but never fail the diff (the sweep
// grew or shrank; that is a review question, not a regression). A host
// mismatch between the files (different arch or CPU count) prints a
// warning and disables gating: cross-machine numbers are a trend line,
// not a contract. With -gate and comparable hosts, any regression past
// the tolerance exits 1 — the CI wiring runs this as a non-blocking step
// first, and -gate exists for the day the trajectory is trusted enough
// to enforce.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tsspace/tsload"
)

func main() {
	tolerance := flag.Float64("tolerance", 0.30, "relative headroom before a delta counts as a regression")
	gate := flag.Bool("gate", false, "exit 1 on any regression past the tolerance (comparable hosts only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tsbench [-tolerance 0.30] [-gate] baseline.json current.json")
		os.Exit(2)
	}
	base, err := tsload.ReadBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(2)
	}
	cur, err := tsload.ReadBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(2)
	}

	comparable := base.Host == cur.Host
	if !comparable {
		fmt.Printf("WARNING: hosts differ (%s/%s %d cpu %s vs %s/%s %d cpu %s): trend only, gating disabled\n",
			base.Host.GOOS, base.Host.GOARCH, base.Host.NumCPU, base.Host.GoVersion,
			cur.Host.GOOS, cur.Host.GOARCH, cur.Host.NumCPU, cur.Host.GoVersion)
	}

	baseRows := index(base.Results)
	curRows := index(cur.Results)
	keys := make([]string, 0, len(baseRows))
	for k := range baseRows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	for _, k := range keys {
		b := baseRows[k]
		c, ok := curRows[k]
		if !ok {
			fmt.Printf("%-44s only in baseline\n", k)
			continue
		}
		verdicts := ""
		if c.Throughput < b.Throughput*(1-*tolerance) {
			verdicts += " THROUGHPUT-REGRESSED"
		}
		if float64(c.LatencyNs.P99) > float64(b.LatencyNs.P99)*(1+*tolerance) {
			verdicts += " P99-REGRESSED"
		}
		// Allocations get an absolute grace of half an alloc on top of the
		// relative tolerance: a 0-alloc baseline must stay 0-ish, but one
		// stray sample in a hot row should not read as a leak.
		if c.AllocsPerOp > b.AllocsPerOp*(1+*tolerance)+0.5 {
			verdicts += " ALLOCS-REGRESSED"
		}
		if verdicts != "" {
			regressions++
		} else {
			verdicts = " ok"
		}
		fmt.Printf("%-44s %10.0f → %-10.0f ops/s  p99 %-9s → %-9s allocs %6.2f → %-6.2f%s\n",
			k, b.Throughput, c.Throughput,
			time.Duration(b.LatencyNs.P99), time.Duration(c.LatencyNs.P99),
			b.AllocsPerOp, c.AllocsPerOp, verdicts)
	}
	var newRows []string
	for k := range curRows {
		if _, ok := baseRows[k]; !ok {
			newRows = append(newRows, k)
		}
	}
	sort.Strings(newRows)
	for _, k := range newRows {
		fmt.Printf("%-44s new in current\n", k)
	}

	switch {
	case regressions == 0:
		fmt.Printf("tsbench: %d rows compared, none regressed (tolerance %.0f%%)\n", len(keys)-len(missing(baseRows, curRows)), *tolerance*100)
	case !comparable || !*gate:
		fmt.Printf("tsbench: %d regression(s) past %.0f%% (not gating)\n", regressions, *tolerance*100)
	default:
		fmt.Fprintf(os.Stderr, "tsbench: %d regression(s) past %.0f%%\n", regressions, *tolerance*100)
		os.Exit(1)
	}
}

// index keys rows by the identity that survives re-running a sweep.
func index(rows []tsload.Result) map[string]tsload.Result {
	m := make(map[string]tsload.Result, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%s/%s/%s/batch=%d", r.Mix, r.Target, r.Algorithm, r.BatchSize)] = r
	}
	return m
}

// missing lists baseline keys absent from current.
func missing(base, cur map[string]tsload.Result) []string {
	var out []string
	for k := range base {
		if _, ok := cur[k]; !ok {
			out = append(out, k)
		}
	}
	return out
}
