package tsspace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// SessionAPI is the one session surface of the repository, satisfied by
// the local Session, by tsserve.RemoteSession over the wire, and by the
// sessions tsload drives — so the same caller code (and the same
// benchmark harness) runs against all three, and the difference between
// any two is exactly the transport.
//
// GetTS issues one timestamp; GetTSBatch fills a caller-owned slice with
// len(dst) timestamps issued back to back by this session's process —
// each happens-before the next — returning how many were issued and the
// error that stopped a short batch. Compare carries a context and an
// error slot because a remote compare is a round trip; local
// implementations never fail it. Detach releases whatever the session
// leases.
type SessionAPI interface {
	GetTS(ctx context.Context) (Timestamp, error)
	GetTSBatch(ctx context.Context, dst []Timestamp) (int, error)
	Compare(ctx context.Context, t1, t2 Timestamp) (bool, error)
	Detach() error
}

// seqSlot is one pid's persistent getTS count, padded to a cache line so
// that attach/detach churn on neighbouring pids never false-shares. The
// slot is owned exclusively by the leasing session between Attach and
// Detach: Attach loads it, the session counts locally, Detach writes it
// back — all ordered by the free-channel handoff, so no lock guards it.
type seqSlot struct {
	seq int64
	_   [56]byte
}

// Object is a shared timestamp object: a fixed namespace of n
// paper-processes whose ids are leased to Sessions by Attach and recycled
// by Detach. All methods are safe for concurrent use.
type Object struct {
	info    timestamp.Info
	alg     timestamp.Algorithm
	procs   int
	oneShot bool
	meter   *register.Meter // nil when metering is off
	mems    []register.Mem  // per-pid middleware stacks over one shared array
	slots   []seqSlot       // per-pid seq, owned by the leasing session
	free    chan int        // recyclable pids; capacity procs
	closed  chan struct{}   // closed by Close
	once    sync.Once

	mu        sync.Mutex    // cold-path bookkeeping only: never on the GetTS path
	retired   int           // one-shot pids that spent their call
	active    int           // currently attached sessions
	exhausted chan struct{} // one-shot only: closed when retired == procs

	// sessions is the live-session registry, non-nil only when the object
	// was built WithSessionTTL; maintained on the attach/detach cold path.
	sessions map[*Session]struct{}

	calls    atomic.Uint64
	attaches atomic.Uint64
	reaped   atomic.Uint64
}

// Algorithm returns the registry name of the implementation backing the
// object.
func (o *Object) Algorithm() string { return o.info.Name }

// Procs returns n, the number of paper-processes.
func (o *Object) Procs() int { return o.procs }

// OneShot reports whether the object issues at most one timestamp per
// process id (and therefore at most n in total).
func (o *Object) OneShot() bool { return o.oneShot }

// Registers returns the size of the object's register array — the space
// the paper's theorems bound.
func (o *Object) Registers() int { return o.alg.Registers() }

// Compare implements the object's compare(t1, t2): true iff t1 is ordered
// before t2. For timestamps returned by this object it realizes the
// happens-before property of §2.
func (o *Object) Compare(t1, t2 Timestamp) bool { return o.alg.Compare(t1, t2) }

// Attach leases a free process id and returns a Session bound to it. When
// every id is leased it blocks until one is recycled, ctx is done, the
// object is closed, or — for one-shot objects — the timestamp budget is
// exhausted.
func (o *Object) Attach(ctx context.Context) (*Session, error) {
	select {
	case <-o.closed:
		return nil, ErrClosed
	default:
	}
	select {
	case pid := <-o.free:
		o.attaches.Add(1)
		s := &Session{obj: o, pid: pid, seq0: o.slots[pid].seq}
		s.seq.Store(s.seq0)
		o.mu.Lock()
		o.active++
		if o.sessions != nil {
			o.sessions[s] = struct{}{}
		}
		o.mu.Unlock()
		return s, nil
	case <-o.exhausted: // nil (blocks forever) unless one-shot
		return nil, fmt.Errorf("%w: all %d process slots have issued their timestamp", ErrExhausted, o.procs)
	case <-o.closed:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts the object down: subsequent Attach and GetTS calls report
// ErrClosed and blocked Attach calls wake up. Close is idempotent, does
// not wait for attached sessions, and stops the session reaper when one
// is armed.
func (o *Object) Close() error {
	o.once.Do(func() { close(o.closed) })
	return nil
}

// reapState is the reaper's view of one session: the last sequence number
// observed and when that observation first held.
type reapState struct {
	seq   int64
	since time.Time
}

// reapLoop is the WithSessionTTL goroutine: every ttl/4 it snapshots each
// live session's sequence number, and a session whose number has not
// moved for a full ttl is force-detached — the abandoned lease of a
// crashed client, returned to the free pool. Idleness is measured from
// the snapshot that first saw the stalled number, so a session is
// reclaimed between ttl and ttl+ttl/4 after its last call, never before
// ttl.
func (o *Object) reapLoop(ttl time.Duration) {
	tick := ttl / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	state := make(map[*Session]reapState)
	for {
		select {
		case <-o.closed:
			return
		case now := <-ticker.C:
			o.mu.Lock()
			live := make([]*Session, 0, len(o.sessions))
			for s := range o.sessions {
				live = append(live, s)
			}
			o.mu.Unlock()
			seen := make(map[*Session]bool, len(live))
			for _, s := range live {
				seen[s] = true
				seq := s.seq.Load()
				st, ok := state[s]
				if !ok || st.seq != seq {
					state[s] = reapState{seq: seq, since: now}
					continue
				}
				if now.Sub(st.since) >= ttl {
					s.Detach()
					o.reaped.Add(1)
					delete(state, s)
				}
			}
			for s := range state {
				if !seen[s] {
					delete(state, s) // detached on its own between ticks
				}
			}
		}
	}
}

// Usage reports the object's register-space footprint. The boolean is
// false when the object was built without WithMetering, in which case only
// Registers is populated.
func (o *Object) Usage() (Usage, bool) {
	if o.meter == nil {
		return Usage{Registers: o.alg.Registers()}, false
	}
	rep := o.meter.Report()
	return Usage{
		Registers:   rep.Registers,
		Written:     rep.Written,
		WrittenSet:  rep.WrittenSet,
		Reads:       rep.Reads,
		Writes:      rep.Writes,
		ReadCounts:  rep.ReadCounts,
		WriteCounts: rep.WriteCounts,
	}, true
}

// SpaceTotals reports the scalar register-space measures — allocated
// registers, distinct registers written, total reads and writes —
// without copying the per-register breakdowns Usage carries, so a
// metrics scraper can sample a live object cheaply. The boolean is
// false when the object was built without WithMetering, in which case
// only Registers is populated.
func (o *Object) SpaceTotals() (SpaceTotals, bool) {
	if o.meter == nil {
		return SpaceTotals{Registers: o.alg.Registers()}, false
	}
	t := o.meter.Totals()
	return SpaceTotals{Registers: t.Registers, Written: t.Written, Reads: t.Reads, Writes: t.Writes}, true
}

// Stats returns the object's traffic counters.
func (o *Object) Stats() Stats {
	o.mu.Lock()
	active := o.active
	o.mu.Unlock()
	return Stats{
		Calls:          o.calls.Load(),
		Attaches:       o.attaches.Load(),
		Reaped:         o.reaped.Load(),
		ActiveSessions: active,
	}
}

// Usage is the register-space footprint of an object (cf. the paper's
// space measures: Θ(√n) one-shot vs Θ(n) long-lived).
type Usage struct {
	// Registers is the allocated array size (the budget).
	Registers int
	// Written is the number of distinct registers written so far;
	// WrittenSet lists them in increasing order.
	Written    int
	WrittenSet []int
	// Reads and Writes are total operation counts; ReadCounts and
	// WriteCounts break them down per register.
	Reads, Writes           uint64
	ReadCounts, WriteCounts []uint64
}

// SpaceTotals is the scalar slice of Usage: the live register-space
// gauges (cf. the paper's space measures, Θ(√n) one-shot vs Θ(n)
// long-lived) at the cost of one mutex acquisition — no slices copied.
type SpaceTotals struct {
	// Registers is the allocated array size (the budget).
	Registers int
	// Written is the number of distinct registers written so far — the
	// paper's "used" count.
	Written int
	// Reads and Writes are total operation counts.
	Reads, Writes uint64
}

// Stats are the object's lifetime traffic counters.
type Stats struct {
	// Calls is the number of successful GetTS calls.
	Calls uint64
	// Attaches is the number of sessions handed out.
	Attaches uint64
	// Reaped is the number of abandoned leases reclaimed by the
	// WithSessionTTL reaper (0 when no TTL is armed).
	Reaped uint64
	// ActiveSessions is the number of currently attached sessions.
	ActiveSessions int
}

// Session is one leased process id: the local, in-process implementation
// of SessionAPI. A session models one logical client — its GetTS and
// GetTSBatch calls must be sequential (issue them from one goroutine, or
// otherwise ordered); for parallelism attach more sessions. Detach and
// the read-only methods may be called from any goroutine once the
// operation stream has stopped. Sessions must be Detached when done so
// their process id can serve the next client.
//
// The hot path is lock-free: a GetTS is two atomic loads (detached flag,
// sequence number), the algorithm's register operations, and two atomic
// stores — no session mutex and no object-wide mutex, so sessions of the
// same object never serialize on SDK state, only on whatever registers
// the algorithm itself contends on.
type Session struct {
	obj  *Object
	pid  int
	seq0 int64 // the pid's seq at Attach; Calls() = seq − seq0

	// seq is this session's view of the pid's getTS count. It is atomic so
	// that read-only methods (Calls) and a late Detach race cleanly with
	// the operation stream; the stream itself must be sequential.
	seq      atomic.Int64
	detached atomic.Bool
}

var _ SessionAPI = (*Session)(nil)

// Pid returns the leased paper-process id (0 ≤ pid < Object.Procs). It is
// diagnostic: two sessions alive at the same time never share a pid, but
// ids are recycled across time.
func (s *Session) Pid() int { return s.pid }

// Calls returns the number of timestamps this session has taken.
func (s *Session) Calls() int { return int(s.seq.Load() - s.seq0) }

// Compare implements SessionAPI by delegating to the object's Compare. A
// local compare is a pure function of the two timestamps: the context is
// ignored and the error is always nil (both exist for wire symmetry).
func (s *Session) Compare(_ context.Context, t1, t2 Timestamp) (bool, error) {
	return s.obj.Compare(t1, t2), nil
}

// ready performs the per-call guards once per GetTS or per batch:
// detached, closed, context. The algorithms are wait-free, so a started
// call (or batch) always completes in a bounded number of its own steps;
// ctx is therefore checked on entry only.
func (s *Session) ready(ctx context.Context) error {
	if s.detached.Load() {
		return ErrDetached
	}
	select {
	case <-s.obj.closed:
		return ErrClosed
	default:
	}
	return ctx.Err()
}

// next issues one timestamp, advancing the session's sequence number. It
// does not touch o.calls; callers account for the whole batch.
func (s *Session) next() (Timestamp, error) {
	o := s.obj
	seq := s.seq.Load()
	if o.oneShot && seq > 0 {
		//tslint:allow hotpath cold failure path: a conforming one-shot client never re-calls
		return Timestamp{}, fmt.Errorf("tsspace: process %d already issued its timestamp: %w", s.pid, ErrOneShot)
	}
	ts, err := o.alg.GetTS(o.mems[s.pid], s.pid, int(seq))
	if err != nil {
		//tslint:allow hotpath algorithm failure path: an errored call has already left the zero-alloc contract
		return Timestamp{}, fmt.Errorf("tsspace: %s p%d getTS#%d: %w", o.info.Name, s.pid, seq, err)
	}
	s.seq.Store(seq + 1)
	return ts, nil
}

// GetTS performs one getTS() instance as this session's process. The
// sequence number the implementation contract requires is tracked in the
// session (seeded from the pid's slot at Attach and written back at
// Detach), surviving lease recycling without any shared lock.
//
//tslint:hotpath
func (s *Session) GetTS(ctx context.Context) (Timestamp, error) {
	if err := s.ready(ctx); err != nil {
		return Timestamp{}, err
	}
	ts, err := s.next()
	if err != nil {
		return Timestamp{}, err
	}
	s.obj.calls.Add(1)
	return ts, nil
}

// GetTSBatch fills dst with len(dst) timestamps issued back to back by
// this session's process: dst[i] happens-before dst[i+1], and the whole
// batch is ordered against any non-overlapping call anywhere on the
// object. It returns the number of timestamps issued and the error that
// cut the batch short (nil when the batch filled).
//
// The entry guards (detached, closed, ctx) run once for the whole batch
// and dst is caller-owned, so a batch performs zero allocations on top of
// the algorithm's register operations — the amortization the BENCH
// trajectory prices against batch size. An empty dst is a no-op.
//
//tslint:hotpath
func (s *Session) GetTSBatch(ctx context.Context, dst []Timestamp) (int, error) {
	if err := s.ready(ctx); err != nil {
		return 0, err
	}
	n := 0
	for n < len(dst) {
		ts, err := s.next()
		if err != nil {
			if n > 0 {
				s.obj.calls.Add(uint64(n))
			}
			return n, err
		}
		dst[n] = ts
		n++
	}
	if n > 0 {
		s.obj.calls.Add(uint64(n))
	}
	return n, nil
}

// Detach releases the session's process id, writing the session's
// sequence number back to the pid's slot so the next lease continues the
// call history. On long-lived objects the id immediately becomes leasable
// by the next Attach; on one-shot objects an id whose timestamp has been
// issued is retired instead (recycling it could never serve another
// GetTS), and retiring the last one trips ErrExhausted for future Attach
// calls. Detach is idempotent, but must not race a GetTS still in flight
// on this session (the session is one logical client; stop its operation
// stream first).
func (s *Session) Detach() error {
	if !s.detached.CompareAndSwap(false, true) {
		return nil
	}
	o := s.obj
	seq := s.seq.Load()
	o.slots[s.pid].seq = seq // ordered before the next lease by the channel send below
	o.mu.Lock()
	o.active--
	delete(o.sessions, s)
	if o.oneShot && seq > 0 {
		o.retired++
		if o.retired == o.procs {
			close(o.exhausted)
		}
		o.mu.Unlock()
		return nil
	}
	o.mu.Unlock()
	o.free <- s.pid // cannot block: capacity procs, ids are unique
	return nil
}
