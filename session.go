package tsspace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// Object is a shared timestamp object: a fixed namespace of n
// paper-processes whose ids are leased to Sessions by Attach and recycled
// by Detach. All methods are safe for concurrent use.
type Object struct {
	info    timestamp.Info
	alg     timestamp.Algorithm
	procs   int
	oneShot bool
	meter   *register.Meter // nil when metering is off
	mems    []register.Mem  // per-pid middleware stacks over one shared array
	free    chan int        // recyclable pids; capacity procs
	closed  chan struct{}   // closed by Close
	once    sync.Once

	mu        sync.Mutex
	seqs      []int         // per-pid getTS count, persists across leases
	retired   int           // one-shot pids that spent their call
	active    int           // currently attached sessions
	exhausted chan struct{} // one-shot only: closed when retired == procs

	calls    atomic.Uint64
	attaches atomic.Uint64
}

// Algorithm returns the registry name of the implementation backing the
// object.
func (o *Object) Algorithm() string { return o.info.Name }

// Procs returns n, the number of paper-processes.
func (o *Object) Procs() int { return o.procs }

// OneShot reports whether the object issues at most one timestamp per
// process id (and therefore at most n in total).
func (o *Object) OneShot() bool { return o.oneShot }

// Registers returns the size of the object's register array — the space
// the paper's theorems bound.
func (o *Object) Registers() int { return o.alg.Registers() }

// Compare implements the object's compare(t1, t2): true iff t1 is ordered
// before t2. For timestamps returned by this object it realizes the
// happens-before property of §2.
func (o *Object) Compare(t1, t2 Timestamp) bool { return o.alg.Compare(t1, t2) }

// Attach leases a free process id and returns a Session bound to it. When
// every id is leased it blocks until one is recycled, ctx is done, the
// object is closed, or — for one-shot objects — the timestamp budget is
// exhausted.
func (o *Object) Attach(ctx context.Context) (*Session, error) {
	select {
	case <-o.closed:
		return nil, ErrClosed
	default:
	}
	select {
	case pid := <-o.free:
		o.attaches.Add(1)
		o.mu.Lock()
		o.active++
		o.mu.Unlock()
		return &Session{obj: o, pid: pid}, nil
	case <-o.exhausted: // nil (blocks forever) unless one-shot
		return nil, fmt.Errorf("%w: all %d process slots have issued their timestamp", ErrExhausted, o.procs)
	case <-o.closed:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts the object down: subsequent Attach and GetTS calls report
// ErrClosed and blocked Attach calls wake up. Close is idempotent and
// does not wait for attached sessions.
func (o *Object) Close() error {
	o.once.Do(func() { close(o.closed) })
	return nil
}

// Usage reports the object's register-space footprint. The boolean is
// false when the object was built without WithMetering, in which case only
// Registers is populated.
func (o *Object) Usage() (Usage, bool) {
	if o.meter == nil {
		return Usage{Registers: o.alg.Registers()}, false
	}
	rep := o.meter.Report()
	return Usage{
		Registers:   rep.Registers,
		Written:     rep.Written,
		WrittenSet:  rep.WrittenSet,
		Reads:       rep.Reads,
		Writes:      rep.Writes,
		ReadCounts:  rep.ReadCounts,
		WriteCounts: rep.WriteCounts,
	}, true
}

// Stats returns the object's traffic counters.
func (o *Object) Stats() Stats {
	o.mu.Lock()
	active := o.active
	o.mu.Unlock()
	return Stats{
		Calls:          o.calls.Load(),
		Attaches:       o.attaches.Load(),
		ActiveSessions: active,
	}
}

// Usage is the register-space footprint of an object (cf. the paper's
// space measures: Θ(√n) one-shot vs Θ(n) long-lived).
type Usage struct {
	// Registers is the allocated array size (the budget).
	Registers int
	// Written is the number of distinct registers written so far;
	// WrittenSet lists them in increasing order.
	Written    int
	WrittenSet []int
	// Reads and Writes are total operation counts; ReadCounts and
	// WriteCounts break them down per register.
	Reads, Writes           uint64
	ReadCounts, WriteCounts []uint64
}

// Stats are the object's lifetime traffic counters.
type Stats struct {
	// Calls is the number of successful GetTS calls.
	Calls uint64
	// Attaches is the number of sessions handed out.
	Attaches uint64
	// ActiveSessions is the number of currently attached sessions.
	ActiveSessions int
}

// Session is one leased process id. A session serializes its own GetTS
// calls (it models one logical client); for parallelism attach more
// sessions. Sessions must be Detached when done so their process id can
// serve the next client.
type Session struct {
	obj *Object
	pid int

	mu       sync.Mutex
	detached bool
	calls    int
}

// Pid returns the leased paper-process id (0 ≤ pid < Object.Procs). It is
// diagnostic: two sessions alive at the same time never share a pid, but
// ids are recycled across time.
func (s *Session) Pid() int { return s.pid }

// Calls returns the number of timestamps this session has taken.
func (s *Session) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Compare is shorthand for the object's Compare.
func (s *Session) Compare(t1, t2 Timestamp) bool { return s.obj.Compare(t1, t2) }

// GetTS performs one getTS() instance as this session's process. The
// sequence number the implementation contract requires is tracked
// per-process inside the object, surviving lease recycling. ctx is
// checked on entry only: the algorithms are wait-free, so a started call
// always completes in a bounded number of its own steps.
func (s *Session) GetTS(ctx context.Context) (Timestamp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		return Timestamp{}, ErrDetached
	}
	o := s.obj
	select {
	case <-o.closed:
		return Timestamp{}, ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return Timestamp{}, err
	}
	o.mu.Lock()
	seq := o.seqs[s.pid]
	o.mu.Unlock()
	if o.oneShot && seq > 0 {
		return Timestamp{}, fmt.Errorf("tsspace: process %d already issued its timestamp: %w", s.pid, ErrOneShot)
	}
	ts, err := o.alg.GetTS(o.mems[s.pid], s.pid, seq)
	if err != nil {
		return Timestamp{}, fmt.Errorf("tsspace: %s p%d getTS#%d: %w", o.info.Name, s.pid, seq, err)
	}
	o.mu.Lock()
	o.seqs[s.pid]++
	o.mu.Unlock()
	o.calls.Add(1)
	s.calls++
	return ts, nil
}

// Detach releases the session's process id. On long-lived objects the id
// immediately becomes leasable by the next Attach; on one-shot objects an
// id whose timestamp has been issued is retired instead (recycling it
// could never serve another GetTS), and retiring the last one trips
// ErrExhausted for future Attach calls. Detach is idempotent.
func (s *Session) Detach() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		return nil
	}
	s.detached = true
	o := s.obj
	o.mu.Lock()
	o.active--
	if o.oneShot && o.seqs[s.pid] > 0 {
		o.retired++
		if o.retired == o.procs {
			close(o.exhausted)
		}
		o.mu.Unlock()
		return nil
	}
	o.mu.Unlock()
	o.free <- s.pid // cannot block: capacity procs, ids are unique
	return nil
}
