package tsspace_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tsspace"
)

// Abandon every lease without Detach: the TTL reaper must reclaim all of
// them, re-attach must succeed for the full namespace, and the sequence
// history must survive the reclamation (the re-leased pids continue their
// call counts, so the happens-before property holds across the crash).
func TestSessionTTLReclaimsAbandonedLeases(t *testing.T) {
	const n = 8
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("collect"),
		tsspace.WithProcs(n),
		tsspace.WithSessionTTL(50*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	ctx := context.Background()

	first := make([]tsspace.Timestamp, n)
	abandoned := make([]*tsspace.Session, n)
	for i := 0; i < n; i++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if first[i], err = s.GetTS(ctx); err != nil {
			t.Fatal(err)
		}
		abandoned[i] = s // crash: never Detach
	}

	// All pids are leased and abandoned; a fresh Attach can only succeed
	// once the reaper reclaims one.
	attachCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	second := make([]tsspace.Timestamp, n)
	for i := 0; i < n; i++ {
		s, err := obj.Attach(attachCtx)
		if err != nil {
			t.Fatalf("re-attach %d after abandonment: %v", i, err)
		}
		if second[i], err = s.GetTS(ctx); err != nil {
			t.Fatal(err)
		}
		s.Detach()
	}

	// Happens-before across the reclamation: every pre-crash timestamp
	// completed before every post-reclaim call was invoked.
	for i := range first {
		for j := range second {
			if !obj.Compare(first[i], second[j]) {
				t.Errorf("Compare(first[%d]=%v, second[%d]=%v) = false across reaped lease", i, first[i], j, second[j])
			}
		}
	}

	if got := obj.Stats().Reaped; got < n {
		t.Errorf("Stats().Reaped = %d, want ≥ %d", got, n)
	}
	// The abandoned handles are dead, not wedged: their next call reports
	// ErrDetached.
	if _, err := abandoned[0].GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
		t.Errorf("abandoned session GetTS = %v, want ErrDetached", err)
	}
}

// A busy session must never be reaped: activity is what the reaper
// watches, not attachment age.
func TestSessionTTLSparesBusySessions(t *testing.T) {
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("collect"),
		tsspace.WithProcs(2),
		tsspace.WithSessionTTL(40*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	ctx := context.Background()
	s, err := obj.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := s.GetTS(ctx); err != nil {
			t.Fatalf("busy session reaped: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := obj.Stats().Reaped; got != 0 {
		t.Errorf("Stats().Reaped = %d for a busy session, want 0", got)
	}
	s.Detach()
}

// Local crash-churn under the race detector: concurrent workers abandon
// sessions mid-stream while others attach; the reaper keeps the namespace
// circulating and the object's counters stay coherent.
func TestSessionTTLCrashChurnRace(t *testing.T) {
	const n = 4
	const workers = 16
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("collect"),
		tsspace.WithProcs(n),
		tsspace.WithSessionTTL(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s, err := obj.Attach(ctx)
			if err != nil {
				t.Errorf("worker %d attach: %v", w, err)
				return
			}
			if _, err := s.GetTS(ctx); err != nil {
				t.Errorf("worker %d getTS: %v", w, err)
			}
			// Half the workers crash (abandon), half detach cleanly.
			if w%2 == 0 {
				s.Detach()
			}
		}(w)
	}
	wg.Wait()

	// Every abandoned lease must come back within a few TTLs.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			t.Fatalf("post-churn attach %d: %v", i, err)
		}
		defer s.Detach()
	}
}
