package tsspace_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tsspace"
)

// A long-lived object with default settings: attach a session, take
// timestamps, compare them.
func ExampleNew() {
	obj, err := tsspace.New() // long-lived "collect" object, 16 processes
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	ctx := context.Background()
	s, err := obj.Attach(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Detach()

	t1, _ := s.GetTS(ctx)
	t2, _ := s.GetTS(ctx)
	fmt.Println(obj.Compare(t1, t2), obj.Compare(t2, t1))
	// Output: true false
}

// Batches amortize the session plumbing: one GetTSBatch fills a
// caller-owned slice with back-to-back timestamps — each happens-before
// the next — without allocating.
func ExampleSession_GetTSBatch() {
	obj, err := tsspace.New() // long-lived "collect" object, 16 processes
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	ctx := context.Background()
	s, err := obj.Attach(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Detach()

	batch := make([]tsspace.Timestamp, 4)
	n, err := s.GetTSBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	ordered := true
	for i := 0; i+1 < n; i++ {
		ordered = ordered && obj.Compare(batch[i], batch[i+1])
	}
	fmt.Println(n, ordered)
	// Output: 4 true
}

// A one-shot object issues one timestamp per attached process: n sessions
// get n totally ordered timestamps, and the budget is enforced with typed
// errors.
func ExampleSession_GetTS() {
	obj, err := tsspace.New(tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(4))
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	ctx := context.Background()
	var prev tsspace.Timestamp
	for i := 0; i < 4; i++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := s.GetTS(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 {
			fmt.Println(obj.Compare(prev, ts))
		}
		prev = ts
		s.Detach()
	}
	_, err = obj.Attach(ctx)
	fmt.Println(errors.Is(err, tsspace.ErrExhausted))
	// Output:
	// true
	// true
	// true
	// true
}
