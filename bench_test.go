// Package tsspace_test is the benchmark harness of the reproduction: one
// benchmark per experiment in EXPERIMENTS.md (E1–E10), each regenerating
// the corresponding table row or figure series of the paper via
// b.ReportMetric. Every experiment runs through internal/engine — the
// benchmarks only pick an Algorithm × World × Workload combination and
// read the engine's report. Run with:
//
//	go test -bench=. -benchmem
package tsspace_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"tsspace"
	"tsspace/internal/adversary"
	"tsspace/internal/engine"
	"tsspace/internal/lowerbound"
	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all" // rosters resolve through the registry
	"tsspace/internal/timestamp/sqrt"  // sqrt-specific experiment knobs (tracer, ablations)
)

// run is the benchmark-side shorthand for one engine run.
func run(b *testing.B, cfg engine.Config[timestamp.Timestamp]) *engine.Report[timestamp.Timestamp] {
	b.Helper()
	rep, err := engine.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// E1 — Theorem 1.1: the long-lived construction reaches a
// (3,⌊n/2⌋)-configuration covering ≥ ⌊n/6⌋ registers.
func BenchmarkE1_LongLivedLowerBound(b *testing.B) {
	for _, n := range []int{60, 600, 6000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var covered, bound int
			for i := 0; i < b.N; i++ {
				rep, err := engine.LongLivedCover(n, lowerbound.FirstFit{})
				if err != nil {
					b.Fatal(err)
				}
				covered, bound = rep.Covered, rep.Bound
			}
			b.ReportMetric(float64(covered), "registersCovered")
			b.ReportMetric(float64(bound), "paperBound")
		})
	}
}

// E2 — Theorem 1.2: the one-shot construction covers
// j_last ≥ ⌊√2n⌋ − log₂n − 2 registers, with Case 2 occurring ≤ log₂n
// times.
func BenchmarkE2_OneShotLowerBound(b *testing.B) {
	for _, n := range []int{50, 500, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rep *lowerbound.OneShotReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = engine.OneShotCover(n, lowerbound.LowestFirst{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.FinalJ), "registersCovered")
			b.ReportMetric(float64(rep.Bound), "paperBound")
			b.ReportMetric(float64(rep.M), "gridWidth_m")
			b.ReportMetric(float64(rep.Case2Count), "case2")
		})
	}
}

// E3 — Theorem 1.3 / §6: space of Algorithm 4 across schedules: the
// sequential √(2M) series, the stale-release adversary, and the ⌈2√M⌉
// budget.
func BenchmarkE3_SqrtSpace(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var seq int
			var adv *adversary.Result
			for i := 0; i < b.N; i++ {
				var err error
				seq, err = adversary.MeasureSequential(n)
				if err != nil {
					b.Fatal(err)
				}
				adv, err = adversary.StaleRelease(n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(seq), "registersSequential")
			b.ReportMetric(float64(adv.Written), "registersAdversarial")
			b.ReportMetric(float64(timestamp.MustNew("sqrt", n).Registers()), "budget_2sqrtM")
		})
	}
}

// E4 — §5: the simple algorithm writes exactly ⌈n/2⌉ registers.
func BenchmarkE4_SimpleSpace(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var written int
			for i := 0; i < b.N; i++ {
				rep := run(b, engine.Config[timestamp.Timestamp]{
					Alg: timestamp.MustNew("simple", n), World: engine.Atomic, N: n, Workload: engine.OneShot{},
				})
				written = rep.Space.Written
			}
			b.ReportMetric(float64(written), "registersWritten")
			b.ReportMetric(float64((n+1)/2), "paperBound")
		})
	}
}

// E5 — Figure 1: the first construction step reaches the stepped diagonal
// at column j₁.
func BenchmarkE5_Figure1(b *testing.B) {
	const n = 200
	var j1, m int
	for i := 0; i < b.N; i++ {
		rep, err := engine.OneShotCover(n, lowerbound.LowestFirst{})
		if err != nil {
			b.Fatal(err)
		}
		first := rep.Steps[0]
		if lowerbound.DiagonalColumn(first.Ordered(), rep.M) == 0 {
			b.Fatal("no diagonal column in C1")
		}
		j1, m = first.J, rep.M
	}
	b.ReportMetric(float64(j1), "diagonalColumn_j1")
	b.ReportMetric(float64(m), "gridWidth_m")
}

// E6 — Figure 2: the scripted adversary exhibits a Case 2 step (ν=1 after
// two block writes, decrementing ℓ).
func BenchmarkE6_Figure2(b *testing.B) {
	var case2 int
	for i := 0; i < b.N; i++ {
		script := &lowerbound.Scripted{
			Moves: []int{
				0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1,
				2, 2, 2, 2, 3, 3, 3, 4, 4, 2,
			},
			Fallback: lowerbound.HighestFirst{},
		}
		rep, err := engine.OneShotCoverQ(32, script, true)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Case2Count == 0 {
			b.Fatal("scripted Case 2 did not occur")
		}
		case2 = rep.Case2Count
	}
	b.ReportMetric(float64(case2), "case2Steps")
}

// E7 — Claims 6.8–6.13: invalidation writes stay ≤ 2M and completed phases
// ϕ carry exactly ϕ invalidation writes, measured with the phase tracer on
// the engine's phased workload (batches of 3 processes interleave
// randomly; full uniform concurrency would collapse everyone into phase 1
// and prove nothing).
func BenchmarkE7_InvalidationWrites(b *testing.B) {
	for _, n := range []int{18, 66} {
		b.Run(fmt.Sprintf("M=%d", n), func(b *testing.B) {
			var inv, phases int
			for i := 0; i < b.N; i++ {
				alg := sqrt.New(n)
				tracer := &sqrt.ChronoTracer{}
				alg.SetTracer(tracer)
				rep := run(b, engine.Config[timestamp.Timestamp]{
					Alg:      alg,
					World:    engine.Simulated,
					N:        n,
					Workload: engine.Phased{GroupSize: 3},
					Seed:     int64(i) + 1,
				})
				if err := rep.Verify(alg.Compare); err != nil {
					b.Fatal(err)
				}
				prep, err := sqrt.AnalyzePhases(tracer.Events())
				if err != nil {
					b.Fatal(err)
				}
				if err := sqrt.VerifyCompletedPhases(prep); err != nil {
					b.Fatal(err)
				}
				if prep.InvalidationWrites > 2*n {
					b.Fatalf("invalidation writes %d > 2M = %d", prep.InvalidationWrites, 2*n)
				}
				inv, phases = prep.InvalidationWrites, prep.Phases
			}
			b.ReportMetric(float64(inv), "invalidationWrites")
			b.ReportMetric(float64(2*n), "bound_2M")
			b.ReportMetric(float64(phases), "phases")
		})
	}
}

// E8 — the headline gap: registers written by each implementation as n
// grows (Θ(√n) one-shot vs Θ(n) long-lived).
func BenchmarkE8_SpaceGap(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		var algs []timestamp.Algorithm
		for _, name := range []string{"collect", "dense", "simple", "sqrt"} {
			algs = append(algs, timestamp.MustNew(name, n))
		}
		for _, alg := range algs {
			b.Run(fmt.Sprintf("n=%d/%s", n, alg.Name()), func(b *testing.B) {
				var wl engine.Workload = engine.OneShot{}
				if !alg.OneShot() {
					wl = engine.LongLived{CallsPerProc: 2}
				}
				var written int
				for i := 0; i < b.N; i++ {
					rep := run(b, engine.Config[timestamp.Timestamp]{
						Alg: alg, World: engine.Atomic, N: n, Workload: wl,
					})
					written = rep.Space.Written
				}
				b.ReportMetric(float64(written), "registersWritten")
				b.ReportMetric(float64(lowerbound.LongLivedLower(n)), "LB_longlived")
				b.ReportMetric(float64(lowerbound.OneShotLower(n)), "LB_oneshot")
			})
		}
	}
}

// E9 — §7: the M-bounded generalization: M total calls spread over fewer
// processes still fit in ⌈2√M⌉ registers.
func BenchmarkE9_MBounded(b *testing.B) {
	const procs, callsPer = 8, 32 // M = 256
	m := procs * callsPer
	var written int
	for i := 0; i < b.N; i++ {
		alg := sqrt.NewBounded(m)
		rep := run(b, engine.Config[timestamp.Timestamp]{
			Alg: alg, World: engine.Atomic, N: procs,
			Workload: engine.LongLived{CallsPerProc: callsPer},
		})
		if rep.Space.Written > alg.Registers()-1 {
			b.Fatalf("wrote %d registers, budget %d", rep.Space.Written, alg.Registers())
		}
		written = rep.Space.Written
	}
	b.ReportMetric(float64(written), "registersWritten")
	b.ReportMetric(float64(sqrt.RegistersFor(m)), "budget")
}

// E10 — throughput under real goroutine contention (engineering sanity,
// not from the paper), on both the flat and the cache-line-padded register
// arrays.
func BenchmarkGetTS_Collect(b *testing.B) {
	benchThroughput(b, func(n int) timestamp.Algorithm { return timestamp.MustNew("collect", n) })
}

// BenchmarkGetTS_Dense measures the n−1-register long-lived baseline.
func BenchmarkGetTS_Dense(b *testing.B) {
	benchThroughput(b, func(n int) timestamp.Algorithm { return timestamp.MustNew("dense", n) })
}

func benchThroughput(b *testing.B, mk func(int) timestamp.Algorithm) {
	const callsPer = 64
	for _, n := range []int{4, 32} {
		for _, sharded := range []bool{false, true} {
			mem := "flat"
			if sharded {
				mem = "sharded"
			}
			b.Run(fmt.Sprintf("n=%d/%s", n, mem), func(b *testing.B) {
				alg := mk(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Unmetered: the shared meter would serialize the very
					// contention this experiment measures.
					run(b, engine.Config[timestamp.Timestamp]{
						Alg: alg, World: engine.Atomic, N: n,
						Workload:  engine.LongLived{CallsPerProc: callsPer},
						Sharded:   sharded,
						Unmetered: true,
					})
				}
				perCall(b, n*callsPer)
			})
		}
	}
}

// perCall reports latency and throughput per getTS call for benchmarks
// whose unit of iteration is a whole engine run of callsPerRun calls.
func perCall(b *testing.B, callsPerRun int) {
	calls := float64(b.N) * float64(callsPerRun)
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(calls/secs, "getTS/s")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/calls, "ns/getTS")
}

// BenchmarkGetTS_SqrtOneShot measures one-shot issue latency: each engine
// run issues the M timestamps of a fresh object sequentially.
func BenchmarkGetTS_SqrtOneShot(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(b, engine.Config[timestamp.Timestamp]{
					Alg: timestamp.MustNew("sqrt", n), World: engine.Atomic, N: n,
					Workload: engine.Sequential{}, Unmetered: true,
				})
			}
			perCall(b, n)
		})
	}
}

// BenchmarkGetTS_Simple measures one-shot issue latency of the §5
// algorithm.
func BenchmarkGetTS_Simple(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(b, engine.Config[timestamp.Timestamp]{
					Alg: timestamp.MustNew("simple", n), World: engine.Atomic, N: n,
					Workload: engine.Sequential{}, Unmetered: true,
				})
			}
			perCall(b, n)
		})
	}
}

// BenchmarkSession_GetTS_Parallel measures the public SDK's hot path under
// real parallel sessions: attach once per worker, then GetTS back to back.
// Unlike BenchmarkGetTS_* (one engine run per iteration), the unit of
// iteration here is a single getTS call, so ns/op and allocs/op read
// directly as per-call costs — the numbers the recorded trajectory tracks.
func BenchmarkSession_GetTS_Parallel(b *testing.B) {
	ctx := context.Background()
	for _, alg := range []string{"collect", "dense"} {
		for _, sharded := range []bool{false, true} {
			mem := "flat"
			if sharded {
				mem = "sharded"
			}
			b.Run(fmt.Sprintf("%s/%s", alg, mem), func(b *testing.B) {
				// One paper-process per parallel worker, so Attach never
				// blocks regardless of GOMAXPROCS.
				procs := runtime.GOMAXPROCS(0) * 2
				opts := []tsspace.Option{tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs)}
				if sharded {
					opts = append(opts, tsspace.WithSharded())
				}
				obj, err := tsspace.New(opts...)
				if err != nil {
					b.Fatal(err)
				}
				defer obj.Close()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					s, err := obj.Attach(ctx)
					if err != nil {
						b.Error(err)
						return
					}
					defer s.Detach()
					for pb.Next() {
						if _, err := s.GetTS(ctx); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkSession_GetTSBatch prices batch amortization on the SDK hot
// path: one op is one GetTSBatch of the given size into a caller-owned
// buffer, under real parallel sessions on flat and sharded scalar
// arrays. allocs/op must be 0 at every size (the v2 acceptance bar); the
// ns/ts metric is the per-timestamp cost the EXPERIMENTS.md E13 table
// tracks — batch=1 pays the full per-call guard tax, batch=256 amortizes
// it to noise, and the register accesses per timestamp (the paper's
// measure) are identical at every size.
func BenchmarkSession_GetTSBatch(b *testing.B) {
	ctx := context.Background()
	for _, size := range []int{1, 16, 256} {
		for _, sharded := range []bool{false, true} {
			mem := "flat"
			if sharded {
				mem = "sharded"
			}
			b.Run(fmt.Sprintf("batch=%d/%s", size, mem), func(b *testing.B) {
				procs := runtime.GOMAXPROCS(0) * 2
				opts := []tsspace.Option{tsspace.WithProcs(procs)}
				if sharded {
					opts = append(opts, tsspace.WithSharded())
				}
				obj, err := tsspace.New(opts...)
				if err != nil {
					b.Fatal(err)
				}
				defer obj.Close()
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					s, err := obj.Attach(ctx)
					if err != nil {
						b.Error(err)
						return
					}
					defer s.Detach()
					buf := make([]tsspace.Timestamp, size)
					for pb.Next() {
						if _, err := s.GetTSBatch(ctx, buf); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(size)), "ns/ts")
			})
		}
	}
}

// Ablation — the line-13 scan's equality strategy: the paper's
// value-equality double collect (sound by Claim 6.1(b)) vs the
// version-stamped variant (sound universally). Same behaviour, different
// equality cost.
func BenchmarkAblationScan(b *testing.B) {
	for _, versioned := range []bool{false, true} {
		name := "value-equality"
		if versioned {
			name = "versioned"
		}
		b.Run(name, func(b *testing.B) {
			const n = 256
			alg := sqrt.New(n)
			alg.UseVersionedScan(versioned)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(b, engine.Config[timestamp.Timestamp]{
					Alg: alg, World: engine.Atomic, N: n,
					Workload: engine.Sequential{}, Unmetered: true,
				})
			}
			perCall(b, n)
		})
	}
}

// Ablation — the line 10–11 repair's write overhead: sequential executions
// never exercise the repair, so both variants write identically; the
// interesting comparison is steps under contention, where only the
// repaired variant is correct (see TestScenario61BrokenVariantViolates).
func BenchmarkAblationRepairWrites(b *testing.B) {
	const n = 256
	for _, repair := range []bool{true, false} {
		name := "with-repair"
		alg := sqrt.NewBounded(n)
		if !repair {
			name = "without-repair"
			alg = sqrt.NewWithoutRepair(n)
		}
		b.Run(name, func(b *testing.B) {
			var writes uint64
			for i := 0; i < b.N; i++ {
				rep := run(b, engine.Config[timestamp.Timestamp]{
					Alg: alg, World: engine.Atomic, N: n,
					Workload: engine.Sequential{},
				})
				writes = rep.Space.Writes
			}
			b.ReportMetric(float64(writes), "totalWrites")
		})
	}
}
