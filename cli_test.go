// CLI smoke tests: build and run each command end to end, asserting the
// headline artifacts appear in the output. These pin the user-facing
// surface of the reproduction (the tables and figures EXPERIMENTS.md
// records).
package tsspace_test

import (
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLITsspace(t *testing.T) {
	out := runCmd(t, "./cmd/tsspace", "-n", "16,64", "-advcap", "64")
	for _, want := range []string{"E8", "E3/E4", "⌈2√n⌉", "16", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("tsspace output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITscoverFigures(t *testing.T) {
	out := runCmd(t, "./cmd/tscover", "-fig", "1", "-n", "50")
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "*") {
		t.Errorf("figure 1 output malformed:\n%s", out)
	}
	out = runCmd(t, "./cmd/tscover", "-fig", "2")
	if !strings.Contains(out, "Case 2") {
		t.Errorf("figure 2 output missing Case 2:\n%s", out)
	}
}

func TestCLITscoverConstructions(t *testing.T) {
	out := runCmd(t, "./cmd/tscover", "-construct", "oneshot", "-n", "100")
	if !strings.Contains(out, "Theorem 1.2") || !strings.Contains(out, "✓") {
		t.Errorf("one-shot construction output malformed:\n%s", out)
	}
	out = runCmd(t, "./cmd/tscover", "-construct", "longlived", "-n", "30")
	if !strings.Contains(out, "Theorem 1.1") || !strings.Contains(out, "⌊n/6⌋") {
		t.Errorf("long-lived construction output malformed:\n%s", out)
	}
}

func TestCLITscoverPhases(t *testing.T) {
	out := runCmd(t, "./cmd/tscover", "-phases", "-n", "24")
	if !strings.Contains(out, "Claim 6.13") || !strings.Contains(out, "phase") {
		t.Errorf("phases output malformed:\n%s", out)
	}
}

func TestCLITscheck(t *testing.T) {
	out := runCmd(t, "./cmd/tscheck", "-n", "3", "-visits", "100", "-samples", "10", "-reps", "2")
	if !strings.Contains(out, "all checks passed") {
		t.Errorf("tscheck did not pass:\n%s", out)
	}
}

func TestCLITscheckExplore(t *testing.T) {
	out := runCmd(t, "./cmd/tscheck", "-explore", "-exploren", "2", "-compare", "-fuzz", "10", "-fuzzn", "4")
	for _, want := range []string{
		"all checks passed",
		"sleep-pruned",
		"E11", // the reduction table
		"not simulable; ran atomic stress instead", // fas rerouted
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tscheck -explore output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITscheckMutant(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "./cmd/tscheck", "-mutant", "-cexdir", dir)
	for _, want := range []string{"mutant caught", "step witness", "counterexample written", "all checks passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("tscheck -mutant output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITstrace(t *testing.T) {
	out := runCmd(t, "./cmd/tstrace", "-alg", "collect", "-n", "3", "-calls", "2", "-seed", "4")
	for _, want := range []string{"p0", "timestamps returned", "verified ✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("tstrace output missing %q:\n%s", want, out)
		}
	}
}

func TestCLITstraceWorkloads(t *testing.T) {
	out := runCmd(t, "./cmd/tstrace", "-alg", "dense", "-n", "4", "-calls", "2",
		"-workload", "churn", "-width", "2", "-seed", "2")
	if !strings.Contains(out, "churn/width-2") || !strings.Contains(out, "verified ✓") {
		t.Errorf("churn trace malformed:\n%s", out)
	}
	out = runCmd(t, "./cmd/tstrace", "-alg", "collect", "-n", "2",
		"-schedule", "0,0,0,1,1,1,0,1")
	if !strings.Contains(out, "adversarial/8-steps") || !strings.Contains(out, "verified ✓") {
		t.Errorf("scheduled trace malformed:\n%s", out)
	}
}

func TestCLIExamples(t *testing.T) {
	for _, ex := range []string{"quickstart", "eventlog", "fcfs", "renaming", "phases"} {
		out := runCmd(t, "./examples/"+ex)
		if len(out) < 50 {
			t.Errorf("example %s produced no meaningful output:\n%s", ex, out)
		}
		if strings.Contains(strings.ToLower(out), "violat") || strings.Contains(out, "panic") {
			t.Errorf("example %s reported a problem:\n%s", ex, out)
		}
	}
}

// TestCLITsserved starts the daemon on a free port, drives it with its own
// -smoke client mode (batched /getts + pairwise /compare + /metrics), and
// shuts it down.
func TestCLITsserved(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	bin := filepath.Join(t.TempDir(), "tsserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/tsserved").CombinedOutput(); err != nil {
		t.Fatalf("build tsserved: %v\n%s", err, out)
	}
	daemon := exec.Command(bin, "-addr", addr, "-alg", "collect", "-procs", "8")
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp, err := http.Get(url + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not become healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}

	out, err := exec.Command(bin, "-smoke", url).CombinedOutput()
	if err != nil {
		t.Fatalf("smoke: %v\n%s", err, out)
	}
	for _, want := range []string{"strictly ordered", "tsserved smoke ok"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}
}
