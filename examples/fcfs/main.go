// FCFS: first-come-first-served request ordering — the classical doorway
// application of timestamps from the paper's introduction (Lamport's
// bakery, Ricart–Agrawala). Each request takes a timestamp in its doorway;
// the dispatcher serves requests in compare() order. The FCFS guarantee is
// exactly the happens-before property: if request A's doorway completes
// before request B's begins, A is served before B. The doorway traffic is
// the engine's long-lived workload: every client requests repeatedly under
// full contention.
//
// Run with:
//
//	go run ./examples/fcfs
package main

import (
	"fmt"
	"log"
	"sort"

	"tsspace/internal/engine"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
)

func main() {
	const clients = 6
	const rounds = 3

	alg := collect.New(clients) // long-lived: clients request repeatedly

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        clients,
		Workload: engine.LongLived{CallsPerProc: rounds},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The dispatcher serves in timestamp order. Each event is one doorway:
	// (client, round, timestamp).
	queue := rep.Events
	sort.Slice(queue, func(i, j int) bool { return alg.Compare(queue[i].Val, queue[j].Val) })

	fmt.Printf("served %d requests from %d clients FCFS via %d registers:\n\n",
		len(queue), clients, alg.Registers())
	for i, q := range queue {
		fmt.Printf("  %2d. %v client %d round %d\n", i+1, q.Val, q.Pid, q.Seq)
	}

	// FCFS check: a client's own requests must be served in round order
	// (each round's doorway happens before the next round's).
	lastRound := make(map[int]int)
	for _, q := range queue {
		if prev, ok := lastRound[q.Pid]; ok && q.Seq < prev {
			log.Fatalf("FCFS violated: client %d round %d served after round %d", q.Pid, q.Seq, prev)
		}
		lastRound[q.Pid] = q.Seq
	}
	fmt.Println("\nper-client FCFS order verified")
}
