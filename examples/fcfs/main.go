// FCFS: first-come-first-served request ordering — the classical doorway
// application of timestamps from the paper's introduction (Lamport's
// bakery, Ricart–Agrawala). Each request takes a timestamp in its doorway;
// the dispatcher serves requests in compare() order. The FCFS guarantee is
// exactly the happens-before property: if request A's doorway completes
// before request B's begins, A is served before B. The doorway traffic
// goes through the public SDK: each client holds one session on a
// long-lived "collect" object and requests repeatedly under full
// contention.
//
// Run with:
//
//	go run ./examples/fcfs
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"tsspace"
)

// request is one doorway: (client, round, timestamp).
type request struct {
	client, round int
	ts            tsspace.Timestamp
}

func main() {
	const clients = 6
	const rounds = 3

	obj, err := tsspace.New(tsspace.WithAlgorithm("collect"), tsspace.WithProcs(clients))
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	ctx := context.Background()
	queue := make([]request, 0, clients*rounds)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := obj.Attach(ctx) // the client's doorway session
			if err != nil {
				log.Fatal(err)
			}
			defer s.Detach()
			for r := 0; r < rounds; r++ {
				ts, err := s.GetTS(ctx)
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				queue = append(queue, request{client: c, round: r, ts: ts})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// The dispatcher serves in timestamp order.
	sort.Slice(queue, func(i, j int) bool { return obj.Compare(queue[i].ts, queue[j].ts) })

	fmt.Printf("served %d requests from %d clients FCFS via %d registers:\n\n",
		len(queue), clients, obj.Registers())
	for i, q := range queue {
		fmt.Printf("  %2d. %v client %d round %d\n", i+1, q.ts, q.client, q.round)
	}

	// FCFS check: a client's own requests must be served in round order
	// (each round's doorway happens before the next round's).
	lastRound := make(map[int]int)
	for _, q := range queue {
		if prev, ok := lastRound[q.client]; ok && q.round < prev {
			log.Fatalf("FCFS violated: client %d round %d served after round %d", q.client, q.round, prev)
		}
		lastRound[q.client] = q.round
	}
	fmt.Println("\nper-client FCFS order verified")
}
