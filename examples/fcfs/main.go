// FCFS: first-come-first-served request ordering — the classical doorway
// application of timestamps from the paper's introduction (Lamport's
// bakery, Ricart–Agrawala). Each request takes a timestamp in its doorway;
// the dispatcher serves requests in compare() order. The FCFS guarantee is
// exactly the happens-before property: if request A's doorway completes
// before request B's begins, A is served before B.
//
// Run with:
//
//	go run ./examples/fcfs
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
)

type request struct {
	client  int
	round   int
	ts      timestamp.Timestamp
	doorway time.Time
}

func main() {
	const clients = 6
	const rounds = 3

	alg := collect.New(clients) // long-lived: clients request repeatedly
	mem := register.NewMeter(timestamp.NewMem(alg))

	var (
		mu    sync.Mutex
		queue []request
		wg    sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Doorway: take a timestamp. This is the only shared-memory
				// communication the clients perform.
				ts, err := alg.GetTS(mem, c, r)
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				mu.Lock()
				queue = append(queue, request{c, r, ts, time.Now()})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// The dispatcher serves in timestamp order.
	sort.Slice(queue, func(i, j int) bool { return alg.Compare(queue[i].ts, queue[j].ts) })

	fmt.Printf("served %d requests from %d clients FCFS via %d registers:\n\n",
		len(queue), clients, alg.Registers())
	for i, q := range queue {
		fmt.Printf("  %2d. %v client %d round %d\n", i+1, q.ts, q.client, q.round)
	}

	// FCFS check: a client's own requests must be served in round order
	// (each round's doorway happens before the next round's).
	lastRound := make(map[int]int)
	for _, q := range queue {
		if prev, ok := lastRound[q.client]; ok && q.round < prev {
			log.Fatalf("FCFS violated: client %d round %d served after round %d", q.client, q.round, prev)
		}
		lastRound[q.client] = q.round
	}
	fmt.Println("\nper-client FCFS order verified")
}
