// Renaming: order-based renaming from one-shot timestamps — one of the
// "inherently one-time" applications motivating the one-shot object (§1,
// §3 of the paper; cf. Attiya–Fouren adaptive renaming). Each process with
// a large original identifier attaches an SDK session and takes one
// timestamp; its new name is the rank of its timestamp among all issued
// ones. The object's one-shot budget is the renaming capacity: an
// (n+1)-th client is refused with the typed exhaustion error.
//
// Because concurrent getTS() calls may receive equal timestamps (the
// specification only constrains happens-before ordered pairs), ranks are
// made unique by breaking ties with the original identifier — the standard
// trick (also used by the bakery algorithm's (number, id) pairs).
//
// Run with:
//
//	go run ./examples/renaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"tsspace"
)

func main() {
	const n = 10

	// Processes arrive with sparse original ids from a huge namespace.
	rng := rand.New(rand.NewSource(7))
	origIDs := make([]int, n)
	seen := map[int]bool{}
	for i := range origIDs {
		for {
			id := rng.Intn(1 << 30)
			if !seen[id] {
				seen[id] = true
				origIDs[i] = id
				break
			}
		}
	}

	// The §5 simple one-shot object: ⌈n/2⌉ two-writer registers. The SDK's
	// register stack enforces the algorithm's two-writer discipline.
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("simple"),
		tsspace.WithProcs(n),
		tsspace.WithMetering(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()
	fmt.Printf("renaming %d processes through %d registers (⌈n/2⌉)\n\n", n, obj.Registers())

	type slot struct {
		orig int
		ts   tsspace.Timestamp
	}
	ctx := context.Background()
	slots := make([]slot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := obj.Attach(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer s.Detach()
			ts, err := s.GetTS(ctx)
			if err != nil {
				log.Fatal(err)
			}
			slots[i] = slot{origIDs[i], ts}
		}(i)
	}
	wg.Wait()

	// New name = rank by (timestamp, original id).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := slots[order[a]], slots[order[b]]
		if obj.Compare(sa.ts, sb.ts) {
			return true
		}
		if obj.Compare(sb.ts, sa.ts) {
			return false
		}
		return sa.orig < sb.orig // concurrent tie: break by original id
	})

	names := make(map[int]int) // orig -> new name
	for rank, idx := range order {
		names[slots[idx].orig] = rank + 1
	}

	fmt.Println("orig id      → timestamp → new name")
	for _, idx := range order {
		s := slots[idx]
		fmt.Printf("  %10d → %-8v → %d\n", s.orig, s.ts, names[s.orig])
	}

	// The target namespace is exactly [1, n]: tight renaming.
	used := map[int]bool{}
	for _, name := range names {
		if name < 1 || name > n || used[name] {
			log.Fatalf("renaming broken: name %d", name)
		}
		used[name] = true
	}
	u, _ := obj.Usage()
	fmt.Printf("\nall %d names unique in [1, %d]; registers written: %d\n", n, n, u.Written)

	// One-shot means one-time: the names are spent.
	if _, err := obj.Attach(ctx); errors.Is(err, tsspace.ErrExhausted) {
		fmt.Println("an 11th client is refused: the one-shot namespace is exhausted")
	}
}
