// Renaming: order-based renaming from one-shot timestamps — one of the
// "inherently one-time" applications motivating the one-shot object (§1,
// §3 of the paper; cf. Attiya–Fouren adaptive renaming). Each process with
// a large original identifier takes one timestamp through the engine's
// one-shot workload; its new name is the rank of its timestamp among all
// issued ones.
//
// Because concurrent getTS() calls may receive equal timestamps (the
// specification only constrains happens-before ordered pairs), ranks are
// made unique by breaking ties with the original identifier — the standard
// trick (also used by the bakery algorithm's (number, id) pairs).
//
// Run with:
//
//	go run ./examples/renaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"tsspace/internal/engine"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/simple"
)

func main() {
	const n = 10

	// Processes arrive with sparse original ids from a huge namespace.
	rng := rand.New(rand.NewSource(7))
	origIDs := make([]int, n)
	seen := map[int]bool{}
	for i := range origIDs {
		for {
			id := rng.Intn(1 << 30)
			if !seen[id] {
				seen[id] = true
				origIDs[i] = id
				break
			}
		}
	}

	// The §5 simple one-shot object: ⌈n/2⌉ two-writer registers. The engine
	// enforces the algorithm's two-writer discipline during the run.
	alg := simple.New(n)
	fmt.Printf("renaming %d processes through %d registers (⌈n/2⌉)\n\n", n, alg.Registers())

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        n,
		Workload: engine.OneShot{},
	})
	if err != nil {
		log.Fatal(err)
	}

	type slot struct {
		orig int
		ts   timestamp.Timestamp
	}
	slots := make([]slot, n)
	for _, ev := range rep.Events {
		slots[ev.Pid] = slot{origIDs[ev.Pid], ev.Val}
	}

	// New name = rank by (timestamp, original id).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := slots[order[a]], slots[order[b]]
		if alg.Compare(sa.ts, sb.ts) {
			return true
		}
		if alg.Compare(sb.ts, sa.ts) {
			return false
		}
		return sa.orig < sb.orig // concurrent tie: break by original id
	})

	names := make(map[int]int) // orig -> new name
	for rank, idx := range order {
		names[slots[idx].orig] = rank + 1
	}

	fmt.Println("orig id      → timestamp → new name")
	for _, idx := range order {
		s := slots[idx]
		fmt.Printf("  %10d → %-8v → %d\n", s.orig, s.ts, names[s.orig])
	}

	// The target namespace is exactly [1, n]: tight renaming.
	used := map[int]bool{}
	for _, name := range names {
		if name < 1 || name > n || used[name] {
			log.Fatalf("renaming broken: name %d", name)
		}
		used[name] = true
	}
	fmt.Printf("\nall %d names unique in [1, %d]; registers written: %d\n",
		n, n, rep.Space.Written)
}
