// Eventlog: order audit-log records produced by concurrent workers with a
// long-lived shared-memory timestamp object, verify the happens-before
// property with the checker, and contrast with Lamport and vector clocks
// (which need cooperative message stamping rather than shared registers).
//
// Run with:
//
//	go run ./examples/eventlog
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"tsspace/internal/clock"
	"tsspace/internal/hbcheck"
	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/dense"
)

type record struct {
	worker int
	action string
	ts     timestamp.Timestamp
}

func main() {
	const workers = 5 // worker 4 is the silent process: it never writes a register
	const actionsPerWorker = 4

	// The dense long-lived object: n−1 registers for n processes.
	alg := dense.New(workers)
	mem := register.NewMeter(timestamp.NewMem(alg))
	fmt.Printf("long-lived timestamps for %d workers from %d registers (n−1)\n\n", workers, alg.Registers())

	var (
		mu  sync.Mutex
		lg  []record
		rec hbcheck.Recorder[timestamp.Timestamp]
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < actionsPerWorker; k++ {
				start := rec.Begin()
				ts, err := alg.GetTS(mem, w, k)
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
				rec.End(w, k, start, ts)
				mu.Lock()
				lg = append(lg, record{w, fmt.Sprintf("action-%d", k), ts})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// The specification holds on the real execution.
	if err := hbcheck.CheckRecorder(&rec, alg.Compare); err != nil {
		log.Fatalf("happens-before violated: %v", err)
	}
	fmt.Println("happens-before property verified over all", rec.Len(), "getTS() calls")

	sort.Slice(lg, func(i, j int) bool { return alg.Compare(lg[i].ts, lg[j].ts) })
	fmt.Println("\nlog in timestamp order (first 10):")
	for _, r := range lg[:10] {
		fmt.Printf("  %v worker %d %s\n", r.ts, r.worker, r.action)
	}
	fmt.Printf("\nregisters written: %d (the silent worker %d wrote none)\n\n",
		mem.Report().Written, workers-1)

	// Contrast: the same ordering problem in a message-passing world.
	lamportVectorDemo()
}

// lamportVectorDemo shows why the shared-memory objects are the harder
// problem: logical clocks need every interaction stamped cooperatively.
func lamportVectorDemo() {
	fmt.Println("message-passing contrast (no shared registers):")
	var a, b clock.Lamport
	t1 := a.Send()      // a → b
	t2 := b.Receive(t1) // causal chain: stamps increase
	fmt.Printf("  Lamport: send %d → receive %d (causality preserved one way)\n", t1, t2)

	va, vb := clock.NewVector(2, 0), clock.NewVector(2, 1)
	e1 := va.Tick()
	e2 := vb.Tick()
	fmt.Printf("  Vector: independent events compare %v — exact causality, but\n", clock.CompareVec(e1, e2))
	fmt.Println("  only because both sides maintain and exchange clocks; the paper's")
	fmt.Println("  objects order events with nothing but reads and writes of registers.")
}
