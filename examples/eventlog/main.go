// Eventlog: order audit-log records produced by a churning pool of workers
// with a long-lived shared-memory timestamp object, verify the
// happens-before property with the checker, and contrast with Lamport and
// vector clocks (which need cooperative message stamping rather than
// shared registers). The run uses the engine's mixed-churn workload:
// at most three workers are alive at once — a worker that finishes its
// actions leaves and the next one joins — yet the timestamps stay totally
// ordered across the membership changes, because the object's guarantees
// are about the process *namespace*, not the live set.
//
// Run with:
//
//	go run ./examples/eventlog
package main

import (
	"fmt"
	"log"
	"sort"

	"tsspace/internal/clock"
	"tsspace/internal/engine"
	"tsspace/internal/report"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/dense"
)

func main() {
	const workers = 5 // worker 4 is the silent process: it never writes a register
	const actionsPerWorker = 4
	const poolWidth = 3 // live workers at any moment

	// The dense long-lived object: n−1 registers for n processes.
	alg := dense.New(workers)
	fmt.Printf("long-lived timestamps for %d workers from %d registers (n−1), ≤%d workers live at once\n\n",
		workers, alg.Registers(), poolWidth)

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        workers,
		Workload: engine.Churn{Width: poolWidth, CallsPerProc: actionsPerWorker},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The specification holds on the real execution, across joins/leaves.
	if err := rep.Verify(alg.Compare); err != nil {
		log.Fatalf("happens-before violated: %v", err)
	}
	fmt.Println("happens-before property verified over all", len(rep.Events), "getTS() calls")

	// Each event is one log record: (worker, action, timestamp).
	lg := rep.Events
	sort.Slice(lg, func(i, j int) bool { return alg.Compare(lg[i].Val, lg[j].Val) })
	fmt.Println("\nlog in timestamp order (first 10):")
	for _, r := range lg[:10] {
		fmt.Printf("  %v worker %d action-%d\n", r.Val, r.Pid, r.Seq)
	}
	fmt.Printf("\nregisters written: %d (the silent worker %d wrote none)\n",
		rep.Space.Written, workers-1)
	fmt.Println(report.Summary(rep))
	fmt.Println()

	// Contrast: the same ordering problem in a message-passing world.
	lamportVectorDemo()
}

// lamportVectorDemo shows why the shared-memory objects are the harder
// problem: logical clocks need every interaction stamped cooperatively.
func lamportVectorDemo() {
	fmt.Println("message-passing contrast (no shared registers):")
	var a, b clock.Lamport
	t1 := a.Send()      // a → b
	t2 := b.Receive(t1) // causal chain: stamps increase
	fmt.Printf("  Lamport: send %d → receive %d (causality preserved one way)\n", t1, t2)

	va, vb := clock.NewVector(2, 0), clock.NewVector(2, 1)
	e1 := va.Tick()
	e2 := vb.Tick()
	fmt.Printf("  Vector: independent events compare %v — exact causality, but\n", clock.CompareVec(e1, e2))
	fmt.Println("  only because both sides maintain and exchange clocks; the paper's")
	fmt.Println("  objects order events with nothing but reads and writes of registers.")
}
