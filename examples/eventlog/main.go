// Eventlog: order audit-log records produced by a churning pool of workers
// with a long-lived shared-memory timestamp object, verify the
// happens-before property with the checker, and contrast with Lamport and
// vector clocks (which need cooperative message stamping rather than
// shared registers). The churn is real session churn through the public
// SDK: nine logical workers funnel through an object with only three
// paper-processes — a worker that finishes its actions detaches and its
// process id is leased to the next one — yet the timestamps stay totally
// ordered across the membership changes, because the object's guarantees
// are about the process *namespace*, not the live set.
//
// Run with:
//
//	go run ./examples/eventlog
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"tsspace"
	"tsspace/internal/clock"
	"tsspace/internal/hbcheck"
)

// record is one audit-log entry: (worker, action, timestamp).
type record struct {
	worker, action int
	ts             tsspace.Timestamp
}

func main() {
	const workers = 9          // logical workers over the run
	const actionsPerWorker = 4 // getTS() calls per worker
	const poolWidth = 3        // paper-processes: live workers at any moment

	// The dense long-lived object: n−1 registers for n processes. Process
	// n−1 is the silent one — it never writes a register.
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("dense"),
		tsspace.WithProcs(poolWidth),
		tsspace.WithMetering(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()
	fmt.Printf("long-lived timestamps for %d workers from %d registers (n−1), ≤%d workers live at once\n\n",
		workers, obj.Registers(), poolWidth)

	// Each worker attaches (blocking until a process id frees up), stamps
	// all its actions with one GetTSBatch — the SessionAPI batch surface:
	// one entry check, caller-owned buffer, every timestamp happens-before
	// the next — and detaches. The recorder stamps the batch's interval so
	// the happens-before property can be checked across the whole run.
	var (
		rec hbcheck.Recorder[tsspace.Timestamp]
		lg  []record
		mu  sync.Mutex
		wg  sync.WaitGroup
		ctx = context.Background()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := obj.Attach(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer s.Detach()
			batch := make([]tsspace.Timestamp, actionsPerWorker)
			start := rec.Begin()
			if _, err := s.GetTSBatch(ctx, batch); err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			for a, ts := range batch {
				// Timestamps of one batch share the batch's interval; their
				// within-batch order is guaranteed by GetTSBatch itself.
				rec.End(w, a, start, ts)
				lg = append(lg, record{worker: w, action: a, ts: ts})
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	// The specification holds on the real execution, across joins/leaves
	// and process-id recycling.
	if err := hbcheck.Check(rec.Events(), obj.Compare); err != nil {
		log.Fatalf("happens-before violated: %v", err)
	}
	fmt.Println("happens-before property verified over all", len(lg), "getTS() calls")

	sort.Slice(lg, func(i, j int) bool { return obj.Compare(lg[i].ts, lg[j].ts) })
	fmt.Println("\nlog in timestamp order (first 10):")
	for _, r := range lg[:10] {
		fmt.Printf("  %v worker %d action-%d\n", r.ts, r.worker, r.action)
	}

	u, _ := obj.Usage()
	st := obj.Stats()
	fmt.Printf("\nregisters written: %d (the silent process %d wrote none)\n", u.Written, poolWidth-1)
	fmt.Printf("%s · n=%d: %d getTS() calls over %d sessions, %d reads / %d writes\n\n",
		obj.Algorithm(), obj.Procs(), st.Calls, st.Attaches, u.Reads, u.Writes)

	// Contrast: the same ordering problem in a message-passing world.
	lamportVectorDemo()
}

// lamportVectorDemo shows why the shared-memory objects are the harder
// problem: logical clocks need every interaction stamped cooperatively.
func lamportVectorDemo() {
	fmt.Println("message-passing contrast (no shared registers):")
	var a, b clock.Lamport
	t1 := a.Send()      // a → b
	t2 := b.Receive(t1) // causal chain: stamps increase
	fmt.Printf("  Lamport: send %d → receive %d (causality preserved one way)\n", t1, t2)

	va, vb := clock.NewVector(2, 0), clock.NewVector(2, 1)
	e1 := va.Tick()
	e2 := vb.Tick()
	fmt.Printf("  Vector: independent events compare %v — exact causality, but\n", clock.CompareVec(e1, e2))
	fmt.Println("  only because both sides maintain and exchange clocks; the paper's")
	fmt.Println("  objects order events with nothing but reads and writes of registers.")
}
