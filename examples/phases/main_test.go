package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRun builds and runs the example end to end, asserting it exits 0 and
// prints its headline markers.
func TestRun(t *testing.T) {
	out, err := exec.Command("go", "run", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go run .: %v\n%s", err, out)
	}
	for _, want := range []string{
		"Algorithm 4 with M",
		"phase accounting",
		"Claim 6.13",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
