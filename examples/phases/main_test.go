package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRun builds and runs the example end to end, asserting it exits 0 and
// prints its headline markers.
func TestRun(t *testing.T) {
	out, err := exec.Command("go", "run", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go run .: %v\n%s", err, out)
	}
	for _, want := range []string{
		"Algorithm 4 with M",
		"⌈2√M⌉ budget (Lemma 6.5)",
		"sentinel register",
		"strictly left to right",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
