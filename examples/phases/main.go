// Phases: a walkthrough of Algorithm 4's phase machinery (§6 of the
// paper). Issues timestamps through the engine's sequential workload,
// printing the register array and the running phase accounting after every
// getTS() (the engine's BaseMem override plus OnCall observer make the raw
// register state visible mid-run), then verifies the §6.3 claims on the
// recorded trace.
//
// Run with:
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"
	"strings"

	"tsspace/internal/engine"
	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	const m = 10
	alg := sqrt.NewBounded(m)
	tracer := &sqrt.ChronoTracer{}
	alg.SetTracer(tracer)
	mem := register.NewAtomicArray(alg.Registers())

	fmt.Printf("Algorithm 4 with M = %d calls: %d registers (⌈2√M⌉), last one a sentinel\n\n", m, alg.Registers())
	fmt.Println("call  timestamp  registers  (■ = non-⊥; phase k ⇔ k registers non-⊥)")

	call := 0
	run, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:     alg,
		World:   engine.Atomic,
		N:       m,
		BaseMem: mem,
		// One call per process id, strictly sequential: the getTS-ids only
		// need to be distinct (§6.1), so the pids double as call numbers.
		Workload: engine.Sequential{},
		OnCall: func(pid, seq int, ts timestamp.Timestamp) {
			call++
			fmt.Printf("%4d  %-9v  %s\n", call, ts, bar(mem, alg.Registers()))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sqrt.AnalyzePhases(tracer.Events())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase accounting (§6.3):\n")
	for _, st := range rep.PerPhase {
		fmt.Printf("  phase %d: %d writes, %d invalidation writes (Claim 6.10: completed phase ϕ has exactly ϕ)\n",
			st.Phase, st.Writes, st.Invalidations)
	}
	fmt.Printf("total invalidation writes: %d ≤ 2M = %d (Claim 6.13)\n", rep.InvalidationWrites, 2*m)
	if err := sqrt.VerifyCompletedPhases(rep); err != nil {
		log.Fatalf("claim violated: %v", err)
	}
	fmt.Printf("registers written: %d of %d (sequential executions stay near √(2M) ≈ %.1f)\n",
		run.Space.Written, alg.Registers(), 1.41*sqrtF(m))
}

func bar(mem register.Mem, m int) string {
	var b strings.Builder
	for i := 0; i < m; i++ {
		if mem.Read(i) != nil {
			b.WriteString("■")
		} else {
			b.WriteString("·")
		}
	}
	return b.String()
}

func sqrtF(m int) float64 {
	x := float64(m)
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
