// Phases: watch Algorithm 4 (§6 of the paper) consume register space
// phase by phase, through the public SDK. M sequential clients each take
// one timestamp from the one-shot sqrt object; after every call the
// example prints the object's write footprint (from WithMetering's usage
// report). A register is non-⊥ exactly once it has been written, so the
// footprint bar is the phase structure: phase k runs while k registers
// are non-⊥, and a timestamp (rnd, turn) returned in phase k has rnd ∈
// {k, k+1}.
//
// The walkthrough verifies the SDK-observable §6 claims: the written set
// grows monotonically from the left, stays within the ⌈2√M⌉ budget
// (Lemma 6.5), and the last register is the sentinel that is read but
// never written (Lemma 6.14). The deeper per-phase invalidation
// accounting (Claims 6.10/6.13) needs the implementation's tracer hooks:
// see `go run ./cmd/tscover -phases`.
//
// Run with:
//
//	go run ./examples/phases
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"tsspace"
)

func main() {
	const m = 10
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("sqrt"), // one-shot: M = n = procs
		tsspace.WithProcs(m),
		tsspace.WithMetering(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	fmt.Printf("Algorithm 4 with M = %d calls: %d registers (⌈2√M⌉), last one a sentinel\n\n",
		m, obj.Registers())
	fmt.Println("call  timestamp  phase  registers  (■ = written/non-⊥; phase k ⇔ k registers non-⊥)")

	ctx := context.Background()
	var last tsspace.Timestamp
	for call := 1; call <= m; call++ {
		s, err := obj.Attach(ctx)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := s.GetTS(ctx)
		if err != nil {
			log.Fatal(err)
		}
		s.Detach()

		u, _ := obj.Usage()
		fmt.Printf("%4d  %-9v  %5d  %s\n", call, ts, u.Written, bar(u))

		// Sequential calls are happens-before ordered: strictly increasing.
		if call > 1 && !obj.Compare(last, ts) {
			log.Fatalf("call %d: %v not after %v", call, ts, last)
		}
		last = ts
	}

	u, _ := obj.Usage()
	fmt.Printf("\nregisters written: %d of %d — within the ⌈2√M⌉ budget (Lemma 6.5)\n",
		u.Written, u.Registers)
	if u.WriteCounts[u.Registers-1] != 0 {
		log.Fatal("sentinel register was written — Lemma 6.14 violated")
	}
	if u.ReadCounts[u.Registers-1] == 0 {
		log.Fatal("sentinel register was never read")
	}
	fmt.Printf("sentinel register %d: read %d times, written never (Lemma 6.14)\n",
		u.Registers-1, u.ReadCounts[u.Registers-1])
	for i := 1; i < len(u.WriteCounts); i++ {
		if u.WriteCounts[i] > 0 && u.WriteCounts[i-1] == 0 {
			log.Fatalf("register %d written before register %d: phases do not skip", i, i-1)
		}
	}
	fmt.Println("written set is a prefix: phases consume registers strictly left to right")
}

// bar renders the per-register write footprint: ■ for written (non-⊥)
// registers, · for ⊥.
func bar(u tsspace.Usage) string {
	var b strings.Builder
	for _, w := range u.WriteCounts {
		if w > 0 {
			b.WriteString("■")
		} else {
			b.WriteString("·")
		}
	}
	return b.String()
}
