// Quickstart: give n goroutines one timestamp each from the paper's
// √M-register one-shot object (Algorithms 3–4) and use compare() to
// reconstruct a global order consistent with real time. The run goes
// through internal/engine: pick an Algorithm × World × Workload, get back
// a report with the events and the space footprint.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"tsspace/internal/engine"
	"tsspace/internal/report"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	const n = 24
	alg := sqrt.New(n) // one-shot object for n processes: ⌈2√n⌉ registers

	fmt.Printf("one-shot timestamp object for %d processes using %d registers (⌈2√n⌉)\n\n", n, alg.Registers())

	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Atomic, // real goroutines on hardware atomics
		N:        n,
		Workload: engine.OneShot{}, // each process calls getTS() once
	})
	if err != nil {
		log.Fatal(err)
	}

	// compare() is a total preorder on the issued timestamps; sorting by it
	// yields an order consistent with happens-before.
	events := rep.Events
	sort.Slice(events, func(i, j int) bool {
		return alg.Compare(events[i].Val, events[j].Val)
	})

	fmt.Println("timestamps in compare() order (rnd, turn):")
	for _, ev := range events {
		fmt.Printf("  p%-3d → %v\n", ev.Pid, ev.Val)
	}

	fmt.Printf("\nregisters written: %d of %d allocated (sentinel stays ⊥)\n",
		rep.Space.Written, rep.Space.Registers)
	fmt.Printf("total reads %d, writes %d\n\n", rep.Space.Reads, rep.Space.Writes)
	fmt.Println(report.Summary(rep))
}
