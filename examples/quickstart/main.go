// Quickstart: give n goroutines one timestamp each from the paper's
// √M-register one-shot object (Algorithms 3–4) and use compare() to
// reconstruct a global order consistent with real time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

func main() {
	const n = 24
	alg := sqrt.New(n) // one-shot object for n processes: ⌈2√n⌉ registers

	fmt.Printf("one-shot timestamp object for %d processes using %d registers (⌈2√n⌉)\n\n", n, alg.Registers())

	// All processes share one atomic register array; the meter records the
	// space actually used.
	mem := register.NewMeter(timestamp.NewMem(alg))

	type stamped struct {
		pid int
		ts  timestamp.Timestamp
	}
	results := make([]stamped, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ts, err := alg.GetTS(mem, pid, 0) // each process calls getTS() once
			if err != nil {
				log.Fatalf("p%d: %v", pid, err)
			}
			results[pid] = stamped{pid, ts}
		}(pid)
	}
	wg.Wait()

	// compare() is a total preorder on the issued timestamps; sorting by it
	// yields an order consistent with happens-before.
	sort.Slice(results, func(i, j int) bool {
		return alg.Compare(results[i].ts, results[j].ts)
	})

	fmt.Println("timestamps in compare() order (rnd, turn):")
	for _, r := range results {
		fmt.Printf("  p%-3d → %v\n", r.pid, r.ts)
	}

	rep := mem.Report()
	fmt.Printf("\nregisters written: %d of %d allocated (sentinel stays ⊥)\n", rep.Written, rep.Registers)
	fmt.Printf("total reads %d, writes %d\n", rep.Reads, rep.Writes)
}
