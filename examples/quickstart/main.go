// Quickstart: give n goroutines one timestamp each from the paper's
// √M-register one-shot object (Algorithms 3–4) and use compare() to
// reconstruct a global order consistent with real time. The run goes
// through the public tsspace SDK: New picks the algorithm by registry
// name, Attach leases one of the n paper-processes to each goroutine, and
// GetTS hides the memory/pid/seq plumbing entirely.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"tsspace"
)

func main() {
	const n = 24
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("sqrt"), // one-shot object: ⌈2√n⌉ registers
		tsspace.WithProcs(n),
		tsspace.WithMetering(), // record the space footprint for the report
	)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	fmt.Printf("one-shot timestamp object for %d processes using %d registers (⌈2√n⌉)\n\n",
		obj.Procs(), obj.Registers())

	// n concurrent clients: each attaches a session, takes its one
	// timestamp, and detaches.
	type issued struct {
		client int
		ts     tsspace.Timestamp
	}
	ctx := context.Background()
	out := make([]issued, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := obj.Attach(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer s.Detach()
			ts, err := s.GetTS(ctx)
			if err != nil {
				log.Fatal(err)
			}
			out[c] = issued{client: c, ts: ts}
		}(c)
	}
	wg.Wait()

	// compare() is a total preorder on the issued timestamps; sorting by it
	// yields an order consistent with happens-before.
	sort.Slice(out, func(i, j int) bool { return obj.Compare(out[i].ts, out[j].ts) })

	fmt.Println("timestamps in compare() order (rnd, turn):")
	for _, iss := range out {
		fmt.Printf("  client %-3d → %v\n", iss.client, iss.ts)
	}

	u, _ := obj.Usage()
	fmt.Printf("\nregisters written: %d of %d allocated (sentinel stays ⊥)\n", u.Written, u.Registers)
	fmt.Printf("total reads %d, writes %d\n", u.Reads, u.Writes)
	st := obj.Stats()
	fmt.Printf("%s · n=%d: %d getTS() calls over %d sessions\n",
		obj.Algorithm(), obj.Procs(), st.Calls, st.Attaches)
}
