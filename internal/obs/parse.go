package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// Family is one parsed metric family, as returned by ParseExposition.
type Family struct {
	Name    string
	Type    string
	Samples int
	// Labels holds, for each non-histogram sample in order, the raw
	// inner label block of that sample ("" for an unlabeled sample,
	// `namespace="default"` for a labeled one) — enough for callers to
	// assert which label values a vector family exposed.
	Labels  []string
	Buckets []Bucket // histograms only, finite le bounds ascending
	Sum     int64
	Count   uint64
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	LE    int64
	Count uint64
}

// ParseExposition is a strict parser of the subset of the Prometheus
// text format this package writes, shared by the package tests and the
// daemon's smoke validation: every line must be a HELP, TYPE or sample
// line; names must match the metric charset; TYPE must precede its
// samples; histogram le buckets must be cumulative (monotone
// non-decreasing counts over ascending bounds) and their +Inf bucket
// must agree with _count. Any violation returns an error naming the
// offending line.
func ParseExposition(data []byte) (map[string]*Family, error) {
	families := make(map[string]*Family)
	get := func(name string) *Family {
		f, ok := families[name]
		if !ok {
			f = &Family{Name: name}
			families[name] = f
		}
		return f
	}
	sawInf := make(map[string]uint64)
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found && rest == "" {
				return nil, fmt.Errorf("line %d: HELP without a name", lineNo)
			}
			if !found {
				name = rest
			}
			if !ValidMetricName(name) {
				return nil, fmt.Errorf("line %d: HELP for invalid name %q", lineNo, name)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
			}
			if !ValidMetricName(name) {
				return nil, fmt.Errorf("line %d: TYPE for invalid name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, typ)
			}
			f := get(name)
			if f.Samples > 0 {
				return nil, fmt.Errorf("line %d: TYPE %s after its samples", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unknown comment %q", lineNo, line)
		}
		// Sample: name[{labels}] value
		nameAndLabels, value, found := strings.Cut(line, " ")
		if !found {
			return nil, fmt.Errorf("line %d: sample without a value: %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, value, err)
		}
		name, labels, hasLabels := strings.Cut(nameAndLabels, "{")
		if hasLabels && !strings.HasSuffix(labels, "}") {
			return nil, fmt.Errorf("line %d: unterminated label block in %q", lineNo, nameAndLabels)
		}
		if !ValidMetricName(name) {
			return nil, fmt.Errorf("line %d: invalid sample name %q", lineNo, name)
		}
		// Resolve histogram series back to their family.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if f, exists := families[base]; exists && f.Type == "histogram" {
					family = base
				}
				break
			}
		}
		f := get(family)
		if f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, name)
		}
		f.Samples++
		if f.Type != "histogram" {
			f.Labels = append(f.Labels, strings.TrimSuffix(labels, "}"))
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := strings.CutPrefix(strings.TrimSuffix(labels, "}"), `le="`)
			if !ok || !strings.HasSuffix(le, `"`) {
				return nil, fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
			}
			le = strings.TrimSuffix(le, `"`)
			cnt, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bucket count %q: %v", lineNo, value, err)
			}
			if le == "+Inf" {
				sawInf[family] = cnt
				if n := len(f.Buckets); n > 0 && f.Buckets[n-1].Count > cnt {
					return nil, fmt.Errorf("line %d: +Inf bucket %d below le=%d bucket %d",
						lineNo, cnt, f.Buckets[n-1].LE, f.Buckets[n-1].Count)
				}
				continue
			}
			bound, err := strconv.ParseInt(le, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bucket bound %q: %v", lineNo, le, err)
			}
			if n := len(f.Buckets); n > 0 {
				if f.Buckets[n-1].LE >= bound {
					return nil, fmt.Errorf("line %d: bucket bounds not ascending (%d after %d)", lineNo, bound, f.Buckets[n-1].LE)
				}
				if f.Buckets[n-1].Count > cnt {
					return nil, fmt.Errorf("line %d: bucket counts not cumulative (%d after %d)", lineNo, cnt, f.Buckets[n-1].Count)
				}
			}
			f.Buckets = append(f.Buckets, Bucket{LE: bound, Count: cnt})
		case strings.HasSuffix(name, "_sum"):
			sum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: histogram sum %q: %v", lineNo, value, err)
			}
			f.Sum = sum
		case strings.HasSuffix(name, "_count"):
			cnt, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: histogram count %q: %v", lineNo, value, err)
			}
			f.Count = cnt
		default:
			return nil, fmt.Errorf("line %d: unexpected histogram sample %q", lineNo, name)
		}
	}
	for name, f := range families {
		if f.Type != "histogram" {
			continue
		}
		inf, ok := sawInf[name]
		if !ok {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", name)
		}
		if inf != f.Count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %d != count %d", name, inf, f.Count)
		}
	}
	return families, nil
}
