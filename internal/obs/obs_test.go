package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", "9lead", "has space", "dash-ed", "percent%"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	func() {
		r := NewRegistry()
		r.Counter("dup_total", "")
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		r.Counter("dup_total", "")
	}()
}

// TestExpositionParses validates the Prometheus text format end to end:
// metric-name charset, HELP/TYPE lines preceding samples, cumulative le
// buckets with monotone counts, and the histogram's +Inf/_count
// agreement — the same checks the CI smoke scrape performs.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "requests served")
	g := r.Gauge("app_depth", `queue depth with \ and
newline in help`)
	r.CounterFunc("app_derived_total", "derived", func() float64 { return 12 })
	r.GaugeFunc("app_temp", "sampled", func() float64 { return -3.5 })
	h := r.Histogram("app_latency_ns", "latency", []int64{100, 1000, 10000})
	c.Add(3)
	g.Set(-2)
	for _, v := range []int64{50, 120, 800, 5_000, 2_000_000} {
		h.Record(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse:\n%s\nerror: %v", buf.String(), err)
	}
	for _, want := range []string{"app_requests_total", "app_depth", "app_derived_total", "app_temp", "app_latency_ns"} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %q missing from exposition", want)
		}
	}
	lat := families["app_latency_ns"]
	if lat.Type != "histogram" {
		t.Fatalf("app_latency_ns TYPE = %q, want histogram", lat.Type)
	}
	// 50 ≤ 100; 120+800 ≤ 1000; 5000 ≤ 10000; 2ms beyond every bound.
	wantBuckets := []uint64{1, 3, 4}
	for i, want := range wantBuckets {
		if lat.Buckets[i].Count != want {
			t.Errorf("bucket le=%d count = %d, want %d", lat.Buckets[i].LE, lat.Buckets[i].Count, want)
		}
	}
	if lat.Count != 5 {
		t.Errorf("histogram count = %d, want 5", lat.Count)
	}
	if lat.Sum != 50+120+800+5_000+2_000_000 {
		t.Errorf("histogram sum = %d", lat.Sum)
	}
}

// TestZeroAllocInstruments is the hot-path allocation gate of the
// tentpole: counter increments, gauge stores, histogram records and
// flight-recorder records must allocate nothing, ever — they sit on the
// GetTS/GetTSBatch and binary-frame paths.
func TestZeroAllocInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gate_total", "")
	g := r.Gauge("gate_depth", "")
	h := r.Histogram("gate_latency_ns", "", nil)
	ring := NewRing(64)
	for name, fn := range map[string]func(){
		"Counter.Inc":      func() { c.Inc() },
		"Counter.Add":      func() { c.Add(3) },
		"Gauge.Set":        func() { g.Set(5) },
		"Gauge.Add":        func() { g.Add(-1) },
		"Histogram.Record": func() { h.Record(1234) },
		"Ring.Record":      func() { ring.Record(EventAttach, 0xabcd, 3, 7) },
		"Ring.RecordNS":    func() { ring.RecordNS(EventAttach, 9, 0xabcd, 3, 7) },
		"Ring.Snapshot": func() {
			var dst [8]Event
			ring.Snapshot(dst[:])
		},
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", name, allocs)
		}
	}
}

func TestRingSnapshotSemantics(t *testing.T) {
	r := NewRing(16) // exact power of two
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	var dst [32]Event
	if n := r.Snapshot(dst[:]); n != 0 {
		t.Fatalf("empty ring snapshot = %d events", n)
	}
	for i := 0; i < 40; i++ { // wraps the ring twice
		r.Record(EventError, uint64(i), int32(i), int64(-i))
	}
	n := r.Snapshot(dst[:])
	if n != 16 {
		t.Fatalf("snapshot after wrap = %d events, want 16", n)
	}
	for i, e := range dst[:n] {
		wantSeq := uint64(25 + i) // most recent 16 of 40, oldest first
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Session != wantSeq-1 || e.Pid != int32(wantSeq-1) || e.Detail != -int64(wantSeq-1) {
			t.Errorf("event %d fields do not match its seq: %+v", i, e)
		}
		if e.Kind != EventError {
			t.Errorf("event %d kind = %v", i, e.Kind)
		}
		if i > 0 && e.TimeNs < dst[i-1].TimeNs {
			t.Errorf("event %d timestamp went backwards", i)
		}
	}
	// A small dst gets the most recent slice only.
	var three [3]Event
	if n := r.Snapshot(three[:]); n != 3 || three[0].Seq != 38 {
		t.Errorf("small snapshot = %d events starting at %d, want 3 at 38", n, three[0].Seq)
	}
	// Negative pid round-trips through the packed meta word.
	r.Record(EventCrash, 1, -1, 0)
	if n := r.Snapshot(dst[:]); n == 0 || dst[n-1].Pid != -1 {
		t.Errorf("pid -1 did not survive the ring")
	}
}

// TestRingConcurrentHammer drives concurrent writers against a reader
// draining snapshots, under -race in CI: every surfaced event must be
// internally consistent (fields derived from its seq), which catches
// torn slot reads that the stamp protocol is supposed to exclude.
func TestRingConcurrentHammer(t *testing.T) {
	const writers = 8
	const perWriter = 20_000
	r := NewRing(1024)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn, read int
	wg.Add(1)
	go func() { // reader: drain continuously until writers finish
		defer wg.Done()
		dst := make([]Event, r.Cap())
		for {
			n := r.Snapshot(dst)
			for _, e := range dst[:n] {
				read++
				// Writers encode their (writer, i) into session/detail as
				// session = writer*perWriter + i and detail = -session.
				if e.Detail != -int64(e.Session) || e.Kind != EventSlowOp {
					torn++
					t.Errorf("torn event surfaced: %+v", e)
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i)
				r.Record(EventSlowOp, id, int32(w), -int64(id))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if r.Recorded() != writers*perWriter {
		t.Errorf("recorded %d events, want %d", r.Recorded(), writers*perWriter)
	}
	if read == 0 {
		t.Error("reader never saw an event")
	}
	// Final quiesced snapshot must surface a full, consistent ring.
	dst := make([]Event, r.Cap())
	if n := r.Snapshot(dst); n != r.Cap() {
		t.Errorf("quiesced snapshot = %d events, want %d", n, r.Cap())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewRegistry().Histogram("bench_latency_ns", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EventAttach, uint64(i), 1, 0)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.Counter(fmt.Sprintf("bench_c%d_total", i), "c")
	}
	h := r.Histogram("bench_latency_ns", "h", nil)
	for i := int64(0); i < 1000; i++ {
		h.Record(i * 1000)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := r.WritePrometheus(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVecFuncsRenderLabeledSamples covers the sampled single-label
// vector families the broker's per-namespace metrics ride on: every
// sample renders as name{label="value"} with the value escaped, the
// strict parser accepts the body, and Family.Labels surfaces the label
// blocks in sample order.
func TestVecFuncsRenderLabeledSamples(t *testing.T) {
	r := NewRegistry()
	r.CounterVecFunc("vec_calls_total", "calls per tenant", "namespace", func() []Sample {
		return []Sample{
			{Label: "default", Value: 12},
			{Label: `we"ird\te` + "\nnant", Value: 3},
		}
	})
	r.GaugeVecFunc("vec_depth", "depth per tenant", "namespace", func() []Sample {
		return []Sample{{Label: "default", Value: -4}}
	})
	// An empty vector renders no samples but keeps its HELP/TYPE header.
	r.GaugeVecFunc("vec_idle", "never sampled", "namespace", func() []Sample { return nil })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	families, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse:\n%s\nerror: %v", body, err)
	}

	calls, ok := families["vec_calls_total"]
	if !ok || calls.Type != "counter" || calls.Samples != 2 {
		t.Fatalf("vec_calls_total family = %+v, want a 2-sample counter", calls)
	}
	if len(calls.Labels) != 2 || calls.Labels[0] != `namespace="default"` {
		t.Fatalf("vec_calls_total labels = %q", calls.Labels)
	}
	// The quote, backslash and newline must come out escaped, in order.
	if want := `namespace="we\"ird\\te\nnant"`; calls.Labels[1] != want {
		t.Fatalf("escaped label block = %q, want %q", calls.Labels[1], want)
	}
	if !strings.Contains(body, `vec_calls_total{namespace="default"} 12`) {
		t.Fatalf("exposition missing the default sample:\n%s", body)
	}
	if depth := families["vec_depth"]; depth.Type != "gauge" || depth.Samples != 1 {
		t.Fatalf("vec_depth family = %+v, want a 1-sample gauge", depth)
	}
	if !strings.Contains(body, "vec_depth{namespace=\"default\"} -4") {
		t.Fatalf("gauge vector sample missing:\n%s", body)
	}
	if idle, ok := families["vec_idle"]; !ok || idle.Samples != 0 {
		t.Fatalf("empty vector family = %+v, want present with 0 samples", idle)
	}
}

// TestRingRecordNSRoundTrip pins the namespace-id packing: RecordNS
// stores the id in the slot's meta word next to kind and pid, Snapshot
// hands it back intact, Record means namespace 0, and ids are retained
// modulo the 24-bit field.
func TestRingRecordNSRoundTrip(t *testing.T) {
	r := NewRing(16)
	r.Record(EventAttach, 1, 5, 0)
	r.RecordNS(EventDetach, 7, 2, -1, 42)
	r.RecordNS(EventError, 0xffffff, 3, 123, -9)
	r.RecordNS(EventReap, 0x1abcdef0, 4, 0, 0) // only the low 24 bits survive

	var dst [8]Event
	n := r.Snapshot(dst[:])
	if n != 4 {
		t.Fatalf("snapshot returned %d events, want 4", n)
	}
	want := []struct {
		kind EventKind
		ns   uint32
		pid  int32
	}{
		{EventAttach, 0, 5},
		{EventDetach, 7, -1},
		{EventError, 0xffffff, 123},
		{EventReap, 0xbcdef0, 0},
	}
	for i, w := range want {
		e := dst[i]
		if e.Kind != w.kind || e.NS != w.ns || e.Pid != w.pid {
			t.Errorf("event %d = kind %v ns %#x pid %d, want kind %v ns %#x pid %d",
				i, e.Kind, e.NS, e.Pid, w.kind, w.ns, w.pid)
		}
	}
}
