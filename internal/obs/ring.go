package obs

import (
	"sync/atomic"
	"time"
)

// The flight recorder: a lock-free fixed-size ring buffer of recent
// structured events. It answers the operational question a counter
// cannot — "what was the server doing just before this?" — by keeping
// the last few thousand attach/detach/reap/crash/error/slow-op events
// with per-event monotonic timestamps and session ids, recordable from
// any request path at the cost of one atomic slot claim plus a handful
// of atomic stores (no locks, no allocations, no time-ordering between
// writers beyond the claim itself).
//
// Consistency model: each slot carries the sequence number that last
// wrote it as a stamp, stored 0 (in progress) before the fields and the
// final value after. A reader accepts a slot only when the stamp reads
// the expected sequence number both before and after the field loads —
// Go atomics are sequentially consistent, so a writer lapping the ring
// mid-read is detected and the slot dropped rather than surfaced torn.
// Dropped slots are possible only when a writer laps the entire ring
// during one snapshot, which at practical ring sizes means the
// recording rate exceeds millions of events per second — and the
// recorder is wired to edge events (session lifecycle, failures, slow
// ops), not to the per-timestamp fast path.

// EventKind classifies one flight-recorder event.
type EventKind uint8

const (
	// EventAttach: a session lease was handed out (Session = wire id,
	// Pid = the leased paper-process).
	EventAttach EventKind = 1 + iota
	// EventDetach: a lease was returned explicitly (Detail = the
	// session's lifetime getTS count).
	EventDetach
	// EventReap: an idle lease was force-detached by a TTL reaper.
	EventReap
	// EventCrash: a lease was released because its owner vanished
	// without detaching (connection drop, abandoned client).
	EventCrash
	// EventError: a request was answered with an error (Detail = the
	// wire error class).
	EventError
	// EventSlowOp: an operation exceeded the configured slow-op
	// threshold (Detail = its duration in nanoseconds).
	EventSlowOp
)

// String names the kind for dumps; unknown kinds render as "unknown".
func (k EventKind) String() string {
	switch k {
	case EventAttach:
		return "attach"
	case EventDetach:
		return "detach"
	case EventReap:
		return "reap"
	case EventCrash:
		return "crash"
	case EventError:
		return "error"
	case EventSlowOp:
		return "slow_op"
	}
	return "unknown"
}

// Event is one recorded event, as surfaced by Snapshot. TimeNs is
// monotonic nanoseconds since the ring was created (diffable between
// events; not wall time). Session is the 64-bit session id (0 when the
// event has none), Pid the paper-process (-1 when none), NS the
// recorder-assigned namespace id the event happened in (0 for the
// default namespace; 24 bits), Detail a kind-specific value.
type Event struct {
	Seq     uint64
	TimeNs  int64
	Kind    EventKind
	Session uint64
	Pid     int32
	NS      uint32
	Detail  int64
}

// ringSlot is one ring entry. All fields are atomics so concurrent
// writers and snapshot readers are race-clean; stamp validates the rest.
type ringSlot struct {
	stamp   atomic.Uint64
	timeNs  atomic.Int64
	meta    atomic.Uint64 // kind in bits 0..7, pid (as uint32) in bits 8..39, namespace id in bits 40..63
	session atomic.Uint64
	detail  atomic.Int64
}

// Ring is the flight recorder. Construct with NewRing; the zero value
// is not ready for use.
type Ring struct {
	start time.Time
	mask  uint64
	seq   atomic.Uint64
	slots []ringSlot
}

// DefaultRingSize is the capacity NewRing rounds to when given size <= 0.
const DefaultRingSize = 4096

// NewRing returns a flight recorder holding the most recent size events
// (rounded up to a power of two, minimum 16; size <= 0 means
// DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{start: time.Now(), mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// Cap returns the ring's capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns the total number of events ever recorded (the ring
// retains the most recent Cap of them).
func (r *Ring) Recorded() uint64 { return r.seq.Load() }

// Record appends one event in the default namespace (id 0): an atomic
// sequence claim plus five atomic stores into the claimed slot, no
// locks and no allocations — safe to call from any request path.
//
//tslint:hotpath
func (r *Ring) Record(kind EventKind, session uint64, pid int32, detail int64) {
	r.RecordNS(kind, 0, session, pid, detail)
}

// RecordNS is Record with an explicit namespace id. The id is a
// recorder-local tag (the server assigns one per provisioned
// namespace); only the low 24 bits are retained.
//
//tslint:hotpath
func (r *Ring) RecordNS(kind EventKind, ns uint32, session uint64, pid int32, detail int64) {
	i := r.seq.Add(1) // 1-based: stamp 0 means in-progress/empty
	s := &r.slots[(i-1)&r.mask]
	s.stamp.Store(0)
	s.timeNs.Store(int64(time.Since(r.start)))
	s.meta.Store(uint64(kind) | uint64(uint32(pid))<<8 | uint64(ns&0xffffff)<<40)
	s.session.Store(session)
	s.detail.Store(detail)
	s.stamp.Store(i)
}

// Snapshot copies the most recent events into dst in recording order
// (oldest first) and returns how many were copied: up to len(dst), up
// to the ring's capacity, up to what has been recorded. Slots a
// concurrent writer holds or has lapped are skipped, never surfaced
// torn. Snapshot allocates nothing beyond what the caller passed in.
func (r *Ring) Snapshot(dst []Event) int {
	top := r.seq.Load()
	if top == 0 || len(dst) == 0 {
		return 0
	}
	lo := uint64(1)
	if span := uint64(len(r.slots)); top > span {
		lo = top - span + 1
	}
	if span := uint64(len(dst)); top-lo+1 > span {
		lo = top - span + 1
	}
	n := 0
	for i := lo; i <= top; i++ {
		s := &r.slots[(i-1)&r.mask]
		if s.stamp.Load() != i {
			continue // lapped or still being written
		}
		e := Event{
			Seq:     i,
			TimeNs:  s.timeNs.Load(),
			Session: s.session.Load(),
			Detail:  s.detail.Load(),
		}
		meta := s.meta.Load()
		e.Kind = EventKind(meta & 0xff)
		e.Pid = int32(uint32(meta >> 8))
		e.NS = uint32(meta >> 40)
		if s.stamp.Load() != i {
			continue // a writer lapped us mid-read: the fields are torn
		}
		dst[n] = e
		n++
	}
	return n
}
