package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its samples, families sorted by name. Histograms
// render their cumulative le buckets plus _sum and _count. This is
// scrape-path code: it samples derived metrics and locks nothing hot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(m.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(m.kind.String())
		bw.WriteByte('\n')
		switch {
		case m.counter != nil:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(m.counter.Value(), 10))
			bw.WriteByte('\n')
		case m.gauge != nil:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.gauge.Value(), 10))
			bw.WriteByte('\n')
		case m.fn != nil:
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(m.fn()))
			bw.WriteByte('\n')
		case m.vec != nil:
			for _, s := range m.vec() {
				bw.WriteString(m.name)
				bw.WriteByte('{')
				bw.WriteString(m.label)
				bw.WriteString(`="`)
				bw.WriteString(escapeLabelValue(s.Label))
				bw.WriteString(`"} `)
				bw.WriteString(formatFloat(s.Value))
				bw.WriteByte('\n')
			}
		case m.histo != nil:
			writeHistogram(bw, m.name, m.histo)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram family: cumulative le buckets
// (counts of observations ≤ each bound), the +Inf bucket equal to
// _count, then _sum and _count.
//
// The snapshot is taken from a live lock-free histogram: bucket counts
// and the total are loaded independently, so under concurrent recording
// the +Inf bucket is clamped up to the largest finite cumulative count
// to keep the exposition internally monotone — a scrape is a consistent
// recent view, not a linearization point.
func writeHistogram(bw *bufio.Writer, name string, h *Histogram) {
	counts, sum, count := h.h.CumulativeLE(h.bounds)
	for i, bound := range h.bounds {
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(strconv.FormatInt(bound, 10))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(counts[i], 10))
		bw.WriteByte('\n')
	}
	inf := count
	if n := len(counts); n > 0 && counts[n-1] > inf {
		inf = counts[n-1]
	}
	bw.WriteString(name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	bw.WriteString(strconv.FormatUint(inf, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(strconv.FormatInt(sum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count ")
	bw.WriteString(strconv.FormatUint(inf, 10))
	bw.WriteByte('\n')
}

// formatFloat renders a sampled value the way Prometheus expects:
// shortest round-trip decimal, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines, the two characters the
// exposition format requires escaped in HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslashes, double quotes and newlines —
// the three characters the exposition format requires escaped inside a
// quoted label value.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
