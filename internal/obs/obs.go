// Package obs is the repository's observability core: a metrics
// registry of atomic counters, gauges and internal/hist-backed
// histograms with a Prometheus text-format exporter (prom.go), plus a
// lock-free fixed-size flight recorder of recent structured events
// (ring.go). It is stdlib-only and self-contained, so every layer of
// the stack — the tsserve front ends, the tsload driver, the daemons —
// can publish into one registry without new dependencies.
//
// The design rule is the repository's hot-path discipline: anything a
// request path touches is a single atomic operation with zero
// allocations — Counter.Inc/Add is one atomic add, Histogram.Record is
// the hist package's fixed-array atomic recording, Ring.Record is a
// slot claim plus a handful of atomic stores. Everything that costs
// more (registration, exposition, snapshots) happens off the operation
// path, on whatever goroutine scrapes or dumps.
//
// Two kinds of metric feed the registry:
//
//   - owned state: Counter, Gauge and Histogram are allocated by the
//     registry and written by the instrumented code. They are the
//     single bookkeeping location for what they count — a JSON metrics
//     view and the Prometheus exposition both read the same atomics.
//   - derived state: CounterFunc and GaugeFunc sample a value that
//     already lives elsewhere (an Object's call counter, a session
//     table's size) at scrape time, so instrumentation never duplicates
//     a source of truth that another layer owns.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"tsspace/internal/hist"
)

// kind discriminates the exposition type of one registered metric.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric: one atomic word.
// Inc/Add are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//tslint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; Add with a huge value that wraps is
// the caller's bug, not checked here (the hot path is one atomic add).
//
//tslint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down: one atomic word.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//tslint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
//
//tslint:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a registry-owned latency histogram: internal/hist's
// lock-free log-bucketed recording, exposed to Prometheus over a fixed
// ladder of cumulative le bounds.
type Histogram struct {
	h      *hist.H
	bounds []int64 // ascending, exposition-time only
}

// Record adds one observation (nanoseconds by convention; the unit is
// whatever the metric name declares). Safe for concurrent use,
// allocation-free.
//
//tslint:hotpath
func (h *Histogram) Record(v int64) { h.h.Record(v) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.h.Count() }

// Summarize digests the histogram into the repository's fixed
// percentile shape (the JSON /metrics view).
func (h *Histogram) Summarize() hist.Summary { return h.h.Summarize() }

// DefaultLatencyBounds is the le ladder (nanoseconds) histograms expose
// by default: roughly logarithmic from 1µs to 10s, matched to the
// repository's measured range (tens of ns in process, µs over wire v3,
// tens of µs over HTTP, ms under queueing).
var DefaultLatencyBounds = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 10_000_000_000,
}

// Sample is one labeled observation of a vector family: the value the
// family's single label takes, and the sampled value for it. The slice
// a vec function returns is rendered in order, so callers control
// sample ordering (sort for a deterministic exposition).
type Sample struct {
	Label string
	Value float64
}

// metric is one registered family: exactly one of the value fields is
// set, matching kind (fn doubles for derived counters and gauges, vec
// for derived labeled families).
type metric struct {
	name string
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	histo   *Histogram
	fn      func() float64

	// Labeled derived family: label is the single label name, vec is
	// sampled at exposition time and returns one Sample per label value.
	label string
	vec   func() []Sample
}

// Registry holds registered metrics and renders them. Registration is
// construction-time work behind a mutex; the returned metric handles
// are what the instrumented code touches, lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// register validates and stores m. Registration failures are programmer
// errors (bad name, duplicate family) and panic: they are reachable
// only from construction code, never from a request.
func (r *Registry) register(m *metric) {
	if !ValidMetricName(m.name) {
		panic("obs: invalid metric name " + m.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.names[m.name] = struct{}{}
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns an owned counter. By Prometheus
// convention the name should end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// CounterFunc registers a derived counter: fn is sampled at exposition
// time and must be monotonically non-decreasing (it reads a counter
// that already lives elsewhere — the point is to not duplicate it).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a derived gauge sampled at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// CounterVecFunc registers a derived labeled counter family: one label
// name, and a function sampled at exposition time returning one Sample
// per label value (e.g. one per namespace). Like CounterFunc, the
// sampled values must be monotonically non-decreasing per label; label
// values that disappear (a deprovisioned namespace) simply stop being
// emitted. The label name must be a valid metric-name-shaped
// identifier; label values are escaped at exposition time.
func (r *Registry) CounterVecFunc(name, help, label string, vec func() []Sample) {
	if !ValidMetricName(label) {
		panic("obs: invalid label name " + label)
	}
	r.register(&metric{name: name, help: help, kind: kindCounter, label: label, vec: vec})
}

// GaugeVecFunc registers a derived labeled gauge family sampled at
// exposition time, one Sample per label value.
func (r *Registry) GaugeVecFunc(name, help, label string, vec func() []Sample) {
	if !ValidMetricName(label) {
		panic("obs: invalid label name " + label)
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, label: label, vec: vec})
}

// Histogram registers and returns an owned histogram with the given
// cumulative le bounds (nil means DefaultLatencyBounds). Bounds are
// copied and sorted; they shape the exposition only — recording
// precision is the hist package's own bucket geometry.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{h: hist.New(), bounds: b}
	r.register(&metric{name: name, help: help, kind: kindHistogram, histo: h})
	return h
}

// snapshot returns the registered metrics sorted by name, for a
// deterministic exposition order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ValidMetricName reports whether name matches the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
