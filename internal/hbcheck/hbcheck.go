// Package hbcheck validates the timestamp specification on executions.
//
// The specification (§2 of the paper) is the only correctness requirement a
// timestamp object has: if getTS() instance g1 returning t1 happens before
// getTS() instance g2 returning t2 (g1's response precedes g2's
// invocation), then compare(t1, t2) = true and compare(t2, t1) = false.
//
// The recorder stamps invocations and responses with a global atomic clock;
// a pair of events with e1.End < e2.Start is then a sound happens-before
// witness in any execution of this process (real-concurrent or simulated:
// a simulated execution is still a real execution, merely serialized).
package hbcheck

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Event is one completed getTS() instance.
type Event[T any] struct {
	Pid   int    // process that performed the call
	Seq   int    // per-process invocation number
	Start uint64 // clock stamp taken before the invocation
	End   uint64 // clock stamp taken after the response
	Val   T      // the returned timestamp
}

// Recorder collects getTS() intervals with a global clock. It is safe for
// concurrent use. The zero value is ready.
type Recorder[T any] struct {
	clock  atomic.Uint64
	mu     sync.Mutex
	events []Event[T]
}

// Begin stamps an invocation; pass the returned stamp to End.
func (r *Recorder[T]) Begin() uint64 {
	return r.clock.Add(1)
}

// End stamps the response and records the completed event.
func (r *Recorder[T]) End(pid, seq int, start uint64, val T) {
	end := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event[T]{Pid: pid, Seq: seq, Start: start, End: end, Val: val})
}

// Events returns a copy of the recorded events sorted by start stamp.
func (r *Recorder[T]) Events() []Event[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event[T], len(r.events))
	copy(out, r.events)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Violation describes a happens-before pair whose timestamps compare
// inconsistently.
type Violation[T any] struct {
	First, Second Event[T]
	// Forward is false if compare(t1, t2) returned false (it must be true);
	// Backward is true if compare(t2, t1) returned true (it must be false).
	Forward, Backward bool
}

// Error renders the violation.
func (v Violation[T]) Error() string {
	return fmt.Sprintf(
		"hbcheck: p%d.getTS#%d → p%d.getTS#%d but compare(%v, %v) = %v and compare(%v, %v) = %v",
		v.First.Pid, v.First.Seq, v.Second.Pid, v.Second.Seq,
		v.First.Val, v.Second.Val, v.Forward,
		v.Second.Val, v.First.Val, v.Backward,
	)
}

// Check verifies the happens-before property over all ordered pairs of
// events using compare, returning the first violation found (as an error)
// or nil. It is O(k²) in the number of events; executions under test are
// small by construction.
func Check[T any](events []Event[T], compare func(a, b T) bool) error {
	sorted := make([]Event[T], len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].End < sorted[j].End })
	for i, e1 := range sorted {
		for _, e2 := range sorted[i+1:] {
			if e1.End >= e2.Start {
				continue // concurrent: no constraint
			}
			fwd := compare(e1.Val, e2.Val)
			bwd := compare(e2.Val, e1.Val)
			if !fwd || bwd {
				return Violation[T]{First: e1, Second: e2, Forward: fwd, Backward: bwd}
			}
		}
	}
	return nil
}

// CheckRecorder is shorthand for Check(r.Events(), compare).
func CheckRecorder[T any](r *Recorder[T], compare func(a, b T) bool) error {
	return Check(r.Events(), compare)
}
