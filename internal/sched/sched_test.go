package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"tsspace/internal/bitset"
	"tsspace/internal/register"
)

// incrementer reads register pid and writes pid+1 back `rounds` times.
func incrementer(rounds int) Body {
	return func(pid int, mem register.Mem) (any, error) {
		for r := 0; r < rounds; r++ {
			v := mem.Read(pid)
			n := 0
			if v != nil {
				n = v.(int)
			}
			mem.Write(pid, n+1)
		}
		return pid, nil
	}
}

func TestPendingShowsFirstOp(t *testing.T) {
	sys := New(2, 2, incrementer(1))
	for pid := 0; pid < 2; pid++ {
		op, alive, err := sys.Pending(pid)
		if err != nil {
			t.Fatal(err)
		}
		if !alive {
			t.Fatalf("p%d should be alive", pid)
		}
		if op.Kind != OpRead || op.Reg != pid {
			t.Errorf("p%d pending = %v, want read(r%d)", pid, op, pid)
		}
	}
}

func TestStepExecutesAndAdvances(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	op, err := sys.Step(0) // the read
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpRead || op.Step != 0 {
		t.Errorf("first op = %+v", op)
	}
	op, _, err = sys.Pending(0)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpWrite || op.Val != 1 {
		t.Errorf("pending after read = %v, want write(r0, 1)", op)
	}
	if _, err := sys.Step(0); err != nil {
		t.Fatal(err)
	}
	if got := sys.Value(0); got != 1 {
		t.Errorf("register 0 = %v, want 1", got)
	}
	if !sys.Done(0) {
		t.Error("process should be done")
	}
}

func TestSoloRunsToCompletion(t *testing.T) {
	sys := New(1, 1, incrementer(3))
	steps, err := sys.Solo(0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 6 { // 3 rounds × (read + write)
		t.Errorf("steps = %d, want 6", steps)
	}
	if got := sys.Value(0); got != 3 {
		t.Errorf("register 0 = %v, want 3", got)
	}
	res, ok := sys.Result(0)
	if !ok || res != 0 {
		t.Errorf("Result = (%v, %v)", res, ok)
	}
}

func TestStepTerminatedErrors(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	if _, err := sys.Solo(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(0); !errors.Is(err, ErrTerminated) {
		t.Errorf("Step after termination: err = %v, want ErrTerminated", err)
	}
}

func TestRunSchedule(t *testing.T) {
	sys := New(2, 2, incrementer(1))
	if err := sys.Run(0, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Value(0) != 1 || sys.Value(1) != 1 {
		t.Errorf("registers = %v", sys.Values())
	}
	if sys.Steps() != 4 {
		t.Errorf("Steps = %d, want 4", sys.Steps())
	}
	tr := sys.Trace()
	if len(tr) != 4 || tr[0].Pid != 0 || tr[1].Pid != 1 || tr[2].Pid != 1 || tr[3].Pid != 0 {
		t.Errorf("trace = %v", tr)
	}
}

// The canonical lost-update interleaving: both processes read 0, then both
// write 1 — demonstrating the scheduler can produce exactly the adversarial
// execution we ask for.
func TestLostUpdateInterleaving(t *testing.T) {
	body := func(pid int, mem register.Mem) (any, error) {
		v := mem.Read(0)
		n := 0
		if v != nil {
			n = v.(int)
		}
		mem.Write(0, n+1)
		return nil, nil
	}
	sys := New(2, 1, body)
	if err := sys.Run(0, 1, 0, 1); err != nil { // r0 r1 w0 w1
		t.Fatal(err)
	}
	if got := sys.Value(0); got != 1 {
		t.Errorf("register 0 = %v, want 1 (lost update)", got)
	}

	// Sequential schedule yields 2.
	sys = New(2, 1, body)
	if err := sys.Run(0, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := sys.Value(0); got != 2 {
		t.Errorf("register 0 = %v, want 2", got)
	}
}

func TestCoversAndSignature(t *testing.T) {
	// Writer pid writes register pid immediately.
	sys := New(3, 3, func(pid int, mem register.Mem) (any, error) {
		mem.Write(pid%2, pid) // p0,p2 -> r0; p1 -> r1
		return nil, nil
	})
	sig, err := sys.Signature()
	if err != nil {
		t.Fatal(err)
	}
	if sig[0] != 2 || sig[1] != 1 || sig[2] != 0 {
		t.Errorf("signature = %v, want [2 1 0]", sig)
	}
	reg, ok, err := sys.Covers(0)
	if err != nil || !ok || reg != 0 {
		t.Errorf("Covers(0) = (%d, %v, %v)", reg, ok, err)
	}
}

func TestCoverOutside(t *testing.T) {
	// Process writes r0, then r1, then r2.
	sys := New(1, 3, func(pid int, mem register.Mem) (any, error) {
		for i := 0; i < 3; i++ {
			mem.Write(i, i)
		}
		return nil, nil
	})
	r := bitset.Of(0, 1)
	ok, err := sys.CoverOutside(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("process should cover outside {0,1}")
	}
	op, _, _ := sys.Pending(0)
	if op.Kind != OpWrite || op.Reg != 2 {
		t.Errorf("poised at %v, want write(r2)", op)
	}
	// The earlier writes inside R executed.
	if sys.Value(0) != 0 || sys.Value(1) != 1 || sys.Value(2) != nil {
		t.Errorf("values = %v", sys.Values())
	}
}

func TestCoverOutsideTerminates(t *testing.T) {
	sys := New(1, 2, func(pid int, mem register.Mem) (any, error) {
		mem.Write(0, "x")
		return nil, nil
	})
	ok, err := sys.CoverOutside(0, bitset.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("process writes only inside R; CoverOutside must report false")
	}
}

func TestBlockWrite(t *testing.T) {
	sys := New(3, 1, func(pid int, mem register.Mem) (any, error) {
		mem.Write(0, pid)
		return nil, nil
	})
	if err := sys.BlockWrite(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Last writer in the permutation wins.
	if got := sys.Value(0); got != 2 {
		t.Errorf("register 0 = %v, want 2", got)
	}
}

func TestBlockWriteRejectsReaders(t *testing.T) {
	sys := New(1, 1, func(pid int, mem register.Mem) (any, error) {
		mem.Read(0)
		return nil, nil
	})
	if err := sys.BlockWrite(0); err == nil {
		t.Error("block write over a reader should fail")
	}
}

// A block write obliterates all information in the covered registers: the
// indistinguishability engine behind Lemma 2.1.
func TestBlockWriteObliterates(t *testing.T) {
	run := func(firstWriter int) []register.Value {
		sys := New(3, 1, func(pid int, mem register.Mem) (any, error) {
			if pid == 2 {
				mem.Write(0, "blocker")
			} else {
				mem.Write(0, fmt.Sprintf("trace-%d", pid))
			}
			return nil, nil
		})
		// p(firstWriter) writes its trace, then the block-writer overwrites.
		if _, err := sys.Step(firstWriter); err != nil {
			t.Fatal(err)
		}
		if err := sys.BlockWrite(2); err != nil {
			t.Fatal(err)
		}
		return sys.Values()
	}
	a, b := run(0), run(1)
	if a[0] != b[0] || a[0] != "blocker" {
		t.Errorf("configurations distinguishable after block write: %v vs %v", a, b)
	}
}

func TestProcessPanicCaptured(t *testing.T) {
	sys := New(1, 1, func(pid int, mem register.Mem) (any, error) {
		mem.Read(0)
		panic("boom")
	})
	if _, err := sys.Step(0); err != nil {
		t.Fatal(err)
	}
	// Wait for termination.
	if _, alive, err := sys.Pending(0); err != nil || alive {
		t.Fatalf("alive=%v err=%v", alive, err)
	}
	if err := sys.Err(0); err == nil {
		t.Error("panic should surface via Err")
	}
}

func TestBodyErrorSurfaces(t *testing.T) {
	sys := New(1, 1, func(pid int, mem register.Mem) (any, error) {
		return nil, errors.New("body failed")
	})
	if _, alive, err := sys.Pending(0); err != nil || alive {
		t.Fatalf("alive=%v err=%v", alive, err)
	}
	if err := sys.Err(0); err == nil || err.Error() != "body failed" {
		t.Errorf("Err = %v", err)
	}
}

func TestDrain(t *testing.T) {
	sys := New(3, 3, incrementer(2))
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 3; pid++ {
		if !sys.Done(pid) {
			t.Errorf("p%d not done after Drain", pid)
		}
		if sys.Value(pid) != 2 {
			t.Errorf("register %d = %v, want 2", pid, sys.Value(pid))
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	factory := func() *System { return New(2, 2, incrementer(2)) }
	run := func() []register.Value {
		sys := factory()
		if err := sys.Run(0, 1, 0, 1, 1, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
		return sys.Values()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged: %v vs %v", a, b)
		}
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes, two ops each (read+write): C(4,2) = 6 interleavings.
	factory := func() *System { return New(2, 2, incrementer(1)) }
	count := 0
	visits, err := Explore(factory, 0, 100, func(sys *System, schedule []int) error {
		count++
		if len(schedule) != 4 {
			return fmt.Errorf("schedule %v has length %d, want 4", schedule, len(schedule))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 6 || count != 6 {
		t.Errorf("visits = %d, want 6", visits)
	}
}

func TestExploreFindsLostUpdate(t *testing.T) {
	factory := func() *System {
		return New(2, 1, func(pid int, mem register.Mem) (any, error) {
			v := mem.Read(0)
			n := 0
			if v != nil {
				n = v.(int)
			}
			mem.Write(0, n+1)
			return nil, nil
		})
	}
	lost, total := 0, 0
	if _, err := Explore(factory, 0, 100, func(sys *System, _ []int) error {
		total++
		if sys.Value(0) == 1 {
			lost++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Errorf("total = %d, want 6", total)
	}
	// Sequential schedules (2 of 6) preserve both increments.
	if lost != 4 {
		t.Errorf("lost updates in %d/%d interleavings, want 4/6", lost, total)
	}
}

func TestExploreVisitCap(t *testing.T) {
	factory := func() *System { return New(3, 3, incrementer(2)) }
	visits, err := Explore(factory, 10, 1000, func(sys *System, _ []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if visits != 10 {
		t.Errorf("visits = %d, want cap 10", visits)
	}
}

func TestSampleSchedules(t *testing.T) {
	factory := func() *System { return New(3, 3, incrementer(2)) }
	runs := 0
	err := Sample(factory, 20, 42, func(sys *System, schedule []int) error {
		runs++
		if len(schedule) != 12 { // 3 procs × 2 rounds × 2 ops
			return fmt.Errorf("schedule length %d", len(schedule))
		}
		for pid := 0; pid < 3; pid++ {
			if sys.Value(pid) != 2 {
				return fmt.Errorf("r%d = %v", pid, sys.Value(pid))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 20 {
		t.Errorf("runs = %d, want 20", runs)
	}
}

func TestSampleDeterministicSeed(t *testing.T) {
	factory := func() *System { return New(2, 2, incrementer(1)) }
	collect := func(seed int64) [][]int {
		var out [][]int
		if err := Sample(factory, 5, seed, func(_ *System, schedule []int) error {
			out = append(out, append([]int(nil), schedule...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
			t.Fatalf("same seed diverged: %v vs %v", a[i], b[i])
		}
	}
}

func TestSetValue(t *testing.T) {
	sys := New(1, 2, func(pid int, mem register.Mem) (any, error) {
		return mem.Read(1), nil
	})
	sys.SetValue(1, "preset")
	if _, err := sys.Solo(0); err != nil {
		t.Fatal(err)
	}
	res, _ := sys.Result(0)
	if res != "preset" {
		t.Errorf("result = %v, want preset", res)
	}
	if sys.Steps() != 1 {
		t.Error("SetValue must not count as a step")
	}
}

func TestCloseReleasesBlockedProcesses(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		sys := New(4, 4, incrementer(3))
		// Abandon mid-execution.
		if err := sys.Run(0, 1); err != nil {
			t.Fatal(err)
		}
		sys.Close()
	}
	// Give aborted goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+8 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+8 {
		t.Errorf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestCloseIdempotent(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	sys.Close()
	sys.Close() // must not panic
}

func TestWatchdogFiresOnStuckBody(t *testing.T) {
	old := Watchdog
	Watchdog = 50 * time.Millisecond
	defer func() { Watchdog = old }()

	block := make(chan struct{})
	defer close(block)
	sys := New(1, 1, func(pid int, mem register.Mem) (any, error) {
		<-block // stuck local computation: never posts, never terminates
		return nil, nil
	})
	if _, _, err := sys.Pending(0); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestRenderTrace(t *testing.T) {
	sys := New(2, 2, incrementer(1))
	if err := sys.Run(0, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	out := RenderTrace(sys.Trace(), 2)
	for _, want := range []string{"p0", "p1", "r0", "w0", "r1", "w1", "·"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if RenderTrace(nil, 2) != "(empty trace)\n" {
		t.Error("empty trace rendering")
	}
}
