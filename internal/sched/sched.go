// Package sched is a deterministic step scheduler for asynchronous
// shared-memory algorithms. It realizes the execution model of Section 2 of
// the paper: a configuration is the tuple of process states and register
// values; a schedule is a sequence of process indices; an execution (C;σ)
// applies one pending shared-memory operation at a time.
//
// Each process runs as a goroutine but every register operation passes
// through a gate: the process publishes its next operation and blocks until
// the scheduler grants it. Consequently the scheduler can observe the
// operation a process is *poised* to perform before it happens — exactly
// the "process p covers register r" notion that the covering arguments of
// Sections 3 and 4 are built on — and can drive solo executions, block
// writes, and arbitrary adversarial interleavings.
package sched

import (
	"errors"
	"fmt"
	"time"

	"tsspace/internal/bitset"
	"tsspace/internal/register"
)

// OpKind distinguishes the two register operations of the model.
type OpKind int

// Register operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// Op is a pending or executed register operation.
type Op struct {
	Pid  int            // process performing the operation
	Kind OpKind         // read or write
	Reg  int            // register index
	Val  register.Value // value written (writes only)
	Step int            // global step number once executed (-1 while pending)
}

// String renders the op for traces and failures.
func (o Op) String() string {
	if o.Kind == OpRead {
		return fmt.Sprintf("p%d:read(r%d)", o.Pid, o.Reg)
	}
	return fmt.Sprintf("p%d:write(r%d, %v)", o.Pid, o.Reg, o.Val)
}

// Errors reported by the scheduler.
var (
	// ErrTerminated is returned when stepping a process whose program has
	// completed.
	ErrTerminated = errors.New("sched: process has terminated")
	// ErrTimeout is returned when a process fails to reach its next
	// operation (or terminate) within the watchdog interval; it indicates a
	// deadlocked or runaway process body.
	ErrTimeout = errors.New("sched: timed out waiting for process")
	// ErrCrashed is the Err of a process halted by Crash: fault injection,
	// not a property violation. Harnesses that tolerate crashes match it
	// with errors.Is and skip the process.
	ErrCrashed = errors.New("sched: process crashed")
)

// Watchdog bounds how long the scheduler waits for a process to either post
// its next operation or terminate. Process bodies perform only local
// computation between operations, so in a correct system this never fires;
// it converts a stuck body (deadlock, infinite local loop) into ErrTimeout
// instead of a hung test. Tests may shorten it.
var Watchdog = 10 * time.Second

type request struct {
	op    Op
	reply chan register.Value
}

type proc struct {
	pid     int
	reqCh   chan request
	doneCh  chan struct{}
	killCh  chan struct{}
	startCh chan struct{} // non-nil for lazy processes; closed by Release
	started bool          // lazy process released into the system
	pending *request      // posted but not yet granted
	done    bool
	crashed bool
	result  any
	err     error
}

// errKilled marks a process aborted by System.Close; it is converted to a
// captured error by the body's recover wrapper.
var errKilled = errors.New("sched: process killed by Close")

// Body is a process program: it receives the process id and a Mem handle
// whose operations are gated by the scheduler. The returned value is
// retained and available via Result; a panic inside the body is captured
// and surfaced as an error.
type Body func(pid int, mem register.Mem) (any, error)

// System is a scheduled shared-memory system: n processes over m registers.
type System struct {
	mem   []register.Value
	procs []*proc
	trace []Op
	steps int
}

// New creates a system of n processes over m registers (all ⊥) running
// body, and launches the process goroutines. Every process immediately runs
// up to its first register operation (or termination).
func New(n, m int, body Body) *System {
	return NewLazy(n, m, n, body)
}

// NewLazy is New, but processes with pid ≥ firstLazy start parked: they do
// not run body until Release admits them. A parked process reports as
// terminated (not alive, nil error), so schedules, drains and signatures
// ignore it — it models a process that has not yet entered the system, such
// as the recovery incarnation of a pid that has not crashed yet.
func NewLazy(n, m, firstLazy int, body Body) *System {
	s := &System{
		mem:   make([]register.Value, m),
		procs: make([]*proc, n),
	}
	for i := 0; i < n; i++ {
		p := &proc{
			pid:    i,
			reqCh:  make(chan request),
			doneCh: make(chan struct{}),
			killCh: make(chan struct{}),
		}
		if i >= firstLazy {
			p.startCh = make(chan struct{})
		}
		s.procs[i] = p
		go func() {
			defer close(p.doneCh)
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errKilled) {
						p.err = errKilled
						return
					}
					p.err = fmt.Errorf("sched: process %d panicked: %v", p.pid, r)
				}
			}()
			if p.startCh != nil {
				select {
				case <-p.startCh:
				case <-p.killCh:
					return
				}
			}
			res, err := body(p.pid, &procMem{p: p, size: m})
			p.result = res
			if err != nil {
				p.err = err
			}
		}()
	}
	return s
}

// Release admits a lazy process into the system: it starts running body and
// is alive from the caller's perspective as soon as Release returns. It is
// an error to release a process that was not created lazy or was already
// released.
func (s *System) Release(pid int) error {
	p := s.procs[pid]
	if p.startCh == nil {
		return fmt.Errorf("sched: process %d is not lazy", pid)
	}
	if p.started {
		return fmt.Errorf("sched: process %d already released", pid)
	}
	p.started = true
	close(p.startCh)
	return nil
}

// procMem is the per-process gated memory handle.
type procMem struct {
	p    *proc
	size int
}

var _ register.Mem = (*procMem)(nil)

func (m *procMem) Size() int { return m.size }

func (m *procMem) Read(i int) register.Value {
	return m.post(Op{Pid: m.p.pid, Kind: OpRead, Reg: i, Step: -1})
}

func (m *procMem) Write(i int, v register.Value) {
	m.post(Op{Pid: m.p.pid, Kind: OpWrite, Reg: i, Val: v, Step: -1})
}

func (m *procMem) post(op Op) register.Value {
	req := request{op: op, reply: make(chan register.Value)}
	select {
	case m.p.reqCh <- req:
	case <-m.p.killCh:
		panic(errKilled)
	}
	select {
	case v := <-req.reply:
		return v
	case <-m.p.killCh:
		panic(errKilled)
	}
}

// N returns the number of processes.
func (s *System) N() int { return len(s.procs) }

// M returns the number of registers.
func (s *System) M() int { return len(s.mem) }

// Steps returns the number of operations executed so far.
func (s *System) Steps() int { return s.steps }

// Trace returns the executed operations in order. The returned slice must
// not be modified.
func (s *System) Trace() []Op { return s.trace }

// Value returns the current content of register i (nil for ⊥).
func (s *System) Value(i int) register.Value { return s.mem[i] }

// Values returns a copy of the register contents.
func (s *System) Values() []register.Value {
	out := make([]register.Value, len(s.mem))
	copy(out, s.mem)
	return out
}

// SetValue overwrites register i directly (test setup only; it is not an
// execution step and does not appear in the trace).
func (s *System) SetValue(i int, v register.Value) { s.mem[i] = v }

// fetch waits until process pid has posted its next operation or has
// terminated. It returns ErrTerminated or ErrTimeout accordingly.
func (s *System) fetch(pid int) (*request, error) {
	p := s.procs[pid]
	if p.pending != nil {
		return p.pending, nil
	}
	if p.done {
		return nil, ErrTerminated
	}
	if p.startCh != nil && !p.started {
		// A parked lazy process is not in the system yet; it reports as
		// terminated (with nil error) until Release.
		return nil, ErrTerminated
	}
	select {
	case req := <-p.reqCh:
		p.pending = &req
		return p.pending, nil
	case <-p.doneCh:
		p.done = true
		return nil, ErrTerminated
	case <-time.After(Watchdog):
		return nil, fmt.Errorf("%w: process %d", ErrTimeout, pid)
	}
}

// Pending returns the operation process pid is poised to perform. ok is
// false if the process has terminated. It blocks (bounded by the watchdog)
// while the process computes locally.
func (s *System) Pending(pid int) (Op, bool, error) {
	req, err := s.fetch(pid)
	if errors.Is(err, ErrTerminated) {
		return Op{}, false, nil
	}
	if err != nil {
		return Op{}, false, err
	}
	return req.op, true, nil
}

// Covers reports whether process pid is poised to write, and if so to which
// register: the covering relation of Section 2.
func (s *System) Covers(pid int) (reg int, ok bool, err error) {
	op, alive, err := s.Pending(pid)
	if err != nil || !alive || op.Kind != OpWrite {
		return 0, false, err
	}
	return op.Reg, true, nil
}

// Step executes the pending operation of process pid and runs the process
// up to its next operation (or termination). It returns the executed
// operation.
func (s *System) Step(pid int) (Op, error) {
	req, err := s.fetch(pid)
	if err != nil {
		return Op{}, err
	}
	op := req.op
	op.Step = s.steps
	var readVal register.Value
	switch op.Kind {
	case OpRead:
		readVal = s.mem[op.Reg]
	case OpWrite:
		s.mem[op.Reg] = op.Val
	}
	s.steps++
	s.trace = append(s.trace, op)
	s.procs[pid].pending = nil
	req.reply <- readVal
	// Stepping is synchronous: wait until the process completes its local
	// computation and reaches its next gate (or terminates), so that
	// configurations between steps are quiescent and any process-local
	// bookkeeping (tracers, recorders) is globally ordered with the steps.
	if _, err := s.fetch(pid); err != nil && !errors.Is(err, ErrTerminated) {
		return op, err
	}
	return op, nil
}

// Crash halts process pid at its gate: the process takes no further steps,
// ever. Its pending operation is the torn write of the crash-recovery
// model — if it is a write and applyPending is true, the write takes effect
// (and appears in the trace) without the process learning it did; otherwise
// the operation is dropped as if it never happened. Pending reads are
// always dropped: a read has no memory effect to tear. The process's Err
// becomes ErrCrashed and Done reports true, so drains and schedules skip
// it like any terminated process.
//
// Crash blocks (bounded by the watchdog) until the victim has posted its
// next operation, so the crash point is a well-defined configuration, and
// until the victim's goroutine has unwound, so no code of the victim runs
// concurrently with anything after Crash returns.
func (s *System) Crash(pid int, applyPending bool) (op Op, applied bool, err error) {
	req, err := s.fetch(pid)
	if err != nil {
		return Op{}, false, fmt.Errorf("sched: crash p%d: %w", pid, err)
	}
	p := s.procs[pid]
	op = req.op
	if applyPending && op.Kind == OpWrite {
		op.Step = s.steps
		s.mem[op.Reg] = op.Val
		s.steps++
		s.trace = append(s.trace, op)
		applied = true
	}
	p.pending = nil
	close(p.killCh) // the victim's gate panics errKilled and unwinds
	select {
	case <-p.doneCh:
	case <-time.After(Watchdog):
		return op, applied, fmt.Errorf("%w: crash p%d", ErrTimeout, pid)
	}
	p.done = true
	p.crashed = true
	p.err = fmt.Errorf("%w: p%d poised to %v (applied=%v)", ErrCrashed, pid, op, applied)
	return op, applied, nil
}

// Crashed reports whether process pid was halted by Crash.
func (s *System) Crashed(pid int) bool { return s.procs[pid].crashed }

// Run executes the schedule: one step per process index, in order.
func (s *System) Run(schedule ...int) error {
	for i, pid := range schedule {
		if _, err := s.Step(pid); err != nil {
			return fmt.Errorf("sched: schedule position %d (p%d): %w", i, pid, err)
		}
	}
	return nil
}

// Done reports whether process pid has terminated (and therefore has a
// result). It blocks (bounded by the watchdog) until the process either
// posts its next operation or terminates, so the answer is definitive.
func (s *System) Done(pid int) bool {
	_, alive, err := s.Pending(pid)
	return err == nil && !alive
}

// Solo runs process pid alone until it terminates: the solo execution of
// Section 2. It returns the number of steps taken.
func (s *System) Solo(pid int) (int, error) {
	steps := 0
	for {
		_, alive, err := s.Pending(pid)
		if err != nil {
			return steps, err
		}
		if !alive {
			return steps, nil
		}
		if _, err := s.Step(pid); err != nil {
			return steps, err
		}
		steps++
	}
}

// RunUntil steps process pid while its pending operation does NOT satisfy
// stop, leaving the process poised at the first operation satisfying stop
// (that operation is not executed). It returns false if the process
// terminated first.
func (s *System) RunUntil(pid int, stop func(Op) bool) (bool, error) {
	for {
		op, alive, err := s.Pending(pid)
		if err != nil {
			return false, err
		}
		if !alive {
			return false, nil
		}
		if stop(op) {
			return true, nil
		}
		if _, err := s.Step(pid); err != nil {
			return false, err
		}
	}
}

// CoverOutside runs process pid solo until it is poised to write to a
// register outside R (the move used throughout Lemma 4.1): the process
// pauses covering such a register. It returns false if the process
// terminated without writing outside R.
func (s *System) CoverOutside(pid int, r *bitset.Set) (bool, error) {
	return s.RunUntil(pid, func(op Op) bool {
		return op.Kind == OpWrite && !r.Contains(op.Reg)
	})
}

// BlockWrite performs a block-write (§2): each process in pids takes exactly
// one step, which must be its pending write. It fails if any process is not
// poised to write.
func (s *System) BlockWrite(pids ...int) error {
	for _, pid := range pids {
		op, alive, err := s.Pending(pid)
		if err != nil {
			return err
		}
		if !alive {
			return fmt.Errorf("sched: block write: process %d terminated", pid)
		}
		if op.Kind != OpWrite {
			return fmt.Errorf("sched: block write: process %d poised to %v, not a write", pid, op)
		}
		if _, err := s.Step(pid); err != nil {
			return err
		}
	}
	return nil
}

// Result returns the value returned by process pid's body. It is only valid
// once Done(pid) is true (after a Solo or exhausted schedule); otherwise ok
// is false.
func (s *System) Result(pid int) (any, bool) {
	if !s.Done(pid) {
		return nil, false
	}
	return s.procs[pid].result, true
}

// Err returns the error (or captured panic) from process pid's body, if it
// has terminated.
func (s *System) Err(pid int) error {
	if !s.Done(pid) {
		return nil
	}
	return s.procs[pid].err
}

// Signature returns how many processes currently cover each register: the
// configuration signature sig(C) of Section 3. Terminated and reading
// processes contribute nothing.
func (s *System) Signature() ([]int, error) {
	sig := make([]int, len(s.mem))
	for pid := range s.procs {
		reg, ok, err := s.Covers(pid)
		if err != nil {
			return nil, err
		}
		if ok {
			sig[reg]++
		}
	}
	return sig, nil
}

// Close aborts every process that is still blocked at the gate, releasing
// its goroutine. The system must not be used afterwards. Close is needed
// when an execution is abandoned mid-way (exploration replays many
// executions); draining a system to completion makes Close a no-op.
func (s *System) Close() {
	for _, p := range s.procs {
		select {
		case <-p.killCh:
		default:
			close(p.killCh)
		}
	}
}

// Drain runs every live process to completion round-robin; useful to finish
// an execution after the interesting prefix has been driven explicitly.
func (s *System) Drain() error {
	for {
		progressed := false
		for pid := range s.procs {
			_, alive, err := s.Pending(pid)
			if err != nil {
				return err
			}
			if !alive {
				continue
			}
			if _, err := s.Step(pid); err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			return nil
		}
	}
}
