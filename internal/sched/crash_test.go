package sched

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"tsspace/internal/register"
)

func TestCrashDropDiscardsPendingWrite(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	if _, err := sys.Step(0); err != nil { // the read
		t.Fatal(err)
	}
	op, applied, err := sys.Crash(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("dropped crash reported applied")
	}
	if op.Kind != OpWrite || op.Reg != 0 {
		t.Errorf("crash op = %v, want the pending write", op)
	}
	if got := sys.Value(0); got != nil {
		t.Errorf("register 0 = %v after dropped crash, want ⊥", got)
	}
	if !sys.Crashed(0) || !sys.Done(0) {
		t.Error("victim should be crashed and done")
	}
	if err := sys.Err(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("Err(0) = %v, want ErrCrashed", err)
	}
	if sys.Steps() != 1 {
		t.Errorf("steps = %d, want 1 (only the read)", sys.Steps())
	}
}

func TestCrashApplyLandsTornWrite(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	if _, err := sys.Step(0); err != nil {
		t.Fatal(err)
	}
	op, applied, err := sys.Crash(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Error("applied crash not reported applied")
	}
	if got := sys.Value(0); got != 1 {
		t.Errorf("register 0 = %v after applied crash, want 1", got)
	}
	// The torn write is a real step of the execution and is in the trace.
	trace := sys.Trace()
	if len(trace) != 2 || trace[1].Kind != OpWrite || trace[1].Step != 1 {
		t.Errorf("trace = %v, want read then the applied write", trace)
	}
	if op.Step != 1 {
		t.Errorf("crash op step = %d, want 1", op.Step)
	}
}

func TestCrashPendingReadNeverApplies(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	_, applied, err := sys.Crash(0, true) // poised at the read
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("a pending read must not be applied")
	}
	if sys.Steps() != 0 {
		t.Errorf("steps = %d, want 0", sys.Steps())
	}
}

func TestCrashTerminatedProcessFails(t *testing.T) {
	sys := New(1, 1, incrementer(1))
	if _, err := sys.Solo(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Crash(0, false); !errors.Is(err, ErrTerminated) {
		t.Errorf("crash of terminated process = %v, want ErrTerminated", err)
	}
	sys2 := New(1, 1, incrementer(1))
	if _, _, err := sys2.Crash(0, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys2.Crash(0, false); !errors.Is(err, ErrTerminated) {
		t.Errorf("double crash = %v, want ErrTerminated", err)
	}
}

func TestLazyProcessParkedUntilRelease(t *testing.T) {
	sys := NewLazy(2, 2, 1, incrementer(1))
	defer sys.Close()
	// p1 is lazy: reports terminated, contributes nothing, has no error.
	if _, alive, err := sys.Pending(1); err != nil || alive {
		t.Fatalf("parked p1 alive=%v err=%v, want terminated", alive, err)
	}
	if err := sys.Err(1); err != nil {
		t.Fatalf("parked p1 err = %v, want nil", err)
	}
	if err := sys.Drain(); err != nil { // drains only p0
		t.Fatal(err)
	}
	if got := sys.Value(1); got != nil {
		t.Errorf("register 1 = %v before release, want ⊥", got)
	}
	if err := sys.Release(1); err != nil {
		t.Fatal(err)
	}
	if _, alive, err := sys.Pending(1); err != nil || !alive {
		t.Fatalf("released p1 alive=%v err=%v, want alive", alive, err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Value(1); got != 1 {
		t.Errorf("register 1 = %v after release+drain, want 1", got)
	}
	if err := sys.Release(1); err == nil {
		t.Error("double release should fail")
	}
	if err := sys.Release(0); err == nil {
		t.Error("releasing a non-lazy process should fail")
	}
}

func TestCloseKillsParkedLazyProcess(t *testing.T) {
	sys := NewLazy(1, 1, 0, incrementer(1))
	sys.Close() // must not hang or leak the parked goroutine
	if _, alive, err := sys.Pending(0); err != nil || alive {
		t.Fatalf("after close alive=%v err=%v", alive, err)
	}
}

// TestCrashRecoveryIncarnation exercises the full fault-injection shape the
// engine builds on: a primary crashes mid-operation and a lazy recovery
// incarnation is released to finish the work on the same registers.
func TestCrashRecoveryIncarnation(t *testing.T) {
	body := func(pid int, mem register.Mem) (any, error) {
		// Both incarnations write register 0; the recovery (pid 1)
		// overwrites whatever the primary left.
		mem.Write(0, pid+1)
		return pid, nil
	}
	sys := NewLazy(2, 1, 1, body)
	defer sys.Close()
	if _, applied, err := sys.Crash(0, true); err != nil || !applied {
		t.Fatalf("crash: applied=%v err=%v", applied, err)
	}
	if err := sys.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Value(0); got != 2 {
		t.Errorf("register 0 = %v, want the recovery's 2", got)
	}
	if err := sys.Err(1); err != nil {
		t.Errorf("recovery err = %v", err)
	}
}

func TestCrashCodec(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"0,1,0,2", []int{0, 1, 0, 2}, true},
		{"0,x1,2", []int{0, CrashDrop(1), 2}, true},
		{"X0", []int{CrashApply(0)}, true},
		{" x2 , X3 ", []int{CrashDrop(2), CrashApply(3)}, true},
		{"", nil, true},
		{"x", nil, false},
		{"x-1", nil, false},
		{"y2", nil, false},
		{"-3", nil, false},
	}
	for _, c := range cases {
		got, err := ParseCrashSchedule(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseCrashSchedule(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCrashSchedule(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for pid := 0; pid < 5; pid++ {
		if p, a, c := DecodeCrash(CrashDrop(pid)); p != pid || a || !c {
			t.Errorf("DecodeCrash(CrashDrop(%d)) = %d,%v,%v", pid, p, a, c)
		}
		if p, a, c := DecodeCrash(CrashApply(pid)); p != pid || !a || !c {
			t.Errorf("DecodeCrash(CrashApply(%d)) = %d,%v,%v", pid, p, a, c)
		}
	}
	if p, a, c := DecodeCrash(7); p != 7 || a || c {
		t.Errorf("DecodeCrash(7) = %d,%v,%v", p, a, c)
	}
}

// replayCrashEntries drives a fresh 2-process incrementer system through
// the entries leniently (out-of-range, terminated and repeated-crash
// entries are skipped) and returns the executed trace rendered as text.
func replayCrashEntries(entries []int) string {
	sys := New(2, 2, incrementer(2))
	defer sys.Close()
	for _, e := range entries {
		pid, apply, isCrash := DecodeCrash(e)
		if pid < 0 || pid >= sys.N() {
			continue
		}
		if _, alive, err := sys.Pending(pid); err != nil || !alive {
			continue
		}
		if isCrash {
			if _, _, err := sys.Crash(pid, apply); err != nil {
				continue
			}
			continue
		}
		if _, err := sys.Step(pid); err != nil {
			continue
		}
	}
	var b strings.Builder
	for _, op := range sys.Trace() {
		b.WriteString(op.String())
		b.WriteByte(';')
	}
	return b.String()
}

// FuzzCrashSchedule asserts the crash-schedule contract on arbitrary
// input: the parser never panics, accepted schedules survive a
// Format/Parse round trip unchanged, and replaying a parsed schedule is
// deterministic — two fresh systems driven by the same entries execute
// identical traces.
func FuzzCrashSchedule(f *testing.F) {
	for _, seed := range []string{
		"", "0,1,0,2", "0,x1,2", "X0", "x0,X1", " x2 , X3 ",
		"1,1,x1,0,0", "x", "x-1", "y2", "-3", "X18446744073709551616",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		entries, err := ParseCrashSchedule(s)
		if err != nil {
			return
		}
		rendered := FormatCrashSchedule(entries)
		back, err := ParseCrashSchedule(rendered)
		if err != nil {
			t.Fatalf("rendered crash schedule %q does not re-parse: %v", rendered, err)
		}
		if !reflect.DeepEqual(back, entries) {
			t.Fatalf("round trip changed %v to %v (via %q)", entries, back, rendered)
		}
		if again := FormatCrashSchedule(back); again != rendered {
			t.Fatalf("formatting not stable: %q then %q", rendered, again)
		}
		if len(entries) > 64 {
			entries = entries[:64] // bound replay work, not parser coverage
		}
		if a, b := replayCrashEntries(entries), replayCrashEntries(entries); a != b {
			t.Fatalf("replay of %v not deterministic:\n%s\nvs\n%s", entries, a, b)
		}
	})
}
