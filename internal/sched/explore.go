package sched

import (
	"fmt"
	"math/rand"
)

// Factory creates a fresh system in its initial configuration. Exploration
// replays executions from scratch, so the factory must return an
// independent, deterministic system each time.
type Factory func() *System

// Visit is called with a completed system and the schedule that produced
// it. Returning an error aborts the exploration and surfaces the schedule.
type Visit func(sys *System, schedule []int) error

// Explore enumerates every maximal interleaving of the system's processes
// (depth-first over the prefix tree of schedules) and calls visit on each
// completed execution. maxVisits caps the number of complete executions
// (0 = unlimited); maxSteps caps schedule length as a runaway guard.
//
// Exhaustive exploration is exponential; it is intended for model checking
// small configurations (2 processes × 1 method call). Use Sample for larger
// systems.
func Explore(factory Factory, maxVisits, maxSteps int, visit Visit) (int, error) {
	e := &explorer{factory: factory, maxVisits: maxVisits, maxSteps: maxSteps, visit: visit}
	if err := e.dfs(nil); err != nil {
		return e.visits, err
	}
	return e.visits, nil
}

type explorer struct {
	factory   Factory
	maxVisits int
	maxSteps  int
	visit     Visit
	visits    int
}

var errVisitCap = fmt.Errorf("sched: visit cap reached")

func (e *explorer) dfs(prefix []int) error {
	if e.maxVisits > 0 && e.visits >= e.maxVisits {
		return errVisitCap
	}
	if len(prefix) > e.maxSteps {
		return fmt.Errorf("sched: exploration exceeded %d steps; runaway process?", e.maxSteps)
	}

	// Replay the prefix on a fresh system and find the live processes.
	sys := e.factory()
	defer sys.Close()
	if err := sys.Run(prefix...); err != nil {
		return fmt.Errorf("sched: replaying prefix %v: %w", prefix, err)
	}
	var live []int
	for pid := 0; pid < sys.N(); pid++ {
		if _, alive, err := sys.Pending(pid); err != nil {
			return err
		} else if alive {
			live = append(live, pid)
		}
	}
	if len(live) == 0 {
		e.visits++
		if err := e.visit(sys, prefix); err != nil {
			return fmt.Errorf("sched: schedule %v: %w", prefix, err)
		}
		return nil
	}
	for _, pid := range live {
		if err := e.dfs(append(prefix[:len(prefix):len(prefix)], pid)); err != nil {
			if err == errVisitCap {
				return nil
			}
			return err
		}
	}
	return nil
}

// Sample runs `count` random maximal interleavings drawn with the given
// seed and calls visit on each completed execution. Each live process is
// equally likely to be scheduled at every step, which exercises a broad
// band of interleavings including long solo stretches (runs of the same
// pid occur with geometric probability).
func Sample(factory Factory, count int, seed int64, visit Visit) error {
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < count; c++ {
		if err := sampleOne(factory, rng, visit); err != nil {
			return err
		}
	}
	return nil
}

func sampleOne(factory Factory, rng *rand.Rand, visit Visit) error {
	sys := factory()
	defer sys.Close()
	var schedule []int
	for {
		var live []int
		for pid := 0; pid < sys.N(); pid++ {
			if _, alive, err := sys.Pending(pid); err != nil {
				return err
			} else if alive {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			break
		}
		pid := live[rng.Intn(len(live))]
		if _, err := sys.Step(pid); err != nil {
			return err
		}
		schedule = append(schedule, pid)
	}
	if err := visit(sys, schedule); err != nil {
		return fmt.Errorf("sched: sampled schedule %v: %w", schedule, err)
	}
	return nil
}
