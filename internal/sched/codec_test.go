package sched_test

import (
	"reflect"
	"strings"
	"testing"

	"tsspace/internal/sched"
)

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"   ", nil, true},
		{"0", []int{0}, true},
		{"0,1,0,2", []int{0, 1, 0, 2}, true},
		{" 3 , 1 ,2 ", []int{3, 1, 2}, true},
		{"0,,1", nil, false},
		{"a", nil, false},
		{"1,-2", nil, false},
		{"1.5", nil, false},
		{",", nil, false},
	}
	for _, c := range cases {
		got, err := sched.ParseSchedule(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSchedule(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSchedule(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatScheduleRoundTrip(t *testing.T) {
	for _, schedule := range [][]int{nil, {0}, {0, 1, 0, 2, 17}} {
		s := sched.FormatSchedule(schedule)
		back, err := sched.ParseSchedule(s)
		if err != nil {
			t.Fatalf("round trip of %v through %q: %v", schedule, s, err)
		}
		if len(back) != len(schedule) {
			t.Errorf("round trip of %v → %q → %v", schedule, s, back)
			continue
		}
		for i := range back {
			if back[i] != schedule[i] {
				t.Errorf("round trip of %v → %q → %v", schedule, s, back)
				break
			}
		}
	}
}

// FuzzParseSchedule asserts the codec's contract on arbitrary input: the
// parser never panics; whatever it accepts contains only non-negative
// entries and survives a Format/Parse round trip unchanged.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{"", "0", "0,1,0,2", " 3 , 1 ,2 ", "1,-2", "a,b", "0,,1", "9999999999999999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		schedule, err := sched.ParseSchedule(s)
		if err != nil {
			return
		}
		for i, pid := range schedule {
			if pid < 0 {
				t.Fatalf("accepted negative entry %d at %d from %q", pid, i, s)
			}
		}
		rendered := sched.FormatSchedule(schedule)
		back, err := sched.ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("rendered schedule %q does not re-parse: %v", rendered, err)
		}
		if !reflect.DeepEqual(back, schedule) {
			t.Fatalf("round trip changed %v to %v (via %q)", schedule, back, rendered)
		}
		// The canonical rendering must be stable (idempotent formatting).
		if again := sched.FormatSchedule(back); again != rendered {
			t.Fatalf("formatting not stable: %q then %q", rendered, again)
		}
		if strings.ContainsAny(rendered, " \t\n") {
			t.Fatalf("canonical rendering %q contains whitespace", rendered)
		}
	})
}
