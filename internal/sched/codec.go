package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule decodes the textual schedule format shared by the CLIs and
// the counterexample artifacts: comma-separated process indices, optional
// whitespace around entries ("0, 1,0 ,2"). An empty or all-whitespace
// string is the empty schedule. Entries must be non-negative integers;
// range-checking against a concrete system's process count happens at
// replay time, not here.
func ParseSchedule(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, f := range parts {
		pid, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sched: bad schedule entry %q", f)
		}
		if pid < 0 {
			return nil, fmt.Errorf("sched: negative process index %d in schedule", pid)
		}
		out = append(out, pid)
	}
	return out, nil
}

// FormatSchedule renders a schedule in the format ParseSchedule accepts.
func FormatSchedule(schedule []int) string {
	parts := make([]string, len(schedule))
	for i, pid := range schedule {
		parts[i] = strconv.Itoa(pid)
	}
	return strings.Join(parts, ",")
}
