package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule decodes the textual schedule format shared by the CLIs and
// the counterexample artifacts: comma-separated process indices, optional
// whitespace around entries ("0, 1,0 ,2"). An empty or all-whitespace
// string is the empty schedule. Entries must be non-negative integers;
// range-checking against a concrete system's process count happens at
// replay time, not here.
func ParseSchedule(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, f := range parts {
		pid, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sched: bad schedule entry %q", f)
		}
		if pid < 0 {
			return nil, fmt.Errorf("sched: negative process index %d in schedule", pid)
		}
		out = append(out, pid)
	}
	return out, nil
}

// FormatSchedule renders a schedule in the format ParseSchedule accepts.
func FormatSchedule(schedule []int) string {
	parts := make([]string, len(schedule))
	for i, pid := range schedule {
		parts[i] = strconv.Itoa(pid)
	}
	return strings.Join(parts, ",")
}

// Crash-schedule encoding. A crash schedule is a plain []int schedule whose
// negative entries inject crashes, so the generic ddmin shrinker
// (mc.Shrink) minimizes crash counterexamples without knowing about them:
// a non-negative entry steps that process, CrashDrop(p) crashes process p
// discarding its pending operation, CrashApply(p) crashes it applying its
// pending write first (the torn write that landed).

// CrashDrop encodes "crash process pid, dropping its pending operation".
func CrashDrop(pid int) int { return -(2*pid + 1) }

// CrashApply encodes "crash process pid, applying its pending write".
func CrashApply(pid int) int { return -(2*pid + 2) }

// DecodeCrash splits a crash-schedule entry: for a non-negative entry it
// returns (entry, false, false); for a crash entry it returns the victim
// pid, whether the pending write is applied, and isCrash = true.
func DecodeCrash(entry int) (pid int, apply, isCrash bool) {
	if entry >= 0 {
		return entry, false, false
	}
	k := -entry - 1
	return k / 2, k%2 == 1, true
}

// ParseCrashSchedule decodes the textual crash-schedule format: the
// ParseSchedule format extended with crash tokens — "x2" crashes process 2
// dropping its pending operation, "X2" crashes it applying its pending
// write. Plain schedules parse unchanged, so every existing schedule
// artifact remains valid input.
func ParseCrashSchedule(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, f := range parts {
		tok := strings.TrimSpace(f)
		apply := false
		switch {
		case strings.HasPrefix(tok, "X"):
			apply = true
			fallthrough
		case strings.HasPrefix(tok, "x"):
			pid, err := strconv.Atoi(strings.TrimSpace(tok[1:]))
			if err != nil || pid < 0 {
				return nil, fmt.Errorf("sched: bad crash entry %q", f)
			}
			if apply {
				out = append(out, CrashApply(pid))
			} else {
				out = append(out, CrashDrop(pid))
			}
		default:
			pid, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sched: bad schedule entry %q", f)
			}
			if pid < 0 {
				return nil, fmt.Errorf("sched: negative process index %d in schedule", pid)
			}
			out = append(out, pid)
		}
	}
	return out, nil
}

// FormatCrashSchedule renders a crash schedule in the format
// ParseCrashSchedule accepts. Schedules without crash entries render
// exactly as FormatSchedule does.
func FormatCrashSchedule(schedule []int) string {
	parts := make([]string, len(schedule))
	for i, e := range schedule {
		pid, apply, isCrash := DecodeCrash(e)
		switch {
		case !isCrash:
			parts[i] = strconv.Itoa(pid)
		case apply:
			parts[i] = "X" + strconv.Itoa(pid)
		default:
			parts[i] = "x" + strconv.Itoa(pid)
		}
	}
	return strings.Join(parts, ",")
}
