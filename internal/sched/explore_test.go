package sched

import (
	"testing"

	"tsspace/internal/register"
)

// writerBody performs exactly k writes to register pid.
func writerBody(k int) Body {
	return func(pid int, mem register.Mem) (any, error) {
		for i := 0; i < k; i++ {
			mem.Write(pid, i)
		}
		return nil, nil
	}
}

// Exhaustive interleaving counts must match the multinomial coefficients:
// for p processes with k ops each, the number of maximal schedules is
// (pk)! / (k!)^p.
func TestExploreMultinomialCounts(t *testing.T) {
	cases := []struct {
		procs, ops int
		want       int
	}{
		{2, 1, 2},  // 2!/1!1!
		{2, 2, 6},  // 4!/2!2!
		{2, 3, 20}, // 6!/3!3!
		{3, 1, 6},  // 3!
		{3, 2, 90}, // 6!/2!2!2!
		{2, 4, 70}, // 8!/4!4!
	}
	for _, c := range cases {
		factory := func() *System { return New(c.procs, c.procs, writerBody(c.ops)) }
		visits, err := Explore(factory, 0, 1000, func(sys *System, schedule []int) error {
			if len(schedule) != c.procs*c.ops {
				t.Fatalf("schedule length %d", len(schedule))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if visits != c.want {
			t.Errorf("procs=%d ops=%d: visits = %d, want %d", c.procs, c.ops, visits, c.want)
		}
	}
}

// Every enumerated schedule must be distinct.
func TestExploreSchedulesDistinct(t *testing.T) {
	factory := func() *System { return New(2, 2, writerBody(2)) }
	seen := map[string]bool{}
	_, err := Explore(factory, 0, 100, func(sys *System, schedule []int) error {
		key := ""
		for _, pid := range schedule {
			key += string(rune('0' + pid))
		}
		if seen[key] {
			t.Errorf("schedule %v enumerated twice", schedule)
		}
		seen[key] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Errorf("distinct schedules = %d, want 6", len(seen))
	}
}

// Schedules with different lengths per branch: a process that reads a flag
// and conditionally writes more ops. Exploration must handle branches whose
// op counts depend on the interleaving.
func TestExploreDataDependentLengths(t *testing.T) {
	factory := func() *System {
		return New(2, 1, func(pid int, mem register.Mem) (any, error) {
			if pid == 0 {
				mem.Write(0, "set")
				return nil, nil
			}
			if mem.Read(0) != nil {
				// Saw the flag: do one extra write.
				mem.Write(0, "ack")
			}
			return nil, nil
		})
	}
	lengths := map[int]int{}
	visits, err := Explore(factory, 0, 100, func(sys *System, schedule []int) error {
		lengths[len(schedule)]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// p1-first: read ⊥ (1 op); p0-first: read set + write (2 ops).
	if lengths[2] == 0 || lengths[3] == 0 {
		t.Errorf("expected both branch lengths, got %v (visits %d)", lengths, visits)
	}
}

func TestSampleVisitErrorPropagates(t *testing.T) {
	factory := func() *System { return New(1, 1, writerBody(1)) }
	err := Sample(factory, 3, 1, func(sys *System, schedule []int) error {
		return ErrTimeout // arbitrary sentinel
	})
	if err == nil {
		t.Error("visit error must propagate")
	}
}
