package sched

import (
	"fmt"
	"strings"
)

// RenderTrace lays out an executed operation trace as a per-process
// timeline: one row per process, one column per global step, each cell
// showing the operation the process performed at that step (r3 = read
// register 3, w3 = write register 3). It is the visual form of the
// executions the lower-bound proofs manipulate and is used by cmd/tstrace.
func RenderTrace(trace []Op, n int) string {
	if len(trace) == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder
	width := 3
	for _, op := range trace {
		if w := len(fmt.Sprint(op.Reg)) + 1; w+1 > width {
			width = w + 1
		}
	}
	cell := func(s string) string {
		return fmt.Sprintf("%-*s", width, s)
	}
	// Header: step numbers every 5 columns.
	b.WriteString("      ")
	for i := range trace {
		if i%5 == 0 {
			b.WriteString(cell(fmt.Sprint(i)))
		} else {
			b.WriteString(cell(""))
		}
	}
	b.WriteByte('\n')
	for pid := 0; pid < n; pid++ {
		fmt.Fprintf(&b, "p%-4d ", pid)
		for _, op := range trace {
			if op.Pid != pid {
				b.WriteString(cell("·"))
				continue
			}
			kind := "r"
			if op.Kind == OpWrite {
				kind = "w"
			}
			b.WriteString(cell(fmt.Sprintf("%s%d", kind, op.Reg)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
