// Package hist is a log-bucketed latency histogram in the HdrHistogram
// family: constant-space, constant-time recording with a bounded relative
// error, safe for concurrent recording, and mergeable across workers.
//
// Values (nanoseconds, but the package is unit-agnostic) are placed in
// buckets whose width doubles every subCount values: values below
// 2·subCount land in exact unit buckets, and every larger bucket spans
// value/subCount at most, so any quantile read off the histogram is within
// a factor 1/(2·subCount) ≈ 1.6% of the sample it stands for. True Min and
// Max are tracked exactly on the side.
//
// All methods are safe for concurrent use: Record is a handful of atomic
// adds on a fixed array (no allocation, no locking), which is what lets
// the tsload workers and the tsserve handlers record on the operation path.
// Readers (Quantile, Summarize, Merge) see an atomically-consistent-enough
// view: each counter is loaded atomically, so a snapshot taken while
// writers are active is a valid histogram of *some* recent prefix of the
// recorded values.
package hist

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

const (
	// subBits fixes the precision: each power-of-two range is split into
	// subCount linear sub-buckets, bounding the relative quantile error by
	// 1/(2·subCount).
	subBits  = 5
	subCount = 1 << subBits // 32

	// numBuckets covers the full non-negative int64 range: exponents
	// 0..(63-subBits) of subCount sub-buckets each, plus the exact region.
	numBuckets = (64 - subBits) * subCount
)

// H is one histogram. The zero value is not ready for use; call New.
type H struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// New returns an empty histogram.
func New() *H {
	h := &H{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a value to its bucket. Values below 2·subCount are
// exact; above, the top subBits+1 significant bits select the bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - subBits // ≥ 0 here
	sub := u >> uint(exp)              // in [subCount, 2·subCount)
	return (exp+1)*subCount + int(sub) - subCount
}

// bucketMid returns the midpoint of bucket idx — the value reported for
// any sample that landed in it.
func bucketMid(idx int) int64 {
	if idx < 2*subCount {
		return int64(idx) // exact region: width-1 buckets
	}
	exp := idx/subCount - 1
	sub := uint64(idx%subCount + subCount)
	lo := sub << uint(exp)
	width := uint64(1) << uint(exp)
	return int64(lo + width/2)
}

// Record adds one value. Negative values are clamped to 0 (a latency
// histogram records durations; a clock step backwards is noise, not data).
//
// count is published last: a reader that observes Count() > 0 is
// guaranteed the min/max of at least that record are in place, so a live
// Summarize never sees the empty-histogram min sentinel. In-flight
// records that have updated buckets but not yet count only make min/max
// more extreme, never less valid.
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of recorded values.
func (h *H) Count() uint64 { return h.count.Load() }

// Min returns the smallest recorded value (exact), or 0 when empty.
func (h *H) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value (exact), or 0 when empty.
func (h *H) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of the recorded values (exact, from the
// running sum), or 0 when empty.
func (h *H) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) of the
// recorded values: the midpoint of the bucket holding the sample of rank
// ⌈q·count⌉, so the estimate is within one bucket width (≤ value/subCount)
// of that sample. Quantile(0) is Min and Quantile(1) is Max, both exact.
// An empty histogram reports 0.
func (h *H) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return h.clamp(bucketMid(i))
		}
	}
	return h.Max() // racing writers: rank computed from a newer count
}

// clamp keeps a bucket-midpoint estimate inside the exactly-tracked value
// range, so no quantile ever reads above Max or below Min.
func (h *H) clamp(v int64) int64 {
	if mx := h.max.Load(); v > mx {
		return mx
	}
	if mn := h.min.Load(); v < mn {
		return mn
	}
	return v
}

// Merge adds other's recorded values into h. Merging is commutative and
// associative (all histograms share one fixed bucket geometry), so
// per-worker histograms fold into one in any order.
func (h *H) Merge(other *H) {
	if other == nil {
		return
	}
	for i := range h.counts {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	n := other.count.Load()
	if n == 0 {
		return
	}
	h.sum.Add(other.sum.Load())
	for {
		cur, v := h.min.Load(), other.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur, v := h.max.Load(), other.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(n) // last, as in Record: count > 0 implies min/max are set
}

// CumulativeLE re-buckets the histogram onto a coarser ladder: for each
// bound (ascending) it returns the number of recorded values at or
// below it, judging each internal bucket by its midpoint — the same
// representative value Quantile reports. It also returns the running
// sum and total count, the three ingredients of a Prometheus histogram
// exposition. Like every reader it races cleanly with writers: the
// counts are a valid view of some recent prefix of the recording.
func (h *H) CumulativeLE(bounds []int64) (counts []uint64, sum int64, count uint64) {
	counts = make([]uint64, len(bounds))
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		mid := bucketMid(i)
		// First bound ≥ mid takes the bucket; later bounds inherit it via
		// the cumulative pass below.
		j := sort.Search(len(bounds), func(k int) bool { return bounds[k] >= mid })
		if j < len(bounds) {
			counts[j] += c
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	return counts, h.sum.Load(), h.count.Load()
}

// Summary is a fixed percentile digest of a histogram, the shape the
// BENCH_*.json files and the /metrics endpoint publish.
type Summary struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"`
}

// Summarize digests the histogram into its fixed percentiles.
func (h *H) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Min:   h.Min(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// String renders the digest for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d p999=%d max=%d",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.P999, s.Max)
}
