package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile returns the rank-⌈q·n⌉ element of sorted — the sample the
// histogram's Quantile estimates.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts every estimated quantile is within one bucket
// width of the exact sample: |est − exact| ≤ max(1, exact/subCount).
func checkQuantiles(t *testing.T, h *H, values []int64) {
	t.Helper()
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		bound := want / subCount
		if bound < 1 {
			bound = 1
		}
		if diff := got - want; diff < -bound || diff > bound {
			t.Errorf("Quantile(%v) = %d, exact sample %d: off by %d, bound %d",
				q, got, want, diff, bound)
		}
	}
	if h.Min() != sorted[0] {
		t.Errorf("Min = %d, want %d (exact)", h.Min(), sorted[0])
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Max = %d, want %d (exact)", h.Max(), sorted[len(sorted)-1])
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 10000)
	h := New()
	for i := range values {
		values[i] = rng.Int63n(5_000_000) // up to 5ms in ns
		h.Record(values[i])
	}
	checkQuantiles(t, h, values)
}

func TestQuantileAccuracyLogNormal(t *testing.T) {
	// Latency-shaped: a tight body with a heavy tail across many orders of
	// magnitude — the regime the log bucketing exists for.
	rng := rand.New(rand.NewSource(2))
	values := make([]int64, 20000)
	h := New()
	for i := range values {
		v := int64(math.Exp(rng.NormFloat64()*2 + 10)) // median e^10 ≈ 22µs
		values[i] = v
		h.Record(v)
	}
	checkQuantiles(t, h, values)
}

func TestQuantileAccuracySmallAndExactRegion(t *testing.T) {
	values := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	h := New()
	for _, v := range values {
		h.Record(v)
	}
	checkQuantiles(t, h, values)
	// The sub-2·subCount region is exact, not just bounded.
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("median of %v = %d, want exactly 5", values, got)
	}
}

func TestEmptyAndNegative(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", h.Summarize())
	}
	h.Record(-17) // clamped to 0
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative record not clamped to 0: %+v", h.Summarize())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's midpoint must map back to the same bucket, and indexes
	// must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Errorf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0, %d)", v, idx, numBuckets)
		}
		if back := bucketIndex(bucketMid(idx)); back != idx {
			t.Errorf("bucketMid(%d) = %d maps to bucket %d", idx, bucketMid(idx), back)
		}
	}
}

func TestMergeAssociativityAndCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([]([]int64), 3)
	var all []int64
	for i := range parts {
		parts[i] = make([]int64, 1000*(i+1))
		for j := range parts[i] {
			parts[i][j] = rng.Int63n(1 << uint(10+8*i))
		}
		all = append(all, parts[i]...)
	}
	fill := func(vs []int64) *H {
		h := New()
		for _, v := range vs {
			h.Record(v)
		}
		return h
	}

	// (a ∪ b) ∪ c
	left := fill(parts[0])
	left.Merge(fill(parts[1]))
	left.Merge(fill(parts[2]))
	// a ∪ (c ∪ b) — different association and order
	right := fill(parts[0])
	cb := fill(parts[2])
	cb.Merge(fill(parts[1]))
	right.Merge(cb)
	// direct recording of the union
	direct := fill(all)

	for _, h := range []*H{left, right} {
		if h.Summarize() != direct.Summarize() {
			t.Errorf("merge digest differs from direct recording:\n merged: %v\n direct: %v",
				h.Summarize(), direct.Summarize())
		}
	}
	if left.Summarize() != right.Summarize() {
		t.Errorf("merge not associative/commutative:\n left:  %v\n right: %v",
			left.Summarize(), right.Summarize())
	}
	checkQuantiles(t, left, all)
}

func TestMergeEmptyAndNil(t *testing.T) {
	h := New()
	h.Record(42)
	h.Merge(nil)
	h.Merge(New())
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 {
		t.Errorf("merge with nil/empty changed the histogram: %+v", h.Summarize())
	}
	empty := New()
	empty.Merge(h)
	if empty.Count() != 1 || empty.Min() != 42 {
		t.Errorf("merge into empty lost data: %+v", empty.Summarize())
	}
}

func TestConcurrentRecord(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1_000_000))
				if i%100 == 0 {
					_ = h.Quantile(0.99) // concurrent reads must be safe too
					_ = h.Summarize()
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*perWorker)
	}
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != workers*perWorker {
		t.Fatalf("bucket counts sum to %d, want %d", sum, workers*perWorker)
	}
}

func TestConcurrentMerge(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	parts := make([]*H, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		parts[w] = New()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				parts[w].Record(rng.Int63n(1_000_000))
			}
		}(w)
	}
	wg.Wait()
	total := New()
	for _, p := range parts {
		total.Merge(p)
	}
	if total.Count() != workers*perWorker {
		t.Fatalf("merged Count = %d, want %d", total.Count(), workers*perWorker)
	}
}
