package mc_test

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"tsspace/internal/mc"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// factoryFor builds a factory over per-process straight-line programs.
func factoryFor(n, m int, prog func(pid int, mem register.Mem)) sched.Factory {
	return func() *sched.System {
		return sched.New(n, m, func(pid int, mem register.Mem) (any, error) {
			prog(pid, mem)
			return nil, nil
		})
	}
}

func explore(t *testing.T, f sched.Factory, opt mc.Options) mc.Stats {
	t.Helper()
	stats, err := mc.Explore(f, opt, func(sys *sched.System, schedule []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func naiveVisits(t *testing.T, f sched.Factory) int {
	t.Helper()
	visits, err := sched.Explore(f, 0, 10_000, func(sys *sched.System, schedule []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return visits
}

// Two processes writing distinct registers commute entirely: one class.
func TestSleepSetsCollapseIndependentWrites(t *testing.T) {
	f := factoryFor(2, 2, func(pid int, mem register.Mem) {
		mem.Write(pid, int64(pid))
	})
	if n := naiveVisits(t, f); n != 2 {
		t.Fatalf("naive visits = %d, want 2", n)
	}
	stats := explore(t, f, mc.Options{SleepSets: true})
	if stats.Visited != 1 {
		t.Errorf("sleep-set visits = %d, want 1 (stats: %v)", stats.Visited, stats)
	}
	if stats.SleepPruned == 0 {
		t.Error("expected sleep-set pruning to trigger")
	}
}

// State hashing alone merges the two equivalent interleavings of two
// independent reads.
func TestStateHashMergesEquivalentPrefixes(t *testing.T) {
	f := factoryFor(2, 1, func(pid int, mem register.Mem) {
		mem.Read(0)
	})
	stats := explore(t, f, mc.Options{StateHash: true})
	if stats.Visited != 1 {
		t.Errorf("hashed visits = %d, want 1 (stats: %v)", stats.Visited, stats)
	}
	if stats.HashPruned == 0 {
		t.Error("expected a hash merge")
	}
}

// Conflicting writes to one register do NOT merge: both orders are
// distinct classes and must both be visited.
func TestConflictingWritesStayDistinct(t *testing.T) {
	f := factoryFor(2, 1, func(pid int, mem register.Mem) {
		mem.Write(0, int64(pid))
	})
	stats := explore(t, f, mc.WithPOR(nil))
	if stats.Visited != 2 {
		t.Errorf("POR visits = %d, want 2 (both write orders)", stats.Visited)
	}
}

// One write racing two reads of the same register: 3! = 6 interleavings,
// but only the read/write relative orders matter: 2 × 2 = 4 classes.
func TestClassCountWriteVersusTwoReads(t *testing.T) {
	f := factoryFor(3, 1, func(pid int, mem register.Mem) {
		if pid == 0 {
			mem.Write(0, int64(7))
		} else {
			mem.Read(0)
		}
	})
	if n := naiveVisits(t, f); n != 6 {
		t.Fatalf("naive visits = %d, want 6", n)
	}
	stats := explore(t, f, mc.WithPOR(nil))
	if stats.Visited != 4 {
		t.Errorf("POR visits = %d, want 4 (stats: %v)", stats.Visited, stats)
	}
}

// A static footprint proving the processes disjoint lets the persistent
// set collapse the exploration to a single schedule even with sleep sets
// and hashing disabled.
func TestPersistentSetsDisjointFootprints(t *testing.T) {
	f := factoryFor(2, 2, func(pid int, mem register.Mem) {
		for k := 0; k < 3; k++ {
			mem.Write(pid, int64(k))
			mem.Read(pid)
		}
	})
	if n := naiveVisits(t, f); n == 1 {
		t.Fatal("naive exploration unexpectedly trivial")
	}
	fp := func(pid int) (reads, writes []int) {
		return []int{pid}, []int{pid}
	}
	stats := explore(t, f, mc.Options{Footprint: fp})
	if stats.Visited != 1 {
		t.Errorf("persistent-set visits = %d, want 1 (stats: %v)", stats.Visited, stats)
	}
}

// An unknown footprint must degrade to the full enabled set.
func TestPersistentSetsUnknownFootprint(t *testing.T) {
	f := factoryFor(2, 2, func(pid int, mem register.Mem) {
		mem.Write(pid, int64(pid))
	})
	fp := func(pid int) (reads, writes []int) { return nil, nil }
	stats := explore(t, f, mc.Options{Footprint: fp})
	if stats.Visited != 2 {
		t.Errorf("visits = %d, want 2 (unknown footprints must not prune)", stats.Visited)
	}
}

// A visit error surfaces as a ScheduleError carrying the schedule.
func TestScheduleErrorCarriesSchedule(t *testing.T) {
	f := factoryFor(2, 1, func(pid int, mem register.Mem) {
		mem.Write(0, int64(pid))
	})
	boom := errors.New("boom")
	_, err := mc.Explore(f, mc.Options{}, func(sys *sched.System, schedule []int) error {
		if len(schedule) == 2 && schedule[0] == 1 {
			return boom
		}
		return nil
	})
	var se *mc.ScheduleError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ScheduleError", err)
	}
	if !reflect.DeepEqual(se.Schedule, []int{1, 0}) {
		t.Errorf("schedule = %v, want [1 0]", se.Schedule)
	}
	if !errors.Is(err, boom) {
		t.Error("cause not unwrapped")
	}
}

func TestMaxVisitsCapStopsCleanly(t *testing.T) {
	f := factoryFor(3, 1, func(pid int, mem register.Mem) {
		mem.Write(0, int64(pid))
	})
	stats, err := mc.Explore(f, mc.Options{MaxVisits: 2}, func(*sched.System, []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visited != 2 {
		t.Errorf("visited = %d, want exactly the cap", stats.Visited)
	}
}

// TestPORCoversExactlyTheNaiveClasses is the differential soundness test
// the whole reduction rests on: over a range of conflict-heavy systems,
// the set of Mazurkiewicz classes (canonical trace fingerprints) visited
// by the full POR stack must EQUAL the class set underlying the naive
// enumeration — nothing lost to over-pruning (sleep sets composed with
// prefix merging is classically where classes go missing), nothing
// visited twice.
func TestPORCoversExactlyTheNaiveClasses(t *testing.T) {
	systems := []struct {
		name string
		n, m int
		prog func(pid int, mem register.Mem)
	}{
		{"write-race", 3, 1, func(pid int, mem register.Mem) {
			mem.Write(0, int64(pid))
		}},
		{"collect-like", 3, 3, func(pid int, mem register.Mem) {
			for i := 0; i < 3; i++ {
				mem.Read(i)
			}
			mem.Write(pid, int64(pid+1))
		}},
		{"mixed-conflicts", 3, 2, func(pid int, mem register.Mem) {
			switch pid {
			case 0:
				mem.Write(0, int64(1))
				mem.Read(1)
			case 1:
				mem.Read(0)
				mem.Write(1, int64(2))
			default:
				mem.Read(0)
				mem.Read(1)
				mem.Write(0, int64(3))
			}
		}},
		{"two-calls", 2, 2, func(pid int, mem register.Mem) {
			for k := 0; k < 2; k++ {
				mem.Read(1 - pid)
				mem.Write(pid, int64(10*pid+k))
			}
		}},
	}
	for _, s := range systems {
		t.Run(s.name, func(t *testing.T) {
			f := factoryFor(s.n, s.m, s.prog)
			naiveClasses := map[string]bool{}
			naive, err := sched.Explore(f, 0, 10_000, func(sys *sched.System, _ []int) error {
				naiveClasses[mc.CanonicalKey(sys.Trace())] = true
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			porClasses := map[string]bool{}
			stats, err := mc.Explore(f, mc.WithPOR(nil), func(sys *sched.System, schedule []int) error {
				key := mc.CanonicalKey(sys.Trace())
				if porClasses[key] {
					t.Errorf("class visited twice: schedule %v", schedule)
				}
				porClasses[key] = true
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for key := range naiveClasses {
				if !porClasses[key] {
					t.Errorf("class missed by POR: %s", key)
				}
			}
			for key := range porClasses {
				if !naiveClasses[key] {
					t.Errorf("POR visited a class naive never produced: %s", key)
				}
			}
			t.Logf("%s: %d interleavings, %d classes, POR visited %d", s.name, naive, len(naiveClasses), stats.Visited)
		})
	}
}

// --- CausalCheck ---

func intLess(a, b int64) bool { return a < b }

// Two fully independent calls are realizable in both orders; no total
// assignment of strict compare results can satisfy both, so the checker
// must flag them — even though the single visited interleaving, checked by
// interval order alone, looks fine.
func TestCausalCheckFlagsCommutingCalls(t *testing.T) {
	trace := []sched.Op{
		{Pid: 0, Kind: sched.OpWrite, Reg: 0, Val: int64(1)},
		{Pid: 1, Kind: sched.OpWrite, Reg: 1, Val: int64(2)},
	}
	calls := []mc.Call[int64]{
		{Pid: 0, Seq: 0, First: 0, Last: 0, Val: 1},
		{Pid: 1, Seq: 0, First: 0, Last: 0, Val: 2},
	}
	err := mc.CausalCheck(2, trace, calls, intLess)
	var v mc.Violation[int64]
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation (both orders realizable)", err)
	}
}

// Calls ordered by a write-write conflict impose the obligation one way
// only.
func TestCausalCheckOrderedByConflict(t *testing.T) {
	trace := []sched.Op{
		{Pid: 0, Kind: sched.OpWrite, Reg: 0, Val: int64(1)},
		{Pid: 1, Kind: sched.OpWrite, Reg: 0, Val: int64(2)},
	}
	calls := []mc.Call[int64]{
		{Pid: 0, Seq: 0, First: 0, Last: 0, Val: 1},
		{Pid: 1, Seq: 0, First: 0, Last: 0, Val: 2},
	}
	if err := mc.CausalCheck(2, trace, calls, intLess); err != nil {
		t.Errorf("correctly ordered timestamps flagged: %v", err)
	}
	// Swap the returned values: now the forced order contradicts compare.
	calls[0].Val, calls[1].Val = 2, 1
	if err := mc.CausalCheck(2, trace, calls, intLess); err == nil {
		t.Error("inverted timestamps on a forced order not flagged")
	}
}

// Transitive dependency through a third process's write orders two reads
// that never touch a common register with a write directly: p1 read r0
// before the write, p0 read r0 after it, so p0's call can never complete
// before p1's begins.
func TestCausalCheckTransitiveOrder(t *testing.T) {
	trace := []sched.Op{
		{Pid: 1, Kind: sched.OpRead, Reg: 0},
		{Pid: 2, Kind: sched.OpWrite, Reg: 0, Val: int64(9)},
		{Pid: 0, Kind: sched.OpRead, Reg: 0},
	}
	calls := []mc.Call[int64]{
		{Pid: 0, Seq: 0, First: 0, Last: 0, Val: 5},
		{Pid: 1, Seq: 0, First: 0, Last: 0, Val: 5},
	}
	// Equal timestamps: legal only because neither call can fully precede
	// the other... but p1's CAN precede p0's, demanding compare(5,5)=true.
	err := mc.CausalCheck(3, trace, calls, intLess)
	var v mc.Violation[int64]
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation (p1's call precedes p0's)", err)
	}
	if v.First.Pid != 1 || v.Second.Pid != 0 {
		t.Errorf("violation pair = p%d→p%d, want p1→p0", v.First.Pid, v.Second.Pid)
	}
	// The reverse direction must NOT have been flagged as realizable:
	// give the pair correctly ordered values and the check passes.
	calls[1].Val = 4 // p1's earlier call gets the smaller timestamp
	if err := mc.CausalCheck(3, trace, calls, intLess); err != nil {
		t.Errorf("correctly ordered transitive pair flagged: %v", err)
	}
}

// Operation-free calls are exempt from ordering obligations.
func TestCausalCheckOpFreeCallExempt(t *testing.T) {
	trace := []sched.Op{{Pid: 0, Kind: sched.OpWrite, Reg: 0, Val: int64(1)}}
	calls := []mc.Call[int64]{
		{Pid: 0, Seq: 0, First: 0, Last: 0, Val: 2},
		{Pid: 1, Seq: 0, First: -1, Last: -1, Val: 1},
	}
	if err := mc.CausalCheck(2, trace, calls, intLess); err != nil {
		t.Errorf("op-free call imposed an obligation: %v", err)
	}
}

// --- Shrink ---

func TestShrinkMinimizes(t *testing.T) {
	count := func(c []int, v int) int {
		n := 0
		for _, x := range c {
			if x == v {
				n++
			}
		}
		return n
	}
	fails := func(c []int) bool { return count(c, 0) >= 2 && count(c, 1) >= 1 }
	in := []int{2, 0, 1, 0, 2, 1, 0, 0, 1, 2}
	out := mc.Shrink(in, fails)
	if len(out) != 3 {
		t.Fatalf("shrunk to %v (len %d), want a 3-step schedule", out, len(out))
	}
	sorted := append([]int(nil), out...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{0, 0, 1}) {
		t.Errorf("shrunk to %v, want two 0s and a 1", out)
	}
}

func TestShrinkNonFailingInputUnchanged(t *testing.T) {
	in := []int{1, 2, 3}
	out := mc.Shrink(in, func([]int) bool { return false })
	if !reflect.DeepEqual(out, in) {
		t.Errorf("non-failing schedule changed: %v", out)
	}
}
