package mc

import "tsspace/internal/sched"

// CanonicalKey exposes the Foata-normal-form fingerprint to the external
// test package, so the differential soundness test can compare the class
// sets visited by POR and naive exploration.
func CanonicalKey(trace []sched.Op) string { return canonicalKey(trace) }
