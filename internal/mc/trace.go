package mc

import (
	"fmt"
	"sort"
	"strings"

	"tsspace/internal/sched"
)

// Dependent reports whether two operations of *different* processes are
// dependent in the Mazurkiewicz sense: they do not commute. Register
// operations commute unless they target the same register and at least one
// of them is a write. Operations of the same process are always dependent
// (program order).
func Dependent(a, b sched.Op) bool {
	if a.Pid == b.Pid {
		return true
	}
	if a.Reg != b.Reg {
		return false
	}
	return a.Kind == sched.OpWrite || b.Kind == sched.OpWrite
}

// canonicalKey returns the Foata normal form of the executed trace, encoded
// as a string: the unique canonical representative of the trace's
// Mazurkiewicz equivalence class. Two prefixes have the same key iff one
// can be obtained from the other by repeatedly swapping adjacent
// independent operations — in which case they lead to identical global
// states (same register contents, same process-local states) and their
// extensions are pairwise equivalent, so the explorer may safely merge
// them.
//
// The normal form is computed by leveling: an operation's level is one more
// than the maximum level of any earlier dependent operation (its latest
// cause). Operations on the same level are pairwise independent and are
// ordered by process id; the levels concatenated give the normal form.
func canonicalKey(trace []sched.Op) string {
	type leveled struct {
		level int
		op    sched.Op
	}
	ops := make([]leveled, len(trace))
	// Running per-process and per-register level summaries make the pass
	// linear: lastProc[p] is the level of p's latest op, lastWrite[r] the
	// level of r's latest write, readsSince[r] the maximum level among
	// reads of r after that write (a write depends on those reads too).
	lastProc := map[int]int{}
	lastWrite := map[int]int{}
	readsSince := map[int]int{}
	for i, op := range trace {
		level := lastProc[op.Pid]
		if l := lastWrite[op.Reg]; l > level {
			level = l
		}
		if op.Kind == sched.OpWrite {
			if l := readsSince[op.Reg]; l > level {
				level = l
			}
		}
		level++
		ops[i] = leveled{level: level, op: op}
		lastProc[op.Pid] = level
		if op.Kind == sched.OpWrite {
			lastWrite[op.Reg] = level
			readsSince[op.Reg] = 0
		} else if level > readsSince[op.Reg] {
			readsSince[op.Reg] = level
		}
	}
	// Two ops of one process never share a level (program order), so
	// (level, pid) is a total order.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].level != ops[j].level {
			return ops[i].level < ops[j].level
		}
		return ops[i].op.Pid < ops[j].op.Pid
	})
	var b strings.Builder
	for _, l := range ops {
		if l.op.Kind == sched.OpWrite {
			// Written values are part of the state; render them into the
			// key (values are immutable and print deterministically).
			fmt.Fprintf(&b, "%d|p%dw%d=%v;", l.level, l.op.Pid, l.op.Reg, l.op.Val)
		} else {
			fmt.Fprintf(&b, "%d|p%dr%d;", l.level, l.op.Pid, l.op.Reg)
		}
	}
	return b.String()
}
