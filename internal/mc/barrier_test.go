package mc_test

import (
	"errors"
	"testing"

	"tsspace/internal/mc"
	"tsspace/internal/sched"
)

// The crash-recovery shape: p0 (a crashed primary) completed a call with
// timestamp 1, then its recovery incarnation p1 retried and got 2. The two
// calls touch disjoint registers, so no conflict edge orders them — only
// the barrier records that p1 started after p0's crash.
func barrierFixture() (trace []sched.Op, calls []mc.Call[int64]) {
	trace = []sched.Op{
		{Pid: 0, Kind: sched.OpWrite, Reg: 0, Val: int64(1), Step: 0},
		{Pid: 1, Kind: sched.OpWrite, Reg: 1, Val: int64(2), Step: 1},
	}
	calls = []mc.Call[int64]{
		{Pid: 0, Seq: 0, First: 0, Last: 0, Val: 1},
		{Pid: 1, Seq: 0, First: 0, Last: 0, Val: 2},
	}
	return trace, calls
}

func lessInt64(a, b int64) bool { return a < b }

func TestBarrierSuppressesAcausalReordering(t *testing.T) {
	trace, calls := barrierFixture()
	// Without the barrier the checker believes p1's call could have run
	// first (no conflicts force the order) and flags compare(2, 1) = false
	// — a false positive for a crash-recovery execution.
	err := mc.CausalCheck(2, trace, calls, lessInt64)
	var v mc.Violation[int64]
	if !errors.As(err, &v) {
		t.Fatalf("barrier-free check = %v, want a Violation", err)
	}
	// With the barrier (p1 starts after p0's last operation) the only
	// realizable order is p0 before p1, which the timestamps satisfy.
	err = mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: 0, After: 1}})
	if err != nil {
		t.Fatalf("barriered check = %v, want nil", err)
	}
}

func TestBarrierStillCatchesRealViolations(t *testing.T) {
	trace, calls := barrierFixture()
	// Swap the timestamps: now the recovery's call is ordered after the
	// primary's by the barrier yet compares below it — a real violation
	// the barrier must not mask.
	calls[0].Val, calls[1].Val = 2, 1
	trace[0].Val, trace[1].Val = int64(2), int64(1)
	err := mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: 0, After: 1}})
	var v mc.Violation[int64]
	if !errors.As(err, &v) {
		t.Fatalf("barriered check = %v, want a Violation", err)
	}
}

func TestBarrierNoPredecessorOpsIsNoConstraint(t *testing.T) {
	trace, calls := barrierFixture()
	if err := mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: -1, After: 1}}); err == nil {
		t.Fatal("Before=-1 must be no constraint; the false positive should reappear")
	}
}

func TestBarrierValidation(t *testing.T) {
	trace, calls := barrierFixture()
	if err := mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: 5, After: 1}}); err == nil {
		t.Error("out-of-range Before accepted")
	}
	if err := mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: 0, After: 7}}); err == nil {
		t.Error("out-of-range After accepted")
	}
	// Acausal: p0's first op is at index 0, before the barrier's index 1.
	if err := mc.CausalCheckBarriers(2, trace, calls, lessInt64, []mc.Barrier{{Before: 1, After: 0}}); err == nil {
		t.Error("acausal barrier accepted")
	}
}
