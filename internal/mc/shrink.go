package mc

// Shrink minimizes a failing schedule by greedy delta debugging: it
// repeatedly deletes chunks of the schedule (halving the chunk size down to
// single steps) as long as the candidate still fails. fails must be a pure
// replay — typically "run the candidate leniently on a fresh system, drain,
// and re-check the property" — and must return true for the input schedule,
// otherwise the schedule is returned unchanged.
//
// The result is 1-minimal with respect to deletion: removing any single
// remaining step makes the failure disappear. Minimality is about the
// scheduling decisions, not the failure itself; deterministic replay
// guarantees the returned schedule still reproduces it.
func Shrink(schedule []int, fails func([]int) bool) []int {
	cur := append([]int(nil), schedule...)
	if !fails(cur) {
		return cur
	}
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			cand := make([]int, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			if start+chunk < len(cur) {
				cand = append(cand, cur[start+chunk:]...)
			}
			if fails(cand) {
				cur = cand
				removed = true
				// Same start now names the next chunk; retry in place.
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removed {
			break
		}
		if chunk > 1 {
			chunk /= 2
		}
	}
	return cur
}
