// Package mc is a partial-order-reduced model checker for systems driven by
// the deterministic scheduler in internal/sched.
//
// The naive exploration in sched.Explore enumerates every maximal
// interleaving of the processes' operations — multinomially many, although
// most interleavings differ only in the order of commuting operations and
// are therefore indistinguishable to the algorithm under test. This package
// explores at least one representative of every Mazurkiewicz equivalence
// class of maximal executions while pruning the rest, using three classic
// reductions:
//
//   - Sleep sets: after a branch through process p has been fully explored,
//     sibling branches need not schedule p again until an operation
//     dependent with p's pending operation executes — every execution they
//     could reach through p is equivalent to one already explored.
//   - Persistent sets: when a static over-approximation of the registers
//     each process may still touch (a Footprint) shows that a subset of the
//     enabled processes cannot ever interfere with the others, exploring
//     only that subset at this state is sound.
//   - State hashing: prefixes are canonicalized to the Foata normal form of
//     their trace; two equivalent prefixes reach identical global states
//     and only the first is expanded.
//
// Properties checked on visited executions must be invariant under the
// equivalence (a pruned execution is only represented by an equivalent
// one). CausalCheck is such a checker for the timestamp happens-before
// specification: it verifies every ordering of getTS calls realizable in
// the visited execution's whole equivalence class, which both covers the
// pruned members and catches violations that a single interleaving's
// interval order would miss.
package mc

import (
	"fmt"
	"sort"

	"tsspace/internal/sched"
)

// Footprint over-approximates the register accesses a process may still
// perform over the remainder of its program: any register the process could
// ever read must be in reads, any it could ever write in writes. Returning
// nil, nil declares the footprint unknown, which makes the process conflict
// with everyone (always sound). The explorer queries footprints once per
// process per exploration.
type Footprint func(pid int) (reads, writes []int)

// Options configures an exploration. The zero value is a naive exhaustive
// DFS; WithPOR returns the full reduction stack.
type Options struct {
	// MaxVisits caps the number of complete executions visited (0 =
	// unlimited). Exploration stops cleanly at the cap.
	MaxVisits int
	// MaxSteps bounds schedule length as a runaway guard (0 = 100000).
	MaxSteps int
	// SleepSets enables sleep-set pruning.
	SleepSets bool
	// StateHash enables canonical-prefix hashing.
	StateHash bool
	// Footprint, when non-nil, enables persistent-set computation.
	Footprint Footprint
}

// WithPOR returns options with every reduction enabled (persistent sets
// only if fp is non-nil).
func WithPOR(fp Footprint) Options {
	return Options{SleepSets: true, StateHash: true, Footprint: fp}
}

// Stats reports what an exploration did. Visited counts complete
// executions — the number a naive DFS of the same system would multiply by
// the reciprocal of the reduction.
type Stats struct {
	Visited     int // complete executions checked
	Nodes       int // states expanded (including terminal ones)
	SleepPruned int // scheduling choices skipped by sleep sets
	HashPruned  int // prefixes merged with an equivalent explored prefix
	States      int // distinct canonical states recorded
	MaxDepth    int // longest schedule observed
}

// String renders the stats one-line.
func (s Stats) String() string {
	return fmt.Sprintf("visited %d schedules (%d states expanded, %d sleep-pruned, %d hash-merged, %d canonical states, depth ≤ %d)",
		s.Visited, s.Nodes, s.SleepPruned, s.HashPruned, s.States, s.MaxDepth)
}

// ScheduleError wraps a property violation together with the complete
// schedule that produced it, so callers can replay and shrink it.
type ScheduleError struct {
	Schedule []int
	Err      error
}

// Error renders the schedule and cause.
func (e *ScheduleError) Error() string {
	return fmt.Sprintf("mc: schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap returns the underlying property violation.
func (e *ScheduleError) Unwrap() error { return e.Err }

// Explore runs the partial-order-reduced search over the system the
// factory builds, calling visit on one representative of every equivalence
// class of maximal executions. A visit error aborts the search and is
// returned wrapped in a *ScheduleError.
func Explore(factory sched.Factory, opt Options, visit sched.Visit) (Stats, error) {
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 100_000
	}
	e := &explorer{factory: factory, opt: opt, visit: visit}
	if opt.StateHash {
		e.seen = make(map[string]struct{})
	}
	if opt.Footprint != nil {
		e.footprints = make(map[int]*footprint)
	}
	err := e.dfs(nil, nil)
	if err == errVisitCap {
		err = nil
	}
	e.stats.States = len(e.seen)
	return e.stats, err
}

var errVisitCap = fmt.Errorf("mc: visit cap reached")

// sleeper is a sleep-set entry: a process together with the operation it
// was poised to perform when it was put to sleep. The process has not been
// scheduled since, so the operation is still its pending one.
type sleeper struct {
	pid int
	op  sched.Op
}

type explorer struct {
	factory    sched.Factory
	opt        Options
	visit      sched.Visit
	stats      Stats
	seen       map[string]struct{}
	footprints map[int]*footprint
}

// dfs expands the state reached by prefix. sleep lists processes whose
// scheduling here is provably redundant.
func (e *explorer) dfs(prefix []int, sleep []sleeper) error {
	if len(prefix) > e.opt.MaxSteps {
		return fmt.Errorf("mc: exploration exceeded %d steps; runaway process?", e.opt.MaxSteps)
	}
	if len(prefix) > e.stats.MaxDepth {
		e.stats.MaxDepth = len(prefix)
	}

	// Replay the prefix on a fresh system.
	sys := e.factory()
	defer sys.Close()
	if err := sys.Run(prefix...); err != nil {
		return fmt.Errorf("mc: replaying prefix %v: %w", prefix, err)
	}
	e.stats.Nodes++

	// Merge with an already-explored equivalent prefix, if any.
	if e.seen != nil {
		key := canonicalKey(sys.Trace())
		if _, ok := e.seen[key]; ok {
			e.stats.HashPruned++
			return nil
		}
		e.seen[key] = struct{}{}
	}

	// Collect the enabled processes and their pending operations.
	var enabled []sleeper
	for pid := 0; pid < sys.N(); pid++ {
		op, alive, err := sys.Pending(pid)
		if err != nil {
			return err
		}
		if alive {
			enabled = append(enabled, sleeper{pid: pid, op: op})
		}
	}
	if len(enabled) == 0 {
		e.stats.Visited++
		if err := e.visit(sys, prefix); err != nil {
			return &ScheduleError{Schedule: append([]int(nil), prefix...), Err: err}
		}
		if e.opt.MaxVisits > 0 && e.stats.Visited >= e.opt.MaxVisits {
			return errVisitCap
		}
		return nil
	}

	// Restrict to a persistent set when footprints permit one.
	targets := enabled
	if e.footprints != nil {
		targets = e.persistentSet(enabled)
	}

	// Expand, threading the sleep set: a process explored here is put to
	// sleep for its later siblings, and a sleeping process wakes in the
	// child only if the executed operation is dependent with its pending
	// one.
	asleep := append([]sleeper(nil), sleep...)
	for _, t := range targets {
		if indexOf(asleep, t.pid) >= 0 {
			e.stats.SleepPruned++
			continue
		}
		var childSleep []sleeper
		if e.opt.SleepSets {
			for _, s := range asleep {
				if !Dependent(s.op, t.op) {
					childSleep = append(childSleep, s)
				}
			}
		}
		if err := e.dfs(append(prefix[:len(prefix):len(prefix)], t.pid), childSleep); err != nil {
			return err
		}
		if e.opt.SleepSets {
			asleep = append(asleep, t)
		}
	}
	return nil
}

func indexOf(ss []sleeper, pid int) int {
	for i, s := range ss {
		if s.pid == pid {
			return i
		}
	}
	return -1
}

// footprint is a resolved Footprint answer for one process.
type footprint struct {
	reads, writes map[int]bool
	unknown       bool
}

func (e *explorer) footprintFor(pid int) *footprint {
	if fp, ok := e.footprints[pid]; ok {
		return fp
	}
	reads, writes := e.opt.Footprint(pid)
	fp := &footprint{}
	if reads == nil && writes == nil {
		fp.unknown = true
	} else {
		fp.reads = make(map[int]bool, len(reads))
		for _, r := range reads {
			fp.reads[r] = true
		}
		fp.writes = make(map[int]bool, len(writes))
		for _, w := range writes {
			fp.writes[w] = true
		}
	}
	e.footprints[pid] = fp
	return fp
}

// conflicts reports whether any future operation of a process with
// footprint a may be dependent with any future operation of one with
// footprint b: a write of one touching anything the other accesses.
func conflicts(a, b *footprint) bool {
	if a.unknown || b.unknown {
		return true
	}
	for w := range a.writes {
		if b.reads[w] || b.writes[w] {
			return true
		}
	}
	for w := range b.writes {
		if a.reads[w] {
			return true
		}
	}
	return false
}

// persistentSet returns the smallest conflict-closed subset of the enabled
// processes obtainable by seeding the closure from each one in turn. A set
// P is persistent because no process outside P can ever perform an
// operation dependent with any future operation of a member — its whole
// footprint is disjoint — so every execution deferring P is equivalent to
// one taking a P-step first.
func (e *explorer) persistentSet(enabled []sleeper) []sleeper {
	best := enabled
	for _, seed := range enabled {
		in := map[int]bool{seed.pid: true}
		for changed := true; changed; {
			changed = false
			for _, q := range enabled {
				if in[q.pid] {
					continue
				}
				for p := range in {
					if conflicts(e.footprintFor(p), e.footprintFor(q.pid)) {
						in[q.pid] = true
						changed = true
						break
					}
				}
			}
		}
		if len(in) < len(best) {
			set := make([]sleeper, 0, len(in))
			for _, t := range enabled {
				if in[t.pid] {
					set = append(set, t)
				}
			}
			best = set
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].pid < best[j].pid })
	return best
}
