package mc

import (
	"fmt"

	"tsspace/internal/sched"
)

// Call locates one completed getTS() instance inside an execution: the
// process that performed it, its per-process invocation number, the
// per-process ordinals (0-based, counting only that process's operations)
// of its first and last register operation, and the timestamp it returned.
// A call that performed no operations carries First = Last = -1 and is
// exempt from ordering obligations (it can be linearized anywhere).
type Call[T any] struct {
	Pid, Seq    int
	First, Last int
	Val         T
}

// Violation is a pair of calls for which some real execution equivalent to
// the visited one orders First entirely before Second while their
// timestamps compare inconsistently with that order.
type Violation[T any] struct {
	First, Second Call[T]
	// Forward is compare(First.Val, Second.Val), which must be true;
	// Backward is compare(Second.Val, First.Val), which must be false.
	Forward, Backward bool
}

// Error renders the violation.
func (v Violation[T]) Error() string {
	return fmt.Sprintf(
		"mc: p%d.getTS#%d can happen before p%d.getTS#%d but compare(%v, %v) = %v and compare(%v, %v) = %v",
		v.First.Pid, v.First.Seq, v.Second.Pid, v.Second.Seq,
		v.First.Val, v.Second.Val, v.Forward,
		v.Second.Val, v.First.Val, v.Backward,
	)
}

// CausalCheck verifies the timestamp happens-before specification over the
// entire Mazurkiewicz equivalence class of the executed trace, not just
// the one interleaving that was run. n is the process count, trace the
// executed operations, calls the completed getTS instances.
//
// It computes conflict-based vector clocks over the trace (program order
// plus, per register, write→read, write→write and read→write edges) and
// from them decides, for every ordered pair of calls (g1, g2), whether
// some dependency-preserving reordering of the trace — an equally real
// execution returning the same timestamps — runs g1 to completion before
// g2 begins. Whenever that is realizable the specification demands
// compare(t1, t2) ∧ ¬compare(t2, t1).
//
// The check subsumes hbcheck.Check on the visited interleaving (the
// identity reordering is realizable) and extends it to every execution a
// partial-order-reduced exploration prunes, which is exactly what makes
// pruning sound: a property violation anywhere in the class is caught on
// the class representative.
func CausalCheck[T any](n int, trace []sched.Op, calls []Call[T], compare func(a, b T) bool) error {
	return CausalCheckBarriers(n, trace, calls, compare, nil)
}

// Barrier injects a causal edge the registers cannot express: every
// operation of process After happens after trace operation Before (a global
// trace index). It models crash-recovery hand-off — a recovery incarnation
// starts only after its predecessor's crash, so no reordering may move its
// operations before the predecessor's last executed operation, even when no
// register conflict forces that order. A Before of -1 (predecessor executed
// nothing observable) is no constraint.
type Barrier struct {
	Before int
	After  int
}

// CausalCheckBarriers is CausalCheck over a trace whose causality includes
// explicit barriers in addition to the conflict edges.
func CausalCheckBarriers[T any](n int, trace []sched.Op, calls []Call[T], compare func(a, b T) bool, barriers []Barrier) error {
	c, err := analyzeBarriers(n, trace, barriers)
	if err != nil {
		return err
	}
	for i, c1 := range calls {
		for j, c2 := range calls {
			if i == j || !canPrecede(c, c1, c2) {
				continue
			}
			fwd := compare(c1.Val, c2.Val)
			bwd := compare(c2.Val, c1.Val)
			if !fwd || bwd {
				return Violation[T]{First: c1, Second: c2, Forward: fwd, Backward: bwd}
			}
		}
	}
	return nil
}

// causality is the conflict-based vector-clock analysis of one trace.
type causality struct {
	n         int
	globalIdx [][]int // per-process ordinal → global trace index
	vc        [][]int // vc[i][p] = p's ops in the causal past of op i, inclusive
}

func analyze(n int, trace []sched.Op) (*causality, error) {
	return analyzeBarriers(n, trace, nil)
}

func analyzeBarriers(n int, trace []sched.Op, barriers []Barrier) (*causality, error) {
	c := &causality{n: n, globalIdx: make([][]int, n), vc: make([][]int, len(trace))}
	for i, op := range trace {
		if op.Pid < 0 || op.Pid >= n {
			return nil, fmt.Errorf("mc: trace op %d has pid %d outside [0,%d)", i, op.Pid, n)
		}
		c.globalIdx[op.Pid] = append(c.globalIdx[op.Pid], i)
	}
	// barrier[p] is the trace index whose clock joins into p's first
	// operation; program order then carries it through the rest of p.
	barrier := make(map[int]int, len(barriers))
	for _, b := range barriers {
		if b.Before < 0 {
			continue
		}
		if b.After < 0 || b.After >= n {
			return nil, fmt.Errorf("mc: barrier names pid %d outside [0,%d)", b.After, n)
		}
		if b.Before >= len(trace) {
			return nil, fmt.Errorf("mc: barrier names trace index %d past the %d-op trace", b.Before, len(trace))
		}
		if idx := c.globalIdx[b.After]; len(idx) > 0 && idx[0] <= b.Before {
			return nil, fmt.Errorf("mc: barrier is acausal: p%d already ran at trace index %d, before %d", b.After, idx[0], b.Before)
		}
		if cur, ok := barrier[b.After]; !ok || b.Before > cur {
			barrier[b.After] = b.Before
		}
	}
	procVC := make([][]int, n)
	writeVC := map[int][]int{} // register → clock of its latest write
	readVC := map[int][]int{}  // register → join of reads since that write
	ord := make([]int, n)
	join := func(dst, src []int) {
		for p := 0; p < n; p++ {
			if src != nil && src[p] > dst[p] {
				dst[p] = src[p]
			}
		}
	}
	for i, op := range trace {
		clock := make([]int, n)
		join(clock, procVC[op.Pid])
		if procVC[op.Pid] == nil {
			if before, ok := barrier[op.Pid]; ok {
				join(clock, c.vc[before])
			}
		}
		join(clock, writeVC[op.Reg])
		if op.Kind == sched.OpWrite {
			join(clock, readVC[op.Reg])
		}
		ord[op.Pid]++
		clock[op.Pid] = ord[op.Pid]
		c.vc[i] = clock
		procVC[op.Pid] = clock
		if op.Kind == sched.OpWrite {
			writeVC[op.Reg] = clock
			readVC[op.Reg] = nil
		} else {
			rv := readVC[op.Reg]
			if rv == nil {
				rv = make([]int, n)
				readVC[op.Reg] = rv
			}
			join(rv, clock)
		}
	}
	return c, nil
}

// canPrecede reports whether some execution in the class runs c1 to
// completion before c2 begins: no operation of c2 may be forced (by a
// dependency chain) before an operation of c1. The clock of c1's last
// operation counts exactly the c2-process operations so forced; c1 can
// precede c2 iff that count does not reach into c2's span.
func canPrecede[T any](c *causality, c1, c2 Call[T]) bool {
	if c1.First < 0 || c2.First < 0 {
		return false // operation-free call: exempt (fas-style objects)
	}
	if c1.Pid == c2.Pid {
		return c1.Last < c2.First
	}
	if c1.Last >= len(c.globalIdx[c1.Pid]) {
		return false
	}
	last := c.vc[c.globalIdx[c1.Pid][c1.Last]]
	return last[c2.Pid] <= c2.First
}

// WitnessSchedule turns a Violation into an explicit witness execution: a
// dependency-preserving reordering of trace (as a pid schedule) that runs
// v.First's operations to completion before v.Second performs its first
// one. Replaying the returned schedule reproduces the violation as a plain
// interval-order failure that hbcheck.Check — and therefore every existing
// tool, tstrace -schedule included — can see directly.
//
// The reordering emits the downward dependency closure of v.First's last
// operation (in trace order, a valid linearization because the closure is
// left-closed), then everything else in trace order. Since the violation
// was realizable, the closure contains no operation of v.Second. It
// returns nil if the pair is not actually realizable on this trace.
func WitnessSchedule[T any](n int, trace []sched.Op, v Violation[T]) []int {
	c, err := analyze(n, trace)
	if err != nil {
		return nil
	}
	if !canPrecede(c, v.First, v.Second) {
		return nil
	}
	last := c.vc[c.globalIdx[v.First.Pid][v.First.Last]]
	schedule := make([]int, 0, len(trace))
	ord := make([]int, n)
	inClosure := func(op sched.Op, ordinal int) bool {
		return ordinal < last[op.Pid]
	}
	for _, phase := range []bool{true, false} {
		for i := range ord {
			ord[i] = 0
		}
		for _, op := range trace {
			if inClosure(op, ord[op.Pid]) == phase {
				schedule = append(schedule, op.Pid)
			}
			ord[op.Pid]++
		}
	}
	return schedule
}
