// Package clock implements the classical logical-clock timestamping
// mechanisms the paper's introduction situates its results against:
// Lamport's scalar logical clocks (Lamport 1978) and vector clocks
// (Fidge 1988, Mattern 1989).
//
// These are *message-passing* timestamp mechanisms: every process keeps
// local state and piggybacks clock values on messages. They are cheap but
// presume cooperative stamping of every interaction — the shared-memory
// timestamp objects of the paper solve the harder problem where the only
// communication is through registers. The eventlog example contrasts the
// two worlds.
package clock

import "fmt"

// Lamport is a scalar logical clock for one process. The zero value is
// ready. Lamport clocks guarantee e1 → e2 ⟹ L(e1) < L(e2); the converse
// fails (incomparable events may have ordered stamps). Not safe for
// concurrent use: each process owns its clock.
type Lamport struct {
	time uint64
}

// Tick records a local event and returns its timestamp.
func (l *Lamport) Tick() uint64 {
	l.time++
	return l.time
}

// Send returns the timestamp to piggyback on an outgoing message.
func (l *Lamport) Send() uint64 {
	return l.Tick()
}

// Receive merges an incoming message's timestamp and returns the receive
// event's timestamp: max(local, remote) + 1.
func (l *Lamport) Receive(remote uint64) uint64 {
	if remote > l.time {
		l.time = remote
	}
	return l.Tick()
}

// Now returns the current clock value without advancing it.
func (l *Lamport) Now() uint64 { return l.time }

// Vector is a vector clock for process pid in an n-process system.
// Vector clocks characterize causality exactly:
// e1 → e2 ⟺ V(e1) < V(e2) (componentwise ≤, somewhere <).
type Vector struct {
	pid int
	v   []uint64
}

// NewVector returns a vector clock for process pid of n.
func NewVector(n, pid int) *Vector {
	if pid < 0 || pid >= n {
		panic(fmt.Sprintf("clock: pid %d out of range [0,%d)", pid, n))
	}
	return &Vector{pid: pid, v: make([]uint64, n)}
}

// Tick records a local event and returns its timestamp (a copy).
func (c *Vector) Tick() []uint64 {
	c.v[c.pid]++
	return c.Snapshot()
}

// Send returns the timestamp to piggyback on an outgoing message.
func (c *Vector) Send() []uint64 { return c.Tick() }

// Receive merges an incoming timestamp (componentwise max) and returns the
// receive event's timestamp.
func (c *Vector) Receive(remote []uint64) []uint64 {
	for i, r := range remote {
		if i < len(c.v) && r > c.v[i] {
			c.v[i] = r
		}
	}
	return c.Tick()
}

// Snapshot returns a copy of the current vector.
func (c *Vector) Snapshot() []uint64 {
	out := make([]uint64, len(c.v))
	copy(out, c.v)
	return out
}

// Order is the outcome of comparing two vector timestamps.
type Order int

// Possible causal relations between two vector timestamps.
const (
	Equal Order = iota
	Before
	After
	Concurrent
)

// String names the order.
func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// CompareVec returns the causal relation between two vector timestamps.
func CompareVec(a, b []uint64) Order {
	less, greater := false, false
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	at := func(v []uint64, i int) uint64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		switch {
		case at(a, i) < at(b, i):
			less = true
		case at(a, i) > at(b, i):
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}
