package clock

import (
	"testing"
	"testing/quick"
)

func TestLamportMonotone(t *testing.T) {
	var l Lamport
	prev := uint64(0)
	for i := 0; i < 10; i++ {
		now := l.Tick()
		if now <= prev {
			t.Fatalf("clock not monotone: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestLamportReceiveJumps(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	got := l.Receive(10)
	if got != 11 {
		t.Errorf("Receive(10) = %d, want 11", got)
	}
	if l.Receive(3) != 12 {
		t.Error("Receive with stale remote must still advance")
	}
	if l.Now() != 12 {
		t.Errorf("Now = %d", l.Now())
	}
}

// Lamport's property: message chains produce strictly increasing stamps.
func TestLamportHappensBefore(t *testing.T) {
	var a, b, c Lamport
	t1 := a.Send()
	t2 := b.Receive(t1)
	t3 := b.Send()
	t4 := c.Receive(t3)
	if !(t1 < t2 && t2 < t3 && t3 < t4) {
		t.Errorf("chain stamps not increasing: %d %d %d %d", t1, t2, t3, t4)
	}
}

func TestVectorCausality(t *testing.T) {
	a, b := NewVector(2, 0), NewVector(2, 1)
	e1 := a.Tick()     // a's local event
	m := a.Send()      // a sends
	e2 := b.Receive(m) // b receives: e1 → e2
	if CompareVec(e1, e2) != Before {
		t.Errorf("e1 vs e2 = %v, want before", CompareVec(e1, e2))
	}
	if CompareVec(e2, e1) != After {
		t.Errorf("e2 vs e1 = %v, want after", CompareVec(e2, e1))
	}
}

func TestVectorConcurrency(t *testing.T) {
	a, b := NewVector(2, 0), NewVector(2, 1)
	e1 := a.Tick()
	e2 := b.Tick()
	if CompareVec(e1, e2) != Concurrent {
		t.Errorf("independent events = %v, want concurrent", CompareVec(e1, e2))
	}
	if CompareVec(e1, e1) != Equal {
		t.Error("identical timestamps must compare equal")
	}
}

func TestCompareVecLengthMismatch(t *testing.T) {
	if CompareVec([]uint64{1}, []uint64{1, 0}) != Equal {
		t.Error("missing components are zero")
	}
	if CompareVec([]uint64{1}, []uint64{1, 2}) != Before {
		t.Error("longer vector with extra positive component is after")
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestNewVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVector(2, 5) should panic")
		}
	}()
	NewVector(2, 5)
}

// Property: vector clocks characterize causality exactly on random
// two-process message histories — Lamport clocks only one direction.
func TestQuickVectorExactness(t *testing.T) {
	f := func(script []bool) bool {
		a, b := NewVector(2, 0), NewVector(2, 1)
		var la, lb Lamport
		type ev struct {
			vec   []uint64
			lam   uint64
			cause int // index of causing event or -1
		}
		var events []ev
		for _, send := range script {
			if send {
				// a sends to b: two events, causally ordered.
				m := a.Send()
				lm := la.Send()
				events = append(events, ev{vec: m, lam: lm, cause: -1})
				events = append(events, ev{vec: b.Receive(m), lam: lb.Receive(lm), cause: len(events) - 1})
			} else {
				events = append(events, ev{vec: a.Tick(), lam: la.Tick(), cause: -1})
				events = append(events, ev{vec: b.Tick(), lam: lb.Tick(), cause: -1})
			}
		}
		for _, e := range events {
			if e.cause >= 0 {
				c := events[e.cause]
				if CompareVec(c.vec, e.vec) != Before {
					return false
				}
				if c.lam >= e.lam { // Lamport preserves →
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
