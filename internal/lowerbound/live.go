package lowerbound

import (
	"fmt"

	"tsspace/internal/bitset"
	"tsspace/internal/sched"
)

// Live adversaries: the abstract constructions of §3 and §4, turned into
// schedulers that drive a *real* algorithm execution under the
// deterministic scheduler. Where LongLivedConstruction and
// OneShotConstruction replay the proofs' accounting against a placement
// policy, the live adversaries exercise the same moves — run a process
// solo until it is poised to write (Lemma 2.1 / Lemma 4.1), hold it
// covering, block-write to release covered registers — against an actual
// implementation, and measure how many registers they force it to cover
// simultaneously. The measured coverage confronts the analytic
// certificates LongLivedLower / OneShotLower: any implementation
// satisfying the theorems' hypotheses must be steerable to at least that
// many simultaneously covered registers.

// LiveReport is the outcome of one live adversary execution.
type LiveReport struct {
	Adversary string
	N         int // scheduler processes
	M         int // registers of the implementation under attack
	// MaxCovered is the maximum number of simultaneously covered
	// registers observed at any point of the execution (the quantity the
	// lower-bound theorems are about).
	MaxCovered int
	// Certificate is the analytic bound the adversary confronts
	// (LongLivedLower or OneShotLower for N), and Margin is
	// MaxCovered − Certificate (≥ 0 when the confrontation succeeds).
	Certificate int
	Margin      int
	Steps       int // scheduler operations consumed
	Consumed    int // processes that took at least one step
	Rounds      int // block-write/re-cover rounds executed (long-lived only)
	Recycled    int // processes released by block writes and re-covered
	// FinalSignature is sig(C) of the final configuration reached.
	FinalSignature Signature
}

// String renders the one-line summary used by the tscheck confrontation
// table.
func (r *LiveReport) String() string {
	return fmt.Sprintf("%s: n=%d m=%d covered=%d certificate=%d margin=%+d steps=%d",
		r.Adversary, r.N, r.M, r.MaxCovered, r.Certificate, r.Margin, r.Steps)
}

// observe folds the current configuration signature into the report.
func (r *LiveReport) observe(sys *sched.System) error {
	sig, err := sys.Signature()
	if err != nil {
		return err
	}
	if c := Signature(sig).CoveredRegisters(); c > r.MaxCovered {
		r.MaxCovered = c
	}
	r.FinalSignature = Signature(sig)
	return nil
}

// LiveOneShot runs the §4-style greedy covering adversary on a fresh
// system from the factory: each process in turn is run solo until it is
// poised to write a register outside the set already covered (the
// Lemma 4.1 move, sched.CoverOutside), growing a set of distinctly
// covered registers. Processes that terminate without leaving the covered
// set are consumed without contributing. The factory must produce systems
// whose processes each perform one timestamp call (the one-shot
// workload); the report's certificate is OneShotLower(n).
func LiveOneShot(factory sched.Factory) (*LiveReport, error) {
	sys := factory()
	defer sys.Close()
	n := sys.N()
	rep := &LiveReport{
		Adversary:   "live-one-shot-cover",
		N:           n,
		M:           sys.M(),
		Certificate: OneShotLower(n),
	}
	covered := bitset.New(sys.M())
	for pid := 0; pid < n; pid++ {
		before := sys.Steps()
		poised, err := sys.CoverOutside(pid, covered)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: %s: p%d: %w", rep.Adversary, pid, err)
		}
		if sys.Steps() > before {
			rep.Consumed++
		}
		if !poised {
			continue // terminated inside the covered set
		}
		reg, ok, err := sys.Covers(pid)
		if err != nil || !ok {
			return nil, fmt.Errorf("lowerbound: %s: p%d reported poised but covers nothing (%v)", rep.Adversary, pid, err)
		}
		covered.Add(reg)
		if err := rep.observe(sys); err != nil {
			return nil, err
		}
	}
	rep.Steps = sys.Steps()
	rep.Margin = rep.MaxCovered - rep.Certificate
	return rep, nil
}

// LiveLongLived runs the §3-style clone-and-cover adversary: every
// process is first parked covering a register with at most two other
// coverers (keeping the configuration a candidate (3,k)-configuration),
// then for `rounds` rounds the adversary block-writes the most-covered
// register — releasing its coverers exactly as Lemma 3.2's block writes
// do — and re-covers each released process on a ≤2-covered register of
// its next call. The factory must produce systems whose processes perform
// enough calls to survive the requested rounds (long-lived workload); the
// certificate is LongLivedLower(n).
func LiveLongLived(factory sched.Factory, rounds int) (*LiveReport, error) {
	sys := factory()
	defer sys.Close()
	n := sys.N()
	rep := &LiveReport{
		Adversary:   "live-clone-and-cover",
		N:           n,
		M:           sys.M(),
		Certificate: LongLivedLower(n),
	}

	// cover parks pid on a register currently covered by at most two
	// processes, or runs it to termination. The heights snapshot is taken
	// before the solo run: only pid moves during it, and a running
	// process covers nothing, so the snapshot stays exact.
	cover := func(pid int) (bool, error) {
		sig, err := sys.Signature()
		if err != nil {
			return false, err
		}
		before := sys.Steps()
		poised, err := sys.RunUntil(pid, func(op sched.Op) bool {
			return op.Kind == sched.OpWrite && sig[op.Reg] <= 2
		})
		if sys.Steps() > before {
			rep.Consumed++
		}
		if err != nil {
			return false, fmt.Errorf("lowerbound: %s: p%d: %w", rep.Adversary, pid, err)
		}
		return poised, nil
	}

	for pid := 0; pid < n; pid++ {
		if _, err := cover(pid); err != nil {
			return nil, err
		}
		if err := rep.observe(sys); err != nil {
			return nil, err
		}
	}

	for round := 0; round < rounds; round++ {
		// The block write of Lemma 3.2: release every coverer of the
		// most-covered register by letting each take exactly its pending
		// write step.
		sig, err := sys.Signature()
		if err != nil {
			return nil, err
		}
		target, best := -1, 0
		for reg, h := range sig {
			if h > best {
				target, best = reg, h
			}
		}
		if target < 0 {
			break // nothing covered: every process terminated
		}
		var writers []int
		for pid := 0; pid < n; pid++ {
			if reg, ok, err := sys.Covers(pid); err != nil {
				return nil, err
			} else if ok && reg == target {
				writers = append(writers, pid)
			}
		}
		if err := sys.BlockWrite(writers...); err != nil {
			return nil, fmt.Errorf("lowerbound: %s: round %d: %w", rep.Adversary, round, err)
		}
		rep.Rounds++
		// Clone-and-cover: the released processes continue their call
		// sequence and are parked covering again.
		for _, pid := range writers {
			poised, err := cover(pid)
			if err != nil {
				return nil, err
			}
			if poised {
				rep.Recycled++
			}
		}
		if err := rep.observe(sys); err != nil {
			return nil, err
		}
	}

	rep.Steps = sys.Steps()
	rep.Margin = rep.MaxCovered - rep.Certificate
	return rep, nil
}
