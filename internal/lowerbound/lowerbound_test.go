package lowerbound

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignatureBasics(t *testing.T) {
	sig := Signature{3, 1, 0, 2}
	if sig.Sum() != 6 {
		t.Errorf("Sum = %d", sig.Sum())
	}
	if sig.CoveredRegisters() != 3 {
		t.Errorf("CoveredRegisters = %d", sig.CoveredRegisters())
	}
	if !sig.Is3K(6) || sig.Is3K(5) {
		t.Error("Is3K misbehaves on count")
	}
	if (Signature{4, 1}).Is3K(5) {
		t.Error("Is3K must reject entries > 3")
	}
	r3 := sig.R3()
	if len(r3) != 1 || r3[0] != 0 {
		t.Errorf("R3 = %v", r3)
	}
	if !sig.Equal(sig.Clone()) {
		t.Error("clone not equal")
	}
	if sig.Equal(Signature{3, 1, 0}) {
		t.Error("length mismatch must not be equal")
	}
}

func TestOrderedSignature(t *testing.T) {
	o := Signature{1, 5, 0, 3}.Ordered()
	want := OrderedSignature{5, 3, 1, 0}
	for i := range want {
		if o[i] != want[i] {
			t.Fatalf("Ordered = %v, want %v", o, want)
		}
	}
	if o.String() != "(5, 3, 1, 0)" {
		t.Errorf("String = %q", o.String())
	}
}

func TestLConstrained(t *testing.T) {
	// ℓ=4: need s1≤3, s2≤2, s3≤1, s4≤0.
	if !(OrderedSignature{3, 2, 1, 0}).LConstrained(4) {
		t.Error("boundary case should be ℓ-constrained")
	}
	if (OrderedSignature{4, 2, 1, 0}).LConstrained(4) {
		t.Error("s1=4 > 3 must fail")
	}
	if (OrderedSignature{3, 2, 1, 1}).LConstrained(4) {
		t.Error("s4=1 > 0 must fail")
	}
	// Short signatures: missing entries are 0.
	if !(OrderedSignature{2}).LConstrained(4) {
		t.Error("short signature should pass")
	}
}

func TestJKFull(t *testing.T) {
	o := OrderedSignature{5, 3, 3, 1}
	if !o.JKFull(3, 3) || o.JKFull(3, 4) || o.JKFull(5, 1) || o.JKFull(0, 1) {
		t.Error("JKFull misbehaves")
	}
}

func TestGridRendering(t *testing.T) {
	o := OrderedSignature{5, 4, 1, 1, 0, 0}
	g := Grid(o, 6)
	if !strings.Contains(g, "#") || !strings.Contains(g, ".") {
		t.Fatalf("grid missing marks:\n%s", g)
	}
	// Column 2 has height 4 = ℓ−2: it touches the diagonal → a '*'.
	if !strings.Contains(g, "*") {
		t.Errorf("diagonal touch not starred:\n%s", g)
	}
	if DiagonalColumn(o, 6) != 1 {
		// s1 = 5 = 6−1: column 1 reaches the diagonal.
		t.Errorf("DiagonalColumn = %d, want 1", DiagonalColumn(o, 6))
	}
	if DiagonalColumn(OrderedSignature{1, 1}, 6) != 0 {
		t.Error("no column should reach the diagonal")
	}
}

func TestBoundFormulas(t *testing.T) {
	cases := []struct {
		n                     int
		llLower, llUpper      int
		osM, osLower, osUpper int
		simple                int
	}{
		{n: 18, llLower: 3, llUpper: 17, osM: 6, osLower: 1, osUpper: 9, simple: 9},
		{n: 100, llLower: 16, llUpper: 99, osM: 14, osLower: 5, osUpper: 20, simple: 50},
		{n: 5000, llLower: 833, llUpper: 4999, osM: 100, osLower: 85, osUpper: 142, simple: 2500},
	}
	for _, c := range cases {
		if got := LongLivedLower(c.n); got != c.llLower {
			t.Errorf("LongLivedLower(%d) = %d, want %d", c.n, got, c.llLower)
		}
		if got := LongLivedUpper(c.n); got != c.llUpper {
			t.Errorf("LongLivedUpper(%d) = %d, want %d", c.n, got, c.llUpper)
		}
		if got := OneShotM(c.n); got != c.osM {
			t.Errorf("OneShotM(%d) = %d, want %d", c.n, got, c.osM)
		}
		if got := OneShotLower(c.n); got != c.osLower {
			t.Errorf("OneShotLower(%d) = %d, want %d", c.n, got, c.osLower)
		}
		if got := OneShotUpper(c.n); got != c.osUpper {
			t.Errorf("OneShotUpper(%d) = %d, want %d", c.n, got, c.osUpper)
		}
		if got := SimpleUpper(c.n); got != c.simple {
			t.Errorf("SimpleUpper(%d) = %d, want %d", c.n, got, c.simple)
		}
	}
	if SignatureSpace3K(3) != 64 {
		t.Errorf("SignatureSpace3K(3) = %d", SignatureSpace3K(3))
	}
}

// The asymptotic separation (the paper's headline): for large n the
// one-shot upper bound is far below the long-lived lower bound.
func TestGapAsymptotics(t *testing.T) {
	for _, n := range []int{200, 2000, 20000} {
		if OneShotUpper(n) >= LongLivedLower(n) {
			t.Errorf("n=%d: one-shot upper %d not below long-lived lower %d",
				n, OneShotUpper(n), LongLivedLower(n))
		}
	}
}

func TestLongLivedConstructionAllPolicies(t *testing.T) {
	for _, n := range []int{2, 6, 7, 12, 50, 300} {
		for _, pol := range Policies(42) {
			t.Run(fmt.Sprintf("n=%d/%s", n, pol.Name()), func(t *testing.T) {
				rep, err := LongLivedConstruction(n, pol)
				if err != nil {
					t.Fatal(err)
				}
				if rep.K != n/2 {
					t.Errorf("final k = %d, want %d", rep.K, n/2)
				}
				if rep.Covered < LongLivedLower(n) {
					t.Errorf("covered %d < bound %d", rep.Covered, LongLivedLower(n))
				}
				if rep.ProcessesUsed != 2*(n/2) {
					t.Errorf("processes used %d", rep.ProcessesUsed)
				}
				// Every step's signature is a (3,k)-configuration (checked
				// internally too; re-verify from the record).
				for _, st := range rep.Steps {
					if !st.Signature.Is3K(st.K) {
						t.Errorf("step %d signature %v not (3,%d)", st.K, st.Signature, st.K)
					}
				}
			})
		}
	}
}

// The worst-case policy (fill each register to 3) yields exactly ⌈k/3⌉
// covered registers — the construction's guaranteed minimum.
func TestLongLivedWorstCaseExact(t *testing.T) {
	n := 60
	rep, err := LongLivedConstruction(n, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	k := n / 2
	want := (k + 2) / 3
	if rep.Covered != want {
		t.Errorf("first-fit covered %d, want exactly ⌈k/3⌉ = %d", rep.Covered, want)
	}
}

// The best-case policy (spread) covers k registers; the bound still holds.
func TestLongLivedSpreadCoversK(t *testing.T) {
	n := 40
	rep, err := LongLivedConstruction(n, LowestFirst{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != n/2 {
		t.Errorf("lowest-first covered %d, want k = %d", rep.Covered, n/2)
	}
}

func TestLongLivedRejectsTinyN(t *testing.T) {
	if _, err := LongLivedConstruction(1, FirstFit{}); err == nil {
		t.Error("n=1 should be rejected")
	}
}

func TestOneShotConstructionAllPolicies(t *testing.T) {
	for _, n := range []int{8, 18, 32, 72, 200, 1000, 5000} {
		for _, pol := range Policies(7) {
			t.Run(fmt.Sprintf("n=%d/%s", n, pol.Name()), func(t *testing.T) {
				rep, err := OneShotConstruction(n, pol)
				if err != nil {
					t.Fatal(err)
				}
				if rep.FinalJ < rep.Bound {
					t.Errorf("final j = %d < bound %d (m=%d)", rep.FinalJ, rep.Bound, rep.M)
				}
				if rep.Covered() < rep.FinalJ {
					t.Errorf("covered %d < full registers %d", rep.Covered(), rep.FinalJ)
				}
				if rep.IdleLeft < 1 {
					t.Errorf("idle exhausted: %d", rep.IdleLeft)
				}
				t.Logf("n=%d m=%d: j_last=%d ℓ_last=%d case2=%d steps=%d consumed=%d",
					n, rep.M, rep.FinalJ, rep.FinalL, rep.Case2Count, len(rep.Steps), rep.Consumed)
			})
		}
	}
}

// Figure 1: the initial configuration has a column reaching the diagonal.
func TestFigure1Reproduction(t *testing.T) {
	rep, err := OneShotConstruction(200, LowestFirst{})
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Steps[0]
	o := first.Ordered()
	col := DiagonalColumn(o, rep.M)
	if col == 0 {
		t.Fatalf("step 1 reached no diagonal column: %v", o)
	}
	g := Grid(o, rep.M)
	if !strings.Contains(g, "*") {
		t.Errorf("Figure 1 grid has no diagonal touch:\n%s", g)
	}
	t.Logf("Figure 1 (n=200, m=%d): j1=%d\n%s", rep.M, first.J, g)
}

// Figure 2: along the construction both Case 1 and Case 2 steps occur (for
// a policy that exercises both), and Case 2 halves the idle pool at most
// log n times.
func TestFigure2Cases(t *testing.T) {
	seenCase2 := false
	for _, pol := range Policies(3) {
		rep, err := OneShotConstruction(1000, pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range rep.Steps[1:] {
			if st.Case == 2 {
				seenCase2 = true
				if st.Nu != 1 || st.BlockWrites != 2 {
					t.Errorf("Case 2 step with ν=%d bw=%d", st.Nu, st.BlockWrites)
				}
			}
		}
	}
	if !seenCase2 {
		t.Log("no Case 2 steps observed under the standard policies (Case 2 requires ν=1 after two block writes)")
	}
}

func TestOneShotRejectsTinyN(t *testing.T) {
	if _, err := OneShotConstruction(2, FirstFit{}); err == nil {
		t.Error("n=2 should be rejected")
	}
}

// Property: for random n, the construction succeeds for every policy and
// respects the bound.
func TestQuickOneShotBound(t *testing.T) {
	f := func(seed int64, raw uint16) bool {
		n := int(raw)%3000 + 3
		rep, err := OneShotConstruction(n, NewRandomPolicy(seed))
		if err != nil {
			t.Logf("n=%d: %v", n, err)
			return false
		}
		return rep.FinalJ >= rep.Bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ordered signatures are permutations: Sum preserved, sorted.
func TestQuickOrderedIsSortedPermutation(t *testing.T) {
	f := func(raw []uint8) bool {
		sig := make(Signature, len(raw))
		for i, v := range raw {
			sig[i] = int(v % 7)
		}
		o := sig.Ordered()
		sum := 0
		for i, v := range o {
			sum += v
			if i > 0 && o[i-1] < v {
				return false
			}
		}
		return sum == sig.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOneShotConstruction(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := OneShotConstruction(n, LowestFirst{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Case 2 of the §4 construction (Figure 2, right panel) requires a finely
// tuned implementation: the diagonal must be reached at column j+1 (ν = 1)
// only after the second block write. No oblivious policy produces it, so we
// script one: n = 32 gives m = 8; step 1 piles two columns to height 6
// (ν = 2, j = 2, ℓ = 8); step 2 makes nine "safe" staircase placements
// (4, 3, 2 on three fresh columns — never feasible for any ν), which
// exhausts half the idle budget and triggers the second block write, and
// the tenth placement spikes the height-4 column to 5 = ℓ−j−1: ν = 1 after
// two block writes — Case 2, decrementing ℓ.
func TestFigure2Case2Scripted(t *testing.T) {
	script := &Scripted{
		Moves: []int{
			0, 0, 0, 0, 0, 0, // step 1: col 0 → height 6
			1, 1, 1, 1, 1, 1, // step 1: col 1 → height 6, triggers ν=2
			2, 2, 2, 2, // step 2: col 2 → height 4 (safe: < ℓ−j−1 = 5)
			3, 3, 3, // col 3 → height 3
			4, 4, // col 4 → height 2; 9 placements ≥ ⌊budget/2⌋ → block write 2
			2, // spike col 2 → height 5 = ℓ−j−1: ν=1 after 2 block writes
		},
		Fallback: HighestFirst{},
	}
	rep, err := OneShotConstructionQ(32, script, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case2Count == 0 {
		t.Fatalf("scripted run produced no Case 2 step: %+v", stepsSummary(rep))
	}
	var c2 *OneShotStep
	for i := range rep.Steps {
		if rep.Steps[i].Case == 2 {
			c2 = &rep.Steps[i]
			break
		}
	}
	if c2.Nu != 1 || c2.BlockWrites != 2 {
		t.Errorf("Case 2 step has ν=%d bw=%d, want 1 and 2", c2.Nu, c2.BlockWrites)
	}
	// ℓ dropped by exactly the number of Case 2 steps.
	if rep.FinalL != rep.M-rep.Case2Count {
		t.Errorf("ℓ_last = %d, want m−δ = %d", rep.FinalL, rep.M-rep.Case2Count)
	}
	// The bound survives Case 2.
	if rep.FinalJ < rep.Bound {
		t.Errorf("final j = %d < bound %d", rep.FinalJ, rep.Bound)
	}
	t.Logf("Case 2 at step %d (j=%d, ℓ=%d)\n%s", c2.K, c2.J, c2.L, Grid(c2.Ordered(), c2.L))
}

func stepsSummary(rep *OneShotReport) []string {
	var out []string
	for _, st := range rep.Steps {
		out = append(out, fmt.Sprintf("k=%d bw=%d placed=%d nu=%d case=%d j=%d l=%d",
			st.K, st.BlockWrites, st.Placed, st.Nu, st.Case, st.J, st.L))
	}
	return out
}

// Golden rendering: the exact grid for the package-documented example.
func TestGridGolden(t *testing.T) {
	got := Grid(OrderedSignature{5, 4, 1, 1, 0, 0}, 6)
	want := "" +
		"  5 | *          \n" +
		"  4 | # *        \n" +
		"  3 | # # .      \n" +
		"  2 | # #   .    \n" +
		"  1 | # # # # .  \n" +
		"    +------------\n" +
		"      1 2 3 4 5 6\n"
	if got != want {
		t.Errorf("grid mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Property: DiagonalColumn agrees with a direct scan of the definition.
func TestQuickDiagonalColumn(t *testing.T) {
	f := func(raw []uint8, lRaw uint8) bool {
		o := make(OrderedSignature, len(raw))
		for i, v := range raw {
			o[i] = int(v % 12)
		}
		// Sort non-increasing to be a valid ordered signature.
		for a := 0; a < len(o); a++ {
			for b := a + 1; b < len(o); b++ {
				if o[b] > o[a] {
					o[a], o[b] = o[b], o[a]
				}
			}
		}
		l := int(lRaw%12) + 1
		got := DiagonalColumn(o, l)
		want := 0
		for c := 1; c <= len(o); c++ {
			if o[c-1] >= l-c {
				want = c
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The two Q-selection rules both respect the Theorem 1.2 bound.
func TestOneShotSmallQBound(t *testing.T) {
	for _, n := range []int{32, 200, 2000} {
		for _, pol := range Policies(13) {
			rep, err := OneShotConstructionQ(n, pol, true)
			if err != nil {
				t.Fatalf("n=%d %s smallQ: %v", n, pol.Name(), err)
			}
			if rep.FinalJ < rep.Bound {
				t.Errorf("n=%d %s smallQ: j=%d < bound %d", n, pol.Name(), rep.FinalJ, rep.Bound)
			}
		}
	}
}

// LongLivedConstruction trajectory invariants: R3 size grows ⌊k/3⌋-ish and
// block-writer counts are 3·|R3|.
func TestLongLivedBlockWriteAccounting(t *testing.T) {
	rep, err := LongLivedConstruction(30, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.Steps {
		if st.BlockWrite != 3*st.R3Size {
			t.Errorf("step %d: block writers %d != 3·|R3| = %d", st.K, st.BlockWrite, 3*st.R3Size)
		}
	}
}

// Lemma 3.1's pigeonhole engine, executable: along any sequence of
// (3,k)-configurations over m registers, two equal signatures appear
// within 4^m + 1 steps, because signatures with entries in {0,1,2,3} are
// only 4^m strong. We drive a random signature walk and verify the
// repetition bound.
func TestLemma31PigeonholeRepetition(t *testing.T) {
	const m = 5 // 4^5 = 1024 signatures
	space := SignatureSpace3K(m)
	rng := newDetRand(99)
	sig := make(Signature, m)
	seen := map[string]int{}
	key := func(s Signature) string {
		out := make([]byte, m)
		for i, c := range s {
			out[i] = byte('0' + c)
		}
		return string(out)
	}
	for step := 0; step <= space; step++ {
		if prev, ok := seen[key(sig)]; ok {
			t.Logf("signature repeated: steps %d and %d (space 4^m = %d)", prev, step, space)
			return
		}
		seen[key(sig)] = step
		// Random (3,·)-preserving mutation.
		r := rng.Intn(m)
		if sig[r] < 3 && rng.Intn(2) == 0 {
			sig[r]++
		} else if sig[r] > 0 {
			sig[r]--
		}
	}
	t.Fatalf("no repetition within 4^m + 1 = %d steps: pigeonhole broken", space+1)
}

func newDetRand(seed int64) *detRand { return &detRand{state: uint64(seed)} }

// detRand is a tiny splitmix64 generator (keeps the test free of
// math/rand's global state).
type detRand struct{ state uint64 }

func (r *detRand) Intn(n int) int {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}
