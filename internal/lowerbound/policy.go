package lowerbound

import "math/rand"

// Policy models the one degree of freedom the lower-bound constructions
// leave to the implementation under attack: when a process is run solo
// until it is poised to write outside the protected register set R
// (Lemma 2.1 / Lemma 4.1), the *implementation* determines which register
// it covers. The theorems hold for every such choice; the replays verify
// their accounting against several adversarial policies.
type Policy interface {
	Name() string
	// Pick returns one element of candidates (register indices outside R,
	// never empty). heights[i] is the current number of processes covering
	// register i.
	Pick(heights []int, candidates []int) int
}

// LowestFirst places each process on the least-covered candidate register
// (ties to the lowest index): the placement that delays full sets the
// longest and consumes the most processes — the worst case the proofs are
// shaped around.
type LowestFirst struct{}

// Name implements Policy.
func (LowestFirst) Name() string { return "lowest-first" }

// Pick implements Policy.
func (LowestFirst) Pick(heights []int, candidates []int) int {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if heights[c] < heights[best] {
			best = c
		}
	}
	return best
}

// HighestFirst piles processes on the most-covered candidate, reaching
// full sets with as few placements as possible.
type HighestFirst struct{}

// Name implements Policy.
func (HighestFirst) Name() string { return "highest-first" }

// Pick implements Policy.
func (HighestFirst) Pick(heights []int, candidates []int) int {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if heights[c] > heights[best] {
			best = c
		}
	}
	return best
}

// FirstFit always picks the lowest-indexed candidate.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Policy.
func (FirstFit) Pick(heights []int, candidates []int) int { return candidates[0] }

// RandomPolicy picks uniformly with a deterministic seed.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a seeded random placement policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*RandomPolicy) Name() string { return "random" }

// Pick implements Policy.
func (p *RandomPolicy) Pick(heights []int, candidates []int) int {
	return candidates[p.rng.Intn(len(candidates))]
}

// Policies returns the standard policy suite used by tests and the
// benchmark harness.
func Policies(seed int64) []Policy {
	return []Policy{LowestFirst{}, HighestFirst{}, FirstFit{}, NewRandomPolicy(seed)}
}

// Scripted plays a fixed sequence of register choices, then delegates to a
// fallback policy. It lets tests steer the construction into specific proof
// branches (notably Case 2, which no oblivious policy reaches).
type Scripted struct {
	Moves    []int
	Fallback Policy
	pos      int
}

// Name implements Policy.
func (s *Scripted) Name() string { return "scripted" }

// Pick implements Policy.
func (s *Scripted) Pick(heights []int, candidates []int) int {
	if s.pos < len(s.Moves) {
		move := s.Moves[s.pos]
		s.pos++
		for _, c := range candidates {
			if c == move {
				return c
			}
		}
		// The scripted register is no longer available (it became full);
		// fall through to the fallback for this pick.
	}
	return s.Fallback.Pick(heights, candidates)
}
