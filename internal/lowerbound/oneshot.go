package lowerbound

import (
	"fmt"
	"math"
)

// OneShotStep records one application of Lemma 4.1 in the §4 construction.
type OneShotStep struct {
	K           int   // construction step (R_K is produced)
	BlockWrites int   // block writes executed before Q formed (0, 1 or 2)
	Placed      int   // idle processes consumed by placements this step
	Nu          int   // |Q|: registers newly added to the full set
	Case        int   // 1 or 2 (paper's case analysis); step 1 is Case 1
	J           int   // j_K after the step
	L           int   // ℓ_K after the step
	Heights     []int // covering counts per register after the step
	Idle        int   // idle processes remaining after the step
}

// Ordered returns the ordered signature after the step.
func (s *OneShotStep) Ordered() OrderedSignature {
	return Signature(s.Heights).Ordered()
}

// OneShotReport is the outcome of replaying the Theorem 1.2 construction.
type OneShotReport struct {
	N, M       int // processes; grid width m = ⌊√(2n)⌋
	Steps      []OneShotStep
	FinalJ     int // j_last: registers guaranteed covered
	FinalL     int // ℓ_last
	Case2Count int // δ: times Case 2 occurred (≤ log₂ n)
	IdleLeft   int
	// Consumed is the number of distinct processes that left the idle set
	// (each was run solo until poised). Block writers are drawn from these,
	// so Consumed + IdleLeft = N always.
	Consumed int
	// BlockWriterSteps counts the single steps taken by block-writing
	// processes across all block writes (each such process is consumed for
	// good: it takes no further steps, which is what makes the §7 remark
	// about historyless objects go through).
	BlockWriterSteps int
	Bound            int // Theorem 1.2 guarantee: m − log₂n − 2
}

// Covered returns the number of registers covered in the final
// configuration (full registers plus any other register with a poised
// process).
func (r *OneShotReport) Covered() int {
	if len(r.Steps) == 0 {
		return 0
	}
	return Signature(r.Steps[len(r.Steps)-1].Heights).CoveredRegisters()
}

// oneShotState carries the construction state between steps.
type oneShotState struct {
	m       int
	l       int
	heights []int // heights[i]: processes covering register i
	full    []bool
	j       int
	idle    int
	policy  Policy
	// smallQ selects the smallest feasible Q instead of the largest when
	// several qualify. The paper fixes neither choice; large Q advances j
	// fastest (and empirically avoids Case 2 entirely), small Q advances
	// one register at a time and exercises the Case 2 branch of the proof.
	smallQ bool
}

// findQ looks for a non-empty Q ⊆ R̄ such that every register of Q is
// covered by at least l − j − |Q| processes (§4). It returns the chosen
// registers (the |Q| highest columns outside the full set, preferring the
// largest feasible |Q|) or nil.
func (s *oneShotState) findQ() []int {
	// Candidates: registers outside the full set, sorted by height desc.
	var cand []int
	for i := 0; i < s.m; i++ {
		if !s.full[i] {
			cand = append(cand, i)
		}
	}
	// Selection sort by height descending (m is tiny).
	for a := 0; a < len(cand); a++ {
		for b := a + 1; b < len(cand); b++ {
			if s.heights[cand[b]] > s.heights[cand[a]] {
				cand[a], cand[b] = cand[b], cand[a]
			}
		}
	}
	// |Q| is capped at ℓ−j−1 so the threshold ℓ−j−|Q| stays ≥ 1: every
	// register entering the full set has at least one coverer, which is
	// what makes "every register in R_last is covered" true at the end.
	maxNu := s.l - s.j - 1
	if maxNu > len(cand) {
		maxNu = len(cand)
	}
	feasible := func(nu int) bool {
		for i := 0; i < nu; i++ {
			if s.heights[cand[i]] < s.l-s.j-nu {
				return false
			}
		}
		return true
	}
	if s.smallQ {
		for nu := 1; nu <= maxNu; nu++ {
			if feasible(nu) {
				return cand[:nu]
			}
		}
		return nil
	}
	for nu := maxNu; nu >= 1; nu-- {
		if feasible(nu) {
			return cand[:nu]
		}
	}
	return nil
}

// place runs one idle process solo until it covers a register outside the
// full set (Lemma 4.1 participants), with the policy choosing the column.
func (s *oneShotState) place() error {
	var candidates []int
	for i := 0; i < s.m; i++ {
		if !s.full[i] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return fmt.Errorf("lowerbound: no register outside the full set (j = m)")
	}
	reg := s.policy.Pick(s.heights, candidates)
	if s.full[reg] {
		return fmt.Errorf("lowerbound: policy %s placed inside the full set", s.policy.Name())
	}
	s.heights[reg]++
	s.idle--
	return nil
}

// blockWrite performs one block write to the full set: each full register
// loses one covering process (the writer takes its step and is consumed).
func (s *oneShotState) blockWrite() int {
	n := 0
	for i := 0; i < s.m; i++ {
		if s.full[i] {
			if s.heights[i] <= 0 {
				panic("lowerbound: block write on uncovered register")
			}
			s.heights[i]--
			n++
		}
	}
	return n
}

// poisedOutside counts processes covering registers outside the full set.
func (s *oneShotState) poisedOutside() int {
	total := 0
	for i := 0; i < s.m; i++ {
		if !s.full[i] {
			total += s.heights[i]
		}
	}
	return total
}

// checkInvariant verifies construction invariant (c) of §4:
// |poised(C, R̄)| + |idle| − 1 ≥ Σ_{c=j+1}^m (m − c).
func (s *oneShotState) checkInvariant() error {
	rhs := 0
	for c := s.j + 1; c <= s.m; c++ {
		rhs += s.m - c
	}
	if s.poisedOutside()+s.idle-1 < rhs {
		return fmt.Errorf("lowerbound: invariant (c) violated: poised %d + idle %d − 1 < %d (j=%d)",
			s.poisedOutside(), s.idle, rhs, s.j)
	}
	return nil
}

// checkFull verifies invariant (e): every full register is covered by at
// least ℓ − j processes.
func (s *oneShotState) checkFull() error {
	for i := 0; i < s.m; i++ {
		if s.full[i] && s.heights[i] < s.l-s.j {
			return fmt.Errorf("lowerbound: invariant (e) violated: register %d covered by %d < ℓ−j = %d",
				i, s.heights[i], s.l-s.j)
		}
	}
	return nil
}

// OneShotConstruction replays the Theorem 1.2 construction for n processes
// with the given placement policy, checking the construction invariants at
// every step. It returns the full trajectory; the final configuration
// covers FinalJ ≥ m − log₂n − 2 registers.
func OneShotConstruction(n int, policy Policy) (*OneShotReport, error) {
	return OneShotConstructionQ(n, policy, false)
}

// OneShotConstructionQ is OneShotConstruction with explicit control over
// the Q-selection rule (smallQ true picks the smallest feasible Q each
// step, exercising the proof's Case 2 branch).
func OneShotConstructionQ(n int, policy Policy, smallQ bool) (*OneShotReport, error) {
	if n < 3 {
		return nil, fmt.Errorf("lowerbound: need n ≥ 3, got %d", n)
	}
	m := OneShotM(n)
	st := &oneShotState{
		m:       m,
		l:       m,
		heights: make([]int, m),
		full:    make([]bool, m),
		idle:    n,
		policy:  policy,
		smallQ:  smallQ,
	}
	rep := &OneShotReport{N: n, M: m, Bound: OneShotLower(n)}
	consumed := 0

	for k := 1; ; k++ {
		if k > 1 && (st.l-st.j < 3 || st.idle < 2) {
			break
		}
		if k > 10*m+10 {
			return nil, fmt.Errorf("lowerbound: construction did not terminate after %d steps", k)
		}

		step := OneShotStep{K: k}
		// Up to two block writes bracket the placements (none on step 1,
		// where the B sets are empty).
		maxBW := 2
		if st.j == 0 {
			maxBW = 0
		}
		// Placements available this step: Lemma 4.1 consumes at most
		// |U| − 1 of the idle processes.
		budget := st.idle - 1

		q := st.findQ() // Q may already exist at the step's start (empty prefix)
		for q == nil {
			if step.BlockWrites < maxBW &&
				(step.BlockWrites == 0 || step.Placed >= budget/2) {
				// The paper's schedule is βσβ′σ′: the first block write
				// comes first; the second comes after σ's ⌊|U|/2⌋
				// placements.
				rep.BlockWriterSteps += st.blockWrite()
				step.BlockWrites++
				q = st.findQ()
				continue
			}
			if step.Placed >= budget {
				return nil, fmt.Errorf("lowerbound: step %d exhausted its %d placements without forming Q (invariant (c) should prevent this)", k, budget)
			}
			if err := st.place(); err != nil {
				return nil, err
			}
			step.Placed++
			consumed++
			q = st.findQ()
		}

		// Update R, j, ℓ per the case analysis.
		step.Nu = len(q)
		for _, r := range q {
			st.full[r] = true
		}
		st.j += step.Nu
		if step.Nu == 1 && step.BlockWrites == 2 {
			step.Case = 2
			st.l--
			rep.Case2Count++
		} else {
			step.Case = 1
		}
		step.J, step.L = st.j, st.l
		step.Heights = append([]int(nil), st.heights...)
		step.Idle = st.idle
		rep.Steps = append(rep.Steps, step)

		if err := st.checkFull(); err != nil {
			return nil, fmt.Errorf("step %d: %w", k, err)
		}
		if err := st.checkInvariant(); err != nil {
			return nil, fmt.Errorf("step %d: %w", k, err)
		}
		if !Signature(st.heights).Ordered().LConstrained(st.l + 1) {
			// Columns may touch the ℓ-diagonal exactly when Q forms; the
			// configuration stays (ℓ+1)-constrained throughout.
			return nil, fmt.Errorf("step %d: configuration not (ℓ+1)-constrained: %v (ℓ=%d)", k, st.heights, st.l)
		}
	}

	rep.FinalJ = st.j
	rep.FinalL = st.l
	rep.IdleLeft = st.idle
	rep.Consumed = consumed

	// Theorem 1.2's accounting: δ ≤ log₂ n and j_last ≥ m − δ − 2.
	if limit := int(math.Ceil(math.Log2(float64(n)))) + 1; rep.Case2Count > limit {
		return nil, fmt.Errorf("lowerbound: Case 2 occurred %d times, exceeding log₂(%d) ≈ %d", rep.Case2Count, n, limit)
	}
	if st.idle <= 1 && st.l-st.j >= 3 {
		return nil, fmt.Errorf("lowerbound: construction ran out of idle processes (idle=%d), contradicting §4's counting", st.idle)
	}
	if rep.FinalJ < rep.Bound {
		return nil, fmt.Errorf("lowerbound: final j = %d below Theorem 1.2 bound %d (m=%d, δ=%d)", rep.FinalJ, rep.Bound, rep.M, rep.Case2Count)
	}
	return rep, nil
}
