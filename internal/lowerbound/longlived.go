package lowerbound

import "fmt"

// LongLivedStep records one inductive step of the §3 construction
// (Lemma 3.2): two fresh processes are dedicated, Lemma 3.1 finds two
// similar (3,k−1)-configurations bracketing three block writes, Lemma 2.1
// forces one of the fresh processes to cover a register outside R3, and
// the result is a (3,k)-configuration.
type LongLivedStep struct {
	K          int       // the step number: a (3,K)-configuration is reached
	Register   int       // register the new covering process was forced onto
	Signature  Signature // signature after the step
	R3Size     int       // |R3| before the step: registers needing block writes
	BlockWrite int       // processes participating in the three block writes (3·|R3|)
}

// LongLivedReport is the outcome of replaying the §3 construction.
type LongLivedReport struct {
	N              int
	K              int // final k = ⌊n/2⌋: a (3,k)-configuration was reached
	Covered        int // registers covered in the final configuration
	Bound          int // Theorem 1.1's guarantee: ⌊n/6⌋
	ProcessesUsed  int // fresh processes dedicated (2 per step)
	Steps          []LongLivedStep
	SignatureSpace int // 4^m: the pigeonhole bound behind Lemma 3.1
}

// LongLivedConstruction replays the Theorem 1.1 construction for n
// processes with the given placement policy. It drives the abstract
// covering state through ⌊n/2⌋ inductive steps, checking after each that
// the configuration is a (3,k)-configuration, and returns the trajectory.
// The policy decides which (at most 2-covered) register each forced
// process covers — Lemma 2.1 only guarantees it lies outside R3(C).
func LongLivedConstruction(n int, policy Policy) (*LongLivedReport, error) {
	if n < 2 {
		return nil, fmt.Errorf("lowerbound: need n ≥ 2, got %d", n)
	}
	kMax := n / 2
	// The construction never needs more registers than kMax (each step
	// covers a register with ≤ 2 coverers; in the worst spread every step
	// opens a new register).
	sig := make(Signature, kMax)
	rep := &LongLivedReport{
		N:              n,
		Bound:          LongLivedLower(n),
		SignatureSpace: SignatureSpace3K(kMax),
	}

	for k := 1; k <= kMax; k++ {
		// Lemma 3.1 brackets the step with three block writes to R3(C0) by
		// disjoint sets B0, B1, B2 — possible because every register in R3
		// is covered by exactly 3 processes.
		r3 := sig.R3()

		// Lemma 2.1 forces one of the two fresh processes p_{2k-1}, p_{2k}
		// to write outside R3(C0); it pauses covering a register with at
		// most 2 coverers. The policy picks which.
		var candidates []int
		for i, c := range sig {
			if c <= 2 {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("lowerbound: step %d: no register with ≤ 2 coverers (impossible: k ≤ ⌊n/2⌋ ≤ m·3)", k)
		}
		reg := policy.Pick(sig, candidates)
		if sig[reg] > 2 {
			return nil, fmt.Errorf("lowerbound: policy %s picked register %d with %d coverers", policy.Name(), reg, sig[reg])
		}
		sig[reg]++

		if !sig.Is3K(k) {
			return nil, fmt.Errorf("lowerbound: step %d did not produce a (3,%d)-configuration: %v", k, k, sig)
		}
		rep.ProcessesUsed += 2
		rep.Steps = append(rep.Steps, LongLivedStep{
			K:          k,
			Register:   reg,
			Signature:  sig.Clone(),
			R3Size:     len(r3),
			BlockWrite: 3 * len(r3),
		})
	}

	rep.K = kMax
	rep.Covered = sig.CoveredRegisters()
	if rep.Covered < rep.Bound {
		return nil, fmt.Errorf("lowerbound: construction covered %d registers, below the Theorem 1.1 bound %d", rep.Covered, rep.Bound)
	}
	return rep, nil
}
