package lowerbound_test

import (
	"fmt"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/lowerbound"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
)

// The confrontation sweep: the live adversaries must steer a real
// algorithm execution to at least the analytic certificate at every n in
// the table, and the executions they produce must still be
// happens-before clean — an adversary that breaks the algorithm instead
// of covering it proves nothing.
func TestLiveAdversaryConfrontation(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			const rounds = 3

			var rec *hbcheck.Recorder[timestamp.Timestamp]
			factory := func(wl engine.Workload) sched.Factory {
				return func() *sched.System {
					sys, r, _ := engine.NewSimSystem(engine.Config[timestamp.Timestamp]{
						Alg: collect.New(n), World: engine.Simulated, N: n, Workload: wl,
					})
					rec = r
					return sys
				}
			}
			compare := collect.New(n).Compare

			one, err := lowerbound.LiveOneShot(factory(engine.OneShot{}))
			if err != nil {
				t.Fatalf("LiveOneShot: %v", err)
			}
			if one.Margin < 0 {
				t.Errorf("%s: covered %d < certificate %d", one.Adversary, one.MaxCovered, one.Certificate)
			}
			if err := hbcheck.CheckRecorder(rec, compare); err != nil {
				t.Errorf("%s execution violates happens-before: %v", one.Adversary, err)
			}
			t.Logf("%s", one)

			ll, err := lowerbound.LiveLongLived(factory(engine.LongLived{CallsPerProc: rounds + 1}), rounds)
			if err != nil {
				t.Fatalf("LiveLongLived: %v", err)
			}
			if ll.Margin < 0 {
				t.Errorf("%s: covered %d < certificate %d", ll.Adversary, ll.MaxCovered, ll.Certificate)
			}
			if ll.Rounds != rounds {
				t.Errorf("%s executed %d block-write rounds, want %d", ll.Adversary, ll.Rounds, rounds)
			}
			if ll.Recycled == 0 {
				t.Errorf("%s recycled no released process; the clone-and-cover loop never bit", ll.Adversary)
			}
			if err := hbcheck.CheckRecorder(rec, compare); err != nil {
				t.Errorf("%s execution violates happens-before: %v", ll.Adversary, err)
			}
			t.Logf("%s", ll)
		})
	}
}
