package lowerbound

import "math"

// Analytic bounds from the paper, all as functions of the number of
// processes n (or the call budget M where noted).

// LongLivedLower is Theorem 1.1: any long-lived unbounded timestamp object
// satisfying non-deterministic solo-termination uses at least n/6 − 1
// registers. The construction actually covers ⌊⌊n/2⌋/3⌋ ≥ ⌊n/6⌋ registers;
// we return ⌊n/6⌋, the count the constructed (3,⌊n/2⌋)-configuration
// guarantees.
func LongLivedLower(n int) int {
	return n / 6
}

// LongLivedUpper is the matching upper bound cited from Ellen, Fatourou
// and Ruppert: a wait-free long-lived algorithm with n − 1 registers.
func LongLivedUpper(n int) int {
	if n < 1 {
		return 0
	}
	return n - 1
}

// OneShotM is m = ⌊√(2n)⌋, the grid width of the §4 construction.
func OneShotM(n int) int {
	return int(math.Sqrt(2 * float64(n)))
}

// OneShotLower is Theorem 1.2's construction guarantee: the adversary
// reaches a configuration covering at least m − log₂n − 2 registers where
// m = ⌊√(2n)⌋ (i.e. √(2n) − log n − O(1)). Values below 1 are clamped to
// the trivial bound 1 (n ≥ 2 processes must write somewhere).
func OneShotLower(n int) int {
	if n < 2 {
		return 0
	}
	b := OneShotM(n) - int(math.Ceil(math.Log2(float64(n)))) - 2
	if b < 1 {
		return 1
	}
	return b
}

// OneShotUpper is Theorem 1.3: the wait-free one-shot algorithm of §6 uses
// ⌈2√n⌉ registers.
func OneShotUpper(n int) int {
	return int(math.Ceil(2 * math.Sqrt(float64(n))))
}

// SimpleUpper is the §5 algorithm: ⌈n/2⌉ registers.
func SimpleUpper(n int) int {
	return (n + 1) / 2
}

// SignatureSpace3K returns the number of distinct signatures over m
// registers with every entry in {0,1,2,3}: the finiteness that powers the
// pigeonhole in Lemma 3.1 (two configurations along any long enough
// execution share a signature). The count is 4^m, capped at MaxInt for
// large m.
func SignatureSpace3K(m int) int {
	if m >= 31 {
		return math.MaxInt
	}
	return 1 << (2 * m)
}
