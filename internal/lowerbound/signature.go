// Package lowerbound makes the covering arguments of Sections 3 and 4 of
// the paper executable.
//
// The package has three layers:
//
//   - vocabulary: configuration signatures, ordered signatures, the
//     (3,k)-configuration predicate of §3 and the ℓ-constrained /
//     (j,k)-full predicates of §4, plus the stepped-diagonal grid rendering
//     that reproduces Figures 1 and 2;
//   - analytic bounds: the exact formulas of Theorems 1.1–1.3 and of the
//     constructions that prove them;
//   - construction replay: deterministic state machines that perform the
//     §3 induction and the §4 Case 1/Case 2 construction step by step,
//     checking every construction invariant as they go, for any adversary
//     "placement policy" (the implementation's choice of which register a
//     process covers, which the theorems quantify over).
package lowerbound

import (
	"fmt"
	"sort"
)

// Signature is sig(C): entry i is the number of processes covering
// register i (§3). Unlike the paper we use 0-based register indices.
type Signature []int

// Sum returns the total number of covering processes.
func (s Signature) Sum() int {
	total := 0
	for _, c := range s {
		total += c
	}
	return total
}

// CoveredRegisters returns the number of registers covered by at least one
// process.
func (s Signature) CoveredRegisters() int {
	n := 0
	for _, c := range s {
		if c > 0 {
			n++
		}
	}
	return n
}

// Is3K reports whether a configuration with this signature is a
// (3,k)-configuration: k processes cover registers and no register is
// covered by more than three of them (§3).
func (s Signature) Is3K(k int) bool {
	if s.Sum() != k {
		return false
	}
	for _, c := range s {
		if c > 3 {
			return false
		}
	}
	return true
}

// R3 returns the (0-based) indices of registers covered by exactly three
// processes: the set R3(C) of §3.
func (s Signature) R3() []int {
	var out []int
	for i, c := range s {
		if c == 3 {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two signatures are identical.
func (s Signature) Equal(t Signature) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Signature) Clone() Signature {
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// Ordered returns ordSig(C): the signature sorted non-increasingly (§4).
func (s Signature) Ordered() OrderedSignature {
	o := make(OrderedSignature, len(s))
	copy(o, s)
	sort.Sort(sort.Reverse(sort.IntSlice(o)))
	return o
}

// OrderedSignature is a signature reordered non-increasingly; column c
// (1-based in the paper, 0-based here) holds the c-th largest cover count.
type OrderedSignature []int

// LConstrained reports whether the configuration is ℓ-constrained:
// s_c ≤ ℓ − c for every 1 ≤ c ≤ ℓ (paper indexing; entries beyond the
// signature length count as 0).
func (o OrderedSignature) LConstrained(l int) bool {
	for c := 1; c <= l; c++ {
		sc := 0
		if c-1 < len(o) {
			sc = o[c-1]
		}
		if sc > l-c {
			return false
		}
	}
	return true
}

// JKFull reports whether the configuration is (j,k)-full: at least j
// registers are covered by at least k processes each, i.e. s_j ≥ k in the
// ordered signature (paper indexing, j ≥ 1).
func (o OrderedSignature) JKFull(j, k int) bool {
	if j < 1 || j > len(o) {
		return false
	}
	return o[j-1] >= k
}

// String renders the ordered signature as "(s1, s2, …)".
func (o OrderedSignature) String() string {
	out := "("
	for i, v := range o {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprint(v)
	}
	return out + ")"
}
