package lowerbound

import (
	"fmt"
	"strings"
)

// Grid renders the geometric representation of configurations used
// throughout §4 (Figures 1 and 2): a grid of cells where column c (1-based)
// has the lowest s_c cells shaded — each shaded cell is a process covering
// the register that column corresponds to — together with the stepped
// diagonal that starts at height ℓ−1 over column 1 and decreases by one
// per column. A configuration is ℓ-constrained iff all shading stays below
// the diagonal.
//
// Example (m = 6, ℓ = 6, ordered signature (5, 4, 1, 1, 0, 0)) — columns 1
// and 2 reach the diagonal (s_c = ℓ−c) and are starred:
//
//	5 | *
//	4 | # *
//	3 | # # .
//	2 | # #   .
//	1 | # # # # .
//	  +------------
//	    1 2 3 4 5 6
//
// '#' is a covering process, '.' marks the stepped diagonal (height ℓ−c in
// column c), and a '*' marks a cell that is both shaded and on the
// diagonal — a column that reached the diagonal, the event driving the §4
// construction.
func Grid(o OrderedSignature, l int) string {
	m := len(o)
	height := l // rows 1..l-1 carry cells; include row for diagonal at l-1
	if height < 2 {
		height = 2
	}
	var b strings.Builder
	for row := height - 1; row >= 1; row-- {
		fmt.Fprintf(&b, "%3d |", row)
		for c := 1; c <= m; c++ {
			shaded := c-1 < len(o) && o[c-1] >= row
			diag := l-c == row
			switch {
			case shaded && diag:
				b.WriteString(" *")
			case shaded:
				b.WriteString(" #")
			case diag:
				b.WriteString(" .")
			default:
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("    +")
	b.WriteString(strings.Repeat("--", m))
	b.WriteByte('\n')
	b.WriteString("     ")
	for c := 1; c <= m; c++ {
		if c < 10 {
			fmt.Fprintf(&b, "%2d", c)
		} else {
			fmt.Fprintf(&b, "%2d", c%10)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// DiagonalColumn returns the lowest (1-based) column whose shading reaches
// the stepped diagonal — s_c ≥ ℓ−c — or 0 if none does. In Figure 1 this
// is the column j witnessing the (j, m−j)-full configuration.
func DiagonalColumn(o OrderedSignature, l int) int {
	for c := 1; c <= len(o); c++ {
		if o[c-1] >= l-c {
			return c
		}
	}
	return 0
}
