// Package bitset provides a small dense bit set used to represent sets of
// register indices and sets of process identifiers throughout the
// lower-bound machinery.
//
// The zero value is an empty set. Sets grow automatically on Add; queries
// beyond the current capacity return false rather than panicking, so a
// freshly constructed set behaves like the empty set for every index.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over non-negative integers.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity preallocated for indices [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Of returns a set containing exactly the given indices.
func Of(indices ...int) *Set {
	s := New(0)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: negative index %d", i))
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << (i % wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (i % wordBits)
	}
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns a new set containing elements of s or t.
func (s *Set) Union(t *Set) *Set {
	u := s.Clone()
	u.grow(len(t.words) - 1)
	for i, w := range t.words {
		u.words[i] |= w
	}
	return u
}

// Intersect returns a new set containing elements in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	n := min(len(s.words), len(t.words))
	u := &Set{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		u.words[i] = s.words[i] & t.words[i]
	}
	return u
}

// Diff returns a new set containing elements of s not in t.
func (s *Set) Diff(t *Set) *Set {
	u := s.Clone()
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		u.words[i] &^= t.words[i]
	}
	return u
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// Elements returns the elements in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << b
		}
	}
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elements() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte('}')
	return b.String()
}
