package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Error("zero value should be empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Error("zero value should contain nothing")
	}
	if s.Min() != -1 {
		t.Errorf("Min = %d, want -1", s.Min())
	}
}

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	indices := []int{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, i := range indices {
		s.Add(i)
	}
	for _, i := range indices {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Len() != len(indices) {
		t.Errorf("Len = %d, want %d", s.Len(), len(indices))
	}
	for _, i := range indices {
		s.Remove(i)
		if s.Contains(i) {
			t.Errorf("Contains(%d) = true after Remove", i)
		}
	}
	if !s.Empty() {
		t.Error("set should be empty after removing all")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) should panic")
		}
	}()
	New(0).Add(-1)
}

func TestRemoveAbsentAndNegative(t *testing.T) {
	s := Of(3)
	s.Remove(5)   // absent
	s.Remove(-1)  // negative: no-op
	s.Remove(999) // beyond capacity
	if !s.Contains(3) || s.Len() != 1 {
		t.Error("unrelated removes must not disturb the set")
	}
}

func TestOfAndElements(t *testing.T) {
	s := Of(5, 2, 9, 2)
	got := s.Elements()
	want := []int{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 64)
	b := Of(3, 4, 64, 200)

	if got := a.Union(b); got.Len() != 6 {
		t.Errorf("Union len = %d, want 6 (%v)", got.Len(), got)
	}
	inter := a.Intersect(b)
	if !inter.Equal(Of(3, 64)) {
		t.Errorf("Intersect = %v, want {3, 64}", inter)
	}
	diff := a.Diff(b)
	if !diff.Equal(Of(1, 2)) {
		t.Errorf("Diff = %v, want {1, 2}", diff)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := Of(1, 2)
	b := Of(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone should be equal")
	}
	// Different capacities, same contents.
	c := New(1000)
	c.Add(1)
	c.Add(2)
	if !a.Equal(c) {
		t.Error("equality must ignore capacity")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Error("mutating clone must not affect original")
	}
}

func TestMinString(t *testing.T) {
	s := Of(70, 5, 12)
	if s.Min() != 5 {
		t.Errorf("Min = %d, want 5", s.Min())
	}
	if got := Of(1, 2).String(); got != "{1, 2}" {
		t.Errorf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: Union/Intersect/Diff agree with map-based reference semantics.
func TestQuickAlgebraAgainstReference(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(0), New(0)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
			mb[int(y)] = true
		}
		u, in, d := a.Union(b), a.Intersect(b), a.Diff(b)
		for i := 0; i < 1<<16; i += 97 { // sampled probe
			wantU := ma[i] || mb[i]
			wantI := ma[i] && mb[i]
			wantD := ma[i] && !mb[i]
			if u.Contains(i) != wantU || in.Contains(i) != wantI || d.Contains(i) != wantD {
				return false
			}
		}
		// Exhaustive probe over the actual elements.
		for i := range ma {
			if u.Contains(i) != true {
				return false
			}
			if in.Contains(i) != mb[i] {
				return false
			}
			if d.Contains(i) != !mb[i] {
				return false
			}
		}
		return u.Len() == lenUnion(ma, mb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func lenUnion(a, b map[int]bool) int {
	u := map[int]bool{}
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return len(u)
}

// Property: Elements is sorted, duplicate-free, and round-trips through Of.
func TestQuickElementsRoundTrip(t *testing.T) {
	f := func(xs []uint16) bool {
		s := New(0)
		for _, x := range xs {
			s.Add(int(x))
		}
		el := s.Elements()
		for i := 1; i < len(el); i++ {
			if el[i-1] >= el[i] {
				return false
			}
		}
		return Of(el...).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity  a \ b == a \ (a ∩ b).
func TestQuickDiffIdentity(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(0), New(0)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Diff(b).Equal(a.Diff(a.Intersect(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		x := rng.Intn(4096)
		s.Add(x)
		if !s.Contains(x) {
			b.Fatal("missing element")
		}
	}
}
