// Package engine runs any Algorithm × World × Workload combination through
// a single code path.
//
// Before it existed, every consumer of the reproduction — the runner, the
// benchmarks, the three CLIs, the examples — wired up memory, writer
// discipline, recording and verification by hand. The engine owns that
// plumbing once: it assembles the register middleware stack
// (register.Wrap), drives the chosen workload in the chosen world, and
// returns one Report carrying the happens-before events, the space
// footprint with per-register operation counts, and the wall time. Adding
// a new scenario is a ~20-line Workload implementation, not a new main().
//
// The package is generic over the timestamp type T so that
// internal/timestamp can layer thin compatibility shims on top of it
// without an import cycle: timestamp.Algorithm satisfies
// Algorithm[timestamp.Timestamp] structurally.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tsspace/internal/hbcheck"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// Algorithm is the generic contract of a timestamp implementation; it
// mirrors timestamp.Algorithm field for field (see that package for the
// full method semantics).
type Algorithm[T any] interface {
	Name() string
	Registers() int
	OneShot() bool
	GetTS(mem register.Mem, pid, seq int) (T, error)
	Compare(t1, t2 T) bool
	WriterTable() [][]int
}

// World selects the execution substrate.
type World int

const (
	// Atomic runs real goroutines on hardware atomics: wait-freedom
	// validation and throughput.
	Atomic World = iota
	// Simulated runs under the deterministic step scheduler: adversarial
	// schedules, replay, model checking.
	Simulated
)

// String returns "atomic" or "simulated"; values outside the enum render
// as "World(n)" instead of silently claiming to be simulated.
func (w World) String() string {
	switch w {
	case Atomic:
		return "atomic"
	case Simulated:
		return "simulated"
	default:
		return fmt.Sprintf("World(%d)", int(w))
	}
}

// ParseWorld is the inverse of String for flag parsing: it accepts
// "atomic" or "simulated".
func ParseWorld(s string) (World, error) {
	switch s {
	case "atomic":
		return Atomic, nil
	case "simulated":
		return Simulated, nil
	default:
		return 0, fmt.Errorf("engine: unknown world %q (want atomic or simulated)", s)
	}
}

// Errors reported by the engine.
var (
	// ErrOneShot is returned when a workload repeats calls on a one-shot
	// algorithm.
	ErrOneShot = errors.New("engine: workload repeats getTS on a one-shot algorithm")
	// ErrNeedsSim is returned by workloads that only make sense under the
	// deterministic scheduler (explicit schedules).
	ErrNeedsSim = errors.New("engine: workload requires the simulated world")
	// ErrNeedsAtomic is returned by workload shapes the scheduler cannot
	// express (interleaving calls of one process's program).
	ErrNeedsAtomic = errors.New("engine: workload requires the atomic world")
)

// Config describes one run.
type Config[T any] struct {
	// Alg is the implementation under test.
	Alg Algorithm[T]
	// World selects the substrate; the zero value is Atomic.
	World World
	// N is the number of processes.
	N int
	// Workload shapes the run; nil defaults to OneShot{}.
	Workload Workload
	// Seed drives the simulated world's random scheduling decisions.
	Seed int64
	// Sharded selects the cache-line-padded register array in the atomic
	// world (ignored when BaseMem is set or in the simulated world).
	Sharded bool
	// BaseMem overrides the atomic world's backing memory, letting callers
	// observe raw register state mid-run. It must have at least
	// Alg.Registers() registers; extra registers are unconstrained by the
	// writer discipline, and Space.Registers reports the override's size
	// (the override is the allocation).
	BaseMem register.Mem
	// Unmetered drops the metering layer from the stack: no shared-counter
	// traffic on the operation path, for throughput measurement. The
	// report's Space then only carries the register count.
	Unmetered bool
	// OnCall, when non-nil, observes every completed getTS. In the atomic
	// world it is called concurrently from worker goroutines; in the
	// simulated world calls are serialized.
	OnCall func(pid, seq int, ts T)
}

// Report is the outcome of a run: the single result shape every consumer
// (internal/report, the CLIs, the benchmarks) reads.
type Report[T any] struct {
	Alg      string
	World    World
	Workload string
	N        int
	// MaxCalls is the largest per-process call count of the workload.
	MaxCalls int
	// Space is the register footprint, including per-register operation
	// counts (SpaceReport.ReadCounts / WriteCounts).
	Space register.SpaceReport
	// Events are the completed getTS intervals in start order.
	Events []hbcheck.Event[T]
	// Elapsed is the wall time of the drive phase.
	Elapsed time.Duration
	// Steps and Trace are the scheduler step count and executed operations
	// (simulated world only).
	Steps int
	Trace []sched.Op
}

// Verify checks the happens-before property over the report's events.
func (r *Report[T]) Verify(compare func(a, b T) bool) error {
	return hbcheck.Check(r.Events, compare)
}

// Run executes the configured Algorithm × World × Workload combination and
// returns its report.
func Run[T any](cfg Config[T]) (*Report[T], error) {
	wl, maxCalls, err := cfg.prepare()
	if err != nil {
		return nil, err
	}
	if cfg.World == Simulated {
		return runSim(cfg, wl, maxCalls)
	}
	return runAtomic(cfg, wl, maxCalls)
}

// prepare validates the config and resolves the workload.
func (cfg *Config[T]) prepare() (Workload, int, error) {
	if cfg.Alg == nil {
		return nil, 0, errors.New("engine: no algorithm")
	}
	if cfg.N <= 0 {
		return nil, 0, fmt.Errorf("engine: invalid process count %d", cfg.N)
	}
	if cfg.BaseMem != nil && cfg.World == Simulated {
		return nil, 0, fmt.Errorf("%w: BaseMem overrides the atomic world's memory; the scheduler owns the simulated one", ErrNeedsAtomic)
	}
	wl := cfg.Workload
	if wl == nil {
		wl = OneShot{}
	}
	maxCalls := 0
	for pid := 0; pid < cfg.N; pid++ {
		if c := wl.Calls(pid, cfg.N); c > maxCalls {
			maxCalls = c
		}
	}
	if cfg.Alg.OneShot() && maxCalls > 1 {
		return nil, 0, fmt.Errorf("%w: %s, calls=%d", ErrOneShot, cfg.Alg.Name(), maxCalls)
	}
	return wl, maxCalls, nil
}

// padTable extends a writer table to size registers: registers beyond the
// algorithm's budget (a caller-provided BaseMem may be larger) have no
// writer restriction.
func padTable(table [][]int, size int) [][]int {
	if table == nil || len(table) >= size {
		return table
	}
	padded := make([][]int, size)
	copy(padded, table)
	return padded
}

func (cfg *Config[T]) report(wl Workload, maxCalls int) *Report[T] {
	return &Report[T]{
		Alg:      cfg.Alg.Name(),
		World:    cfg.World,
		Workload: wl.Kind(),
		N:        cfg.N,
		MaxCalls: maxCalls,
	}
}

// runAtomic drives the workload on real goroutines over an atomic register
// array.
func runAtomic[T any](cfg Config[T], wl Workload, maxCalls int) (*Report[T], error) {
	base := cfg.BaseMem
	if base == nil {
		if cfg.Sharded {
			base = register.NewShardedArray(cfg.Alg.Registers())
		} else {
			base = register.NewAtomicArray(cfg.Alg.Registers())
		}
	} else if base.Size() < cfg.Alg.Registers() {
		return nil, fmt.Errorf("engine: BaseMem has %d registers, %s needs %d",
			base.Size(), cfg.Alg.Name(), cfg.Alg.Registers())
	}
	meter := register.NewMeterSize(base.Size())
	table := padTable(cfg.Alg.WriterTable(), base.Size())

	// The stack is fixed per process for the whole run; build it outside
	// the call path so the hot loop only pays for the layers themselves.
	metered := register.Metered(meter)
	if cfg.Unmetered {
		metered = nil
	}
	mems := make([]register.Mem, cfg.N)
	for pid := range mems {
		mems[pid] = register.Wrap(base, metered, register.DisciplineFor(table, pid))
	}

	var (
		rec      hbcheck.Recorder[T]
		mu       sync.Mutex
		firstErr error
	)
	issue := func(pid, seq int) error {
		mem := mems[pid]
		start := rec.Begin()
		ts, err := cfg.Alg.GetTS(mem, pid, seq)
		if err != nil {
			err = fmt.Errorf("p%d getTS#%d: %w", pid, seq, err)
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return err
		}
		rec.End(pid, seq, start, ts)
		if cfg.OnCall != nil {
			cfg.OnCall(pid, seq, ts)
		}
		return nil
	}

	begin := time.Now()
	if err := wl.DriveAtomic(cfg.N, issue); err != nil {
		return nil, err
	}
	elapsed := time.Since(begin)
	if firstErr != nil {
		return nil, firstErr
	}

	rep := cfg.report(wl, maxCalls)
	rep.Space = meter.Report()
	rep.Events = rec.Events()
	rep.Elapsed = elapsed
	return rep, nil
}

// runSim drives the workload through the deterministic scheduler.
func runSim[T any](cfg Config[T], wl Workload, maxCalls int) (*Report[T], error) {
	sys, rec, meter := NewSimSystem(cfg)
	defer sys.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	begin := time.Now()
	if err := wl.DriveSim(sys, rng); err != nil {
		return nil, err
	}
	elapsed := time.Since(begin)
	for pid := 0; pid < sys.N(); pid++ {
		if err := sys.Err(pid); err != nil {
			return nil, err
		}
	}

	rep := cfg.report(wl, maxCalls)
	rep.Space = meter.Report()
	rep.Events = rec.Events()
	rep.Elapsed = elapsed
	rep.Steps = sys.Steps()
	rep.Trace = sys.Trace()
	return rep, nil
}

// SequentialTimestamps runs n×calls getTS() strictly sequentially on real
// memory — p0's calls, then p1's, … when byProcess; round-robin by call
// index otherwise — and returns the timestamps in issue order. Every
// consecutive pair is happens-before ordered, so the sequence must be
// strictly increasing under the algorithm's compare: the no-concurrency
// baseline the scenario tests and space experiments start from.
func SequentialTimestamps[T any](alg Algorithm[T], n, calls int, byProcess bool) ([]T, error) {
	if calls < 1 {
		return nil, nil
	}
	out := make([]T, 0, n*calls)
	_, err := Run(Config[T]{
		Alg:      alg,
		World:    Atomic,
		N:        n,
		Workload: Sequential{CallsPerProc: calls, RoundRobin: !byProcess},
		OnCall:   func(pid, seq int, ts T) { out = append(out, ts) },
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NewSimSystem builds a deterministic-scheduler system whose processes run
// the per-process call loops of cfg's workload over the full middleware
// stack (shared versions, shared meter, per-process discipline, per-call
// first-op stamping). Process results are []T. Callers drive the returned
// system themselves — the exploration and sampling entry points below, the
// adversaries in internal/adversary, and the scripted scenarios all start
// here. Unlike Run, it applies none of the config validation (no one-shot
// guard): scripted scenarios deliberately drive partial and over-budget
// call patterns to observe how the algorithms fail.
func NewSimSystem[T any](cfg Config[T]) (*sched.System, *hbcheck.Recorder[T], *register.Meter) {
	sys, rec, meter, _ := newSimSystemSpans(cfg)
	return sys, rec, meter
}

// checkSystem surfaces process errors and verifies the recorder.
func checkSystem[T any](sys *sched.System, rec *hbcheck.Recorder[T], compare func(a, b T) bool) error {
	for pid := 0; pid < sys.N(); pid++ {
		if err := sys.Err(pid); err != nil {
			return err
		}
	}
	return hbcheck.CheckRecorder(rec, compare)
}

// Explore model-checks the configuration: it enumerates interleavings of
// the workload's call loops (capped at maxVisits complete executions; 0 =
// all) and verifies the happens-before property on every one. It returns
// the number of executions checked. The config's World and Seed are
// ignored: exploration is deterministic and simulated by construction.
func Explore[T any](cfg Config[T], maxVisits, maxSteps int) (int, error) {
	if _, _, err := cfg.prepare(); err != nil {
		return 0, err
	}
	var cur *hbcheck.Recorder[T]
	factory := func() *sched.System {
		sys, rec, _ := NewSimSystem(cfg)
		cur = rec
		return sys
	}
	return sched.Explore(factory, maxVisits, maxSteps, func(sys *sched.System, schedule []int) error {
		return checkSystem(sys, cur, cfg.Alg.Compare)
	})
}

// Sample stress-tests the configuration on count random maximal
// interleavings seeded from cfg.Seed, verifying the happens-before
// property on each.
func Sample[T any](cfg Config[T], count int) error {
	if _, _, err := cfg.prepare(); err != nil {
		return err
	}
	var cur *hbcheck.Recorder[T]
	factory := func() *sched.System {
		sys, rec, _ := NewSimSystem(cfg)
		cur = rec
		return sys
	}
	return sched.Sample(factory, count, cfg.Seed, func(sys *sched.System, schedule []int) error {
		return checkSystem(sys, cur, cfg.Alg.Compare)
	})
}
