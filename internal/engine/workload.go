package engine

import (
	"fmt"
	"math/rand"
	"sync"

	"tsspace/internal/sched"
)

// Workload shapes a run: how many getTS calls each process performs and
// how the processes are activated relative to each other. One
// implementation serves both worlds — DriveAtomic decides the goroutine
// structure, DriveSim decides the schedule.
type Workload interface {
	// Kind names the workload in reports.
	Kind() string
	// Calls returns the number of getTS calls process pid performs in an
	// n-process run.
	Calls(pid, n int) int
	// DriveAtomic runs the workload on real goroutines. issue performs one
	// getTS call for (pid, seq) and returns non-nil when that process
	// should stop issuing (the engine aggregates call errors itself;
	// DriveAtomic only reports driver-level failures).
	DriveAtomic(n int, issue func(pid, seq int) error) error
	// DriveSim schedules the system until every process has terminated.
	DriveSim(sys *sched.System, rng *rand.Rand) error
}

// driveAtomicAll launches every process at once, each performing its calls
// back to back: the maximal-contention shape.
func driveAtomicAll(n int, calls func(pid int) int, issue func(pid, seq int) error) {
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for k := 0; k < calls(pid); k++ {
				if issue(pid, k) != nil {
					return
				}
			}
		}(pid)
	}
	wg.Wait()
}

// driveSimGroup steps uniformly random live members of pids until all have
// terminated.
func driveSimGroup(sys *sched.System, rng *rand.Rand, pids []int) error {
	live := append([]int(nil), pids...)
	for len(live) > 0 {
		k := rng.Intn(len(live))
		pid := live[k]
		if _, alive, err := sys.Pending(pid); err != nil {
			return err
		} else if !alive {
			live = append(live[:k], live[k+1:]...)
			continue
		}
		if _, err := sys.Step(pid); err != nil {
			return err
		}
	}
	return nil
}

func allPids(n int) []int {
	pids := make([]int, n)
	for i := range pids {
		pids[i] = i
	}
	return pids
}

// OneShot is the paper's one-shot shape: every process calls getTS exactly
// once, all processes concurrent from the start.
type OneShot struct{}

// Kind returns "one-shot".
func (OneShot) Kind() string { return "one-shot" }

// Calls returns 1.
func (OneShot) Calls(pid, n int) int { return 1 }

// DriveAtomic launches all processes at once.
func (OneShot) DriveAtomic(n int, issue func(pid, seq int) error) error {
	driveAtomicAll(n, func(int) int { return 1 }, issue)
	return nil
}

// DriveSim runs a uniformly random maximal interleaving.
func (OneShot) DriveSim(sys *sched.System, rng *rand.Rand) error {
	return driveSimGroup(sys, rng, allPids(sys.N()))
}

// LongLived is the long-lived shape: every process performs CallsPerProc
// getTS calls back to back, all processes concurrent from the start.
type LongLived struct {
	CallsPerProc int // per-process calls; values < 1 mean 1
}

func (w LongLived) calls() int {
	if w.CallsPerProc < 1 {
		return 1
	}
	return w.CallsPerProc
}

// Kind returns "long-lived".
func (w LongLived) Kind() string { return fmt.Sprintf("long-lived×%d", w.calls()) }

// Calls returns CallsPerProc.
func (w LongLived) Calls(pid, n int) int { return w.calls() }

// DriveAtomic launches all processes at once.
func (w LongLived) DriveAtomic(n int, issue func(pid, seq int) error) error {
	driveAtomicAll(n, func(int) int { return w.calls() }, issue)
	return nil
}

// DriveSim runs a uniformly random maximal interleaving.
func (w LongLived) DriveSim(sys *sched.System, rng *rand.Rand) error {
	return driveSimGroup(sys, rng, allPids(sys.N()))
}

// Sequential issues every call with no concurrency at all: by process
// (p0's calls, then p1's, ...) or round-robin by call index. It is the
// baseline the space experiments compare adversarial schedules against.
type Sequential struct {
	CallsPerProc int  // per-process calls; values < 1 mean 1
	RoundRobin   bool // interleave by call index instead of by process
}

func (w Sequential) calls() int {
	if w.CallsPerProc < 1 {
		return 1
	}
	return w.CallsPerProc
}

// Kind returns the workload name.
func (w Sequential) Kind() string {
	if w.RoundRobin {
		return "sequential/round-robin"
	}
	return "sequential/by-process"
}

// Calls returns CallsPerProc.
func (w Sequential) Calls(pid, n int) int { return w.calls() }

// DriveAtomic issues every call from one goroutine, in order.
func (w Sequential) DriveAtomic(n int, issue func(pid, seq int) error) error {
	if w.RoundRobin {
		for k := 0; k < w.calls(); k++ {
			for pid := 0; pid < n; pid++ {
				if issue(pid, k) != nil {
					return nil
				}
			}
		}
		return nil
	}
	for pid := 0; pid < n; pid++ {
		for k := 0; k < w.calls(); k++ {
			if issue(pid, k) != nil {
				return nil
			}
		}
	}
	return nil
}

// DriveSim runs each process solo, in pid order. Round-robin order cannot
// be expressed under the scheduler (a process's calls are one program and
// cannot be interleaved with themselves): it reports ErrNeedsAtomic.
func (w Sequential) DriveSim(sys *sched.System, rng *rand.Rand) error {
	if w.RoundRobin {
		return fmt.Errorf("%w: sequential round-robin interleaves calls of one process's program", ErrNeedsAtomic)
	}
	for pid := 0; pid < sys.N(); pid++ {
		if _, err := sys.Solo(pid); err != nil {
			return err
		}
	}
	return nil
}

// Phased runs the processes in consecutive batches of GroupSize: a batch
// runs to completion (concurrently within itself) before the next starts.
// It is the batched-concurrency shape of experiment E7 — full uniform
// concurrency would collapse every process into phase 1 and prove nothing.
type Phased struct {
	GroupSize    int // processes per batch; values < 1 mean 1
	CallsPerProc int // per-process calls; values < 1 mean 1
}

func (w Phased) group() int {
	if w.GroupSize < 1 {
		return 1
	}
	return w.GroupSize
}

func (w Phased) calls() int {
	if w.CallsPerProc < 1 {
		return 1
	}
	return w.CallsPerProc
}

// Kind returns the workload name.
func (w Phased) Kind() string { return fmt.Sprintf("phased/%d", w.group()) }

// Calls returns CallsPerProc.
func (w Phased) Calls(pid, n int) int { return w.calls() }

func (w Phased) groups(n int) [][]int {
	var out [][]int
	for lo := 0; lo < n; lo += w.group() {
		hi := lo + w.group()
		if hi > n {
			hi = n
		}
		out = append(out, allPids(n)[lo:hi])
	}
	return out
}

// DriveAtomic runs each batch on concurrent goroutines with a barrier
// between batches.
func (w Phased) DriveAtomic(n int, issue func(pid, seq int) error) error {
	for _, group := range w.groups(n) {
		var wg sync.WaitGroup
		for _, pid := range group {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for k := 0; k < w.calls(); k++ {
					if issue(pid, k) != nil {
						return
					}
				}
			}(pid)
		}
		wg.Wait()
	}
	return nil
}

// DriveSim randomly interleaves each batch to completion before the next.
func (w Phased) DriveSim(sys *sched.System, rng *rand.Rand) error {
	for _, group := range w.groups(sys.N()) {
		if err := driveSimGroup(sys, rng, group); err != nil {
			return err
		}
	}
	return nil
}

// Adversarial replays an explicit schedule — the execution prefixes the
// lower-bound proofs manipulate — then drains the system. It only exists
// under the deterministic scheduler.
type Adversarial struct {
	Schedule     []int // process index per step; entries of terminated processes are skipped
	CallsPerProc int   // per-process calls; values < 1 mean 1
}

func (w Adversarial) calls() int {
	if w.CallsPerProc < 1 {
		return 1
	}
	return w.CallsPerProc
}

// Kind returns "adversarial".
func (w Adversarial) Kind() string { return fmt.Sprintf("adversarial/%d-steps", len(w.Schedule)) }

// Calls returns CallsPerProc.
func (w Adversarial) Calls(pid, n int) int { return w.calls() }

// DriveAtomic reports ErrNeedsSim: explicit schedules require the
// scheduler.
func (w Adversarial) DriveAtomic(n int, issue func(pid, seq int) error) error {
	return fmt.Errorf("%w: explicit schedule", ErrNeedsSim)
}

// DriveSim steps the scheduled processes in order, then drains.
func (w Adversarial) DriveSim(sys *sched.System, rng *rand.Rand) error {
	for i, pid := range w.Schedule {
		if pid < 0 || pid >= sys.N() {
			return fmt.Errorf("engine: schedule position %d: no process %d", i, pid)
		}
		if _, alive, err := sys.Pending(pid); err != nil {
			return err
		} else if !alive {
			continue
		}
		if _, err := sys.Step(pid); err != nil {
			return fmt.Errorf("engine: schedule position %d (p%d): %w", i, pid, err)
		}
	}
	return sys.Drain()
}

// Churn is the mixed-churn shape: at most Width processes are in the
// system at any moment; when one completes its calls it leaves and the
// next process id joins. No other harness in the reproduction exercises
// membership change mid-run — long-lived objects must keep the
// happens-before property across it because their space bound (Θ(n)) is
// about the *namespace* of processes, not the live set.
type Churn struct {
	Width        int // max simultaneously live processes; values < 1 mean 1
	CallsPerProc int // per-process calls; values < 1 mean 1
}

func (w Churn) width() int {
	if w.Width < 1 {
		return 1
	}
	return w.Width
}

func (w Churn) calls() int {
	if w.CallsPerProc < 1 {
		return 1
	}
	return w.CallsPerProc
}

// Kind returns the workload name.
func (w Churn) Kind() string { return fmt.Sprintf("churn/width-%d", w.width()) }

// Calls returns CallsPerProc.
func (w Churn) Calls(pid, n int) int { return w.calls() }

// DriveAtomic admits each process through a Width-wide semaphore held for
// the process's whole lifetime: a process joins when a slot frees and
// leaves after its last call.
func (w Churn) DriveAtomic(n int, issue func(pid, seq int) error) error {
	slots := make(chan struct{}, w.width())
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			slots <- struct{}{}
			defer func() { <-slots }()
			for k := 0; k < w.calls(); k++ {
				if issue(pid, k) != nil {
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	return nil
}

// DriveSim keeps a rolling window of live processes: random steps within
// the window; a terminated member leaves and the next process id joins.
func (w Churn) DriveSim(sys *sched.System, rng *rand.Rand) error {
	var active []int
	next := 0
	for {
		for len(active) < w.width() && next < sys.N() {
			active = append(active, next)
			next++
		}
		if len(active) == 0 {
			return nil
		}
		k := rng.Intn(len(active))
		pid := active[k]
		if _, alive, err := sys.Pending(pid); err != nil {
			return err
		} else if !alive {
			active = append(active[:k], active[k+1:]...)
			continue
		}
		if _, err := sys.Step(pid); err != nil {
			return err
		}
	}
}
