package engine_test

import (
	"errors"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/mutant"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

// crashRoster is the torn-write conformance roster: every simulable
// registry algorithm, with its long-lived call count and minimum n.
var crashRoster = []rosterEntry{
	{"collect", func(n int) engine.Algorithm[timestamp.Timestamp] { return collect.New(n) }, 2, 1},
	{"dense", func(n int) engine.Algorithm[timestamp.Timestamp] { return dense.New(n) }, 2, 2},
	{"simple", func(n int) engine.Algorithm[timestamp.Timestamp] { return simple.New(n) }, 1, 1},
	{"sqrt", func(n int) engine.Algorithm[timestamp.Timestamp] { return sqrt.New(n) }, 1, 1},
}

// TestCrashSweepNonMutantsSurvive injects one crash at every point of
// every victim's operation sequence, both torn-write outcomes, at n=2 and
// n=3: no correct algorithm may produce a happens-before violation or
// lose a pid's remaining calls.
func TestCrashSweepNonMutantsSurvive(t *testing.T) {
	for _, entry := range crashRoster {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			for _, n := range []int{2, 3} {
				if n < entry.minN {
					continue
				}
				alg := entry.new(n)
				var wl engine.Workload = engine.LongLived{CallsPerProc: entry.calls}
				if alg.OneShot() {
					wl = engine.OneShot{}
				}
				cfg := engine.Config[timestamp.Timestamp]{Alg: alg, World: engine.Simulated, N: n, Workload: wl}
				runs, err := engine.CrashSweep(cfg, engine.CrashSweepOptions[timestamp.Timestamp]{
					Shrink: true,
					NewAlg: func() engine.Algorithm[timestamp.Timestamp] { return entry.new(n) },
				})
				if err != nil {
					t.Errorf("n=%d: crash sweep failed after %d runs: %v", n, runs, err)
				}
				if runs == 0 {
					t.Errorf("n=%d: crash sweep ran no executions", n)
				}
			}
		})
	}
}

// TestCrashFuzzNonMutantsSurvive drives random interleavings with random
// crash points at a larger n.
func TestCrashFuzzNonMutantsSurvive(t *testing.T) {
	for _, entry := range crashRoster {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			n := 5
			alg := entry.new(n)
			var wl engine.Workload = engine.LongLived{CallsPerProc: entry.calls}
			if alg.OneShot() {
				wl = engine.OneShot{}
			}
			cfg := engine.Config[timestamp.Timestamp]{Alg: alg, World: engine.Simulated, N: n, Workload: wl, Seed: 13}
			rep, err := engine.CrashFuzz(cfg, engine.CrashFuzzOptions[timestamp.Timestamp]{
				Count:   25,
				Crashes: 2,
				Shrink:  true,
				NewAlg:  func() engine.Algorithm[timestamp.Timestamp] { return entry.new(n) },
			})
			if err != nil {
				t.Fatalf("crash fuzz failed after %d schedules: %v", rep.Schedules, err)
			}
			if rep.Schedules != 25 {
				t.Errorf("schedules = %d, want 25", rep.Schedules)
			}
		})
	}
}

// TestCrashSweepCatchesCrashMemoMutant is the validator's validator: the
// crash-checkpoint mutant is invisible to every crash-free harness (it is
// collect until a call is retried) and must be caught by the sweep, with
// a shrunk crash schedule that replays the violation verbatim.
func TestCrashSweepCatchesCrashMemoMutant(t *testing.T) {
	n := 2
	newAlg := func() engine.Algorithm[timestamp.Timestamp] { return mutant.NewCrashMemo(n) }
	cfg := engine.Config[timestamp.Timestamp]{Alg: newAlg(), World: engine.Simulated, N: n, Workload: engine.OneShot{}}

	// Sanity: crash-free exploration does NOT catch it (the memo never hits).
	if _, err := engine.Exhaustive(cfg, engine.ExhaustiveOptions[timestamp.Timestamp]{
		POR: true, NewAlg: newAlg,
	}); err != nil {
		t.Fatalf("crash-free exploration flagged the crash-only mutant: %v", err)
	}

	_, err := engine.CrashSweep(cfg, engine.CrashSweepOptions[timestamp.Timestamp]{Shrink: true, NewAlg: newAlg})
	var cex *engine.Counterexample
	if !errors.As(err, &cex) {
		t.Fatalf("crash sweep on collect-crash-memo = %v, want *Counterexample", err)
	}
	hasCrash := false
	for _, e := range cex.Schedule {
		if _, _, isCrash := sched.DecodeCrash(e); isCrash {
			hasCrash = true
		}
	}
	if !hasCrash {
		t.Errorf("counterexample %v contains no crash entry", cex.Schedule)
	}

	// The witness round-trips through the textual artifact format and
	// replays to the same class of violation on a fresh instance.
	text := sched.FormatCrashSchedule(cex.Schedule)
	entries, perr := sched.ParseCrashSchedule(text)
	if perr != nil {
		t.Fatalf("witness %q does not re-parse: %v", text, perr)
	}
	replayCfg := cfg
	replayCfg.Alg = newAlg()
	if _, rerr := engine.ReplayCrashSchedule(replayCfg, entries); rerr == nil {
		t.Fatalf("witness %q does not reproduce the violation on replay", text)
	}

	// Shrinking is deletion-1-minimal: every remaining entry is needed.
	for i := range cex.Schedule {
		cand := append(append([]int(nil), cex.Schedule[:i]...), cex.Schedule[i+1:]...)
		c := cfg
		c.Alg = newAlg()
		if _, rerr := engine.ReplayCrashSchedule(c, cand); rerr != nil {
			t.Fatalf("witness not 1-minimal: still fails without entry %d (%v)", i, cand)
		}
	}
}

// TestCrashFuzzCatchesStaleScanMutant: the stale-scan bug needs no crash
// at all, and the crash harness must still see it — fault injection adds
// failure modes without masking the ordinary ones.
func TestCrashFuzzCatchesStaleScanMutant(t *testing.T) {
	n := 3
	newAlg := func() engine.Algorithm[timestamp.Timestamp] { return mutant.NewStaleScan(n) }
	cfg := engine.Config[timestamp.Timestamp]{
		Alg: newAlg(), World: engine.Simulated, N: n,
		Workload: engine.LongLived{CallsPerProc: 2}, Seed: 3,
	}
	_, err := engine.CrashFuzz(cfg, engine.CrashFuzzOptions[timestamp.Timestamp]{
		Count: 50, Crashes: 1, Shrink: true, NewAlg: newAlg,
	})
	var cex *engine.Counterexample
	if !errors.As(err, &cex) {
		t.Fatalf("crash fuzz on collect-stale-scan = %v, want *Counterexample", err)
	}
}

// TestReplayCrashScheduleLenient: witness replay skips entries that no
// longer apply (terminated pids, double crashes, out-of-range ids), the
// property every ddmin candidate relies on.
func TestReplayCrashScheduleLenient(t *testing.T) {
	n := 2
	cfg := engine.Config[timestamp.Timestamp]{
		Alg: collect.New(n), World: engine.Simulated, N: n, Workload: engine.OneShot{},
	}
	entries := []int{0, 99, sched.CrashDrop(7), sched.CrashDrop(0), sched.CrashDrop(0), 0, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2}
	rep, err := engine.ReplayCrashSchedule(cfg, entries)
	if err != nil {
		t.Fatalf("lenient replay failed: %v", err)
	}
	if rep.Steps == 0 {
		t.Error("replay executed no steps")
	}
}
