package engine_test

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/lowerbound"
	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

// fakeTS is a timestamp type private to this test: the engine is generic
// over the timestamp type, and these tests exercise it with a type other
// than timestamp.Timestamp on purpose.
type fakeTS struct{ V int64 }

// fake is a minimal valid algorithm: a collect over n registers, each
// process writing register pid mod n. It additionally observes how many
// GetTS calls are in flight simultaneously, which the churn tests use.
type fake struct {
	n        int
	oneShot  bool
	table    [][]int
	inflight atomic.Int64
	maxIn    atomic.Int64
}

func (f *fake) Name() string         { return "fake" }
func (f *fake) Registers() int       { return f.n }
func (f *fake) OneShot() bool        { return f.oneShot }
func (f *fake) WriterTable() [][]int { return f.table }

func (f *fake) Compare(a, b fakeTS) bool { return a.V < b.V }

func (f *fake) GetTS(mem register.Mem, pid, seq int) (fakeTS, error) {
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		old := f.maxIn.Load()
		if cur <= old || f.maxIn.CompareAndSwap(old, cur) {
			break
		}
	}
	var max int64
	for i := 0; i < f.n; i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	ts := max + 1
	mem.Write(pid%f.n, ts)
	return fakeTS{V: ts}, nil
}

func cfgFor(alg *fake, world engine.World, n int, wl engine.Workload) engine.Config[fakeTS] {
	return engine.Config[fakeTS]{Alg: alg, World: world, N: n, Workload: wl, Seed: 7}
}

// Every workload kind runs in every world it supports, through the single
// Run entry point, and the result verifies.
func TestWorkloadsAcrossWorlds(t *testing.T) {
	const n = 4
	cases := []struct {
		wl     engine.Workload
		total  int // expected events
		worlds []engine.World
	}{
		{engine.OneShot{}, n, []engine.World{engine.Atomic, engine.Simulated}},
		{engine.LongLived{CallsPerProc: 3}, 3 * n, []engine.World{engine.Atomic, engine.Simulated}},
		{engine.Sequential{CallsPerProc: 2}, 2 * n, []engine.World{engine.Atomic, engine.Simulated}},
		{engine.Sequential{CallsPerProc: 2, RoundRobin: true}, 2 * n, []engine.World{engine.Atomic}},
		{engine.Phased{GroupSize: 2, CallsPerProc: 2}, 2 * n, []engine.World{engine.Atomic, engine.Simulated}},
		{engine.Churn{Width: 2, CallsPerProc: 2}, 2 * n, []engine.World{engine.Atomic, engine.Simulated}},
		{engine.Adversarial{CallsPerProc: 1}, n, []engine.World{engine.Simulated}},
	}
	for _, c := range cases {
		for _, world := range c.worlds {
			t.Run(fmt.Sprintf("%s/%s", c.wl.Kind(), world), func(t *testing.T) {
				alg := &fake{n: n}
				rep, err := engine.Run(cfgFor(alg, world, n, c.wl))
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Events) != c.total {
					t.Errorf("events = %d, want %d", len(rep.Events), c.total)
				}
				if err := rep.Verify(alg.Compare); err != nil {
					t.Errorf("happens-before violated: %v", err)
				}
				if rep.World != world || rep.Workload != c.wl.Kind() {
					t.Errorf("report labels = %v/%q", rep.World, rep.Workload)
				}
				if world == engine.Simulated {
					if rep.Steps == 0 || len(rep.Trace) != rep.Steps {
						t.Errorf("steps = %d, trace = %d", rep.Steps, len(rep.Trace))
					}
				}
			})
		}
	}
}

// The world/workload combinations that cannot exist report sentinels.
func TestUnsupportedCombinations(t *testing.T) {
	alg := &fake{n: 2}
	if _, err := engine.Run(cfgFor(alg, engine.Atomic, 2, engine.Adversarial{})); !errors.Is(err, engine.ErrNeedsSim) {
		t.Errorf("adversarial/atomic err = %v, want ErrNeedsSim", err)
	}
	rr := engine.Sequential{RoundRobin: true}
	if _, err := engine.Run(cfgFor(alg, engine.Simulated, 2, rr)); !errors.Is(err, engine.ErrNeedsAtomic) {
		t.Errorf("round-robin/sim err = %v, want ErrNeedsAtomic", err)
	}
}

func TestOneShotGuard(t *testing.T) {
	alg := &fake{n: 2, oneShot: true}
	for _, world := range []engine.World{engine.Atomic, engine.Simulated} {
		if _, err := engine.Run(cfgFor(alg, world, 2, engine.LongLived{CallsPerProc: 2})); !errors.Is(err, engine.ErrOneShot) {
			t.Errorf("%v: err = %v, want ErrOneShot", world, err)
		}
	}
	if _, err := engine.Explore(cfgFor(alg, engine.Simulated, 2, engine.LongLived{CallsPerProc: 2}), 0, 100); !errors.Is(err, engine.ErrOneShot) {
		t.Error("Explore must apply the one-shot guard")
	}
	if err := engine.Sample(cfgFor(alg, engine.Simulated, 2, engine.LongLived{CallsPerProc: 2}), 1); !errors.Is(err, engine.ErrOneShot) {
		t.Error("Sample must apply the one-shot guard")
	}
}

// Churn in the atomic world really bounds the number of simultaneously
// live processes.
func TestChurnWidthAtomic(t *testing.T) {
	const n, width = 16, 3
	alg := &fake{n: n}
	if _, err := engine.Run(cfgFor(alg, engine.Atomic, n, engine.Churn{Width: width, CallsPerProc: 2})); err != nil {
		t.Fatal(err)
	}
	if got := alg.maxIn.Load(); got > width {
		t.Errorf("max in-flight getTS = %d, want ≤ %d", got, width)
	}
	if alg.maxIn.Load() < 2 {
		t.Log("churn pool never overlapped; width check vacuous this run")
	}
}

// Churn in the simulated world admits a process only after an earlier one
// terminated: the first operation of process `width` must appear in the
// trace after the last operation of some earlier process.
func TestChurnJoinAfterLeaveSim(t *testing.T) {
	const n, width = 6, 2
	alg := &fake{n: n}
	rep, err := engine.Run(cfgFor(alg, engine.Simulated, n, engine.Churn{Width: width, CallsPerProc: 2}))
	if err != nil {
		t.Fatal(err)
	}
	firstOp := make(map[int]int)
	lastOp := make(map[int]int)
	for step, op := range rep.Trace {
		if _, ok := firstOp[op.Pid]; !ok {
			firstOp[op.Pid] = step
		}
		lastOp[op.Pid] = step
	}
	joined, ok := firstOp[width]
	if !ok {
		t.Fatalf("process %d never ran", width)
	}
	leftBefore := false
	for pid := 0; pid < width; pid++ {
		if lastOp[pid] < joined {
			leftBefore = true
		}
	}
	if !leftBefore {
		t.Errorf("process %d joined at step %d before any of p0..p%d left", width, joined, width-1)
	}
}

// An explicit adversarial schedule is replayed verbatim (prefix), then the
// system drains.
func TestAdversarialScheduleReplayed(t *testing.T) {
	const n = 2
	alg := &fake{n: n}
	schedule := []int{0, 0, 1, 0}
	rep, err := engine.Run(cfgFor(alg, engine.Simulated, n, engine.Adversarial{Schedule: schedule}))
	if err != nil {
		t.Fatal(err)
	}
	for i, pid := range schedule {
		if rep.Trace[i].Pid != pid {
			t.Errorf("step %d executed by p%d, schedule says p%d", i, rep.Trace[i].Pid, pid)
		}
	}
	if _, err := engine.Run(cfgFor(alg, engine.Simulated, n, engine.Adversarial{Schedule: []int{5}})); err == nil {
		t.Error("out-of-range schedule entry must fail")
	}
}

// The writer discipline runs inside the engine's middleware stack: an
// algorithm whose writes violate its own claimed table is caught (the
// simulated world converts the panic into a process error).
func TestDisciplineEnforcedInStack(t *testing.T) {
	// The fake writes register pid%n, so claiming register 0 belongs to
	// process 1 alone makes process 0's write a violation.
	alg := &fake{n: 2, table: [][]int{{1}, nil}}
	_, err := engine.Run(cfgFor(alg, engine.Simulated, 2, engine.OneShot{}))
	if err == nil || !strings.Contains(err.Error(), "not a permitted writer") {
		t.Errorf("err = %v, want writer-discipline violation", err)
	}
}

// Per-register operation counts are part of the report and consistent
// with the totals.
func TestPerRegisterCounts(t *testing.T) {
	const n = 3
	alg := &fake{n: n}
	rep, err := engine.Run(cfgFor(alg, engine.Simulated, n, engine.LongLived{CallsPerProc: 2}))
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	for i := 0; i < n; i++ {
		reads += rep.Space.ReadCounts[i]
		writes += rep.Space.WriteCounts[i]
	}
	if reads != rep.Space.Reads || writes != rep.Space.Writes {
		t.Errorf("per-register sums (%d, %d) != totals (%d, %d)", reads, writes, rep.Space.Reads, rep.Space.Writes)
	}
	if writes != uint64(n*2) {
		t.Errorf("writes = %d, want %d (one per call)", writes, n*2)
	}
}

// BaseMem and OnCall expose the run to the caller: the observer sees every
// call, and the provided memory holds the final state.
func TestBaseMemAndObserver(t *testing.T) {
	const n = 3
	alg := &fake{n: n}
	mem := register.NewAtomicArray(n)
	var calls int
	_, err := engine.Run(engine.Config[fakeTS]{
		Alg: alg, World: engine.Atomic, N: n,
		Workload: engine.Sequential{},
		BaseMem:  mem,
		OnCall:   func(pid, seq int, ts fakeTS) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != n {
		t.Errorf("observer saw %d calls, want %d", calls, n)
	}
	if mem.Read(0) == nil {
		t.Error("caller-provided memory not used")
	}
}

// Unmetered runs still record events but skip the space accounting — the
// throughput benchmarks use this to keep the shared meter's lock off the
// operation path.
func TestUnmetered(t *testing.T) {
	const n = 4
	cfg := cfgFor(&fake{n: n}, engine.Atomic, n, engine.OneShot{})
	cfg.Unmetered = true
	rep, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != n {
		t.Errorf("events = %d, want %d", len(rep.Events), n)
	}
	if rep.Space.Writes != 0 || rep.Space.Written != 0 {
		t.Errorf("unmetered run still accounted space: %+v", rep.Space)
	}
	if rep.Space.Registers != n {
		t.Errorf("Space.Registers = %d, want %d", rep.Space.Registers, n)
	}
}

// A BaseMem larger than the algorithm's budget is allowed (the extra
// registers are unconstrained by the discipline); a smaller one is an
// error, not a panic.
func TestBaseMemSizing(t *testing.T) {
	alg := &fake{n: 2, table: [][]int{{0}, {1}}}
	cfg := cfgFor(alg, engine.Atomic, 2, engine.Sequential{})
	cfg.BaseMem = register.NewAtomicArray(5)
	rep, err := engine.Run(cfg)
	if err != nil {
		t.Fatalf("oversized BaseMem rejected: %v", err)
	}
	if rep.Space.Registers != 5 {
		t.Errorf("Space.Registers = %d, want the override's 5", rep.Space.Registers)
	}

	cfg.BaseMem = register.NewAtomicArray(1)
	if _, err := engine.Run(cfg); err == nil {
		t.Error("undersized BaseMem must be rejected")
	}

	// The simulated world's memory belongs to the scheduler; an override
	// must fail fast, not be silently ignored.
	cfg.BaseMem = register.NewAtomicArray(5)
	cfg.World = engine.Simulated
	if _, err := engine.Run(cfg); !errors.Is(err, engine.ErrNeedsAtomic) {
		t.Errorf("BaseMem in the simulated world: err = %v, want ErrNeedsAtomic", err)
	}
}

// The sharded array is a drop-in: same space accounting as the flat array.
func TestShardedWorldEquivalence(t *testing.T) {
	const n = 8
	flat, err := engine.Run(cfgFor(&fake{n: n}, engine.Atomic, n, engine.Sequential{}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgFor(&fake{n: n}, engine.Atomic, n, engine.Sequential{})
	cfg.Sharded = true
	sharded, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Space.Written != sharded.Space.Written || flat.Space.Writes != sharded.Space.Writes {
		t.Errorf("flat wrote %d/%d, sharded %d/%d",
			flat.Space.Written, flat.Space.Writes, sharded.Space.Written, sharded.Space.Writes)
	}
}

// Explore enumerates the same interleaving count as the historical runner
// harness did for this algorithm shape (2 procs × (2 reads + 1 write):
// C(6,3) = 20), and Sample accepts the engine config.
func TestExploreAndSample(t *testing.T) {
	alg := &fake{n: 2}
	visits, err := engine.Explore(cfgFor(alg, engine.Simulated, 2, engine.OneShot{}), 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if visits != 20 {
		t.Errorf("visits = %d, want 20", visits)
	}
	if err := engine.Sample(cfgFor(&fake{n: 3}, engine.Simulated, 3, engine.LongLived{CallsPerProc: 2}), 10); err != nil {
		t.Fatal(err)
	}
}

// The versioned middleware makes the ablation's version-stamped scan work
// under the simulated world — before the engine, it ran on real memory
// only (the scheduler's register file has no native versions).
func TestVersionedScanUnderSimulation(t *testing.T) {
	const n = 6
	alg := sqrt.New(n)
	alg.UseVersionedScan(true)
	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.OneShot{},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(alg.Compare); err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != n {
		t.Errorf("events = %d, want %d", len(rep.Events), n)
	}
}

// The construction entry points validate the theorems' guarantees
// centrally.
func TestConstructionCovers(t *testing.T) {
	ll, err := engine.LongLivedCover(60, lowerbound.FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if ll.Covered < ll.Bound {
		t.Errorf("long-lived: covered %d < bound %d", ll.Covered, ll.Bound)
	}
	os, err := engine.OneShotCover(100, lowerbound.LowestFirst{})
	if err != nil {
		t.Fatal(err)
	}
	if os.FinalJ < os.Bound {
		t.Errorf("one-shot: j=%d < bound %d", os.FinalJ, os.Bound)
	}
}

// NewSimSystem hands out the driveable triple for adversaries and scripted
// scenarios; results are []T per process.
func TestNewSimSystemResults(t *testing.T) {
	alg := &fake{n: 2}
	sys, rec, meter := engine.NewSimSystem(cfgFor(alg, engine.Simulated, 2, engine.LongLived{CallsPerProc: 2}))
	defer sys.Close()
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 2; pid++ {
		res, ok := sys.Result(pid)
		if !ok {
			t.Fatalf("p%d has no result", pid)
		}
		if ts := res.([]fakeTS); len(ts) != 2 {
			t.Errorf("p%d returned %d timestamps, want 2", pid, len(ts))
		}
	}
	if rec.Len() != 4 {
		t.Errorf("recorded %d events, want 4", rec.Len())
	}
	if meter.Report().Writes != 4 {
		t.Errorf("metered %d writes, want 4", meter.Report().Writes)
	}
}

func TestWorldStringAndParse(t *testing.T) {
	cases := map[engine.World]string{
		engine.Atomic:    "atomic",
		engine.Simulated: "simulated",
		engine.World(7):  "World(7)", // invalid values must not render as "simulated"
		engine.World(-1): "World(-1)",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("World(%d).String() = %q, want %q", int(w), got, want)
		}
	}
	for _, w := range []engine.World{engine.Atomic, engine.Simulated} {
		got, err := engine.ParseWorld(w.String())
		if err != nil || got != w {
			t.Errorf("ParseWorld(%q) = (%v, %v), want round trip", w.String(), got, err)
		}
	}
	for _, bad := range []string{"", "Atomic", "sim", "World(7)"} {
		if _, err := engine.ParseWorld(bad); err == nil {
			t.Errorf("ParseWorld(%q) accepted", bad)
		}
	}
}
