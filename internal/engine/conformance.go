package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tsspace/internal/hbcheck"
	"tsspace/internal/mc"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// simCapable is an optional Algorithm capability: implementations whose
// getTS cannot be driven by the gated scheduler (no register operations to
// gate, or internal waiting the scheduler would deadlock on) report false.
type simCapable interface{ Simulable() bool }

// Simulable reports whether alg can run under the deterministic scheduler.
// Algorithms opt out by implementing Simulable() bool; everything written
// purely against register.Mem is simulable by construction.
func Simulable[T any](alg Algorithm[T]) bool {
	if s, ok := alg.(simCapable); ok {
		return s.Simulable()
	}
	return true
}

// callSpans records, per completed getTS call, the per-process ordinals of
// its first and last register operation — the bridge between the
// recorder's events and the scheduler's trace that mc.CausalCheck needs.
type callSpans struct {
	mu sync.Mutex
	m  map[[2]int][2]int
}

func newCallSpans() *callSpans {
	return &callSpans{m: make(map[[2]int][2]int)}
}

func (s *callSpans) set(pid, seq, first, last int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[[2]int{pid, seq}] = [2]int{first, last}
}

func (s *callSpans) get(pid, seq int) (first, last int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.m[[2]int{pid, seq}]
	if !ok {
		return -1, -1
	}
	return sp[0], sp[1]
}

// calls joins recorded events with their operation spans.
func callsFromEvents[T any](events []hbcheck.Event[T], spans *callSpans) []mc.Call[T] {
	out := make([]mc.Call[T], 0, len(events))
	for _, ev := range events {
		first, last := spans.get(ev.Pid, ev.Seq)
		out = append(out, mc.Call[T]{Pid: ev.Pid, Seq: ev.Seq, First: first, Last: last, Val: ev.Val})
	}
	return out
}

// opCounter counts the operations granted to one process. Not safe for
// concurrent use — by construction only that process's body touches it.
type opCounter struct {
	ops int
}

// counted is the per-process counting middleware behind call-span
// tracking, preserving the VersionedMem capability like every layer.
func counted(c *opCounter) register.Middleware {
	return func(inner register.Mem) register.Mem {
		cm := &countedMem{inner: inner, c: c}
		if vm, ok := inner.(register.VersionedMem); ok {
			return &countedVersioned{countedMem: cm, vm: vm}
		}
		return cm
	}
}

type countedMem struct {
	inner register.Mem
	c     *opCounter
}

func (m *countedMem) Size() int { return m.inner.Size() }

func (m *countedMem) Read(i int) register.Value {
	v := m.inner.Read(i) // blocks until the scheduler grants the read
	m.c.ops++
	return v
}

func (m *countedMem) Write(i int, v register.Value) {
	m.inner.Write(i, v)
	m.c.ops++
}

type countedVersioned struct {
	*countedMem
	vm register.VersionedMem
}

func (m *countedVersioned) ReadVersioned(i int) (register.Value, uint64) {
	v, ver := m.vm.ReadVersioned(i)
	m.c.ops++
	return v, ver
}

// newSimSystemSpans is NewSimSystem plus call-span tracking: each process's
// operations are counted through the counting layer so that every
// completed call knows which slice of its process's operation sequence it
// occupied. NewSimSystem delegates here and drops the spans.
func newSimSystemSpans[T any](cfg Config[T]) (*sched.System, *hbcheck.Recorder[T], *register.Meter, *callSpans) {
	wl := cfg.Workload
	if wl == nil {
		wl = OneShot{}
	}
	m := cfg.Alg.Registers()
	meter := register.NewMeterSize(m)
	versions := register.NewVersions(m)
	table := cfg.Alg.WriterTable()
	metered := register.Metered(meter)
	if cfg.Unmetered {
		metered = nil
	}
	rec := &hbcheck.Recorder[T]{}
	spans := newCallSpans()
	sys := sched.New(cfg.N, m, func(pid int, mem register.Mem) (any, error) {
		// The op counter sits directly above the version layer so its
		// counts line up one-to-one with the operations the scheduler
		// attributes to this process. A plain int suffices: each process
		// body is single-threaded, and the counter is read only between
		// the process's own calls.
		counter := &opCounter{}
		mem = register.Wrap(mem,
			register.Versioned(versions),
			counted(counter),
			metered,
			register.DisciplineFor(table, pid),
		)
		calls := wl.Calls(pid, cfg.N)
		out := make([]T, 0, calls)
		for k := 0; k < calls; k++ {
			first := counter.ops
			sm, stamp := register.StampFirstOp(mem, rec.Begin)
			ts, err := cfg.Alg.GetTS(sm, pid, k)
			if err != nil {
				return out, fmt.Errorf("p%d getTS#%d: %w", pid, k, err)
			}
			rec.End(pid, k, stamp.Stamp(), ts)
			last := counter.ops - 1
			if last < first {
				first, last = -1, -1 // operation-free call
			}
			spans.set(pid, k, first, last)
			if cfg.OnCall != nil {
				cfg.OnCall(pid, k, ts)
			}
			out = append(out, ts)
		}
		return out, nil
	})
	return sys, rec, meter, spans
}

// Counterexample is a failing schedule found by Exhaustive or Fuzz,
// shrunk (when requested) to a 1-minimal complete execution that still
// violates the specification. Schedule is fully replayable: feeding it to
// the Adversarial workload (or sched.System.Run) reproduces the violation
// deterministically.
type Counterexample struct {
	Alg      string
	Schedule []int
	Steps    int
	Trace    []sched.Op
	Err      error // the underlying property violation
}

// Error renders the counterexample.
func (c *Counterexample) Error() string {
	return fmt.Sprintf("engine: %s: %d-step counterexample %v: %v", c.Alg, c.Steps, c.Schedule, c.Err)
}

// Unwrap returns the property violation.
func (c *Counterexample) Unwrap() error { return c.Err }

// ExhaustiveOptions configures the Exhaustive run mode.
type ExhaustiveOptions[T any] struct {
	// MaxVisits caps visited executions (0 = all); MaxSteps guards against
	// runaway schedules (0 = default).
	MaxVisits, MaxSteps int
	// POR enables the sleep-set + state-hashing reduction; off, the
	// exploration degenerates to a naive DFS (the baseline the reduction
	// is measured against).
	POR bool
	// Shrink minimizes any failing schedule before reporting it.
	Shrink bool
	// Footprint optionally feeds static access knowledge to the
	// persistent-set computation (see mc.Footprint).
	Footprint mc.Footprint
	// NewAlg, when non-nil, constructs a fresh algorithm instance for
	// every replayed execution. Required for algorithms keeping state
	// outside the registers (fas, the test mutants); stateless algorithms
	// may leave it nil and share cfg.Alg.
	NewAlg func() Algorithm[T]
}

// Exhaustive model-checks the configuration with partial-order reduction:
// it visits one representative of every equivalence class of maximal
// executions of the workload and verifies the happens-before specification
// over each whole class via mc.CausalCheck. On a violation it returns a
// *Counterexample (shrunk if requested) alongside the exploration stats.
func Exhaustive[T any](cfg Config[T], opt ExhaustiveOptions[T]) (mc.Stats, error) {
	if _, _, err := cfg.prepare(); err != nil {
		return mc.Stats{}, err
	}
	if !Simulable(cfg.Alg) {
		return mc.Stats{}, fmt.Errorf("%w: %s cannot run under the deterministic scheduler", ErrNeedsAtomic, cfg.Alg.Name())
	}
	mk := func() Config[T] {
		c := cfg
		if opt.NewAlg != nil {
			c.Alg = opt.NewAlg()
		}
		return c
	}
	var cur struct {
		rec   *hbcheck.Recorder[T]
		spans *callSpans
	}
	factory := func() *sched.System {
		sys, rec, _, spans := newSimSystemSpans(mk())
		cur.rec, cur.spans = rec, spans
		return sys
	}
	mcOpt := mc.Options{
		MaxVisits: opt.MaxVisits,
		MaxSteps:  opt.MaxSteps,
		SleepSets: opt.POR,
		StateHash: opt.POR,
		Footprint: opt.Footprint,
	}
	stats, err := mc.Explore(factory, mcOpt, func(sys *sched.System, schedule []int) error {
		return checkVisit(sys, cur.rec, cur.spans, cfg.Alg.Compare)
	})
	if err == nil {
		return stats, nil
	}
	var se *mc.ScheduleError
	if !errors.As(err, &se) {
		return stats, err
	}
	return stats, counterexample(cfg.Alg.Name(), mk, se.Schedule, cfg.N, opt.Shrink, cfg.Alg.Compare)
}

// checkVisit surfaces process errors and causally checks one visited
// execution.
func checkVisit[T any](sys *sched.System, rec *hbcheck.Recorder[T], spans *callSpans, compare func(a, b T) bool) error {
	for pid := 0; pid < sys.N(); pid++ {
		if err := sys.Err(pid); err != nil {
			return err
		}
	}
	return mc.CausalCheck(sys.N(), sys.Trace(), callsFromEvents(rec.Events(), spans), compare)
}

// replaySchedule runs a candidate schedule leniently on a fresh system —
// out-of-range and terminated entries are skipped — and returns the
// executed schedule, its trace, and the causal-check outcome over the
// calls completed so far. The execution is deliberately NOT driven to
// completion: a prefix is a legal execution, and leaving irrelevant
// processes unfinished is what lets the shrinker cut a counterexample down
// to just the operations of the offending calls.
func replaySchedule[T any](mk func() Config[T], schedule []int, compare func(a, b T) bool) (full []int, trace []sched.Op, err error) {
	sys, rec, _, spans := newSimSystemSpans(mk())
	defer sys.Close()
	for _, pid := range schedule {
		if pid < 0 || pid >= sys.N() {
			continue
		}
		if _, alive, err := sys.Pending(pid); err != nil {
			return nil, nil, err
		} else if !alive {
			continue
		}
		if _, err := sys.Step(pid); err != nil {
			return nil, nil, err
		}
	}
	trace = sys.Trace()
	full = make([]int, len(trace))
	for i, op := range trace {
		full[i] = op.Pid
	}
	return full, trace, checkVisit(sys, rec, spans, compare)
}

// counterexample replays (and optionally shrinks) a failing schedule into
// a *Counterexample.
func counterexample[T any](alg string, mk func() Config[T], schedule []int, n int, shrink bool, compare func(a, b T) bool) error {
	isViolation := func(err error) bool {
		var v mc.Violation[T]
		return errors.As(err, &v)
	}
	if shrink {
		schedule = mc.Shrink(schedule, func(cand []int) bool {
			_, _, err := replaySchedule(mk, cand, compare)
			return err != nil && isViolation(err)
		})
	}
	full, trace, err := replaySchedule(mk, schedule, compare)
	if err == nil {
		// Shrinking is pure replay, so this cannot happen unless the
		// algorithm is nondeterministic; surface that instead of hiding it.
		return fmt.Errorf("engine: %s: failing schedule %v no longer fails on replay", alg, schedule)
	}
	// A causal violation may be realizable only in a reordering of the
	// replayed interleaving. Serialize the witness so the reported
	// schedule exhibits the violating pair back to back — directly visible
	// to the plain interval-order checker on replay.
	var v mc.Violation[T]
	if errors.As(err, &v) {
		if ws := mc.WitnessSchedule(n, trace, v); ws != nil {
			if wsFull, wsTrace, wsErr := replaySchedule(mk, ws, compare); wsErr != nil && isViolation(wsErr) {
				full, trace, err = wsFull, wsTrace, wsErr
			}
		}
	}
	return &Counterexample{Alg: alg, Schedule: full, Steps: len(full), Trace: trace, Err: err}
}

// FuzzOptions configures the Fuzz run mode.
type FuzzOptions[T any] struct {
	// Count is the number of random schedules (or atomic-world runs for
	// non-simulable algorithms); values < 1 mean 1.
	Count int
	// Shrink minimizes any failing schedule before reporting it.
	Shrink bool
	// NewAlg constructs a fresh algorithm per schedule; see
	// ExhaustiveOptions.NewAlg.
	NewAlg func() Algorithm[T]
}

// FuzzReport summarizes a fuzzing run.
type FuzzReport struct {
	// World is Simulated, or Atomic for non-simulable algorithms.
	World World
	// Schedules is the number of executions checked, Steps the total
	// scheduler steps across them (simulated world only).
	Schedules, Steps int
}

// Fuzz stress-tests the configuration on Count seeded random maximal
// interleavings (from cfg.Seed), causally checking each and shrinking any
// failure to a *Counterexample. Non-simulable algorithms fall back to
// repeated atomic-world runs checked by the interval-order verifier.
func Fuzz[T any](cfg Config[T], opt FuzzOptions[T]) (FuzzReport, error) {
	if _, _, err := cfg.prepare(); err != nil {
		return FuzzReport{}, err
	}
	count := opt.Count
	if count < 1 {
		count = 1
	}
	mk := func() Config[T] {
		c := cfg
		if opt.NewAlg != nil {
			c.Alg = opt.NewAlg()
		}
		return c
	}
	if !Simulable(cfg.Alg) {
		rep := FuzzReport{World: Atomic}
		for i := 0; i < count; i++ {
			c := mk()
			c.World = Atomic
			r, err := Run(c)
			if err == nil {
				err = r.Verify(cfg.Alg.Compare)
			}
			if err != nil {
				return rep, fmt.Errorf("engine: %s atomic fuzz run %d: %w", cfg.Alg.Name(), i, err)
			}
			rep.Schedules++
		}
		return rep, nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := FuzzReport{World: Simulated}
	for i := 0; i < count; i++ {
		sys, rec, _, spans := newSimSystemSpans(mk())
		schedule, err := randomMaximal(sys, rng)
		if err == nil {
			err = checkVisit(sys, rec, spans, cfg.Alg.Compare)
		}
		rep.Steps += sys.Steps()
		sys.Close()
		if err != nil {
			return rep, counterexample(cfg.Alg.Name(), mk, schedule, cfg.N, opt.Shrink, cfg.Alg.Compare)
		}
		rep.Schedules++
	}
	return rep, nil
}

// randomMaximal drives sys to completion with uniformly random scheduling,
// returning the schedule taken.
func randomMaximal(sys *sched.System, rng *rand.Rand) ([]int, error) {
	var schedule []int
	live := make([]int, 0, sys.N())
	for {
		live = live[:0]
		for pid := 0; pid < sys.N(); pid++ {
			if _, alive, err := sys.Pending(pid); err != nil {
				return schedule, err
			} else if alive {
				live = append(live, pid)
			}
		}
		if len(live) == 0 {
			return schedule, nil
		}
		pid := live[rng.Intn(len(live))]
		if _, err := sys.Step(pid); err != nil {
			return schedule, err
		}
		schedule = append(schedule, pid)
	}
}

// ConformanceSpec describes one algorithm family's sweep through the
// conformance matrix: exhaustive small-N exploration plus seeded large-N
// fuzzing.
type ConformanceSpec[T any] struct {
	// New constructs the implementation for n processes.
	New func(n int) Algorithm[T]
	// ExhaustiveNs lists the process counts explored exhaustively.
	ExhaustiveNs []int
	// Calls is the per-process call count for long-lived algorithms
	// (one-shot algorithms are forced to 1); values < 1 mean 1.
	Calls int
	// MaxVisits caps each exploration (0 = unlimited).
	MaxVisits int
	// FuzzN and FuzzCount shape the fuzzing leg (skipped if either ≤ 0).
	FuzzN, FuzzCount int
	// Seed feeds the fuzzing schedules.
	Seed int64
	// POR and Shrink are passed through to the run modes.
	POR, Shrink bool
}

// ConformanceResult is one row of the conformance matrix.
type ConformanceResult struct {
	Alg   string
	Mode  string // "exhaustive" or "fuzz"
	World World
	N     int
	Calls int
	// Stats is populated for exhaustive rows, Schedules for fuzz rows.
	Stats     mc.Stats
	Schedules int
	// Skipped carries the reason a leg did not run (e.g. not simulable).
	Skipped string
	Err     error
}

// Conformance runs the spec's full matrix and returns one result per leg.
// It never aborts early: a failing leg records its error (typically a
// *Counterexample) and the sweep continues, so callers always see the
// whole table.
func Conformance[T any](spec ConformanceSpec[T]) []ConformanceResult {
	var out []ConformanceResult
	calls := spec.Calls
	if calls < 1 {
		calls = 1
	}
	workload := func(alg Algorithm[T]) (Workload, int) {
		if alg.OneShot() || calls == 1 {
			return OneShot{}, 1
		}
		return LongLived{CallsPerProc: calls}, calls
	}
	for _, n := range spec.ExhaustiveNs {
		alg := spec.New(n)
		wl, c := workload(alg)
		res := ConformanceResult{Alg: alg.Name(), Mode: "exhaustive", World: Simulated, N: n, Calls: c}
		cfg := Config[T]{Alg: alg, World: Simulated, N: n, Workload: wl, Seed: spec.Seed}
		if !Simulable(alg) {
			// The gated scheduler cannot drive this algorithm; substitute
			// an atomic-world stress leg so the row is still exercised.
			res.World = Atomic
			res.Skipped = "not simulable; ran atomic stress instead"
			count := spec.FuzzCount
			if count < 1 {
				count = 10
			}
			rep, err := Fuzz(cfg, FuzzOptions[T]{
				Count:  count,
				NewAlg: func() Algorithm[T] { return spec.New(n) },
			})
			res.Schedules, res.Err = rep.Schedules, err
			out = append(out, res)
			continue
		}
		stats, err := Exhaustive(cfg, ExhaustiveOptions[T]{
			MaxVisits: spec.MaxVisits,
			POR:       spec.POR,
			Shrink:    spec.Shrink,
			NewAlg:    func() Algorithm[T] { return spec.New(n) },
		})
		res.Stats, res.Err = stats, err
		out = append(out, res)
	}
	if spec.FuzzN > 0 && spec.FuzzCount > 0 {
		alg := spec.New(spec.FuzzN)
		wl, c := workload(alg)
		res := ConformanceResult{Alg: alg.Name(), Mode: "fuzz", World: Simulated, N: spec.FuzzN, Calls: c}
		if !Simulable(alg) {
			res.World = Atomic
		}
		rep, err := Fuzz(Config[T]{Alg: alg, World: Simulated, N: spec.FuzzN, Workload: wl, Seed: spec.Seed}, FuzzOptions[T]{
			Count:  spec.FuzzCount,
			Shrink: spec.Shrink,
			NewAlg: func() Algorithm[T] { return spec.New(spec.FuzzN) },
		})
		res.World, res.Schedules, res.Err = rep.World, rep.Schedules, err
		out = append(out, res)
	}
	return out
}
