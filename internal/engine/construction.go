package engine

import (
	"fmt"

	"tsspace/internal/lowerbound"
)

// The lower-bound constructions (Theorems 1.1 and 1.2) are runs too: they
// drive abstract covering configurations instead of register programs, but
// every consumer wants the same thing from them — replay, then validate
// the theorem's guarantee. These entry points make the engine the single
// door for them as well (experiments E1, E2, E5, E6), with the bound
// checks applied centrally instead of re-implemented per caller.

// LongLivedCover replays the Theorem 1.1 construction for n processes with
// the given placement policy and validates that the final
// (3,⌊n/2⌋)-configuration covers at least ⌊n/6⌋ registers.
func LongLivedCover(n int, pol lowerbound.Policy) (*lowerbound.LongLivedReport, error) {
	rep, err := lowerbound.LongLivedConstruction(n, pol)
	if err != nil {
		return nil, err
	}
	if rep.Covered < rep.Bound {
		return nil, fmt.Errorf("engine: long-lived construction n=%d covered %d registers < bound %d", n, rep.Covered, rep.Bound)
	}
	return rep, nil
}

// OneShotCover replays the Theorem 1.2 construction for n processes with
// the given placement policy and validates the j_last ≥ m − log₂n − 2
// guarantee.
func OneShotCover(n int, pol lowerbound.Policy) (*lowerbound.OneShotReport, error) {
	return oneShotChecked(n, func() (*lowerbound.OneShotReport, error) {
		return lowerbound.OneShotConstruction(n, pol)
	})
}

// OneShotCoverQ is OneShotCover with the small-Q variant of the Lemma 4.1
// step exposed (used by the scripted Figure 2 replay).
func OneShotCoverQ(n int, pol lowerbound.Policy, smallQ bool) (*lowerbound.OneShotReport, error) {
	return oneShotChecked(n, func() (*lowerbound.OneShotReport, error) {
		return lowerbound.OneShotConstructionQ(n, pol, smallQ)
	})
}

func oneShotChecked(n int, run func() (*lowerbound.OneShotReport, error)) (*lowerbound.OneShotReport, error) {
	rep, err := run()
	if err != nil {
		return nil, err
	}
	if rep.FinalJ < rep.Bound {
		return nil, fmt.Errorf("engine: one-shot construction n=%d covered j=%d registers < bound %d", n, rep.FinalJ, rep.Bound)
	}
	if len(rep.Steps) == 0 {
		return nil, fmt.Errorf("engine: one-shot construction n=%d produced no steps", n)
	}
	return rep, nil
}
