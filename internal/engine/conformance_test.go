package engine_test

import (
	"errors"
	"fmt"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/mc"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/fas"
	"tsspace/internal/timestamp/mutant"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

// The conformance roster: every timestamp implementation in the
// repository, each with a constructor and its long-lived call count (1 for
// one-shot objects).
type rosterEntry struct {
	name  string
	new   func(n int) engine.Algorithm[timestamp.Timestamp]
	calls int
	minN  int // dense needs n ≥ 2
}

var roster = []rosterEntry{
	{"collect", func(n int) engine.Algorithm[timestamp.Timestamp] { return collect.New(n) }, 2, 1},
	{"dense", func(n int) engine.Algorithm[timestamp.Timestamp] { return dense.New(n) }, 2, 2},
	{"simple", func(n int) engine.Algorithm[timestamp.Timestamp] { return simple.New(n) }, 1, 1},
	{"sqrt", func(n int) engine.Algorithm[timestamp.Timestamp] { return sqrt.New(n) }, 1, 1},
	{"fas", func(n int) engine.Algorithm[timestamp.Timestamp] { return fas.New(n) }, 2, 1},
}

// TestConformanceMatrix runs every algorithm through the unified driver:
// exhaustive POR exploration at n=2 (long-lived call counts) and n=3
// (one-shot shape), plus seeded fuzzing at n=8. fas is not simulable and
// must be substituted with atomic-world stress rather than silently
// skipped.
func TestConformanceMatrix(t *testing.T) {
	for _, entry := range roster {
		t.Run(entry.name, func(t *testing.T) {
			var results []engine.ConformanceResult
			// n=2 with the algorithm's long-lived call count.
			if entry.minN <= 2 {
				results = append(results, engine.Conformance(engine.ConformanceSpec[timestamp.Timestamp]{
					New:          entry.new,
					ExhaustiveNs: []int{2},
					Calls:        entry.calls,
					MaxVisits:    50_000,
					Seed:         7,
					POR:          true,
					Shrink:       true,
				})...)
			}
			// n=3 one-shot shape plus the fuzzing leg at n=8.
			results = append(results, engine.Conformance(engine.ConformanceSpec[timestamp.Timestamp]{
				New:          entry.new,
				ExhaustiveNs: []int{3},
				Calls:        1,
				MaxVisits:    50_000,
				FuzzN:        8,
				FuzzCount:    25,
				Seed:         11,
				POR:          true,
				Shrink:       true,
			})...)

			if len(results) < 3 {
				t.Fatalf("only %d conformance legs ran", len(results))
			}
			for _, r := range results {
				tag := fmt.Sprintf("%s %s n=%d×%d (%s world)", r.Alg, r.Mode, r.N, r.Calls, r.World)
				if r.Err != nil {
					t.Errorf("%s: %v", tag, r.Err)
					continue
				}
				checked := r.Stats.Visited + r.Schedules
				if checked == 0 {
					t.Errorf("%s: checked nothing", tag)
				}
				t.Logf("%s: %d executions ok (%v)", tag, checked, r.Stats)
			}
			// fas must have been re-routed to the atomic world.
			if entry.name == "fas" {
				for _, r := range results {
					if r.Mode == "exhaustive" && (r.World != engine.Atomic || r.Skipped == "") {
						t.Errorf("fas exhaustive leg not substituted: world=%v skipped=%q", r.World, r.Skipped)
					}
				}
			}
		})
	}
}

// TestPORReduction is the headline acceptance bound: on the same 3-process
// workload, POR exploration must visit at most 20% of the schedules the
// naive DFS visits. (In practice it is far below: tens vs tens of
// thousands.)
func TestPORReduction(t *testing.T) {
	cases := []struct {
		name string
		alg  engine.Algorithm[timestamp.Timestamp]
		n    int
	}{
		{"dense", dense.New(3), 3},
		{"collect", collect.New(3), 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := engine.Config[timestamp.Timestamp]{
				Alg: c.alg, World: engine.Simulated, N: c.n, Workload: engine.OneShot{},
			}
			naive, err := engine.Explore(cfg, 0, 100_000)
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			stats, err := engine.Exhaustive(cfg, engine.ExhaustiveOptions[timestamp.Timestamp]{POR: true})
			if err != nil {
				t.Fatalf("POR: %v", err)
			}
			t.Logf("%s n=%d: naive %d vs POR %d visits (%.2f%%)",
				c.name, c.n, naive, stats.Visited, 100*float64(stats.Visited)/float64(naive))
			if stats.Visited*5 > naive {
				t.Errorf("POR visited %d of %d naive schedules, want ≤ 20%%", stats.Visited, naive)
			}
			if stats.SleepPruned == 0 {
				t.Error("no sleep-set pruning recorded")
			}
		})
	}
}

// TestMutantCaughtAndShrunk: the stale-scan mutant passes solo and
// sequential-by-process runs, but exhaustive exploration must find a
// violation and shrink it to a ≤ 12-step counterexample that replays
// deterministically.
func TestMutantCaughtAndShrunk(t *testing.T) {
	const n = 2
	newMutant := func() engine.Algorithm[timestamp.Timestamp] { return mutant.NewStaleScan(n) }
	cfg := engine.Config[timestamp.Timestamp]{
		Alg:      newMutant(),
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: 2},
	}

	// Sanity: the by-process sequential baseline does NOT catch it.
	seq := cfg
	seq.Alg = newMutant()
	seq.Workload = engine.Sequential{CallsPerProc: 2}
	rep, err := engine.Run(seq)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := rep.Verify(seq.Alg.Compare); err != nil {
		t.Fatalf("mutant too broken: sequential baseline already fails: %v", err)
	}

	_, err = engine.Exhaustive(cfg, engine.ExhaustiveOptions[timestamp.Timestamp]{
		POR: true, Shrink: true, NewAlg: newMutant,
	})
	var cex *engine.Counterexample
	if !errors.As(err, &cex) {
		t.Fatalf("exploration err = %v, want *Counterexample", err)
	}
	if cex.Steps > 12 {
		t.Errorf("shrunk counterexample has %d steps (%v), want ≤ 12", cex.Steps, cex.Schedule)
	}
	var v mc.Violation[timestamp.Timestamp]
	if !errors.As(cex.Err, &v) {
		t.Errorf("counterexample cause = %v, want a causal violation", cex.Err)
	}
	t.Logf("mutant counterexample (%d steps): %v — %v", cex.Steps, cex.Schedule, cex.Err)

	// The shrunk schedule must replay to the same failure through the
	// public Adversarial workload path.
	replay := engine.Config[timestamp.Timestamp]{
		Alg:      newMutant(),
		World:    engine.Simulated,
		N:        n,
		Workload: engine.Adversarial{Schedule: cex.Schedule, CallsPerProc: 2},
	}
	rep2, err := engine.Run(replay)
	if err != nil {
		t.Fatalf("replaying counterexample: %v", err)
	}
	if err := rep2.Verify(replay.Alg.Compare); err == nil {
		t.Error("counterexample schedule verified clean on replay")
	}
}

// The mutant must also fall to plain seeded fuzzing at larger n.
func TestMutantCaughtByFuzz(t *testing.T) {
	const n = 4
	newMutant := func() engine.Algorithm[timestamp.Timestamp] { return mutant.NewStaleScan(n) }
	cfg := engine.Config[timestamp.Timestamp]{
		Alg:      newMutant(),
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: 2},
		Seed:     3,
	}
	_, err := engine.Fuzz(cfg, engine.FuzzOptions[timestamp.Timestamp]{
		Count: 50, Shrink: true, NewAlg: newMutant,
	})
	var cex *engine.Counterexample
	if !errors.As(err, &cex) {
		t.Fatalf("fuzz err = %v, want *Counterexample", err)
	}
	if cex.Steps > 12 {
		t.Errorf("fuzz counterexample has %d steps after shrinking, want ≤ 12", cex.Steps)
	}
	t.Logf("fuzz counterexample (%d steps): %v", cex.Steps, cex.Schedule)
}

// Exhaustive must reject configurations the scheduler cannot express.
func TestExhaustiveRejectsNonSimulable(t *testing.T) {
	cfg := engine.Config[timestamp.Timestamp]{
		Alg: fas.New(2), World: engine.Simulated, N: 2, Workload: engine.OneShot{},
	}
	if _, err := engine.Exhaustive(cfg, engine.ExhaustiveOptions[timestamp.Timestamp]{}); !errors.Is(err, engine.ErrNeedsAtomic) {
		t.Errorf("err = %v, want ErrNeedsAtomic", err)
	}
}

// Fuzzing a correct algorithm must report the work it did.
func TestFuzzReportsWork(t *testing.T) {
	cfg := engine.Config[timestamp.Timestamp]{
		Alg: collect.New(3), World: engine.Simulated, N: 3,
		Workload: engine.LongLived{CallsPerProc: 2}, Seed: 5,
	}
	rep, err := engine.Fuzz(cfg, engine.FuzzOptions[timestamp.Timestamp]{Count: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedules != 20 || rep.Steps == 0 || rep.World != engine.Simulated {
		t.Errorf("unexpected fuzz report: %+v", rep)
	}
}
