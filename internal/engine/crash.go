package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"tsspace/internal/hbcheck"
	"tsspace/internal/mc"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// Crash-recovery fault injection: the crash workload of the simulated
// world. A run is built over 2n scheduler processes — n primaries plus n
// lazy recovery incarnations, one per paper process. A crash-schedule
// entry (see sched.CrashDrop / sched.CrashApply) halts a primary at its
// gate, its pending write either applied (the torn write that landed) or
// dropped, and releases the recovery incarnation of the same paper pid:
// the crashed pid re-leased into the system, resuming the interrupted call
// with the same (pid, seq) identity against whatever the registers hold.
//
// Verification is the conformance machinery plus two crash-specific
// pieces: a causal barrier per crash (the recovery's operations cannot be
// reordered before the predecessor's last executed operation — a real
// causal edge no register conflict expresses) and the plain interval-order
// check over the recorder, which also constrains operation-free retries
// that the causal checker exempts.

// crashRun is one crash-capable simulated execution and its bookkeeping.
type crashRun[T any] struct {
	cfg      Config[T]
	wl       Workload
	sys      *sched.System
	rec      *hbcheck.Recorder[T]
	spans    *callSpans
	progress []atomic.Int32 // completed calls per paper pid
	barriers []mc.Barrier
	entries  []int // executed crash-schedule entries
}

// newCrashRun builds the 2n-incarnation system. Scheduler pids 0..n-1 are
// the primaries; scheduler pid n+p is the parked recovery incarnation of
// paper process p, released if and when p crashes. Recorder events and
// call spans are keyed by scheduler pid so the causal analysis lines up
// with the trace; the algorithm itself always sees the paper pid.
func newCrashRun[T any](cfg Config[T]) *crashRun[T] {
	wl := cfg.Workload
	if wl == nil {
		wl = OneShot{}
	}
	n := cfg.N
	m := cfg.Alg.Registers()
	versions := register.NewVersions(m)
	table := cfg.Alg.WriterTable()
	r := &crashRun[T]{
		cfg:      cfg,
		wl:       wl,
		rec:      &hbcheck.Recorder[T]{},
		spans:    newCallSpans(),
		progress: make([]atomic.Int32, n),
	}
	r.sys = sched.NewLazy(2*n, m, n, func(spid int, mem register.Mem) (any, error) {
		paper := spid % n
		counter := &opCounter{}
		mem = register.Wrap(mem,
			register.Versioned(versions),
			counted(counter),
			register.DisciplineFor(table, paper),
		)
		calls := wl.Calls(paper, n)
		out := make([]T, 0, calls)
		// A recovery incarnation resumes where its predecessor crashed:
		// completed calls stay completed, the interrupted call is retried
		// with its original seq. The progress slot is written by the
		// predecessor's goroutine and read after Release, which happens
		// after Crash observed the predecessor unwind — channel-ordered.
		for k := int(r.progress[paper].Load()); k < calls; k++ {
			first := counter.ops
			sm, stamp := register.StampFirstOp(mem, r.rec.Begin)
			ts, err := cfg.Alg.GetTS(sm, paper, k)
			if err != nil {
				return out, fmt.Errorf("p%d getTS#%d: %w", paper, k, err)
			}
			r.rec.End(spid, k, stamp.Stamp(), ts)
			last := counter.ops - 1
			if last < first {
				first, last = -1, -1 // operation-free call
			}
			r.spans.set(spid, k, first, last)
			r.progress[paper].Store(int32(k + 1))
			if cfg.OnCall != nil {
				cfg.OnCall(paper, k, ts)
			}
			out = append(out, ts)
		}
		return out, nil
	})
	return r
}

// lastOpIndex returns the global trace index of pid's last executed
// operation, or -1 if it executed none.
func lastOpIndex(trace []sched.Op, pid int) int {
	for i := len(trace) - 1; i >= 0; i-- {
		if trace[i].Pid == pid {
			return i
		}
	}
	return -1
}

// apply executes one crash-schedule entry leniently: entries naming
// parked, terminated, out-of-range or already-crashed processes are
// skipped (ddmin deletes entries freely; whatever remains must still
// replay). Executed entries accumulate in r.entries.
func (r *crashRun[T]) apply(entry int) error {
	pid, applyWrite, isCrash := sched.DecodeCrash(entry)
	if isCrash {
		if pid < 0 || pid >= r.cfg.N || r.sys.Crashed(pid) {
			return nil
		}
		if _, alive, err := r.sys.Pending(pid); err != nil {
			return err
		} else if !alive {
			return nil
		}
		if _, _, err := r.sys.Crash(pid, applyWrite); err != nil {
			return err
		}
		recovery := r.cfg.N + pid
		barrier := mc.Barrier{Before: lastOpIndex(r.sys.Trace(), pid), After: recovery}
		if err := r.sys.Release(recovery); err != nil {
			return err
		}
		// Synchronize with the released incarnation: wait until it is
		// poised at its first operation or has terminated. This pins the
		// recovery's bookkeeping (notably an operation-free retry's
		// recorder event) to this point of the execution, keeping crash
		// replays deterministic.
		if _, _, err := r.sys.Pending(recovery); err != nil {
			return err
		}
		r.barriers = append(r.barriers, barrier)
		r.entries = append(r.entries, entry)
		return nil
	}
	if pid >= r.sys.N() {
		return nil
	}
	if _, alive, err := r.sys.Pending(pid); err != nil {
		return err
	} else if !alive {
		return nil
	}
	if _, err := r.sys.Step(pid); err != nil {
		return err
	}
	r.entries = append(r.entries, pid)
	return nil
}

// drain runs every live process to completion round-robin, recording the
// steps taken as entries.
func (r *crashRun[T]) drain() error {
	for {
		progressed := false
		for spid := 0; spid < r.sys.N(); spid++ {
			if _, alive, err := r.sys.Pending(spid); err != nil {
				return err
			} else if !alive {
				continue
			}
			if _, err := r.sys.Step(spid); err != nil {
				return err
			}
			r.entries = append(r.entries, spid)
			progressed = true
		}
		if !progressed {
			return nil
		}
	}
}

// check verifies the execution: process errors (ErrCrashed is the point,
// not a failure), the interval-order property on the visited interleaving,
// and the causal check over the whole equivalence class with the crash
// barriers. When the execution is complete it additionally asserts no pid
// lease was lost: every crashed process's recovery finished the paper
// process's full call budget.
func (r *crashRun[T]) check(complete bool) error {
	for spid := 0; spid < r.sys.N(); spid++ {
		if err := r.sys.Err(spid); err != nil && !errors.Is(err, sched.ErrCrashed) {
			return err
		}
	}
	if complete {
		for pid := 0; pid < r.cfg.N; pid++ {
			if !r.sys.Crashed(pid) {
				continue
			}
			want := r.wl.Calls(pid, r.cfg.N)
			if got := int(r.progress[pid].Load()); got != want {
				return fmt.Errorf("engine: lost lease: crashed p%d completed %d/%d calls after recovery", pid, got, want)
			}
		}
	}
	if err := hbcheck.CheckRecorder(r.rec, r.cfg.Alg.Compare); err != nil {
		return err
	}
	return mc.CausalCheckBarriers(r.sys.N(), r.sys.Trace(), callsFromEvents(r.rec.Events(), r.spans), r.cfg.Alg.Compare, r.barriers)
}

// replayCrashEntries replays a candidate crash schedule leniently on a
// fresh run (no drain: a prefix is a legal execution) and returns the
// executed entries, the trace, and the check outcome.
func replayCrashEntries[T any](mk func() Config[T], entries []int) ([]int, []sched.Op, error) {
	r := newCrashRun(mk())
	defer r.sys.Close()
	for _, e := range entries {
		if err := r.apply(e); err != nil {
			return nil, nil, err
		}
	}
	return r.entries, r.sys.Trace(), r.check(false)
}

// isCrashViolation matches the two property-violation shapes a crash run
// can produce (causal or interval-order), as opposed to harness errors.
func isCrashViolation[T any](err error) bool {
	var cv mc.Violation[T]
	var hv hbcheck.Violation[T]
	return errors.As(err, &cv) || errors.As(err, &hv)
}

// crashCounterexample shrinks (via the generic ddmin over the encoded
// entries) and reports a failing crash schedule. Unlike the crash-free
// path it does not serialize a witness reordering: the barrier edges are
// not expressible as a schedule permutation, and the shrunk schedule
// already replays the violation verbatim.
func crashCounterexample[T any](alg string, mk func() Config[T], entries []int, shrink bool) error {
	if shrink {
		entries = mc.Shrink(entries, func(cand []int) bool {
			_, _, err := replayCrashEntries(mk, cand)
			return err != nil && isCrashViolation[T](err)
		})
	}
	full, trace, err := replayCrashEntries(mk, entries)
	if err == nil {
		return fmt.Errorf("engine: %s: failing crash schedule %v no longer fails on replay", alg, entries)
	}
	return &Counterexample{Alg: alg, Schedule: full, Steps: len(full), Trace: trace, Err: err}
}

// CrashSweepOptions configures CrashSweep.
type CrashSweepOptions[T any] struct {
	// Shrink minimizes any failing crash schedule before reporting it.
	Shrink bool
	// NewAlg constructs a fresh algorithm per execution; see
	// ExhaustiveOptions.NewAlg.
	NewAlg func() Algorithm[T]
}

// CrashSweep systematically injects one crash into the configuration's
// workload: for every victim process, every crash point along the
// victim's operation sequence, and both torn-write outcomes (applied and
// dropped), it runs victim-prefix → crash → recovery + survivors to
// completion and verifies the execution. It returns the number of
// executions checked; a violation comes back as a shrunk *Counterexample
// whose Schedule is a replayable crash schedule.
func CrashSweep[T any](cfg Config[T], opt CrashSweepOptions[T]) (int, error) {
	if _, _, err := cfg.prepare(); err != nil {
		return 0, err
	}
	if !Simulable(cfg.Alg) {
		return 0, fmt.Errorf("%w: %s cannot run under the deterministic scheduler", ErrNeedsAtomic, cfg.Alg.Name())
	}
	mk := func() Config[T] {
		c := cfg
		if opt.NewAlg != nil {
			c.Alg = opt.NewAlg()
		}
		return c
	}
	runs := 0
	for victim := 0; victim < cfg.N; victim++ {
		probe := newCrashRun(mk())
		soloOps, err := probe.sys.Solo(victim)
		probe.sys.Close()
		if err != nil {
			return runs, err
		}
		for j := 0; j < soloOps; j++ {
			for _, applyWrite := range []bool{false, true} {
				crash := sched.CrashDrop(victim)
				if applyWrite {
					crash = sched.CrashApply(victim)
				}
				r := newCrashRun(mk())
				err := func() error {
					for s := 0; s < j; s++ {
						if err := r.apply(victim); err != nil {
							return err
						}
					}
					if err := r.apply(crash); err != nil {
						return err
					}
					if err := r.drain(); err != nil {
						return err
					}
					return r.check(true)
				}()
				r.sys.Close()
				runs++
				if err != nil {
					if isCrashViolation[T](err) {
						return runs, crashCounterexample(cfg.Alg.Name(), mk, r.entries, opt.Shrink)
					}
					return runs, err
				}
			}
		}
	}
	return runs, nil
}

// CrashFuzzOptions configures CrashFuzz.
type CrashFuzzOptions[T any] struct {
	// Count is the number of random executions; values < 1 mean 1.
	Count int
	// Crashes caps the crashes injected per execution; values < 1 mean 1.
	Crashes int
	// Shrink minimizes any failing crash schedule before reporting it.
	Shrink bool
	// NewAlg constructs a fresh algorithm per execution.
	NewAlg func() Algorithm[T]
}

// CrashFuzz stress-tests the configuration on Count random maximal
// executions with randomly placed crashes (seeded from cfg.Seed): at
// random points a random live primary is crashed, applying or dropping
// its pending write by coin flip, and its recovery incarnation joins the
// interleaving. Violations come back as shrunk *Counterexamples with
// replayable crash schedules.
func CrashFuzz[T any](cfg Config[T], opt CrashFuzzOptions[T]) (FuzzReport, error) {
	rep := FuzzReport{World: Simulated}
	if _, _, err := cfg.prepare(); err != nil {
		return rep, err
	}
	if !Simulable(cfg.Alg) {
		return rep, fmt.Errorf("%w: %s cannot run under the deterministic scheduler", ErrNeedsAtomic, cfg.Alg.Name())
	}
	count := opt.Count
	if count < 1 {
		count = 1
	}
	crashes := opt.Crashes
	if crashes < 1 {
		crashes = 1
	}
	mk := func() Config[T] {
		c := cfg
		if opt.NewAlg != nil {
			c.Alg = opt.NewAlg()
		}
		return c
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < count; i++ {
		r := newCrashRun(mk())
		err := r.randomMaximal(rng, crashes)
		if err == nil {
			err = r.check(true)
		}
		rep.Steps += r.sys.Steps()
		entries := r.entries
		r.sys.Close()
		if err != nil {
			if isCrashViolation[T](err) {
				return rep, crashCounterexample(cfg.Alg.Name(), mk, entries, opt.Shrink)
			}
			return rep, err
		}
		rep.Schedules++
	}
	return rep, nil
}

// randomMaximal drives the crash run to completion with uniformly random
// scheduling, injecting up to `crashes` crashes at random points.
func (r *crashRun[T]) randomMaximal(rng *rand.Rand, crashes int) error {
	n := r.cfg.N
	for {
		var live, prims []int
		for spid := 0; spid < r.sys.N(); spid++ {
			if _, alive, err := r.sys.Pending(spid); err != nil {
				return err
			} else if alive {
				live = append(live, spid)
				if spid < n && !r.sys.Crashed(spid) {
					prims = append(prims, spid)
				}
			}
		}
		if len(live) == 0 {
			return nil
		}
		if crashes > 0 && len(prims) > 0 && rng.Intn(6) == 0 {
			victim := prims[rng.Intn(len(prims))]
			entry := sched.CrashDrop(victim)
			if rng.Intn(2) == 0 {
				entry = sched.CrashApply(victim)
			}
			if err := r.apply(entry); err != nil {
				return err
			}
			crashes--
			continue
		}
		if err := r.apply(live[rng.Intn(len(live))]); err != nil {
			return err
		}
	}
}

// ReplayCrashSchedule replays an explicit crash schedule (the artifact
// format of ParseCrashSchedule, already decoded to entries) leniently on
// the configuration and returns the executed report together with the
// property-check outcome — the tstrace entry point for crash witnesses.
// The report's Trace spans 2·cfg.N scheduler pids: pid n+p is the
// recovery incarnation of paper process p.
func ReplayCrashSchedule[T any](cfg Config[T], entries []int) (*Report[T], error) {
	if _, _, err := cfg.prepare(); err != nil {
		return nil, err
	}
	if !Simulable(cfg.Alg) {
		return nil, fmt.Errorf("%w: %s cannot run under the deterministic scheduler", ErrNeedsAtomic, cfg.Alg.Name())
	}
	r := newCrashRun(cfg)
	defer r.sys.Close()
	for _, e := range entries {
		if err := r.apply(e); err != nil {
			return nil, err
		}
	}
	rep := cfg.report(r.wl, 0)
	rep.World = Simulated
	rep.Workload = fmt.Sprintf("crash-replay/%d-entries", len(r.entries))
	rep.Events = r.rec.Events()
	rep.Steps = r.sys.Steps()
	rep.Trace = r.sys.Trace()
	return rep, r.check(false)
}
