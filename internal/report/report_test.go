package report

import (
	"strings"
	"testing"

	"tsspace/internal/mc"
)

func TestBudgetsValues(t *testing.T) {
	rows := Budgets([]int{64, 1024})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.N != 64 || r.LBLongLived != 10 || r.Collect != 64 || r.Dense != 63 ||
		r.Simple != 32 || r.Sqrt != 16 || r.LBOneShot != 3 {
		t.Errorf("n=64 row = %+v", r)
	}
	for _, r := range rows {
		if err := r.Check(); err != nil {
			t.Error(err)
		}
	}
}

func TestBudgetRowCheckCatchesInversion(t *testing.T) {
	bad := BudgetRow{N: 10, LBLongLived: 5, Dense: 4, Collect: 10, LBOneShot: 1, Sqrt: 7}
	if err := bad.Check(); err == nil {
		t.Error("lower bound above upper bound must be rejected")
	}
	bad2 := BudgetRow{N: 10, LBLongLived: 1, Dense: 9, Collect: 10, LBOneShot: 9, Sqrt: 7}
	if err := bad2.Check(); err == nil {
		t.Error("one-shot inversion must be rejected")
	}
}

func TestMeasuredSmall(t *testing.T) {
	rows, err := Measured([]int{16, 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := r.Check(); err != nil {
			t.Error(err)
		}
		if r.SqrtAdv < 0 || r.SqrtMin < 0 {
			t.Errorf("n=%d: adversarial columns skipped below cap", r.N)
		}
		// The minimizing schedule uses no more registers than sequential.
		if r.SqrtMin > r.SqrtSeq {
			t.Errorf("n=%d: min schedule %d > sequential %d", r.N, r.SqrtMin, r.SqrtSeq)
		}
	}
}

func TestMeasuredSkipsAdversarialAboveCap(t *testing.T) {
	rows, err := Measured([]int{32}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SqrtAdv != -1 || rows[0].SqrtMin != -1 {
		t.Errorf("adversarial columns should be skipped: %+v", rows[0])
	}
}

func TestFormatting(t *testing.T) {
	rows := Budgets([]int{64})
	out := FormatBudgets(rows)
	if !strings.Contains(out, "E8") || !strings.Contains(out, "64") {
		t.Errorf("budget table malformed:\n%s", out)
	}
	mrows := []MeasuredRow{{N: 8, Collect: 8, Dense: 7, Simple: 4, SqrtSeq: 4, SqrtAdv: -1, SqrtMin: -1, SqrtBudget: 6}}
	mout := FormatMeasured(mrows)
	if !strings.Contains(mout, "-") || !strings.Contains(mout, "E3/E4") {
		t.Errorf("measured table malformed:\n%s", mout)
	}
}

func TestMeasuredRowCheckCatchesBadValues(t *testing.T) {
	bad := MeasuredRow{N: 8, Collect: 7, Dense: 7, Simple: 4, SqrtSeq: 4, SqrtBudget: 6}
	if err := bad.Check(); err == nil {
		t.Error("wrong collect count must be rejected")
	}
	bad = MeasuredRow{N: 8, Collect: 8, Dense: 7, Simple: 4, SqrtSeq: 6, SqrtBudget: 6}
	if err := bad.Check(); err == nil {
		t.Error("budget-violating sqrt must be rejected")
	}
}

func TestFormatExploration(t *testing.T) {
	rows := []ExplorationRow{
		{Alg: "dense", N: 3, Calls: 1, Naive: 560,
			Stats: mc.Stats{Visited: 11, Nodes: 88, SleepPruned: 58, States: 88}},
		{Alg: "sqrt", N: 3, Calls: 1, Naive: -1,
			Stats: mc.Stats{Visited: 150, Nodes: 6118, SleepPruned: 5319, States: 6118}},
	}
	if got := rows[0].Reduction(); got <= 0 || got > 0.2 {
		t.Errorf("dense reduction = %v, want within (0, 0.2]", got)
	}
	if rows[1].Reduction() != -1 {
		t.Errorf("skipped baseline must report -1")
	}
	out := FormatExploration(rows)
	for _, want := range []string{"E11", "dense", "3×1", "560", "11", "1.96%", "sqrt", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("exploration table missing %q:\n%s", want, out)
		}
	}
}
