// Package report builds the experiment tables that cmd/tsspace prints and
// EXPERIMENTS.md records: register budgets versus the paper's bounds, and
// measured register usage across implementations and schedules. Keeping the
// table builders here makes the reproduction's outputs unit-testable.
package report

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"tsspace/internal/adversary"
	"tsspace/internal/engine"
	"tsspace/internal/lowerbound"
	"tsspace/internal/mc"
	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all" // the tables roster the full catalog by name
)

// BudgetRow is one line of the E8 budget table.
type BudgetRow struct {
	N           int
	LBLongLived int // ⌊n/6⌋ (Theorem 1.1)
	Collect     int // n
	Dense       int // n−1
	LBOneShot   int // √2n − log n − 2 (Theorem 1.2)
	Simple      int // ⌈n/2⌉ (§5)
	Sqrt        int // ⌈2√n⌉ (Theorem 1.3)
}

// Budgets computes the E8 table for the given process counts.
func Budgets(ns []int) []BudgetRow {
	rows := make([]BudgetRow, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, BudgetRow{
			N:           n,
			LBLongLived: lowerbound.LongLivedLower(n),
			Collect:     timestamp.MustNew("collect", n).Registers(),
			Dense:       timestamp.MustNew("dense", n).Registers(),
			LBOneShot:   lowerbound.OneShotLower(n),
			Simple:      timestamp.MustNew("simple", n).Registers(),
			Sqrt:        timestamp.MustNew("sqrt", n).Registers(),
		})
	}
	return rows
}

// Check validates the row's internal ordering relations: lower bounds below
// their matching upper bounds, and the asymptotic gap for large n.
func (r BudgetRow) Check() error {
	if r.LBLongLived > r.Dense || r.Dense >= r.Collect {
		return fmt.Errorf("report: n=%d: long-lived bounds out of order (%d, %d, %d)", r.N, r.LBLongLived, r.Dense, r.Collect)
	}
	if r.LBOneShot > r.Sqrt {
		return fmt.Errorf("report: n=%d: one-shot lower bound %d above upper bound %d", r.N, r.LBOneShot, r.Sqrt)
	}
	return nil
}

// MeasuredRow is one line of the E3/E4 measured table.
type MeasuredRow struct {
	N          int
	Collect    int // registers written, long-lived 2 calls/proc
	Dense      int
	Simple     int
	SqrtSeq    int // Algorithm 4 under a sequential schedule
	SqrtAdv    int // under the stale-release adversary (-1 if skipped)
	SqrtMin    int // under the space-minimizing double-cross schedule (-1 if skipped)
	SqrtBudget int // ⌈2√n⌉
}

// Measured runs the implementations and measures registers written.
// Adversarial columns are computed only for n ≤ advCap (the deterministic
// scheduler is slow for very large n); skipped cells hold −1.
func Measured(ns []int, advCap int) ([]MeasuredRow, error) {
	rows := make([]MeasuredRow, 0, len(ns))
	for _, n := range ns {
		row := MeasuredRow{N: n, SqrtAdv: -1, SqrtMin: -1, SqrtBudget: timestamp.MustNew("sqrt", n).Registers()}
		for _, name := range []string{"collect", "dense", "simple"} {
			alg := timestamp.MustNew(name, n)
			var wl engine.Workload = engine.OneShot{}
			if !alg.OneShot() {
				wl = engine.LongLived{CallsPerProc: 2}
			}
			rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
				Alg:      alg,
				World:    engine.Atomic,
				N:        n,
				Workload: wl,
			})
			if err != nil {
				return nil, fmt.Errorf("report: %s n=%d: %w", alg.Name(), n, err)
			}
			switch alg.Name() {
			case "collect":
				row.Collect = rep.Space.Written
			case "dense":
				row.Dense = rep.Space.Written
			case "simple":
				row.Simple = rep.Space.Written
			}
		}
		seq, err := adversary.MeasureSequential(n)
		if err != nil {
			return nil, err
		}
		row.SqrtSeq = seq
		if n <= advCap {
			adv, err := adversary.StaleRelease(n)
			if err != nil {
				return nil, err
			}
			row.SqrtAdv = adv.Written
			mins, err := adversary.DoubleCross(n)
			if err != nil {
				return nil, err
			}
			row.SqrtMin = mins.Written
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Check validates the measured row against the paper's bounds.
func (r MeasuredRow) Check() error {
	if r.Collect != r.N {
		return fmt.Errorf("report: n=%d: collect wrote %d registers, want n", r.N, r.Collect)
	}
	if r.Dense != r.N-1 {
		return fmt.Errorf("report: n=%d: dense wrote %d registers, want n−1", r.N, r.Dense)
	}
	if r.Simple != (r.N+1)/2 {
		return fmt.Errorf("report: n=%d: simple wrote %d registers, want ⌈n/2⌉", r.N, r.Simple)
	}
	if r.SqrtSeq >= r.SqrtBudget {
		return fmt.Errorf("report: n=%d: sequential sqrt wrote %d, budget %d", r.N, r.SqrtSeq, r.SqrtBudget)
	}
	if r.SqrtAdv >= 0 && r.SqrtAdv >= r.SqrtBudget {
		return fmt.Errorf("report: n=%d: adversarial sqrt wrote %d, budget %d", r.N, r.SqrtAdv, r.SqrtBudget)
	}
	return nil
}

// FormatBudgets renders the budget table.
func FormatBudgets(rows []BudgetRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "EXPERIMENT E8 — register budgets (allocated) vs paper bounds")
	fmt.Fprintln(w, "n\tLB long-lived\tcollect\tdense\tLB one-shot\tsimple\tsqrt\t")
	fmt.Fprintln(w, "\t⌊n/6⌋\tn\tn−1\t√2n−log n−2\t⌈n/2⌉\t⌈2√n⌉\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.N, r.LBLongLived, r.Collect, r.Dense, r.LBOneShot, r.Simple, r.Sqrt)
	}
	w.Flush()
	return sb.String()
}

// Summary renders a one-line digest of an engine run: the shared footer
// every CLI and example prints after a run.
func Summary(rep *engine.Report[timestamp.Timestamp]) string {
	s := fmt.Sprintf("%s · %s world · %s · n=%d: %d getTS() calls, %d/%d registers written, %d reads / %d writes, %v",
		rep.Alg, rep.World, rep.Workload, rep.N,
		len(rep.Events), rep.Space.Written, rep.Space.Registers,
		rep.Space.Reads, rep.Space.Writes, rep.Elapsed.Round(10*time.Microsecond))
	if rep.World == engine.Simulated {
		s += fmt.Sprintf(" (%d scheduler steps)", rep.Steps)
	}
	return s
}

// ExplorationRow is one line of the model-checking reduction table (E11):
// how many schedules the partial-order-reduced exploration visited for one
// Algorithm × N × Calls cell, against the naive DFS baseline.
type ExplorationRow struct {
	Alg      string
	N, Calls int
	// Naive is the naive DFS visit count, or -1 when the baseline was
	// skipped (it is multinomially larger and not always worth running).
	Naive int
	// Stats is the POR exploration's accounting.
	Stats mc.Stats
}

// Reduction returns POR visits as a fraction of naive visits, or -1 when
// the baseline was skipped.
func (r ExplorationRow) Reduction() float64 {
	if r.Naive <= 0 {
		return -1
	}
	return float64(r.Stats.Visited) / float64(r.Naive)
}

// FormatExploration renders the exploration table; skipped baselines print
// as "-".
func FormatExploration(rows []ExplorationRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "EXPERIMENT E11 — schedules explored: POR (sleep sets + state hashing) vs naive DFS")
	fmt.Fprintln(w, "alg\tn×calls\tnaive\tPOR\treduction\tstates\tsleep-pruned\thash-merged\t")
	for _, r := range rows {
		naive, red := "-", "-"
		if r.Naive >= 0 {
			naive = fmt.Sprint(r.Naive)
			red = fmt.Sprintf("%.2f%%", 100*r.Reduction())
		}
		fmt.Fprintf(w, "%s\t%d×%d\t%s\t%d\t%s\t%d\t%d\t%d\t\n",
			r.Alg, r.N, r.Calls, naive, r.Stats.Visited, red,
			r.Stats.States, r.Stats.SleepPruned, r.Stats.HashPruned)
	}
	w.Flush()
	return sb.String()
}

// FormatMeasured renders the measured table; skipped adversarial cells
// print as "-".
func FormatMeasured(rows []MeasuredRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "EXPERIMENTS E3/E4 — registers written (measured)")
	fmt.Fprintln(w, "n\tcollect\tdense\tsimple\tsqrt seq\tsqrt adv\tsqrt min\tsqrt budget\t")
	cell := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\t%s\t%d\t\n",
			r.N, r.Collect, r.Dense, r.Simple, r.SqrtSeq, cell(r.SqrtAdv), cell(r.SqrtMin), r.SqrtBudget)
	}
	w.Flush()
	return sb.String()
}
