package timestamp_test

import (
	"reflect"
	"testing"

	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all"
)

// The default catalog: every implementation package self-registers from
// init(), so blank-importing all must yield exactly this roster.
func TestRegistryCatalog(t *testing.T) {
	want := []string{"collect", "dense", "fas", "simple", "sqrt"}
	if got := timestamp.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	wantAll := []string{"collect", "collect-crash-memo", "collect-stale-scan", "dense", "dense-two-silent", "fas", "simple", "sqrt", "sqrt-broken-norepair"}
	if got := timestamp.AllNames(); !reflect.DeepEqual(got, wantAll) {
		t.Errorf("AllNames() = %v, want %v", got, wantAll)
	}
	for _, info := range timestamp.All() {
		if info.Mutant {
			t.Errorf("All() includes mutant %q", info.Name)
		}
		if info.Summary == "" {
			t.Errorf("%q registered without a summary", info.Name)
		}
		if info.MinProcs < 1 || info.ExploreCalls < 1 {
			t.Errorf("%q has unnormalized metadata: MinProcs=%d ExploreCalls=%d",
				info.Name, info.MinProcs, info.ExploreCalls)
		}
	}
}

func TestRegistryLookupAndMustNew(t *testing.T) {
	info, ok := timestamp.Lookup("sqrt")
	if !ok {
		t.Fatal("sqrt not registered")
	}
	alg := info.New(16)
	if alg.Name() != "sqrt" || !alg.OneShot() {
		t.Errorf("sqrt constructor built %q (one-shot %v)", alg.Name(), alg.OneShot())
	}
	// Mutants resolve by Lookup so tscheck counterexamples replay by name.
	if mut, ok := timestamp.Lookup("collect-stale-scan"); !ok || !mut.Mutant {
		t.Errorf("collect-stale-scan Lookup = (%+v, %v), want a mutant registration", mut, ok)
	}
	if _, ok := timestamp.Lookup("nope"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}

	if got := timestamp.MustNew("dense", 4).Registers(); got != 3 {
		t.Errorf("MustNew(dense, 4).Registers() = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew of unregistered name did not panic")
		}
	}()
	timestamp.MustNew("nope", 4)
}

// The panic paths reject programmer errors before touching the catalog, so
// exercising them leaves the global registry unpolluted.
func TestRegisterRejectsBadRegistrations(t *testing.T) {
	mustPanic := func(name string, info timestamp.Info) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		timestamp.Register(info)
	}
	valid := func(n int) timestamp.Algorithm { return timestamp.MustNew("collect", n) }
	mustPanic("empty name", timestamp.Info{New: valid})
	mustPanic("nil constructor", timestamp.Info{Name: "broken-registration"})
	mustPanic("duplicate", timestamp.Info{Name: "collect", New: valid})
}
