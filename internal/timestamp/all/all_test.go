package all_test

import (
	"reflect"
	"testing"

	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all"
)

// The expected catalog: every implementation the repository ships, with
// its one-shot and mutant flags. A new implementation package must be
// added both to all.go and here — this test is the inventory check that
// keeps the blank-import list honest.
var expected = []struct {
	name    string
	oneShot bool
	mutant  bool
}{
	{"collect", false, false},
	{"collect-crash-memo", false, true},
	{"collect-stale-scan", false, true},
	{"dense", false, false},
	{"dense-two-silent", false, true},
	{"fas", false, false},
	{"simple", true, false},
	{"sqrt", true, false},
	// The broken-repair mutant is the M-bounded long-lived form (§6
	// header), so it is not one-shot.
	{"sqrt-broken-norepair", false, true},
}

func TestCatalogComplete(t *testing.T) {
	var wantAll, wantCorrect []string
	for _, e := range expected {
		wantAll = append(wantAll, e.name)
		if !e.mutant {
			wantCorrect = append(wantCorrect, e.name)
		}
	}
	if got := timestamp.AllNames(); !reflect.DeepEqual(got, wantAll) {
		t.Errorf("AllNames() = %v, want %v", got, wantAll)
	}
	if got := timestamp.Names(); !reflect.DeepEqual(got, wantCorrect) {
		t.Errorf("Names() = %v, want %v (mutants must be excluded)", got, wantCorrect)
	}
}

func TestCatalogInfoCoherent(t *testing.T) {
	for _, e := range expected {
		t.Run(e.name, func(t *testing.T) {
			info, ok := timestamp.Lookup(e.name)
			if !ok {
				t.Fatalf("%q not registered", e.name)
			}
			if info.Name != e.name {
				t.Errorf("Info.Name = %q, want %q", info.Name, e.name)
			}
			if info.Summary == "" {
				t.Error("Info.Summary is empty")
			}
			if info.Mutant != e.mutant {
				t.Errorf("Info.Mutant = %v, want %v", info.Mutant, e.mutant)
			}
			if info.New == nil {
				t.Fatal("Info.New is nil")
			}
			if info.MinProcs < 1 || info.ExploreCalls < 1 {
				t.Errorf("defaults not normalized: MinProcs=%d ExploreCalls=%d", info.MinProcs, info.ExploreCalls)
			}
			if info.OneShot != e.oneShot {
				t.Errorf("Info.OneShot = %v, want %v", info.OneShot, e.oneShot)
			}

			// The constructor must work at its own declared minimum, and the
			// constructed object's self-description must match the registration.
			alg := info.New(info.MinProcs)
			if alg == nil {
				t.Fatalf("New(%d) returned nil", info.MinProcs)
			}
			if alg.OneShot() != info.OneShot {
				t.Errorf("constructed OneShot() = %v contradicts Info.OneShot = %v", alg.OneShot(), info.OneShot)
			}
			if alg.Registers() < 1 {
				t.Errorf("Registers() = %d, want ≥ 1", alg.Registers())
			}
			// Mutants deliberately reuse their base algorithm's Name() so
			// counterexample traces render identically; correct algorithms
			// must self-identify by their registry key.
			if !e.mutant && alg.Name() != e.name {
				t.Errorf("Name() = %q, want %q", alg.Name(), e.name)
			}
		})
	}
}

func TestCatalogOneShotBudget(t *testing.T) {
	// Every one-shot registration must reject a second call per process —
	// the M-budget contract the SDK and the load driver build on.
	for _, e := range expected {
		if !e.oneShot || e.mutant {
			continue
		}
		t.Run(e.name, func(t *testing.T) {
			alg := timestamp.MustNew(e.name, 4)
			mem := timestamp.NewMem(alg)
			if _, err := alg.GetTS(mem, 0, 0); err != nil {
				t.Fatalf("first getTS: %v", err)
			}
			if _, err := alg.GetTS(mem, 0, 1); err == nil {
				t.Error("second getTS by the same process succeeded on a one-shot object")
			}
		})
	}
}
