// Package all registers every timestamp implementation of the
// reproduction with the registry in tsspace/internal/timestamp, mutants
// included. Blank-import it to get the full catalog:
//
//	import _ "tsspace/internal/timestamp/all"
//
// The public tsspace SDK and every CLI import it; a consumer that wants a
// smaller attack surface can instead blank-import just the implementation
// packages it needs, since each one registers itself from init().
package all

import (
	_ "tsspace/internal/timestamp/collect"
	_ "tsspace/internal/timestamp/dense"
	_ "tsspace/internal/timestamp/fas"
	_ "tsspace/internal/timestamp/mutant"
	_ "tsspace/internal/timestamp/simple"
	_ "tsspace/internal/timestamp/sqrt"
)
