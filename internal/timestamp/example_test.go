package timestamp_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/collect" // self-registers "collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/simple"
)

func ExampleMustNew() {
	// Resolve an implementation through the registry (the collect package
	// registered itself from init()) and draw two timestamps per process,
	// round-robin; sequential calls are happens-before ordered, so the
	// timestamps strictly increase.
	alg := timestamp.MustNew("collect", 3)
	mem := timestamp.NewMem(alg)
	var ts []timestamp.Timestamp
	for seq := 0; seq < 2; seq++ {
		for pid := 0; pid < 3; pid++ {
			t, err := alg.GetTS(mem, pid, seq)
			if err != nil {
				fmt.Println(err)
				return
			}
			ts = append(ts, t)
		}
	}
	if err := timestamp.CheckStrictlyIncreasing(ts, alg.Compare); err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range ts {
		fmt.Print(t, " ")
	}
	fmt.Println()
	// Output: (1, 0) (2, 0) (3, 0) (4, 0) (5, 0) (6, 0)
}

func ExampleAlgorithm_compare() {
	alg := dense.New(3)
	mem := timestamp.NewMem(alg)
	t1, _ := alg.GetTS(mem, 0, 0) // writer
	t2, _ := alg.GetTS(mem, 2, 0) // the silent process: "t1 + ε"
	t3, _ := alg.GetTS(mem, 1, 0) // writer again
	fmt.Println(alg.Compare(t1, t2), alg.Compare(t2, t3), alg.Compare(t3, t1))
	// Output: true true false
}

func ExampleAlgorithm_oneShot() {
	alg := simple.New(6) // ⌈6/2⌉ = 3 two-writer registers
	mem := timestamp.NewMem(alg)
	for pid := 0; pid < 3; pid++ {
		t, _ := alg.GetTS(mem, pid, 0)
		fmt.Println(t)
	}
	// Output:
	// (1, 0)
	// (2, 0)
	// (3, 0)
}

// Property: Less is a strict total order on random timestamps
// (irreflexive, antisymmetric, transitive, total).
func TestQuickLessStrictTotalOrder(t *testing.T) {
	mk := func(a, b int16) timestamp.Timestamp {
		return timestamp.Timestamp{Rnd: int64(a), Turn: int64(b)}
	}
	f := func(a1, a2, b1, b2, c1, c2 int16) bool {
		a, b, c := mk(a1, a2), mk(b1, b2), mk(c1, c2)
		if timestamp.Less(a, a) {
			return false // irreflexive
		}
		if timestamp.Less(a, b) && timestamp.Less(b, a) {
			return false // antisymmetric
		}
		if timestamp.Less(a, b) && timestamp.Less(b, c) && !timestamp.Less(a, c) {
			return false // transitive
		}
		if a != b && !timestamp.Less(a, b) && !timestamp.Less(b, a) {
			return false // total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
