// Package timestamp defines the unbounded timestamp object of the paper
// (§2) and the harness that runs implementations both on real hardware
// atomics and under the deterministic scheduler.
//
// An unbounded timestamp object supports two methods: getTS(), which
// returns a timestamp without input, and compare(t1, t2). The single
// correctness requirement is the happens-before property: if a getTS()
// instance g1 returning t1 completes before another instance g2 returning
// t2 is invoked, then compare(t1, t2) = true and compare(t2, t1) = false.
//
// A timestamp object is one-shot if each process may invoke getTS() at most
// once, and long-lived otherwise. The paper proves a space gap between the
// two: Θ(√n) registers suffice (and are necessary) for one-shot objects,
// while Θ(n) registers are necessary for long-lived ones.
package timestamp

import (
	"errors"
	"fmt"

	"tsspace/internal/register"
)

// Timestamp is an element of the timestamp universe T = ℕ × (ℕ ∪ {0})
// ordered lexicographically, as used by Algorithm 3. Scalar-valued
// algorithms (Algorithms 1–2, the collect baseline) embed their integer
// timestamps as (value, 0).
type Timestamp struct {
	Rnd  int64
	Turn int64
}

// Less is the lexicographic order on timestamps (Algorithm 3):
// (rnd1, turn1) < (rnd2, turn2) iff rnd1 < rnd2, or rnd1 = rnd2 and
// turn1 < turn2.
func Less(a, b Timestamp) bool {
	return a.Rnd < b.Rnd || (a.Rnd == b.Rnd && a.Turn < b.Turn)
}

// String renders a timestamp as "(rnd, turn)".
func (t Timestamp) String() string { return fmt.Sprintf("(%d, %d)", t.Rnd, t.Turn) }

// Errors shared by implementations.
var (
	// ErrOneShot is returned when a process calls getTS() more than once on
	// a one-shot object.
	ErrOneShot = errors.New("timestamp: getTS called more than once by a one-shot process")
	// ErrBudget is returned when an M-bounded object receives more than M
	// getTS() calls in total.
	ErrBudget = errors.New("timestamp: getTS call budget exhausted")
)

// Algorithm is a timestamp implementation. Implementations are pure
// against register.Mem: all shared state lives in the registers, and all
// per-process persistent state is derived from (pid, seq), so the same
// code runs on register.AtomicArray (real concurrency) and under
// internal/sched (deterministic simulation).
type Algorithm interface {
	// Name identifies the implementation in reports.
	Name() string
	// Registers returns the number of registers the implementation needs;
	// the Mem passed to GetTS must have at least this size.
	Registers() int
	// OneShot reports whether each process may call GetTS at most once.
	OneShot() bool
	// GetTS performs one getTS() instance for process pid. seq is the
	// number of previous GetTS calls by this process (0 for the first);
	// callers must maintain it faithfully, as one-shot implementations
	// reject seq > 0 and the dense baseline derives state from it.
	GetTS(mem register.Mem, pid, seq int) (Timestamp, error)
	// Compare implements compare(t1, t2): true iff t1 is ordered before t2.
	Compare(t1, t2 Timestamp) bool
	// WriterTable returns the register write-permission discipline the
	// implementation claims (nil entries or a nil table permit anyone);
	// harnesses enforce it to validate claims such as Algorithm 2's
	// 2-writer registers.
	WriterTable() [][]int
}

// ScalarValued is an optional capability probe, in the style of Simulable:
// an algorithm whose register values are all int64 scalars reports it so
// the SDK can back the object with the boxing-free register.Int64Mem
// arrays (one atomic word per register, allocation-free getTS). Algorithms
// that declare it must take the register.Int64Mem fast path in GetTS when
// the memory offers one.
type ScalarValued interface {
	ScalarValued() bool
}

// NewMem allocates an atomic register array sized for alg.
func NewMem(alg Algorithm) *register.AtomicArray {
	return register.NewAtomicArray(alg.Registers())
}

// CheckStrictlyIncreasing verifies that each adjacent pair of timestamps
// is ordered by compare in the forward direction only — the shape every
// sequential execution must produce, since consecutive sequential calls
// are happens-before ordered.
func CheckStrictlyIncreasing(ts []Timestamp, compare func(a, b Timestamp) bool) error {
	for i := 1; i < len(ts); i++ {
		if !compare(ts[i-1], ts[i]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = false, want true", i, ts[i-1], ts[i])
		}
		if compare(ts[i], ts[i-1]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = true, want false", i, ts[i], ts[i-1])
		}
	}
	return nil
}
