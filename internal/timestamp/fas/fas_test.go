package fas

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/timestamp"
)

func TestSequentialIsCounter(t *testing.T) {
	alg := New(4)
	for k := 1; k <= 10; k++ {
		ts, err := alg.GetTS(nil, k%4, k/4)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Rnd != int64(k) {
			t.Errorf("call %d: ts = %v, want (%d, 0)", k, ts, k)
		}
	}
}

// Concurrent calls receive exactly the set {1..total}: the swap chain is a
// perfect ticket dispenser (stronger than the timestamp spec requires).
func TestConcurrentPerfectTickets(t *testing.T) {
	const procs, per = 8, 200
	alg := New(procs)
	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				ts, err := alg.GetTS(nil, p, k)
				if err != nil {
					t.Error(err)
					return
				}
				got[p] = append(got[p], ts.Rnd)
			}
		}(p)
	}
	wg.Wait()
	var all []int64
	for p := 0; p < procs; p++ {
		// Per-process timestamps must increase (its own calls are ordered).
		for i := 1; i < len(got[p]); i++ {
			if got[p][i-1] >= got[p][i] {
				t.Fatalf("p%d timestamps not increasing: %v then %v", p, got[p][i-1], got[p][i])
			}
		}
		all = append(all, got[p]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i, v := range all {
		if v != int64(i+1) {
			t.Fatalf("ticket %d missing or duplicated: position %d holds %d", i+1, i, v)
		}
	}
}

func TestHappensBeforeConcurrent(t *testing.T) {
	alg := New(6)
	for rep := 0; rep < 10; rep++ {
		report, err := engine.Run(engine.Config[timestamp.Timestamp]{
			Alg:      alg,
			World:    engine.Atomic,
			N:        6,
			Workload: engine.LongLived{CallsPerProc: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := report.Verify(alg.Compare); err != nil {
			t.Fatal(err)
		}
		alg = New(6) // fresh chain per repetition
	}
}

// The headline contrast with Theorem 1.1: space is one object regardless
// of n.
func TestConstantSpace(t *testing.T) {
	for _, n := range []int{2, 64, 4096} {
		if got := New(n).Registers(); got != 1 {
			t.Errorf("n=%d: Registers = %d, want 1", n, got)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func BenchmarkGetTS(b *testing.B) {
	alg := New(64)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := alg.GetTS(nil, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func ExampleAlg_GetTS() {
	alg := New(3)
	for i := 0; i < 3; i++ {
		ts, _ := alg.GetTS(nil, i, 0)
		fmt.Println(ts)
	}
	// Output:
	// (1, 0)
	// (2, 0)
	// (3, 0)
}
