// Package fas implements a long-lived unbounded timestamp object from a
// SINGLE fetch-and-store (swap) object.
//
// getTS() swaps a fresh node into the object; the displaced node is the
// caller's immediate predecessor in the linearization order of swaps, and
// the returned timestamp is predecessor.depth + 1 — a perfect counter.
//
// Why this package exists in a reproduction about registers: §7 of the
// paper notes the one-shot lower bound (Theorem 1.2) extends to historyless
// objects — in the constructed execution, block-writing processes take no
// further steps, so the swap's return value is never used. The long-lived
// historyless question is left open. This construction shows what the swap
// return value buys when it IS used: the long-lived space requirement
// collapses from Ω(n) registers (Theorem 1.1) to one object. The register
// lower bound is precisely charging for information a writer destroys
// without observing.
//
// Progress: the object is non-blocking for the system, but an individual
// getTS() may wait for its immediate predecessor to publish its depth (the
// window between the predecessor's swap and its depth store). Under the
// deterministic scheduler this wait can deadlock a gated process, so fas
// is exercised on real goroutines only.
package fas

import (
	"fmt"
	"runtime"
	"sync/atomic" //tslint:allow registeraccess swap-chain nodes hand off through a raw atomic pointer; fas runs on real goroutines only, outside the deterministic scheduler (see package doc)

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// node is one getTS() installment in the swap chain.
type node struct {
	depth atomic.Int64 // 0 until published by its creator
}

// Alg is the single-swap-object timestamp algorithm.
type Alg struct {
	swap *register.SwapArray
}

var _ timestamp.Algorithm = (*Alg)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:         "fas",
		Summary:      "long-lived counter from a single fetch-and-store object (§7 contrast; atomic world only)",
		New:          func(n int) timestamp.Algorithm { return New(n) },
		ExploreCalls: 2,
	})
}

// New returns a fetch-and-store timestamp object. It is long-lived and
// supports any number of processes; n is accepted for interface symmetry
// but unused.
func New(n int) *Alg {
	if n < 1 {
		panic(fmt.Sprintf("fas: invalid process count %d", n))
	}
	return &Alg{swap: register.NewSwapArray(1)}
}

// Name implements timestamp.Algorithm.
func (a *Alg) Name() string { return "fas" }

// Registers returns 1: the single swap object. (The harness allocates a
// register.Mem of this size, but GetTS uses the internal swap object — the
// register abstraction cannot express fetch-and-store.)
func (a *Alg) Registers() int { return 1 }

// OneShot reports false: the object is long-lived.
func (a *Alg) OneShot() bool { return false }

// Simulable reports false: getTS performs no gated register operations and
// busy-waits on its predecessor's depth store, so the deterministic
// scheduler can neither observe nor fairly schedule it (see the package
// comment). Harnesses — the engine's Exhaustive/Fuzz modes in particular —
// exercise fas on real goroutines instead.
func (a *Alg) Simulable() bool { return false }

// WriterTable returns nil: the object is multi-writer.
func (a *Alg) WriterTable() [][]int { return nil }

// GetTS swaps in a new node and returns its depth: one shared swap per
// call. mem is ignored — swap is strictly stronger than the register
// interface.
func (a *Alg) GetTS(_ register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	n := &node{}
	prev := a.swap.Swap(0, n)
	var d int64 = 1
	if prev != nil {
		p := prev.(*node)
		// Wait for the predecessor to publish its depth. The wait is
		// bounded by the predecessor's single store; see the package
		// comment for the progress discussion.
		for {
			if pd := p.depth.Load(); pd > 0 {
				d = pd + 1
				break
			}
			runtime.Gosched()
		}
	}
	n.depth.Store(d)
	return timestamp.Timestamp{Rnd: d}, nil
}

// Compare orders timestamps by depth.
func (a *Alg) Compare(t1, t2 timestamp.Timestamp) bool {
	return t1.Rnd < t2.Rnd
}
