package timestamp_test

import (
	"errors"
	"fmt"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/simple"
	"tsspace/internal/timestamp/sqrt"
)

// The conformance suite drives every implementation through the engine —
// the replacement path for the deleted runner.go shims.

// seqTS runs n×calls strictly sequential getTS() calls on real memory.
func seqTS(alg timestamp.Algorithm, n, calls int, byProcess bool) ([]timestamp.Timestamp, error) {
	return engine.SequentialTimestamps[timestamp.Timestamp](alg, n, calls, byProcess)
}

// runConcurrent is the maximal-contention real-goroutine run.
func runConcurrent(alg timestamp.Algorithm, n, calls int) (*engine.Report[timestamp.Timestamp], error) {
	return engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
	})
}

// cfgSim is the simulated-world config for exploration and sampling.
func cfgSim(alg timestamp.Algorithm, n, calls int, seed int64) engine.Config[timestamp.Timestamp] {
	return engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
		Seed:     seed,
	}
}

// algsFor returns every implementation configured for n processes, paired
// with its guaranteed space bound (registers written).
type testAlg struct {
	alg        timestamp.Algorithm
	spaceBound int
}

func algsFor(n int) []testAlg {
	out := []testAlg{
		{collect.New(n), n},
		{simple.New(n), (n + 1) / 2},
		{sqrt.New(n), sqrt.RegistersFor(n) - 1}, // sentinel register never written
		// The M-bounded long-lived variant, budgeted for 4 calls per
		// process (the long-lived conformance cases use at most 4).
		{sqrt.NewBounded(4 * n), sqrt.RegistersFor(4*n) - 1},
	}
	if n >= 2 {
		out = append(out, testAlg{dense.New(n), n - 1})
	}
	return out
}

func TestSequentialStrictlyIncreasing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		for _, ta := range algsFor(n) {
			alg := ta.alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				for _, byProcess := range []bool{true, false} {
					calls := 3
					if alg.OneShot() {
						calls = 1
					}
					ts, err := seqTS(alg, n, calls, byProcess)
					if err != nil {
						t.Fatal(err)
					}
					if len(ts) != n*calls {
						t.Fatalf("got %d timestamps, want %d", len(ts), n*calls)
					}
					if err := timestamp.CheckStrictlyIncreasing(ts, alg.Compare); err != nil {
						t.Errorf("byProcess=%v: %v", byProcess, err)
					}
				}
			})
		}
	}
}

func TestConcurrentHappensBefore(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		for _, ta := range algsFor(n) {
			alg := ta.alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				calls := 4
				if alg.OneShot() {
					calls = 1
				}
				for rep := 0; rep < 20; rep++ {
					report, err := runConcurrent(alg, n, calls)
					if err != nil {
						t.Fatal(err)
					}
					if len(report.Events) != n*calls {
						t.Fatalf("events = %d, want %d", len(report.Events), n*calls)
					}
					if err := report.Verify(alg.Compare); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

func TestSpaceBounds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 9, 16, 25, 64, 100} {
		for _, ta := range algsFor(n) {
			alg := ta.alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				calls := 2
				if alg.OneShot() {
					calls = 1
				}
				report, err := runConcurrent(alg, n, calls)
				if err != nil {
					t.Fatal(err)
				}
				if report.Space.Written > ta.spaceBound {
					t.Errorf("%s wrote %d registers, bound %d", alg.Name(), report.Space.Written, ta.spaceBound)
				}
			})
		}
	}
}

// Exhaustive model check: every interleaving of 2 processes × 1 getTS()
// satisfies the happens-before property, for every algorithm. The sqrt
// algorithm's longer programs make full enumeration expensive (the DFS
// replays a fresh execution per prefix), so its exploration is capped; the
// cheap algorithms are verified exhaustively.
func TestExhaustiveTwoProcessesOneShot(t *testing.T) {
	caps := map[string]int{"sqrt": 2000, "sqrt-bounded": 1000}
	for _, ta := range algsFor(4) {
		alg := ta.alg
		t.Run(alg.Name(), func(t *testing.T) {
			visits, err := engine.Explore(cfgSim(alg, 2, 1, 0), caps[alg.Name()], 10_000)
			if err != nil {
				t.Fatal(err)
			}
			if visits < 2 {
				t.Errorf("only %d interleavings explored", visits)
			}
			t.Logf("%s: %d interleavings verified", alg.Name(), visits)
		})
	}
}

// Exhaustive model check with repetition for the long-lived algorithms:
// 2 processes × 2 getTS() each.
func TestExhaustiveTwoProcessesTwoCalls(t *testing.T) {
	for _, alg := range []timestamp.Algorithm{collect.New(2), dense.New(2)} {
		t.Run(alg.Name(), func(t *testing.T) {
			visits, err := engine.Explore(cfgSim(alg, 2, 2, 0), 3000, 100_000)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d interleavings verified", alg.Name(), visits)
		})
	}
}

// Randomized schedules through the deterministic scheduler for mid-size
// systems.
func TestSampledSchedules(t *testing.T) {
	for _, n := range []int{3, 5} {
		for _, ta := range algsFor(n) {
			alg := ta.alg
			t.Run(fmt.Sprintf("%s/n=%d", alg.Name(), n), func(t *testing.T) {
				calls := 2
				if alg.OneShot() {
					calls = 1
				}
				if err := engine.Sample(cfgSim(alg, n, calls, int64(n)*7919), 50); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestOneShotEnforcement(t *testing.T) {
	for _, alg := range []timestamp.Algorithm{simple.New(4), sqrt.New(4)} {
		t.Run(alg.Name(), func(t *testing.T) {
			mem := timestamp.NewMem(alg)
			if _, err := alg.GetTS(mem, 0, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := alg.GetTS(mem, 0, 1); !errors.Is(err, timestamp.ErrOneShot) {
				t.Errorf("second call err = %v, want ErrOneShot", err)
			}
			if _, err := runConcurrent(alg, 2, 2); !errors.Is(err, engine.ErrOneShot) {
				t.Errorf("concurrent calls=2 err = %v, want engine.ErrOneShot", err)
			}
		})
	}
}

func TestPidRangeValidation(t *testing.T) {
	for _, ta := range algsFor(4) {
		alg := ta.alg
		// The sqrt variants accept any pid: getTS-ids p.k only need to be
		// distinct, not drawn from [0, n) (§6.1).
		if alg.Name() == "sqrt" || alg.Name() == "sqrt-bounded" {
			continue
		}
		t.Run(alg.Name(), func(t *testing.T) {
			mem := timestamp.NewMem(alg)
			if _, err := alg.GetTS(mem, -1, 0); err == nil {
				t.Error("negative pid accepted")
			}
			if _, err := alg.GetTS(mem, 99, 0); err == nil {
				t.Error("out-of-range pid accepted")
			}
		})
	}
}

// The headline space-gap shape (E8): the one-shot sqrt algorithm's ⌈2√n⌉
// crosses below simple's ⌈n/2⌉ at n ≈ 16 and below the long-lived lower
// bound's matching upper bounds immediately; asymptotically the gap is
// Θ(√n) vs Θ(n).
func TestSpaceGapShape(t *testing.T) {
	// Small n: simple wins or ties (2√n ≥ n/2 for n ≤ 16).
	for _, n := range []int{4, 9, 16} {
		if sq, si := sqrt.New(n).Registers(), simple.New(n).Registers(); sq < si {
			t.Errorf("n=%d: sqrt(%d) should not yet beat simple(%d)", n, sq, si)
		}
	}
	// n ≥ 20: sqrt strictly dominates everything.
	for n := 20; n <= 1024; n *= 2 {
		sq := sqrt.New(n).Registers()
		si := simple.New(n).Registers()
		co := collect.New(n).Registers()
		de := dense.New(n).Registers()
		if !(sq < si && si <= de && de < co) {
			t.Errorf("n=%d: want sqrt(%d) < simple(%d) <= dense(%d) < collect(%d)", n, sq, si, de, co)
		}
	}
}
