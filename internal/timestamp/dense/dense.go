// Package dense implements a long-lived wait-free unbounded timestamp
// object for n processes from n−1 registers.
//
// The paper notes (§4, citing Ellen, Fatourou and Ruppert) that "if the
// timestamps are not required to come from a nowhere dense set, then n−1
// registers suffice". This package realizes that remark: the timestamp
// universe is ℕ × ℕ ordered lexicographically, which is dense in the
// required sense — between (v, 0) and (v+1, 0) lie infinitely many
// timestamps (v, 1), (v, 2), …
//
// Processes 0..n−2 behave exactly like the collect algorithm on registers
// 0..n−2 and return "integer" timestamps (max+1, 0). The designated process
// n−1 owns no register and never writes: it collects, observes maximum v,
// and returns (v, c) where c ≥ 1 is its invocation count — morally "v plus
// c infinitesimals". Density is what makes a timestamp strictly between all
// previously issued ones (≤ (v,0)) and all future writers' ones (≥ (v+1,0))
// available without announcing anything in shared memory.
//
// Exactly one process may be a non-writer: two silent processes cannot
// order their own calls against each other (their timestamps are built from
// the same collected maximum). TwoSilent exhibits this broken variant; the
// test suite shows hbcheck catches it, matching the paper's claim that n−1
// is where this trick stops.
package dense

import (
	"fmt"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// Alg is the (n−1)-register long-lived dense-universe algorithm.
type Alg struct {
	n int
	// silent is the number of designated non-writing processes. 1 is
	// correct; 2 exists only to demonstrate the impossibility (TwoSilent).
	silent int
}

var _ timestamp.Algorithm = (*Alg)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:         "dense",
		Summary:      "long-lived collect variant on n−1 registers via a dense timestamp universe (Ellen–Fatourou–Ruppert)",
		New:          func(n int) timestamp.Algorithm { return New(n) },
		MinProcs:     2,
		ExploreCalls: 2,
	})
	timestamp.Register(timestamp.Info{
		Name:         "dense-two-silent",
		Summary:      "broken n−2-register dense variant with two silent processes (demonstrates where the trick stops)",
		New:          func(n int) timestamp.Algorithm { return TwoSilent(n) },
		MinProcs:     3,
		ExploreCalls: 2,
		Mutant:       true,
	})
}

// New returns a dense timestamp object for n ≥ 2 processes using n−1
// registers.
func New(n int) *Alg {
	if n < 2 {
		panic(fmt.Sprintf("dense: need n ≥ 2 processes, got %d", n))
	}
	return &Alg{n: n, silent: 1}
}

// TwoSilent returns the deliberately broken n−2-register variant with two
// non-writing processes, used in tests to demonstrate that the dense-
// universe trick does not extend below n−1 registers.
func TwoSilent(n int) *Alg {
	if n < 3 {
		panic(fmt.Sprintf("dense: TwoSilent needs n ≥ 3 processes, got %d", n))
	}
	return &Alg{n: n, silent: 2}
}

// Name implements timestamp.Algorithm.
func (a *Alg) Name() string {
	if a.silent == 2 {
		return "dense-broken-2silent"
	}
	return "dense"
}

// Registers returns n−1 (n−2 for the broken variant): one per writer.
func (a *Alg) Registers() int { return a.n - a.silent }

// OneShot reports false: the object is long-lived.
func (a *Alg) OneShot() bool { return false }

// WriterTable declares the single-writer discipline on the writer
// registers.
func (a *Alg) WriterTable() [][]int { return register.SWMRTable(a.n - a.silent) }

// GetTS returns (max+1, 0) for writers after publishing max+1, and
// (max, seq+1) for the silent process(es), which never write.
func (a *Alg) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if pid < 0 || pid >= a.n {
		return timestamp.Timestamp{}, fmt.Errorf("dense: pid %d out of range [0,%d)", pid, a.n)
	}
	m := a.n - a.silent
	var max int64
	if im, ok := mem.(register.Int64Mem); ok {
		// Scalar fast path: same algorithm, no boxing and no cell allocation.
		for i := 0; i < m; i++ {
			if x, ok := im.ReadInt64(i); ok && x > max {
				max = x
			}
		}
		if pid >= m {
			return timestamp.Timestamp{Rnd: max, Turn: int64(seq) + 1}, nil
		}
		ts := max + 1
		im.WriteInt64(pid, ts)
		return timestamp.Timestamp{Rnd: ts}, nil
	}
	for i := 0; i < m; i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	if pid >= m {
		// Silent process: return max "plus seq+1 infinitesimals". Its calls
		// are self-ordered by the local invocation count, ordered after all
		// writers it observed (their timestamps are ≤ (max, 0)), and before
		// any later writer (which observes ≥ max and returns ≥ (max+1, 0)).
		return timestamp.Timestamp{Rnd: max, Turn: int64(seq) + 1}, nil
	}
	ts := max + 1
	mem.Write(pid, ts)
	return timestamp.Timestamp{Rnd: ts}, nil
}

// Compare is the lexicographic order on ℕ × ℕ.
func (a *Alg) Compare(t1, t2 timestamp.Timestamp) bool {
	return timestamp.Less(t1, t2)
}

// ScalarValued reports that every register value is an int64, so the
// object can be backed by the boxing-free scalar arrays.
func (a *Alg) ScalarValued() bool { return true }
