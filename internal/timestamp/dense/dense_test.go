package dense

import (
	"errors"
	"fmt"
	"testing"

	"tsspace/internal/hbcheck"
	"tsspace/internal/timestamp"
)

func TestUsesNMinusOneRegisters(t *testing.T) {
	for _, n := range []int{2, 3, 10, 101} {
		if got := New(n).Registers(); got != n-1 {
			t.Errorf("n=%d: Registers = %d, want %d", n, got, n-1)
		}
	}
}

func TestSilentProcessOrdersAgainstWriters(t *testing.T) {
	const n = 4
	alg := New(n)
	mem := timestamp.NewMem(alg)
	silent := n - 1

	// writer w1 → silent s1 → writer w2 → silent s2: all must be strictly
	// increasing under compare.
	w1, err := alg.GetTS(mem, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := alg.GetTS(mem, silent, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := alg.GetTS(mem, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := alg.GetTS(mem, silent, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := []timestamp.Timestamp{w1, s1, w2, s2}
	if err := timestamp.CheckStrictlyIncreasing(seq, alg.Compare); err != nil {
		t.Fatal(err)
	}
	// The silent timestamps carry the ε component.
	if s1.Turn == 0 || s2.Turn == 0 {
		t.Errorf("silent timestamps missing ε: %v %v", s1, s2)
	}
	// Writers' timestamps are integers.
	if w1.Turn != 0 || w2.Turn != 0 {
		t.Errorf("writer timestamps carry ε: %v %v", w1, w2)
	}
}

func TestSilentOnlyExecution(t *testing.T) {
	// The silent process alone: timestamps (0,1), (0,2), … strictly
	// increasing without a single register write.
	const n = 3
	alg := New(n)
	mem := timestamp.NewMem(alg)
	var prev timestamp.Timestamp
	for seq := 0; seq < 5; seq++ {
		ts, err := alg.GetTS(mem, n-1, seq)
		if err != nil {
			t.Fatal(err)
		}
		if seq > 0 && !alg.Compare(prev, ts) {
			t.Errorf("seq %d: %v not after %v", seq, ts, prev)
		}
		prev = ts
	}
	for i := 0; i < mem.Size(); i++ {
		if mem.Read(i) != nil {
			t.Errorf("silent process wrote register %d", i)
		}
	}
}

// The broken two-silent variant must violate the happens-before property:
// two silent processes calling sequentially return equal timestamps. This
// demonstrates (a) why one non-writer is the limit of the dense-universe
// trick, i.e. why n−1 registers is tight for this construction, and (b)
// that hbcheck actually catches specification violations (failure
// injection for the checker).
func TestTwoSilentViolatesSpec(t *testing.T) {
	const n = 4
	alg := TwoSilent(n)
	mem := timestamp.NewMem(alg)
	var rec hbcheck.Recorder[timestamp.Timestamp]

	issue := func(pid, seq int) {
		t.Helper()
		start := rec.Begin()
		ts, err := alg.GetTS(mem, pid, seq)
		if err != nil {
			t.Fatal(err)
		}
		rec.End(pid, seq, start, ts)
	}
	// Silent process A then silent process B, strictly sequential: both
	// compute (0, 1).
	issue(n-1, 0)
	issue(n-2, 0)

	err := hbcheck.CheckRecorder(&rec, alg.Compare)
	if err == nil {
		t.Fatal("two-silent variant produced a consistent history; expected a violation")
	}
	var v hbcheck.Violation[timestamp.Timestamp]
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	t.Logf("detected as expected: %v", v)
}

func TestWriterTableSize(t *testing.T) {
	if got := len(New(5).WriterTable()); got != 4 {
		t.Errorf("writer table size %d, want 4", got)
	}
}

func TestPidValidation(t *testing.T) {
	alg := New(3)
	mem := timestamp.NewMem(alg)
	if _, err := alg.GetTS(mem, 3, 0); err == nil {
		t.Error("pid out of range accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(1) },
		func() { TwoSilent(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNames(t *testing.T) {
	if New(2).Name() != "dense" || TwoSilent(3).Name() != "dense-broken-2silent" {
		t.Error("unexpected names")
	}
}

func BenchmarkGetTS(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := New(n)
			mem := timestamp.NewMem(alg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.GetTS(mem, i%n, i/n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
