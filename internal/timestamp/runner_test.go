package timestamp

import (
	"errors"
	"testing"

	"tsspace/internal/register"
)

// fake is a minimal valid algorithm used to test the harness itself: a
// collect over n single-writer registers (a one-register collect is NOT a
// correct timestamp object — stale writers downgrade the counter and the
// checker catches it; see TestSampleRejectsOneRegisterCollect).
type fake struct {
	n       int // registers/processes; 0 means 1
	oneShot bool
	table   [][]int
}

func (f *fake) Name() string { return "fake" }
func (f *fake) Registers() int {
	if f.n == 0 {
		return 1
	}
	return f.n
}
func (f *fake) OneShot() bool        { return f.oneShot }
func (f *fake) WriterTable() [][]int { return f.table }
func (f *fake) Compare(a, b Timestamp) bool {
	return Less(a, b)
}

func (f *fake) GetTS(mem register.Mem, pid, seq int) (Timestamp, error) {
	if f.oneShot && seq > 0 {
		return Timestamp{}, ErrOneShot
	}
	var max int64
	for i := 0; i < f.Registers(); i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	ts := max + 1
	mem.Write(pid%f.Registers(), ts)
	return Timestamp{Rnd: ts}, nil
}

func TestLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want bool
	}{
		{Timestamp{1, 5}, Timestamp{2, 0}, true},
		{Timestamp{2, 0}, Timestamp{1, 5}, false},
		{Timestamp{2, 1}, Timestamp{2, 2}, true},
		{Timestamp{2, 2}, Timestamp{2, 2}, false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v", c.a, c.b, got)
		}
	}
	if (Timestamp{3, 4}).String() != "(3, 4)" {
		t.Errorf("String = %q", Timestamp{3, 4}.String())
	}
}

func TestSequentialTimestampsBothOrders(t *testing.T) {
	for _, byProcess := range []bool{true, false} {
		ts, err := SequentialTimestamps(&fake{n: 3}, 3, 2, byProcess)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 6 {
			t.Fatalf("len = %d", len(ts))
		}
		if err := CheckStrictlyIncreasing(ts, Less); err != nil {
			t.Errorf("byProcess=%v: %v", byProcess, err)
		}
	}
}

func TestCheckStrictlyIncreasingErrors(t *testing.T) {
	ts := []Timestamp{{Rnd: 1}, {Rnd: 1}}
	if err := CheckStrictlyIncreasing(ts, Less); err == nil {
		t.Error("equal adjacent timestamps must fail")
	}
	down := []Timestamp{{Rnd: 2}, {Rnd: 1}}
	if err := CheckStrictlyIncreasing(down, Less); err == nil {
		t.Error("decreasing timestamps must fail")
	}
	if err := CheckStrictlyIncreasing(nil, Less); err != nil {
		t.Error("empty sequence must pass")
	}
}

func TestCheckSpaceBound(t *testing.T) {
	rep := &RunReport{Alg: "fake", Space: register.SpaceReport{Written: 3}}
	if err := CheckSpaceBound(rep, 3); err != nil {
		t.Errorf("bound met but rejected: %v", err)
	}
	err := CheckSpaceBound(rep, 2)
	if !errors.Is(err, ErrSpaceExceeded) {
		t.Errorf("err = %v, want ErrSpaceExceeded", err)
	}
}

// calls < 1 is the degenerate no-op it always was: an empty report, no
// getTS executed (the engine's workloads would clamp it to 1).
func TestRunConcurrentZeroCalls(t *testing.T) {
	rep, err := RunConcurrent(&fake{n: 3}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 || rep.Calls != 0 || rep.Space.Writes != 0 {
		t.Errorf("calls=0 ran work: %d events, Calls=%d, %d writes", len(rep.Events), rep.Calls, rep.Space.Writes)
	}
	if rep.Space.Registers != 3 {
		t.Errorf("Space.Registers = %d, want 3", rep.Space.Registers)
	}
	ts, err := SequentialTimestamps(&fake{n: 3}, 3, 0, true)
	if err != nil || len(ts) != 0 {
		t.Errorf("SequentialTimestamps(calls=0) = (%v, %v), want empty", ts, err)
	}
}

func TestRunConcurrentRejectsOneShotRepeat(t *testing.T) {
	if _, err := RunConcurrent(&fake{oneShot: true}, 2, 3); !errors.Is(err, ErrOneShot) {
		t.Errorf("err = %v, want ErrOneShot", err)
	}
}

func TestRunConcurrentPropagatesAlgError(t *testing.T) {
	// One-shot algorithm driven with calls=1 but a pid issuing seq>0 can't
	// happen through the runner; instead use a failing algorithm.
	_, err := RunConcurrent(&failing{}, 2, 1)
	if err == nil || !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want errBoom", err)
	}
}

var errBoom = errors.New("boom")

type failing struct{ fake }

func (f *failing) GetTS(register.Mem, int, int) (Timestamp, error) {
	return Timestamp{}, errBoom
}

func TestRunReportVerifyCatchesBadCompare(t *testing.T) {
	rep, err := RunConcurrent(&fake{n: 4}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(&fake{}); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
	// An algorithm whose compare is constant-false must fail verification
	// (the fake's history has hb pairs).
	bad := &constFalse{}
	if err := hbCheckWith(rep, bad); err == nil {
		t.Error("constant-false compare must fail verification")
	}
}

type constFalse struct{ fake }

func (c *constFalse) Compare(a, b Timestamp) bool { return false }

func hbCheckWith(rep *RunReport, alg Algorithm) error { return rep.Verify(alg) }

func TestMemForAppliesQuorum(t *testing.T) {
	alg := &fake{table: [][]int{{0}}} // register 0 writable only by pid 0
	meter := register.NewMeter(NewMem(alg))

	// pid 0 may write.
	if _, err := alg.GetTS(memFor(alg, meter, 0), 0, 0); err != nil {
		t.Fatal(err)
	}
	// pid 1 must panic through the quorum.
	defer func() {
		if recover() == nil {
			t.Error("quorum violation not enforced")
		}
	}()
	_, _ = alg.GetTS(memFor(alg, meter, 1), 1, 0)
}

func TestExploreCountsAndVerifies(t *testing.T) {
	visits, err := Explore(&fake{n: 2}, 2, 1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Two procs × (2 reads + 1 write): C(6,3) = 20 interleavings.
	if visits != 20 {
		t.Errorf("visits = %d, want 20", visits)
	}
}

func TestSampleRuns(t *testing.T) {
	if err := Sample(&fake{n: 3}, 3, 2, 25, 5); err != nil {
		t.Fatal(err)
	}
}

// A one-register collect is broken: a stale writer can downgrade the
// counter so a later call re-issues an already-completed timestamp. The
// sampled-schedule harness must find and reject it.
func TestSampleRejectsOneRegisterCollect(t *testing.T) {
	err := Sample(&fake{n: 1}, 3, 2, 50, 5)
	if err == nil {
		t.Error("one-register collect must violate the spec under sampled schedules")
	}
}

// A constant-timestamp algorithm is rejected already by sequential
// interleavings.
func TestExploreRejectsConstantTimestamp(t *testing.T) {
	_, err := Explore(&constant{}, 2, 1, 0, 1000)
	if err == nil {
		t.Error("constant-timestamp algorithm must violate the spec in sequential interleavings")
	}
}

type constant struct{ fake }

func (c *constant) GetTS(mem register.Mem, pid, seq int) (Timestamp, error) {
	mem.Read(0)
	mem.Write(0, int64(1))
	return Timestamp{Rnd: 1}, nil
}
