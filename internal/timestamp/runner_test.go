package timestamp

import (
	"errors"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/register"
)

// This file kept its name when the legacy runner.go compat shims were
// deleted: it covers the same harness behaviors — concurrent runs,
// sequential baselines, exploration, sampling, discipline enforcement —
// against their replacement path, internal/engine, using a minimal fake
// algorithm so the harness itself (not an implementation) is under test.

// fake is a minimal valid algorithm: a collect over n single-writer
// registers (a one-register collect is NOT a correct timestamp object —
// stale writers downgrade the counter and the checker catches it; see
// TestSampleRejectsOneRegisterCollect).
type fake struct {
	n       int // registers/processes; 0 means 1
	oneShot bool
	table   [][]int
}

func (f *fake) Name() string { return "fake" }
func (f *fake) Registers() int {
	if f.n == 0 {
		return 1
	}
	return f.n
}
func (f *fake) OneShot() bool        { return f.oneShot }
func (f *fake) WriterTable() [][]int { return f.table }
func (f *fake) Compare(a, b Timestamp) bool {
	return Less(a, b)
}

func (f *fake) GetTS(mem register.Mem, pid, seq int) (Timestamp, error) {
	if f.oneShot && seq > 0 {
		return Timestamp{}, ErrOneShot
	}
	var max int64
	for i := 0; i < f.Registers(); i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	ts := max + 1
	mem.Write(pid%f.Registers(), ts)
	return Timestamp{Rnd: ts}, nil
}

// run is one atomic-world engine run of the fake.
func run(alg Algorithm, n, calls int) (*engine.Report[Timestamp], error) {
	return engine.Run(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
	})
}

func simCfg(alg Algorithm, n, calls int, seed int64) engine.Config[Timestamp] {
	return engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
		Seed:     seed,
	}
}

func TestLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want bool
	}{
		{Timestamp{1, 5}, Timestamp{2, 0}, true},
		{Timestamp{2, 0}, Timestamp{1, 5}, false},
		{Timestamp{2, 1}, Timestamp{2, 2}, true},
		{Timestamp{2, 2}, Timestamp{2, 2}, false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v", c.a, c.b, got)
		}
	}
	if (Timestamp{3, 4}).String() != "(3, 4)" {
		t.Errorf("String = %q", Timestamp{3, 4}.String())
	}
}

func TestSequentialTimestampsBothOrders(t *testing.T) {
	for _, byProcess := range []bool{true, false} {
		ts, err := engine.SequentialTimestamps[Timestamp](&fake{n: 3}, 3, 2, byProcess)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) != 6 {
			t.Fatalf("len = %d", len(ts))
		}
		if err := CheckStrictlyIncreasing(ts, Less); err != nil {
			t.Errorf("byProcess=%v: %v", byProcess, err)
		}
	}
	// calls < 1 is the degenerate no-op it always was: no work, no error.
	if ts, err := engine.SequentialTimestamps[Timestamp](&fake{n: 3}, 3, 0, true); err != nil || len(ts) != 0 {
		t.Errorf("SequentialTimestamps(calls=0) = (%v, %v), want empty", ts, err)
	}
}

func TestCheckStrictlyIncreasingErrors(t *testing.T) {
	ts := []Timestamp{{Rnd: 1}, {Rnd: 1}}
	if err := CheckStrictlyIncreasing(ts, Less); err == nil {
		t.Error("equal adjacent timestamps must fail")
	}
	down := []Timestamp{{Rnd: 2}, {Rnd: 1}}
	if err := CheckStrictlyIncreasing(down, Less); err == nil {
		t.Error("decreasing timestamps must fail")
	}
	if err := CheckStrictlyIncreasing(nil, Less); err != nil {
		t.Error("empty sequence must pass")
	}
}

func TestConcurrentRunReportsSpace(t *testing.T) {
	rep, err := run(&fake{n: 3}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 6 {
		t.Errorf("events = %d, want 6", len(rep.Events))
	}
	if rep.Space.Registers != 3 || rep.Space.Written != 3 || rep.Space.Writes != 6 {
		t.Errorf("space = %+v, want 3 registers, 3 written, 6 writes", rep.Space)
	}
}

func TestConcurrentRunRejectsOneShotRepeat(t *testing.T) {
	if _, err := run(&fake{oneShot: true}, 2, 3); !errors.Is(err, engine.ErrOneShot) {
		t.Errorf("err = %v, want engine.ErrOneShot", err)
	}
}

var errBoom = errors.New("boom")

type failing struct{ fake }

func (f *failing) GetTS(register.Mem, int, int) (Timestamp, error) {
	return Timestamp{}, errBoom
}

func TestConcurrentRunPropagatesAlgError(t *testing.T) {
	_, err := run(&failing{}, 2, 1)
	if err == nil || !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want errBoom", err)
	}
}

type constFalse struct{ fake }

func (c *constFalse) Compare(a, b Timestamp) bool { return false }

func TestReportVerifyCatchesBadCompare(t *testing.T) {
	rep, err := run(&fake{n: 4}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify((&fake{}).Compare); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
	// A constant-false compare must fail verification (the fake's history
	// has happens-before pairs).
	if err := rep.Verify((&constFalse{}).Compare); err == nil {
		t.Error("constant-false compare must fail verification")
	}
}

func TestDisciplineAppliedPerPid(t *testing.T) {
	alg := &fake{table: [][]int{{0}}} // register 0 writable only by pid 0
	meter := register.NewMeter(NewMem(alg))

	// pid 0 may write through its stack.
	mem0 := register.Wrap(meter, register.DisciplineFor(alg.WriterTable(), 0))
	if _, err := alg.GetTS(mem0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// pid 1 must panic through the discipline layer.
	defer func() {
		if recover() == nil {
			t.Error("discipline violation not enforced")
		}
	}()
	mem1 := register.Wrap(meter, register.DisciplineFor(alg.WriterTable(), 1))
	_, _ = alg.GetTS(mem1, 1, 0)
}

func TestExploreCountsAndVerifies(t *testing.T) {
	visits, err := engine.Explore(simCfg(&fake{n: 2}, 2, 1, 0), 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Two procs × (2 reads + 1 write): C(6,3) = 20 interleavings.
	if visits != 20 {
		t.Errorf("visits = %d, want 20", visits)
	}
}

func TestSampleRuns(t *testing.T) {
	if err := engine.Sample(simCfg(&fake{n: 3}, 3, 2, 5), 25); err != nil {
		t.Fatal(err)
	}
}

// A one-register collect is broken: a stale writer can downgrade the
// counter so a later call re-issues an already-completed timestamp. The
// sampled-schedule harness must find and reject it.
func TestSampleRejectsOneRegisterCollect(t *testing.T) {
	err := engine.Sample(simCfg(&fake{n: 1}, 3, 2, 5), 50)
	if err == nil {
		t.Error("one-register collect must violate the spec under sampled schedules")
	}
}

type constant struct{ fake }

func (c *constant) GetTS(mem register.Mem, pid, seq int) (Timestamp, error) {
	mem.Read(0)
	mem.Write(0, int64(1))
	return Timestamp{Rnd: 1}, nil
}

// A constant-timestamp algorithm is rejected already by sequential
// interleavings.
func TestExploreRejectsConstantTimestamp(t *testing.T) {
	_, err := engine.Explore(simCfg(&constant{}, 2, 1, 0), 0, 1000)
	if err == nil {
		t.Error("constant-timestamp algorithm must violate the spec in sequential interleavings")
	}
}
