package mutant_test

import (
	"testing"

	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/mutant"
)

// The mutant must look healthy in isolation: a process running solo keeps
// issuing strictly increasing timestamps (its own writes are remembered).
func TestStaleScanSoloPasses(t *testing.T) {
	alg := mutant.NewStaleScan(2)
	mem := timestamp.NewMem(alg)
	var prev timestamp.Timestamp
	for seq := 0; seq < 4; seq++ {
		ts, err := alg.GetTS(mem, 0, seq)
		if err != nil {
			t.Fatal(err)
		}
		if seq > 0 && !alg.Compare(prev, ts) {
			t.Fatalf("solo call %d: %v not after %v", seq, ts, prev)
		}
		prev = ts
	}
}

// The bug, deterministically: p0's second call misses p1's timestamp and
// duplicates it, violating the ordering of two non-overlapping calls.
func TestStaleScanMissesOtherProcessesWrites(t *testing.T) {
	alg := mutant.NewStaleScan(2)
	mem := timestamp.NewMem(alg)
	t00, err := alg.GetTS(mem, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := alg.GetTS(mem, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t01, err := alg.GetTS(mem, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !alg.Compare(t00, t10) {
		t.Fatalf("first calls out of order: %v, %v", t00, t10)
	}
	// p1's completed call must be ordered before p0's later call — but the
	// stale scan returns a duplicate instead.
	if alg.Compare(t10, t01) {
		t.Fatalf("mutant unexpectedly correct: %v < %v", t10, t01)
	}
	if t10 != t01 {
		t.Fatalf("expected the duplicate-timestamp failure mode, got %v vs %v", t10, t01)
	}
}
