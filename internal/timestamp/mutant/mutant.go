// Package mutant holds deliberately broken timestamp implementations.
// They exist to validate the validators: a conformance harness that never
// rejects anything proves nothing, so the test suite and cmd/tscheck run
// these mutants through the same exhaustive exploration and fuzzing as the
// real algorithms and assert that a violation is found and shrunk to a
// small counterexample.
//
// The package complements the broken variants that live next to the real
// code (sqrt.NewWithoutRepair, dense.TwoSilent): those demonstrate specific
// failure modes from the paper, while these are generic implementation bugs
// of the kind the model checker is meant to catch.
package mutant

import (
	"fmt"
	"sync" //tslint:allow registeraccess the mutex guards mutant bookkeeping (stale-scan caches), not paper-visible register state

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// StaleScan is the collect algorithm with a classic caching bug: a
// process's first getTS() collects all registers honestly, but later calls
// reuse the maximum remembered from the previous call instead of
// re-collecting — a stale scan. A process therefore misses every timestamp
// published by OTHERS since its last call (its own is remembered): if p's
// first call returns 1, another process then finishes with 2, and p calls
// again, p returns 2 as well — the pair (2, 2) violates the happens-before
// specification, which demands strictly ordered timestamps for
// non-overlapping calls. Solo runs and the by-process sequential baseline
// pass, which is exactly why catching it takes systematic exploration of
// interleavings rather than hand-picked schedules.
//
// The cached maximum lives in the instance, not in the registers, so a
// fresh instance must be constructed per execution when replaying
// (engine.ExhaustiveOptions.NewAlg); within one execution the cache is a
// deterministic function of the values the process read, which keeps
// exploration and replay sound.
type StaleScan struct {
	n     int
	mu    sync.Mutex
	cache map[int]int64
}

var _ timestamp.Algorithm = (*StaleScan)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:         "collect-stale-scan",
		Summary:      "collect with a stale-scan caching bug (caught by exploration; replays tscheck counterexamples)",
		New:          func(n int) timestamp.Algorithm { return NewStaleScan(n) },
		ExploreCalls: 2,
		Mutant:       true,
	})
}

// NewStaleScan returns the broken collect variant for n processes.
func NewStaleScan(n int) *StaleScan {
	if n < 1 {
		panic(fmt.Sprintf("mutant: invalid process count %d", n))
	}
	return &StaleScan{n: n, cache: make(map[int]int64)}
}

// Name identifies the mutant in reports.
func (a *StaleScan) Name() string { return "collect-stale-scan" }

// Registers returns n, like collect.
func (a *StaleScan) Registers() int { return a.n }

// OneShot reports false: the bug only bites on repeated calls.
func (a *StaleScan) OneShot() bool { return false }

// WriterTable declares collect's single-writer discipline.
func (a *StaleScan) WriterTable() [][]int { return register.SWMRTable(a.n) }

// GetTS collects honestly on a process's first call and from the stale
// cache afterwards.
func (a *StaleScan) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if pid < 0 || pid >= a.n {
		return timestamp.Timestamp{}, fmt.Errorf("mutant: pid %d out of range [0,%d)", pid, a.n)
	}
	var max int64
	if seq == 0 {
		for i := 0; i < a.n; i++ {
			if v := mem.Read(i); v != nil {
				if x := v.(int64); x > max {
					max = x
				}
			}
		}
	} else {
		// BUG: reuse the previous call's view instead of re-collecting.
		a.mu.Lock()
		max = a.cache[pid]
		a.mu.Unlock()
	}
	ts := max + 1
	a.mu.Lock()
	a.cache[pid] = ts // own write is remembered, other processes' are missed
	a.mu.Unlock()
	mem.Write(pid, ts)
	return timestamp.Timestamp{Rnd: ts}, nil
}

// Compare orders timestamps by integer value, like collect.
func (a *StaleScan) Compare(t1, t2 timestamp.Timestamp) bool {
	return t1.Rnd < t2.Rnd
}
