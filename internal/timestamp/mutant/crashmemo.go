package mutant

import (
	"fmt"
	"sync" //tslint:allow registeraccess the mutex guards the mutant's crash-memo table, harness-side state outside the paper's register accounting

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// CrashMemo is the collect algorithm with a crash-recovery checkpoint bug:
// it memoizes the timestamp it computed for (pid, seq) after the scan but
// BEFORE publishing it to the process's register, and a retried call —
// which only ever happens when a crashed pid is re-leased and resumes the
// interrupted call — returns the memoized value without re-scanning or
// re-writing. In a crash-free run every (pid, seq) is invoked exactly
// once, so the memo never hits and the mutant is indistinguishable from
// collect: exhaustive exploration, fuzzing and every load mix pass it.
// Inject one crash while the process is poised on its register write,
// though, and the retry resurrects a timestamp computed against a
// pre-crash view of the registers — processes that completed in between
// are invisible to it, and the recovered call can return a timestamp not
// above one it strictly follows.
//
// The memo lives in the instance, so replays need a fresh instance per
// execution (engine.ExhaustiveOptions.NewAlg / CrashSweepOptions.NewAlg).
type CrashMemo struct {
	n    int
	mu   sync.Mutex
	memo map[[2]int]int64
}

var _ timestamp.Algorithm = (*CrashMemo)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:         "collect-crash-memo",
		Summary:      "collect with a crash-checkpoint bug: retried calls replay a stale memoized timestamp (caught only by crash injection)",
		New:          func(n int) timestamp.Algorithm { return NewCrashMemo(n) },
		ExploreCalls: 2,
		Mutant:       true,
	})
}

// NewCrashMemo returns the crash-checkpoint mutant for n processes.
func NewCrashMemo(n int) *CrashMemo {
	if n < 1 {
		panic(fmt.Sprintf("mutant: invalid process count %d", n))
	}
	return &CrashMemo{n: n, memo: make(map[[2]int]int64)}
}

// Name identifies the mutant in reports.
func (a *CrashMemo) Name() string { return "collect-crash-memo" }

// Registers returns n, like collect.
func (a *CrashMemo) Registers() int { return a.n }

// OneShot reports false, like collect.
func (a *CrashMemo) OneShot() bool { return false }

// WriterTable declares collect's single-writer discipline.
func (a *CrashMemo) WriterTable() [][]int { return register.SWMRTable(a.n) }

// GetTS collects honestly the first time each (pid, seq) is invoked and
// replays the memoized "checkpoint" on a retry, skipping both the re-scan
// and the register write.
func (a *CrashMemo) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if pid < 0 || pid >= a.n {
		return timestamp.Timestamp{}, fmt.Errorf("mutant: pid %d out of range [0,%d)", pid, a.n)
	}
	key := [2]int{pid, seq}
	a.mu.Lock()
	ts, hit := a.memo[key]
	a.mu.Unlock()
	if hit {
		// BUG: trust the pre-crash checkpoint. No re-scan (misses every
		// timestamp published since) and no write (the value is never
		// visible to later scans either).
		return timestamp.Timestamp{Rnd: ts}, nil
	}
	var max int64
	for i := 0; i < a.n; i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	ts = max + 1
	a.mu.Lock()
	a.memo[key] = ts // checkpointed before the write: the crash window
	a.mu.Unlock()
	mem.Write(pid, ts)
	return timestamp.Timestamp{Rnd: ts}, nil
}

// Compare orders timestamps by integer value, like collect.
func (a *CrashMemo) Compare(t1, t2 timestamp.Timestamp) bool {
	return t1.Rnd < t2.Rnd
}
