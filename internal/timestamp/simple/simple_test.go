package simple

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"tsspace/internal/register"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
)

func TestRegisterCount(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {9, 5}, {10, 5}, {11, 6},
	} {
		if got := New(tc.n).Registers(); got != tc.want {
			t.Errorf("n=%d: Registers = %d, want ⌈n/2⌉ = %d", tc.n, got, tc.want)
		}
	}
}

func TestSequentialSumsIncrease(t *testing.T) {
	const n = 10
	alg := New(n)
	mem := timestamp.NewMem(alg)
	var prev timestamp.Timestamp
	for pid := 0; pid < n; pid++ {
		ts, err := alg.GetTS(mem, pid, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pid > 0 && !alg.Compare(prev, ts) {
			t.Errorf("p%d: %v not after %v", pid, ts, prev)
		}
		prev = ts
	}
}

// Register values must stay in {0, 1, 2} (§5): a process writes 2 only when
// it observed its partner's 1.
func TestValuesBounded(t *testing.T) {
	const n = 12
	alg := New(n)
	mem := register.NewAtomicArray(alg.Registers())
	for pid := 0; pid < n; pid++ {
		if _, err := alg.GetTS(mem, pid, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < mem.Size(); i++ {
			v := mem.Read(i)
			if v == nil {
				continue
			}
			if x := v.(int64); x < 0 || x > 2 {
				t.Fatalf("register %d = %d, outside {0,1,2}", i, x)
			}
		}
	}
	// All registers end at exactly 2 (both partners bumped) except a
	// possible odd singleton.
	for i := 0; i < mem.Size(); i++ {
		want := int64(2)
		if 2*i+1 >= n {
			want = 1
		}
		if v := mem.Read(i); v.(int64) != want {
			t.Errorf("register %d = %v, want %d", i, v, want)
		}
	}
}

// The final sequential timestamp equals n: every process contributed one
// increment and the last observer sums them all.
func TestFinalTimestampIsN(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		alg := New(n)
		mem := timestamp.NewMem(alg)
		var last timestamp.Timestamp
		for pid := 0; pid < n; pid++ {
			ts, err := alg.GetTS(mem, pid, 0)
			if err != nil {
				t.Fatal(err)
			}
			last = ts
		}
		if last.Rnd != int64(n) {
			t.Errorf("n=%d: last timestamp %v, want (%d, 0)", n, last, n)
		}
	}
}

func TestOneShotRejected(t *testing.T) {
	alg := New(2)
	mem := timestamp.NewMem(alg)
	if _, err := alg.GetTS(mem, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := alg.GetTS(mem, 0, 1); !errors.Is(err, timestamp.ErrOneShot) {
		t.Errorf("err = %v, want ErrOneShot", err)
	}
}

func TestPidValidation(t *testing.T) {
	alg := New(2)
	mem := timestamp.NewMem(alg)
	if _, err := alg.GetTS(mem, 2, 0); err == nil {
		t.Error("pid out of range accepted")
	}
	if _, err := alg.GetTS(mem, -1, 0); err == nil {
		t.Error("negative pid accepted")
	}
}

// Partners racing on their shared register may tie (lost update → equal
// sums), which the spec allows for concurrent calls. Exhaustively verify
// that every interleaving of a partner pair yields timestamps that are
// both ≥ 1, and that the happens-before property holds (checked by the
// conformance suite; here we additionally pin down the reachable sums).
func TestPartnerRaceReachableSums(t *testing.T) {
	alg := New(2)
	factory := func() *sched.System {
		return sched.New(2, 1, func(pid int, mem register.Mem) (any, error) {
			ts, err := alg.GetTS(mem, pid, 0)
			return ts, err
		})
	}
	sums := map[[2]int64]bool{}
	if _, err := sched.Explore(factory, 0, 1000, func(sys *sched.System, _ []int) error {
		r0, _ := sys.Result(0)
		r1, _ := sys.Result(1)
		sums[[2]int64{r0.(timestamp.Timestamp).Rnd, r1.(timestamp.Timestamp).Rnd}] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for pair := range sums {
		for _, s := range pair {
			if s < 1 || s > 2 {
				t.Errorf("reachable sum %d outside [1,2]: %v", s, pair)
			}
		}
	}
	// The tie (1,1) is reachable (both read 0, both write 1, both re-read
	// their own 1... note the re-read may see the partner's write; ties
	// and (1,2)/(2,1) splits must all appear).
	if !sums[[2]int64{1, 2}] && !sums[[2]int64{2, 1}] {
		t.Error("no sequential-looking outcome reachable; exploration broken?")
	}
	t.Logf("reachable outcome pairs: %v", sums)
}

// Property: for random subsets of processes called sequentially in random
// order, timestamps are strictly increasing and the final sum equals the
// number of calls.
func TestQuickSequentialSubsets(t *testing.T) {
	f := func(order []uint8) bool {
		if len(order) == 0 {
			return true
		}
		n := 16
		alg := New(n)
		mem := timestamp.NewMem(alg)
		seen := map[int]bool{}
		var prev timestamp.Timestamp
		count := 0
		for _, o := range order {
			pid := int(o) % n
			if seen[pid] {
				continue
			}
			seen[pid] = true
			ts, err := alg.GetTS(mem, pid, 0)
			if err != nil {
				return false
			}
			count++
			if count > 1 && !alg.Compare(prev, ts) {
				return false
			}
			prev = ts
		}
		return count == 0 || prev.Rnd == int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func BenchmarkGetTS(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := New(n)
			mem := timestamp.NewMem(alg)
			pid := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pid == n {
					b.StopTimer()
					mem = timestamp.NewMem(alg)
					pid = 0
					b.StartTimer()
				}
				if _, err := alg.GetTS(mem, pid, 0); err != nil {
					b.Fatal(err)
				}
				pid++
			}
		})
	}
}
