// Package simple implements Algorithms 1 and 2 of the paper (§5): a
// wait-free one-shot timestamp object for n processes from ⌈n/2⌉
// multi-reader/2-writer registers, each holding a value in {0, 1, 2} and
// initialized to 0. Register i is shared by processes 2i and 2i+1
// (0-based), its two permitted writers.
//
// simple-getTS() by process p reads each register in sequence; at p's own
// register it first increments it (read, then write read+1); the returned
// timestamp is the sum of all values read. simple-compare(t1, t2) is
// t1 < t2.
//
// Correctness (Lemma 5.1): a process writes 2 only if it observed 1, which
// — the object being one-shot — must have been written by its partner, so
// register values never decrease, sums never decrease, and a later getTS()
// additionally accounts for its own increment, making its sum strictly
// larger than any getTS() that happened before it.
//
// The algorithm is interesting "only because of its simplicity" (§5): it
// beats the long-lived lower bound of Theorem 1.1 with a trivially linear
// but halved register count, and is strictly dominated by the Θ(√n)
// algorithm of §6 (package sqrt).
package simple

import (
	"fmt"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// Alg is Algorithms 1–2: the ⌈n/2⌉-register one-shot object.
type Alg struct {
	n int
}

var _ timestamp.Algorithm = (*Alg)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:    "simple",
		Summary: "one-shot object on ⌈n/2⌉ two-writer registers (Algorithms 1–2, §5)",
		New:     func(n int) timestamp.Algorithm { return New(n) },
		OneShot: true,
	})
}

// New returns a simple one-shot timestamp object for n processes.
func New(n int) *Alg {
	if n < 1 {
		panic(fmt.Sprintf("simple: invalid process count %d", n))
	}
	return &Alg{n: n}
}

// Name implements timestamp.Algorithm.
func (a *Alg) Name() string { return "simple" }

// Registers returns ⌈n/2⌉.
func (a *Alg) Registers() int { return (a.n + 1) / 2 }

// OneShot reports true: each process may call GetTS at most once.
func (a *Alg) OneShot() bool { return true }

// WriterTable declares Algorithm 2's discipline: register i is written by
// processes 2i and 2i+1 only.
func (a *Alg) WriterTable() [][]int { return register.TwoWriterTable(a.n) }

// GetTS is simple-getTS (Algorithm 2). Registers hold int64 values; the
// initial ⊥ (nil) reads as 0, matching the paper's 0-initialized
// registers without performing initializing writes.
func (a *Alg) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if pid < 0 || pid >= a.n {
		return timestamp.Timestamp{}, fmt.Errorf("simple: pid %d out of range [0,%d)", pid, a.n)
	}
	if seq != 0 {
		return timestamp.Timestamp{}, timestamp.ErrOneShot
	}
	mine := pid / 2
	var sum int64
	for i := 0; i < a.Registers(); i++ {
		if i == mine {
			// R[i] := R[i] + 1 — one read and one write in the register
			// model.
			mem.Write(i, readVal(mem, i)+1)
		}
		// sum := sum + R[i]: the paper re-reads the register, so the sum may
		// account for a partner's concurrent increment; monotonicity is
		// preserved either way.
		sum += readVal(mem, i)
	}
	return timestamp.Timestamp{Rnd: sum}, nil
}

func readVal(mem register.Mem, i int) int64 {
	v := mem.Read(i)
	if v == nil {
		return 0
	}
	return v.(int64)
}

// Compare is simple-compare (Algorithm 1): t1 < t2.
func (a *Alg) Compare(t1, t2 timestamp.Timestamp) bool {
	return t1.Rnd < t2.Rnd
}
