package timestamp

import (
	"fmt"
	"sort"
	"sync"
)

// Info describes one registered timestamp implementation: the metadata the
// harnesses and CLIs need to construct and roster it without importing its
// package. Implementations self-register from their package init(), so any
// consumer that blank-imports tsspace/internal/timestamp/all (or the
// specific implementation packages it wants) sees the full catalog. The
// registry is the single name→constructor table of the reproduction — the
// CLI -alg flags, the conformance rosters, the benchmarks and the public
// tsspace SDK all resolve algorithms here.
type Info struct {
	// Name is the registry key, as accepted by -alg flags and
	// tsspace.WithAlgorithm.
	Name string
	// Summary is a one-line description for flag help and service health
	// endpoints.
	Summary string
	// New constructs the implementation for n processes (for one-shot
	// objects n is also the total call budget M).
	New func(n int) Algorithm
	// OneShot declares whether the implementation issues at most one
	// timestamp per process. It must match what constructed instances
	// report (the catalog test asserts it), and exists so consumers can
	// plan capacity — e.g. pick a budget-sized process count — without
	// constructing a throwaway object.
	OneShot bool
	// MinProcs is the smallest process count the constructor accepts;
	// values < 1 mean 1.
	MinProcs int
	// ExploreCalls is the per-process call count model-checking harnesses
	// use at their smallest process counts (1 for one-shot objects; > 1
	// where repeated calls are what exposes bugs); values < 1 mean 1.
	ExploreCalls int
	// Mutant marks deliberately broken implementations: resolvable by
	// Lookup (so counterexamples replay by name) but excluded from All and
	// Names, which roster only correct algorithms.
	Mutant bool
}

var registry = struct {
	sync.RWMutex
	m map[string]Info
}{m: make(map[string]Info)}

// Register adds an implementation to the catalog. It is intended to be
// called from package init() functions and panics on an empty name, a nil
// constructor, or a duplicate registration — all programmer errors.
func Register(info Info) {
	if info.Name == "" {
		panic("timestamp: Register with empty name")
	}
	if info.New == nil {
		panic(fmt.Sprintf("timestamp: Register(%q) with nil constructor", info.Name))
	}
	if info.MinProcs < 1 {
		info.MinProcs = 1
	}
	if info.ExploreCalls < 1 {
		info.ExploreCalls = 1
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[info.Name]; dup {
		panic(fmt.Sprintf("timestamp: Register(%q) called twice", info.Name))
	}
	registry.m[info.Name] = info
}

// Lookup returns the registration for name, including mutants.
func Lookup(name string) (Info, bool) {
	registry.RLock()
	defer registry.RUnlock()
	info, ok := registry.m[name]
	return info, ok
}

// MustNew constructs the named implementation for n processes, panicking
// if the name is not registered. It is the registry-driven replacement for
// importing an implementation package just to call its New.
func MustNew(name string, n int) Algorithm {
	info, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("timestamp: no algorithm %q registered (have %v)", name, AllNames()))
	}
	return info.New(n)
}

// All returns the registered non-mutant implementations sorted by name:
// the default roster of every conformance sweep.
func All() []Info {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Info, 0, len(registry.m))
	for _, info := range registry.m {
		if !info.Mutant {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of the non-mutant implementations.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, info := range all {
		names[i] = info.Name
	}
	return names
}

// AllNames returns every registered name, mutants included, sorted.
func AllNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
