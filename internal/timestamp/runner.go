package timestamp

import (
	"errors"
	"fmt"
	"sync"

	"tsspace/internal/hbcheck"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// RunReport is the outcome of a harness run: every completed getTS() with
// its happens-before interval, plus the space footprint.
type RunReport struct {
	Alg    string
	N      int // processes
	Calls  int // getTS() calls per process
	Space  register.SpaceReport
	Events []hbcheck.Event[Timestamp]
}

// Verify checks the happens-before property over the report's events.
func (r *RunReport) Verify(alg Algorithm) error {
	return hbcheck.Check(r.Events, alg.Compare)
}

// memFor wraps mem with the algorithm's writer discipline for process pid.
func memFor(alg Algorithm, mem register.Mem, pid int) register.Mem {
	table := alg.WriterTable()
	if table == nil {
		return mem
	}
	return register.NewWriteQuorum(mem, table).Handle(pid)
}

// RunConcurrent executes n processes × calls getTS() each as goroutines on
// a real atomic register array, records all intervals, and returns the
// report. One-shot algorithms reject calls > 1.
func RunConcurrent(alg Algorithm, n, calls int) (*RunReport, error) {
	if alg.OneShot() && calls > 1 {
		return nil, fmt.Errorf("%w: %s is one-shot, calls=%d", ErrOneShot, alg.Name(), calls)
	}
	meter := register.NewMeter(NewMem(alg))
	var rec hbcheck.Recorder[Timestamp]

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			mem := memFor(alg, meter, pid)
			for k := 0; k < calls; k++ {
				start := rec.Begin()
				ts, err := alg.GetTS(mem, pid, k)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("p%d getTS#%d: %w", pid, k, err)
					}
					mu.Unlock()
					return
				}
				rec.End(pid, k, start, ts)
			}
		}(pid)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &RunReport{
		Alg:    alg.Name(),
		N:      n,
		Calls:  calls,
		Space:  meter.Report(),
		Events: rec.Events(),
	}, nil
}

// NewSimSystem builds a deterministic-scheduler system in which each of n
// processes performs calls getTS() instances, recording intervals into the
// returned recorder. Process results are []Timestamp.
//
// The invocation stamp of each getTS() is taken at its first register
// operation rather than at goroutine creation: under the scheduler a
// process "begins" when it is first scheduled, and its pre-first-op local
// computation is invisible to the rest of the system. Stamping earlier
// would make every call look concurrent with every other and void the
// happens-before check.
func NewSimSystem(alg Algorithm, n, calls int) (*sched.System, *hbcheck.Recorder[Timestamp]) {
	rec := &hbcheck.Recorder[Timestamp]{}
	sys := sched.New(n, alg.Registers(), func(pid int, mem register.Mem) (any, error) {
		mem = memFor(alg, mem, pid)
		out := make([]Timestamp, 0, calls)
		for k := 0; k < calls; k++ {
			sm := &stampMem{inner: mem, begin: rec.Begin}
			ts, err := alg.GetTS(sm, pid, k)
			if err != nil {
				return out, fmt.Errorf("p%d getTS#%d: %w", pid, k, err)
			}
			rec.End(pid, k, sm.stamp(), ts)
			out = append(out, ts)
		}
		return out, nil
	})
	return sys, rec
}

// stampMem wraps a Mem and takes the invocation stamp right after the
// first operation is *granted* (executes). Stamping any earlier is unsound
// under the scheduler: processes post their first request at spawn, so a
// pre-operation stamp degenerates to creation time and every interval
// looks concurrent. Stamping after the first granted operation is sound by
// the usual reduction — local computation before the first shared step is
// invisible to the system, so there is an equivalent execution in which
// the invocation happens just before that step.
type stampMem struct {
	inner   register.Mem
	begin   func() uint64
	started bool
	start   uint64
}

var _ register.Mem = (*stampMem)(nil)

func (m *stampMem) stampNow() {
	if !m.started {
		m.started = true
		m.start = m.begin()
	}
}

// stamp returns the begin stamp, taking it now if no operation occurred.
func (m *stampMem) stamp() uint64 {
	m.stampNow()
	return m.start
}

func (m *stampMem) Size() int { return m.inner.Size() }

func (m *stampMem) Read(i int) register.Value {
	v := m.inner.Read(i)
	m.stampNow()
	return v
}

func (m *stampMem) Write(i int, v register.Value) {
	m.inner.Write(i, v)
	m.stampNow()
}

// checkSystem surfaces process errors and verifies the recorder.
func checkSystem(alg Algorithm, sys *sched.System, rec *hbcheck.Recorder[Timestamp]) error {
	for pid := 0; pid < sys.N(); pid++ {
		if err := sys.Err(pid); err != nil {
			return err
		}
	}
	return hbcheck.CheckRecorder(rec, alg.Compare)
}

// Explore model-checks the algorithm: it enumerates interleavings of n
// processes × calls getTS() (capped at maxVisits complete executions; 0 =
// all) and verifies the happens-before property on every one. It returns
// the number of executions checked.
func Explore(alg Algorithm, n, calls, maxVisits, maxSteps int) (int, error) {
	if alg.OneShot() && calls > 1 {
		return 0, fmt.Errorf("%w: %s is one-shot", ErrOneShot, alg.Name())
	}
	var cur *hbcheck.Recorder[Timestamp]
	factory := func() *sched.System {
		sys, rec := NewSimSystem(alg, n, calls)
		cur = rec
		return sys
	}
	return sched.Explore(factory, maxVisits, maxSteps, func(sys *sched.System, schedule []int) error {
		return checkSystem(alg, sys, cur)
	})
}

// Sample stress-tests the algorithm on count random maximal interleavings
// with the given seed, verifying the happens-before property on each.
func Sample(alg Algorithm, n, calls, count int, seed int64) error {
	if alg.OneShot() && calls > 1 {
		return fmt.Errorf("%w: %s is one-shot", ErrOneShot, alg.Name())
	}
	var cur *hbcheck.Recorder[Timestamp]
	factory := func() *sched.System {
		sys, rec := NewSimSystem(alg, n, calls)
		cur = rec
		return sys
	}
	return sched.Sample(factory, count, seed, func(sys *sched.System, schedule []int) error {
		return checkSystem(alg, sys, cur)
	})
}

// SequentialTimestamps runs n×calls getTS() strictly sequentially (p0 first
// call, p0 second call, ..., p(n-1) last call when byProcess; otherwise
// round-robin) on real memory and returns the timestamps in issue order.
// Every consecutive pair is happens-before ordered, so the sequence must be
// strictly increasing under Compare.
func SequentialTimestamps(alg Algorithm, n, calls int, byProcess bool) ([]Timestamp, error) {
	meter := register.NewMeter(NewMem(alg))
	out := make([]Timestamp, 0, n*calls)
	issue := func(pid, k int) error {
		ts, err := alg.GetTS(memFor(alg, meter, pid), pid, k)
		if err != nil {
			return fmt.Errorf("p%d getTS#%d: %w", pid, k, err)
		}
		out = append(out, ts)
		return nil
	}
	if byProcess {
		for pid := 0; pid < n; pid++ {
			for k := 0; k < calls; k++ {
				if err := issue(pid, k); err != nil {
					return out, err
				}
			}
		}
		return out, nil
	}
	for k := 0; k < calls; k++ {
		for pid := 0; pid < n; pid++ {
			if err := issue(pid, k); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

// CheckStrictlyIncreasing verifies that each adjacent pair of timestamps is
// ordered by compare in the forward direction only.
func CheckStrictlyIncreasing(ts []Timestamp, compare func(a, b Timestamp) bool) error {
	for i := 1; i < len(ts); i++ {
		if !compare(ts[i-1], ts[i]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = false, want true", i, ts[i-1], ts[i])
		}
		if compare(ts[i], ts[i-1]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = true, want false", i, ts[i], ts[i-1])
		}
	}
	return nil
}

// ErrSpaceExceeded reports a space-bound violation in CheckSpaceBound.
var ErrSpaceExceeded = errors.New("timestamp: space bound exceeded")

// CheckSpaceBound verifies the report wrote at most bound registers.
func CheckSpaceBound(r *RunReport, bound int) error {
	if r.Space.Written > bound {
		return fmt.Errorf("%w: %s wrote %d registers, bound %d", ErrSpaceExceeded, r.Alg, r.Space.Written, bound)
	}
	return nil
}
