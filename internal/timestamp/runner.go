package timestamp

import (
	"errors"
	"fmt"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/register"
	"tsspace/internal/sched"
)

// This file is the compatibility surface over internal/engine: the
// historical RunConcurrent / NewSimSystem / Explore / Sample entry points
// are thin shims that assemble an engine.Config and delegate. New
// consumers should use the engine directly — it supports every workload
// shape (one-shot, long-lived, sequential, phased, adversarial, churn),
// both worlds, and richer reports.

// RunReport is the outcome of a harness run: every completed getTS() with
// its happens-before interval, plus the space footprint.
type RunReport struct {
	Alg    string
	N      int // processes
	Calls  int // getTS() calls per process
	Space  register.SpaceReport
	Events []hbcheck.Event[Timestamp]
}

// Verify checks the happens-before property over the report's events.
func (r *RunReport) Verify(alg Algorithm) error {
	return hbcheck.Check(r.Events, alg.Compare)
}

// memFor wraps mem with the algorithm's writer discipline for process pid.
func memFor(alg Algorithm, mem register.Mem, pid int) register.Mem {
	return register.Wrap(mem, register.DisciplineFor(alg.WriterTable(), pid))
}

// checkOneShot rejects repeated calls on one-shot algorithms with this
// package's sentinel (the engine has its own).
func checkOneShot(alg Algorithm, calls int) error {
	if alg.OneShot() && calls > 1 {
		return fmt.Errorf("%w: %s is one-shot, calls=%d", ErrOneShot, alg.Name(), calls)
	}
	return nil
}

// RunConcurrent executes n processes × calls getTS() each as goroutines on
// a real atomic register array, records all intervals, and returns the
// report. One-shot algorithms reject calls > 1.
func RunConcurrent(alg Algorithm, n, calls int) (*RunReport, error) {
	if err := checkOneShot(alg, calls); err != nil {
		return nil, err
	}
	if calls < 1 {
		// Degenerate historical behavior: no calls, empty report (the
		// engine's workloads treat calls < 1 as 1).
		return &RunReport{Alg: alg.Name(), N: n, Calls: calls,
			Space: register.NewMeterSize(alg.Registers()).Report()}, nil
	}
	rep, err := engine.Run(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
	})
	if err != nil {
		return nil, err
	}
	return &RunReport{Alg: rep.Alg, N: n, Calls: calls, Space: rep.Space, Events: rep.Events}, nil
}

// NewSimSystem builds a deterministic-scheduler system in which each of n
// processes performs calls getTS() instances (calls < 1 is treated as 1),
// recording intervals into the returned recorder. Process results are
// []Timestamp. The invocation stamp of each getTS() is taken at its first
// granted register operation (see register.StampFirstOp for why stamping
// earlier is unsound under the scheduler).
func NewSimSystem(alg Algorithm, n, calls int) (*sched.System, *hbcheck.Recorder[Timestamp]) {
	sys, rec, _ := engine.NewSimSystem(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
	})
	return sys, rec
}

// Explore model-checks the algorithm: it enumerates interleavings of n
// processes × calls getTS() (capped at maxVisits complete executions; 0 =
// all) and verifies the happens-before property on every one. It returns
// the number of executions checked.
func Explore(alg Algorithm, n, calls, maxVisits, maxSteps int) (int, error) {
	if err := checkOneShot(alg, calls); err != nil {
		return 0, err
	}
	return engine.Explore(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
	}, maxVisits, maxSteps)
}

// Sample stress-tests the algorithm on count random maximal interleavings
// with the given seed, verifying the happens-before property on each.
func Sample(alg Algorithm, n, calls, count int, seed int64) error {
	if err := checkOneShot(alg, calls); err != nil {
		return err
	}
	return engine.Sample(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.LongLived{CallsPerProc: calls},
		Seed:     seed,
	}, count)
}

// SequentialTimestamps runs n×calls getTS() strictly sequentially (p0 first
// call, p0 second call, ..., p(n-1) last call when byProcess; otherwise
// round-robin) on real memory and returns the timestamps in issue order.
// Every consecutive pair is happens-before ordered, so the sequence must be
// strictly increasing under Compare.
func SequentialTimestamps(alg Algorithm, n, calls int, byProcess bool) ([]Timestamp, error) {
	if calls < 1 {
		return nil, nil
	}
	out := make([]Timestamp, 0, n*calls)
	_, err := engine.Run(engine.Config[Timestamp]{
		Alg:      alg,
		World:    engine.Atomic,
		N:        n,
		Workload: engine.Sequential{CallsPerProc: calls, RoundRobin: !byProcess},
		OnCall:   func(pid, seq int, ts Timestamp) { out = append(out, ts) },
	})
	return out, err
}

// CheckStrictlyIncreasing verifies that each adjacent pair of timestamps is
// ordered by compare in the forward direction only.
func CheckStrictlyIncreasing(ts []Timestamp, compare func(a, b Timestamp) bool) error {
	for i := 1; i < len(ts); i++ {
		if !compare(ts[i-1], ts[i]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = false, want true", i, ts[i-1], ts[i])
		}
		if compare(ts[i], ts[i-1]) {
			return fmt.Errorf("timestamp %d: compare(%v, %v) = true, want false", i, ts[i], ts[i-1])
		}
	}
	return nil
}

// ErrSpaceExceeded reports a space-bound violation in CheckSpaceBound.
var ErrSpaceExceeded = errors.New("timestamp: space bound exceeded")

// CheckSpaceBound verifies the report wrote at most bound registers.
func CheckSpaceBound(r *RunReport, bound int) error {
	if r.Space.Written > bound {
		return fmt.Errorf("%w: %s wrote %d registers, bound %d", ErrSpaceExceeded, r.Alg, r.Space.Written, bound)
	}
	return nil
}
