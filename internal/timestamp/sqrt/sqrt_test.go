package sqrt

import (
	"errors"
	"fmt"
	"testing"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

func mustTS(t *testing.T, alg *Alg, mem register.Mem, pid, seq int) timestamp.Timestamp {
	t.Helper()
	ts, err := alg.GetTS(mem, pid, seq)
	if err != nil {
		t.Fatalf("getTS(p%d.%d): %v", pid, seq, err)
	}
	return ts
}

func TestRegistersFor(t *testing.T) {
	for _, tc := range []struct{ m, want int }{
		{1, 2}, {2, 3}, {4, 4}, {9, 6}, {16, 8}, {25, 10}, {100, 20}, {50, 15},
	} {
		if got := RegistersFor(tc.m); got != tc.want {
			t.Errorf("RegistersFor(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
}

// The sequential behavior promised in §6.1: "the getTS() that starts phase
// k returns (k, 0) and the j-th getTS() call after that, for 1 ≤ j ≤ k−1,
// invalidates R[j] and returns (k, j)".
func TestSequentialPattern(t *testing.T) {
	const m = 12
	alg := NewBounded(m)
	mem := timestamp.NewMem(alg)
	want := []timestamp.Timestamp{
		{Rnd: 1, Turn: 0},
		{Rnd: 2, Turn: 0},
		{Rnd: 2, Turn: 1},
		{Rnd: 3, Turn: 0},
		{Rnd: 3, Turn: 1},
		{Rnd: 3, Turn: 2},
		{Rnd: 4, Turn: 0},
		{Rnd: 4, Turn: 1},
		{Rnd: 4, Turn: 2},
		{Rnd: 4, Turn: 3},
		{Rnd: 5, Turn: 0},
		{Rnd: 5, Turn: 1},
	}
	for k := 0; k < m; k++ {
		got := mustTS(t, alg, mem, k, 0)
		if got != want[k] {
			t.Fatalf("sequential call %d returned %v, want %v", k, got, want[k])
		}
	}
}

// Sequential executions use far fewer registers than the ⌈2√M⌉ budget:
// phases grow as √(2M), so about √2·√M ≈ 0.71·(2√M) registers are written.
func TestSequentialSpace(t *testing.T) {
	for _, m := range []int{4, 16, 64, 144, 400} {
		alg := NewBounded(m)
		meter := register.NewMeter(timestamp.NewMem(alg))
		for k := 0; k < m; k++ {
			mustTS(t, alg, meter, k, 0)
		}
		rep := meter.Report()
		if rep.Written > alg.Registers()-1 {
			t.Errorf("M=%d: wrote %d registers, budget %d (sentinel must stay ⊥)", m, rep.Written, alg.Registers())
		}
		// Non-⊥ registers form a prefix (Claim 6.1(d)).
		for i := 0; i < rep.Written; i++ {
			if meter.Read(i) == nil {
				t.Errorf("M=%d: register %d is ⊥ inside the written prefix", m, i)
			}
		}
		if meter.Read(alg.Registers()-1) != nil {
			t.Errorf("M=%d: sentinel register written", m)
		}
	}
}

func TestOneShotRejectsRepeat(t *testing.T) {
	alg := New(4)
	mem := timestamp.NewMem(alg)
	mustTS(t, alg, mem, 0, 0)
	if _, err := alg.GetTS(mem, 0, 1); !errors.Is(err, timestamp.ErrOneShot) {
		t.Errorf("err = %v, want ErrOneShot", err)
	}
	// The bounded variant accepts repeats.
	b := NewBounded(4)
	memB := timestamp.NewMem(b)
	mustTS(t, b, memB, 0, 0)
	mustTS(t, b, memB, 0, 1)
}

func TestBudgetExhaustion(t *testing.T) {
	// With M=1 the object owns 2 registers; a second call in a fresh phase
	// eventually runs the while-loop off the array.
	alg := NewBounded(1)
	mem := timestamp.NewMem(alg)
	mustTS(t, alg, mem, 0, 0)
	_, err := alg.GetTS(mem, 0, 1)
	if err == nil {
		// A single extra call may still fit (the bound is not exactly
		// tight); keep calling until the budget error appears.
		for k := 2; k < 10; k++ {
			if _, err = alg.GetTS(mem, 0, k); err != nil {
				break
			}
		}
	}
	if !errors.Is(err, timestamp.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestMemTooSmall(t *testing.T) {
	alg := New(16)
	mem := register.NewAtomicArray(2)
	if _, err := alg.GetTS(mem, 0, 0); err == nil {
		t.Error("undersized memory accepted")
	}
}

func TestCellString(t *testing.T) {
	c := &Cell{Seq: []ID{{1, 0}, {2, 0}}, Rnd: 2}
	if c.Last() != (ID{2, 0}) {
		t.Errorf("Last = %v", c.Last())
	}
	if c.String() == "" || (ID{Pid: 3, Seq: 1}).String() != "3.1" {
		t.Error("stringers broken")
	}
}

// Phase analysis on a sequential execution: phases are exactly the rounds,
// each completed phase ϕ has ϕ invalidation writes (Claim 6.10), and only
// R[1..ϕ] is written during phase ϕ (Claim 6.8).
func TestPhaseAnalysisSequential(t *testing.T) {
	const m = 20
	alg := NewBounded(m)
	tracer := &ChronoTracer{}
	alg.SetTracer(tracer)
	mem := timestamp.NewMem(alg)
	var maxRnd int64
	for k := 0; k < m; k++ {
		ts := mustTS(t, alg, mem, k, 0)
		if ts.Rnd > maxRnd {
			maxRnd = ts.Rnd
		}
	}
	rep, err := AnalyzePhases(tracer.Events())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCompletedPhases(rep); err != nil {
		t.Error(err)
	}
	if rep.Phases < int(maxRnd)-1 {
		t.Errorf("analyzer found %d phases, timestamps reached rnd %d", rep.Phases, maxRnd)
	}
	if rep.InvalidationWrites > 2*m {
		t.Errorf("invalidation writes %d exceed 2M = %d (Claim 6.13)", rep.InvalidationWrites, 2*m)
	}
	// Sequentially every write is an invalidation write (each register is
	// written at most once per phase).
	if rep.InvalidationWrites != rep.TotalWrites {
		t.Errorf("sequential execution: invalidations %d != writes %d", rep.InvalidationWrites, rep.TotalWrites)
	}
}

func TestAnalyzePhasesRejectsWriteBeforeScan(t *testing.T) {
	events := []TraceEvent{{Write: &WriteEvent{Line: 8, Reg: 0, Rnd: 1}}}
	if _, err := AnalyzePhases(events); err == nil {
		t.Error("write before any scan must be rejected")
	}
}

func TestAnalyzePhasesDetectsClaim68Violation(t *testing.T) {
	events := []TraceEvent{
		{Scan: &ScanEvent{MyRnd: 0}},                   // phase 1 starts
		{Write: &WriteEvent{Line: 15, Reg: 5, Rnd: 1}}, // write far outside R[1..1]
	}
	if _, err := AnalyzePhases(events); err == nil {
		t.Error("Claim 6.8 violation must be detected")
	}
}

func TestVerifyCompletedPhasesDetectsShortPhase(t *testing.T) {
	rep := &PhaseReport{
		Phases: 3,
		PerPhase: []PhaseStats{
			{Phase: 1, Invalidations: 1},
			{Phase: 2, Invalidations: 1}, // should be 2
			{Phase: 3, Invalidations: 0},
		},
	}
	if err := VerifyCompletedPhases(rep); err == nil {
		t.Error("short completed phase must be detected")
	}
}

// The §6.1 "wasted timestamp" scenario: a getTS that sleeps while poised to
// invalidate and wakes in a later phase terminates after at most one more
// write (its line-6 / line-14 check sees the phase advanced). We reproduce
// it sequentially: run p0 to the point where it would write, let others
// advance the phase, then let p0 finish — its timestamp must still satisfy
// happens-before with everything that completed before it started.
func TestStaleWriterWastesAtMostOneTimestamp(t *testing.T) {
	// Direct construction (no scheduler needed): build a memory state in
	// phase 3 by sequential calls, then issue a call computed from a stale
	// view by replaying its while-loop against an old snapshot. Simplest
	// faithful version: interleave via the public API using a bounded
	// object and verifying the returned timestamps remain consistent.
	alg := NewBounded(16)
	mem := timestamp.NewMem(alg)
	var prev timestamp.Timestamp
	for k := 0; k < 16; k++ {
		ts := mustTS(t, alg, mem, k, 0)
		if k > 0 && !timestamp.Less(prev, ts) {
			t.Fatalf("call %d: %v not after %v", k, prev, ts)
		}
		prev = ts
	}
}

func TestCompareLexicographic(t *testing.T) {
	alg := New(4)
	cases := []struct {
		a, b timestamp.Timestamp
		want bool
	}{
		{timestamp.Timestamp{Rnd: 1, Turn: 0}, timestamp.Timestamp{Rnd: 2, Turn: 0}, true},
		{timestamp.Timestamp{Rnd: 2, Turn: 0}, timestamp.Timestamp{Rnd: 1, Turn: 9}, false},
		{timestamp.Timestamp{Rnd: 2, Turn: 1}, timestamp.Timestamp{Rnd: 2, Turn: 2}, true},
		{timestamp.Timestamp{Rnd: 2, Turn: 2}, timestamp.Timestamp{Rnd: 2, Turn: 2}, false},
	}
	for _, c := range cases {
		if got := alg.Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := &ChronoTracer{}
	tr.OnWrite(WriteEvent{Line: 8})
	tr.OnScan(ScanEvent{MyRnd: 0})
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d", len(tr.Events()))
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { NewBounded(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Spot-check Lemma 6.14's write bound: each getTS writes < m times.
func TestPerCallWriteBound(t *testing.T) {
	const m = 36
	alg := NewBounded(m)
	meter := register.NewMeter(timestamp.NewMem(alg))
	for k := 0; k < m; k++ {
		before := meter.Report().Writes
		mustTS(t, alg, meter, k%6, k/6)
		delta := meter.Report().Writes - before
		if delta >= uint64(alg.Registers()) {
			t.Errorf("call %d performed %d writes, must be < m = %d", k, delta, alg.Registers())
		}
	}
}

func BenchmarkGetTSSequential(b *testing.B) {
	for _, m := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			alg := NewBounded(m)
			mem := timestamp.NewMem(alg)
			calls := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if calls == m {
					b.StopTimer()
					alg = NewBounded(m)
					mem = timestamp.NewMem(alg)
					calls = 0
					b.StartTimer()
				}
				if _, err := alg.GetTS(mem, calls, 0); err != nil {
					b.Fatal(err)
				}
				calls++
			}
		})
	}
}

// The versioned-scan ablation behaves identically to the value-equality
// scan on real memory, and errors cleanly on memories without versions.
func TestVersionedScanAblation(t *testing.T) {
	const m = 12
	a := NewBounded(m)
	b := NewBounded(m)
	b.UseVersionedScan(true)
	memA := timestamp.NewMem(a)
	memB := timestamp.NewMem(b)
	for k := 0; k < m; k++ {
		tsA := mustTS(t, a, memA, k, 0)
		tsB := mustTS(t, b, memB, k, 0)
		if tsA != tsB {
			t.Fatalf("call %d: value-scan %v != versioned-scan %v", k, tsA, tsB)
		}
	}

	c := NewBounded(2)
	c.UseVersionedScan(true)
	if _, err := c.GetTS(&noVersions{timestamp.NewMem(c)}, 0, 0); err == nil {
		t.Error("versioned scan on unversioned memory must error")
	}
}

// noVersions hides the versioned interface of the wrapped memory.
type noVersions struct{ inner register.Mem }

func (m *noVersions) Size() int                     { return m.inner.Size() }
func (m *noVersions) Read(i int) register.Value     { return m.inner.Read(i) }
func (m *noVersions) Write(i int, v register.Value) { m.inner.Write(i, v) }
