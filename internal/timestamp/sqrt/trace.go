package sqrt

import (
	"fmt"
	"sync" //tslint:allow registeraccess the trace recorder is verification instrumentation, not algorithm shared state
)

// WriteEvent is a shared-register write performed by Algorithm 4, tagged
// with the pseudocode line that issued it (8, 11 or 15).
type WriteEvent struct {
	Line int // 8, 11 or 15
	Pid  int
	Seq  int
	Reg  int // 0-based register index (paper's R[Reg+1])
	Rnd  int // rnd value written
}

// ScanEvent is a completed scan (line 13) by a getTS with the given myrnd.
// Phase myrnd+1 starts at the first such scan (§6.3).
type ScanEvent struct {
	Pid   int
	Seq   int
	MyRnd int
}

// Tracer observes Algorithm 4's internal events. Callbacks run on the
// calling process's goroutine immediately after the traced operation.
type Tracer interface {
	OnWrite(WriteEvent)
	OnScan(ScanEvent)
}

// TraceEvent is a WriteEvent or ScanEvent in chronological order.
type TraceEvent struct {
	Write *WriteEvent
	Scan  *ScanEvent
}

// ChronoTracer records events in arrival order. Under the deterministic
// scheduler (synchronous stepping) the order is exactly the execution
// order; under real concurrency it is a best-effort serialization.
type ChronoTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

var _ Tracer = (*ChronoTracer)(nil)

// OnWrite implements Tracer.
func (t *ChronoTracer) OnWrite(ev WriteEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{Write: &ev})
}

// OnScan implements Tracer.
func (t *ChronoTracer) OnScan(ev ScanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{Scan: &ev})
}

// Events returns the recorded trace.
func (t *ChronoTracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Reset clears the trace.
func (t *ChronoTracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}

// PhaseStats summarizes one phase of an execution.
type PhaseStats struct {
	Phase         int // 1-based phase number ϕ
	Writes        int // register writes during the phase
	Invalidations int // invalidation writes (first write per register per phase)
	MaxReg        int // largest 0-based register written, -1 if none
}

// PhaseReport is the §6.3 accounting of an execution trace.
type PhaseReport struct {
	Phases             int          // highest phase started
	TotalWrites        int          // all register writes
	InvalidationWrites int          // total invalidation writes (Claim 6.13: ≤ 2M)
	PerPhase           []PhaseStats // indexed by phase-1
}

// AnalyzePhases partitions a chronological trace into phases following
// §6.3: phase ϕ ≥ 1 starts at the first scan (line 13) by a getTS with
// myrnd = ϕ−1, and the first write to each register within a phase is an
// invalidation write. It verifies Claim 6.8 (only R[1..ϕ] written during
// phase ϕ) as it goes and returns an error if the trace violates it.
func AnalyzePhases(events []TraceEvent) (*PhaseReport, error) {
	rep := &PhaseReport{}
	phase := 0
	var writtenInPhase map[int]bool
	cur := func() *PhaseStats {
		if phase == 0 {
			return nil
		}
		return &rep.PerPhase[phase-1]
	}
	startPhase := func(p int) {
		for phase < p {
			phase++
			rep.PerPhase = append(rep.PerPhase, PhaseStats{Phase: phase, MaxReg: -1})
		}
		writtenInPhase = make(map[int]bool)
	}
	for _, ev := range events {
		switch {
		case ev.Scan != nil:
			if ev.Scan.MyRnd+1 > phase {
				startPhase(ev.Scan.MyRnd + 1)
			}
		case ev.Write != nil:
			w := ev.Write
			if phase == 0 {
				// No scan recorded yet: the write to R[1] that starts the
				// visible part of phase 1 is always preceded by a scan by
				// the same getTS, so this indicates a truncated trace.
				return nil, fmt.Errorf("sqrt: write %+v before any scan", *w)
			}
			// Claim 6.8: only registers R[1..ϕ] (0-based 0..ϕ-1) are
			// written during phase ϕ.
			if w.Reg > phase-1 {
				return nil, fmt.Errorf("sqrt: phase %d wrote register index %d, violating Claim 6.8", phase, w.Reg)
			}
			st := cur()
			st.Writes++
			rep.TotalWrites++
			if w.Reg > st.MaxReg {
				st.MaxReg = w.Reg
			}
			if !writtenInPhase[w.Reg] {
				writtenInPhase[w.Reg] = true
				st.Invalidations++
				rep.InvalidationWrites++
			}
		}
	}
	rep.Phases = phase
	return rep, nil
}

// VerifyCompletedPhases checks Claim 6.10 on the report: every completed
// phase ϕ (all but the last started phase) has exactly ϕ invalidation
// writes.
func VerifyCompletedPhases(rep *PhaseReport) error {
	for _, st := range rep.PerPhase {
		if st.Phase == rep.Phases {
			continue // the final phase may be incomplete
		}
		if st.Invalidations != st.Phase {
			return fmt.Errorf("sqrt: completed phase %d has %d invalidation writes, want %d (Claim 6.10)",
				st.Phase, st.Invalidations, st.Phase)
		}
	}
	return nil
}
