package sqrt_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

// newSim builds a one-shot (one call per process) simulated system for alg
// through the engine — the replacement for the deleted runner shims.
func newSim(alg timestamp.Algorithm, n int) (*sched.System, *hbcheck.Recorder[timestamp.Timestamp]) {
	sys, rec, _ := engine.NewSimSystem(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.OneShot{},
	})
	return sys, rec
}

// driver drives one-shot getTS calls, one per process, through the
// deterministic scheduler with fine-grained control.
type driver struct {
	t   *testing.T
	sys *sched.System
	rec *hbcheck.Recorder[timestamp.Timestamp]
	alg *sqrt.Alg
}

func newDriver(t *testing.T, alg *sqrt.Alg, n int) *driver {
	t.Helper()
	sys, rec := newSim(alg, n)
	t.Cleanup(sys.Close)
	return &driver{t: t, sys: sys, rec: rec, alg: alg}
}

// solo runs pid to completion and returns its timestamp.
func (d *driver) solo(pid int) timestamp.Timestamp {
	d.t.Helper()
	if _, err := d.sys.Solo(pid); err != nil {
		d.t.Fatalf("solo p%d: %v", pid, err)
	}
	if err := d.sys.Err(pid); err != nil {
		d.t.Fatalf("p%d failed: %v", pid, err)
	}
	res, ok := d.sys.Result(pid)
	if !ok {
		d.t.Fatalf("p%d did not finish", pid)
	}
	return res.([]timestamp.Timestamp)[0]
}

// parkAtWrite runs pid until poised to write register reg.
func (d *driver) parkAtWrite(pid, reg int) {
	d.t.Helper()
	ok, err := d.sys.RunUntil(pid, func(op sched.Op) bool {
		return op.Kind == sched.OpWrite && op.Reg == reg
	})
	if err != nil {
		d.t.Fatalf("park p%d at r%d: %v", pid, reg, err)
	}
	if !ok {
		d.t.Fatalf("p%d terminated before writing r%d", pid, reg)
	}
}

// release executes the parked write and completes the process.
func (d *driver) release(pid int) timestamp.Timestamp {
	d.t.Helper()
	if _, err := d.sys.Step(pid); err != nil {
		d.t.Fatalf("release p%d: %v", pid, err)
	}
	return d.solo(pid)
}

func ts(rnd, turn int64) timestamp.Timestamp { return timestamp.Timestamp{Rnd: rnd, Turn: turn} }

// The §6.1 stale-writer scenario: a getTS poised to invalidate R[1] in
// phase 2 sleeps; phases advance to 4; on waking, its write invalidates
// R[1] *for phase 4*, burning timestamp (4,1): the next getTS returns
// (4,2) and nobody ever receives (4,1). "Damage is confined to at most one
// such wasted timestamp per getTS()."
func TestScenarioStaleWriterBurnsOneTimestamp(t *testing.T) {
	alg := sqrt.NewBounded(9)
	d := newDriver(t, alg, 9)

	want := func(pid int, exp timestamp.Timestamp) {
		t.Helper()
		if got := d.solo(pid); got != exp {
			t.Fatalf("p%d returned %v, want %v", pid, got, exp)
		}
	}

	want(0, ts(1, 0)) // opens phase 1
	want(1, ts(2, 0)) // opens phase 2

	// p2 runs until poised to invalidate R[1] (register index 0) — then
	// sleeps.
	d.parkAtWrite(2, 0)

	want(3, ts(2, 1)) // takes the invalidation p2 was about to perform
	want(4, ts(3, 0)) // opens phase 3
	want(5, ts(3, 1))
	want(6, ts(3, 2))
	want(7, ts(4, 0)) // opens phase 4

	// p2 wakes in phase 4: its write lands, it returns its phase-2
	// timestamp (2,1) — a duplicate of p3's, legal because the two calls
	// overlap.
	if got := d.release(2); got != ts(2, 1) {
		t.Fatalf("stale p2 returned %v, want (2, 1)", got)
	}

	// The stale write invalidated R[1] for phase 4: p8 skips turn 1
	// (repairing R[1] on the way, line 11) and returns (4, 2). Timestamp
	// (4,1) was burned.
	if got := d.solo(8); got != ts(4, 2) {
		t.Fatalf("p8 returned %v, want (4, 2): the stale write should burn (4,1)", got)
	}

	if err := hbcheck.CheckRecorder(d.rec, alg.Compare); err != nil {
		t.Fatalf("happens-before violated: %v", err)
	}
}

// The §6.1 line-15 race, benign form: two getTS instances scan the same
// state and both install R[2]; both return (2,0) (they are concurrent) and
// the phase proceeds correctly whichever write lands last.
func TestScenarioScanRaceDuplicatePhaseStart(t *testing.T) {
	alg := sqrt.NewBounded(4)
	d := newDriver(t, alg, 4)

	if got := d.solo(0); got != ts(1, 0) {
		t.Fatalf("p0 = %v", got)
	}

	// p1 and p2 both run to their line-15 write of R[2] (index 1).
	d.parkAtWrite(1, 1)
	d.parkAtWrite(2, 1)

	if got := d.release(1); got != ts(2, 0) {
		t.Fatalf("p1 = %v, want (2,0)", got)
	}
	if got := d.release(2); got != ts(2, 0) {
		t.Fatalf("p2 = %v, want (2,0) (racing scanner)", got)
	}
	// The racing overwrite must not disturb later callers.
	if got := d.solo(3); got != ts(2, 1) {
		t.Fatalf("p3 = %v, want (2,1)", got)
	}
	if err := hbcheck.CheckRecorder(d.rec, alg.Compare); err != nil {
		t.Fatalf("happens-before violated: %v", err)
	}
}

// sixOneRace drives the full dangerous interleaving of §6.1: two line-15
// writers with *different* views race; the out-of-date view lands second
// and would make already-invalidated registers valid again. With the
// line 10–11 repair the later walker keeps them invalid; without it the
// execution returns (3,1) after (3,2) — a specification violation.
//
// Schedule (paper notation, R[i] is mem index i−1):
//
//	p0 (1,0); p1 (2,0); p2 (2,1) invalidates R[1];
//	p3 walks to its line-15 write of R[3] — scan saw R[1]=⟨p2,2⟩ — parked;
//	p4 parked poised to invalidate R[1] with ⟨p4,2⟩ (stale);
//	release p4: R[1) now ⟨p4,2⟩, p4 returns (2,1) (dup, concurrent);
//	p5 walks to line-15 of R[3] — scan saw R[1]=⟨p4,2⟩ (fresher view);
//	release p3 first (stale view wins the race is NOT the dangerous order;
//	here the dangerous order is: p3 (stale) writes FIRST, "a" runs, then
//	p5 (fresh)... per §6.1 the danger is the baseline flipping validity
//	back; the repair must keep R[1] invalid either way);
//	p6 ("a"): sees R[1] invalid; repaired variant overwrites ⟨p6,3⟩ and
//	returns (3,2) [it takes R[2], the first valid register];
//	release p5: baseline flips to the view where R[1) holds ⟨p4,2⟩;
//	p7 ("b"): with repair R[1] stays invalid (⟨p6,3⟩ ≠ baseline ⟨p4⟩):
//	returns (4,0) eventually; without repair R[1] reads valid again and b
//	returns (3,1) < a's (3,2): violation.
func sixOneRace(t *testing.T, alg *sqrt.Alg) (aTS, bTS timestamp.Timestamp, hbErr error) {
	t.Helper()
	d := newDriver(t, alg, 8)

	mustEq := func(got, exp timestamp.Timestamp, who string) {
		t.Helper()
		if got != exp {
			t.Fatalf("%s returned %v, want %v", who, got, exp)
		}
	}

	mustEq(d.solo(0), ts(1, 0), "p0")
	mustEq(d.solo(1), ts(2, 0), "p1")

	// p4 poises to invalidate R[1] (index 0) while it is still valid — the
	// "old write" that will land between the two scans.
	d.parkAtWrite(4, 0)

	mustEq(d.solo(2), ts(2, 1), "p2")

	// p3: out-of-date scanner. Park at its line-15 write to R[3] (index 2);
	// its scan saw R[1] = ⟨p2, 2⟩.
	d.parkAtWrite(3, 2)

	// The old write lands: R[1] becomes ⟨p4, 2⟩; p4 returns the duplicate
	// (2,1) (legal: concurrent with p2).
	mustEq(d.release(4), ts(2, 1), "p4 (stale, duplicate of p2)")

	// p5: fresh scanner of the same phase boundary.
	d.parkAtWrite(5, 2)

	// Dangerous order: stale view p3 writes first and completes...
	mustEq(d.release(3), ts(3, 0), "p3")

	// "a" = p6 runs now, with p3's stale baseline in R[3].
	aTS = d.solo(6)

	// ...then the fresh-view p5 lands its R[3] write (the §6.1 flip).
	mustEq(d.release(5), ts(3, 0), "p5 (racing scanner)")

	// "b" = p7.
	bTS = d.solo(7)

	return aTS, bTS, hbcheck.CheckRecorder(d.rec, alg.Compare)
}

func TestScenario61RepairHolds(t *testing.T) {
	a, b, err := sixOneRace(t, sqrt.NewBounded(8))
	if err != nil {
		t.Fatalf("repaired algorithm violated the spec: %v", err)
	}
	// a completed before b started: b must compare after a.
	if !timestamp.Less(a, b) {
		t.Fatalf("a=%v b=%v: not increasing", a, b)
	}
	t.Logf("repaired: a=%v then b=%v ✓", a, b)
}

func TestScenario61BrokenVariantViolates(t *testing.T) {
	a, b, err := sixOneRace(t, sqrt.NewWithoutRepair(8))
	if err == nil {
		// The broken variant must produce the §6.1 anomaly; if the checker
		// passed, the interleaving did not exercise the bug.
		t.Fatalf("expected a happens-before violation, got none (a=%v b=%v)", a, b)
	}
	var v hbcheck.Violation[timestamp.Timestamp]
	if !errors.As(err, &v) {
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	t.Logf("broken variant caught as expected: %v", v)
	if !timestamp.Less(b, a) {
		t.Fatalf("expected b=%v < a=%v (the §6.1 inversion)", b, a)
	}
}

// Sanity: the broken variant still passes sequential use (the bug needs
// the race), so the checker result above is attributable to the repair.
func TestBrokenVariantSequentiallyFine(t *testing.T) {
	alg := sqrt.NewWithoutRepair(12)
	got, err := engine.SequentialTimestamps[timestamp.Timestamp](alg, 12, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := timestamp.CheckStrictlyIncreasing(got, alg.Compare); err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "sqrt-broken-norepair" {
		t.Errorf("Name = %q", alg.Name())
	}
}

// Exhaustive cross-check: all interleavings of 2 processes are fine even
// for the broken variant (the §6.1 bug needs ≥ 3 participants and a
// developed phase structure).
func TestBrokenVariantTwoProcExhaustive(t *testing.T) {
	if _, err := engine.Explore(engine.Config[timestamp.Timestamp]{
		Alg:      sqrt.NewWithoutRepair(2),
		World:    engine.Simulated,
		N:        2,
		Workload: engine.OneShot{},
	}, 3000, 10_000); err != nil {
		t.Fatal(err)
	}
}

func ExampleAlg_GetTS() {
	alg := sqrt.New(9) // one-shot object for 9 processes: ⌈2√9⌉ = 6 registers
	mem := timestamp.NewMem(alg)
	for pid := 0; pid < 4; pid++ {
		t, _ := alg.GetTS(mem, pid, 0)
		fmt.Println(t)
	}
	// Output:
	// (1, 0)
	// (2, 0)
	// (2, 1)
	// (3, 0)
}

// Randomized sweep of the §6.3 claims: many seeded batched-concurrency
// schedules, each trace checked against Claims 6.8, 6.10 and 6.13, the
// space budget, and the happens-before property.
func TestRandomizedPhaseInvariants(t *testing.T) {
	const n = 24
	for seed := int64(1); seed <= 30; seed++ {
		alg := sqrt.New(n)
		tracer := &sqrt.ChronoTracer{}
		alg.SetTracer(tracer)
		sys, rec := newSim(alg, n)
		rng := rand.New(rand.NewSource(seed))
		// Batches of random size 1..4 run concurrently; batches run in
		// sequence, so phases develop while real races still occur.
		next := 0
		for next < n {
			size := 1 + rng.Intn(4)
			if next+size > n {
				size = n - next
			}
			members := make([]int, size)
			for i := range members {
				members[i] = next + i
			}
			next += size
			for len(members) > 0 {
				k := rng.Intn(len(members))
				pid := members[k]
				if _, alive, err := sys.Pending(pid); err != nil {
					t.Fatal(err)
				} else if !alive {
					members = append(members[:k], members[k+1:]...)
					continue
				}
				if _, err := sys.Step(pid); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
		for pid := 0; pid < n; pid++ {
			if err := sys.Err(pid); err != nil {
				t.Fatalf("seed %d: p%d: %v", seed, pid, err)
			}
		}
		if err := hbcheck.CheckRecorder(rec, alg.Compare); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := sqrt.AnalyzePhases(tracer.Events())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sqrt.VerifyCompletedPhases(rep); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.InvalidationWrites > 2*n {
			t.Fatalf("seed %d: invalidation writes %d > 2M", seed, rep.InvalidationWrites)
		}
		if rep.Phases > alg.Registers()-1 {
			t.Fatalf("seed %d: %d phases exceed budget", seed, rep.Phases)
		}
		sys.Close()
	}
}

// Lemma 2.1 made executable on Algorithm 4: in the initial configuration
// every process covers R[1] (its first write installs the phase-1 marker),
// so three disjoint singleton sets B0, B1, B2 cover R = {R[1]}. The lemma
// says that for some i ∈ {0,1}, every Ui-only execution from πBi(C)
// containing a complete getTS writes outside R. Here both sides do: after
// the block write the solo process finds phase 1 open and installs R[2].
func TestLemma21OnSqrt(t *testing.T) {
	for i := 0; i < 2; i++ {
		alg := sqrt.New(5)
		sys, _ := newSim(alg, 5)

		// p0, p1, p2 are B0, B1, B2: run each until poised to write; all
		// must cover register 0 (paper R[1]).
		for pid := 0; pid <= 2; pid++ {
			ok, err := sys.RunUntil(pid, func(op sched.Op) bool { return op.Kind == sched.OpWrite })
			if err != nil || !ok {
				t.Fatalf("p%d: ok=%v err=%v", pid, ok, err)
			}
			reg, covers, err := sys.Covers(pid)
			if err != nil || !covers || reg != 0 {
				t.Fatalf("p%d covers (r%d, %v, %v), want r0", pid, reg, covers, err)
			}
		}
		// Block write by B_i = {p_i}.
		if err := sys.BlockWrite(i); err != nil {
			t.Fatal(err)
		}
		// U_i = {p3+i} runs a complete solo getTS; it must write outside
		// R = {r0}.
		q := 3 + i
		if _, err := sys.Solo(q); err != nil {
			t.Fatal(err)
		}
		wroteOutside := false
		for _, op := range sys.Trace() {
			if op.Pid == q && op.Kind == sched.OpWrite && op.Reg != 0 {
				wroteOutside = true
			}
		}
		if !wroteOutside {
			t.Errorf("i=%d: solo getTS by p%d never wrote outside R", i, q)
		}
		sys.Close()
	}
}

// Wait-freedom witness (Lemma 6.14): the shared-memory step count of every
// getTS is bounded. The while-loop costs ≤ m reads, the for-loop ≤ m−2
// iterations of ≤ 2 reads + 1 write, and the scan's collects are bounded
// because every concurrent getTS writes < m times: with M total calls a
// scan retries at most (M−1)(m−1) times. We assert the much tighter
// empirical envelope 4m + 2m·(retries possible in our schedules) by
// measuring the true maximum across random schedules and checking it
// against the analytic worst case.
func TestWaitFreeStepBound(t *testing.T) {
	const n = 20
	alg := sqrt.New(n)
	m := alg.Registers()
	analytic := 2*m + 3*m + 2*m*(1+(n-1)*(m-1)) // loose Lemma 6.14 envelope

	maxSteps := 0
	for seed := int64(1); seed <= 10; seed++ {
		sys, _ := newSim(alg, n)
		rng := rand.New(rand.NewSource(seed))
		live := map[int]bool{}
		for pid := 0; pid < n; pid++ {
			live[pid] = true
		}
		for len(live) > 0 {
			// Pick a random live process.
			var pids []int
			for pid := range live {
				pids = append(pids, pid)
			}
			sort.Ints(pids)
			pid := pids[rng.Intn(len(pids))]
			if _, alive, err := sys.Pending(pid); err != nil {
				t.Fatal(err)
			} else if !alive {
				delete(live, pid)
				continue
			}
			if _, err := sys.Step(pid); err != nil {
				t.Fatal(err)
			}
		}
		perPid := map[int]int{}
		for _, op := range sys.Trace() {
			perPid[op.Pid]++
		}
		for _, c := range perPid {
			if c > maxSteps {
				maxSteps = c
			}
		}
		sys.Close()
	}
	if maxSteps > analytic {
		t.Errorf("max steps per getTS = %d exceeds the Lemma 6.14 envelope %d", maxSteps, analytic)
	}
	t.Logf("max shared-memory steps per getTS: %d (m=%d, analytic envelope %d)", maxSteps, m, analytic)
}

// The line-12 exit, the other half of §6.1's "damage confinement": a
// getTS that observes the phase advanced at a line-6 check terminates with
// (myrnd+1, 0) WITHOUT writing anything. Choreography: reach phase 3, let
// (3,1) be taken so R[1] is invalid; park p5 (myrnd=3) just before its
// second line-6 read (iteration j=2); let (3,2) and (4,0) complete; resume
// p5: its read sees R[4] ≠ ⊥ and it returns (4,0) with zero writes.
func TestScenarioLine12ExitWithoutWriting(t *testing.T) {
	alg := sqrt.NewBounded(9)
	d := newDriver(t, alg, 9)

	want := func(pid int, exp timestamp.Timestamp) {
		t.Helper()
		if got := d.solo(pid); got != exp {
			t.Fatalf("p%d returned %v, want %v", pid, got, exp)
		}
	}
	want(0, ts(1, 0))
	want(1, ts(2, 0))
	want(2, ts(2, 1))
	want(3, ts(3, 0))
	want(4, ts(3, 1)) // invalidates paper R[1], so p5's j=1 iteration fails

	// p5: myrnd = 3. Its j=1 iteration performs the line-6 read of mem[3]
	// and the line-7/10 read of mem[0] (invalid, rnd=3: no repair). Park it
	// at its SECOND line-6 read of mem[3] (iteration j=2).
	parkAtRead := func(pid, reg, skip int) {
		t.Helper()
		for i := 0; i <= skip; i++ {
			ok, err := d.sys.RunUntil(pid, func(op sched.Op) bool {
				return op.Kind == sched.OpRead && op.Reg == reg
			})
			if err != nil || !ok {
				t.Fatalf("park p%d at read r%d (#%d): ok=%v err=%v", pid, reg, i, ok, err)
			}
			if i < skip {
				if _, err := d.sys.Step(pid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	parkAtRead(5, 3, 1)

	want(6, ts(3, 2)) // takes the register p5 was heading for
	want(7, ts(4, 0)) // installs R[4]: the phase advances

	// Resume p5: the pending line-6 read executes, sees R[4] ≠ ⊥, and p5
	// exits via line 12 with (myrnd+1, 0) = (4, 0) — a duplicate of p7's,
	// legal because they overlap — having written nothing.
	if got := d.solo(5); got != ts(4, 0) {
		t.Fatalf("p5 = %v, want (4, 0) via line 12", got)
	}
	for _, op := range d.sys.Trace() {
		if op.Pid == 5 && op.Kind == sched.OpWrite {
			t.Fatalf("p5 wrote %v; the line-12 path writes nothing", op)
		}
	}
	if err := hbcheck.CheckRecorder(d.rec, alg.Compare); err != nil {
		t.Fatalf("happens-before violated: %v", err)
	}
}
