// Package sqrt implements Algorithms 3 and 4 of the paper (§6): a
// wait-free timestamp object for at most M getTS() invocations using
// m = ⌈2√M⌉ multi-writer multi-reader registers. Specialized to one-shot
// use (M = n processes, one call each) it uses ⌈2√n⌉ registers, matching
// the Ω(√n) lower bound of Theorem 1.2 and establishing Theorem 1.3.
//
// Timestamps are pairs (rnd, turn) compared lexicographically (Algorithm
// 3). Registers hold ⊥ or a pair ⟨seq, rnd⟩ where seq is a sequence of
// getTS-ids and rnd a positive integer. The execution proceeds in phases;
// during phase k registers R[1..k−1] are non-⊥ and a getTS either
// invalidates the first register still valid for the phase (returning
// (k, j)) or, finding none, scans and installs R[k], starting phase k+1
// (returning (k+1, 0), possibly without writing if another getTS
// installed R[k] first).
//
// The package follows the paper's one-read-per-iteration reading of lines
// 7–11: a single read of R[j] supplies both the validity test (line 7) and
// the rnd guard (line 10), exactly as Lemma 6.4's proof describes
// ("when getTS(p) fails at iteration j, it reads R[j] (line 10)").
//
// Registers here are 0-based: paper register R[j] is mem index j−1.
package sqrt

import (
	"fmt"
	"math"

	"tsspace/internal/register"
	"tsspace/internal/snapshot"
	"tsspace/internal/timestamp"
)

// ID identifies a getTS instance: the paper's "p.k" (process p's k-th
// invocation). For one-shot objects Seq is always 0 and the ID reduces to
// the process identifier, as §6.1 notes.
type ID struct {
	Pid int
	Seq int
}

// String renders the id as "p.k".
func (id ID) String() string { return fmt.Sprintf("%d.%d", id.Pid, id.Seq) }

// Cell is the non-⊥ register content ⟨seq, rnd⟩: a sequence of getTS-ids
// and a positive integer. Cells are immutable once written.
type Cell struct {
	Seq []ID
	Rnd int
}

// Last returns last(seq), the final element of the id sequence.
func (c *Cell) Last() ID { return c.Seq[len(c.Seq)-1] }

// String renders the cell as ⟨seq, rnd⟩.
func (c *Cell) String() string { return fmt.Sprintf("⟨%v, %d⟩", c.Seq, c.Rnd) }

// RegistersFor returns m = f(M) = ⌈2√M⌉, the register budget Lemma 6.5
// proves sufficient for M getTS() invocations (the last register is a
// sentinel that is read but never written).
func RegistersFor(m int) int {
	return int(math.Ceil(2 * math.Sqrt(float64(m))))
}

// Alg is the Algorithm 4 timestamp object.
type Alg struct {
	maxCalls      int
	m             int
	oneShot       bool
	noRepair      bool
	versionedScan bool
	tracer        Tracer
}

var _ timestamp.Algorithm = (*Alg)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:    "sqrt",
		Summary: "one-shot object on ⌈2√n⌉ registers (Algorithms 3–4, Theorem 1.3 — space-optimal)",
		New:     func(n int) timestamp.Algorithm { return New(n) },
		OneShot: true,
	})
	timestamp.Register(timestamp.Info{
		Name:    "sqrt-broken-norepair",
		Summary: "Algorithm 4 without the line 10–11 repair (reproduces the §6.1 failure mode)",
		New:     func(n int) timestamp.Algorithm { return NewWithoutRepair(n) },
		Mutant:  true,
	})
}

// New returns the one-shot object for n processes: M = n, one getTS() per
// process, ⌈2√n⌉ registers (Theorem 1.3).
func New(n int) *Alg {
	if n < 1 {
		panic(fmt.Sprintf("sqrt: invalid process count %d", n))
	}
	return &Alg{maxCalls: n, m: RegistersFor(n), oneShot: true}
}

// NewBounded returns the M-bounded long-lived object (§6 header, §7): any
// process may call getTS() repeatedly as long as the total number of
// invocations does not exceed M.
func NewBounded(maxCalls int) *Alg {
	if maxCalls < 1 {
		panic(fmt.Sprintf("sqrt: invalid call budget %d", maxCalls))
	}
	return &Alg{maxCalls: maxCalls, m: RegistersFor(maxCalls), oneShot: false}
}

// SetTracer installs a tracer observing internal events (writes with their
// line numbers, scans with their myrnd). Must be set before any GetTS call;
// nil disables tracing.
func (a *Alg) SetTracer(t Tracer) { a.tracer = t }

// UseVersionedScan switches line 13 from the paper's value-equality double
// collect (sound by the per-register value distinctness of Claim 6.1(b))
// to the version-stamped double collect, which is sound for any value
// universe. This is an ablation knob: both scans are linearizable here, so
// behaviour is identical and only the equality test's cost differs (see
// BenchmarkAblationScan). Must be set before any GetTS call.
func (a *Alg) UseVersionedScan(on bool) { a.versionedScan = on }

// NewWithoutRepair returns a deliberately broken M-bounded variant that
// omits the line 10–11 repair ("getTS(a) overwrites register R[i] with
// ⟨a, k⟩ only when it read rnd_i < k", §6.1). Without the repair, a
// line-15 writer with an out-of-date view can make already-invalidated
// registers valid again, and a later getTS returns a timestamp smaller
// than an earlier completed one — the exact failure mode §6.1 describes.
// It exists so tests can reproduce that execution and show the
// happens-before checker catches it; never use it for real work.
func NewWithoutRepair(maxCalls int) *Alg {
	a := NewBounded(maxCalls)
	a.noRepair = true
	return a
}

// Name implements timestamp.Algorithm.
func (a *Alg) Name() string {
	switch {
	case a.noRepair:
		return "sqrt-broken-norepair"
	case a.oneShot:
		return "sqrt"
	default:
		return "sqrt-bounded"
	}
}

// Registers returns ⌈2√M⌉.
func (a *Alg) Registers() int { return a.m }

// MaxCalls returns the total getTS() budget M.
func (a *Alg) MaxCalls() int { return a.maxCalls }

// OneShot reports whether the object was built with New (one call per
// process) rather than NewBounded.
func (a *Alg) OneShot() bool { return a.oneShot }

// WriterTable returns nil: registers are multi-writer.
func (a *Alg) WriterTable() [][]int { return nil }

// Compare is Algorithm 3: lexicographic order on (rnd, turn).
func (a *Alg) Compare(t1, t2 timestamp.Timestamp) bool {
	return timestamp.Less(t1, t2)
}

// GetTS is Algorithm 4. Line numbers in comments refer to the paper's
// pseudocode.
func (a *Alg) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if a.oneShot && seq != 0 {
		return timestamp.Timestamp{}, timestamp.ErrOneShot
	}
	if mem.Size() < a.m {
		return timestamp.Timestamp{}, fmt.Errorf("sqrt: memory has %d registers, need %d", mem.Size(), a.m)
	}
	id := ID{Pid: pid, Seq: seq}

	// Lines 1–4: find myrnd, the number of non-⊥ registers, collecting
	// local views r[0..myrnd-1] along the way.
	r := make([]*Cell, a.m)
	j := 0
	for {
		if j >= a.m {
			// The while-loop ran off the array: more than M getTS() calls
			// were issued (Lemma 6.5 guarantees the sentinel R[m] stays ⊥
			// within budget).
			return timestamp.Timestamp{}, timestamp.ErrBudget
		}
		v := mem.Read(j)
		if v == nil {
			break
		}
		r[j] = v.(*Cell)
		j++
	}
	myrnd := j // paper's myrnd; register R[myrnd+1] (paper) is mem index myrnd

	// Lines 5–12: look for the first valid register and invalidate it.
	for jj := 1; jj <= myrnd-1; jj++ { // paper's loop variable j; register index jj-1
		// Line 6: if R[myrnd+1] == ⊥ — re-checked every iteration so a
		// stale getTS wastes at most one timestamp after the phase advances.
		if mem.Read(myrnd) != nil {
			return timestamp.Timestamp{Rnd: int64(myrnd) + 1, Turn: 0}, nil // line 12
		}
		// One read of R[j] serves lines 7 and 10.
		vj, ok := mem.Read(jj - 1).(*Cell)
		if !ok {
			// Registers never return to ⊥ (Claim 6.1(a)); a nil here means
			// the memory was corrupted externally.
			return timestamp.Timestamp{}, fmt.Errorf("sqrt: register %d regressed to ⊥", jj-1)
		}
		if a.validAt(r[myrnd-1], jj, vj) {
			// Line 7 true: R[j] is valid for this phase. Line 8: invalidate
			// it by making last(R[j].seq) differ from r[myrnd].seq[j].
			a.write(mem, 8, id, jj-1, &Cell{Seq: []ID{id}, Rnd: myrnd})
			return timestamp.Timestamp{Rnd: int64(myrnd), Turn: int64(jj)}, nil // line 9
		}
		if vj.Rnd < myrnd && !a.noRepair {
			// Line 10 true: the invalidation is due to an old write from an
			// earlier phase; overwrite (line 11) so R[j] stays invalid for
			// the rest of the phase.
			a.write(mem, 11, id, jj-1, &Cell{Seq: []ID{id}, Rnd: myrnd})
		}
	}

	// Line 13: scan (double collect; wait-free here because each getTS()
	// writes at most m−1 times, Lemma 6.14).
	view, err := a.scan(mem)
	if err != nil {
		return timestamp.Timestamp{}, fmt.Errorf("sqrt: %w", err)
	}
	if a.tracer != nil {
		a.tracer.OnScan(ScanEvent{Pid: pid, Seq: seq, MyRnd: myrnd})
	}
	// Line 14: if r[myrnd+1] == ⊥ in the scanned view.
	if view[myrnd] == nil {
		// Line 15: install R[myrnd+1] = ⟨(last(r[1].seq), …,
		// last(r[myrnd].seq), ID), myrnd+1⟩, starting phase myrnd+1.
		seqs := make([]ID, 0, myrnd+1)
		for k := 0; k < myrnd; k++ {
			c, ok := view[k].(*Cell)
			if !ok {
				return timestamp.Timestamp{}, fmt.Errorf("sqrt: scanned register %d regressed to ⊥", k)
			}
			seqs = append(seqs, c.Last())
		}
		seqs = append(seqs, id)
		a.write(mem, 15, id, myrnd, &Cell{Seq: seqs, Rnd: myrnd + 1})
	}
	return timestamp.Timestamp{Rnd: int64(myrnd) + 1, Turn: 0}, nil // line 16
}

// validAt evaluates line 7: r[myrnd].seq[j] == last(R[j].seq), where rm is
// the local view of R[myrnd] and jj the paper's 1-based j. A short seq
// (defensively impossible while the phase invariant holds) counts as
// invalid.
func (a *Alg) validAt(rm *Cell, jj int, vj *Cell) bool {
	if rm == nil || jj > len(rm.Seq) {
		return false
	}
	return rm.Seq[jj-1] == vj.Last()
}

// scan dispatches line 13 to the configured double-collect flavour. The
// versioned variant requires the memory to support versioned reads (the
// atomic array does; the simulated memory does not, so the ablation runs
// on real memory only).
func (a *Alg) scan(mem register.Mem) ([]register.Value, error) {
	if a.versionedScan {
		vm, ok := mem.(register.VersionedMem)
		if !ok {
			return nil, fmt.Errorf("sqrt: versioned scan needs a VersionedMem, have %T", mem)
		}
		return snapshot.ScanVersioned(vm)
	}
	return snapshot.Scan(mem)
}

func (a *Alg) write(mem register.Mem, line int, id ID, reg int, c *Cell) {
	mem.Write(reg, c)
	if a.tracer != nil {
		a.tracer.OnWrite(WriteEvent{Line: line, Pid: id.Pid, Seq: id.Seq, Reg: reg, Rnd: c.Rnd})
	}
}
