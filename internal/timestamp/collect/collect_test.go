package collect

import (
	"fmt"
	"testing"
	"testing/quick"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

func TestSequentialCountsUp(t *testing.T) {
	const n = 5
	alg := New(n)
	mem := timestamp.NewMem(alg)
	for k := 0; k < 3*n; k++ {
		pid := k % n
		ts, err := alg.GetTS(mem, pid, k/n)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Rnd != int64(k+1) {
			t.Errorf("call %d: ts = %v, want (%d, 0)", k, ts, k+1)
		}
	}
}

func TestLongLived(t *testing.T) {
	alg := New(2)
	if alg.OneShot() {
		t.Error("collect must be long-lived")
	}
	mem := timestamp.NewMem(alg)
	var prev timestamp.Timestamp
	for seq := 0; seq < 10; seq++ {
		ts, err := alg.GetTS(mem, 0, seq)
		if err != nil {
			t.Fatal(err)
		}
		if seq > 0 && !alg.Compare(prev, ts) {
			t.Errorf("seq %d: %v not after %v", seq, ts, prev)
		}
		prev = ts
	}
}

// Register values are monotone non-decreasing: the invariant the
// happens-before argument rests on.
func TestRegisterMonotonicity(t *testing.T) {
	const n = 4
	alg := New(n)
	mem := register.NewAtomicArray(n)
	last := make([]int64, n)
	for k := 0; k < 40; k++ {
		pid := (k * 7) % n
		if _, err := alg.GetTS(mem, pid, k); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			v := mem.Read(i)
			if v == nil {
				continue
			}
			x := v.(int64)
			if x < last[i] {
				t.Fatalf("register %d decreased: %d -> %d", i, last[i], x)
			}
			last[i] = x
		}
	}
}

func TestWriterTableIsSWMR(t *testing.T) {
	table := New(3).WriterTable()
	for i, ws := range table {
		if len(ws) != 1 || ws[0] != i {
			t.Errorf("register %d writers %v, want [%d]", i, ws, i)
		}
	}
}

func TestPidValidation(t *testing.T) {
	alg := New(2)
	mem := timestamp.NewMem(alg)
	if _, err := alg.GetTS(mem, 5, 0); err == nil {
		t.Error("pid out of range accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

// Property: any sequential call pattern (random pids) yields timestamps
// 1, 2, 3, … — the object behaves as a counter under sequential access.
func TestQuickSequentialIsCounter(t *testing.T) {
	f := func(pids []uint8) bool {
		n := 8
		alg := New(n)
		mem := timestamp.NewMem(alg)
		seqs := make([]int, n)
		for k, p := range pids {
			pid := int(p) % n
			ts, err := alg.GetTS(mem, pid, seqs[pid])
			seqs[pid]++
			if err != nil || ts.Rnd != int64(k+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetTS(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := New(n)
			mem := timestamp.NewMem(alg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alg.GetTS(mem, i%n, i/n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
