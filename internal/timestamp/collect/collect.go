// Package collect implements the classic long-lived wait-free unbounded
// timestamp object from n single-writer registers: getTS() collects all
// registers, takes the maximum plus one, writes it to the caller's own
// register, and returns it; compare is integer order.
//
// This is the Θ(n)-space upper-bound family the paper's Theorem 1.1 is
// matched against (Ellen, Fatourou and Ruppert's refinement brings it to
// n−1 registers using a dense timestamp universe; see the sibling package
// dense). The timestamps are static and drawn from ℕ, a nowhere dense set,
// so by Ellen et al. n registers are also necessary for this variant —
// making collect exactly optimal in its class.
package collect

import (
	"fmt"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// Alg is the n-register long-lived collect algorithm.
type Alg struct {
	n int
}

var _ timestamp.Algorithm = (*Alg)(nil)

func init() {
	timestamp.Register(timestamp.Info{
		Name:         "collect",
		Summary:      "long-lived collect over n single-writer registers (Θ(n), exactly optimal for static timestamps)",
		New:          func(n int) timestamp.Algorithm { return New(n) },
		ExploreCalls: 2, // the long-lived guarantees only bite on repeated calls
	})
}

// New returns a collect timestamp object for n processes.
func New(n int) *Alg {
	if n < 1 {
		panic(fmt.Sprintf("collect: invalid process count %d", n))
	}
	return &Alg{n: n}
}

// Name implements timestamp.Algorithm.
func (a *Alg) Name() string { return "collect" }

// Registers returns n: one single-writer register per process.
func (a *Alg) Registers() int { return a.n }

// OneShot reports false: the object is long-lived.
func (a *Alg) OneShot() bool { return false }

// WriterTable declares the single-writer discipline: register i is written
// only by process i.
func (a *Alg) WriterTable() [][]int { return register.SWMRTable(a.n) }

// GetTS collects all registers, writes max+1 to the caller's register and
// returns it.
//
// Correctness: register values are per-process maxima and thus monotone
// non-decreasing. If g1 → g2, then g2's collect starts after g1's write of
// t1, so g2 observes max ≥ t1 and returns t2 ≥ t1+1 > t1.
func (a *Alg) GetTS(mem register.Mem, pid, seq int) (timestamp.Timestamp, error) {
	if pid < 0 || pid >= a.n {
		return timestamp.Timestamp{}, fmt.Errorf("collect: pid %d out of range [0,%d)", pid, a.n)
	}
	if im, ok := mem.(register.Int64Mem); ok {
		// Scalar fast path: same algorithm, no boxing and no cell allocation.
		var max int64
		for i := 0; i < a.n; i++ {
			if x, ok := im.ReadInt64(i); ok && x > max {
				max = x
			}
		}
		ts := max + 1
		im.WriteInt64(pid, ts)
		return timestamp.Timestamp{Rnd: ts}, nil
	}
	var max int64
	for i := 0; i < a.n; i++ {
		if v := mem.Read(i); v != nil {
			if x := v.(int64); x > max {
				max = x
			}
		}
	}
	ts := max + 1
	mem.Write(pid, ts)
	return timestamp.Timestamp{Rnd: ts}, nil
}

// ScalarValued reports that every register value is an int64, so the
// object can be backed by the boxing-free scalar arrays.
func (a *Alg) ScalarValued() bool { return true }

// Compare orders timestamps by integer value.
func (a *Alg) Compare(t1, t2 timestamp.Timestamp) bool {
	return t1.Rnd < t2.Rnd
}
