package adversary

import (
	"fmt"
	"testing"

	"tsspace/internal/lowerbound"
)

func TestSequentialPhasesFormula(t *testing.T) {
	// Phase costs: phase 1 costs 1 call, phase k ≥ 2 costs k calls
	// (1 starter + k−1 invalidators), and any leftover call opens one more
	// phase.
	cases := []struct{ n, want int }{
		{1, 1},  // one call: phase 1
		{2, 2},  // second call starts phase 2
		{3, 2},  // phase 2 completes (starter + 1 invalidator)... third call is turn (2,1)
		{4, 3},  // 1 + 2 used; 4th call opens phase 3
		{6, 3},  // phase 3 served fully at 1+2+3 = 6
		{7, 4},  // 7th opens phase 4
		{10, 4}, // 1+2+3+4 = 10
		{11, 5},
	}
	for _, c := range cases {
		if got := SequentialPhases(c.n); got != c.want {
			t.Errorf("SequentialPhases(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMeasureSequentialMatchesFormula(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 16, 50, 100, 200} {
		measured, err := MeasureSequential(n)
		if err != nil {
			t.Fatal(err)
		}
		if want := SequentialPhases(n); measured != want {
			t.Errorf("n=%d: measured %d phases, formula says %d", n, measured, want)
		}
	}
}

func TestStaleReleaseBeatsSequential(t *testing.T) {
	for _, n := range []int{12, 30, 60, 120} {
		res, err := StaleRelease(n)
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases > res.Registers-1 {
			t.Errorf("n=%d: %d phases exceed the budget %d (sentinel must stay ⊥)", n, res.Phases, res.Registers)
		}
		if res.Phases < res.Sequential {
			t.Errorf("n=%d: adversary reached %d phases, below sequential %d", n, res.Phases, res.Sequential)
		}
		if len(res.Timestamps) != n {
			t.Errorf("n=%d: %d timestamps returned, want %d", n, len(res.Timestamps), n)
		}
		t.Logf("n=%d: sequential %d phases, adversarial %d phases, budget %d",
			n, res.Sequential, res.Phases, res.Registers)
	}
}

// The adversarial series stays within the ⌈2√M⌉ upper bound and above the
// √(2M)-ish sequential series — the E3 shape.
func TestShapeAgainstBounds(t *testing.T) {
	for _, n := range []int{25, 100, 225} {
		res, err := StaleRelease(n)
		if err != nil {
			t.Fatal(err)
		}
		upper := lowerbound.OneShotUpper(n)
		if res.Written >= upper {
			t.Errorf("n=%d: wrote %d registers, must be < ⌈2√n⌉ = %d", n, res.Written, upper)
		}
	}
}

func TestStaleReleaseDeterministic(t *testing.T) {
	a, err := StaleRelease(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StaleRelease(40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != b.Phases || a.Steps != b.Steps {
		t.Errorf("nondeterministic adversary: %+v vs %+v", a, b)
	}
}

func BenchmarkStaleRelease(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := StaleRelease(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestDoubleCrossMeasurements(t *testing.T) {
	for _, n := range []int{12, 30, 60, 120, 240} {
		res, err := DoubleCross(n)
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases > res.Registers-1 {
			t.Errorf("n=%d: %d phases exceed budget %d", n, res.Phases, res.Registers)
		}
		if len(res.Timestamps) != n {
			t.Errorf("n=%d: %d timestamps, want %d", n, len(res.Timestamps), n)
		}
		t.Logf("n=%d: sequential %d, doublecross %d, budget %d",
			n, res.Sequential, res.Phases, res.Registers)
	}
}

// Edge cases: the adversaries must handle degenerate sizes.
func TestAdversaryEdgeSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		if res, err := StaleRelease(n); err != nil {
			t.Errorf("StaleRelease(%d): %v", n, err)
		} else if len(res.Timestamps) != n {
			t.Errorf("StaleRelease(%d): %d timestamps", n, len(res.Timestamps))
		}
		if res, err := DoubleCross(n); err != nil {
			t.Errorf("DoubleCross(%d): %v", n, err)
		} else if len(res.Timestamps) != n {
			t.Errorf("DoubleCross(%d): %d timestamps", n, len(res.Timestamps))
		}
	}
}

func TestSequentialPhasesEdge(t *testing.T) {
	if got := SequentialPhases(0); got != 0 {
		t.Errorf("SequentialPhases(0) = %d", got)
	}
}
