package adversary

import (
	"fmt"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

// DoubleCross exercises the §6.1 line-15 race: when two getTS instances
// both scan at the end of a phase and both prepare to install R[k], the
// adversary lets the fresher view write first and the staler view write
// second, and parks every in-phase invalidation it can.
//
// Measured effect: this schedule *minimizes* space rather than maximizing
// it. Racing line-15 writers all return the duplicate timestamp (k, 0) —
// legal, because the racing calls are mutually concurrent — and parked
// invalidators never advance the phase, so arbitrarily many calls are
// served by a constant number of registers (the floor of the algorithm's
// schedule-dependent space range; the trivial extreme parks all n calls at
// their initial R[1] install and serves everyone with one register).
//
// Together with StaleRelease (which tracks the sequential √(2M) growth,
// our empirical worst case) and the analytic ⌈2√M⌉ ceiling of Lemma 6.5,
// this brackets the space behaviour of Algorithm 4 under adversarial
// scheduling; see EXPERIMENTS.md (E3).
func DoubleCross(n int) (*Result, error) {
	alg := sqrt.New(n)
	sys, rec, _ := engine.NewSimSystem(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.OneShot{},
	})
	defer sys.Close()

	res := &Result{M: n, Registers: alg.Registers()}
	nonBottom := func() int {
		k := 0
		for k < sys.M() && sys.Value(k) != nil {
			k++
		}
		return k
	}

	// scanner is a parked line-15 writer (stale view) per target register.
	type scannerT struct {
		pid int
		reg int
	}
	var scanner *scannerT
	var reservoir []parked
	nextFresh := 0

	finish := func(pid int) error {
		if _, err := sys.Step(pid); err != nil {
			return err
		}
		_, err := sys.Solo(pid)
		return err
	}

	for {
		phase := nonBottom()

		// Release stale invalidation writes from strictly older phases:
		// they burn the current phase's timestamps.
		var keep []parked
		released := false
		for _, p := range reservoir {
			if p.rnd < phase {
				if err := finish(p.pid); err != nil {
					return nil, err
				}
				released = true
			} else {
				keep = append(keep, p)
			}
		}
		reservoir = keep
		if released {
			continue
		}

		// If the parked scanner's target register has been written by
		// someone else, release it now: its stale view overwrites the
		// fresher baseline, re-invalidating the registers touched since its
		// scan.
		if scanner != nil && sys.Value(scanner.reg) != nil {
			pid := scanner.pid
			scanner = nil
			if err := finish(pid); err != nil {
				return nil, err
			}
			continue
		}

		if nextFresh >= n {
			// Flush: parked scanner first (it may open the final phase),
			// then the reservoir.
			if scanner != nil {
				if err := finish(scanner.pid); err != nil {
					return nil, err
				}
				scanner = nil
				continue
			}
			for _, p := range reservoir {
				if err := finish(p.pid); err != nil {
					return nil, err
				}
			}
			reservoir = nil
			break
		}

		pid := nextFresh
		nextFresh++
		poised, err := sys.RunUntil(pid, func(op sched.Op) bool { return op.Kind == sched.OpWrite })
		if err != nil {
			return nil, err
		}
		if !poised {
			continue
		}
		op, _, err := sys.Pending(pid)
		if err != nil {
			return nil, err
		}
		cell, ok := op.Val.(*sqrt.Cell)
		if !ok {
			return nil, fmt.Errorf("adversary: unexpected register value %T", op.Val)
		}
		switch {
		case cell.Rnd > phase && scanner == nil:
			// First line-15 writer for the next phase: park it as the
			// stale-view scanner. Phase phase+1 has now started (its scan
			// is done) but stays invisible.
			scanner = &scannerT{pid: pid, reg: op.Reg}
		case cell.Rnd > phase:
			// Second line-15 writer for the same phase: let it write (the
			// fresh view), run it out, and the parked scanner will
			// double-cross it on the next iteration.
			if err := finish(pid); err != nil {
				return nil, err
			}
		default:
			// In-phase invalidation write: park it for a later phase.
			reservoir = append(reservoir, parked{pid: pid, rnd: cell.Rnd})
		}
	}

	if err := sys.Drain(); err != nil {
		return nil, err
	}
	for pid := 0; pid < n; pid++ {
		if err := sys.Err(pid); err != nil {
			return nil, fmt.Errorf("adversary: p%d: %w", pid, err)
		}
	}
	if err := hbcheck.Check(rec.Events(), alg.Compare); err != nil {
		return nil, err
	}

	res.Phases = nonBottom()
	res.Steps = sys.Steps()
	for _, ev := range rec.Events() {
		res.Timestamps = append(res.Timestamps, ev.Val)
	}
	written := 0
	for i := 0; i < sys.M(); i++ {
		if sys.Value(i) != nil {
			written++
		}
	}
	res.Written = written
	res.Sequential = SequentialPhases(n)
	return res, nil
}
