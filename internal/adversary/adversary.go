// Package adversary drives Algorithm 4 (internal/timestamp/sqrt) through
// worst-case schedules in the deterministic scheduler, measuring how much
// of the ⌈2√M⌉ register budget an adversary can actually force.
//
// The space analysis of §6.3 charges every invalidation write to one of at
// most two writes per getTS: its first invalidation write and its last
// write (Claim 6.13, ≤ 2M in total), giving Φ(Φ+1)/2 ≤ 2M and hence
// Φ < 2√M phases. A sequential execution is far from this bound: each
// phase k consumes k getTS calls, so Φ ≈ √(2M) ≈ 0.71·(2√M). The gap is
// exactly the "stale writer" slack discussed in §6.1: a getTS paused while
// poised to write an invalidation for phase k can be released during a
// later phase k′, where its write invalidates a register of phase k′
// without consuming a fresh getTS — its one write is charged twice.
//
// StaleRelease implements that adversary: it parks every in-phase
// invalidation write it can and releases parked writers after the phase
// advances, inflating the number of phases (and therefore registers)
// toward the 2√M ceiling.
package adversary

import (
	"fmt"

	"tsspace/internal/engine"
	"tsspace/internal/hbcheck"
	"tsspace/internal/sched"
	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/sqrt"
)

// Result reports one adversarial run.
type Result struct {
	M          int // getTS budget (= processes, one-shot)
	Registers  int // allocated: ⌈2√M⌉
	Phases     int // non-⊥ registers at the end (= highest phase started)
	Written    int // distinct registers written
	Sequential int // phases a purely sequential execution reaches, for contrast
	Steps      int // scheduler steps taken
	Timestamps []timestamp.Timestamp
}

// parked is a process paused while poised to write.
type parked struct {
	pid int
	rnd int // Cell.Rnd of the pending write
}

// StaleRelease runs the one-shot sqrt object for n processes under the
// stale-writer adversary and returns the measured space. The execution is
// deterministic. The returned timestamps passed the happens-before check
// implied by construction (each process runs a complete getTS; ordering
// assertions are the caller's concern via the recorder).
func StaleRelease(n int) (*Result, error) {
	alg := sqrt.New(n)
	sys, rec, _ := engine.NewSimSystem(engine.Config[timestamp.Timestamp]{
		Alg:      alg,
		World:    engine.Simulated,
		N:        n,
		Workload: engine.OneShot{},
	})
	defer sys.Close()

	res := &Result{M: n, Registers: alg.Registers()}

	maxRnd := func() int {
		// The current phase ceiling: number of non-⊥ registers.
		k := 0
		for k < sys.M() && sys.Value(k) != nil {
			k++
		}
		return k
	}

	var reservoir []parked
	nextFresh := 0
	release := func(p parked) error {
		// Execute the parked write, then run the process to completion: it
		// observes the advanced phase and returns within a few steps.
		if _, err := sys.Step(p.pid); err != nil {
			return err
		}
		_, err := sys.Solo(p.pid)
		return err
	}

	for {
		phase := maxRnd()

		// Release every parked writer whose write belongs to an older
		// phase: each such write invalidates a current-phase register "for
		// free" (the charging scheme's B∪C writes).
		var keep []parked
		releasedAny := false
		for _, p := range reservoir {
			if p.rnd <= phase {
				if err := release(p); err != nil {
					return nil, err
				}
				releasedAny = true
			} else {
				keep = append(keep, p)
			}
		}
		reservoir = keep
		if releasedAny {
			continue
		}

		if nextFresh >= n {
			// No fresh processes left: flush the reservoir and finish.
			for _, p := range reservoir {
				if err := release(p); err != nil {
					return nil, err
				}
			}
			reservoir = nil
			break
		}

		// Run one fresh process until it is poised to write.
		pid := nextFresh
		nextFresh++
		poised, err := sys.RunUntil(pid, func(op sched.Op) bool { return op.Kind == sched.OpWrite })
		if err != nil {
			return nil, err
		}
		if !poised {
			continue // returned without writing (line 12/16 without line 15)
		}
		op, _, err := sys.Pending(pid)
		if err != nil {
			return nil, err
		}
		cell, ok := op.Val.(*sqrt.Cell)
		if !ok {
			return nil, fmt.Errorf("adversary: unexpected register value %T", op.Val)
		}
		if cell.Rnd > phase {
			// A line-15 write: starting phase cell.Rnd advances the
			// execution; let it through and complete the process.
			if _, err := sys.Step(pid); err != nil {
				return nil, err
			}
			if _, err := sys.Solo(pid); err != nil {
				return nil, err
			}
			continue
		}
		// An in-phase invalidation write (line 8 or 11): park it for a
		// later phase.
		reservoir = append(reservoir, parked{pid: pid, rnd: cell.Rnd})
	}

	// Drain any stragglers.
	if err := sys.Drain(); err != nil {
		return nil, err
	}
	for pid := 0; pid < n; pid++ {
		if err := sys.Err(pid); err != nil {
			return nil, fmt.Errorf("adversary: p%d: %w", pid, err)
		}
	}
	if err := hbcheck.Check(rec.Events(), alg.Compare); err != nil {
		return nil, err
	}

	res.Phases = maxRnd()
	res.Steps = sys.Steps()
	for _, ev := range rec.Events() {
		res.Timestamps = append(res.Timestamps, ev.Val)
	}
	written := 0
	for i := 0; i < sys.M(); i++ {
		if sys.Value(i) != nil {
			written++
		}
	}
	res.Written = written
	res.Sequential = SequentialPhases(n)
	return res, nil
}

// SequentialPhases returns the number of phases a strictly sequential
// execution of n one-shot getTS calls reaches: the largest Φ with
// 1 + Φ(Φ−1)/2 ≤ n (phase k serves k getTS calls; see §6.1's sequential
// description).
func SequentialPhases(n int) int {
	phi := 0
	used := 0
	for {
		next := phi + 1
		cost := next // phase `next` serves `next` calls (starter + next−1 invalidators)
		if phi == 0 {
			cost = 1
		}
		if used+cost > n {
			// A partial phase still starts as soon as its line-15 write
			// happens (one call suffices to open it).
			if used < n {
				phi++
			}
			return phi
		}
		used += cost
		phi = next
	}
}

// MeasureSequential runs n one-shot getTS calls strictly sequentially on
// real memory and returns the number of phases (non-⊥ registers).
func MeasureSequential(n int) (int, error) {
	rep, err := engine.Run(engine.Config[timestamp.Timestamp]{
		Alg:      sqrt.New(n),
		World:    engine.Atomic,
		N:        n,
		Workload: engine.Sequential{},
	})
	if err != nil {
		return 0, err
	}
	return rep.Space.Written, nil
}
