package register

import "fmt"

// WriteQuorum restricts which processes may write which registers,
// validating register-sharing disciplines such as Algorithm 2's
// "multi-reader/2-writer registers: register R[i] is written by processes
// 2i and 2i+1" (§5). Violations panic, because they indicate a broken
// algorithm rather than a recoverable runtime condition.
//
// All operations must go through PerProcess handles so that writes carry
// the writer's identity.
type WriteQuorum struct {
	inner   Mem
	writers [][]int // writers[i] = pids allowed to write register i; nil = anyone
}

// NewWriteQuorum wraps mem with a write-permission table. writers[i] lists
// the pids allowed to write register i; a nil entry permits all writers.
func NewWriteQuorum(mem Mem, writers [][]int) *WriteQuorum {
	if len(writers) != mem.Size() {
		panic(fmt.Sprintf("register: quorum table size %d != memory size %d", len(writers), mem.Size()))
	}
	return &WriteQuorum{inner: mem, writers: writers}
}

// TwoWriterTable returns the Algorithm 2 discipline for n processes over
// ⌈n/2⌉ registers: register i (0-based) is writable by processes 2i and
// 2i+1 (0-based pids). Pids ≥ n are excluded.
func TwoWriterTable(n int) [][]int {
	m := (n + 1) / 2
	table := make([][]int, m)
	for i := range table {
		ws := []int{2 * i}
		if 2*i+1 < n {
			ws = append(ws, 2*i+1)
		}
		table[i] = ws
	}
	return table
}

// SWMRTable returns a single-writer discipline over n registers: register i
// is writable only by process i.
func SWMRTable(n int) [][]int {
	table := make([][]int, n)
	for i := range table {
		table[i] = []int{i}
	}
	return table
}

// Handle returns a Mem bound to process pid; writes through it are checked
// against the permission table. When the wrapped memory provides the
// scalar fast path (Int64Mem), the handle forwards it with the same check,
// so the discipline layer never forces boxing.
func (q *WriteQuorum) Handle(pid int) Mem {
	h := &quorumHandle{q: q, pid: pid}
	if im, ok := q.inner.(Int64Mem); ok {
		return &quorumInt64Handle{quorumHandle: h, im: im}
	}
	return h
}

type quorumHandle struct {
	q   *WriteQuorum
	pid int
}

var _ Mem = (*quorumHandle)(nil)

func (h *quorumHandle) Size() int        { return h.q.inner.Size() }
func (h *quorumHandle) Read(i int) Value { return h.q.inner.Read(i) }

// check panics unless pid may write register i.
func (h *quorumHandle) check(i int) {
	allowed := h.q.writers[i]
	if allowed == nil {
		return
	}
	for _, w := range allowed {
		if w == h.pid {
			return
		}
	}
	panic(fmt.Sprintf("register: process %d is not a permitted writer of register %d (writers %v)", h.pid, i, allowed))
}

func (h *quorumHandle) Write(i int, v Value) {
	h.check(i)
	h.q.inner.Write(i, v)
}

type quorumInt64Handle struct {
	*quorumHandle
	im Int64Mem
}

var _ Int64Mem = (*quorumInt64Handle)(nil)

func (h *quorumInt64Handle) ReadInt64(i int) (int64, bool) { return h.im.ReadInt64(i) }

func (h *quorumInt64Handle) WriteInt64(i int, v int64) {
	h.check(i)
	h.im.WriteInt64(i, v)
}
