package register

import "fmt"

// WriteQuorum restricts which processes may write which registers,
// validating register-sharing disciplines such as Algorithm 2's
// "multi-reader/2-writer registers: register R[i] is written by processes
// 2i and 2i+1" (§5). Violations panic, because they indicate a broken
// algorithm rather than a recoverable runtime condition.
//
// All operations must go through PerProcess handles so that writes carry
// the writer's identity.
type WriteQuorum struct {
	inner   Mem
	writers [][]int // writers[i] = pids allowed to write register i; nil = anyone
}

// NewWriteQuorum wraps mem with a write-permission table. writers[i] lists
// the pids allowed to write register i; a nil entry permits all writers.
func NewWriteQuorum(mem Mem, writers [][]int) *WriteQuorum {
	if len(writers) != mem.Size() {
		panic(fmt.Sprintf("register: quorum table size %d != memory size %d", len(writers), mem.Size()))
	}
	return &WriteQuorum{inner: mem, writers: writers}
}

// TwoWriterTable returns the Algorithm 2 discipline for n processes over
// ⌈n/2⌉ registers: register i (0-based) is writable by processes 2i and
// 2i+1 (0-based pids). Pids ≥ n are excluded.
func TwoWriterTable(n int) [][]int {
	m := (n + 1) / 2
	table := make([][]int, m)
	for i := range table {
		ws := []int{2 * i}
		if 2*i+1 < n {
			ws = append(ws, 2*i+1)
		}
		table[i] = ws
	}
	return table
}

// SWMRTable returns a single-writer discipline over n registers: register i
// is writable only by process i.
func SWMRTable(n int) [][]int {
	table := make([][]int, n)
	for i := range table {
		table[i] = []int{i}
	}
	return table
}

// Handle returns a Mem bound to process pid; writes through it are checked
// against the permission table.
func (q *WriteQuorum) Handle(pid int) Mem {
	return &quorumHandle{q: q, pid: pid}
}

type quorumHandle struct {
	q   *WriteQuorum
	pid int
}

var _ Mem = (*quorumHandle)(nil)

func (h *quorumHandle) Size() int        { return h.q.inner.Size() }
func (h *quorumHandle) Read(i int) Value { return h.q.inner.Read(i) }

func (h *quorumHandle) Write(i int, v Value) {
	allowed := h.q.writers[i]
	if allowed != nil {
		ok := false
		for _, w := range allowed {
			if w == h.pid {
				ok = true
				break
			}
		}
		if !ok {
			panic(fmt.Sprintf("register: process %d is not a permitted writer of register %d (writers %v)", h.pid, i, allowed))
		}
	}
	h.q.inner.Write(i, v)
}
