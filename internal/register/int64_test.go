package register

import (
	"testing"
	"unsafe"
)

// Both scalar arrays must agree with the generic contract: ⊥ until
// written, last write wins, and the generic Read/Write interoperate with
// the scalar operations on the same storage.
func TestInt64ArraysSemantics(t *testing.T) {
	for _, tc := range []struct {
		name string
		mem  Int64Mem
	}{
		{"flat", NewInt64Array(4)},
		{"sharded", NewShardedInt64Array(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mem
			if m.Size() != 4 {
				t.Fatalf("Size = %d, want 4", m.Size())
			}
			if _, ok := m.ReadInt64(0); ok {
				t.Error("fresh register not ⊥ via ReadInt64")
			}
			if v := m.Read(0); v != nil {
				t.Errorf("fresh register Read = %v, want nil", v)
			}

			m.WriteInt64(0, 0) // 0 is a value, not ⊥
			if v, ok := m.ReadInt64(0); !ok || v != 0 {
				t.Errorf("ReadInt64 after WriteInt64(0, 0) = (%d, %v), want (0, true)", v, ok)
			}
			m.WriteInt64(1, 41)
			m.Write(1, int64(42)) // generic write over scalar storage
			if v, ok := m.ReadInt64(1); !ok || v != 42 {
				t.Errorf("last write lost: (%d, %v)", v, ok)
			}
			if v := m.Read(1); v.(int64) != 42 {
				t.Errorf("generic Read = %v, want 42", v)
			}
			// Negative values would collide with the ⊥ encoding at -1, so
			// the arrays reject them outright.
			func() {
				defer func() {
					if recover() == nil {
						t.Error("WriteInt64 of a negative value did not panic")
					}
				}()
				m.WriteInt64(2, -1)
			}()

			defer func() {
				if recover() == nil {
					t.Error("generic Write of a non-int64 did not panic")
				}
			}()
			m.Write(3, "not a scalar")
		})
	}
}

// Each padded scalar cell must occupy exactly one cache line, or the
// padding buys nothing.
func TestPaddedWordSize(t *testing.T) {
	if sz := unsafe.Sizeof(paddedWord{}); sz != cacheLineSize {
		t.Fatalf("paddedWord is %d bytes, want %d", sz, cacheLineSize)
	}
}

// The middleware stack must carry the Int64Mem capability end to end —
// and only over substrates that have it.
func TestMiddlewarePreservesInt64Mem(t *testing.T) {
	table := SWMRTable(2)
	meter := NewMeterSize(2)
	stack := Wrap(NewInt64Array(2), Metered(meter), DisciplineFor(table, 0))
	im, ok := stack.(Int64Mem)
	if !ok {
		t.Fatal("metered+disciplined stack over Int64Array lost the scalar fast path")
	}
	im.WriteInt64(0, 9)
	if v, ok := im.ReadInt64(0); !ok || v != 9 {
		t.Fatalf("scalar ops through the stack = (%d, %v)", v, ok)
	}
	rep := meter.Report()
	if rep.Writes != 1 || rep.Reads != 1 {
		t.Errorf("meter missed scalar ops: %d writes / %d reads, want 1/1", rep.Writes, rep.Reads)
	}

	// The discipline still bites on the scalar path: pid 0 may not write
	// register 1 under SWMR.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WriteInt64 against the discipline did not panic")
			}
		}()
		im.WriteInt64(1, 5)
	}()

	// A generic substrate must not grow the capability.
	if _, ok := Wrap(NewAtomicArray(2), Metered(meter)).(Int64Mem); ok {
		t.Error("stack over AtomicArray claims Int64Mem")
	}
}
