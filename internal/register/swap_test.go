package register

import (
	"sync"
	"testing"
)

func TestSwapArrayBasics(t *testing.T) {
	a := NewSwapArray(2)
	if a.Size() != 2 {
		t.Fatalf("Size = %d", a.Size())
	}
	if v := a.Read(0); v != nil {
		t.Errorf("initial value %v, want ⊥", v)
	}
	if old := a.Swap(0, "x"); old != nil {
		t.Errorf("first swap returned %v, want ⊥", old)
	}
	if old := a.Swap(0, "y"); old != "x" {
		t.Errorf("second swap returned %v, want x", old)
	}
	a.Write(1, 7) // write = swap with discarded return
	if v := a.Read(1); v != 7 {
		t.Errorf("Read(1) = %v", v)
	}
	if a.Swaps() != 3 {
		t.Errorf("Swaps = %d, want 3", a.Swaps())
	}
}

func TestSwapArrayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSwapArray(-1) should panic")
		}
	}()
	NewSwapArray(-1)
}

// Swap linearizability witness: concurrent swaps on one object form a
// chain — every deposited value except the final one is returned exactly
// once.
func TestSwapChainExactlyOnce(t *testing.T) {
	const procs, per = 8, 300
	a := NewSwapArray(1)
	returned := make([][]int, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				old := a.Swap(0, p*per+k)
				if old != nil {
					returned[p] = append(returned[p], old.(int))
				}
			}
		}(p)
	}
	wg.Wait()
	seen := map[int]bool{}
	total := 0
	for p := 0; p < procs; p++ {
		for _, v := range returned[p] {
			if seen[v] {
				t.Fatalf("value %d returned twice", v)
			}
			seen[v] = true
			total++
		}
	}
	final := a.Read(0).(int)
	if seen[final] {
		t.Error("final resident value was also returned")
	}
	// procs*per values deposited; all but the final resident returned
	// exactly once (plus the initial ⊥ consumed by the first swap).
	if total != procs*per-1 {
		t.Errorf("returned %d values, want %d", total, procs*per-1)
	}
}
