package register

import (
	"fmt"
	"sync"
)

// SwapArray is an array of historyless fetch-and-store (swap) objects.
//
// §7 of the paper remarks that the one-shot lower bound (Theorem 1.2)
// "applies without change if each register is replaced by any historyless
// object": in the constructed execution every block-writing process takes
// no further steps, so the value it deposits never depends on the state it
// overwrote. A swap object is the canonical non-trivial historyless
// primitive — its write returns the old value, but the new state is
// exactly the written value.
//
// The package timestamp/fas builds a long-lived timestamp object from a
// single swap object, showing the long-lived Ω(n) register bound does not
// carry over to primitives whose writes return the old value — which is
// why the paper's long-lived question for historyless objects (open in §7)
// is about the write-oblivious register model specifically.
type SwapArray struct {
	mu    sync.Mutex
	cells []Value
	swaps uint64
}

var _ Mem = (*SwapArray)(nil)

// NewSwapArray returns m swap objects, all ⊥.
func NewSwapArray(m int) *SwapArray {
	if m < 0 {
		panic(fmt.Sprintf("register: negative size %d", m))
	}
	return &SwapArray{cells: make([]Value, m)}
}

// Size returns the number of objects.
func (a *SwapArray) Size() int { return len(a.cells) }

// Read returns the current value of object i.
func (a *SwapArray) Read(i int) Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cells[i]
}

// Write stores v into object i, discarding the old value (a swap whose
// return value is ignored — the register special case).
func (a *SwapArray) Write(i int, v Value) {
	a.Swap(i, v)
}

// Swap atomically stores v into object i and returns the previous value.
func (a *SwapArray) Swap(i int, v Value) Value {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.cells[i]
	a.cells[i] = v
	a.swaps++
	return old
}

// Swaps returns the total number of swap (and write) operations applied.
func (a *SwapArray) Swaps() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.swaps
}
