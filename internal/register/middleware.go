package register

import "fmt"

// Middleware decorates a Mem with one cross-cutting concern — metering,
// write discipline, versioning. Layers compose with Wrap; a nil middleware
// is skipped, so conditional layers read naturally:
//
//	mem = register.Wrap(base,
//		register.Metered(meter),
//		register.DisciplineFor(alg.WriterTable(), pid),
//	)
//
// Every layer preserves the VersionedMem and Int64Mem capabilities of the
// memory below it (and only those: a layer never *claims* versioned reads
// or scalar operations its substrate cannot deliver, so algorithms can
// probe with a type assertion).
type Middleware func(Mem) Mem

// Wrap applies mws to mem in order: the first middleware ends up closest
// to the backing memory, the last is outermost (its methods run first).
// Nil middlewares are skipped.
func Wrap(mem Mem, mws ...Middleware) Mem {
	for _, mw := range mws {
		if mw != nil {
			mem = mw(mem)
		}
	}
	return mem
}

// Metered records every operation passing through the layer into meter,
// which may be shared by any number of handles (it is safe for concurrent
// use). Construct the meter with NewMeterSize when it only backs this
// layer.
func Metered(meter *Meter) Middleware {
	return func(inner Mem) Mem {
		mm := &meteredMem{meter: meter, inner: inner}
		if vm, ok := inner.(VersionedMem); ok {
			return &meteredVersioned{meteredMem: mm, vm: vm}
		}
		if im, ok := inner.(Int64Mem); ok {
			return &meteredInt64{meteredMem: mm, im: im}
		}
		return mm
	}
}

type meteredMem struct {
	meter *Meter
	inner Mem
}

func (m *meteredMem) Size() int { return m.inner.Size() }

func (m *meteredMem) Read(i int) Value {
	m.meter.recordRead(i)
	return m.inner.Read(i)
}

func (m *meteredMem) Write(i int, v Value) {
	m.meter.recordWrite(i, -1)
	m.inner.Write(i, v)
}

type meteredVersioned struct {
	*meteredMem
	vm VersionedMem
}

func (m *meteredVersioned) ReadVersioned(i int) (Value, uint64) {
	m.meter.recordRead(i)
	return m.vm.ReadVersioned(i)
}

// meteredInt64 keeps the scalar fast path through a metered layer: the
// counters serialize (metering is documented as a throughput tax) but the
// operations themselves stay boxing- and allocation-free.
type meteredInt64 struct {
	*meteredMem
	im Int64Mem
}

func (m *meteredInt64) ReadInt64(i int) (int64, bool) {
	m.meter.recordRead(i)
	return m.im.ReadInt64(i)
}

func (m *meteredInt64) WriteInt64(i int, v int64) {
	m.meter.recordWrite(i, -1)
	m.im.WriteInt64(i, v)
}

// DisciplineFor enforces the write-permission table for process pid: the
// WriteQuorum check as a per-process layer. A nil table yields a nil
// middleware, which Wrap skips.
func DisciplineFor(table [][]int, pid int) Middleware {
	if table == nil {
		return nil
	}
	return func(inner Mem) Mem {
		h := NewWriteQuorum(inner, table).Handle(pid)
		if vm, ok := inner.(VersionedMem); ok {
			return &versionedView{Mem: h, vm: vm}
		}
		return h
	}
}

// versionedView adds pass-through versioned reads to a layer whose reads
// need no bookkeeping of their own (discipline only restricts writes).
type versionedView struct {
	Mem
	vm VersionedMem
}

func (v *versionedView) ReadVersioned(i int) (Value, uint64) { return v.vm.ReadVersioned(i) }

// Versions is a shared write-version table: one strictly increasing
// counter per register, bumped after each write applied through a
// Versioned layer. All handles of one run must share a single table, or
// the versions would miss other processes' writes and the double-collect
// soundness argument collapses.
type Versions struct {
	counts []uint64
}

// NewVersions returns a version table for m registers.
func NewVersions(m int) *Versions {
	return &Versions{counts: make([]uint64, m)}
}

// Versioned makes the wrapped memory a VersionedMem by tracking write
// counts in vs. It is meant for serialized worlds (the deterministic
// scheduler), where the substrate lacks native versions: there, the
// scheduler grants one operation at a time and blocks the process until
// its next gate, so the post-operation table update is globally ordered
// with the operation itself. A substrate that already provides versions
// (both atomic arrays do) is returned unchanged and vs is ignored.
func Versioned(vs *Versions) Middleware {
	return func(inner Mem) Mem {
		if _, ok := inner.(VersionedMem); ok {
			return inner
		}
		if vs == nil {
			panic("register: Versioned over an unversioned memory requires a shared Versions table")
		}
		if len(vs.counts) != inner.Size() {
			panic(fmt.Sprintf("register: version table size %d != memory size %d", len(vs.counts), inner.Size()))
		}
		return &versionedMem{inner: inner, vs: vs}
	}
}

type versionedMem struct {
	inner Mem
	vs    *Versions
}

var _ VersionedMem = (*versionedMem)(nil)

func (m *versionedMem) Size() int { return m.inner.Size() }

func (m *versionedMem) Read(i int) Value { return m.inner.Read(i) }

func (m *versionedMem) Write(i int, v Value) {
	m.inner.Write(i, v) // blocks until the scheduler grants the write
	m.vs.counts[i]++
}

func (m *versionedMem) ReadVersioned(i int) (Value, uint64) {
	v := m.inner.Read(i) // blocks until the scheduler grants the read
	return v, m.vs.counts[i]
}

// FirstOpStamp captures a clock stamp immediately after the first granted
// operation of a wrapped memory. Under the deterministic scheduler a
// process "begins" when it is first scheduled: it posts its first request
// at spawn, so stamping any earlier degenerates to creation time and every
// interval looks concurrent. Stamping after the first granted operation is
// sound by the usual reduction — local computation before the first shared
// step is invisible to the system, so there is an equivalent execution in
// which the invocation happens just before that step.
type FirstOpStamp struct {
	clock   func() uint64
	started bool
	stamp   uint64
}

// StampFirstOp wraps inner so that the returned handle's stamp is taken
// from clock right after the wrapped memory's first operation executes.
// Use one wrapper per method call; the handle is not safe for concurrent
// use (each simulated process is single-threaded).
func StampFirstOp(inner Mem, clock func() uint64) (Mem, *FirstOpStamp) {
	s := &FirstOpStamp{clock: clock}
	sm := &stampedMem{inner: inner, s: s}
	if vm, ok := inner.(VersionedMem); ok {
		return &stampedVersioned{stampedMem: sm, vm: vm}, s
	}
	return sm, s
}

// Stamp returns the recorded stamp, taking it now if no operation has
// executed yet (an operation-free call begins at its first visible point,
// which is its response).
func (s *FirstOpStamp) Stamp() uint64 {
	s.note()
	return s.stamp
}

func (s *FirstOpStamp) note() {
	if !s.started {
		s.started = true
		s.stamp = s.clock()
	}
}

type stampedMem struct {
	inner Mem
	s     *FirstOpStamp
}

func (m *stampedMem) Size() int { return m.inner.Size() }

func (m *stampedMem) Read(i int) Value {
	v := m.inner.Read(i)
	m.s.note()
	return v
}

func (m *stampedMem) Write(i int, v Value) {
	m.inner.Write(i, v)
	m.s.note()
}

type stampedVersioned struct {
	*stampedMem
	vm VersionedMem
}

func (m *stampedVersioned) ReadVersioned(i int) (Value, uint64) {
	v, ver := m.vm.ReadVersioned(i)
	m.s.note()
	return v, ver
}
