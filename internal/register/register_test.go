package register

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAtomicArrayInitialBottom(t *testing.T) {
	a := NewAtomicArray(4)
	if a.Size() != 4 {
		t.Fatalf("Size = %d, want 4", a.Size())
	}
	for i := 0; i < 4; i++ {
		if v := a.Read(i); v != nil {
			t.Errorf("register %d initial value = %v, want ⊥ (nil)", i, v)
		}
		if _, ver := a.ReadVersioned(i); ver != 0 {
			t.Errorf("register %d initial version = %d, want 0", i, ver)
		}
	}
}

func TestAtomicArrayReadWrite(t *testing.T) {
	a := NewAtomicArray(2)
	a.Write(0, 42)
	a.Write(1, "x")
	if v := a.Read(0); v != 42 {
		t.Errorf("Read(0) = %v, want 42", v)
	}
	if v := a.Read(1); v != "x" {
		t.Errorf("Read(1) = %v, want x", v)
	}
	a.Write(0, 43)
	if v, ver := a.ReadVersioned(0); v != 43 || ver != 2 {
		t.Errorf("ReadVersioned(0) = (%v, %d), want (43, 2)", v, ver)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAtomicArray(-1) should panic")
		}
	}()
	NewAtomicArray(-1)
}

// Versions per register must be contiguous under concurrent writers: with W
// writers each doing K writes to one register, the final version is W*K and
// every write got a distinct version.
func TestAtomicArrayVersionContiguity(t *testing.T) {
	const writers, per = 8, 200
	a := NewAtomicArray(1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				a.Write(0, w*per+k)
			}
		}(w)
	}
	wg.Wait()
	if _, ver := a.ReadVersioned(0); ver != writers*per {
		t.Errorf("final version = %d, want %d", ver, writers*per)
	}
}

// Readers must never observe version regression on a single register.
func TestAtomicArrayMonotoneVersions(t *testing.T) {
	a := NewAtomicArray(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			a.Write(0, i)
		}
	}()
	var last uint64
	for {
		_, ver := a.ReadVersioned(0)
		if ver < last {
			t.Errorf("version regressed: %d after %d", ver, last)
			break
		}
		last = ver
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestSnapshotCopies(t *testing.T) {
	a := NewAtomicArray(3)
	a.Write(1, "v")
	s := a.Snapshot()
	if s[0] != nil || s[1] != "v" || s[2] != nil {
		t.Errorf("Snapshot = %v", s)
	}
}

func TestMeterCounts(t *testing.T) {
	m := NewMeter(NewAtomicArray(5))
	m.Write(1, "a")
	m.Write(3, "b")
	m.Write(3, "c")
	m.Read(0)
	m.Read(4)
	r := m.Report()
	if r.Registers != 5 {
		t.Errorf("Registers = %d, want 5", r.Registers)
	}
	if r.Written != 2 {
		t.Errorf("Written = %d, want 2", r.Written)
	}
	if r.MaxWrittenIndex != 3 || r.MaxReadIndex != 4 {
		t.Errorf("MaxWrittenIndex = %d MaxReadIndex = %d", r.MaxWrittenIndex, r.MaxReadIndex)
	}
	if r.Writes != 3 || r.Reads != 2 {
		t.Errorf("Writes = %d Reads = %d", r.Writes, r.Reads)
	}
	if len(r.WrittenSet) != 2 || r.WrittenSet[0] != 1 || r.WrittenSet[1] != 3 {
		t.Errorf("WrittenSet = %v, want [1 3]", r.WrittenSet)
	}
	if m.WritesTo(3) != 2 {
		t.Errorf("WritesTo(3) = %d, want 2", m.WritesTo(3))
	}
}

func TestMeterEmptyReport(t *testing.T) {
	r := NewMeter(NewAtomicArray(3)).Report()
	if r.Written != 0 || r.MaxWrittenIndex != -1 || r.MaxReadIndex != -1 {
		t.Errorf("empty report = %+v", r)
	}
}

func TestMeterAttributedWrites(t *testing.T) {
	m := NewMeter(NewAtomicArray(2))
	m.WriteBy(7, 0, "x")
	m.WriteBy(7, 1, "y")
	m.WriteBy(2, 0, "z")
	if m.WritesBy(7) != 2 || m.WritesBy(2) != 1 || m.WritesBy(9) != 0 {
		t.Errorf("WritesBy = %d,%d,%d", m.WritesBy(7), m.WritesBy(2), m.WritesBy(9))
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(NewAtomicArray(2))
	m.Write(0, 1)
	m.Read(1)
	m.Reset()
	r := m.Report()
	if r.Writes != 0 || r.Reads != 0 || r.Written != 0 {
		t.Errorf("after Reset report = %+v", r)
	}
	// Memory contents survive the reset.
	if v := m.Read(0); v != 1 {
		t.Errorf("contents lost on Reset: %v", v)
	}
}

func TestMeterForwardsVersioned(t *testing.T) {
	m := NewMeter(NewAtomicArray(1))
	m.Write(0, "a")
	if v, ver := m.ReadVersioned(0); v != "a" || ver != 1 {
		t.Errorf("ReadVersioned = (%v, %d)", v, ver)
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := NewMeter(NewAtomicArray(8))
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				m.WriteBy(p, p, k)
				m.Read((p + k) % 8)
			}
		}(p)
	}
	wg.Wait()
	r := m.Report()
	if r.Writes != 800 || r.Reads != 800 {
		t.Errorf("Writes = %d Reads = %d, want 800 each", r.Writes, r.Reads)
	}
	if r.Written != 8 {
		t.Errorf("Written = %d, want 8", r.Written)
	}
}

func TestTwoWriterTable(t *testing.T) {
	for _, tc := range []struct {
		n, m int
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {10, 5}, {11, 6}} {
		table := TwoWriterTable(tc.n)
		if len(table) != tc.m {
			t.Errorf("n=%d: table size %d, want ⌈n/2⌉=%d", tc.n, len(table), tc.m)
		}
		seen := map[int]bool{}
		for i, ws := range table {
			if len(ws) == 0 || len(ws) > 2 {
				t.Errorf("n=%d register %d writers %v", tc.n, i, ws)
			}
			for _, w := range ws {
				if w < 0 || w >= tc.n {
					t.Errorf("n=%d register %d invalid writer %d", tc.n, i, w)
				}
				if seen[w] {
					t.Errorf("n=%d writer %d assigned twice", tc.n, w)
				}
				seen[w] = true
			}
		}
		if len(seen) != tc.n {
			t.Errorf("n=%d only %d processes assigned a register", tc.n, len(seen))
		}
	}
}

func TestWriteQuorumEnforcement(t *testing.T) {
	q := NewWriteQuorum(NewAtomicArray(2), TwoWriterTable(4))
	h0 := q.Handle(0)
	h3 := q.Handle(3)

	h0.Write(0, "ok") // process 0 may write register 0
	h3.Write(1, "ok") // process 3 may write register 1
	if h0.Read(1) != "ok" {
		t.Error("reads must be unrestricted")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("process 0 writing register 1 should panic")
			}
		}()
		h0.Write(1, "bad")
	}()
}

func TestWriteQuorumNilEntryPermitsAll(t *testing.T) {
	q := NewWriteQuorum(NewAtomicArray(1), [][]int{nil})
	for pid := 0; pid < 3; pid++ {
		q.Handle(pid).Write(0, pid) // must not panic
	}
}

func TestWriteQuorumSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched table should panic")
		}
	}()
	NewWriteQuorum(NewAtomicArray(3), TwoWriterTable(4))
}

func TestSWMRTable(t *testing.T) {
	table := SWMRTable(3)
	if len(table) != 3 {
		t.Fatalf("len = %d", len(table))
	}
	for i, ws := range table {
		if len(ws) != 1 || ws[0] != i {
			t.Errorf("register %d writers %v, want [%d]", i, ws, i)
		}
	}
}

// Property: a sequence of writes leaves the last value readable and version
// equals number of writes (single-threaded semantics of the atomic cell).
func TestQuickSequentialSemantics(t *testing.T) {
	f := func(vals []int) bool {
		a := NewAtomicArray(1)
		for _, v := range vals {
			a.Write(0, v)
		}
		got, ver := a.ReadVersioned(0)
		if len(vals) == 0 {
			return got == nil && ver == 0
		}
		return got == vals[len(vals)-1] && ver == uint64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAtomicWrite(b *testing.B) {
	a := NewAtomicArray(1)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a.Write(0, i)
			i++
		}
	})
}

func BenchmarkAtomicRead(b *testing.B) {
	a := NewAtomicArray(1)
	a.Write(0, 7)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if a.Read(0) == nil {
				b.Fatal("lost value")
			}
		}
	})
}

func ExampleMeter() {
	m := NewMeter(NewAtomicArray(4))
	m.Write(2, "hello")
	r := m.Report()
	fmt.Println(r.Written, r.MaxWrittenIndex)
	// Output: 1 2
}
