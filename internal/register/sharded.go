package register

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// cacheLineSize is the assumed coherence granule. 64 bytes covers every
// mainstream amd64/arm64 part; on CPUs with larger granules (e.g. 128-byte
// prefetch pairs) padding to 64 still removes the dominant false sharing.
const cacheLineSize = 64

// paddedCell is one register padded out to a full cache line so that
// neighbouring registers never share a coherence granule.
type paddedCell struct {
	ptr atomic.Pointer[cell]
	_   [cacheLineSize - unsafe.Sizeof(atomic.Pointer[cell]{})%cacheLineSize]byte
}

// ShardedArray is AtomicArray with each register on its own cache line.
// The flat array packs its atomic pointers 8 per line, so under real
// goroutine contention a write to register i invalidates the cached lines
// of readers of registers i±7 — false sharing that serializes the
// supposedly independent registers once the worker count passes a few
// cores. ShardedArray trades m×64 bytes of memory for that scalability;
// semantics are identical to AtomicArray (linearizable multi-writer
// multi-reader registers with per-register write versions).
type ShardedArray struct {
	cells []paddedCell
}

var _ VersionedMem = (*ShardedArray)(nil)

// NewShardedArray returns an array of m cache-line-padded registers, all
// initialized to ⊥.
func NewShardedArray(m int) *ShardedArray {
	if m < 0 {
		panic(fmt.Sprintf("register: negative size %d", m))
	}
	return &ShardedArray{cells: make([]paddedCell, m)}
}

// Size returns the number of registers.
func (a *ShardedArray) Size() int { return len(a.cells) }

// Read returns the current value of register i.
func (a *ShardedArray) Read(i int) Value {
	v, _ := a.ReadVersioned(i)
	return v
}

// ReadVersioned returns the value and write-count of register i.
func (a *ShardedArray) ReadVersioned(i int) (Value, uint64) {
	c := a.cells[i].ptr.Load()
	if c == nil {
		return nil, 0
	}
	return c.val, c.version
}

// Write atomically replaces the value of register i. Concurrent writes
// linearize in some order; the version of the installed cell reflects that
// order per register.
func (a *ShardedArray) Write(i int, v Value) {
	for {
		old := a.cells[i].ptr.Load()
		var ver uint64 = 1
		if old != nil {
			ver = old.version + 1
		}
		if a.cells[i].ptr.CompareAndSwap(old, &cell{val: v, version: ver}) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of all register values. It is NOT
// atomic across registers (use internal/snapshot for a linearizable scan);
// it exists for tests and reporting.
func (a *ShardedArray) Snapshot() []Value {
	out := make([]Value, len(a.cells))
	for i := range a.cells {
		out[i] = a.Read(i)
	}
	return out
}
