package register_test

import (
	"testing"

	"tsspace/internal/register"
)

// sliceMem is a minimal unversioned memory, so the fuzzed stack exercises
// the Versioned middleware's own version table rather than a substrate's.
type sliceMem struct {
	vals []register.Value
}

func (m *sliceMem) Size() int                     { return len(m.vals) }
func (m *sliceMem) Read(i int) register.Value     { return m.vals[i] }
func (m *sliceMem) Write(i int, v register.Value) { m.vals[i] = v }

// FuzzMiddlewareStack drives a full engine-shaped middleware stack —
// shared version table, shared meter, per-process write discipline — with
// an arbitrary operation stream and checks it against a plain reference
// array: reads see exactly the reference values, versions count exactly
// the applied writes, the meter's totals match, and the discipline panics
// precisely on forbidden writes (before any layer below records anything).
func FuzzMiddlewareStack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x07})                                     // p0 reads r0
	f.Add([]byte{0x00, 0x40, 0x07, 0x01, 0x41, 0x09, 0x82, 0x02, 0x00}) // writes + versioned read
	f.Add([]byte{0x03, 0x40, 0x01})                                     // p3 writing r0: forbidden
	f.Add([]byte{0x02, 0x42, 0x05, 0x00, 0x02, 0x00})                   // free register traffic

	const n, m = 4, 3
	table := [][]int{{0, 1}, {2, 3}, nil} // 2-writer, 2-writer, free

	f.Fuzz(func(t *testing.T, data []byte) {
		base := &sliceMem{vals: make([]register.Value, m)}
		vs := register.NewVersions(m)
		meter := register.NewMeterSize(m)
		handles := make([]register.Mem, n)
		for pid := 0; pid < n; pid++ {
			handles[pid] = register.Wrap(base,
				register.Versioned(vs),
				register.Metered(meter),
				register.DisciplineFor(table, pid),
			)
		}

		ref := make([]register.Value, m)
		writeCount := make([]uint64, m)
		var reads, writes uint64

		tryWrite := func(h register.Mem, reg int, v int64) (panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			h.Write(reg, v)
			return false
		}
		allowed := func(reg, pid int) bool {
			if table[reg] == nil {
				return true
			}
			for _, w := range table[reg] {
				if w == pid {
					return true
				}
			}
			return false
		}

		for i := 0; i+2 < len(data); i += 3 {
			pid := int(data[i] % n)
			versioned := data[i]&0x80 != 0
			reg := int(data[i+1] % m)
			isWrite := data[i+1]&0x40 != 0
			val := int64(data[i+2])
			h := handles[pid]

			if isWrite {
				panicked := tryWrite(h, reg, val)
				if panicked == allowed(reg, pid) {
					t.Fatalf("op %d: p%d write r%d: panicked=%v, allowed=%v", i/3, pid, reg, panicked, allowed(reg, pid))
				}
				if !panicked {
					ref[reg] = val
					writeCount[reg]++
					writes++
				}
				continue
			}
			var got register.Value
			if versioned {
				vm, ok := h.(register.VersionedMem)
				if !ok {
					t.Fatalf("stack lost the VersionedMem capability: %T", h)
				}
				var ver uint64
				got, ver = vm.ReadVersioned(reg)
				if ver != writeCount[reg] {
					t.Fatalf("op %d: r%d version = %d, want %d applied writes", i/3, reg, ver, writeCount[reg])
				}
			} else {
				got = h.Read(reg)
			}
			reads++
			if got != ref[reg] {
				t.Fatalf("op %d: p%d read r%d = %v, want %v", i/3, pid, reg, got, ref[reg])
			}
		}

		rep := meter.Report()
		if rep.Reads != reads || rep.Writes != writes {
			t.Fatalf("meter totals %d/%d, reference %d/%d (forbidden writes must not be recorded)",
				rep.Reads, rep.Writes, reads, writes)
		}
		// The version table must agree with the reference write counts;
		// probe through a meter-free handle so the totals above stay valid.
		probe := register.Wrap(base, register.Versioned(vs)).(register.VersionedMem)
		for reg := 0; reg < m; reg++ {
			if _, ver := probe.ReadVersioned(reg); ver != writeCount[reg] {
				t.Fatalf("final r%d version = %d, want %d", reg, ver, writeCount[reg])
			}
		}
	})
}
