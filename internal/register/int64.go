package register

import (
	"fmt"
	"sync/atomic"
)

// Int64Mem is the boxing-free fast path for scalar-valued algorithms
// (collect, dense): register contents are int64 timestamps, read and
// written without the Value interface conversion and without the
// immutable-cell allocation of the generic arrays. Algorithms probe for it
// with a type assertion and fall back to the generic Mem operations, so
// the same algorithm code runs on every memory.
//
// The capability composes like VersionedMem: a middleware layer forwards
// Int64Mem when (and only when) its substrate provides it, so a metered or
// write-disciplined stack over an Int64Array keeps the allocation-free
// path end to end.
type Int64Mem interface {
	Mem
	// ReadInt64 returns the value of register i; ok is false for ⊥.
	ReadInt64(i int) (v int64, ok bool)
	// WriteInt64 atomically replaces the value of register i.
	WriteInt64(i int, v int64)
}

// Int64Array is a wait-free MWMR register array specialized for int64
// values: one machine word per register, so reads are a single atomic load
// and writes a single atomic store — no boxing, no cell allocation, no CAS
// loop. The generic Read/Write operations interoperate with the scalar
// ones on the same storage (a generic Write must carry an int64).
//
// Unlike AtomicArray it does not implement VersionedMem: a packed word has
// no room for a write count. The versioned double-collect scan is only
// used by the sqrt family, whose register values are not scalars anyway.
type Int64Array struct {
	words []atomic.Uint64
}

var _ Int64Mem = (*Int64Array)(nil)

// NewInt64Array returns an array of m scalar registers, all initialized
// to ⊥.
func NewInt64Array(m int) *Int64Array {
	if m < 0 {
		panic(fmt.Sprintf("register: negative size %d", m))
	}
	return &Int64Array{words: make([]atomic.Uint64, m)}
}

// packInt64 encodes v so that the zero word keeps meaning ⊥. The +1
// shift only distinguishes ⊥ for non-negative values (-1 would wrap to
// the ⊥ word and silently read back as unset), so negative values are
// rejected loudly — scalar register values are timestamps, which are
// non-negative by construction.
func packInt64(v int64) uint64 {
	if v < 0 {
		//tslint:allow hotpath panic formatting on an invariant violation; unreachable for real timestamps
		panic(fmt.Sprintf("register: scalar arrays hold non-negative timestamps, got %d", v))
	}
	return uint64(v) + 1
}

func unpackInt64(w uint64) (int64, bool) {
	if w == 0 {
		return 0, false
	}
	return int64(w - 1), true
}

// Size returns the number of registers.
func (a *Int64Array) Size() int { return len(a.words) }

// ReadInt64 returns the value of register i without boxing.
//
//tslint:hotpath
func (a *Int64Array) ReadInt64(i int) (int64, bool) {
	return unpackInt64(a.words[i].Load())
}

// WriteInt64 atomically replaces the value of register i without
// allocating.
//
//tslint:hotpath
func (a *Int64Array) WriteInt64(i int, v int64) {
	a.words[i].Store(packInt64(v))
}

// Read returns the current value of register i boxed as a Value (nil
// for ⊥). It exists for Mem compatibility; hot paths use ReadInt64.
func (a *Int64Array) Read(i int) Value {
	v, ok := a.ReadInt64(i)
	if !ok {
		return nil
	}
	return v
}

// Write replaces register i; v must be an int64 (the array is
// scalar-specialized, and a silent widening would corrupt the store).
func (a *Int64Array) Write(i int, v Value) {
	x, ok := v.(int64)
	if !ok {
		panic(fmt.Sprintf("register: Int64Array.Write(%d, %T): scalar arrays hold int64 values only", i, v))
	}
	a.WriteInt64(i, x)
}

// paddedWord is one scalar register padded out to a full cache line.
type paddedWord struct {
	w atomic.Uint64
	_ [cacheLineSize - 8]byte
}

// ShardedInt64Array is Int64Array with each register on its own cache
// line: the scalar analogue of ShardedArray, for the same false-sharing
// reason.
type ShardedInt64Array struct {
	cells []paddedWord
}

var _ Int64Mem = (*ShardedInt64Array)(nil)

// NewShardedInt64Array returns an array of m cache-line-padded scalar
// registers, all initialized to ⊥.
func NewShardedInt64Array(m int) *ShardedInt64Array {
	if m < 0 {
		panic(fmt.Sprintf("register: negative size %d", m))
	}
	return &ShardedInt64Array{cells: make([]paddedWord, m)}
}

// Size returns the number of registers.
func (a *ShardedInt64Array) Size() int { return len(a.cells) }

// ReadInt64 returns the value of register i without boxing.
//
//tslint:hotpath
func (a *ShardedInt64Array) ReadInt64(i int) (int64, bool) {
	return unpackInt64(a.cells[i].w.Load())
}

// WriteInt64 atomically replaces the value of register i without
// allocating.
//
//tslint:hotpath
func (a *ShardedInt64Array) WriteInt64(i int, v int64) {
	a.cells[i].w.Store(packInt64(v))
}

// Read returns the current value of register i boxed as a Value.
func (a *ShardedInt64Array) Read(i int) Value {
	v, ok := a.ReadInt64(i)
	if !ok {
		return nil
	}
	return v
}

// Write replaces register i; v must be an int64.
func (a *ShardedInt64Array) Write(i int, v Value) {
	x, ok := v.(int64)
	if !ok {
		panic(fmt.Sprintf("register: ShardedInt64Array.Write(%d, %T): scalar arrays hold int64 values only", i, v))
	}
	a.WriteInt64(i, x)
}
