package register

import (
	"fmt"
	"testing"
)

// plainMem is an unversioned memory: the middleware tests use it to check
// that no layer invents a VersionedMem capability its substrate lacks.
type plainMem struct {
	vals []Value
}

func newPlainMem(m int) *plainMem { return &plainMem{vals: make([]Value, m)} }

func (p *plainMem) Size() int            { return len(p.vals) }
func (p *plainMem) Read(i int) Value     { return p.vals[i] }
func (p *plainMem) Write(i int, v Value) { p.vals[i] = v }

// taggingMem records the order wrappers run in.
type taggingMem struct {
	inner Mem
	tag   string
	log   *[]string
}

func (t *taggingMem) Size() int { return t.inner.Size() }
func (t *taggingMem) Read(i int) Value {
	*t.log = append(*t.log, t.tag)
	return t.inner.Read(i)
}
func (t *taggingMem) Write(i int, v Value) {
	*t.log = append(*t.log, t.tag)
	t.inner.Write(i, v)
}

func tagging(tag string, log *[]string) Middleware {
	return func(inner Mem) Mem { return &taggingMem{inner: inner, tag: tag, log: log} }
}

// Wrap applies middlewares first-is-innermost: the last middleware's
// methods run first.
func TestWrapOrder(t *testing.T) {
	var log []string
	mem := Wrap(newPlainMem(1), tagging("inner", &log), nil, tagging("outer", &log))
	mem.Read(0)
	if len(log) != 2 || log[0] != "outer" || log[1] != "inner" {
		t.Errorf("layer order = %v, want [outer inner]", log)
	}
}

func TestWrapNilIdentity(t *testing.T) {
	base := newPlainMem(2)
	if got := Wrap(base, nil, nil); got != Mem(base) {
		t.Error("Wrap with only nil middlewares must return the base memory")
	}
}

// One shared meter aggregates operations from several per-process stacks,
// and the report carries per-register counts.
func TestMeteredSharedAcrossStacks(t *testing.T) {
	base := NewAtomicArray(3)
	meter := NewMeterSize(3)
	m0 := Wrap(base, Metered(meter))
	m1 := Wrap(base, Metered(meter))

	m0.Write(0, "a")
	m1.Write(0, "b")
	m1.Write(2, "c")
	m0.Read(1)
	m1.Read(1)

	rep := meter.Report()
	if rep.Writes != 3 || rep.Reads != 2 {
		t.Errorf("totals = %d writes / %d reads, want 3/2", rep.Writes, rep.Reads)
	}
	if rep.Written != 2 {
		t.Errorf("written registers = %d, want 2", rep.Written)
	}
	if rep.WriteCounts[0] != 2 || rep.WriteCounts[2] != 1 || rep.ReadCounts[1] != 2 {
		t.Errorf("per-register counts wrong: writes=%v reads=%v", rep.WriteCounts, rep.ReadCounts)
	}
}

// The metered layer forwards versioned reads over a versioned substrate
// and counts them as reads; over a plain substrate it must not claim the
// capability.
func TestMeteredVersionedCapability(t *testing.T) {
	meter := NewMeterSize(2)
	versioned := Wrap(NewAtomicArray(2), Metered(meter))
	vm, ok := versioned.(VersionedMem)
	if !ok {
		t.Fatal("metered atomic array lost VersionedMem")
	}
	versioned.Write(1, "x")
	if _, ver := vm.ReadVersioned(1); ver != 1 {
		t.Errorf("version = %d, want 1", ver)
	}
	if meter.Report().Reads != 1 {
		t.Error("versioned read not counted")
	}

	plain := Wrap(newPlainMem(2), Metered(NewMeterSize(2)))
	if _, ok := plain.(VersionedMem); ok {
		t.Error("metered plain memory must not claim VersionedMem")
	}
}

// DisciplineFor enforces the table per process and is the identity for
// algorithms with no table.
func TestDisciplineForEnforcement(t *testing.T) {
	base := NewAtomicArray(2)
	table := SWMRTable(2)

	if mw := DisciplineFor(nil, 0); mw != nil {
		t.Error("nil table must yield a nil middleware")
	}

	own := Wrap(base, DisciplineFor(table, 1))
	own.Write(1, "mine") // permitted
	if base.Read(1) != "mine" {
		t.Error("permitted write did not land")
	}
	if _, ok := own.(VersionedMem); !ok {
		t.Error("discipline over a versioned substrate must stay versioned")
	}

	defer func() {
		if recover() == nil {
			t.Error("foreign write must panic")
		}
	}()
	own.Write(0, "foreign")
}

// The versioned layer gives a plain memory write versions shared across
// handles, and leaves an already-versioned memory untouched.
func TestVersionedMiddleware(t *testing.T) {
	base := newPlainMem(2)
	vs := NewVersions(2)
	h0 := Wrap(base, Versioned(vs))
	h1 := Wrap(base, Versioned(vs))

	vm0, ok := h0.(VersionedMem)
	if !ok {
		t.Fatal("versioned layer must provide VersionedMem")
	}
	vm1 := h1.(VersionedMem)

	if _, ver := vm0.ReadVersioned(0); ver != 0 {
		t.Errorf("initial version = %d, want 0", ver)
	}
	h0.Write(0, "a")
	h1.Write(0, "b")
	v, ver := vm1.ReadVersioned(0)
	if v != "b" || ver != 2 {
		t.Errorf("ReadVersioned = (%v, %d), want (b, 2): versions must be shared across handles", v, ver)
	}

	atomicBase := NewAtomicArray(2)
	if got := Wrap(atomicBase, Versioned(nil)); got != Mem(atomicBase) {
		t.Error("versioned substrate must pass through unchanged (and tolerate a nil table)")
	}
}

func TestVersionedPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil-table":     func() { Wrap(newPlainMem(1), Versioned(nil)) },
		"size-mismatch": func() { Wrap(newPlainMem(2), Versioned(NewVersions(1))) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("must panic")
				}
			}()
			f()
		})
	}
}

// StampFirstOp stamps right after the first operation, whichever kind it
// is, and an operation-free call stamps at Stamp() time.
func TestStampFirstOp(t *testing.T) {
	var clock uint64
	tick := func() uint64 { clock++; return clock }

	for _, first := range []string{"read", "write", "versioned-read", "none"} {
		t.Run(first, func(t *testing.T) {
			clock = 0
			base := NewAtomicArray(1)
			mem, stamp := StampFirstOp(base, tick)
			switch first {
			case "read":
				mem.Read(0)
			case "write":
				mem.Write(0, "x")
			case "versioned-read":
				mem.(VersionedMem).ReadVersioned(0)
			case "none":
			}
			if got := stamp.Stamp(); got != 1 {
				t.Errorf("stamp = %d, want 1 (taken at first op or first Stamp call)", got)
			}
			mem.Read(0)
			if got := stamp.Stamp(); got != 1 {
				t.Errorf("stamp moved to %d after later ops", got)
			}
		})
	}

	// A plain substrate must not gain ReadVersioned through the stamp layer.
	mem, _ := StampFirstOp(newPlainMem(1), tick)
	if _, ok := mem.(VersionedMem); ok {
		t.Error("stamped plain memory must not claim VersionedMem")
	}
}

// The full stack composes: versions at the bottom, metering above,
// discipline on top — reads see shared versions, writes are counted and
// checked.
func TestFullStackComposition(t *testing.T) {
	base := newPlainMem(2)
	vs := NewVersions(2)
	meter := NewMeterSize(2)
	table := [][]int{{0}, nil}

	stack := func(pid int) Mem {
		return Wrap(base, Versioned(vs), Metered(meter), DisciplineFor(table, pid))
	}

	p0, p1 := stack(0), stack(1)
	p0.Write(0, "zero")
	p1.Write(1, "one")
	if _, ver := p1.(VersionedMem).ReadVersioned(0); ver != 1 {
		t.Errorf("p1 sees version %d of r0, want 1", ver)
	}
	rep := meter.Report()
	if rep.Writes != 2 || rep.Reads != 1 || rep.Written != 2 {
		t.Errorf("meter saw %d writes / %d reads / %d written", rep.Writes, rep.Reads, rep.Written)
	}

	defer func() {
		if recover() == nil {
			t.Error("discipline must fire through the full stack")
		}
	}()
	p1.Write(0, "stolen")
}

// NewMeterSize meters have no backing memory: their Mem surface is not
// usable, only the middleware path is.
func TestMeterSizeCollectorOnly(t *testing.T) {
	meter := NewMeterSize(4)
	if meter.Size() != 4 {
		t.Errorf("Size = %d, want 4", meter.Size())
	}
	if rep := meter.Report(); rep.Registers != 4 || rep.Writes != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	defer func() {
		if recover() == nil {
			t.Error("Read on a collector-only meter must panic")
		}
	}()
	_ = meter.Read(0)
}

func ExampleWrap() {
	meter := NewMeterSize(2)
	mem := Wrap(NewAtomicArray(2),
		Metered(meter),
		DisciplineFor(SWMRTable(2), 0),
	)
	mem.Write(0, "hello")
	fmt.Println(mem.Read(0), meter.Report().Writes)
	// Output: hello 1
}
