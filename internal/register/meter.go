package register

import (
	"sort"
	"sync"
)

// SpaceReport summarizes the register footprint of an execution: it is the
// measurement backing every space experiment (E3, E4, E8, E9). The paper
// counts a register as "used" once it can be written; we report both the
// written set and the read set so the sentinel register of Algorithm 4
// (always read, never written — Lemma 6.14) is visible.
type SpaceReport struct {
	// Registers is the size of the underlying array (the allocation budget).
	Registers int
	// Written is the number of distinct registers written at least once.
	Written int
	// WrittenSet lists the written register indices in increasing order.
	WrittenSet []int
	// MaxWrittenIndex is the largest written index, or -1 if none.
	MaxWrittenIndex int
	// MaxReadIndex is the largest index read, or -1 if none.
	MaxReadIndex int
	// Reads and Writes are total operation counts.
	Reads, Writes uint64
	// ReadCounts and WriteCounts are per-register operation counts, indexed
	// by register (length Registers).
	ReadCounts, WriteCounts []uint64
}

// Meter records which registers are read and written. It is safe for
// concurrent use. Constructed with NewMeter it is itself a Mem wrapping the
// inner memory (forwarding ReadVersioned when the inner memory supports
// it); constructed with NewMeterSize it is a bare collector fed through the
// Metered middleware, and its Mem methods must not be used.
type Meter struct {
	inner Mem
	size  int

	mu        sync.Mutex
	readCnt   []uint64
	writeCnt  []uint64
	maxRead   int
	maxWrite  int
	written   int // distinct registers written, kept incrementally for Totals
	reads     uint64
	writes    uint64
	perWriter map[int]uint64 // writer pid -> writes, when attributed
}

var _ Mem = (*Meter)(nil)

// NewMeter wraps mem with operation accounting.
func NewMeter(mem Mem) *Meter {
	m := NewMeterSize(mem.Size())
	m.inner = mem
	return m
}

// NewMeterSize returns a collector-only meter for size registers, for use
// with the Metered middleware; it has no backing memory of its own.
func NewMeterSize(size int) *Meter {
	return &Meter{
		size:      size,
		readCnt:   make([]uint64, size),
		writeCnt:  make([]uint64, size),
		maxRead:   -1,
		maxWrite:  -1,
		perWriter: make(map[int]uint64),
	}
}

// Size returns the number of registers.
func (m *Meter) Size() int { return m.size }

// Read records and forwards a read of register i.
func (m *Meter) Read(i int) Value {
	m.recordRead(i)
	return m.inner.Read(i)
}

// ReadVersioned forwards to the inner memory's versioned read. It panics if
// the inner memory is not versioned.
func (m *Meter) ReadVersioned(i int) (Value, uint64) {
	m.recordRead(i)
	return m.inner.(VersionedMem).ReadVersioned(i)
}

// Write records and forwards a write to register i.
func (m *Meter) Write(i int, v Value) {
	m.recordWrite(i, -1)
	m.inner.Write(i, v)
}

// WriteBy records a write attributed to process pid and forwards it.
func (m *Meter) WriteBy(pid, i int, v Value) {
	m.recordWrite(i, pid)
	m.inner.Write(i, v)
}

func (m *Meter) recordRead(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readCnt[i]++
	m.reads++
	if i > m.maxRead {
		m.maxRead = i
	}
}

func (m *Meter) recordWrite(i, pid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeCnt[i]++
	if m.writeCnt[i] == 1 {
		m.written++
	}
	m.writes++
	if i > m.maxWrite {
		m.maxWrite = i
	}
	if pid >= 0 {
		m.perWriter[pid]++
	}
}

// Report returns the current space report.
func (m *Meter) Report() SpaceReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := SpaceReport{
		Registers:       m.size,
		MaxWrittenIndex: m.maxWrite,
		MaxReadIndex:    m.maxRead,
		Reads:           m.reads,
		Writes:          m.writes,
		ReadCounts:      append([]uint64(nil), m.readCnt...),
		WriteCounts:     append([]uint64(nil), m.writeCnt...),
	}
	for i, c := range m.writeCnt {
		if c > 0 {
			r.Written++
			r.WrittenSet = append(r.WrittenSet, i)
		}
	}
	sort.Ints(r.WrittenSet)
	return r
}

// Totals is the scrape-cheap slice of a SpaceReport: the four scalar
// space measures, with no per-register slices copied.
type Totals struct {
	// Registers is the allocated array size (the budget).
	Registers int
	// Written is the number of distinct registers written at least once —
	// the paper's "used" count that the Θ-bound certificates bound.
	Written int
	// Reads and Writes are total operation counts.
	Reads, Writes uint64
}

// Totals returns the scalar space measures without copying the
// per-register count slices, cheap enough to sample on every metrics
// scrape of a live daemon.
func (m *Meter) Totals() Totals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Totals{Registers: m.size, Written: m.written, Reads: m.reads, Writes: m.writes}
}

// WritesTo returns the number of writes applied to register i.
func (m *Meter) WritesTo(i int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeCnt[i]
}

// WritesBy returns the number of attributed writes by process pid (only
// writes issued through WriteBy are attributed).
func (m *Meter) WritesBy(pid int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.perWriter[pid]
}

// Reset clears all counters, keeping the underlying memory contents.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.readCnt {
		m.readCnt[i] = 0
		m.writeCnt[i] = 0
	}
	m.maxRead, m.maxWrite = -1, -1
	m.written = 0
	m.reads, m.writes = 0, 0
	m.perWriter = make(map[int]uint64)
}
