// Package register models the shared-memory substrate of the paper: an
// asynchronous system of n processes communicating only through
// multi-writer multi-reader atomic registers, each initialized to ⊥
// (represented as a nil Value).
//
// Algorithms are written against the Mem interface so that identical
// algorithm code runs in two worlds:
//
//   - AtomicArray: real concurrency on hardware atomics (goroutines +
//     sync/atomic), used for wait-freedom validation and throughput benches;
//   - the deterministic step scheduler in internal/sched, used to replay
//     adversarial schedules, block writes and covering configurations from
//     the lower-bound proofs.
//
// Written values must be treated as immutable: a Write publishes the value
// to concurrent readers, and mutating it afterwards is a data race in the
// atomic world and a model violation in the simulated world.
package register

import (
	"fmt"
	"sync/atomic"
)

// Value is the content of a register. nil represents ⊥, the initial value.
// Values are treated as immutable once written.
type Value = any

// Mem is an array of atomic registers indexed from 0 to Size()-1.
//
// In the simulated world each process holds its own Mem handle (operations
// are attributed to that process and gated by the scheduler); in the atomic
// world all processes may share a single handle.
type Mem interface {
	// Read returns the current value of register i (nil if ⊥).
	Read(i int) Value
	// Write atomically replaces the value of register i.
	Write(i int, v Value)
	// Size returns the number of registers.
	Size() int
}

// VersionedMem is implemented by memories that stamp every write of each
// register with a strictly increasing version. Versions support a
// linearizable double-collect scan without relying on value uniqueness;
// they are an implementation device, not additional shared state visible to
// the algorithms (the paper's Algorithm 4 never needs them because all its
// written values are distinct per register, Claim 6.1(b)).
type VersionedMem interface {
	Mem
	// ReadVersioned returns the value of register i together with the number
	// of writes applied to it so far (0 for a never-written register).
	ReadVersioned(i int) (Value, uint64)
}

// cell is one atomic register: an immutable (value, version) snapshot
// swapped in atomically on every write.
type cell struct {
	val     Value
	version uint64
}

// AtomicArray is a wait-free multi-writer multi-reader register array backed
// by sync/atomic pointers. The zero value is unusable; construct with
// NewAtomicArray.
type AtomicArray struct {
	cells []atomic.Pointer[cell]
}

var _ VersionedMem = (*AtomicArray)(nil)

// NewAtomicArray returns an array of m registers, all initialized to ⊥.
func NewAtomicArray(m int) *AtomicArray {
	if m < 0 {
		panic(fmt.Sprintf("register: negative size %d", m))
	}
	return &AtomicArray{cells: make([]atomic.Pointer[cell], m)}
}

// Size returns the number of registers.
func (a *AtomicArray) Size() int { return len(a.cells) }

// Read returns the current value of register i.
func (a *AtomicArray) Read(i int) Value {
	v, _ := a.ReadVersioned(i)
	return v
}

// ReadVersioned returns the value and write-count of register i.
func (a *AtomicArray) ReadVersioned(i int) (Value, uint64) {
	c := a.cells[i].Load()
	if c == nil {
		return nil, 0
	}
	return c.val, c.version
}

// Write atomically replaces the value of register i. Concurrent writes
// linearize in some order; the version of the installed cell reflects that
// order per register.
func (a *AtomicArray) Write(i int, v Value) {
	for {
		old := a.cells[i].Load()
		var ver uint64 = 1
		if old != nil {
			ver = old.version + 1
		}
		if a.cells[i].CompareAndSwap(old, &cell{val: v, version: ver}) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of all register values. It is NOT
// atomic across registers (use internal/snapshot for a linearizable scan);
// it exists for tests and reporting.
func (a *AtomicArray) Snapshot() []Value {
	out := make([]Value, len(a.cells))
	for i := range a.cells {
		out[i] = a.Read(i)
	}
	return out
}
