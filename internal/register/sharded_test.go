package register

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"unsafe"
)

// Each padded cell must occupy exactly one cache line, or the padding buys
// nothing (two cells per line) or wastes double (one cell per two lines).
func TestPaddedCellIsOneCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(paddedCell{}); got != cacheLineSize {
		t.Errorf("sizeof(paddedCell) = %d, want %d", got, cacheLineSize)
	}
}

func TestShardedArrayBasics(t *testing.T) {
	a := NewShardedArray(3)
	if a.Size() != 3 {
		t.Errorf("Size = %d", a.Size())
	}
	for i := 0; i < 3; i++ {
		if v, ver := a.ReadVersioned(i); v != nil || ver != 0 {
			t.Errorf("register %d initially (%v, %d), want (⊥, 0)", i, v, ver)
		}
	}
	a.Write(1, "x")
	a.Write(1, "y")
	if v, ver := a.ReadVersioned(1); v != "y" || ver != 2 {
		t.Errorf("r1 = (%v, %d), want (y, 2)", v, ver)
	}
	if got := a.Snapshot(); got[0] != nil || got[1] != "y" || got[2] != nil {
		t.Errorf("Snapshot = %v", got)
	}
}

func TestShardedNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size must panic")
		}
	}()
	NewShardedArray(-1)
}

// The sharded array is observationally identical to the flat array under
// any sequential operation sequence, versions included.
func TestShardedFlatEquivalence(t *testing.T) {
	const m, ops = 8, 500
	flat := NewAtomicArray(m)
	sharded := NewShardedArray(m)
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < ops; op++ {
		i := rng.Intn(m)
		if rng.Intn(2) == 0 {
			v := fmt.Sprintf("v%d", op)
			flat.Write(i, v)
			sharded.Write(i, v)
		} else {
			fv, fver := flat.ReadVersioned(i)
			sv, sver := sharded.ReadVersioned(i)
			if fv != sv || fver != sver {
				t.Fatalf("op %d: flat r%d = (%v, %d), sharded = (%v, %d)", op, i, fv, fver, sv, sver)
			}
		}
	}
	for i := 0; i < m; i++ {
		if fv, sv := flat.Read(i), sharded.Read(i); fv != sv {
			t.Errorf("final r%d: flat %v, sharded %v", i, fv, sv)
		}
	}
}

// Concurrent writers: versions stay contiguous per register (every write
// gets exactly one version number) and the final version equals the write
// count.
func TestShardedConcurrentVersions(t *testing.T) {
	const writers, perWriter = 8, 200
	a := NewShardedArray(2)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				a.Write(k%2, w*perWriter+k)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if _, ver := a.ReadVersioned(i); ver != writers*perWriter/2 {
			t.Errorf("r%d version = %d, want %d", i, ver, writers*perWriter/2)
		}
	}
}
