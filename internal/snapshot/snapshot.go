// Package snapshot implements the obstruction-free scan of Afek, Attiya,
// Dolev, Gafni, Merritt and Shavit ("Atomic snapshots of shared memory",
// JACM 1993) used by Algorithm 4, line 13 of the paper.
//
// A collect reads each register in order; a scan repeatedly collects until
// two contiguous views are identical (a successful double collect) and is
// linearizable at any point between the last two collects.
//
// Two view-equality strategies are provided:
//
//   - ScanVersioned compares per-register write versions, which makes the
//     double collect sound for arbitrary value universes (two writes of the
//     same value are still distinguishable);
//   - Scan compares the values themselves with reflect.DeepEqual, which is
//     exactly the paper's scan and is sound for Algorithm 4 because each
//     value written to a given register is distinct (Claim 6.1(b)).
//
// The scan is not wait-free in general, but every use in this module is:
// Algorithm 4 performs at most m−1 writes per getTS (Lemma 6.14), so the
// number of failed collects is bounded. MaxCollects is a defensive backstop
// that converts an impossible livelock into an error.
package snapshot

import (
	"errors"
	"reflect"

	"tsspace/internal/register"
)

// MaxCollects bounds the number of collects a single scan may attempt
// before giving up. In this module's algorithms a scan provably succeeds
// long before the bound; hitting it indicates a broken memory or an
// unbounded writer and is reported as ErrLivelock.
const MaxCollects = 1 << 20

// ErrLivelock is returned when a scan exceeds MaxCollects collects.
var ErrLivelock = errors.New("snapshot: scan exceeded collect budget")

// Collect reads registers [0, mem.Size()) in index order and returns the
// resulting view. A collect alone is not atomic.
func Collect(mem register.Mem) []register.Value {
	view := make([]register.Value, mem.Size())
	for i := range view {
		view[i] = mem.Read(i)
	}
	return view
}

// Scan returns a linearizable view of the registers via double collect with
// value equality (reflect.DeepEqual per register). It is sound when, per
// register, distinct writes install distinguishable values — the invariant
// Algorithm 4 maintains (Claim 6.1(b)).
func Scan(mem register.Mem) ([]register.Value, error) {
	prev := Collect(mem)
	for c := 1; c < MaxCollects; c++ {
		cur := Collect(mem)
		if viewsEqual(prev, cur) {
			return cur, nil
		}
		prev = cur
	}
	return nil, ErrLivelock
}

func viewsEqual(a, b []register.Value) bool {
	for i := range a {
		if !valueEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func valueEqual(a, b register.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.DeepEqual(a, b)
}

// ScanVersioned returns a linearizable view using per-register write
// versions for the double collect, sound for any value universe.
func ScanVersioned(mem register.VersionedMem) ([]register.Value, error) {
	collect := func() ([]register.Value, []uint64) {
		vals := make([]register.Value, mem.Size())
		vers := make([]uint64, mem.Size())
		for i := range vals {
			vals[i], vers[i] = mem.ReadVersioned(i)
		}
		return vals, vers
	}
	_, prevVers := collect()
	for c := 1; c < MaxCollects; c++ {
		vals, vers := collect()
		same := true
		for i := range vers {
			if vers[i] != prevVers[i] {
				same = false
				break
			}
		}
		if same {
			return vals, nil
		}
		prevVers = vers
	}
	return nil, ErrLivelock
}
