package snapshot

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"tsspace/internal/register"
	"tsspace/internal/sched"
)

func TestCollectReadsAll(t *testing.T) {
	mem := register.NewAtomicArray(3)
	mem.Write(0, "a")
	mem.Write(2, 7)
	view := Collect(mem)
	if view[0] != "a" || view[1] != nil || view[2] != 7 {
		t.Errorf("view = %v", view)
	}
}

func TestScanQuiescent(t *testing.T) {
	mem := register.NewAtomicArray(4)
	mem.Write(1, []int{1, 2})
	view, err := Scan(mem)
	if err != nil {
		t.Fatal(err)
	}
	if got := view[1].([]int); got[0] != 1 || got[1] != 2 {
		t.Errorf("view[1] = %v", view[1])
	}
}

func TestScanVersionedQuiescent(t *testing.T) {
	mem := register.NewAtomicArray(2)
	mem.Write(0, "x")
	view, err := ScanVersioned(mem)
	if err != nil {
		t.Fatal(err)
	}
	if view[0] != "x" || view[1] != nil {
		t.Errorf("view = %v", view)
	}
}

// A scan concurrent with bounded writers must return a view that is a
// monotone cut: for a register written with increasing values, the scanned
// value together with scan position must never show a later write in a low
// register paired with an earlier write in a high register IF the high one
// was written first. We verify the weaker but decisive linearizability
// witness for single-register streams: the returned value per register is
// one of the written values and versions never exceed the final count.
func TestScanConcurrentWriters(t *testing.T) {
	const writers, perWriter = 4, 500
	mem := register.NewAtomicArray(writers)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 1; k <= perWriter; k++ {
				mem.Write(w, k)
			}
		}(w)
	}
	scans := 0
	for !stop.Load() {
		view, err := ScanVersioned(mem)
		if err != nil {
			t.Fatal(err)
		}
		scans++
		for i, v := range view {
			if v == nil {
				continue
			}
			k := v.(int)
			if k < 1 || k > perWriter {
				t.Fatalf("register %d scanned impossible value %d", i, k)
			}
		}
		select {
		case <-done(&wg):
			stop.Store(true)
		default:
		}
	}
	if scans == 0 {
		t.Error("no scans completed")
	}
}

func done(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// Deterministic linearizability witness: writer bumps registers 0 then 1 in
// lock-step (so r0 >= r1 always holds at every instant). Any linearizable
// scan must observe r0 >= r1; a naive single collect interleaved
// adversarially observes r0 < r1. We drive both through the deterministic
// scheduler to prove (a) the violation exists and (b) double collect
// refuses it.
func TestScanLinearizableUnderScheduler(t *testing.T) {
	// Process 0: writer does r0=1, r1=1, r0=2, r1=2.
	// Process 1: scanner.
	type result struct{ v0, v1 int }
	mkBody := func(useScan bool) sched.Body {
		return func(pid int, mem register.Mem) (any, error) {
			if pid == 0 {
				for k := 1; k <= 2; k++ {
					mem.Write(0, k)
					mem.Write(1, k)
				}
				return nil, nil
			}
			if useScan {
				view, err := Scan(mem)
				if err != nil {
					return nil, err
				}
				return result{asInt(view[0]), asInt(view[1])}, nil
			}
			view := Collect(mem)
			return result{asInt(view[0]), asInt(view[1])}, nil
		}
	}

	// Adversarial schedule: writer sets r0=1, scanner reads r0 (sees 1),
	// writer completes everything (r1=1, r0=2, r1=2), scanner reads r1
	// (sees 2): torn view 1 < 2.
	sys := sched.New(2, 2, mkBody(false))
	if err := sys.Run(0, 1, 0, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	res, _ := sys.Result(1)
	torn := res.(result)
	if !(torn.v0 < torn.v1) {
		t.Fatalf("expected torn single collect, got %+v", torn)
	}

	// The same adversary against the double-collect scan: whatever the
	// interleaving, the returned view satisfies v0 >= v1.
	factory := func() *sched.System { return sched.New(2, 2, mkBody(true)) }
	err := sched.Sample(factory, 200, 99, func(sys *sched.System, _ []int) error {
		if err := sys.Err(1); err != nil {
			return err
		}
		res, ok := sys.Result(1)
		if !ok {
			t.Fatal("scanner did not finish")
		}
		r := res.(result)
		if r.v0 < r.v1 {
			t.Fatalf("scan returned non-linearizable view %+v", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func asInt(v register.Value) int {
	if v == nil {
		return 0
	}
	return v.(int)
}

// Value-equality scan can be fooled by ABA when values repeat; versioned
// scan cannot. This documents exactly why Algorithm 4 relies on value
// distinctness (Claim 6.1(b)).
func TestScanVersionedDefeatsABA(t *testing.T) {
	// Writer: r0: A->B->A while bumping r1 in between. The value-equality
	// double collect may pair r0=A from before with r0=A from after and
	// miss r1's change... the versioned scan's view must still be a
	// consistent cut. We assert versioned scan under the scheduler never
	// returns (r0=A-initial, r1=final) torn pairs by checking the invariant
	// v1 <= writes-to-r0-observed. Here we keep it simple: versioned scan
	// must never return the pre-state (A, 0) once r1 is final, when run solo
	// after the writer finished.
	mem := register.NewAtomicArray(2)
	mem.Write(0, "A")
	mem.Write(1, 1)
	mem.Write(0, "B")
	mem.Write(0, "A") // ABA
	mem.Write(1, 2)
	view, err := ScanVersioned(mem)
	if err != nil {
		t.Fatal(err)
	}
	if view[0] != "A" || view[1] != 2 {
		t.Errorf("view = %v, want [A 2]", view)
	}
}

func BenchmarkScan(b *testing.B) {
	mem := register.NewAtomicArray(32)
	for i := 0; i < 32; i++ {
		mem.Write(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(mem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanVersioned(b *testing.B) {
	mem := register.NewAtomicArray(32)
	for i := 0; i < 32; i++ {
		mem.Write(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanVersioned(mem); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: on quiescent memory a scan equals a plain collect (random
// contents, including nils and repeated values).
func TestQuickScanQuiescentEqualsCollect(t *testing.T) {
	f := func(vals []int16, gaps []bool) bool {
		m := len(vals)
		if m == 0 {
			return true
		}
		mem := register.NewAtomicArray(m)
		for i, v := range vals {
			if i < len(gaps) && gaps[i] {
				continue // leave ⊥
			}
			mem.Write(i, int(v))
		}
		want := Collect(mem)
		got, err := Scan(mem)
		if err != nil {
			return false
		}
		gotV, err := ScanVersioned(mem)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] || gotV[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The collect budget backstop: a pathological memory whose values change on
// every read can livelock a scan; MaxCollects converts it to ErrLivelock.
func TestScanLivelockDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("spins MaxCollects times")
	}
	mem := &volatileMem{}
	if _, err := Scan(mem); !errors.Is(err, ErrLivelock) {
		t.Errorf("err = %v, want ErrLivelock", err)
	}
}

// volatileMem returns a fresh value on every read: no double collect can
// ever succeed.
type volatileMem struct {
	n atomic.Uint64
}

func (m *volatileMem) Size() int { return 1 }
func (m *volatileMem) Read(int) register.Value {
	return m.n.Add(1)
}
func (m *volatileMem) Write(int, register.Value) {}
