package mutex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tsspace/internal/timestamp"
	"tsspace/internal/timestamp/collect"
	"tsspace/internal/timestamp/dense"
	"tsspace/internal/timestamp/fas"
)

func algs(n int) []timestamp.Algorithm {
	return []timestamp.Algorithm{collect.New(n), dense.New(n), fas.New(n)}
}

// Mutual exclusion: a non-atomic critical-section counter incremented under
// the lock must end exactly at the number of entries, and at most one
// process may ever be inside.
func TestMutualExclusion(t *testing.T) {
	const n, iters = 6, 200
	for _, alg := range algs(n) {
		t.Run(alg.Name(), func(t *testing.T) {
			m := New(alg, n)
			var inside atomic.Int32
			counter := 0 // deliberately unsynchronized; the lock must protect it
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for k := 0; k < iters; k++ {
						if err := m.Lock(pid); err != nil {
							t.Error(err)
							return
						}
						if got := inside.Add(1); got != 1 {
							t.Errorf("mutual exclusion violated: %d inside", got)
						}
						counter++
						inside.Add(-1)
						m.Unlock(pid)
					}
				}(pid)
			}
			wg.Wait()
			if counter != n*iters {
				t.Errorf("counter = %d, want %d (lost updates: exclusion broken)", counter, n*iters)
			}
		})
	}
}

// FCFS fairness: if process A completes its doorway before process B begins
// its doorway, A enters the critical section before B. We approximate the
// doorway order by the drawn timestamps: entries into the critical section
// must be observed in timestamp order among hb-ordered doorways. Here we
// test the strongest observable consequence under sequential contention:
// with processes queueing one by one, service order equals arrival order.
func TestFCFSSequentialArrivals(t *testing.T) {
	const n = 4
	m := New(collect.New(n), n)

	// p0 takes the lock and holds it.
	if err := m.Lock(0); err != nil {
		t.Fatal(err)
	}
	// p1, p2, p3 arrive in order: each completes its doorway before the
	// next starts. Start each contender only after the previous one is
	// provably inside its waiting loop — we use the announce register as
	// the doorway-completion witness.
	order := make(chan int, n)
	var wg sync.WaitGroup
	for _, pid := range []int{1, 2, 3} {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if err := m.Lock(pid); err != nil {
				t.Error(err)
				return
			}
			order <- pid
			m.Unlock(pid)
		}(pid)
		// Wait for pid's doorway to complete (announcement published).
		for m.announce.Read(pid) == nil {
		}
	}
	m.Unlock(0)
	wg.Wait()
	close(order)
	var got []int
	for pid := range order {
		got = append(got, pid)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order %v, want %v (FCFS violated)", got, want)
		}
	}
}

func TestRejectsOneShot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("one-shot algorithm must be rejected")
		}
	}()
	// simple is one-shot; constructing a lock over it is a programming
	// error.
	New(&oneShotStub{}, 2)
}

type oneShotStub struct{ timestamp.Algorithm }

func (*oneShotStub) OneShot() bool { return true }
func (*oneShotStub) Name() string  { return "stub" }

func TestInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 must be rejected")
		}
	}()
	New(collect.New(1), 0)
}

func BenchmarkLockUnlock(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := New(collect.New(n), n)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				pid := int(next.Add(1)-1) % n
				for pb.Next() {
					if err := m.Lock(pid); err != nil {
						b.Fatal(err)
					}
					m.Unlock(pid)
				}
			})
		})
	}
}

// k-exclusion: at most k processes inside simultaneously, and with enough
// capacity genuine concurrency occurs.
func TestKExclusion(t *testing.T) {
	const n, iters = 8, 100
	for _, k := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			m := NewK(collect.New(n), n, k)
			var inside, maxInside atomic.Int32
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for it := 0; it < iters; it++ {
						if err := m.Lock(pid); err != nil {
							t.Error(err)
							return
						}
						cur := inside.Add(1)
						if cur > int32(k) {
							t.Errorf("k-exclusion violated: %d inside with k=%d", cur, k)
						}
						for {
							prev := maxInside.Load()
							if cur <= prev || maxInside.CompareAndSwap(prev, cur) {
								break
							}
						}
						inside.Add(-1)
						m.Unlock(pid)
					}
				}(pid)
			}
			wg.Wait()
			if k >= n && maxInside.Load() != int32(n) {
				// With k = n the lock never blocks; under this much traffic
				// full concurrency should be observed at least once. (Not a
				// hard guarantee, but with 100 iterations it is effectively
				// certain; a failure here suggests over-serialization.)
				t.Logf("note: max concurrency observed %d of %d", maxInside.Load(), n)
			}
			t.Logf("k=%d: max inside %d", k, maxInside.Load())
		})
	}
}

func TestNewKValidation(t *testing.T) {
	for _, bad := range [][2]int{{2, 0}, {2, 3}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewK(n=%d, k=%d) should panic", bad[0], bad[1])
				}
			}()
			NewK(collect.New(2), bad[0], bad[1])
		}()
	}
}
