package mutex

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsspace/internal/timestamp/collect"
)

// With k = n and a non-trivial critical section, real concurrency must be
// observable (the lock admits everyone immediately).
func TestKExclusionConcurrencyObservable(t *testing.T) {
	const n = 8
	m := NewK(collect.New(n), n, n)
	var inside, maxInside atomic.Int32
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				if err := m.Lock(pid); err != nil {
					t.Error(err)
					return
				}
				cur := inside.Add(1)
				for {
					prev := maxInside.Load()
					if cur <= prev || maxInside.CompareAndSwap(prev, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inside.Add(-1)
				m.Unlock(pid)
			}
		}(pid)
	}
	wg.Wait()
	if maxInside.Load() < 2 {
		t.Errorf("no concurrency observed with k=n: max inside %d", maxInside.Load())
	}
	t.Logf("k=n=%d: max inside %d", n, maxInside.Load())
}
