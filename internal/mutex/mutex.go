// Package mutex implements first-come-first-served mutual exclusion from a
// long-lived timestamp object plus atomic registers — the application that
// opens the paper's introduction (Lamport's bakery, Ricart–Agrawala,
// FIFO allocation: "ensuring first-come-first-served fairness").
//
// The construction is Lamport's bakery algorithm with the ticket-drawing
// step replaced by getTS() on an arbitrary timestamp object:
//
//	lock(i):   choosing[i] ← true            // doorway opens
//	           t_i ← getTS()
//	           announce[i] ← t_i             // doorway closes
//	           choosing[i] ← false
//	           for each j ≠ i:
//	               wait until ¬choosing[j]
//	               wait until announce[j] = ⊥ ∨ (t_i, i) < (t_j, j)
//	unlock(i): announce[i] ← ⊥
//
// Mutual exclusion and FCFS fairness follow from the happens-before
// property of the timestamp object exactly as in the bakery proof: if
// process i's doorway completes before process j's begins, then
// compare(t_i, t_j) = true, so j waits for i. Ties (concurrent doorways
// may draw equal timestamps) are broken by process id, which is why the
// wait condition compares pairs.
//
// The lock is built from 2n registers plus whatever the timestamp object
// uses; with the dense baseline that totals 3n−1 registers, and the
// timestamp part is exactly what Theorem 1.1 proves cannot go below
// Ω(n) — this package is the canonical consumer the bound speaks about.
package mutex

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
)

// Mutex is an n-process FCFS lock over a timestamp object, generalized to
// k-exclusion: up to k processes may hold it simultaneously (k = 1 is
// ordinary mutual exclusion).
type Mutex struct {
	n        int
	k        int
	alg      timestamp.Algorithm
	tsMem    register.Mem
	choosing []atomic.Bool
	announce *register.AtomicArray // Timestamp or ⊥, one per process
	seqs     []int                 // per-process getTS invocation counts
}

// announcement is the published ticket of a process inside the doorway.
type announcement struct {
	ts timestamp.Timestamp
}

// New builds an FCFS mutex (1-exclusion) for n processes on the given
// long-lived timestamp algorithm.
func New(alg timestamp.Algorithm, n int) *Mutex {
	return NewK(alg, n, 1)
}

// NewK builds an FCFS k-exclusion lock: at most k processes hold it at any
// time, admitted in ticket order (cf. the FIFO allocation of identical
// resources the paper cites, Fischer–Lynch–Burns–Borodin).
func NewK(alg timestamp.Algorithm, n, k int) *Mutex {
	if alg.OneShot() {
		panic(fmt.Sprintf("mutex: %s is one-shot; the lock needs a long-lived object", alg.Name()))
	}
	if n < 1 || k < 1 || k > n {
		panic(fmt.Sprintf("mutex: invalid n=%d k=%d", n, k))
	}
	return &Mutex{
		n:        n,
		k:        k,
		alg:      alg,
		tsMem:    timestamp.NewMem(alg),
		choosing: make([]atomic.Bool, n),
		announce: register.NewAtomicArray(n),
		seqs:     make([]int, n),
	}
}

// Lock acquires the lock for process pid. Each pid must be used by one
// goroutine at a time (the standard shared-memory process model).
//
// Admission: pid enters when a full scan counts fewer than k announced
// tickets preceding its own. The scan is sound despite being non-atomic:
// if the scan misses process j's announcement, then j's doorway began
// after this process's choosing[j] check, which is after this process's
// own doorway completed — so by the happens-before property j's ticket
// compares after ours and j never needed counting.
func (m *Mutex) Lock(pid int) error {
	// Doorway: draw a ticket and publish it. choosing[pid] closes the race
	// between drawing and publishing, exactly as in the bakery.
	m.choosing[pid].Store(true)
	ts, err := m.alg.GetTS(m.tsMem, pid, m.seqs[pid])
	if err != nil {
		m.choosing[pid].Store(false)
		return fmt.Errorf("mutex: p%d: %w", pid, err)
	}
	m.seqs[pid]++
	m.announce.Write(pid, &announcement{ts: ts})
	m.choosing[pid].Store(false)

	for {
		smaller := 0
		for j := 0; j < m.n; j++ {
			if j == pid {
				continue
			}
			// Wait for j to finish publishing, if it is mid-doorway.
			for m.choosing[j].Load() {
				runtime.Gosched()
			}
			if v := m.announce.Read(j); v != nil {
				if m.precedes(v.(*announcement).ts, j, ts, pid) {
					smaller++
				}
			}
		}
		if smaller < m.k {
			return nil
		}
		runtime.Gosched()
	}
}

// precedes orders (t, pid) pairs: timestamp order first, pid ties second.
func (m *Mutex) precedes(ti timestamp.Timestamp, i int, tj timestamp.Timestamp, j int) bool {
	if m.alg.Compare(ti, tj) {
		return true
	}
	if m.alg.Compare(tj, ti) {
		return false
	}
	return i < j // concurrent tickets: break by id
}

// Unlock releases the lock for process pid.
func (m *Mutex) Unlock(pid int) {
	m.announce.Write(pid, nil)
}
