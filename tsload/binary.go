package tsload

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"tsspace"
	"tsspace/tsserve"
)

// Binary is the wire-v3 backend: the data plane (attach, pipelined getTS
// batches, detach, compare) runs over the daemon's persistent-connection
// binary listener, while the control plane (health probe, /metrics space
// report) stays on its HTTP endpoints. A BENCH row with target "binary"
// prices the same session semantics as "http" with the HTTP/JSON harness
// tax removed — the difference between the two rows is exactly the
// encoding and connection model.
type Binary struct {
	bin    *tsserve.BinaryClient
	client *tsserve.Client
	health tsserve.Health
}

// ErrUnhealthy is wrapped when a probed daemon answers the health
// check with a status other than "ok".
var ErrUnhealthy = errors.New("tsload: daemon not healthy")

// NewBinary probes the daemon at baseURL over HTTP, then wraps its binary
// listener at binAddr (e.g. "127.0.0.1:8038") as a load target. hc may be
// nil for tsserve's shared keep-alive client. The probe also exercises one
// binary round trip so a wrong binAddr fails here, not mid-run.
func NewBinary(ctx context.Context, baseURL, binAddr string, hc *http.Client) (*Binary, error) {
	c := tsserve.NewClient(baseURL, hc)
	h, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("tsload: probing %s: %w", baseURL, err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("%w: %s reports status %q", ErrUnhealthy, baseURL, h.Status)
	}
	bin := tsserve.NewBinaryClient(binAddr)
	if _, err := bin.Compare(ctx, tsspace.Timestamp{}, tsspace.Timestamp{Rnd: 1}); err != nil {
		bin.Close()
		return nil, fmt.Errorf("tsload: probing binary listener %s: %w", binAddr, err)
	}
	return &Binary{bin: bin, client: c, health: h}, nil
}

// Kind returns "binary".
func (t *Binary) Kind() string { return "binary" }

// Algorithm returns the daemon's algorithm, as reported by /healthz.
func (t *Binary) Algorithm() string { return t.health.Algorithm }

// Procs returns the daemon object's paper-process count.
func (t *Binary) Procs() int { return t.health.Procs }

// OneShot reports the daemon object's one-shot flag.
func (t *Binary) OneShot() bool { return t.health.OneShot }

// Attach leases a wire-v3 session bound to its own pooled connection.
func (t *Binary) Attach(ctx context.Context) (tsspace.SessionAPI, error) {
	s, err := t.bin.Attach(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Compare round-trips a compare frame over a pooled connection.
func (t *Binary) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return t.bin.Compare(ctx, t1, t2)
}

// Space reads the /metrics space section over HTTP, when the daemon is
// metered.
func (t *Binary) Space(ctx context.Context) (SpaceReport, bool) {
	m, err := t.client.Metrics(ctx)
	if err != nil || m.Space == nil {
		return SpaceReport{}, false
	}
	return SpaceReport{
		Registers: m.Space.Registers, Written: m.Space.Written,
		Reads: m.Space.Reads, Writes: m.Space.Writes,
	}, true
}

// Close closes the binary client's pooled connections; the daemon belongs
// to whoever started it.
func (t *Binary) Close() error { return t.bin.Close() }
