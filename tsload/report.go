package tsload

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// BenchSchema versions the BENCH_*.json layout.
const BenchSchema = "tsload/bench/v1"

// ErrBenchSchema is wrapped when a BENCH file carries a schema other
// than BenchSchema.
var ErrBenchSchema = errors.New("tsload: bench schema mismatch")

// Host describes the machine a BENCH file was produced on.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// CurrentHost captures the running process's host facts.
func CurrentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// BenchReport is the body of one BENCH_<scenario>.json file: the machine-
// readable perf trajectory entry a cmd/tsload run leaves behind.
type BenchReport struct {
	Schema   string `json:"schema"`
	Paper    string `json:"paper"`
	Scenario string `json:"scenario"`
	// GeneratedAt is RFC3339, stamped by the CLI.
	GeneratedAt string   `json:"generated_at"`
	Host        Host     `json:"host"`
	Results     []Result `json:"results"`
}

// BenchFileName returns the canonical file name for a scenario's report.
func BenchFileName(scenario string) string {
	return fmt.Sprintf("BENCH_%s.json", scenario)
}

// WriteBench writes the report to dir/BENCH_<scenario>.json (indented, so
// the trajectory diffs readably), creating dir if needed, and returns the
// path.
func WriteBench(dir string, rep BenchReport) (string, error) {
	if rep.Schema == "" {
		rep.Schema = BenchSchema
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, BenchFileName(rep.Scenario))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadBench loads a BENCH_*.json file back, for tooling that tracks the
// trajectory.
func ReadBench(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return rep, fmt.Errorf("%s: %w: have %q, want %q", path, ErrBenchSchema, rep.Schema, BenchSchema)
	}
	return rep, nil
}
