// Package tsload drives paper-shaped traffic against a timestamp object
// and measures it: the workload-generation and latency-measurement layer
// between the tsspace SDK and the repository's experiments.
//
// A run is a Mix (steady, churn, burst, compare — the engine's scenario
// vocabulary lifted to the session level) applied to a Target (the
// in-process SDK, a tsserved daemon over wire v2, or the deprecated
// single-request shim) under one of two pacing disciplines. Targets lease
// tsspace.SessionAPI, so the driver's operation code is the same on every
// backend; the mix's Batch knob swaps the single-call GetTS for
// GetTSBatch of that size, pricing batch amortization against the same
// harness. Two pacing disciplines:
//
//   - closed loop (Rate == 0): Workers goroutines issue operations back to
//     back — throughput is whatever the target sustains, latency is pure
//     service time.
//   - open loop (Rate > 0): operations *arrive* on a fixed schedule
//     regardless of how the target is doing, and each operation's latency
//     is measured from its intended arrival, not from when a worker got
//     around to it. A slow target therefore shows its queueing delay
//     instead of silently suppressing it — the coordinated-omission trap
//     open-loop pacing exists to avoid.
//
// Runs are warmup/measure windowed, deterministically seeded (op-kind and
// compare-operand draws come from per-worker RNGs derived from Config.Seed)
// and land per-op latencies in per-worker internal/hist histograms that
// merge into one digest. One-shot targets end naturally when the paper's
// M-timestamp budget is spent; the driver flags it instead of failing.
//
// As a free correctness check, every worker asserts the happens-before
// property on its own operation stream: its getTS calls are sequential, so
// an earlier timestamp must compare before a later one whenever a compare
// op samples a pair. Violations are counted, not fatal.
package tsload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
	"tsspace/internal/hist"
	"tsspace/tsserve"
)

// Config parameterizes one Run.
type Config struct {
	// Mix is the workload shape; see Mixes for the built-in catalog.
	Mix Mix
	// Target is the object under load. Run does not close it.
	Target Target
	// Workers is the closed-loop concurrency, or the consumer pool bound
	// (max in-flight operations) under open-loop pacing; values < 1 mean 8.
	Workers int
	// Rate switches to open-loop pacing: intended operation arrivals per
	// second. 0 runs closed-loop.
	Rate float64
	// Warmup is discarded time before the measure window.
	Warmup time.Duration
	// Duration is the measure window; values <= 0 mean 1s.
	Duration time.Duration
	// BurstGap is the closed-loop idle gap between bursts when the mix has
	// BurstSize > 1; values <= 0 mean 500µs.
	BurstGap time.Duration
	// Seed feeds the per-worker RNGs; same seed, same op-kind and
	// compare-operand decisions.
	Seed int64
	// MaxOps ends the run once this many operations have been measured;
	// 0 means time-bounded only.
	MaxOps uint64
	// ProgressEvery enables live progress reporting: every interval, a
	// Progress snapshot of the running workload goes to OnProgress.
	// Zero (or a nil OnProgress) disables reporting.
	ProgressEvery time.Duration
	// OnProgress receives the periodic snapshots. It is called from the
	// run's reporter goroutine — never concurrently with itself — and
	// must not block for long (a slow consumer delays later snapshots,
	// nothing else).
	OnProgress func(Progress)
}

// Progress is one live snapshot of a running workload, delivered to
// Config.OnProgress every ProgressEvery: enough to watch a long run
// converge (or misbehave) without waiting for the final Result. Counters
// cover measured operations only; Errors, Abandoned and Dropped count
// the whole run like their Result namesakes.
type Progress struct {
	// Mix and Target identify the run (a sweep reports many runs through
	// one callback).
	Mix    string
	Target string
	// Phase is "warmup", "measure" or "done".
	Phase string
	// Elapsed is time since Run started; MeasureElapsed time since the
	// measure window opened (0 during warmup).
	Elapsed        time.Duration
	MeasureElapsed time.Duration
	// Ops = GetTSOps + CompareOps measured so far; Timestamps is what
	// the measured getTS ops issued.
	Ops        uint64
	GetTSOps   uint64
	CompareOps uint64
	Timestamps uint64
	// Throughput is measured ops per second of measure-window time so far.
	Throughput float64
	// P50Ns and P99Ns digest the latency recorded so far (nanoseconds).
	P50Ns int64
	P99Ns int64
	// Errors, Abandoned and Dropped are running totals, warmup included.
	Errors    uint64
	Abandoned uint64
	Dropped   uint64
}

// Result is one BENCH row: everything measured about one (mix, target,
// algorithm) run. Latency values are nanoseconds.
type Result struct {
	Mix       string  `json:"mix"`
	MixKind   string  `json:"mix_kind"`
	Target    string  `json:"target"`
	Algorithm string  `json:"algorithm"`
	Procs     int     `json:"procs"`
	Mode      string  `json:"mode"` // "closed" or "open"
	Workers   int     `json:"workers"`
	Rate      float64 `json:"rate_per_sec,omitempty"`
	Seed      int64   `json:"seed"`

	// BatchSize is the effective timestamps-per-getTS-op of the run (the
	// mix's Batch after the driver's one-shot forcing; 1 for single-call).
	BatchSize int `json:"batch_size"`

	// Ops counts measured operations (GetTSOps + CompareOps); a getTS op
	// is one GetTS call or one whole GetTSBatch. Timestamps counts the
	// timestamps those measured getTS ops issued (= GetTSOps × BatchSize
	// for full batches), so per-timestamp throughput is Timestamps /
	// ElapsedSeconds. Errors and HBViolations count over the whole run,
	// warmup included.
	//
	// Errors splits into ExpectedErrors — failures the mix provokes by
	// design (ErrDetached after the TTL reaper reclaimed a lease the crash
	// mix abandoned) — and UnexpectedErrors, everything else. A crash-mix
	// run is healthy iff UnexpectedErrors == 0 and HBViolations == 0;
	// gating on Errors == 0 would reject the fault injection itself.
	Ops              uint64 `json:"ops"`
	GetTSOps         uint64 `json:"getts_ops"`
	Timestamps       uint64 `json:"timestamps"`
	CompareOps       uint64 `json:"compare_ops"`
	Errors           uint64 `json:"errors"`
	ExpectedErrors   uint64 `json:"expected_errors,omitempty"`
	UnexpectedErrors uint64 `json:"unexpected_errors"`
	// Abandoned counts leases the workers crashed on purpose (see
	// Mix.AbandonFrac): sessions dropped without Detach, left for the
	// target's idle-TTL reaper.
	Abandoned    uint64 `json:"abandoned,omitempty"`
	HBViolations uint64 `json:"hb_violations"`
	// Namespaces and NamespaceOps describe a multi-tenant run
	// (Mix.Namespaces > 0): how many namespaces were provisioned and how
	// many measured getTS ops routed to each ("load-0" first). The
	// per-namespace counts sum to GetTSOps; under a Zipf-skewed mix the
	// first entries carry the hot tenants.
	Namespaces   int      `json:"namespaces,omitempty"`
	NamespaceOps []uint64 `json:"namespace_ops,omitempty"`
	// Dropped counts open-loop arrivals that could not even be queued
	// (dispatch backlog full). Non-zero means the latency digest
	// understates the overload — read it as a saturation flag.
	Dropped uint64 `json:"dropped,omitempty"`
	// BudgetSpent marks a one-shot target ending the run by exhausting its
	// M-timestamp budget.
	BudgetSpent bool `json:"budget_spent,omitempty"`

	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Throughput     float64      `json:"throughput_ops_per_sec"`
	LatencyNs      hist.Summary `json:"latency_ns"`

	// AllocsPerOp and BytesPerOp are driver-process heap deltas over the
	// measure window divided by measured ops. In-process runs price the
	// SDK's allocation path; HTTP runs price the client stack (plus the
	// server's, when it shares the process).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// Space is the target's register-space footprint after the run, when
	// the backend exposes one.
	Space *SpaceReport `json:"space,omitempty"`
}

const (
	phaseWarm int32 = iota
	phaseMeasure
	phaseDone

	ringCap = 64 // per-worker window of recent timestamps for compare ops
)

type run struct {
	cfg      Config
	burst    int
	burstGap time.Duration
	attachEv int
	batch    int // timestamps per getTS op; 1 = single-call GetTS
	duration time.Duration
	warmEnd  time.Time
	warmCap  int64 // getTS issues that end warmup early (one-shot); -1 = none
	maxOps   uint64
	ns       *nsPlan // nil unless the mix is multi-namespace
	cancel   context.CancelFunc

	phase          atomic.Int32
	flipOnce       sync.Once
	finishOnce     sync.Once
	measureStartNs atomic.Int64
	measureEndNs   atomic.Int64
	doneNs         atomic.Int64
	memStart       runtime.MemStats

	issuedTS       atomic.Uint64 // timestamps requested, all phases (drives warmCap)
	measured       atomic.Uint64
	measuredTS     atomic.Uint64
	measuredIssued atomic.Uint64 // timestamps issued by measured getTS ops
	measuredCmp    atomic.Uint64
	errs           atomic.Uint64
	expErrs        atomic.Uint64 // subset of errs the mix provokes by design
	abandoned      atomic.Uint64 // leases crashed on purpose (Mix.AbandonFrac)
	hbViolations   atomic.Uint64
	dropped        atomic.Uint64
	budgetSpent    atomic.Bool
}

// expectedErr reports whether an operation error is one the mix provokes
// by design: under a crash mix (AbandonFrac > 0) the target's reaper
// legitimately kills leases, so ErrDetached on a session the worker still
// holds is the fault injection working, not the target failing. Likewise
// under a quota'd namespace mix (NSQuota > 0) the attach storm is built
// to overrun the cap, so a typed quota rejection is the scenario working.
func (r *run) expectedErr(err error) bool {
	if r.cfg.Mix.AbandonFrac > 0 && errors.Is(err, tsspace.ErrDetached) {
		return true
	}
	return r.cfg.Mix.NSQuota > 0 && errors.Is(err, tsserve.ErrQuota)
}

// ErrBadConfig is wrapped by every configuration-validation failure
// out of Run.
var ErrBadConfig = errors.New("tsload: invalid config")

// Run executes one workload against cfg.Target and returns its Result. It
// returns an error only for unusable configurations or a cancelled ctx;
// operation failures are counted in the Result instead.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Target == nil {
		return Result{}, fmt.Errorf("%w: Config.Target is nil", ErrBadConfig)
	}
	if cfg.Mix.Name == "" {
		return Result{}, fmt.Errorf("%w: Config.Mix has no name", ErrBadConfig)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.BurstGap <= 0 {
		cfg.BurstGap = 500 * time.Microsecond
	}

	r := &run{
		cfg:      cfg,
		burst:    cfg.Mix.BurstSize,
		burstGap: cfg.BurstGap,
		attachEv: cfg.Mix.AttachEvery,
		batch:    cfg.Mix.Batch,
		duration: cfg.Duration,
		warmCap:  -1,
		maxOps:   cfg.MaxOps,
	}
	if r.batch < 1 {
		r.batch = 1
	}
	if cfg.Target.OneShot() {
		// One paper-process, one timestamp: every lease is single-use,
		// batches collapse to 1, and warmup may spend at most a fifth of
		// the M = procs budget so the measure window still sees the rest.
		r.attachEv = 1
		r.batch = 1
		r.warmCap = int64(cfg.Target.Procs()) / 5
	}
	if cfg.Mix.Namespaces > 0 {
		plan, err := provisionNamespaces(ctx, cfg)
		if err != nil {
			return Result{}, err
		}
		defer plan.teardown()
		r.ns = plan
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.cancel = cancel

	start := time.Now()
	r.warmEnd = start.Add(cfg.Warmup)
	r.tick(start)

	// The phase clock must advance even when every worker is blocked inside
	// an operation (e.g. a daemon that accepts but never replies): a
	// watchdog ticks the run so the Duration deadline always fires,
	// cancelling runCtx and unblocking ctx-aware operations.
	go func() {
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case now := <-t.C:
				r.tick(now)
			}
		}
	}()

	hists := make([]*hist.H, cfg.Workers)
	var wg sync.WaitGroup
	var tokens chan token
	if cfg.Rate > 0 {
		tokens = make(chan token, tokenBacklog(cfg))
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.dispatch(runCtx, tokens)
		}()
	}
	for w := 0; w < cfg.Workers; w++ {
		hists[w] = hist.New()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(runCtx, w, hists[w], tokens)
		}(w)
	}
	reporting := cfg.ProgressEvery > 0 && cfg.OnProgress != nil
	var repWG sync.WaitGroup
	if reporting {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			r.report(runCtx, start, hists)
		}()
	}
	wg.Wait()
	r.finish(time.Now())
	// The final "done" snapshot fires only after every worker has joined
	// and the reporter has stopped, so it sees the settled counters and
	// OnProgress is never called concurrently with itself.
	repWG.Wait()
	if reporting {
		cfg.OnProgress(r.snapshot(start, time.Now(), hists))
	}

	var memEnd runtime.MemStats
	runtime.ReadMemStats(&memEnd)

	merged := hist.New()
	for _, h := range hists {
		merged.Merge(h)
	}

	res := Result{
		Mix:              cfg.Mix.Name,
		MixKind:          cfg.Mix.Kind(),
		Target:           cfg.Target.Kind(),
		Algorithm:        cfg.Target.Algorithm(),
		Procs:            cfg.Target.Procs(),
		Mode:             "closed",
		Workers:          cfg.Workers,
		Rate:             cfg.Rate,
		Seed:             cfg.Seed,
		BatchSize:        r.batch,
		Ops:              r.measured.Load(),
		GetTSOps:         r.measuredTS.Load(),
		Timestamps:       r.measuredIssued.Load(),
		CompareOps:       r.measuredCmp.Load(),
		Errors:           r.errs.Load(),
		ExpectedErrors:   r.expErrs.Load(),
		UnexpectedErrors: r.errs.Load() - r.expErrs.Load(),
		Abandoned:        r.abandoned.Load(),
		HBViolations:     r.hbViolations.Load(),
		Dropped:          r.dropped.Load(),
		BudgetSpent:      r.budgetSpent.Load(),
		LatencyNs:        merged.Summarize(),
	}
	if r.ns != nil {
		res.Namespaces = len(r.ns.names)
		res.NamespaceOps = make([]uint64, len(r.ns.ops))
		for i := range r.ns.ops {
			res.NamespaceOps[i] = r.ns.ops[i].Load()
		}
	}
	if cfg.Rate > 0 {
		res.Mode = "open"
	}
	// A flip that lost the race against an early finish can leave
	// measureStartNs ≥ doneNs; such a run measured nothing.
	if ms := r.measureStartNs.Load(); ms > 0 && r.doneNs.Load() > ms {
		res.ElapsedSeconds = float64(r.doneNs.Load()-ms) / 1e9
	}
	if res.ElapsedSeconds > 0 {
		res.Throughput = float64(res.Ops) / res.ElapsedSeconds
	}
	if res.Ops > 0 {
		res.AllocsPerOp = float64(memEnd.Mallocs-r.memStart.Mallocs) / float64(res.Ops)
		res.BytesPerOp = float64(memEnd.TotalAlloc-r.memStart.TotalAlloc) / float64(res.Ops)
	}
	// Space is post-run metadata: against an unresponsive HTTP target it
	// must not hang the run that the watchdog just ended.
	spaceCtx, cancelSpace := context.WithTimeout(ctx, 5*time.Second)
	defer cancelSpace()
	if sp, ok := cfg.Target.Space(spaceCtx); ok {
		res.Space = &sp
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// tokenBacklog sizes the open-loop dispatch queue to hold every intended
// arrival of the run, so an overloaded target queues arrivals (and their
// waiting time lands in the latency digest) instead of stalling the
// arrival process itself.
func tokenBacklog(cfg Config) int {
	const max = 1 << 20
	// Compare in float space: an extreme Rate must hit the cap, not
	// overflow the int conversion.
	est := cfg.Rate*(cfg.Warmup+cfg.Duration).Seconds()*1.2 + float64(2*cfg.Workers) + 64
	if !(est < max) {
		return max
	}
	return int(est)
}

// tick advances the phase machine: warmup ends on the clock or on the
// one-shot warmup budget; the measure window ends on the clock or on
// MaxOps. Returns the current phase.
func (r *run) tick(now time.Time) int32 {
	switch r.phase.Load() {
	case phaseWarm:
		if !now.Before(r.warmEnd) || (r.warmCap >= 0 && int64(r.issuedTS.Load()) >= r.warmCap) {
			r.flipOnce.Do(func() {
				ns := now.UnixNano()
				r.measureStartNs.Store(ns)
				r.measureEndNs.Store(ns + r.duration.Nanoseconds())
				runtime.ReadMemStats(&r.memStart)
				// CAS, not Store: finish() may have ended the run (one-shot
				// exhaustion during warmup) while this flip was in flight,
				// and done must never be resurrected to measure.
				r.phase.CompareAndSwap(phaseWarm, phaseMeasure)
			})
		}
	case phaseMeasure:
		if now.UnixNano() >= r.measureEndNs.Load() ||
			(r.maxOps > 0 && r.measured.Load() >= r.maxOps) {
			r.finish(now)
		}
	}
	return r.phase.Load()
}

// finish ends the run: it freezes the measured window's end time and
// releases every blocked worker.
func (r *run) finish(now time.Time) {
	r.finishOnce.Do(func() {
		r.doneNs.Store(now.UnixNano())
		r.phase.Store(phaseDone)
		r.cancel()
	})
}

// report is the live progress goroutine: every ProgressEvery it merges
// the per-worker histograms into a fresh digest and hands OnProgress a
// snapshot. Merging reads each worker's atomic bucket counters without
// disturbing them, so reporting costs the workers nothing. The final
// "done" snapshot is fired by Run after the workers join, not here, so
// it always reflects the settled counters.
func (r *run) report(ctx context.Context, start time.Time, hists []*hist.H) {
	t := time.NewTicker(r.cfg.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			r.cfg.OnProgress(r.snapshot(start, now, hists))
		}
	}
}

// snapshot assembles one Progress from the run's live counters.
func (r *run) snapshot(start, now time.Time, hists []*hist.H) Progress {
	p := Progress{
		Mix:        r.cfg.Mix.Name,
		Target:     r.cfg.Target.Kind(),
		Elapsed:    now.Sub(start),
		Ops:        r.measured.Load(),
		GetTSOps:   r.measuredTS.Load(),
		CompareOps: r.measuredCmp.Load(),
		Timestamps: r.measuredIssued.Load(),
		Errors:     r.errs.Load(),
		Abandoned:  r.abandoned.Load(),
		Dropped:    r.dropped.Load(),
	}
	switch r.phase.Load() {
	case phaseWarm:
		p.Phase = "warmup"
	case phaseMeasure:
		p.Phase = "measure"
	default:
		p.Phase = "done"
	}
	ms := r.measureStartNs.Load()
	end := now.UnixNano()
	if d := r.doneNs.Load(); d > 0 && d < end {
		end = d
	}
	if ms > 0 && end > ms {
		p.MeasureElapsed = time.Duration(end - ms)
		p.Throughput = float64(p.Ops) / p.MeasureElapsed.Seconds()
	}
	merged := hist.New()
	for _, h := range hists {
		merged.Merge(h)
	}
	if merged.Count() > 0 {
		p.P50Ns = merged.Quantile(0.50)
		p.P99Ns = merged.Quantile(0.99)
	}
	return p
}

// token is one open-loop arrival. Latency is measured against intended —
// if every worker is busy when the token's moment comes, the wait in the
// queue is part of the operation's latency.
type token struct {
	intended time.Time
	measured bool
}

// dispatch generates the open-loop arrival schedule: one token per
// 1/Rate seconds, or BurstSize tokens at once every BurstSize/Rate seconds
// for burst mixes.
func (r *run) dispatch(ctx context.Context, tokens chan<- token) {
	defer close(tokens)
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	group := 1
	if r.burst > 1 {
		group = r.burst
	}
	next := time.Now()
	for {
		ph := r.tick(time.Now())
		if ph == phaseDone {
			return
		}
		for i := 0; i < group; i++ {
			select {
			case tokens <- token{intended: next, measured: ph == phaseMeasure}:
			default:
				r.dropped.Add(1)
			}
		}
		next = next.Add(interval * time.Duration(group))
		// Sleep to the next arrival in bounded slices, ticking in between:
		// at low rates the inter-arrival gap can exceed what remains of the
		// measure window, and nobody else may be awake to end the run.
		for {
			d := time.Until(next)
			if d <= 0 {
				break
			}
			if d > 25*time.Millisecond {
				d = 25 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
			if r.tick(time.Now()) == phaseDone {
				return
			}
		}
	}
}

// tsRing is a worker's window of its most recent timestamps, indexed by
// issue order so compare operands carry their expected verdict.
type tsRing struct {
	buf [ringCap]tsspace.Timestamp
	n   uint64
}

func (g *tsRing) push(ts tsspace.Timestamp) {
	g.buf[g.n%ringCap] = ts
	g.n++
}

// pair samples two distinct logical indices from the live window and
// returns (earlier, later).
func (g *tsRing) pair(rng *rand.Rand) (older, newer tsspace.Timestamp, ok bool) {
	lo := uint64(0)
	if g.n > ringCap {
		lo = g.n - ringCap
	}
	window := g.n - lo
	if window < 2 {
		return older, newer, false
	}
	i := lo + uint64(rng.Int63n(int64(window)))
	j := lo + uint64(rng.Int63n(int64(window)-1))
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	return g.buf[i%ringCap], g.buf[j%ringCap], true
}

// worker issues operations until the run ends: paced by tokens under open
// loop, back to back (with burst gaps) under closed loop. The batch
// buffer is allocated once per worker, so batched runs put no allocation
// on the op path beyond what the target itself costs.
func (r *run) worker(ctx context.Context, id int, h *hist.H, tokens <-chan token) {
	rng := rand.New(rand.NewSource(r.cfg.Seed*1000003 + int64(id)))
	var sess tsspace.SessionAPI
	var leaseCalls int
	var nsIdx int // namespace of the current lease, when r.ns != nil
	pickNS := r.nsPicker(rng)
	var ring tsRing
	buf := make([]tsspace.Timestamp, r.batch)
	defer func() {
		if sess != nil {
			_ = sess.Detach()
		}
	}()

	opsInBurst := 0
	for {
		now := time.Now()
		ph := r.tick(now)
		if ph == phaseDone {
			return
		}

		var tok token
		if tokens != nil { // open loop: wait for the next arrival
			var open bool
			select {
			case tok, open = <-tokens:
				if !open {
					return
				}
			case <-ctx.Done():
				return
			}
		} else if r.burst > 1 && opsInBurst >= r.burst { // closed loop: burst gap
			opsInBurst = 0
			select {
			case <-ctx.Done():
				return
			case <-time.After(r.burstGap):
			}
			ph = r.tick(time.Now())
			if ph == phaseDone {
				return
			}
		}

		isCompare := false
		if r.cfg.Mix.CompareFrac > 0 && ring.n >= 2 {
			isCompare = rng.Float64() < r.cfg.Mix.CompareFrac
		}

		start := time.Now()
		issued, err := r.doOp(ctx, rng, &sess, &leaseCalls, &nsIdx, pickNS, &ring, buf, isCompare)
		end := time.Now()
		opsInBurst++

		if err != nil {
			if IsExhausted(err) {
				r.budgetSpent.Store(true)
				r.finish(end)
				return
			}
			if ctx.Err() != nil {
				return
			}
			r.errs.Add(1)
			if r.expectedErr(err) {
				r.expErrs.Add(1)
			}
			continue
		}

		lat := end.Sub(start)
		record := ph == phaseMeasure
		if tokens != nil {
			lat = end.Sub(tok.intended)
			record = tok.measured
		}
		if record {
			h.Record(lat.Nanoseconds())
			r.measured.Add(1)
			if isCompare {
				r.measuredCmp.Add(1)
			} else {
				r.measuredTS.Add(1)
				r.measuredIssued.Add(uint64(issued))
				if r.ns != nil {
					r.ns.ops[nsIdx].Add(1)
				}
			}
		}
	}
}

// nsPicker builds a worker's namespace draw: Zipf-skewed over the
// namespace indices when the mix sets ZipfS > 1 (namespace 0 hottest),
// uniform otherwise, nil-safe no-op for single-object runs. Each worker
// derives its picker from its own seeded rng, so routing is
// deterministic per seed like every other mix decision.
func (r *run) nsPicker(rng *rand.Rand) func() int {
	if r.ns == nil {
		return func() int { return 0 }
	}
	n := len(r.ns.names)
	if r.cfg.Mix.ZipfS > 1 && n > 1 {
		z := rand.NewZipf(rng, r.cfg.Mix.ZipfS, 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(n) }
}

// doOp performs one operation: a compare over two previously issued
// timestamps (asserting their happens-before verdict), or a getTS under
// the mix's session-lease and batch policy. issued is the number of
// timestamps a getTS op produced (0 for compare ops).
func (r *run) doOp(ctx context.Context, rng *rand.Rand, sess *tsspace.SessionAPI, leaseCalls *int, nsIdx *int, pickNS func() int, ring *tsRing, buf []tsspace.Timestamp, isCompare bool) (issued int, err error) {
	if isCompare {
		older, newer, ok := ring.pair(rng)
		if !ok {
			// The worker only chooses compare with ≥ 2 ringed timestamps;
			// surfacing this as an error keeps the GetTSOps/CompareOps
			// split honest if that invariant ever breaks.
			return 0, errors.New("tsload: internal: compare op with fewer than 2 timestamps in the ring")
		}
		before, err := r.cfg.Target.Compare(ctx, older, newer)
		if err != nil {
			return 0, err
		}
		if !before {
			r.hbViolations.Add(1)
		}
		return 0, nil
	}

	r.issuedTS.Add(uint64(r.batch))
	if *sess == nil {
		var s tsspace.SessionAPI
		var err error
		if r.ns != nil {
			// Multi-tenant routing: each new lease draws its namespace
			// (Zipf-skewed when the mix says so) and binds into it.
			*nsIdx = pickNS()
			s, err = r.ns.prov.AttachNamespace(ctx, r.ns.names[*nsIdx])
		} else {
			s, err = r.cfg.Target.Attach(ctx)
		}
		if err != nil {
			return 0, err
		}
		*sess = s
		*leaseCalls = 0
	}
	if r.batch > 1 {
		issued, err = (*sess).GetTSBatch(ctx, buf)
	} else {
		// Batch 1 goes through GetTS proper, so the single-call entry
		// point stays priced (and the shim comparison stays honest).
		var ts tsspace.Timestamp
		ts, err = (*sess).GetTS(ctx)
		if err == nil {
			buf[0], issued = ts, 1
		}
	}
	if err != nil {
		// A dead lease must not wedge the worker: drop it either way.
		_ = (*sess).Detach()
		*sess = nil
		return issued, err
	}
	for i := 0; i < issued; i++ {
		ring.push(buf[i])
	}
	*leaseCalls++ // AttachEvery counts getTS operations: a whole batch is one
	if r.attachEv > 0 && *leaseCalls >= r.attachEv {
		if r.cfg.Mix.AbandonFrac > 0 && rng.Float64() < r.cfg.Mix.AbandonFrac {
			// Crash: walk away from the lease without Detach. The pid
			// stays leased until the target's idle-TTL reaper reclaims
			// it — the abandonment path this mix exists to exercise.
			*sess = nil
			r.abandoned.Add(1)
			return issued, nil
		}
		err := (*sess).Detach()
		*sess = nil
		if err != nil {
			return issued, fmt.Errorf("tsload: detach: %w", err)
		}
	}
	return issued, nil
}
