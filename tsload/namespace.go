package tsload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
	"tsspace/tsserve"
)

// NamespaceSpec parameterizes one provisioned namespace of a
// multi-tenant run: the broker-side Object configuration the driver
// asks each target to create before traffic starts.
type NamespaceSpec struct {
	// Algorithm names the registry implementation; empty inherits the
	// target's own.
	Algorithm string
	// Procs is the namespace Object's paper-process count; values < 1
	// inherit the target's own.
	Procs int
	// MaxSessions caps concurrently held leases in the namespace
	// (0 = unlimited). An attach beyond the cap fails with
	// tsserve.ErrQuota — the typed rejection the storm mix provokes on
	// purpose.
	MaxSessions int
}

// NamespaceProvisioner is the optional target surface behind
// multi-namespace mixes (Mix.Namespaces > 0): provision named Objects,
// bind sessions into them, tear them down. The in-process target
// implements it with a local object table; the HTTP and binary targets
// drive a tsserved daemon's broker endpoints — so a tenants BENCH row
// prices the same namespace routing the daemon serves in production.
// Targets without the surface (the deprecated HTTP shim) reject
// namespace mixes at Run with ErrBadConfig.
type NamespaceProvisioner interface {
	// ProvisionNamespace creates the named namespace. Re-provisioning
	// the same spec is idempotent.
	ProvisionNamespace(ctx context.Context, name string, spec NamespaceSpec) error
	// AttachNamespace leases one session bound into the named
	// namespace. A namespace at its MaxSessions quota fails with an
	// error matching tsserve.ErrQuota.
	AttachNamespace(ctx context.Context, name string) (tsspace.SessionAPI, error)
	// DeprovisionNamespace drops the namespace, force-detaching its
	// live leases.
	DeprovisionNamespace(ctx context.Context, name string) error
}

// inprocNS is one locally provisioned namespace: its own SDK object and
// the same reserve-before-attach quota book the daemon's broker keeps.
type inprocNS struct {
	obj    *tsspace.Object
	max    int
	active atomic.Int64
}

func (n *inprocNS) reserve() bool {
	for {
		cur := n.active.Load()
		if n.max > 0 && cur >= int64(n.max) {
			return false
		}
		if n.active.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// nsSession wraps a leased session so its quota slot releases exactly
// once, whether the worker detaches or the deprovision sweep does.
type nsSession struct {
	tsspace.SessionAPI
	release func()
	once    sync.Once
}

func (s *nsSession) Detach() error {
	err := s.SessionAPI.Detach()
	s.once.Do(s.release)
	return err
}

// ProvisionNamespace creates a local namespace object. The in-process
// target mirrors the daemon broker's semantics: an identical re-PUT is
// idempotent, a conflicting one fails with tsserve.ErrNamespaceExists.
func (t *InProc) ProvisionNamespace(_ context.Context, name string, spec NamespaceSpec) error {
	if spec.Algorithm == "" {
		spec.Algorithm = t.obj.Algorithm()
	}
	if spec.Procs < 1 {
		spec.Procs = t.obj.Procs()
	}
	t.nsMu.Lock()
	defer t.nsMu.Unlock()
	if existing, ok := t.ns[name]; ok {
		if existing.obj.Algorithm() == spec.Algorithm && existing.obj.Procs() == spec.Procs && existing.max == spec.MaxSessions {
			return nil
		}
		return fmt.Errorf("tsload: namespace %q: %w", name, tsserve.ErrNamespaceExists)
	}
	obj, err := tsspace.New(tsspace.WithAlgorithm(spec.Algorithm), tsspace.WithProcs(spec.Procs), tsspace.WithMetering())
	if err != nil {
		return fmt.Errorf("tsload: provisioning namespace %q: %w", name, err)
	}
	if t.ns == nil {
		t.ns = make(map[string]*inprocNS)
	}
	t.ns[name] = &inprocNS{obj: obj, max: spec.MaxSessions}
	return nil
}

// AttachNamespace leases a session on the named local namespace,
// enforcing its quota before touching the pid pool (a full namespace
// answers tsserve.ErrQuota instead of queueing).
func (t *InProc) AttachNamespace(ctx context.Context, name string) (tsspace.SessionAPI, error) {
	t.nsMu.Lock()
	ns, ok := t.ns[name]
	t.nsMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tsload: namespace %q: %w", name, tsserve.ErrUnknownNamespace)
	}
	if !ns.reserve() {
		return nil, fmt.Errorf("tsload: namespace %q: session quota %d exhausted: %w", name, ns.max, tsserve.ErrQuota)
	}
	s, err := ns.obj.Attach(ctx)
	if err != nil {
		ns.active.Add(-1)
		return nil, err
	}
	return &nsSession{SessionAPI: s, release: func() { ns.active.Add(-1) }}, nil
}

// DeprovisionNamespace drops the named local namespace and closes its
// object (force-detaching whatever is still attached).
func (t *InProc) DeprovisionNamespace(_ context.Context, name string) error {
	t.nsMu.Lock()
	ns, ok := t.ns[name]
	delete(t.ns, name)
	t.nsMu.Unlock()
	if !ok {
		return fmt.Errorf("tsload: namespace %q: %w", name, tsserve.ErrUnknownNamespace)
	}
	return ns.obj.Close()
}

// closeNamespaces closes any namespaces still provisioned, for Close.
func (t *InProc) closeNamespaces() {
	t.nsMu.Lock()
	ns := t.ns
	t.ns = nil
	t.nsMu.Unlock()
	for _, n := range ns {
		_ = n.obj.Close()
	}
}

// ProvisionNamespace PUTs the namespace on the daemon's broker surface.
func (t *HTTP) ProvisionNamespace(ctx context.Context, name string, spec NamespaceSpec) error {
	if t.shim {
		return fmt.Errorf("%w: the http-shim target has no namespace surface", ErrBadConfig)
	}
	_, err := t.client.ProvisionNamespace(ctx, name, tsserve.ProvisionRequest{
		Algorithm: spec.Algorithm, Procs: spec.Procs, MaxSessions: spec.MaxSessions,
	})
	return err
}

// AttachNamespace leases a wire-v2 session through the namespace-scoped
// routes (/ns/{name}/session...).
func (t *HTTP) AttachNamespace(ctx context.Context, name string) (tsspace.SessionAPI, error) {
	if t.shim {
		return nil, fmt.Errorf("%w: the http-shim target has no namespace surface", ErrBadConfig)
	}
	s, err := t.client.Namespace(name).Attach(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// DeprovisionNamespace DELETEs the namespace on the broker surface.
func (t *HTTP) DeprovisionNamespace(ctx context.Context, name string) error {
	if t.shim {
		return fmt.Errorf("%w: the http-shim target has no namespace surface", ErrBadConfig)
	}
	_, err := t.client.DeprovisionNamespace(ctx, name)
	return err
}

// ProvisionNamespace provisions over the daemon's HTTP broker surface —
// the control plane, like the health probe and the space report.
func (t *Binary) ProvisionNamespace(ctx context.Context, name string, spec NamespaceSpec) error {
	_, err := t.client.ProvisionNamespace(ctx, name, tsserve.ProvisionRequest{
		Algorithm: spec.Algorithm, Procs: spec.Procs, MaxSessions: spec.MaxSessions,
	})
	return err
}

// AttachNamespace leases a wire-v3 session via the attach_ns frame: the
// data plane stays binary, namespace routing included.
func (t *Binary) AttachNamespace(ctx context.Context, name string) (tsspace.SessionAPI, error) {
	s, err := t.bin.AttachNamespace(ctx, name)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// DeprovisionNamespace DELETEs the namespace over HTTP.
func (t *Binary) DeprovisionNamespace(ctx context.Context, name string) error {
	_, err := t.client.DeprovisionNamespace(ctx, name)
	return err
}

// nsPlan is a run's namespace routing state: the provisioned names and
// the per-namespace measured-op counters behind Result.NamespaceOps.
type nsPlan struct {
	prov  NamespaceProvisioner
	names []string
	ops   []atomic.Uint64
}

// provisionNamespaces sets up the mix's namespaces ("load-0" ...) on the
// target, inheriting the target's algorithm and procs and applying the
// mix's NSQuota. Returns ErrBadConfig when the target cannot provision.
func provisionNamespaces(ctx context.Context, cfg Config) (*nsPlan, error) {
	prov, ok := cfg.Target.(NamespaceProvisioner)
	if !ok {
		return nil, fmt.Errorf("%w: mix %q needs %d namespaces but target %q cannot provision them",
			ErrBadConfig, cfg.Mix.Name, cfg.Mix.Namespaces, cfg.Target.Kind())
	}
	p := &nsPlan{
		prov:  prov,
		names: make([]string, cfg.Mix.Namespaces),
		ops:   make([]atomic.Uint64, cfg.Mix.Namespaces),
	}
	spec := NamespaceSpec{Algorithm: cfg.Target.Algorithm(), Procs: cfg.Target.Procs(), MaxSessions: cfg.Mix.NSQuota}
	for i := range p.names {
		p.names[i] = fmt.Sprintf("load-%d", i)
		if err := provisionFresh(ctx, prov, p.names[i], spec); err != nil {
			p.teardown()
			return nil, err
		}
	}
	return p, nil
}

// provisionFresh provisions name from a clean slate: a leftover from an
// earlier aborted run against the same daemon is deprovisioned first, so
// every run's per-namespace counters start at zero.
func provisionFresh(ctx context.Context, prov NamespaceProvisioner, name string, spec NamespaceSpec) error {
	if err := prov.DeprovisionNamespace(ctx, name); err != nil && !errors.Is(err, tsserve.ErrUnknownNamespace) {
		return err
	}
	return prov.ProvisionNamespace(ctx, name, spec)
}

// teardown deprovisions the plan's namespaces on a fresh short-lived
// context: the run's own ctx may already be cancelled when cleanup runs.
func (p *nsPlan) teardown() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, name := range p.names {
		if name != "" {
			_ = p.prov.DeprovisionNamespace(ctx, name)
		}
	}
}
