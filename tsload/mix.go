package tsload

import (
	"fmt"
	"sort"
	"strings"
)

// Mix shapes the operation stream of a run, mirroring the scenario
// vocabulary of internal/engine at the session level: what the engine
// expresses as goroutine structure over (pid, seq) pairs, a mix expresses
// as session lifecycles and op kinds over the public surfaces.
type Mix struct {
	// Name is the registry key ("steady", "churn", ...) and the scenario
	// part of the BENCH_<name>.json file name.
	Name string
	// Summary is one line for flag help and reports.
	Summary string
	// AttachEvery is the number of getTS operations a worker performs per
	// session lease before detaching and re-attaching (one GetTSBatch is
	// one operation, whatever its Batch size); 0 keeps one session for the
	// whole run (the long-lived steady state). Against one-shot targets
	// the driver forces 1 — a one-shot paper-process has exactly one
	// timestamp to give.
	AttachEvery int
	// CompareFrac is the fraction of operations that are compare(t1, t2)
	// over previously issued timestamps instead of getTS, drawn per-op from
	// the worker's seeded RNG.
	CompareFrac float64
	// BurstSize > 1 groups operations into bursts: open-loop arrivals come
	// BurstSize at a time at the same intended instant (rate preserved on
	// average); closed-loop workers pause for BurstGap between bursts.
	BurstSize int
	// Batch is the number of timestamps per getTS operation: values > 1
	// make each getTS op one SessionAPI.GetTSBatch of that size, pricing
	// batch amortization on both sides of the wire. 0 and 1 mean the
	// single-call GetTS. Against one-shot targets the driver forces 1 (a
	// one-shot paper-process has exactly one timestamp to give).
	Batch int
	// Namespaces > 0 makes the run multi-tenant: the driver provisions
	// that many namespaces ("load-0" ...) on the target before traffic
	// and routes every new lease to one of them, so hot namespaces and
	// cold ones share the daemon and interfere the way tenants do. The
	// target must implement NamespaceProvisioner (ErrBadConfig
	// otherwise); namespaces are deprovisioned when the run ends.
	Namespaces int
	// ZipfS skews namespace popularity: values > 1 draw each lease's
	// namespace from a Zipf(s=ZipfS) distribution over the namespace
	// indices — namespace 0 is the hot tenant, the tail stays cold.
	// Values <= 1 route uniformly.
	ZipfS float64
	// NSQuota caps concurrently held leases per provisioned namespace
	// (NamespaceSpec.MaxSessions; 0 = unlimited). Attaches beyond the
	// cap fail with tsserve.ErrQuota — an expected error when set, the
	// same way the crash mix expects ErrDetached: the storm mix uses it
	// to price typed quota rejection under an attach flood.
	NSQuota int
	// AbandonFrac is the probability that a worker ends a lease by
	// crashing instead of detaching: the session is dropped without
	// Detach, leaving its pid leased until the target's idle-TTL reaper
	// reclaims it. It models client death and only bites on targets with
	// a session TTL armed — without one, abandoned pids leak until every
	// Attach wedges (which is exactly the failure mode the TTL exists
	// for). ErrDetached on a later op of such a run is an expected error
	// (the reaper won a race), counted separately from unexpected ones.
	AbandonFrac float64
}

// Kind renders the mix parameters the way engine workloads render theirs.
func (m Mix) Kind() string {
	var parts []string
	switch m.AttachEvery {
	case 0:
		parts = append(parts, "long-lived")
	case 1:
		parts = append(parts, "churn")
	default:
		parts = append(parts, fmt.Sprintf("reattach-every-%d", m.AttachEvery))
	}
	if m.CompareFrac > 0 {
		parts = append(parts, fmt.Sprintf("compare=%.0f%%", m.CompareFrac*100))
	}
	if m.BurstSize > 1 {
		parts = append(parts, fmt.Sprintf("burst=%d", m.BurstSize))
	}
	if m.Batch > 1 {
		parts = append(parts, fmt.Sprintf("batch=%d", m.Batch))
	}
	if m.AbandonFrac > 0 {
		parts = append(parts, fmt.Sprintf("abandon=%.0f%%", m.AbandonFrac*100))
	}
	if m.Namespaces > 0 {
		parts = append(parts, fmt.Sprintf("ns=%d", m.Namespaces))
		if m.ZipfS > 1 {
			parts = append(parts, fmt.Sprintf("zipf=%.1f", m.ZipfS))
		}
		if m.NSQuota > 0 {
			parts = append(parts, fmt.Sprintf("nsquota=%d", m.NSQuota))
		}
	}
	return strings.Join(parts, "/")
}

// WithBatch returns a copy of the mix whose getTS ops issue batches of
// size batch (see Batch). It is the sweep knob of cmd/tsload's -batch.
func (m Mix) WithBatch(batch int) Mix {
	m.Batch = batch
	return m
}

// builtinMixes is the scenario catalog: the four paper-shaped mixes every
// cmd/tsload run sweeps. Order is presentation order.
var builtinMixes = []Mix{
	{
		Name:        "steady",
		Summary:     "long-lived steady state: every worker holds one session and issues timestamps back to back",
		AttachEvery: 0,
	},
	{
		Name:        "churn",
		Summary:     "one-shot churn: attach, take one timestamp, detach — the session layer under maximal lease recycling",
		AttachEvery: 1,
	},
	{
		Name:        "burst",
		Summary:     "phased bursts: operations arrive in groups with idle gaps, the engine's Phased shape as traffic",
		AttachEvery: 0,
		BurstSize:   16,
	},
	{
		Name:        "compare",
		Summary:     "compare-heavy read mix: 90% compare over previously issued timestamps, 10% getTS",
		AttachEvery: 0,
		CompareFrac: 0.9,
	},
	{
		Name:        "crash",
		Summary:     "crash-recovery churn: workers abandon half their leases without Detach; the target's TTL reaper must keep the namespace circulating",
		AttachEvery: 4,
		AbandonFrac: 0.5,
	},
	{
		Name:        "tenants",
		Summary:     "multi-tenant interference: 8 provisioned namespaces, Zipf-skewed popularity — one hot tenant, a cold tail, one daemon",
		AttachEvery: 4,
		Namespaces:  8,
		ZipfS:       1.5,
	},
	{
		Name:        "storm",
		Summary:     "flash-crowd attach storm: bursts of single-op leases flood one namespace with a 2-session quota; quota rejections are the expected errors",
		AttachEvery: 1,
		BurstSize:   16,
		Namespaces:  1,
		NSQuota:     2,
	},
}

// Mixes returns the built-in mix catalog, sorted by name.
func Mixes() []Mix {
	out := append([]Mix(nil), builtinMixes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MixNames returns the sorted names of the built-in mixes.
func MixNames() []string {
	mixes := Mixes()
	names := make([]string, len(mixes))
	for i, m := range mixes {
		names[i] = m.Name
	}
	return names
}

// LookupMix resolves a built-in mix by name.
func LookupMix(name string) (Mix, bool) {
	for _, m := range builtinMixes {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}
