package tsload_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsload"
	"tsspace/tsserve"
)

// The in-process target's NamespaceProvisioner surface must speak the
// same typed-error vocabulary as the broker: idempotent re-provision,
// ErrNamespaceExists on a conflicting spec, ErrUnknownNamespace for
// names never provisioned, ErrQuota past MaxSessions — and a double
// Detach releases its quota slot exactly once.
func TestInProcNamespaceProvisioner(t *testing.T) {
	ctx := context.Background()
	target := newInProc(t, "collect", 8)
	spec := tsload.NamespaceSpec{Algorithm: "collect", Procs: 8, MaxSessions: 1}

	if err := target.ProvisionNamespace(ctx, "ten", spec); err != nil {
		t.Fatal(err)
	}
	if err := target.ProvisionNamespace(ctx, "ten", spec); err != nil {
		t.Fatalf("idempotent re-provision: %v", err)
	}
	if err := target.ProvisionNamespace(ctx, "ten", tsload.NamespaceSpec{Algorithm: "collect", Procs: 4}); !errors.Is(err, tsserve.ErrNamespaceExists) {
		t.Fatalf("conflicting re-provision = %v, want ErrNamespaceExists", err)
	}
	if _, err := target.AttachNamespace(ctx, "nope"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("attach to unknown namespace = %v, want ErrUnknownNamespace", err)
	}

	s1, err := target.AttachNamespace(ctx, "ten")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.AttachNamespace(ctx, "ten"); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatalf("attach past MaxSessions=1 = %v, want ErrQuota", err)
	}
	if _, err := s1.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	// Double detach must release the slot exactly once: after it, the
	// quota admits one lease, not two.
	if err := s1.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Detach(); err != nil {
		t.Fatalf("second detach: %v", err)
	}
	s2, err := target.AttachNamespace(ctx, "ten")
	if err != nil {
		t.Fatalf("attach after release: %v", err)
	}
	if _, err := target.AttachNamespace(ctx, "ten"); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatal("double detach released two quota slots")
	}
	s2.Detach()

	if err := target.DeprovisionNamespace(ctx, "ten"); err != nil {
		t.Fatal(err)
	}
	if err := target.DeprovisionNamespace(ctx, "ten"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("double deprovision = %v, want ErrUnknownNamespace", err)
	}
	if _, err := target.AttachNamespace(ctx, "ten"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("attach after deprovision = %v, want ErrUnknownNamespace", err)
	}
}

// The tenants mix provisions its namespaces, partitions every measured
// getTS op across them, and the Zipf skew makes namespace 0 the hot
// tenant.
func TestTenantsMixInProc(t *testing.T) {
	mix := mustMix(t, "tenants")
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mix,
		Target:   newInProc(t, "collect", 8),
		Workers:  4,
		Duration: 10 * time.Second,
		MaxOps:   3000,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.Namespaces != mix.Namespaces || len(res.NamespaceOps) != mix.Namespaces {
		t.Fatalf("run reports %d namespaces with %d op counters, want %d",
			res.Namespaces, len(res.NamespaceOps), mix.Namespaces)
	}
	var sum, hottest uint64
	for _, v := range res.NamespaceOps {
		sum += v
		if v > hottest {
			hottest = v
		}
	}
	if sum != res.GetTSOps {
		t.Errorf("namespace ops %v sum to %d, want every getTS op (%d) attributed", res.NamespaceOps, sum, res.GetTSOps)
	}
	// Zipf(s=1.5) over 8 namespaces: index 0 draws the bulk of the
	// leases — it must be the maximum and well above the uniform share.
	if res.NamespaceOps[0] != hottest {
		t.Errorf("namespace 0 is not the hot tenant: %v", res.NamespaceOps)
	}
	if uniform := sum / uint64(mix.Namespaces); res.NamespaceOps[0] <= uniform {
		t.Errorf("hot tenant took %d of %d ops, want more than the uniform share %d",
			res.NamespaceOps[0], sum, uniform)
	}
	// The namespaces were torn down when the run ended: re-running
	// against the same target must not see leftovers as conflicts.
	if _, err := tsload.Run(context.Background(), tsload.Config{
		Mix: mix, Target: newInProc(t, "collect", 8), Workers: 2,
		Duration: 10 * time.Second, MaxOps: 200, Seed: 22,
	}); err != nil {
		t.Fatalf("second tenants run: %v", err)
	}
}

// The storm mix floods one quota-capped namespace over the wire: quota
// rejections land in ExpectedErrors (never Unexpected), and the getTS
// ops still partition into the namespace counters.
func TestStormMixQuotaRejectionsExpected(t *testing.T) {
	mix := mustMix(t, "storm")
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mix,
		Target:   newHTTP(t, "collect", 8),
		Workers:  4,
		Duration: 10 * time.Second,
		MaxOps:   400,
		Seed:     23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatalf("no measured ops under storm mix: %+v", res)
	}
	if res.UnexpectedErrors != 0 {
		t.Errorf("%d unexpected errors under storm (total %d, expected %d)",
			res.UnexpectedErrors, res.Errors, res.ExpectedErrors)
	}
	if res.Errors != res.ExpectedErrors+res.UnexpectedErrors {
		t.Errorf("error split does not add up: %d != %d + %d",
			res.Errors, res.ExpectedErrors, res.UnexpectedErrors)
	}
	if res.Namespaces != 1 || len(res.NamespaceOps) != 1 || res.NamespaceOps[0] != res.GetTSOps {
		t.Errorf("storm namespace accounting: %d namespaces, ops %v, getTS %d",
			res.Namespaces, res.NamespaceOps, res.GetTSOps)
	}
	if res.HBViolations != 0 {
		t.Errorf("%d happens-before violations under the attach storm", res.HBViolations)
	}
}

// A namespace mix against a target with no provisioner surface is a
// configuration error, not a hang or a silent single-tenant run.
func TestNamespaceMixNeedsProvisioner(t *testing.T) {
	obj, err := tsspace.New(tsspace.WithAlgorithm("collect"), tsspace.WithProcs(8), tsspace.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	front := tsserve.NewServer(obj, tsserve.ServerConfig{})
	srv := httptest.NewServer(front)
	t.Cleanup(func() { srv.Close(); front.Close(); obj.Close() })
	shim, err := tsload.NewHTTPShim(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "tenants"),
		Target:   shim,
		Workers:  2,
		Duration: time.Second,
		MaxOps:   50,
		Seed:     24,
	})
	if !errors.Is(err, tsload.ErrBadConfig) {
		t.Fatalf("tenants mix against the shim = %v, want ErrBadConfig", err)
	}
}
