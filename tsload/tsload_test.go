package tsload_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsload"
	"tsspace/tsserve"
)

func newInProc(t *testing.T, alg string, procs int) *tsload.InProc {
	t.Helper()
	obj, err := tsspace.New(tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	target := tsload.NewInProc(obj)
	t.Cleanup(func() { target.Close() })
	return target
}

func newHTTP(t *testing.T, alg string, procs int) *tsload.HTTP {
	t.Helper()
	obj, err := tsspace.New(tsspace.WithAlgorithm(alg), tsspace.WithProcs(procs), tsspace.WithMetering())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tsserve.NewServer(obj, tsserve.ServerConfig{}))
	t.Cleanup(func() { srv.Close(); obj.Close() })
	target, err := tsload.NewHTTP(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return target
}

// checkResult asserts the invariants every healthy run must satisfy.
func checkResult(t *testing.T, res tsload.Result) {
	t.Helper()
	if res.Ops == 0 {
		t.Fatalf("no measured ops: %+v", res)
	}
	if res.Ops != res.GetTSOps+res.CompareOps {
		t.Errorf("Ops %d != GetTSOps %d + CompareOps %d", res.Ops, res.GetTSOps, res.CompareOps)
	}
	if res.Errors != 0 {
		t.Errorf("%d op errors", res.Errors)
	}
	if res.HBViolations != 0 {
		t.Errorf("%d happens-before violations observed under load", res.HBViolations)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v, want > 0", res.Throughput)
	}
	lat := res.LatencyNs
	if lat.Count != res.Ops {
		t.Errorf("latency count %d != measured ops %d", lat.Count, res.Ops)
	}
	if lat.P50 > lat.P99 || lat.P99 > lat.P999 || lat.P999 > lat.Max || lat.Min > lat.P50 {
		t.Errorf("percentiles not monotone: %v", lat)
	}
}

func TestClosedLoopSteadyInProc(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady"),
		Target:   newInProc(t, "collect", 8),
		Workers:  4,
		Warmup:   20 * time.Millisecond,
		Duration: 10 * time.Second, // ops-bounded: MaxOps ends it long before
		MaxOps:   3000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.Mode != "closed" || res.Target != "inproc" || res.Algorithm != "collect" {
		t.Errorf("labels wrong: %+v", res)
	}
	if res.CompareOps != 0 {
		t.Errorf("steady mix issued %d compares", res.CompareOps)
	}
	if res.Space == nil || res.Space.Written == 0 {
		t.Errorf("metered in-proc target reported no space: %+v", res.Space)
	}
	if res.AllocsPerOp < 0 {
		t.Errorf("AllocsPerOp %v", res.AllocsPerOp)
	}
}

func TestCompareMixIssuesBothOps(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "compare"),
		Target:   newInProc(t, "dense", 8),
		Workers:  4,
		Duration: 10 * time.Second,
		MaxOps:   3000,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.CompareOps == 0 || res.GetTSOps == 0 {
		t.Fatalf("compare mix should issue both kinds: %+v", res)
	}
	// The mix is 90% compare; allow wide slack for the getTS-only ramp.
	if frac := float64(res.CompareOps) / float64(res.Ops); frac < 0.5 {
		t.Errorf("compare fraction %.2f, want ≥ 0.5", frac)
	}
}

func TestChurnOneShotSpendsBudget(t *testing.T) {
	const procs = 300
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "churn"),
		Target:   newInProc(t, "sqrt", procs),
		Workers:  4,
		Duration: 10 * time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetSpent {
		t.Fatalf("one-shot run did not report its budget spent: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatalf("no measured ops before exhaustion: %+v", res)
	}
	// Warmup is capped at a fifth of the budget, so the measure window must
	// still see most of it.
	if res.GetTSOps < procs/2 {
		t.Errorf("measured %d getTS ops out of a %d budget", res.GetTSOps, procs)
	}
	if res.HBViolations != 0 || res.Errors != 0 {
		t.Errorf("violations/errors under one-shot churn: %+v", res)
	}
}

func TestSteadyAgainstOneShotForcesReattach(t *testing.T) {
	// The steady mix holds sessions forever, but a one-shot paper-process
	// has one timestamp to give: the driver must re-lease instead of
	// erroring out.
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady"),
		Target:   newInProc(t, "simple", 200),
		Workers:  4,
		Duration: 10 * time.Second,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetSpent {
		t.Fatalf("expected the budget to end the run: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("steady-vs-one-shot produced %d errors, want 0", res.Errors)
	}
}

func TestOpenLoopPacing(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady"),
		Target:   newInProc(t, "collect", 8),
		Workers:  4,
		Rate:     2000,
		Warmup:   50 * time.Millisecond,
		Duration: 250 * time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.Mode != "open" {
		t.Fatalf("mode %q, want open", res.Mode)
	}
	// An in-process collect object sustains 2k/s trivially: the measured
	// arrival count must be near rate × window, and nothing dropped.
	want := 2000 * 0.25
	if float64(res.Ops) < want*0.5 || float64(res.Ops) > want*1.5 {
		t.Errorf("open loop measured %d ops, want ≈ %.0f", res.Ops, want)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d arrivals at a trivial rate", res.Dropped)
	}
}

func TestBurstMixClosedLoop(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "burst"),
		Target:   newInProc(t, "collect", 8),
		Workers:  2,
		Duration: 150 * time.Millisecond,
		BurstGap: 1 * time.Millisecond,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
}

func TestBatchMixInProc(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady").WithBatch(16),
		Target:   newInProc(t, "collect", 8),
		Workers:  4,
		Duration: 10 * time.Second,
		MaxOps:   300,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.BatchSize != 16 {
		t.Errorf("BatchSize = %d, want 16", res.BatchSize)
	}
	// A measured getTS op only records after a full batch, so timestamps
	// must be exactly ops × batch.
	if res.Timestamps != res.GetTSOps*16 {
		t.Errorf("Timestamps = %d from %d batch-of-16 ops", res.Timestamps, res.GetTSOps)
	}
	if !strings.Contains(res.MixKind, "batch=16") {
		t.Errorf("MixKind %q does not render the batch knob", res.MixKind)
	}
}

// Wire v2 holds one lease per worker across batches; the deprecated shim
// attaches server-side per op. The SDK's attach counter tells them apart.
func TestBatchOverWireV2HoldsLeases(t *testing.T) {
	const workers = 3
	run := func(t *testing.T, shim bool) (tsload.Result, tsspace.Stats) {
		obj, err := tsspace.New(tsspace.WithAlgorithm("collect"), tsspace.WithProcs(8))
		if err != nil {
			t.Fatal(err)
		}
		front := tsserve.NewServer(obj, tsserve.ServerConfig{})
		srv := httptest.NewServer(front)
		t.Cleanup(func() { srv.Close(); front.Close(); obj.Close() })
		newTarget := tsload.NewHTTP
		if shim {
			newTarget = tsload.NewHTTPShim
		}
		target, err := newTarget(context.Background(), srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tsload.Run(context.Background(), tsload.Config{
			Mix:      mustMix(t, "steady").WithBatch(4),
			Target:   target,
			Workers:  workers,
			Duration: 10 * time.Second,
			MaxOps:   60,
			Seed:     12,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, res)
		return res, obj.Stats()
	}

	t.Run("v2", func(t *testing.T) {
		res, st := run(t, false)
		if res.Target != "http" {
			t.Errorf("target %q, want http", res.Target)
		}
		if res.Timestamps != res.GetTSOps*4 {
			t.Errorf("Timestamps = %d from %d batch-of-4 ops", res.Timestamps, res.GetTSOps)
		}
		// Steady workers never detach: one server-side lease per worker for
		// the whole run, no matter how many batches crossed the wire.
		if st.Attaches != workers {
			t.Errorf("v2 run attached %d SDK sessions, want %d (one per worker)", st.Attaches, workers)
		}
	})
	t.Run("shim", func(t *testing.T) {
		res, st := run(t, true)
		if res.Target != "http-shim" {
			t.Errorf("target %q, want http-shim", res.Target)
		}
		// The shim leases per request: at least one attach per getTS op.
		if st.Attaches < res.GetTSOps {
			t.Errorf("shim run attached %d times over %d getTS ops, want ≥", st.Attaches, res.GetTSOps)
		}
	})
}

func TestOneShotForcesBatchOne(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady").WithBatch(64),
		Target:   newInProc(t, "sqrt", 200),
		Workers:  3,
		Duration: 10 * time.Second,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Errorf("one-shot run kept BatchSize %d, want forced 1", res.BatchSize)
	}
	if !res.BudgetSpent || res.Errors != 0 || res.HBViolations != 0 {
		t.Errorf("one-shot batched run not clean: %+v", res)
	}
	if res.Timestamps != res.GetTSOps {
		t.Errorf("Timestamps = %d, GetTSOps = %d, want equal at batch 1", res.Timestamps, res.GetTSOps)
	}
}

// The crash mix abandons half its leases without Detach; against a
// TTL-armed target the reaper must keep the namespace circulating, the
// only errors must be the expected ErrDetached races, and happens-before
// must hold across every reclamation.
func TestCrashMixAgainstTTLTarget(t *testing.T) {
	obj, err := tsspace.New(
		tsspace.WithAlgorithm("collect"),
		tsspace.WithProcs(8),
		tsspace.WithSessionTTL(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	target := tsload.NewInProc(obj)
	t.Cleanup(func() { target.Close() })

	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "crash"),
		Target:   target,
		Workers:  4,
		Duration: 2 * time.Second,
		Seed:     14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatalf("no measured ops under crash mix: %+v", res)
	}
	if res.Abandoned == 0 {
		t.Errorf("crash mix abandoned no leases (AttachEvery=%d, AbandonFrac=%v)",
			mustMix(t, "crash").AttachEvery, mustMix(t, "crash").AbandonFrac)
	}
	if res.UnexpectedErrors != 0 {
		t.Errorf("%d unexpected errors under crash mix (total %d, expected %d)",
			res.UnexpectedErrors, res.Errors, res.ExpectedErrors)
	}
	if res.Errors != res.ExpectedErrors+res.UnexpectedErrors {
		t.Errorf("error split does not add up: %d != %d + %d",
			res.Errors, res.ExpectedErrors, res.UnexpectedErrors)
	}
	if res.HBViolations != 0 {
		t.Errorf("%d happens-before violations across reaped leases", res.HBViolations)
	}
	if reaped := obj.Stats().Reaped; reaped == 0 {
		t.Errorf("target reaped no leases although %d were abandoned", res.Abandoned)
	}
	if !strings.Contains(res.MixKind, "abandon=50%") {
		t.Errorf("MixKind %q does not render the abandon knob", res.MixKind)
	}
}

func TestHTTPTarget(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "compare"),
		Target:   newHTTP(t, "collect", 8),
		Workers:  4,
		Duration: 10 * time.Second,
		MaxOps:   400,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if res.Target != "http" {
		t.Fatalf("target %q, want http", res.Target)
	}
	if res.Space == nil {
		t.Errorf("metered daemon reported no space over /metrics")
	}
}

func TestHTTPOneShotExhaustsOverTheWire(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "churn"),
		Target:   newHTTP(t, "sqrt", 60),
		Workers:  3,
		Duration: 10 * time.Second,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetSpent {
		t.Fatalf("wire exhaustion not detected: %+v", res)
	}
	if res.HBViolations != 0 {
		t.Errorf("%d hb violations", res.HBViolations)
	}
}

func TestClosedLoopDeadlineWithStuckTarget(t *testing.T) {
	// A daemon that accepts /getts and never replies must not hang the
	// run: the watchdog has to enforce the Duration deadline and cancel
	// the in-flight operations even though every worker is blocked.
	quit := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","algorithm":"collect","procs":4}`)
			return
		}
		// Hang until the client gives up — or the test ends, so srv.Close
		// (which waits for in-flight handlers) cannot deadlock on us.
		select {
		case <-r.Context().Done():
		case <-quit:
		}
	}))
	t.Cleanup(srv.Close) // LIFO: runs after quit is closed
	t.Cleanup(func() { close(quit) })
	target, err := tsload.NewHTTP(context.Background(), srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan tsload.Result, 1)
	go func() {
		res, err := tsload.Run(context.Background(), tsload.Config{
			Mix:      mustMix(t, "steady"),
			Target:   target,
			Workers:  3,
			Duration: 200 * time.Millisecond,
			Seed:     10,
		})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res.Ops != 0 {
			t.Errorf("stuck target produced %d measured ops", res.Ops)
		}
	case <-time.After(15 * time.Second): // covers the post-run Space timeout
		t.Fatal("Run hung on a target that never replies")
	}
}

func TestDeterministicSeeding(t *testing.T) {
	// Timing-dependent counts can differ run to run; the seeded draws must
	// not. Two ops-bounded closed-loop runs with one worker and the same
	// seed issue the identical op-kind sequence, so the getTS/compare split
	// matches exactly.
	run := func(seed int64) tsload.Result {
		res, err := tsload.Run(context.Background(), tsload.Config{
			Mix:      mustMix(t, "compare"),
			Target:   newInProc(t, "collect", 4),
			Workers:  1,
			Duration: 10 * time.Second,
			MaxOps:   500,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.Ops != b.Ops || a.CompareOps != b.CompareOps || a.GetTSOps != b.GetTSOps {
		t.Errorf("same seed, different op mix: %+v vs %+v", a, b)
	}
	c := run(43)
	if a.CompareOps == c.CompareOps && a.GetTSOps == c.GetTSOps {
		t.Logf("different seeds produced the same split (possible, just unlikely): %+v", c)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:      mustMix(t, "steady"),
		Target:   newInProc(t, "collect", 4),
		Workers:  2,
		Duration: 10 * time.Second,
		MaxOps:   200,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := tsload.WriteBench(dir, tsload.BenchReport{
		Paper:       "conf_podc_HelmiHPW11",
		Scenario:    "steady",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Host:        tsload.CurrentHost(),
		Results:     []tsload.Result{res},
	})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_steady.json" {
		t.Errorf("wrote %s, want BENCH_steady.json", path)
	}
	rep, err := tsload.ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != tsload.BenchSchema || len(rep.Results) != 1 {
		t.Fatalf("round trip mangled the report: %+v", rep)
	}
	got := rep.Results[0]
	if got.Ops != res.Ops || got.LatencyNs.P99 != res.LatencyNs.P99 || got.Throughput != res.Throughput {
		t.Errorf("round trip changed results:\n wrote %+v\n read  %+v", res, got)
	}
}

func TestMixCatalog(t *testing.T) {
	names := tsload.MixNames()
	if len(names) < 4 {
		t.Fatalf("need ≥ 4 built-in mixes, have %v", names)
	}
	for _, want := range []string{"steady", "churn", "burst", "compare"} {
		m, ok := tsload.LookupMix(want)
		if !ok {
			t.Errorf("mix %q missing from catalog", want)
			continue
		}
		if m.Summary == "" || m.Kind() == "" {
			t.Errorf("mix %q has empty metadata: %+v", want, m)
		}
	}
	if _, ok := tsload.LookupMix("no-such-mix"); ok {
		t.Error("LookupMix invented a mix")
	}
}

func mustMix(t *testing.T, name string) tsload.Mix {
	t.Helper()
	m, ok := tsload.LookupMix(name)
	if !ok {
		t.Fatalf("mix %q not registered", name)
	}
	return m
}

// A run with a progress reporter must deliver periodic snapshots whose
// counters never go backwards, walk the warmup→measure phases, and fire
// a final snapshot consistent with the run's Result.
func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var snaps []tsload.Progress
	res, err := tsload.Run(context.Background(), tsload.Config{
		Mix:           mustMix(t, "steady"),
		Target:        newInProc(t, "collect", 8),
		Workers:       4,
		Warmup:        20 * time.Millisecond,
		Duration:      150 * time.Millisecond,
		Seed:          1,
		ProgressEvery: 10 * time.Millisecond,
		OnProgress: func(p tsload.Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) < 3 {
		t.Fatalf("got %d progress snapshots, want >= 3", len(snaps))
	}
	var lastOps uint64
	sawMeasure := false
	for i, p := range snaps {
		if p.Mix != "steady" || p.Target != "inproc" {
			t.Errorf("snapshot %d labels wrong: %+v", i, p)
		}
		switch p.Phase {
		case "warmup", "measure", "done":
		default:
			t.Errorf("snapshot %d has unknown phase %q", i, p.Phase)
		}
		if p.Phase == "measure" || p.Phase == "done" {
			sawMeasure = true
		}
		if p.Ops < lastOps {
			t.Errorf("snapshot %d ops went backwards: %d after %d", i, p.Ops, lastOps)
		}
		lastOps = p.Ops
		// Mid-run snapshots read independent atomics, so the per-kind
		// split may be off by the ops in flight — one per worker at most.
		if skew := absDiff(p.Ops, p.GetTSOps+p.CompareOps); skew > 4 {
			t.Errorf("snapshot %d: Ops %d vs GetTSOps %d + CompareOps %d (skew %d)",
				i, p.Ops, p.GetTSOps, p.CompareOps, skew)
		}
	}
	if !sawMeasure {
		t.Error("no snapshot ever reached the measure phase")
	}
	final := snaps[len(snaps)-1]
	if final.Phase != "done" {
		t.Errorf("final snapshot phase %q, want done", final.Phase)
	}
	if final.Ops != final.GetTSOps+final.CompareOps {
		t.Errorf("final snapshot: Ops %d != GetTSOps %d + CompareOps %d",
			final.Ops, final.GetTSOps, final.CompareOps)
	}
	if final.Ops < res.Ops {
		t.Errorf("final snapshot ops %d below measured result ops %d", final.Ops, res.Ops)
	}
	if final.Throughput <= 0 {
		t.Errorf("final snapshot throughput %v, want > 0", final.Throughput)
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
