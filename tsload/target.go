package tsload

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"tsspace"
	"tsspace/tsserve"
)

// Target is a timestamp object under load: the driver speaks this
// interface only, so the same workload mix runs against the in-process SDK
// and against a tsserved daemon over HTTP, and the difference between the
// two BENCH rows is exactly the wire. Attach hands back the repository's
// one session surface — tsspace.SessionAPI — so the driver's operation
// code is identical on every backend, batches included.
type Target interface {
	// Kind names the backend in reports: "inproc", "http", "http-shim",
	// or "binary".
	Kind() string
	// Algorithm is the registry name of the implementation under load.
	Algorithm() string
	// Procs is the object's paper-process count n (for one-shot targets,
	// also the total getTS budget).
	Procs() int
	// OneShot reports whether the object issues at most one timestamp per
	// process — the driver re-leases after every getTS and treats budget
	// exhaustion as the natural end of the run.
	OneShot() bool
	// Attach leases one session. Sessions are one logical client each —
	// their operation streams must be sequential; each driver worker holds
	// its own.
	Attach(ctx context.Context) (tsspace.SessionAPI, error)
	// Compare asks the object whether t1 is ordered before t2 (usable
	// without holding a session, unlike SessionAPI's Compare).
	Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error)
	// Space reports the object's register-space footprint, when the
	// backend exposes one (in-process metering, or the /metrics space
	// section over HTTP).
	Space(ctx context.Context) (SpaceReport, bool)
	// Close releases whatever the target owns.
	Close() error
}

// Session is the session surface a Target leases.
//
// Deprecated: targets lease tsspace.SessionAPI directly; this alias keeps
// pre-v2 callers compiling.
type Session = tsspace.SessionAPI

// SpaceReport is the register-space footprint of a target, as recorded in
// BENCH_*.json (cf. the paper's Θ(√n) one-shot vs Θ(n) long-lived bounds).
type SpaceReport struct {
	Registers int    `json:"registers"`
	Written   int    `json:"written"`
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
}

// IsExhausted reports whether err is the one-shot budget running out, on
// either side of the wire: the SDK's typed errors directly, or a tsserve
// APIError carrying the exhausted code.
func IsExhausted(err error) bool {
	return errors.Is(err, tsspace.ErrExhausted) || errors.Is(err, tsspace.ErrOneShot)
}

// InProc is the in-process backend: the driver calls the tsspace SDK
// directly, with no serialization or scheduling between it and the
// registers. It is also a NamespaceProvisioner: multi-namespace mixes
// provision sibling SDK objects in a local table (see namespace.go).
type InProc struct {
	obj *tsspace.Object

	nsMu sync.Mutex
	ns   map[string]*inprocNS
}

// NewInProc wraps an SDK object as a load target. The target takes
// ownership: Close closes the object.
func NewInProc(obj *tsspace.Object) *InProc { return &InProc{obj: obj} }

// Kind returns "inproc".
func (t *InProc) Kind() string { return "inproc" }

// Algorithm returns the object's registry name.
func (t *InProc) Algorithm() string { return t.obj.Algorithm() }

// Procs returns the object's paper-process count.
func (t *InProc) Procs() int { return t.obj.Procs() }

// OneShot reports the object's one-shot flag.
func (t *InProc) OneShot() bool { return t.obj.OneShot() }

// Attach leases an SDK session: tsspace.Session is the local SessionAPI.
func (t *InProc) Attach(ctx context.Context) (tsspace.SessionAPI, error) {
	s, err := t.obj.Attach(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Compare never fails in process.
func (t *InProc) Compare(_ context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return t.obj.Compare(t1, t2), nil
}

// Space reports the object's metered usage, when metering is on.
func (t *InProc) Space(context.Context) (SpaceReport, bool) {
	u, metered := t.obj.Usage()
	if !metered {
		return SpaceReport{}, false
	}
	return SpaceReport{Registers: u.Registers, Written: u.Written, Reads: u.Reads, Writes: u.Writes}, true
}

// Close closes the owned object and any namespaces still provisioned.
func (t *InProc) Close() error {
	t.closeNamespaces()
	return t.obj.Close()
}

// HTTP is the wire backend: Attach leases a wire-v2 session on a tsserved
// daemon (POST /session), getTS batches pipeline on that lease, and
// Detach releases it — the SDK's lease/churn semantics priced with the
// full HTTP/JSON round trip per batch. In shim mode (NewHTTPShim) the
// target instead drives the deprecated v1 single-request endpoint, where
// the daemon attaches and detaches per batch: the pre-v2 behaviour, kept
// measurable so CI can assert the shim and a v2 batch of 1 agree.
type HTTP struct {
	client *tsserve.Client
	health tsserve.Health
	shim   bool
}

// NewHTTP probes the daemon at baseURL and wraps it as a wire-v2 load
// target. hc may be nil for tsserve's shared keep-alive client; for
// unusual worker counts pass a client whose transport allows enough idle
// connections per host.
func NewHTTP(ctx context.Context, baseURL string, hc *http.Client) (*HTTP, error) {
	return newHTTP(ctx, baseURL, hc, false)
}

// NewHTTPShim wraps the daemon like NewHTTP but drives the deprecated v1
// single-request endpoint (one server-side attach+batch+detach per getTS
// op). It exists to price the shim against wire v2 — the smoke sweep
// asserts their batch-of-1 behaviour is equivalent.
func NewHTTPShim(ctx context.Context, baseURL string, hc *http.Client) (*HTTP, error) {
	return newHTTP(ctx, baseURL, hc, true)
}

func newHTTP(ctx context.Context, baseURL string, hc *http.Client, shim bool) (*HTTP, error) {
	c := tsserve.NewClient(baseURL, hc)
	h, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("tsload: probing %s: %w", baseURL, err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("tsload: daemon at %s reports status %q", baseURL, h.Status)
	}
	return &HTTP{client: c, health: h, shim: shim}, nil
}

// Kind returns "http" (wire v2) or "http-shim" (deprecated v1 endpoint).
func (t *HTTP) Kind() string {
	if t.shim {
		return "http-shim"
	}
	return "http"
}

// Algorithm returns the daemon's algorithm, as reported by /healthz.
func (t *HTTP) Algorithm() string { return t.health.Algorithm }

// Procs returns the daemon object's paper-process count.
func (t *HTTP) Procs() int { return t.health.Procs }

// OneShot reports the daemon object's one-shot flag.
func (t *HTTP) OneShot() bool { return t.health.OneShot }

// Attach leases a wire-v2 RemoteSession — or, in shim mode, returns a
// stateless handle over the v1 endpoint (the daemon leases per request).
func (t *HTTP) Attach(ctx context.Context) (tsspace.SessionAPI, error) {
	if t.shim {
		return shimSession{t.client}, nil
	}
	s, err := t.client.Attach(ctx)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Compare round-trips /compare.
func (t *HTTP) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return t.client.Compare(ctx, t1, t2)
}

// Space reads the /metrics space section, when the daemon is metered.
func (t *HTTP) Space(ctx context.Context) (SpaceReport, bool) {
	m, err := t.client.Metrics(ctx)
	if err != nil || m.Space == nil {
		return SpaceReport{}, false
	}
	return SpaceReport{
		Registers: m.Space.Registers, Written: m.Space.Written,
		Reads: m.Space.Reads, Writes: m.Space.Writes,
	}, true
}

// Close is a no-op: the daemon belongs to whoever started it.
func (t *HTTP) Close() error { return nil }

// shimSession adapts the deprecated v1 single-request endpoint to
// SessionAPI: every batch is one POST /getts, the daemon leases a fresh
// pid per request, and Detach is free because there is nothing to hold.
type shimSession struct{ c *tsserve.Client }

var _ tsspace.SessionAPI = shimSession{}

func (s shimSession) GetTS(ctx context.Context) (tsspace.Timestamp, error) {
	var buf [1]tsspace.Timestamp
	if _, err := s.GetTSBatch(ctx, buf[:]); err != nil {
		return tsspace.Timestamp{}, err
	}
	return buf[0], nil
}

func (s shimSession) GetTSBatch(ctx context.Context, dst []tsspace.Timestamp) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	ts, err := s.c.GetTS(ctx, len(dst))
	if err != nil {
		return 0, err
	}
	if len(ts) > len(dst) {
		return 0, fmt.Errorf("tsload: daemon returned %d timestamps for a batch of %d", len(ts), len(dst))
	}
	if len(ts) == 0 {
		return 0, errors.New("tsload: daemon returned an empty /getts batch")
	}
	return copy(dst, ts), nil
}

func (s shimSession) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return s.c.Compare(ctx, t1, t2)
}

func (s shimSession) Detach() error { return nil }
