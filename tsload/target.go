package tsload

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"tsspace"
	"tsspace/tsserve"
)

// Target is a timestamp object under load: the driver speaks this
// interface only, so the same workload mix runs against the in-process SDK
// and against a tsserved daemon over HTTP, and the difference between the
// two BENCH rows is exactly the wire.
type Target interface {
	// Kind names the backend in reports: "inproc" or "http".
	Kind() string
	// Algorithm is the registry name of the implementation under load.
	Algorithm() string
	// Procs is the object's paper-process count n (for one-shot targets,
	// also the total getTS budget).
	Procs() int
	// OneShot reports whether the object issues at most one timestamp per
	// process — the driver re-leases after every getTS and treats budget
	// exhaustion as the natural end of the run.
	OneShot() bool
	// Attach leases one session. Sessions are not safe for concurrent use;
	// each driver worker holds its own.
	Attach(ctx context.Context) (Session, error)
	// Compare asks the object whether t1 is ordered before t2.
	Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error)
	// Space reports the object's register-space footprint, when the
	// backend exposes one (in-process metering, or the /metrics space
	// section over HTTP).
	Space(ctx context.Context) (SpaceReport, bool)
	// Close releases whatever the target owns.
	Close() error
}

// Session is one leased paper-process of a Target.
type Session interface {
	// GetTS performs one getTS() instance.
	GetTS(ctx context.Context) (tsspace.Timestamp, error)
	// Detach returns the lease.
	Detach() error
}

// SpaceReport is the register-space footprint of a target, as recorded in
// BENCH_*.json (cf. the paper's Θ(√n) one-shot vs Θ(n) long-lived bounds).
type SpaceReport struct {
	Registers int    `json:"registers"`
	Written   int    `json:"written"`
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
}

// IsExhausted reports whether err is the one-shot budget running out, on
// either side of the wire: the SDK's typed errors directly, or a tsserve
// APIError carrying the exhausted code.
func IsExhausted(err error) bool {
	return errors.Is(err, tsspace.ErrExhausted) || errors.Is(err, tsspace.ErrOneShot)
}

// InProc is the in-process backend: the driver calls the tsspace SDK
// directly, with no serialization or scheduling between it and the
// registers.
type InProc struct {
	obj *tsspace.Object
}

// NewInProc wraps an SDK object as a load target. The target takes
// ownership: Close closes the object.
func NewInProc(obj *tsspace.Object) *InProc { return &InProc{obj: obj} }

// Kind returns "inproc".
func (t *InProc) Kind() string { return "inproc" }

// Algorithm returns the object's registry name.
func (t *InProc) Algorithm() string { return t.obj.Algorithm() }

// Procs returns the object's paper-process count.
func (t *InProc) Procs() int { return t.obj.Procs() }

// OneShot reports the object's one-shot flag.
func (t *InProc) OneShot() bool { return t.obj.OneShot() }

// Attach leases an SDK session.
func (t *InProc) Attach(ctx context.Context) (Session, error) {
	s, err := t.obj.Attach(ctx)
	if err != nil {
		return nil, err
	}
	return inProcSession{s}, nil
}

// Compare never fails in process.
func (t *InProc) Compare(_ context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return t.obj.Compare(t1, t2), nil
}

// Space reports the object's metered usage, when metering is on.
func (t *InProc) Space(context.Context) (SpaceReport, bool) {
	u, metered := t.obj.Usage()
	if !metered {
		return SpaceReport{}, false
	}
	return SpaceReport{Registers: u.Registers, Written: u.Written, Reads: u.Reads, Writes: u.Writes}, true
}

// Close closes the owned object.
func (t *InProc) Close() error { return t.obj.Close() }

type inProcSession struct{ s *tsspace.Session }

func (s inProcSession) GetTS(ctx context.Context) (tsspace.Timestamp, error) { return s.s.GetTS(ctx) }
func (s inProcSession) Detach() error                                        { return s.s.Detach() }

// HTTP is the wire backend: every getTS is one POST /getts (count 1) and
// every compare one POST /compare against a tsserved daemon, so its BENCH
// rows price the full HTTP/JSON round trip. The daemon leases a server-side
// session per request; an HTTP Session therefore carries no lease state and
// Detach is free.
type HTTP struct {
	client *tsserve.Client
	health tsserve.Health
}

// NewHTTP probes the daemon at baseURL and wraps it as a load target. hc
// may be nil for http.DefaultClient; for high worker counts pass a client
// whose transport allows enough idle connections per host.
func NewHTTP(ctx context.Context, baseURL string, hc *http.Client) (*HTTP, error) {
	c := tsserve.NewClient(baseURL, hc)
	h, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("tsload: probing %s: %w", baseURL, err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("tsload: daemon at %s reports status %q", baseURL, h.Status)
	}
	return &HTTP{client: c, health: h}, nil
}

// Kind returns "http".
func (t *HTTP) Kind() string { return "http" }

// Algorithm returns the daemon's algorithm, as reported by /healthz.
func (t *HTTP) Algorithm() string { return t.health.Algorithm }

// Procs returns the daemon object's paper-process count.
func (t *HTTP) Procs() int { return t.health.Procs }

// OneShot reports the daemon object's one-shot flag.
func (t *HTTP) OneShot() bool { return t.health.OneShot }

// Attach returns a stateless wire session (the daemon leases per request).
func (t *HTTP) Attach(context.Context) (Session, error) { return httpSession{t.client}, nil }

// Compare round-trips /compare.
func (t *HTTP) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return t.client.Compare(ctx, t1, t2)
}

// Space reads the /metrics space section, when the daemon is metered.
func (t *HTTP) Space(ctx context.Context) (SpaceReport, bool) {
	m, err := t.client.Metrics(ctx)
	if err != nil || m.Space == nil {
		return SpaceReport{}, false
	}
	return SpaceReport{
		Registers: m.Space.Registers, Written: m.Space.Written,
		Reads: m.Space.Reads, Writes: m.Space.Writes,
	}, true
}

// Close is a no-op: the daemon belongs to whoever started it.
func (t *HTTP) Close() error { return nil }

type httpSession struct{ c *tsserve.Client }

func (s httpSession) GetTS(ctx context.Context) (tsspace.Timestamp, error) {
	ts, err := s.c.GetTS(ctx, 1)
	if err != nil {
		return tsspace.Timestamp{}, err
	}
	if len(ts) == 0 {
		return tsspace.Timestamp{}, errors.New("tsload: daemon returned an empty /getts batch")
	}
	return ts[0], nil
}

func (s httpSession) Detach() error { return nil }
