// Package tsspace is the public SDK of the reproduction: the paper's
// unbounded timestamp object (§2) behind a session-based, context-aware
// API.
//
// The paper's object has two operations — getTS() and compare(t1, t2) —
// with one correctness requirement, the happens-before property: if a
// getTS() instance returning t1 completes before another returning t2 is
// invoked, then Compare(t1, t2) is true and Compare(t2, t1) is false.
// The internal harnesses expose the *implementation* contract
// (Algorithm.GetTS(mem, pid, seq)), which forces every caller to
// hand-thread shared memory, process identifiers and per-process sequence
// numbers. This package owns that plumbing:
//
//	obj, err := tsspace.New(tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(64))
//	s, err := obj.Attach(ctx)       // lease one of the 64 paper-processes
//	ts, err := s.GetTS(ctx)         // seq tracking, memory, discipline: handled
//	n, err := s.GetTSBatch(ctx, buf) // k back-to-back timestamps, zero allocs
//	before := obj.Compare(t1, t2)
//	s.Detach()                      // the pid is recycled to the next session
//
// Session is the local implementation of SessionAPI, the one session
// surface shared with tsserve.RemoteSession (the same semantics over the
// wire) and with the tsload drivers — write against the interface and the
// transport becomes a deployment decision. The session hot path is
// lock-free: per-pid sequence state lives in padded slots owned by the
// leasing session, so GetTS and GetTSBatch touch no object-wide mutex.
//
// An Object is configured for a fixed number of paper-processes n, but
// serves arbitrarily many logical clients: Attach leases a free process
// id, Detach returns it, and per-process sequence numbers persist across
// leases, so a long-lived object stays correct under unbounded session
// churn (the paper's Θ(n) long-lived space bound is about the process
// *namespace*, not the live set). One-shot objects (sqrt, simple) issue at
// most one timestamp per process id; once all n are spent, Attach reports
// ErrExhausted — that budget is the paper's M, not an implementation
// limit.
//
// Algorithms are resolved by name through the registry in
// internal/timestamp; this package blank-imports the full catalog, so
// every implementation in the repository is available via WithAlgorithm.
package tsspace

import (
	"errors"
	"fmt"
	"time"

	"tsspace/internal/register"
	"tsspace/internal/timestamp"
	_ "tsspace/internal/timestamp/all" // the SDK ships the full algorithm catalog
)

// Timestamp is an element of the timestamp universe T = ℕ × (ℕ ∪ {0}):
// a (Rnd, Turn) pair. Scalar-valued algorithms embed integers as (v, 0).
// Timestamps are opaque tokens to SDK callers: the only meaningful
// operation on them is the object's Compare.
type Timestamp = timestamp.Timestamp

// Typed errors of the SDK surface. Errors returned by Object and Session
// methods match these with errors.Is.
var (
	// ErrUnknownAlgorithm is returned by New when WithAlgorithm names no
	// registered implementation.
	ErrUnknownAlgorithm = errors.New("tsspace: unknown algorithm")
	// ErrBadOption is wrapped by every option- and configuration-
	// validation failure out of New.
	ErrBadOption = errors.New("tsspace: invalid configuration")
	// ErrClosed is returned once the object has been closed.
	ErrClosed = errors.New("tsspace: object closed")
	// ErrDetached is returned by calls on a detached session.
	ErrDetached = errors.New("tsspace: session detached")
	// ErrExhausted is returned by Attach on a one-shot object whose n
	// process slots have all issued their timestamp.
	ErrExhausted = errors.New("tsspace: one-shot object exhausted")
	// ErrOneShot is returned by GetTS when a session of a one-shot object
	// asks for a second timestamp. It aliases the algorithm-level sentinel
	// so errors.Is works across layers.
	ErrOneShot = timestamp.ErrOneShot
)

// AlgorithmInfo describes one catalog entry for discovery surfaces (flag
// help, service health endpoints, the broker's GET /catalog).
type AlgorithmInfo struct {
	Name    string // as accepted by WithAlgorithm
	Summary string // one line
	// OneShot marks algorithms whose sessions issue exactly one
	// timestamp (the paper's Θ(√n)-space regime); long-lived algorithms
	// leave it false.
	OneShot bool
	// MinProcs is the smallest proc count the implementation supports
	// (always ≥ 1).
	MinProcs int
}

// Algorithms returns the names of the registered (correct) algorithm
// implementations, sorted.
func Algorithms() []string { return timestamp.Names() }

// Catalog returns name, one-line summary, one-shot-ness and minimum
// proc count for every registered (correct) implementation, sorted by
// name.
func Catalog() []AlgorithmInfo {
	all := timestamp.All()
	out := make([]AlgorithmInfo, len(all))
	for i, info := range all {
		out[i] = AlgorithmInfo{Name: info.Name, Summary: info.Summary, OneShot: info.OneShot, MinProcs: info.MinProcs}
	}
	return out
}

// config collects the New options.
type config struct {
	alg     string
	procs   int
	sharded bool
	metered bool
	ttl     time.Duration
}

// Option configures New.
type Option func(*config) error

// WithAlgorithm selects the implementation by registry name (see
// Algorithms). The default is "collect", the simplest correct long-lived
// object. Mutant names resolve too — they exist for harness replay and
// must never back real work.
func WithAlgorithm(name string) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("%w: WithAlgorithm with empty name", ErrBadOption)
		}
		c.alg = name
		return nil
	}
}

// WithProcs sets the number of paper-processes n: the concurrency level of
// the object and, for one-shot algorithms, the total timestamp budget. The
// default is 16.
func WithProcs(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: WithProcs(%d): need at least one process", ErrBadOption, n)
		}
		c.procs = n
		return nil
	}
}

// WithSharded backs the object with the cache-line-padded register array,
// trading memory for the elimination of false sharing between adjacent
// registers under heavy multi-core traffic.
func WithSharded() Option {
	return func(c *config) error {
		c.sharded = true
		return nil
	}
}

// WithMetering records the register-space footprint of the object (see
// Usage). Metering puts shared counters on the operation path; leave it
// off for maximum throughput.
func WithMetering() Option {
	return func(c *config) error {
		c.metered = true
		return nil
	}
}

// WithSessionTTL arms the object's lease reaper: a session that issues no
// timestamp for d is force-detached, returning its process id to the free
// pool. This is crash protection, not idle management — it exists so a
// client that dies without Detach (a crashed worker, a dropped
// connection) cannot leak its pid forever, which on a fixed namespace of
// n processes eventually wedges every Attach. Choose d comfortably above
// the longest pause a *live* client can make between calls: a reaped
// session's next call fails with ErrDetached and the client must
// re-attach (its call history survives — sequence numbers persist in the
// pid's slot).
//
// The reaper detects idleness by sequence-number snapshots taken every
// d/4, so the session hot path carries no extra stores for it. Reclaimed
// leases are counted in Stats.Reaped.
func WithSessionTTL(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: WithSessionTTL(%v): need a positive duration", ErrBadOption, d)
		}
		c.ttl = d
		return nil
	}
}

// New constructs a timestamp object. With no options it is a long-lived
// "collect" object for 16 processes, unsharded and unmetered.
func New(opts ...Option) (*Object, error) {
	cfg := config{alg: "collect", procs: 16}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	info, ok := timestamp.Lookup(cfg.alg)
	if !ok {
		return nil, fmt.Errorf("%w: %w %q (have %v)", ErrBadOption, ErrUnknownAlgorithm, cfg.alg, timestamp.Names())
	}
	if cfg.procs < info.MinProcs {
		return nil, fmt.Errorf("%w: algorithm %q needs at least %d processes, got %d",
			ErrBadOption, info.Name, info.MinProcs, cfg.procs)
	}
	alg := info.New(cfg.procs)

	// Scalar-valued algorithms (collect, dense) run on the boxing-free
	// int64 arrays: one atomic word per register, so a getTS allocates
	// nothing. Everything else gets the generic immutable-cell arrays.
	scalar := false
	if sv, ok := alg.(timestamp.ScalarValued); ok {
		scalar = sv.ScalarValued()
	}
	var base register.Mem
	switch {
	case cfg.sharded && scalar:
		base = register.NewShardedInt64Array(alg.Registers())
	case cfg.sharded:
		base = register.NewShardedArray(alg.Registers())
	case scalar:
		base = register.NewInt64Array(alg.Registers())
	default:
		base = register.NewAtomicArray(alg.Registers())
	}
	var meter *register.Meter
	var metered register.Middleware
	if cfg.metered {
		meter = register.NewMeterSize(base.Size())
		metered = register.Metered(meter)
	}

	o := &Object{
		info:    info,
		alg:     alg,
		procs:   cfg.procs,
		oneShot: alg.OneShot(),
		meter:   meter,
		mems:    make([]register.Mem, cfg.procs),
		slots:   make([]seqSlot, cfg.procs),
		free:    make(chan int, cfg.procs),
		closed:  make(chan struct{}),
	}
	// The per-process stack is fixed for the object's lifetime: metering
	// (when on) plus the algorithm's declared writer discipline, so a
	// buggy caller cannot silently break claims like Algorithm 2's
	// 2-writer registers.
	table := alg.WriterTable()
	for pid := 0; pid < cfg.procs; pid++ {
		o.mems[pid] = register.Wrap(base, metered, register.DisciplineFor(table, pid))
		o.free <- pid
	}
	if o.oneShot {
		o.exhausted = make(chan struct{})
	}
	if cfg.ttl > 0 {
		o.sessions = make(map[*Session]struct{})
		go o.reapLoop(cfg.ttl)
	}
	return o, nil
}
