package tsserve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"tsspace"
	"tsspace/internal/obs"
)

// ErrServerClosed is returned by ServeBinary when the server has
// already been closed, mirroring net/http.ErrServerClosed.
var ErrServerClosed = errors.New("tsserve: server closed")

// ServeBinary serves the wire-v3 binary protocol on ln until the listener
// fails or the server is closed. It shares the server's session space
// with the HTTP front end: binary attach frames lease sessions in the
// same table, the same idle-TTL reaper detaches abandoned leases, and
// Close drains binary connections alongside the HTTP sessions. Run it on
// its own goroutine next to the HTTP server:
//
//	ln, _ := net.Listen("tcp", ":8038")
//	go front.ServeBinary(ln)
//
// Each connection is processed serially — one session per connection is
// the intended shape (the client binds them that way), so pipelined
// frames on a connection are answered in order with no head-of-line
// surprises across sessions.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.binMu.Lock()
	select {
	case <-s.stop:
		s.binMu.Unlock()
		ln.Close()
		return ErrServerClosed
	default:
	}
	s.binListeners = append(s.binListeners, ln)
	s.binMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.binMu.Lock()
		s.binConns[c] = struct{}{}
		s.binMu.Unlock()
		go func() {
			s.serveBinConn(c)
			s.binMu.Lock()
			delete(s.binConns, c)
			s.binMu.Unlock()
		}()
	}
}

// closeBinary is the binary side of Close: stop accepting, give in-flight
// frames a moment to finish (frame handling is microseconds; the wait is
// a courtesy so a response mid-write is not cut), then close every
// connection, which unblocks their readers.
func (s *Server) closeBinary() {
	s.binMu.Lock()
	lns := s.binListeners
	s.binListeners = nil
	s.binMu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	deadline := time.Now().Add(250 * time.Millisecond)
	for s.binBusy.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.binMu.Lock()
	for c := range s.binConns {
		_ = c.Close()
	}
	s.binMu.Unlock()
}

// binServerConn is the per-connection state of one binary client: reused
// read/write buffers and the set of sessions attached through this
// connection, detached when it goes away (a binary session lives and dies
// with its connection, like the client's pooling assumes; an id is still
// addressable from elsewhere while the connection lives, since both
// protocols share one session table).
type binServerConn struct {
	s     *Server
	bw    *bufio.Writer
	out   []byte // response scratch, reused per frame
	tsBuf []tsspace.Timestamp
	owned map[string]struct{}
	// Latency histograms resolved once per connection, so the per-frame
	// path records without a map lookup.
	binGettsLat   *obs.Histogram
	binCompareLat *obs.Histogram
}

func (s *Server) serveBinConn(c net.Conn) {
	defer c.Close()
	var magic [len(BinaryMagic)]byte
	if _, err := io.ReadFull(c, magic[:]); err != nil || string(magic[:]) != BinaryMagic {
		// Not a wire-v3 client; nothing sensible to answer. Count it —
		// a burst of these is a misconfigured client or a port scan.
		s.met.badMagicConns.Inc()
		return
	}
	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	fr := frameReader{r: br}
	st := &binServerConn{
		s: s, bw: bw, owned: make(map[string]struct{}),
		binGettsLat:   s.met.lat["binary_getts"],
		binCompareLat: s.met.lat["binary_compare"],
	}
	defer st.cleanup()
	for {
		select {
		case <-s.stop:
			_ = bw.Flush()
			return
		default:
		}
		typ, payload, err := fr.next()
		if err != nil {
			// A framing-level violation (oversized or empty prefix) poisons
			// the stream: answer once, then hang up. I/O errors and EOF just
			// end the connection.
			if errors.Is(err, errFrameTooLarge) || errors.Is(err, errFrameEmpty) {
				if errors.Is(err, errFrameTooLarge) {
					s.met.oversizedFrames.Inc()
				}
				st.writeError(binCodeBadRequest, err.Error())
				_ = bw.Flush()
			}
			return
		}
		s.binBusy.Add(1)
		s.met.binFrames.Inc()
		s.met.binBytesIn.Add(uint64(4 + 1 + len(payload)))
		st.handle(typ, payload)
		s.binBusy.Add(-1)
		// Flush when no request is already buffered: pipelined bursts share
		// one flush, a lone request is answered immediately.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// cleanup detaches every session attached through this connection that is
// still leased (the reaper or an explicit detach may have won already).
// Leases released here are crash events in the flight recorder: their
// owner vanished without detaching.
func (st *binServerConn) cleanup() {
	for id := range st.owned {
		if ws, ok := st.s.remove(id); ok {
			ws.mu.Lock()
			calls := ws.sess.Calls()
			pid := ws.sess.Pid()
			_ = ws.sess.Detach()
			ws.mu.Unlock()
			st.s.met.crashReclaimed.Inc()
			st.s.met.ring.RecordNS(obs.EventCrash, ws.ns.id, ws.idNum, int32(pid), int64(calls))
		}
	}
}

// handle dispatches one frame. Payload-level problems answer an error
// frame and keep the connection: the framing is intact, so the stream
// stays decodable.
func (st *binServerConn) handle(typ byte, payload []byte) {
	switch typ {
	case frameGetTS:
		st.getTS(payload)
	case frameAttach:
		st.attach(payload)
	case frameAttachNS:
		st.attachNS(payload)
	case frameDetach:
		st.detach(payload)
	case frameCompare:
		st.compare(payload)
	default:
		st.writeError(binCodeBadRequest, fmt.Sprintf("unknown frame type 0x%02x", typ))
	}
}

// getTS answers one pipelined batch frame: the steady-state path, kept
// allocation-free (id lookup without a string copy, reused timestamp and
// response buffers, delta-encoded reply).
func (st *binServerConn) getTS(payload []byte) {
	s := st.s
	start := time.Now()
	id, rest, err := sessionID(payload)
	if err != nil {
		st.writeError(binCodeBadRequest, "getts: "+err.Error())
		return
	}
	cnt, off, err := uvarint(rest, 0)
	if err != nil || off != len(rest) {
		st.writeError(binCodeBadRequest, "getts: malformed count")
		return
	}
	count := int(cnt)
	if count < 1 {
		count = 1
	}
	if count > s.maxBatch {
		st.writeError(binCodeBadRequest, fmt.Sprintf("count %d exceeds the batch cap %d", count, s.maxBatch))
		return
	}
	ws, ok := s.lookupKey(id)
	if !ok {
		s.met.unknownSessions.Inc()
		s.met.ring.Record(obs.EventError, sessionIDNum(string(id)), -1, int64(binCodeUnknownSession))
		st.writeError(binCodeUnknownSession, fmt.Sprintf("unknown session %q (detached, reaped, or never attached)", id))
		return
	}
	// One-shot-ness is the session's namespace's property, so the check
	// sits after the lookup (frames carry no namespace; the id binds it).
	if ws.object().OneShot() && count > 1 {
		st.writeError(binCodeBadRequest, fmt.Sprintf("a one-shot object issues one timestamp per process; ask for count 1, not %d", count))
		return
	}
	if cap(st.tsBuf) < count {
		st.tsBuf = make([]tsspace.Timestamp, count)
	}
	buf := st.tsBuf[:count]
	ws.mu.Lock()
	ws.last.Store(time.Now().UnixNano()) // renew at start too: a long batch is not idle
	n, err := ws.sess.GetTSBatch(s.binCtx, buf)
	ws.last.Store(time.Now().UnixNano())
	pid := ws.sess.Pid()
	ws.mu.Unlock()
	if err != nil {
		st.writeSDKError(fmt.Errorf("timestamp %d/%d: %w", n+1, count, err))
		return
	}
	st.out = beginFrame(st.out[:0], frameGetTSOK)
	st.out = appendTimestamps(st.out, pid, buf[:n])
	st.out = endFrame(st.out, 0)
	st.write()
	s.met.batches.Inc()
	d := time.Since(start)
	st.binGettsLat.Record(d.Nanoseconds())
	if d > s.slowOp {
		s.met.ring.RecordNS(obs.EventSlowOp, ws.ns.id, ws.idNum, int32(pid), d.Nanoseconds())
	}
}

// attach leases a session in the shared wire table and marks it
// binary-attached for the metrics split. The bare attach frame binds
// into the default namespace.
func (st *binServerConn) attach(payload []byte) {
	if len(payload) != 0 {
		st.writeError(binCodeBadRequest, "attach: unexpected payload")
		return
	}
	st.attachInto(st.s.defaultNS, frameAttachOK)
}

// attachNS is the wire-v3 namespace-bound attach: the payload names a
// namespace (uvarint length + raw bytes) and the lease binds into that
// namespace's Object. An unprovisioned name answers the broker's own
// unknown_namespace code, never unknown_session.
func (st *binServerConn) attachNS(payload []byte) {
	s := st.s
	l, off, err := uvarint(payload, 0)
	if err != nil || int(l) != len(payload)-off {
		st.writeError(binCodeBadRequest, "attach_ns: malformed namespace name")
		return
	}
	name := string(payload[off:])
	ns, ok := s.resolveNS(name)
	if !ok {
		s.rejectUnknownNamespace()
		st.writeError(binCodeUnknownNamespace, fmt.Sprintf("unknown namespace %q (never provisioned, or already deprovisioned)", name))
		return
	}
	st.attachInto(ns, frameAttachNSOK)
}

// attachInto leases a session in ns, reserving its quota slot first so
// a full namespace rejects with the typed quota code instead of
// queueing for a pid.
func (st *binServerConn) attachInto(ns *namespace, okType byte) {
	s := st.s
	if !ns.reserve() {
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeQuota))
		st.writeError(binCodeQuota, fmt.Sprintf("namespace %q: session quota %d exhausted", ns.name, ns.maxSessions))
		return
	}
	sess, err := ns.obj.Attach(s.binCtx)
	if err != nil {
		ns.release()
		st.writeSDKError(err)
		return
	}
	ws := s.register(ns, sess, true)
	st.owned[ws.id] = struct{}{}
	st.out = beginFrame(st.out[:0], okType)
	st.out = append(st.out, ws.id...)
	st.out = binary.AppendUvarint(st.out, uint64(sess.Pid()))
	st.out = binary.AppendUvarint(st.out, uint64(s.sessionTTL.Milliseconds()))
	st.out = endFrame(st.out, 0)
	st.write()
}

// detach returns a lease explicitly, whichever protocol attached it.
func (st *binServerConn) detach(payload []byte) {
	s := st.s
	id, rest, err := sessionID(payload)
	if err != nil || len(rest) != 0 {
		st.writeError(binCodeBadRequest, "detach: malformed session id")
		return
	}
	ws, ok := s.removeKey(id)
	if !ok {
		st.writeError(binCodeUnknownSession, fmt.Sprintf("unknown session %q (detached, reaped, or never attached)", id))
		return
	}
	delete(st.owned, ws.id)
	ws.mu.Lock() // wait out a batch in flight, then release the pid
	calls := ws.sess.Calls()
	_ = ws.sess.Detach()
	ws.mu.Unlock()
	st.out = beginFrame(st.out[:0], frameDetachOK)
	st.out = binary.AppendUvarint(st.out, uint64(calls))
	st.out = endFrame(st.out, 0)
	st.write()
}

// compare answers compare(t1, t2) without touching any session.
func (st *binServerConn) compare(payload []byte) {
	s := st.s
	start := time.Now()
	var vals [4]int64
	off := 0
	var err error
	for i := range vals {
		if vals[i], off, err = varint(payload, off); err != nil {
			st.writeError(binCodeBadRequest, "compare: truncated operands")
			return
		}
	}
	if off != len(payload) {
		st.writeError(binCodeBadRequest, "compare: trailing bytes")
		return
	}
	before := s.defaultNS.obj.Compare(
		tsspace.Timestamp{Rnd: vals[0], Turn: vals[1]},
		tsspace.Timestamp{Rnd: vals[2], Turn: vals[3]},
	)
	st.out = beginFrame(st.out[:0], frameCompareOK)
	b := byte(0)
	if before {
		b = 1
	}
	st.out = append(st.out, b)
	st.out = endFrame(st.out, 0)
	st.write()
	st.binCompareLat.Record(time.Since(start).Nanoseconds())
}

// write flushes st.out into the buffered writer and counts the bytes; a
// failed write surfaces on the next Flush, ending the connection.
func (st *binServerConn) write() {
	_, _ = st.bw.Write(st.out)
	st.s.met.binBytesOut.Add(uint64(len(st.out)))
}

// writeError answers the current frame with an error frame.
func (st *binServerConn) writeError(code byte, msg string) {
	st.out = beginFrame(st.out[:0], frameError)
	st.out = appendError(st.out, code, msg)
	st.out = endFrame(st.out, 0)
	st.write()
}

// writeSDKError is writeSDKError of the HTTP side in frame form: SDK
// errors map to the shared wire codes so both protocols produce the same
// typed errors client-side.
func (st *binServerConn) writeSDKError(err error) {
	switch {
	case errors.Is(err, tsspace.ErrExhausted) || errors.Is(err, tsspace.ErrOneShot):
		st.writeError(binCodeExhausted, err.Error())
	case errors.Is(err, tsspace.ErrDetached):
		st.writeError(binCodeUnknownSession, err.Error())
	case errors.Is(err, tsspace.ErrClosed):
		st.writeError(binCodeClosed, err.Error())
	default:
		st.writeError(binCodeInternal, err.Error())
	}
}

// lookupKey is lookup for a raw id: the map access with string(id) is
// allocation-free, which keeps the per-frame path clean.
func (s *Server) lookupKey(id []byte) (*wireSession, bool) {
	s.sessMu.Lock()
	ws, ok := s.sessions[string(id)]
	s.sessMu.Unlock()
	return ws, ok
}

// removeKey is remove for a raw id, releasing the lease's quota slot
// like every other removal from the session table.
func (s *Server) removeKey(id []byte) (*wireSession, bool) {
	s.sessMu.Lock()
	ws, ok := s.sessions[string(id)]
	if ok {
		delete(s.sessions, string(id))
	}
	s.sessMu.Unlock()
	if ok {
		ws.ns.release()
	}
	return ws, ok
}
