package tsserve_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsserve"
)

// newBinaryServer starts an object, its Server, a binary listener, and an
// HTTP front (for /metrics assertions), returning the binary client and
// friends.
func newBinaryServer(t *testing.T, cfg tsserve.ServerConfig, opts ...tsspace.Option) (*tsserve.BinaryClient, *tsserve.Client, *tsserve.Server, *tsspace.Object) {
	t.Helper()
	obj, err := tsspace.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	front := tsserve.NewServer(obj, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go front.ServeBinary(ln)
	hsrv := httptest.NewServer(front)
	bc := tsserve.NewBinaryClient(ln.Addr().String())
	t.Cleanup(func() {
		bc.Close()
		hsrv.Close()
		front.Close()
		obj.Close()
	})
	return bc, tsserve.NewClient(hsrv.URL, hsrv.Client()), front, obj
}

func TestBinarySessionEndToEnd(t *testing.T) {
	bc, _, _, obj := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(4))
	ctx := context.Background()

	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Pid() < 0 || sess.Pid() >= 4 {
		t.Fatalf("pid %d out of range", sess.Pid())
	}
	if len(sess.ID()) != 16 {
		t.Fatalf("session id %q, want 16 hex chars", sess.ID())
	}

	// Pipelined batches on one lease: strictly ordered within and across.
	var all []tsspace.Timestamp
	buf := make([]tsspace.Timestamp, 5)
	for b := 0; b < 3; b++ {
		n, err := sess.GetTSBatch(ctx, buf)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if n != 5 {
			t.Fatalf("batch %d: %d timestamps, want 5", b, n)
		}
		all = append(all, buf[:n]...)
	}
	one, err := sess.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, one)
	for i := 0; i+1 < len(all); i++ {
		before, err := sess.Compare(ctx, all[i], all[i+1])
		if err != nil {
			t.Fatal(err)
		}
		after, err := bc.Compare(ctx, all[i+1], all[i])
		if err != nil {
			t.Fatal(err)
		}
		if !before || after {
			t.Fatalf("happens-before violated at %d: %v vs %v", i, all[i], all[i+1])
		}
	}
	if sess.Calls() != len(all) {
		t.Fatalf("Calls = %d, want %d", sess.Calls(), len(all))
	}

	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatalf("second detach: %v", err)
	}
	if _, err := sess.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
		t.Fatalf("getts on detached session = %v, want ErrDetached", err)
	}
	// Compare still works after detach (falls back to the pooled client).
	if _, err := sess.Compare(ctx, all[0], all[1]); err != nil {
		t.Fatalf("compare after detach: %v", err)
	}
	if st := obj.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("%d active SDK sessions after detach", st.ActiveSessions)
	}
}

// A binary lease is reaped after idling past the TTL, and the client sees
// the same typed error HTTP clients do.
func TestBinarySessionIdleReaping(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{SessionTTL: 50 * time.Millisecond},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))
	ctx := context.Background()

	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	// Idle well past the TTL (every successful call renews the lease, so
	// sleep without touching the session), then expect the typed error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(150 * time.Millisecond)
		_, err := sess.GetTS(ctx)
		if err == nil {
			if time.Now().After(deadline) {
				t.Fatal("session never reaped")
			}
			continue
		}
		if !errors.Is(err, tsspace.ErrDetached) {
			t.Fatalf("reaped session error = %v, want ErrDetached", err)
		}
		break
	}
	if err := sess.Detach(); err != nil {
		t.Fatalf("detach after reap: %v", err)
	}
}

// Wire v2 and wire v3 share one session table: a session attached over
// HTTP is addressable (and detachable) over binary, and vice versa is
// reported in /metrics' session split.
func TestBinaryAndHTTPShareSessions(t *testing.T) {
	bc, hc, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(4))
	ctx := context.Background()

	bsess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hsess, err := hc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bsess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := hsess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	m, err := hc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.WireSessions != 2 {
		t.Fatalf("wire_sessions = %d, want 2", m.WireSessions)
	}
	if m.BinarySessions != 1 {
		t.Fatalf("binary_sessions = %d, want 1", m.BinarySessions)
	}
	if m.BinaryFrames == 0 || m.BinaryBytesIn == 0 || m.BinaryBytesOut == 0 {
		t.Fatalf("binary counters not moving: %+v", m)
	}
	if err := bsess.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := hsess.Detach(); err != nil {
		t.Fatal(err)
	}
}

// Typed error mapping across the binary wire: one-shot exhaustion and
// oversized batches.
func TestBinaryTypedErrors(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{MaxBatch: 8},
		tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(4))
	ctx := context.Background()

	// A one-shot object rejects batches > 1 and exhausts after n attaches.
	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]tsspace.Timestamp, 2)
	if _, err := sess.GetTSBatch(ctx, buf); err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Fatalf("one-shot batch=2 error = %v", err)
	}
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, err := bc.Attach(ctx)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		if _, err := s.GetTS(ctx); err != nil {
			t.Fatalf("getts %d: %v", i, err)
		}
		if err := s.Detach(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bc.Attach(ctx); !errors.Is(err, tsspace.ErrExhausted) {
		t.Fatalf("attach on exhausted object = %v, want ErrExhausted", err)
	}
}

func TestBinaryBatchCap(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{MaxBatch: 4},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))
	ctx := context.Background()
	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()
	buf := make([]tsspace.Timestamp, 5)
	_, err = sess.GetTSBatch(ctx, buf)
	var apiErr *tsserve.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != tsserve.CodeBadRequest {
		t.Fatalf("over-cap batch error = %v, want bad_request APIError", err)
	}
	// The connection survives a payload-level error: the lease still works.
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatalf("getts after over-cap error: %v", err)
	}
}

// A raw connection can pipeline frames: several requests written back to
// back are answered in order.
func TestBinaryPipelining(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))
	ctx := context.Background()
	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()

	c, err := net.Dial("tcp", bc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(tsserve.BinaryMagic)); err != nil {
		t.Fatal(err)
	}
	// Three compare requests in one write (compare needs no session).
	ts1, err := sess.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := sess.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var req []byte
	for i := 0; i < 3; i++ {
		start := len(req)
		req = append(req, 0, 0, 0, 0, 0x04) // frameCompare
		req = binary.AppendVarint(req, ts1.Rnd)
		req = binary.AppendVarint(req, ts1.Turn)
		req = binary.AppendVarint(req, ts2.Rnd)
		req = binary.AppendVarint(req, ts2.Turn)
		binary.BigEndian.PutUint32(req[start:], uint32(len(req)-start-4))
	}
	if _, err := c.Write(req); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		typ, payload := readFrame(t, c)
		if typ != 0x84 { // frameCompareOK
			t.Fatalf("response %d: type 0x%02x", i, typ)
		}
		if len(payload) != 1 || payload[0] != 1 {
			t.Fatalf("response %d: payload %v, want [1]", i, payload)
		}
	}
}

// Framing violations (oversized length prefix) get one error frame and a
// closed connection.
func TestBinaryOversizedFrameCloses(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))
	c, err := net.Dial("tcp", bc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(tsserve.BinaryMagic)); err != nil {
		t.Fatal(err)
	}
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4GiB frame claim
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	typ, payload := readFrame(t, c)
	if typ != 0xFF { // frameError
		t.Fatalf("type 0x%02x, want error frame", typ)
	}
	if len(payload) < 1 || payload[0] != 1 { // binCodeBadRequest
		t.Fatalf("error payload %v, want bad_request code", payload)
	}
	// The server hangs up after a framing violation.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := c.Read(one[:]); err != io.EOF {
		t.Fatalf("read after framing violation = %v, want EOF", err)
	}
}

// A wrong magic is dropped without an answer.
func TestBinaryBadMagic(t *testing.T) {
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))
	c, err := net.Dial("tcp", bc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("GET http")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := c.Read(one[:]); err == nil {
		t.Fatal("server answered a non-v3 client, want the connection dropped")
	}
}

// Dropping a connection without detaching releases its sessions: the pid
// comes back without waiting for the TTL reaper.
func TestBinaryConnCloseReleasesSessions(t *testing.T) {
	bc, _, _, obj := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(1))
	// Raw client: magic, one attach frame, then vanish without a detach.
	c, err := net.Dial("tcp", bc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte(tsserve.BinaryMagic)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{0, 0, 0, 1, 0x01}); err != nil { // frameAttach
		t.Fatal(err)
	}
	if typ, _ := readFrame(t, c); typ != 0x81 { // frameAttachOK
		t.Fatalf("attach response type 0x%02x", typ)
	}
	c.Close()
	// The one pid must become leasable again once the server notices.
	attachCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s2, err := obj.Attach(attachCtx)
	if err != nil {
		t.Fatalf("pid not released after conn close: %v", err)
	}
	s2.Detach()
}

// The steady-state client frame path allocates nothing: one reused
// request buffer out, one framed read decoded into the caller's slice.
// The server shares the process here, so the measurement actually bounds
// client + server allocations per frame at zero.
func TestBinaryGetTSBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	bc, _, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(4))
	ctx := context.Background()
	sess, err := bc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()
	buf := make([]tsspace.Timestamp, 64)
	// Warm the buffers (first batches grow scratch space).
	for i := 0; i < 8; i++ {
		if _, err := sess.GetTSBatch(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(200, func() {
			if _, err := sess.GetTSBatch(ctx, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs == 0 {
			return
		}
	}
	t.Fatalf("steady-state GetTSBatch allocates %.2f/op, want 0", allocs)
}

func BenchmarkBinaryGetTSBatch(b *testing.B) {
	for _, batch := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			obj, err := tsspace.New(tsspace.WithAlgorithm("collect"), tsspace.WithProcs(4))
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			front := tsserve.NewServer(obj, tsserve.ServerConfig{})
			defer front.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go front.ServeBinary(ln)
			bc := tsserve.NewBinaryClient(ln.Addr().String())
			defer bc.Close()
			ctx := context.Background()
			sess, err := bc.Attach(ctx)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Detach()
			buf := make([]tsspace.Timestamp, batch)
			if _, err := sess.GetTSBatch(ctx, buf); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.GetTSBatch(ctx, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/ts")
		})
	}
}

// readFrame reads one raw frame off a test connection.
func readFrame(t *testing.T, c net.Conn) (byte, []byte) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		t.Fatal(err)
	}
	return body[0], body[1:]
}
