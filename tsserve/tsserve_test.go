package tsserve_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsserve"
)

func newTestServer(t *testing.T, opts ...tsspace.Option) (*tsserve.Client, *tsspace.Object) {
	t.Helper()
	c, obj, _ := newTestServerCfg(t, tsserve.ServerConfig{MaxBatch: 16}, opts...)
	return c, obj
}

func newTestServerCfg(t *testing.T, cfg tsserve.ServerConfig, opts ...tsspace.Option) (*tsserve.Client, *tsspace.Object, *tsserve.Server) {
	t.Helper()
	obj, err := tsspace.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	front := tsserve.NewServer(obj, cfg)
	srv := httptest.NewServer(front)
	t.Cleanup(func() { srv.Close(); front.Close(); obj.Close() })
	return tsserve.NewClient(srv.URL, srv.Client()), obj, front
}

// A batch is issued by one session back to back, so it must be strictly
// increasing under the object's compare — verified both client-side and
// over the /compare endpoint.
func TestBatchedGetTSHappensBefore(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(4), tsspace.WithMetering())

	batch, err := c.GetTS(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Fatalf("got %d timestamps, want 5", len(batch))
	}
	for i := 0; i+1 < len(batch); i++ {
		if !obj.Compare(batch[i], batch[i+1]) {
			t.Errorf("batch[%d] %v not before batch[%d] %v", i, batch[i], i+1, batch[i+1])
		}
		before, err := c.Compare(ctx, batch[i], batch[i+1])
		if err != nil || !before {
			t.Errorf("/compare(batch[%d], batch[%d]) = (%v, %v), want true", i, i+1, before, err)
		}
		after, err := c.Compare(ctx, batch[i+1], batch[i])
		if err != nil || after {
			t.Errorf("/compare(batch[%d], batch[%d]) = (%v, %v), want false", i+1, i, after, err)
		}
	}
}

// Batches from different requests are ordered too when they do not
// overlap: a completed batch happens-before a later one.
func TestSequentialBatchesOrdered(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(4))
	first, err := c.GetTS(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.GetTS(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if last, head := first[len(first)-1], second[0]; !obj.Compare(last, head) {
		t.Errorf("batch boundary unordered: %v vs %v", last, head)
	}
}

// Concurrent clients funnel through the object's pid pool: more clients
// than pids must still all be served.
func TestConcurrentClientsOverFewPids(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(2))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.GetTS(ctx, 2); err != nil {
				t.Errorf("client: %v", err)
			}
		}()
	}
	wg.Wait()
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls != 32 || m.Batches != 16 {
		t.Errorf("metrics after load: %+v, want 32 calls / 16 batches", m)
	}
}

func TestOneShotSemanticsOverTheWire(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(2))

	// Batches are rejected up front on one-shot objects.
	var apiErr *tsserve.APIError
	if _, err := c.GetTS(ctx, 2); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("one-shot batch err = %v, want 400", err)
	}

	t1, err := c.GetTS(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.GetTS(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before, err := c.Compare(ctx, t1[0], t2[0]); err != nil || !before {
		t.Errorf("one-shot pair unordered: (%v, %v)", before, err)
	}

	// Budget spent: the typed exhaustion error crosses the wire.
	_, err = c.GetTS(ctx, 1)
	if !errors.Is(err, tsspace.ErrExhausted) {
		t.Errorf("exhausted err = %v, want ErrExhausted via APIError.Is", err)
	}
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || apiErr.Code != tsserve.CodeExhausted {
		t.Errorf("exhausted wire form = %+v, want 409/%s", apiErr, tsserve.CodeExhausted)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(9), tsspace.WithMetering())
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Algorithm != "sqrt" || h.Procs != 9 || h.Registers != 6 || !h.OneShot {
		t.Errorf("health = %+v", h)
	}
	if h.Summary == "" {
		t.Error("health missing the catalog summary")
	}

	if _, err := c.GetTS(ctx, 1); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls != 1 || m.Attaches != 1 || m.Space == nil {
		t.Fatalf("metrics = %+v, want 1 call with a space section", m)
	}
	if m.Space.Registers != 6 || m.Space.Written < 1 {
		t.Errorf("space = %+v", *m.Space)
	}
	if m.UptimeSeconds <= 0 || m.CallsPerSecond <= 0 {
		t.Errorf("throughput fields not populated: %+v", m)
	}
}

func TestMetricsEndpointLatency(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(4))

	// Before any operation, the latency section has no endpoints.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latency) != 0 {
		t.Errorf("latency reported before any op: %+v", m.Latency)
	}

	const batches = 20
	var first, last tsspace.Timestamp
	for i := 0; i < batches; i++ {
		ts, err := c.GetTS(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = ts[0]
		}
		last = ts[1]
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Compare(ctx, first, last); err != nil {
			t.Fatal(err)
		}
	}

	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	getts, ok := m.Latency["getts"]
	if !ok {
		t.Fatalf("no getts latency in %+v", m.Latency)
	}
	if getts.Count != batches {
		t.Errorf("getts latency count %d, want %d (per request, not per timestamp)", getts.Count, batches)
	}
	if getts.P50Ns <= 0 || getts.P50Ns > getts.P99Ns || getts.P99Ns > getts.P999Ns || getts.P999Ns > getts.MaxNs {
		t.Errorf("getts percentiles not positive-monotone: %+v", getts)
	}
	cmp, ok := m.Latency["compare"]
	if !ok || cmp.Count != 5 {
		t.Errorf("compare latency = %+v (ok=%v), want count 5", cmp, ok)
	}
	if _, ok := m.Latency["healthz"]; ok {
		t.Error("non-operation endpoints must not be timed")
	}
}

// Wire v2 lifecycle: attach leases a pid, batches pipeline on it (ordered
// within and across), detach releases it and later calls report
// ErrDetached across the wire.
func TestRemoteSessionLifecycle(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(2))

	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pid := sess.Pid(); pid < 0 || pid >= 2 {
		t.Errorf("Pid = %d, want in [0,2)", pid)
	}
	if sess.ID() == "" {
		t.Error("empty session id")
	}

	var stream []tsspace.Timestamp
	buf := make([]tsspace.Timestamp, 4)
	for b := 0; b < 3; b++ {
		n, err := sess.GetTSBatch(ctx, buf)
		if err != nil || n != 4 {
			t.Fatalf("batch %d = (%d, %v), want (4, nil)", b, n, err)
		}
		stream = append(stream, buf[:n]...)
	}
	one, err := sess.GetTS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, one)
	for i := 0; i+1 < len(stream); i++ {
		if !obj.Compare(stream[i], stream[i+1]) {
			t.Errorf("session stream unordered at %d: %v vs %v", i, stream[i], stream[i+1])
		}
	}
	if sess.Calls() != 13 {
		t.Errorf("Calls = %d, want 13", sess.Calls())
	}
	if before, err := sess.Compare(ctx, stream[0], stream[12]); err != nil || !before {
		t.Errorf("session Compare = (%v, %v), want (true, nil)", before, err)
	}

	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Errorf("second Detach = %v, want idempotent nil", err)
	}
	if _, err := sess.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
		t.Errorf("GetTS after Detach = %v, want ErrDetached", err)
	}

	// The server-side lease is gone too: a raw request against the old id
	// is 404/unknown_session, and the SDK pid is leasable again.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.WireSessions != 0 || m.ActiveSessions != 0 {
		t.Errorf("after detach: %d wire sessions, %d active SDK sessions", m.WireSessions, m.ActiveSessions)
	}
}

// A lease idle past the TTL is reaped: its pid recycles and the stale
// handle maps to ErrDetached.
func TestRemoteSessionIdleReaping(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServerCfg(t, tsserve.ServerConfig{SessionTTL: 50 * time.Millisecond},
		tsspace.WithProcs(1))

	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}

	// With the only pid leased and the lease idle, the reaper must free it
	// for the next attach.
	next, err := c.Attach(ctx)
	if err != nil {
		t.Fatalf("attach after reap window: %v", err)
	}
	defer next.Detach()

	if _, err := sess.GetTS(ctx); !errors.Is(err, tsspace.ErrDetached) {
		t.Errorf("GetTS on a reaped session = %v, want ErrDetached", err)
	}
	if err := sess.Detach(); err != nil {
		t.Errorf("Detach of a reaped session = %v, want nil", err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReapedSessions == 0 {
		t.Errorf("metrics counted no reaped sessions: %+v", m)
	}
}

// Concurrent requests against one wire session serialize server-side:
// every batch stays internally ordered and every timestamp is distinct,
// exactly as if one client had issued them back to back.
func TestSameSessionRequestsSerialize(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(2))
	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()

	const clients, perClient = 8, 5
	batches := make([][]tsspace.Timestamp, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]tsspace.Timestamp, perClient)
			n, err := sess.GetTSBatch(ctx, buf)
			if err != nil || n != perClient {
				t.Errorf("client %d: batch = (%d, %v)", i, n, err)
				return
			}
			batches[i] = append([]tsspace.Timestamp(nil), buf...)
		}(i)
	}
	wg.Wait()

	seen := make(map[tsspace.Timestamp]bool)
	for i, b := range batches {
		for j := 0; j+1 < len(b); j++ {
			if !obj.Compare(b[j], b[j+1]) {
				t.Errorf("client %d: batch unordered at %d", i, j)
			}
		}
		for _, ts := range b {
			if seen[ts] {
				t.Errorf("timestamp %v issued twice across concurrent same-session batches", ts)
			}
			seen[ts] = true
		}
	}
	if len(seen) != clients*perClient {
		t.Errorf("issued %d distinct timestamps, want %d", len(seen), clients*perClient)
	}
}

func TestOneShotSessionOverV2(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(2))

	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()

	// Multi-count batches are rejected up front on one-shot objects.
	var apiErr *tsserve.APIError
	if _, err := sess.GetTSBatch(ctx, make([]tsspace.Timestamp, 2)); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("one-shot v2 batch err = %v, want 400", err)
	}
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	// The second single call trips the budget, typed across the wire.
	if _, err := sess.GetTS(ctx); !errors.Is(err, tsspace.ErrExhausted) && !errors.Is(err, tsspace.ErrOneShot) {
		t.Errorf("second one-shot GetTS = %v, want exhaustion", err)
	}
}

// The satellite requirement on NewClient's zero HTTP client: consecutive
// calls must reuse one keep-alive connection instead of dialing per
// request (DefaultTransport-style pooling tuned for pipelining workers).
func TestDefaultClientReusesConnections(t *testing.T) {
	obj, err := tsspace.New(tsspace.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	front := tsserve.NewServer(obj, tsserve.ServerConfig{})
	srv := httptest.NewUnstartedServer(front)
	var conns atomic.Int64
	srv.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	t.Cleanup(func() { srv.Close(); front.Close(); obj.Close() })

	ctx := context.Background()
	c := tsserve.NewClient(srv.URL, nil) // nil = the tuned keep-alive default
	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]tsspace.Timestamp, 2)
	for i := 0; i < 10; i++ {
		if _, err := sess.GetTSBatch(ctx, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Compare(ctx, buf[0], buf[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("%d connections dialed across 22 consecutive calls, want 1 (keep-alive reuse)", got)
	}
}

func TestRequestValidation(t *testing.T) {
	c, obj := newTestServer(t, tsspace.WithProcs(2))
	srvURL := strings.TrimSuffix(clientBase(c), "/")

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"oversized batch", "POST", "/getts", `{"count": 17}`, http.StatusBadRequest},
		{"negative count means 1", "POST", "/getts", `{"count": -3}`, http.StatusOK},
		{"empty body means 1", "POST", "/getts", ``, http.StatusOK},
		{"unknown field", "POST", "/getts", `{"size": 2}`, http.StatusBadRequest},
		{"malformed json", "POST", "/compare", `{`, http.StatusBadRequest},
		{"wrong method getts", "GET", "/getts", ``, http.StatusMethodNotAllowed},
		{"wrong method healthz", "POST", "/healthz", ``, http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srvURL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
		})
	}
	_ = obj
}

// clientBase exposes the client's base URL for raw-request tests.
func clientBase(c *tsserve.Client) string { return c.BaseURL() }
