package tsserve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tsspace"
	"tsspace/tsserve"
)

func newTestServer(t *testing.T, opts ...tsspace.Option) (*tsserve.Client, *tsspace.Object) {
	t.Helper()
	obj, err := tsspace.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tsserve.NewServer(obj, tsserve.ServerConfig{MaxBatch: 16}))
	t.Cleanup(func() { srv.Close(); obj.Close() })
	return tsserve.NewClient(srv.URL, srv.Client()), obj
}

// A batch is issued by one session back to back, so it must be strictly
// increasing under the object's compare — verified both client-side and
// over the /compare endpoint.
func TestBatchedGetTSHappensBefore(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(4), tsspace.WithMetering())

	batch, err := c.GetTS(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Fatalf("got %d timestamps, want 5", len(batch))
	}
	for i := 0; i+1 < len(batch); i++ {
		if !obj.Compare(batch[i], batch[i+1]) {
			t.Errorf("batch[%d] %v not before batch[%d] %v", i, batch[i], i+1, batch[i+1])
		}
		before, err := c.Compare(ctx, batch[i], batch[i+1])
		if err != nil || !before {
			t.Errorf("/compare(batch[%d], batch[%d]) = (%v, %v), want true", i, i+1, before, err)
		}
		after, err := c.Compare(ctx, batch[i+1], batch[i])
		if err != nil || after {
			t.Errorf("/compare(batch[%d], batch[%d]) = (%v, %v), want false", i+1, i, after, err)
		}
	}
}

// Batches from different requests are ordered too when they do not
// overlap: a completed batch happens-before a later one.
func TestSequentialBatchesOrdered(t *testing.T) {
	ctx := context.Background()
	c, obj := newTestServer(t, tsspace.WithProcs(4))
	first, err := c.GetTS(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.GetTS(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if last, head := first[len(first)-1], second[0]; !obj.Compare(last, head) {
		t.Errorf("batch boundary unordered: %v vs %v", last, head)
	}
}

// Concurrent clients funnel through the object's pid pool: more clients
// than pids must still all be served.
func TestConcurrentClientsOverFewPids(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(2))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.GetTS(ctx, 2); err != nil {
				t.Errorf("client: %v", err)
			}
		}()
	}
	wg.Wait()
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls != 32 || m.Batches != 16 {
		t.Errorf("metrics after load: %+v, want 32 calls / 16 batches", m)
	}
}

func TestOneShotSemanticsOverTheWire(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(2))

	// Batches are rejected up front on one-shot objects.
	var apiErr *tsserve.APIError
	if _, err := c.GetTS(ctx, 2); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("one-shot batch err = %v, want 400", err)
	}

	t1, err := c.GetTS(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.GetTS(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before, err := c.Compare(ctx, t1[0], t2[0]); err != nil || !before {
		t.Errorf("one-shot pair unordered: (%v, %v)", before, err)
	}

	// Budget spent: the typed exhaustion error crosses the wire.
	_, err = c.GetTS(ctx, 1)
	if !errors.Is(err, tsspace.ErrExhausted) {
		t.Errorf("exhausted err = %v, want ErrExhausted via APIError.Is", err)
	}
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || apiErr.Code != tsserve.CodeExhausted {
		t.Errorf("exhausted wire form = %+v, want 409/%s", apiErr, tsserve.CodeExhausted)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(9), tsspace.WithMetering())
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Algorithm != "sqrt" || h.Procs != 9 || h.Registers != 6 || !h.OneShot {
		t.Errorf("health = %+v", h)
	}
	if h.Summary == "" {
		t.Error("health missing the catalog summary")
	}

	if _, err := c.GetTS(ctx, 1); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Calls != 1 || m.Attaches != 1 || m.Space == nil {
		t.Fatalf("metrics = %+v, want 1 call with a space section", m)
	}
	if m.Space.Registers != 6 || m.Space.Written < 1 {
		t.Errorf("space = %+v", *m.Space)
	}
	if m.UptimeSeconds <= 0 || m.CallsPerSecond <= 0 {
		t.Errorf("throughput fields not populated: %+v", m)
	}
}

func TestMetricsEndpointLatency(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(4))

	// Before any operation, the latency section has no endpoints.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latency) != 0 {
		t.Errorf("latency reported before any op: %+v", m.Latency)
	}

	const batches = 20
	var first, last tsspace.Timestamp
	for i := 0; i < batches; i++ {
		ts, err := c.GetTS(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = ts[0]
		}
		last = ts[1]
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Compare(ctx, first, last); err != nil {
			t.Fatal(err)
		}
	}

	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	getts, ok := m.Latency["getts"]
	if !ok {
		t.Fatalf("no getts latency in %+v", m.Latency)
	}
	if getts.Count != batches {
		t.Errorf("getts latency count %d, want %d (per request, not per timestamp)", getts.Count, batches)
	}
	if getts.P50Ns <= 0 || getts.P50Ns > getts.P99Ns || getts.P99Ns > getts.P999Ns || getts.P999Ns > getts.MaxNs {
		t.Errorf("getts percentiles not positive-monotone: %+v", getts)
	}
	cmp, ok := m.Latency["compare"]
	if !ok || cmp.Count != 5 {
		t.Errorf("compare latency = %+v (ok=%v), want count 5", cmp, ok)
	}
	if _, ok := m.Latency["healthz"]; ok {
		t.Error("non-operation endpoints must not be timed")
	}
}

func TestRequestValidation(t *testing.T) {
	c, obj := newTestServer(t, tsspace.WithProcs(2))
	srvURL := strings.TrimSuffix(clientBase(c), "/")

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"oversized batch", "POST", "/getts", `{"count": 17}`, http.StatusBadRequest},
		{"negative count means 1", "POST", "/getts", `{"count": -3}`, http.StatusOK},
		{"empty body means 1", "POST", "/getts", ``, http.StatusOK},
		{"unknown field", "POST", "/getts", `{"size": 2}`, http.StatusBadRequest},
		{"malformed json", "POST", "/compare", `{`, http.StatusBadRequest},
		{"wrong method getts", "GET", "/getts", ``, http.StatusMethodNotAllowed},
		{"wrong method healthz", "POST", "/healthz", ``, http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srvURL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
		})
	}
	_ = obj
}

// clientBase exposes the client's base URL for raw-request tests.
func clientBase(c *tsserve.Client) string { return c.BaseURL() }
