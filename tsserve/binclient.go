package tsserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
)

// maxIdleBinConns caps the client's idle-connection pool; connections past
// the cap are closed on return instead of pooled.
const maxIdleBinConns = 64

// BinaryClient speaks the wire-v3 binary protocol to a tsserved daemon's
// -binary-addr listener. It pools TCP connections the way an HTTP client
// pools keep-alives: Attach takes a pooled (or freshly dialed) connection
// and binds it to the returned session; Detach returns it. Sessions are
// one logical client each, so one connection per live session is exactly
// the pipelining shape the server is built for.
//
// The binary protocol is the data plane only — health, metrics and the
// space report stay on the daemon's HTTP endpoints (see Client).
type BinaryClient struct {
	addr string

	mu     sync.Mutex
	idle   []*binClientConn
	closed bool
}

// NewBinaryClient returns a client for the daemon's binary listener at
// addr (e.g. "127.0.0.1:8038"). No connection is made until the first
// Attach or Compare.
func NewBinaryClient(addr string) *BinaryClient {
	return &BinaryClient{addr: addr}
}

// Addr returns the binary listener address the client dials.
func (c *BinaryClient) Addr() string { return c.addr }

// Close closes every pooled idle connection and refuses new work.
// Connections bound to live sessions are closed as their sessions detach.
func (c *BinaryClient) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle, c.closed = nil, true
	c.mu.Unlock()
	for _, cn := range idle {
		_ = cn.c.Close()
	}
	return nil
}

// errBinaryClientClosed reports use after Close.
var errBinaryClientClosed = errors.New("tsserve: binary client closed")

// binClientConn is one pooled connection: the reused request buffer and
// frame reader that make the steady-state batch path allocation-free,
// plus the context wiring that lets a cancelled ctx unblock a read.
type binClientConn struct {
	c   net.Conn
	fr  frameReader
	br  *bufio.Reader
	out []byte // request scratch, reused per call

	// watchCtx/stopWatch implement ctx cancellation over blocking conn
	// I/O: an AfterFunc pokes the deadline when ctx fires. Re-armed only
	// when the ctx value changes, so a session driving every call with
	// one ctx pays the wiring once, not per op.
	watchCtx  context.Context
	stopWatch func() bool

	broken bool // protocol state unknown: close instead of pooling
}

func (c *BinaryClient) getConn(ctx context.Context) (*binClientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errBinaryClientClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(BinaryMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	return &binClientConn{c: conn, br: br, fr: frameReader{r: br}}, nil
}

// putConn returns a connection to the idle pool; broken connections (and
// returns after Close) are closed instead.
func (c *BinaryClient) putConn(cn *binClientConn) {
	cn.unarm()
	if cn.broken {
		_ = cn.c.Close()
		return
	}
	c.mu.Lock()
	if c.closed || len(c.idle) >= maxIdleBinConns {
		c.mu.Unlock()
		_ = cn.c.Close()
		return
	}
	c.idle = append(c.idle, cn)
	c.mu.Unlock()
}

// arm wires ctx into the connection: the ctx deadline becomes the conn
// deadline, and a cancellation pokes the deadline to unblock a read in
// flight. Steady state (same ctx every call) costs two deadline stores
// and no allocation.
func (cn *binClientConn) arm(ctx context.Context) {
	if d, ok := ctx.Deadline(); ok {
		_ = cn.c.SetDeadline(d)
	} else {
		_ = cn.c.SetDeadline(time.Time{})
	}
	if ctx != cn.watchCtx {
		if cn.stopWatch != nil {
			cn.stopWatch()
		}
		cn.watchCtx = ctx
		cn.stopWatch = nil
		if ctx.Done() != nil {
			conn := cn.c
			//tslint:allow hotpath the cancellation watch arms once per bound context, not per call
			cn.stopWatch = context.AfterFunc(ctx, func() {
				_ = conn.SetDeadline(time.Unix(1, 0))
			})
		}
	}
}

// unarm detaches the connection from its last ctx before pooling, and
// clears any deadline a racing cancellation may have left behind.
func (cn *binClientConn) unarm() {
	if cn.stopWatch != nil {
		cn.stopWatch()
		cn.stopWatch = nil
	}
	cn.watchCtx = nil
	if !cn.broken {
		_ = cn.c.SetDeadline(time.Time{})
	}
}

// exchange writes the frame staged in cn.out and reads one response
// frame. Error frames decode to *APIError (the connection stays usable —
// framing is intact); I/O failures poison the connection and surface
// ctx.Err when the context caused them.
func (cn *binClientConn) exchange(ctx context.Context, wantType byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := cn.c.Write(cn.out); err != nil {
		cn.broken = true
		return nil, cn.ioErr(ctx, err)
	}
	typ, p, err := cn.fr.next()
	if err != nil {
		cn.broken = true
		return nil, cn.ioErr(ctx, err)
	}
	switch typ {
	case wantType:
		return p, nil
	case frameError:
		return nil, decodeError(p)
	}
	cn.broken = true
	//tslint:allow hotpath protocol-violation path: the connection is marked broken
	return nil, fmt.Errorf("tsserve: binary response type 0x%02x, want 0x%02x", typ, wantType)
}

func (cn *binClientConn) ioErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return err
}

// Attach leases a server-side session over a pooled binary connection and
// binds the connection to the returned handle until Detach. The lease
// lives in the daemon's shared wire-session table: idle past the TTL it
// is reaped exactly like an HTTP lease, after which calls report
// tsspace.ErrDetached.
func (c *BinaryClient) Attach(ctx context.Context) (*BinarySession, error) {
	cn, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	cn.arm(ctx)
	cn.out = beginFrame(cn.out[:0], frameAttach)
	cn.out = endFrame(cn.out, 0)
	return c.finishAttach(ctx, cn, frameAttachOK)
}

// AttachNamespace leases a session bound into the named namespace via
// the attach_ns frame. The namespace must be provisioned over the
// daemon's HTTP broker surface first (Client.ProvisionNamespace);
// attaching into an unprovisioned name fails with ErrUnknownNamespace,
// and a namespace at its session quota with ErrQuota. The returned
// session is addressed by capability id exactly like Attach's — its
// steady-state GetTSBatch path is byte-identical and allocation-free.
func (c *BinaryClient) AttachNamespace(ctx context.Context, name string) (*BinarySession, error) {
	cn, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	cn.arm(ctx)
	cn.out = beginFrame(cn.out[:0], frameAttachNS)
	cn.out = binary.AppendUvarint(cn.out, uint64(len(name)))
	cn.out = append(cn.out, name...)
	cn.out = endFrame(cn.out, 0)
	return c.finishAttach(ctx, cn, frameAttachNSOK)
}

// finishAttach runs the staged attach exchange and decodes the
// id/pid/ttl response shared by both attach forms.
func (c *BinaryClient) finishAttach(ctx context.Context, cn *binClientConn, okType byte) (*BinarySession, error) {
	p, err := cn.exchange(ctx, okType)
	if err != nil {
		c.putConn(cn) // broken conns are closed there; error frames leave it pooled
		return nil, err
	}
	id, rest, err := sessionID(p)
	if err != nil {
		cn.broken = true
		c.putConn(cn)
		return nil, err
	}
	pid, off, err := uvarint(rest, 0)
	if err != nil {
		cn.broken = true
		c.putConn(cn)
		return nil, err
	}
	if _, _, err := uvarint(rest, off); err != nil { // idle TTL ms; advisory
		cn.broken = true
		c.putConn(cn)
		return nil, err
	}
	s := &BinarySession{c: c, cn: cn, pid: int(pid)}
	copy(s.id[:], id)
	return s, nil
}

// Compare asks the daemon whether t1 is ordered before t2, over a pooled
// connection (no session needed).
func (c *BinaryClient) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	cn, err := c.getConn(ctx)
	if err != nil {
		return false, err
	}
	defer c.putConn(cn)
	cn.arm(ctx)
	return compareOn(cn, ctx, t1, t2)
}

// compareOn runs one compare exchange on an armed connection.
func compareOn(cn *binClientConn, ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	cn.out = beginFrame(cn.out[:0], frameCompare)
	cn.out = binary.AppendVarint(cn.out, t1.Rnd)
	cn.out = binary.AppendVarint(cn.out, t1.Turn)
	cn.out = binary.AppendVarint(cn.out, t2.Rnd)
	cn.out = binary.AppendVarint(cn.out, t2.Turn)
	cn.out = endFrame(cn.out, 0)
	p, err := cn.exchange(ctx, frameCompareOK)
	if err != nil {
		return false, err
	}
	if len(p) != 1 {
		cn.broken = true
		return false, errTruncated
	}
	return p[0] == 1, nil
}

// BinarySession is a wire-v3 session: tsspace.SessionAPI over one
// dedicated pooled connection. Like every session it models one logical
// client — calls must be sequential. Its steady-state GetTS/GetTSBatch
// path performs zero heap allocations: one reused request buffer, one
// write, one framed read decoded straight into the caller's slice.
type BinarySession struct {
	c        *BinaryClient
	cn       *binClientConn
	id       [binIDLen]byte
	pid      int
	calls    atomic.Int64
	detached atomic.Bool
}

var _ tsspace.SessionAPI = (*BinarySession)(nil)

// ID returns the wire session id (diagnostic). It addresses the same
// session space as wire-v2 ids.
func (s *BinarySession) ID() string { return string(s.id[:]) }

// Pid returns the daemon-side paper-process id backing the lease.
func (s *BinarySession) Pid() int { return s.pid }

// Calls returns the number of timestamps this handle has received.
func (s *BinarySession) Calls() int { return int(s.calls.Load()) }

// GetTS requests one timestamp on the session's lease.
func (s *BinarySession) GetTS(ctx context.Context) (tsspace.Timestamp, error) {
	var buf [1]tsspace.Timestamp
	if _, err := s.GetTSBatch(ctx, buf[:]); err != nil {
		return tsspace.Timestamp{}, err
	}
	return buf[0], nil
}

// GetTSBatch fills dst with one pipelined batch: len(dst) timestamps
// issued back to back by the leased paper-process, each happens-before
// the next. An empty dst is a no-op.
//
//tslint:hotpath
func (s *BinarySession) GetTSBatch(ctx context.Context, dst []tsspace.Timestamp) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if s.detached.Load() {
		return 0, tsspace.ErrDetached
	}
	cn := s.cn
	cn.arm(ctx)
	cn.out = beginFrame(cn.out[:0], frameGetTS)
	cn.out = append(cn.out, s.id[:]...)
	cn.out = binary.AppendUvarint(cn.out, uint64(len(dst)))
	cn.out = endFrame(cn.out, 0)
	p, err := cn.exchange(ctx, frameGetTSOK)
	if err != nil {
		return 0, err
	}
	_, n, err := decodeTimestamps(p, dst)
	if err != nil {
		cn.broken = true
		return 0, err
	}
	s.calls.Add(int64(n))
	return n, nil
}

// Compare implements tsspace.SessionAPI on the session's own connection
// (session calls are sequential, so the connection is free); after Detach
// it falls back to the client's pooled Compare.
func (s *BinarySession) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	if s.detached.Load() {
		return s.c.Compare(ctx, t1, t2)
	}
	cn := s.cn
	cn.arm(ctx)
	return compareOn(cn, ctx, t1, t2)
}

// Detach releases the server-side lease and returns the connection to the
// pool. A lease the daemon already reaped counts as detached, not as an
// error. Detach is idempotent.
func (s *BinarySession) Detach() error {
	if !s.detached.CompareAndSwap(false, true) {
		return nil
	}
	cn := s.cn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cn.arm(ctx)
	cn.out = beginFrame(cn.out[:0], frameDetach)
	cn.out = append(cn.out, s.id[:]...)
	cn.out = endFrame(cn.out, 0)
	p, err := cn.exchange(ctx, frameDetachOK)
	if err != nil {
		s.c.putConn(cn)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == CodeUnknownSession {
			return nil // reaped (or raced another detach): the lease is gone either way
		}
		return err
	}
	if _, _, err := uvarint(p, 0); err != nil { // lifetime calls; advisory
		cn.broken = true
		s.c.putConn(cn)
		return err
	}
	s.c.putConn(cn)
	return nil
}
